module flowcheck

go 1.23
