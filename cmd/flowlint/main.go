// Command flowlint statically analyzes guest programs and cross-checks
// the results against a dynamic run: it builds per-function CFGs and
// postdominator-based enclosure regions (internal/static), executes each
// guest on its sample inputs with the taint tracker's probe attached,
// and reports any divergence — a tainted branch outside every inferred
// region, a dynamic enclosure interval with no matching static span, or
// an enclosure annotation that fails to bracket the code its branches
// control.
//
// Usage:
//
//	flowlint [-v] [guest ...]
//
// With no arguments it lints every guest program. Exit status 1 means at
// least one finding (or a failed run).
package main

import (
	"flag"
	"fmt"
	"os"

	"flowcheck/internal/engine"
	"flowcheck/internal/guest"
)

func main() {
	verbose := flag.Bool("v", false, "print per-guest static statistics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowlint [-v] [guest ...]\n\nguests: %v\n", guest.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = guest.Names()
	}

	failed := false
	for _, name := range names {
		if err := lintOne(name, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "flowlint: %s: %v\n", name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lintOne(name string, verbose bool) error {
	secret, public, ok := guest.SampleInputs(name)
	if !ok {
		return fmt.Errorf("unknown guest (have %v)", guest.Names())
	}
	prog := guest.Program(name)

	a := engine.New(prog, engine.Config{Lint: true})
	res, err := a.Analyze(engine.Inputs{Secret: secret, Public: public})
	if err != nil {
		return fmt.Errorf("analysis failed: %w", err)
	}
	if res.Trap != nil {
		return fmt.Errorf("guest trapped: %w", res.Trap)
	}

	st := res.StaticStats
	if verbose {
		fmt.Printf("%-12s %3d funcs %4d blocks %4d branches %4d regions %2d enclosures  (static %v)\n",
			name, st.Funcs, st.Blocks, st.Branches, st.Regions, st.Enclosures, res.Stages.Static)
	}
	if len(res.Lint) == 0 {
		if !verbose {
			fmt.Printf("%-12s ok (%d regions, %d enclosures)\n", name, st.Regions, st.Enclosures)
		}
		return nil
	}
	for _, f := range res.Lint {
		fmt.Printf("%s: %s\n", name, f)
	}
	return fmt.Errorf("%d cross-check finding(s)", len(res.Lint))
}
