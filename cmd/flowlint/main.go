// Command flowlint statically analyzes guest programs and cross-checks
// the results against a dynamic run: it builds per-function CFGs and
// postdominator-based enclosure regions (internal/static), executes each
// guest on its sample inputs with the taint tracker's probe attached,
// and reports any divergence — a tainted branch outside every inferred
// region, a dynamic enclosure interval with no matching static span, or
// an enclosure annotation that fails to bracket the code its branches
// control.
//
// Usage:
//
//	flowlint [-v] [-json] [guest ...]
//
// With no arguments it lints every guest program. -json writes one JSON
// document to stdout: per-guest static statistics (including the static
// leakage bound) and every finding with its file:line location, kind,
// and innermost inferred-region id. Exit status 1 means at least one
// finding (or a failed run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flowcheck/internal/engine"
	"flowcheck/internal/guest"
	"flowcheck/internal/static"
)

// guestJSON is one guest's machine-readable lint record.
type guestJSON struct {
	Name       string `json:"name"`
	Funcs      int    `json:"funcs"`
	Blocks     int    `json:"blocks"`
	Branches   int    `json:"branches"`
	Regions    int    `json:"regions"`
	Enclosures int    `json:"enclosures"`
	// StaticBits is the static capacity bound for the guest's sample
	// secret; TrivialBits is 8·len(secret).
	StaticBits  int64  `json:"static_bits"`
	TrivialBits int64  `json:"trivial_bits"`
	Findings    int    `json:"findings"`
	Err         string `json:"error,omitempty"`
}

// findingJSON is one cross-check violation, located for machines.
type findingJSON struct {
	Guest string `json:"guest"`
	Kind  string `json:"kind"`
	PC    int    `json:"pc"`
	Where string `json:"where"` // file:line(func)
	// Region is the index of the innermost inferred region containing PC
	// in the guest's static analysis, or -1 if no region covers it.
	Region int    `json:"region"`
	Msg    string `json:"msg"`
}

type reportJSON struct {
	Guests   []guestJSON   `json:"guests"`
	Findings []findingJSON `json:"findings"`
}

func main() {
	verbose := flag.Bool("v", false, "print per-guest static statistics")
	jsonOut := flag.Bool("json", false, "write a machine-readable JSON report to stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowlint [-v] [-json] [guest ...]\n\nguests: %v\n", guest.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = guest.Names()
	}

	rep := reportJSON{Findings: []findingJSON{}} // "findings": [] even when clean
	failed := false
	for _, name := range names {
		g, findings, err := lintOne(name, *verbose, *jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowlint: %s: %v\n", name, err)
			g.Err = err.Error()
			failed = true
		}
		rep.Guests = append(rep.Guests, g)
		rep.Findings = append(rep.Findings, findings...)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "flowlint:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lintOne(name string, verbose, jsonOut bool) (guestJSON, []findingJSON, error) {
	g := guestJSON{Name: name}
	secret, public, ok := guest.SampleInputs(name)
	if !ok {
		return g, nil, fmt.Errorf("unknown guest (have %v)", guest.Names())
	}
	prog := guest.Program(name)

	a := engine.New(prog, engine.Config{Lint: true})
	sa := a.Static()
	g.TrivialBits = engine.TrivialBoundBits(len(secret))
	g.StaticBits = a.StaticBoundBits(len(secret))

	res, err := a.Analyze(engine.Inputs{Secret: secret, Public: public})
	if err != nil {
		return g, nil, fmt.Errorf("analysis failed: %w", err)
	}
	if res.Trap != nil {
		return g, nil, fmt.Errorf("guest trapped: %w", res.Trap)
	}

	st := res.StaticStats
	g.Funcs, g.Blocks, g.Branches = st.Funcs, st.Blocks, st.Branches
	g.Regions, g.Enclosures = st.Regions, st.Enclosures
	g.Findings = len(res.Lint)

	var findings []findingJSON
	for _, f := range res.Lint {
		findings = append(findings, findingJSON{
			Guest:  name,
			Kind:   f.Kind.String(),
			PC:     f.PC,
			Where:  f.Where,
			Region: regionID(sa, f.PC),
			Msg:    f.Msg,
		})
	}

	if !jsonOut {
		if verbose {
			fmt.Printf("%-12s %3d funcs %4d blocks %4d branches %4d regions %2d enclosures  static %4d bits (trivial %4d)  (static %v)\n",
				name, st.Funcs, st.Blocks, st.Branches, st.Regions, st.Enclosures,
				g.StaticBits, g.TrivialBits, res.Stages.Static)
		}
		if len(res.Lint) == 0 && !verbose {
			fmt.Printf("%-12s ok (%d regions, %d enclosures)\n", name, st.Regions, st.Enclosures)
		}
		for _, f := range res.Lint {
			fmt.Printf("%s: %s\n", name, f)
		}
	}
	if len(res.Lint) > 0 {
		return g, findings, fmt.Errorf("%d cross-check finding(s)", len(res.Lint))
	}
	return g, findings, nil
}

// regionID locates the innermost inferred region containing pc by its
// index in the analysis's region list, or -1 when uncovered.
func regionID(sa *static.Analysis, pc int) int {
	rs := sa.RegionsAt(pc)
	if len(rs) == 0 {
		return -1
	}
	for i, r := range sa.Regions {
		if r == rs[0] {
			return i
		}
	}
	return -1
}
