// Command flowbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured discussion).
//
// Usage:
//
//	flowbench all          run everything
//	flowbench fig2|fig3|tab4|battleship|ssh|fig5|calendar|xserver|tab6|sp|kraft|divzero|check|collapse
//	flowbench fig3 -sizes 64,256,1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flowcheck/internal/experiments"
)

var experimentsByName = []struct {
	name string
	desc string
	run  func(sizes []int)
}{
	{"fig2", "§2.4/Fig.2: count_punct (9 bits)", runFig2},
	{"fig3", "Fig.3: compression flow vs input size", runFig3},
	{"tab4", "Fig.4: case-study inventory", runTab4},
	{"battleship", "§8.1: KBattleship shot protocol", runBattleship},
	{"ssh", "§8.2: OpenSSH-style auth (128 bits)", runSSH},
	{"fig5", "Fig.5: image transforms", runFig5},
	{"calendar", "§8.4: appointment grid", runCalendar},
	{"xserver", "§8.5: X server text + exploit", runXServer},
	{"tab6", "Fig.6: enclosure-region inference", runTab6},
	{"sp", "§5.1: series-parallel structure", runSP},
	{"kraft", "§3.2: unary/binary consistency", runKraft},
	{"divzero", "§3.1: division example", runDivzero},
	{"check", "§6: checking modes", runCheck},
	{"collapse", "§5.2/5.3: graph collapsing", runCollapse},
	{"compact", "§5.1/5.2: online arena compaction", runCompaction},
	{"multiclass", "§10.1: different kinds of secret", runMultiClass},
	{"interp", "§10.3: analyzing interpreted code", runInterp},
	{"batch", "engine: parallel batch vs serial multi-run", runBatch},
	{"degrade", "engine: solver-budget degradation tradeoff", runDegrade},
	{"cache", "engine: content-addressed cache cold/incremental/warm", runCache},
	{"ledger", "service: leakage-ledger charge+settle overhead per request", runLedger},
	{"static", "static analysis: region inference + cross-check", runStatic},
	{"ladder", "precision ladder: lower/measured/static/trivial tightness per guest", runLadder},
}

// timingRecord is the machine-readable per-experiment timing emitted by
// -json (one array on stdout; the human tables go to stderr). The static
// experiment additionally reports its inferred-region and cross-check
// finding totals, so the perf trajectory captures the new stage.
type timingRecord struct {
	Name     string  `json:"name"`
	Desc     string  `json:"desc"`
	Seconds  float64 `json:"seconds"`
	Regions  int     `json:"regions,omitempty"`
	Findings int     `json:"findings,omitempty"`
	// The compact experiment's memory summary (largest sweep point).
	TotalEdges    int     `json:"total_edges,omitempty"`
	PeakLiveEdges int     `json:"peak_live_edges,omitempty"`
	Passes        int     `json:"compaction_passes,omitempty"`
	EdgeRatio     float64 `json:"edge_ratio,omitempty"`
	// The cache experiment's per-run latencies and reuse summary.
	ColdMS        float64 `json:"cold_ms,omitempty"`
	IncrementalMS float64 `json:"incremental_ms,omitempty"`
	WarmMS        float64 `json:"warm_ms,omitempty"`
	HitRate       float64 `json:"hit_rate,omitempty"`
	// The ledger experiment's per-request charge+settle overhead by
	// durability regime (microseconds), and the cost of a budget denial.
	ChargeSettleUS        float64 `json:"charge_settle_us,omitempty"`
	ChargeSettleDurableUS float64 `json:"charge_settle_durable_us,omitempty"`
	ChargeSettleSyncedUS  float64 `json:"charge_settle_synced_us,omitempty"`
	DeniedUS              float64 `json:"denied_us,omitempty"`
	// The ladder experiment's gap-demo bounds (bits per rung) and the
	// summed per-rung analysis latencies across the corpus.
	TrivialBits  int64   `json:"trivial_bits,omitempty"`
	StaticBits   int64   `json:"static_bits,omitempty"`
	MeasuredBits int64   `json:"measured_bits,omitempty"`
	StaticUS     float64 `json:"static_us,omitempty"`
	FullUS       float64 `json:"full_us,omitempty"`
	// The multiclass experiment's old-vs-new pipeline comparison: mean
	// class-set latency per mode and executions per class actually
	// performed (1.0 for reexec, 1/N for the shared path).
	ReexecMS            float64 `json:"reexec_ms,omitempty"`
	SharedMS            float64 `json:"shared_ms,omitempty"`
	ReexecExecsPerClass float64 `json:"reexec_execs_per_class,omitempty"`
	SharedExecsPerClass float64 `json:"shared_execs_per_class,omitempty"`
	// Pointer so false survives encoding: "did both class pipelines agree
	// bit-for-bit" is meaningful either way (false = the shared bound was
	// strictly looser somewhere, never tighter).
	ClassModesAgree *bool `json:"class_modes_agree,omitempty"`
}

// staticTotals carries the static experiment's counts from its run
// function to the timing record (run functions return nothing).
var staticTotals struct{ regions, findings int }

// compactTotals likewise carries the compact experiment's memory summary.
var compactTotals struct {
	totalEdges, peakLiveEdges, passes int
	ratio                             float64
}

// cacheTotals carries the cache experiment's per-run latencies (ms) and
// result hit rate.
var cacheTotals struct {
	coldMS, incMS, warmMS, hitRate float64
}

// ledgerTotals carries the ledger experiment's per-request overheads (µs).
var ledgerTotals struct {
	volatileUS, lazyUS, syncUS, deniedUS float64
}

// ladderTotals carries the ladder experiment's gap-demo bounds and
// summed per-rung latencies.
var ladderTotals struct {
	trivialBits, staticBits, measuredBits int64
	fullUS, staticUS                      float64
}

// multiclassTotals carries the multiclass experiment's old-vs-new
// pipeline comparison.
var multiclassTotals struct {
	reexecMS, sharedMS   float64
	reexecEPC, sharedEPC float64
	agree                bool
}

func main() {
	fs := flag.NewFlagSet("flowbench", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "", "comma-separated input sizes for fig3/sp/collapse sweeps")
	jsonFlag := fs.Bool("json", false, "emit per-experiment timings as JSON on stdout (tables go to stderr)")
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: flowbench <experiment|all> [-sizes n,n,...] [-json]")
		for _, e := range experimentsByName {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", e.name, e.desc)
		}
		os.Exit(2)
	}
	which := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var sizes []int
	if *sizesFlag != "" {
		for _, p := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad size:", p)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
	}

	// With -json, the human-readable tables move to stderr so stdout
	// carries only the JSON; fmt.Printf resolves os.Stdout at call time.
	realStdout := os.Stdout
	if *jsonFlag {
		os.Stdout = os.Stderr
	}

	found := false
	var timings []timingRecord
	for _, e := range experimentsByName {
		if which == "all" || which == e.name {
			found = true
			fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
			start := time.Now()
			e.run(sizes)
			rec := timingRecord{Name: e.name, Desc: e.desc, Seconds: time.Since(start).Seconds()}
			if e.name == "static" {
				rec.Regions, rec.Findings = staticTotals.regions, staticTotals.findings
			}
			if e.name == "compact" {
				rec.TotalEdges, rec.PeakLiveEdges = compactTotals.totalEdges, compactTotals.peakLiveEdges
				rec.Passes, rec.EdgeRatio = compactTotals.passes, compactTotals.ratio
			}
			if e.name == "cache" {
				rec.ColdMS, rec.IncrementalMS = cacheTotals.coldMS, cacheTotals.incMS
				rec.WarmMS, rec.HitRate = cacheTotals.warmMS, cacheTotals.hitRate
			}
			if e.name == "ledger" {
				rec.ChargeSettleUS, rec.ChargeSettleDurableUS = ledgerTotals.volatileUS, ledgerTotals.lazyUS
				rec.ChargeSettleSyncedUS, rec.DeniedUS = ledgerTotals.syncUS, ledgerTotals.deniedUS
			}
			if e.name == "ladder" {
				rec.TrivialBits, rec.StaticBits = ladderTotals.trivialBits, ladderTotals.staticBits
				rec.MeasuredBits = ladderTotals.measuredBits
				rec.FullUS, rec.StaticUS = ladderTotals.fullUS, ladderTotals.staticUS
			}
			if e.name == "multiclass" {
				rec.ReexecMS, rec.SharedMS = multiclassTotals.reexecMS, multiclassTotals.sharedMS
				rec.ReexecExecsPerClass = multiclassTotals.reexecEPC
				rec.SharedExecsPerClass = multiclassTotals.sharedEPC
				agree := multiclassTotals.agree
				rec.ClassModesAgree = &agree
			}
			timings = append(timings, rec)
			fmt.Println()
		}
	}
	if !found {
		fmt.Fprintln(os.Stderr, "unknown experiment:", which)
		os.Exit(2)
	}
	if *jsonFlag {
		os.Stdout = realStdout
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(timings); err != nil {
			fmt.Fprintln(os.Stderr, "flowbench:", err)
			os.Exit(1)
		}
	}
}

func runFig2(_ []int) {
	r := experiments.Fig2()
	fmt.Printf("input: %q\n", experiments.Fig2Input)
	fmt.Printf("output: %q\n", r.Output)
	fmt.Printf("flow with enclosure regions:   %5d bits   (paper: 9)\n", r.Bits)
	fmt.Printf("flow without regions:          %5d bits   (paper: 1855 on their input)\n", r.WithoutRegions)
	fmt.Printf("plain tainting bound:          %5d bits   (paper: 64)\n", r.TaintBound)
	fmt.Printf("minimum cut: %s\n", r.Cut)
}

func runFig3(sizes []int) {
	if sizes == nil {
		sizes = experiments.Fig3Sizes
	}
	fmt.Printf("%10s %10s %12s %12s %12s %10s %12s\n",
		"input(B)", "output(B)", "flow(bits)", "in(bits)", "out(bits)", "time", "steps")
	for _, p := range experiments.Fig3(sizes) {
		fmt.Printf("%10d %10d %12d %12d %12d %10s %12d\n",
			p.InputBytes, p.CompressedBytes, p.Bits, p.InputBits, p.OutputBits,
			p.Elapsed.Round(1000000), p.Steps)
	}
	fmt.Println("expected shape: flow ~ min(input bits, compressed output bits); linear time")
}

func runTab4(_ []int) {
	fmt.Printf("%-12s %-26s %-24s %s\n", "guest", "paper subject (KLOC)", "secret data", "guest lines")
	for _, r := range experiments.Tab4() {
		fmt.Printf("%-12s %-26s %-24s %d\n", r.Program, r.PaperKLOC, r.SecretData, r.GuestLines)
	}
}

func runBattleship(_ []int) {
	r := experiments.Battleship()
	fmt.Printf("miss reply %q:          %2d bits  (paper: 1)\n", r.MissReply, r.MissBits)
	fmt.Printf("non-fatal hit reply %q: %2d bits  (paper: 2)\n", r.HitReply, r.HitBits)
	fmt.Printf("buggy shipTypeAt reply:   %2d bits  (the §8.1 bug: type leaks)\n", r.BuggyBits)
	fmt.Printf("%d-shot game:              %2d bits; per-shot flows %v\n", r.GameShots, r.GameBits, r.PerShotFlows)
}

func runSSH(_ []int) {
	r := experiments.SSH()
	fmt.Printf("key size: %d bits; revealed: %d bits (paper: 128)\n", r.KeyBits, r.Bits)
	fmt.Printf("digest: %s\n", r.DigestHex)
	fmt.Printf("cut: %s\n", r.Cut)
}

func runFig5(_ []int) {
	r := experiments.Fig5()
	fmt.Printf("input image:  %6d bits   (paper: 375120, 125x125x16bit)\n", r.InputBits)
	fmt.Printf("pixelate:     %6d bits   (paper: 1464)\n", r.PixelateBits)
	fmt.Printf("blur:         %6d bits   (paper: 1720)\n", r.BlurBits)
	fmt.Printf("swirl:        %6d bits   (paper: 375120 = input size)\n", r.SwirlBits)
}

func runCalendar(_ []int) {
	r := experiments.Calendar()
	fmt.Printf("sparse (1 appointment):  %2d bits, grid %s   (paper: 12)\n", r.SparseBits, r.SparseGrid)
	fmt.Printf("busy   (5 appointments): %2d bits, grid %s   (paper: 18 at the display)\n", r.BusyBits, r.BusyGrid)
}

func runXServer(_ []int) {
	r := experiments.XServer()
	fmt.Printf("bounding box of \"Hello, world!\": %3d bits of %d (paper: ~21 of 104)\n", r.BBoxBits, r.TextBits)
	fmt.Printf("cut-and-paste (direct flow):     %3d bits\n", r.PasteBits)
	fmt.Printf("memory-scanning exploit flow:    %3d bits\n", r.ExploitBits)
	fmt.Printf("caught by §6.2 checker: %v (%s)\n", r.CheckerCaught, r.CheckerMessage)
}

func runTab6(_ []int) {
	reps := experiments.Tab6()
	fmt.Printf("%-12s %6s %8s %8s %10s %6s\n", "program", "hand", "needLen", "missExp", "missInter", "found")
	for _, r := range reps {
		fmt.Printf("%-12s %6d %8d %8d %10d %6d\n",
			r.Program, r.HandAnnots, r.NeedLength, r.MissExpand, r.MissInterp, r.FoundCount)
	}
	hand, found, frac := experiments.Tab6Total(reps)
	fmt.Printf("total found: %d/%d = %.0f%%   (paper: 72%%)\n", found, hand, 100*frac)
}

func runSP(sizes []int) {
	if sizes == nil {
		sizes = []int{256, 512, 1024, 2048}
	}
	fmt.Printf("%10s %10s %10s %12s %10s\n", "input(B)", "nodes", "edges", "core-frac", "flow")
	for _, p := range experiments.SPStudy(sizes) {
		fmt.Printf("%10d %10d %10d %12.3f %10d\n", p.InputBytes, p.Nodes, p.Edges, p.CoreFraction, p.FlowAfter)
	}
	fmt.Println("expected shape: a roughly constant irreducible core (paper: ~16% for bzip2)")
}

func runKraft(_ []int) {
	r := experiments.Kraft()
	fmt.Printf("per-run bounds (inputs 0,1,2,5,40,200): %v\n", r.PerRunBits)
	fmt.Printf("hypothetical per-run sum over all 256 inputs: %.4f (= 503/256; > 1, unsound)\n", r.PerRunSum)
	fmt.Printf("merged-graph bound: %d bits; Kraft satisfied: %v\n", r.MergedBits, r.MergedSound)
}

func runDivzero(_ []int) {
	z, nz := experiments.Divzero()
	fmt.Printf("zero divisor: %d bit(s); nonzero divisor: %d bit(s)   (paper: 1 each)\n", z, nz)
}

func runCheck(_ []int) {
	r := experiments.Checking()
	fmt.Printf("analysis flow:            %d bits\n", r.AnalysisBits)
	fmt.Printf("taint checker: revealed %d bits, %d violations, %d steps\n",
		r.TaintRevealed, r.TaintViolations, r.TaintSteps)
	fmt.Printf("lockstep checker: ok=%v, transferred %d bits, %d steps (plain run: %d steps)\n",
		r.LockstepOK, r.LockstepBits, r.LockstepSteps, r.PlainSteps)
}

func runMultiClass(_ []int) {
	r := experiments.MultiClass()
	for _, c := range r.Classes {
		fmt.Printf("class %-14s %2d bits\n", c.Class.Name+":", c.Bits)
	}
	fmt.Printf("joint analysis:       %2d bits\n", r.Joint)
	fmt.Printf("per-class sum %d >= joint %d: classes share the grid's capacity (§10.1 crowding out)\n", r.Sum, r.Joint)
	fmt.Printf("pipeline (mean of %d iterations):\n", r.Iters)
	fmt.Println("  mode    latency     executions/class")
	fmt.Printf("  reexec  %8.3fms  %.2f\n", r.ReexecMS, r.ReexecExecsPerClass)
	fmt.Printf("  shared  %8.3fms  %.2f  (%.2fx vs reexec)\n",
		r.SharedMS, r.SharedExecsPerClass, r.ReexecMS/r.SharedMS)
	fmt.Printf("modes agree on every class bound: %v\n", r.Agree)
	multiclassTotals.reexecMS, multiclassTotals.sharedMS = r.ReexecMS, r.SharedMS
	multiclassTotals.reexecEPC, multiclassTotals.sharedEPC = r.ReexecExecsPerClass, r.SharedExecsPerClass
	multiclassTotals.agree = r.Agree
}

func runInterp(_ []int) {
	r := experiments.Interp()
	fmt.Printf("script OUT(in[3] & 0x0F): %2d bits (want 4: the script's mask)\n", r.MaskNibbleBits)
	fmt.Printf("script OUT(in[0]^in[1]):  %2d bits (want 8: one byte of info)\n", r.XorBits)
	fmt.Printf("script dumping 3 bytes:   %2d bits (want 24)\n", r.DumpBits)
	fmt.Println("the measurement tracks the interpreted script, not the interpreter (§10.3)")
}

func runBatch(sizes []int) {
	runs := 8
	if len(sizes) > 0 {
		runs = sizes[0]
	}
	r := experiments.Batch(runs)
	fmt.Printf("%d runs of %s, %d worker(s) available\n", r.Runs, r.Guest, r.Workers)
	fmt.Printf("serial Analyze x%d:      %10s\n", r.Runs, r.Serial.Round(time.Microsecond))
	fmt.Printf("online AnalyzeMulti:     %10s\n", r.Multi.Round(time.Microsecond))
	fmt.Printf("AnalyzeBatch workers=1:  %10s\n", r.Batch1.Round(time.Microsecond))
	fmt.Printf("AnalyzeBatch workers=%-2d: %10s  (%.2fx vs serial)\n",
		r.Workers, r.BatchN.Round(time.Microsecond), float64(r.Serial)/float64(r.BatchN))
	fmt.Printf("joint bound: %d bits; batch == multi: %v; per-run %v\n", r.JointBits, r.Agree, r.PerRunBits)
}

func runDegrade(sizes []int) {
	n := 1024
	if len(sizes) > 0 {
		n = sizes[0]
	}
	r := experiments.Degrade(n)
	fmt.Printf("%s, %d input bytes; exact max flow %d bits\n", r.Guest, n, r.ExactBits)
	fmt.Println("  solver budget     bound  degraded     solve")
	for _, p := range r.Points {
		fmt.Printf("  %13d  %8d  %8v  %8s\n", p.Budget, p.Bits, p.Degraded, p.Solve.Round(time.Microsecond))
	}
	fmt.Println("(every budget yields a sound bound; exhausted solves fall back to the trivial cut)")
}

func runCache(sizes []int) {
	n := 32
	if len(sizes) > 0 {
		n = sizes[0]
	}
	r := experiments.CacheStudy(n)
	perRun := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1000 / float64(r.Inputs)
	}
	fmt.Printf("%d distinct inputs per phase\n", r.Inputs)
	fmt.Printf("  %-12s %-12s %10s\n", "phase", "disposition", "per-run")
	fmt.Printf("  %-12s %-12s %9.3fms\n", "cold", r.ColdDisp, perRun(r.Cold))
	fmt.Printf("  %-12s %-12s %9.3fms\n", "incremental", r.IncDisp, perRun(r.Incremental))
	fmt.Printf("  %-12s %-12s %9.3fms\n", "warm", r.WarmDisp, perRun(r.Warm))
	fmt.Printf("result hit ratio %.3f, evictions %d; cached == uncached: %v\n",
		r.HitRatio, r.Evictions, r.BitsAgree)
	fmt.Println("(cold runs the full pipeline; incremental reuses static + graph skeleton;")
	fmt.Println(" warm answers from the cached result without touching a session)")
	cacheTotals.coldMS, cacheTotals.incMS = perRun(r.Cold), perRun(r.Incremental)
	cacheTotals.warmMS, cacheTotals.hitRate = perRun(r.Warm), r.HitRatio
}

func runLedger(sizes []int) {
	n := 2000
	if len(sizes) > 0 {
		n = sizes[0]
	}
	r := experiments.LedgerStudy(n)
	perOp := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / float64(r.Ops)
	}
	fmt.Printf("%d charge+settle pairs per regime\n", r.Ops)
	fmt.Printf("  %-22s %10s\n", "regime", "per-req")
	fmt.Printf("  %-22s %8.2fµs\n", "volatile (no WAL)", perOp(r.Volatile))
	fmt.Printf("  %-22s %8.2fµs\n", "durable, no fsync", perOp(r.DurableLazy))
	fmt.Printf("  %-22s %8.2fµs\n", "durable, fsync/append", perOp(r.DurableSync))
	fmt.Printf("  %-22s %8.2fµs\n", "budget denial", perOp(r.Denied))
	fmt.Printf("replay recovers synced bits exactly: %v; WAL after compaction: %dB\n",
		r.ReplayOK, r.WALBytes)
	fmt.Println("(the fail-closed default pays one fsync per charge and one per settle;")
	fmt.Println(" denials are pure memory — exhausted principals are cheap to refuse)")
	ledgerTotals.volatileUS, ledgerTotals.lazyUS = perOp(r.Volatile), perOp(r.DurableLazy)
	ledgerTotals.syncUS, ledgerTotals.deniedUS = perOp(r.DurableSync), perOp(r.Denied)
}

func runCompaction(sizes []int) {
	if sizes == nil {
		sizes = experiments.CompactionSizes
	}
	fmt.Printf("%10s %12s %12s %12s %8s %12s %8s\n",
		"input(B)", "steps", "edges-total", "peak-live", "passes", "reclaimed", "ratio")
	for _, p := range experiments.Compaction(sizes) {
		fmt.Printf("%10d %12d %12d %12d %8d %12d %7.1fx\n",
			p.InputBytes, p.Steps, p.TotalEdges, p.PeakLiveEdges,
			p.CompactionPasses, p.ReclaimedEdges, p.Ratio)
		compactTotals.totalEdges, compactTotals.peakLiveEdges = p.TotalEdges, p.PeakLiveEdges
		compactTotals.passes, compactTotals.ratio = p.CompactionPasses, p.Ratio
	}
	fmt.Println("expected shape: emitted edges grow with executed instructions, peak live")
	fmt.Println("with the graph's irreducible core (>= 5x smaller); bounds are unchanged")
}

func runStatic(_ []int) {
	rows := experiments.StaticPass()
	fmt.Printf("%-12s %6s %7s %9s %8s %11s %9s %10s\n",
		"guest", "funcs", "blocks", "branches", "regions", "enclosures", "findings", "time")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %7d %9d %8d %11d %9d %10s\n",
			r.Guest, r.Funcs, r.Blocks, r.Branches, r.Regions, r.Enclosures,
			r.Findings, r.Elapsed.Round(time.Microsecond))
	}
	regions, findings := experiments.StaticTotals(rows)
	staticTotals.regions, staticTotals.findings = regions, findings
	fmt.Printf("total: %d inferred regions, %d cross-check findings (want 0)\n", regions, findings)
}

func runLadder(_ []int) {
	rows := experiments.Ladder()
	fmt.Printf("%-12s %8s %9s %9s %9s %9s %11s %11s %11s\n",
		"guest", "secret", "lower", "measured", "static", "trivial", "t(trivial)", "t(static)", "t(full)")
	for _, r := range rows {
		lower := fmt.Sprintf("%.1f", r.LowerBits)
		if !r.Exhaustive {
			lower += "*"
		}
		fmt.Printf("%-12s %7dB %9s %9d %9d %9d %11s %11s %11s\n",
			r.Guest, r.SecretBytes, lower, r.MeasuredBits, r.StaticBits, r.TrivialBits,
			r.TrivialTime.Round(time.Microsecond), r.StaticTime.Round(time.Microsecond),
			r.FullTime.Round(time.Microsecond))
	}
	t, s, m, fullUS, staticUS := experiments.LadderTotals(rows)
	ladderTotals.trivialBits, ladderTotals.staticBits, ladderTotals.measuredBits = t, s, m
	ladderTotals.fullUS, ladderTotals.staticUS = fullUS, staticUS
	fmt.Printf("gap demo (%dB secret, 4 bytes read): trivial %d > static %d > measured %d bits\n",
		experiments.LadderGapSecretBytes, t, s, m)
	fmt.Println("(* = sampled lower bound: the behavior enumeration covered part of the domain;")
	fmt.Println(" soundness requires measured <= static <= trivial and lower <= static on every")
	fmt.Println(" row; lower may exceed single-run measured — the §3.2 caveat, see unary)")
}

func runCollapse(sizes []int) {
	n := 1024
	if len(sizes) > 0 {
		n = sizes[0]
	}
	r := experiments.Collapse(n)
	fmt.Printf("input %d bytes, %d steps\n", r.InputBytes, r.Steps)
	fmt.Printf("exact graph:     %8d nodes %8d edges, flow %d bits\n", r.ExactNodes, r.ExactEdges, r.ExactBits)
	fmt.Printf("collapsed:       %8d nodes %8d edges, flow %d bits\n", r.CollapsedNodes, r.CollapsedEdges, r.CollapsedBits)
	fmt.Printf("ctx-sensitive:   %8d nodes, flow %d bits\n", r.CtxNodes, r.CtxBits)
	fmt.Println("(paper §5.3: 3.6e9 nodes pre-collapse vs ~22000 after, for their 2.5MB run)")
}
