// Command flowcheck analyzes one MiniC program: it runs the program on the
// given secret/public inputs under the quantitative information-flow
// analysis and reports the measured flow bound, the minimum cut, and
// optionally the flow graph in DOT form (paper §2–§6).
//
// Usage:
//
//	flowcheck run prog.mc -secret-file key.bin [-public-file in.bin] [flags]
//	flowcheck run -guest sshauth -secret "..." [flags]
//	flowcheck check prog.mc -secret-file key.bin -cut 12,34 [-budget 128]
//	flowcheck lockstep prog.mc -secret-file key.bin [-dummy "..."]
//	flowcheck infer prog.mc
//	flowcheck disasm prog.mc
//	flowcheck guests
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"flowcheck/internal/check"
	"flowcheck/internal/core"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/infer"
	"flowcheck/internal/lang/parser"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/taint"
	"flowcheck/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "lockstep":
		err = cmdLockstep(os.Args[2:])
	case "infer":
		err = cmdInfer(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "remote":
		err = cmdRemote(os.Args[2:])
	case "guests":
		for _, n := range guest.Names() {
			fmt.Println(n)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcheck:", err)
		os.Exit(exitCode(err))
	}
}

// errLint marks a run whose static/dynamic cross-check reported findings.
var errLint = errors.New("lint findings")

// exitCode maps the engine's failure taxonomy to distinct exit codes, so
// scripts can tell a guest that ran out of steps (3) from a timeout (4), an
// exceeded resource budget (5), an internal failure (6), or lint findings
// (7).
func exitCode(err error) int {
	switch {
	case errors.Is(err, core.ErrStepLimit):
		return 3
	case errors.Is(err, core.ErrCanceled):
		return 4
	case errors.Is(err, core.ErrBudget):
		return 5
	case errors.Is(err, core.ErrInternal):
		return 6
	case errors.Is(err, errLint):
		return 7
	}
	return 1
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flowcheck run      [prog.mc] [flags]   measure the information flow of one execution
  flowcheck check    [prog.mc] [flags]   check a run against a cut (tainting mode, §6.2)
  flowcheck lockstep [prog.mc] [flags]   output-comparison check with a shadow copy (§6.3)
  flowcheck infer    [prog.mc]           propose/score enclosure annotations (§8.6)
  flowcheck disasm   [prog.mc]           dump the compiled VM code with source sites
  flowcheck remote   [flags]             analyze via a flowserved/flowcoord service, honoring Retry-After
  flowcheck guests                       list built-in case-study programs`)
}

type inputFlags struct {
	guestName  *string
	secretFile *string
	secretStr  *string
	publicFile *string
	publicStr  *string
}

func addInputFlags(fs *flag.FlagSet) *inputFlags {
	return &inputFlags{
		guestName:  fs.String("guest", "", "use a built-in case-study program instead of a source file"),
		secretFile: fs.String("secret-file", "", "file providing the secret input"),
		secretStr:  fs.String("secret", "", "literal secret input"),
		publicFile: fs.String("public-file", "", "file providing the public input"),
		publicStr:  fs.String("public", "", "literal public input"),
	}
}

func (f *inputFlags) load(fs *flag.FlagSet) (*vm.Program, core.Inputs, error) {
	var in core.Inputs
	var err error
	if in.Secret, err = pick(*f.secretFile, *f.secretStr); err != nil {
		return nil, in, err
	}
	if in.Public, err = pick(*f.publicFile, *f.publicStr); err != nil {
		return nil, in, err
	}
	if *f.guestName != "" {
		return guest.Program(*f.guestName), in, nil
	}
	if fs.NArg() < 1 {
		return nil, in, fmt.Errorf("need a source file or -guest name")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return nil, in, err
	}
	prog, err := core.CompileCached(fs.Arg(0), string(src))
	return prog, in, err
}

// batchInputs assembles the input list for batch mode, or nil for a
// single-run analysis. -secret-dir contributes one run per file (sorted by
// name, sharing the common public input); -runs then replicates the whole
// list.
func batchInputs(in core.Inputs, runs int, secretDir string) ([]core.Inputs, error) {
	base := []core.Inputs{in}
	if secretDir != "" {
		entries, err := os.ReadDir(secretDir)
		if err != nil {
			return nil, err
		}
		base = base[:0]
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			secret, err := os.ReadFile(filepath.Join(secretDir, e.Name()))
			if err != nil {
				return nil, err
			}
			base = append(base, core.Inputs{Secret: secret, Public: in.Public})
		}
		if len(base) == 0 {
			return nil, fmt.Errorf("no secret files in %s", secretDir)
		}
	}
	if runs < 1 {
		runs = 1
	}
	if secretDir == "" && runs == 1 {
		return nil, nil
	}
	var out []core.Inputs
	for i := 0; i < runs; i++ {
		out = append(out, base...)
	}
	return out, nil
}

func pick(file, lit string) ([]byte, error) {
	if file != "" {
		return os.ReadFile(file)
	}
	if lit != "" {
		return []byte(lit), nil
	}
	return nil, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	inputs := addInputFlags(fs)
	exact := fs.Bool("exact", false, "disable graph collapsing (per-operation graph)")
	compact := fs.Int("compact", 0, "exact mode: compact the graph in place every N live edges (0 = off)")
	ctx := fs.Bool("ctx", false, "context-sensitive edge labels")
	warn := fs.Bool("warn-implicit", false, "warn on implicit flows outside enclosure regions")
	lint := fs.Bool("lint", false, "run the static pre-pass and cross-check it against the execution (findings exit with code 7)")
	dot := fs.String("dot", "", "write the flow graph in DOT form to this file")
	ek := fs.Bool("edmonds-karp", false, "use Edmonds-Karp instead of Dinic")
	showOut := fs.Bool("show-output", true, "print the program's output")
	runs := fs.Int("runs", 1, "analyze this many executions of the same inputs jointly (batch mode, §3.2)")
	secretDir := fs.String("secret-dir", "", "batch mode: one run per file in this directory (sorted), each file the run's secret input")
	workers := fs.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	stages := fs.Bool("stages", false, "print per-stage pipeline timings")
	useCache := fs.Bool("cache", false, "run through a content-addressed stage cache and report the disposition (repeat -runs are served from cache)")
	faultSeed := fs.Int64("fault-seed", 0, "inject deterministic pipeline faults from this seed (0 = none); fault runs bypass the stage cache")
	timeout := fs.Duration("timeout", 0, "abort the analysis after this long (exit code 4)")
	maxSteps := fs.Uint64("max-steps", 0, "guest step limit (0 = default; exhaustion is a typed trap, exit code 3)")
	maxGraphNodes := fs.Int("max-graph-nodes", 0, "fail a run whose flow graph exceeds this many nodes (0 = unlimited)")
	maxGraphEdges := fs.Int("max-graph-edges", 0, "fail a run whose flow graph exceeds this many edges (0 = unlimited)")
	maxOutputBytes := fs.Int("max-output-bytes", 0, "fail a run whose public output exceeds this many bytes (0 = unlimited)")
	solverBudget := fs.Int64("solver-budget", 0, "max-flow work budget in arc examinations; exhaustion degrades to the trivial-cut bound (0 = unlimited)")
	precision := fs.String("precision", "", "precision ladder rung: trivial|static|full|adaptive (trivial/static answer a sound upper bound with no execution)")
	threshold := fs.Int64("threshold", 0, "adaptive precision: run the full solve only while the cheap bound exceeds this many bits")
	classesFlag := fs.String("classes", "", `per-class analysis (§10.1): comma-separated "name:off:len" secret classes; one execution, one solve per class, plus the joint bound`)
	classMode := fs.String("class-mode", "", "class analysis mode: shared (one execution + per-class capacity views, default) or reexec (legacy one execution per class)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	classes, err := parseClasses(*classesFlag)
	if err != nil {
		return err
	}
	prec, err := core.ParsePrecision(*precision)
	if err != nil {
		return err
	}
	prog, in, err := inputs.load(fs)
	if err != nil {
		return err
	}
	switch *classMode {
	case "", core.ClassModeShared, core.ClassModeReexec:
	default:
		return fmt.Errorf("unknown -class-mode %q (want shared or reexec)", *classMode)
	}
	cfg := core.Config{
		ClassMode:         *classMode,
		Taint:             taint.Options{Exact: *exact, ContextSensitive: *ctx, WarnImplicit: *warn},
		Lint:              *lint,
		Workers:           *workers,
		MaxSteps:          *maxSteps,
		Compact:           *compact,
		Precision:         prec,
		AdaptiveThreshold: *threshold,
		Budget: core.Budget{
			MaxGraphNodes:  *maxGraphNodes,
			MaxGraphEdges:  *maxGraphEdges,
			MaxOutputBytes: *maxOutputBytes,
			SolverWork:     *solverBudget,
		},
	}
	if *ek {
		cfg.Algorithm = maxflow.EdmondsKarp
	}
	if *faultSeed != 0 {
		n := *runs
		if n < 1 {
			n = 1
		}
		cfg.Fault = fault.Random(*faultSeed, n)
	}
	var cache *core.Cache
	if *useCache {
		cache = core.NewCache(core.CacheOptions{})
		cfg.Cache = cache
		if cfg.Fault != nil {
			// Without this notice a faulted run silently loses the cache
			// and looks like a cache bug in timing comparisons.
			fmt.Println("note: fault injection active; the stage cache is bypassed for every run (cache: bypass)")
		}
	}
	runCtx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	batch, err := batchInputs(in, *runs, *secretDir)
	if err != nil {
		return err
	}
	if len(classes) > 0 {
		if batch != nil {
			return fmt.Errorf("-classes cannot combine with batch mode (-runs/-secret-dir)")
		}
		if *precision != "" {
			return fmt.Errorf("-classes cannot combine with -precision: the cheap rungs never execute, so there is no graph to solve per class")
		}
		ca, err := core.AnalyzeClassSetContext(runCtx, prog, in, classes, cfg)
		if err != nil {
			return err
		}
		return printClassAnalysis(ca, *stages)
	}
	var res *core.Result
	if batch != nil {
		res, err = core.AnalyzeBatchContext(runCtx, prog, batch, cfg)
	} else {
		res, err = core.AnalyzeContext(runCtx, prog, in, cfg)
	}
	if err != nil {
		return err
	}
	if len(res.Runs) > 0 {
		failed := 0
		fmt.Printf("batch of %d runs:\n", len(res.Runs))
		fmt.Println("  run  bits  output  steps")
		for _, r := range res.Runs {
			note := ""
			if r.Trapped {
				note = "  (trapped)"
			}
			if r.Err != nil {
				note = fmt.Sprintf("  EXCLUDED: %v", r.Err)
				failed++
			}
			fmt.Printf("  %3d  %4d  %5dB  %d%s\n", r.Run, r.Bits, r.OutputBytes, r.Steps, note)
		}
		if failed > 0 {
			fmt.Printf("joint (merged by code location, §3.2; %d failed runs excluded):\n", failed)
		} else {
			fmt.Println("joint (merged by code location, §3.2):")
		}
	}
	if res.Trap != nil {
		fmt.Printf("note: guest trapped: %v (results cover the partial run)\n", res.Trap)
	}
	if res.Degraded {
		if res.Graph == nil {
			// A ladder rung answered without executing: a note, not a failure.
			fmt.Printf("note: %s\n", res.DegradedReason)
		} else {
			fmt.Printf("DEGRADED: %s; reporting the trivial-cut upper bound instead of max flow\n", res.DegradedReason)
		}
	}
	if *showOut && res.Graph != nil {
		fmt.Printf("output (%d bytes): %q\n", len(res.Output), abbrev(res.Output))
	}
	secretBytes := len(in.Secret)
	if batch != nil {
		secretBytes = 0
		for _, b := range batch {
			secretBytes += len(b.Secret)
		}
	}
	fmt.Printf("secret input: %d bytes; tainted output bound: %d bits\n",
		secretBytes, res.TaintedOutputBits)
	switch {
	case res.Graph == nil:
		fmt.Printf("upper bound (%s rung): %d bits\n", res.Rung, res.Bits)
	case res.Degraded:
		fmt.Printf("flow bound (trivial-cut fallback): %d bits\n", res.Bits)
		fmt.Println("minimum cut: unavailable (solve degraded)")
	default:
		fmt.Printf("maximum flow: %d bits\n", res.Bits)
		fmt.Printf("minimum cut: %s\n", res.CutString())
	}
	if res.Graph != nil {
		fmt.Printf("graph: %d nodes, %d edges; %d steps executed\n",
			res.Graph.NumNodes(), res.Graph.NumEdges(), res.Steps)
	}
	if m := res.Mem; m.CompactionPasses > 0 {
		fmt.Printf("memory: peak %d live edges of %d emitted (%.1fx); %d compaction passes reclaimed %d edges\n",
			m.PeakLiveEdges, m.TotalEdges, float64(m.TotalEdges)/float64(m.PeakLiveEdges),
			m.CompactionPasses, m.ReclaimedEdges)
	}
	if *stages {
		fmt.Printf("stages: %v\n", res.Stages)
	}
	if cache != nil {
		if res.Cache.Disposition != "" {
			if res.Cache.BypassReason != "" {
				fmt.Printf("cache: %s (%s)\n", res.Cache.Disposition, res.Cache.BypassReason)
			} else {
				fmt.Printf("cache: %s (key %s)\n", res.Cache.Disposition, res.Cache.Key)
			}
		}
		st := cache.Stats()
		tot := st.Totals()
		fmt.Printf("cache: %d hits, %d misses, %d evictions; %d entries, %d bytes of %d\n",
			tot.Hits+tot.Coalesced, tot.Misses, tot.Evictions, st.Entries, st.Bytes, st.MaxBytes)
	}
	if len(res.Snapshots) > 0 {
		fmt.Println("intermediate flows (__flownote):")
		for _, s := range res.Snapshots {
			fmt.Printf("  step %-10d output %4dB  %d bits\n", s.Steps, s.OutputBytes, s.Bits)
		}
	}
	for _, w := range res.Warnings {
		fmt.Println("warning:", w)
	}
	if *lint {
		if st := res.StaticStats; st != nil {
			fmt.Printf("static: %d funcs, %d blocks, %d branches, %d inferred regions, %d enclosure spans\n",
				st.Funcs, st.Blocks, st.Branches, st.Regions, st.Enclosures)
		}
		for _, f := range res.Lint {
			fmt.Println("lint:", f)
		}
		if len(res.Lint) > 0 {
			return fmt.Errorf("%d %w", len(res.Lint), errLint)
		}
		fmt.Println("lint: cross-check clean")
	}
	if *dot != "" && res.Graph == nil {
		fmt.Println("note: no flow graph to dump (rung answer, no execution); skipping -dot")
	} else if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Graph.WriteDOT(f, "flow"); err != nil {
			return err
		}
		fmt.Println("wrote", *dot)
	}
	if errors.Is(res.Trap, core.ErrStepLimit) {
		// Distinct from a guest fault: the bound above covers only the
		// truncated execution, so surface the exhaustion as exit code 3.
		return fmt.Errorf("guest exhausted its step limit after %d steps: %w", res.Steps, res.Trap)
	}
	return nil
}

// parseClasses parses the -classes flag: comma-separated "name:off:len"
// secret-class specs.
func parseClasses(s string) ([]core.SecretClass, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.SecretClass
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 || fields[0] == "" {
			return nil, fmt.Errorf("bad class spec %q (want name:off:len)", part)
		}
		off, err := strconv.Atoi(fields[1])
		if err != nil || off < 0 {
			return nil, fmt.Errorf("bad class spec %q: offset must be a non-negative integer", part)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad class spec %q: length must be a non-negative integer", part)
		}
		out = append(out, core.SecretClass{Name: fields[0], Off: off, Len: n})
	}
	return out, nil
}

// printClassAnalysis renders a class-set analysis: the per-class table,
// then the joint bound against the per-class sum (the gap is capacity the
// classes crowd each other out of, §10.1).
func printClassAnalysis(ca *core.ClassAnalysis, stages bool) error {
	fmt.Printf("class analysis (%s mode): %d classes, %d execution(s)\n",
		ca.Mode, len(ca.Classes), ca.Executions)
	var sum int64
	var firstErr error
	failed := 0
	for _, cr := range ca.Classes {
		c := cr.Class
		if cr.Err != nil {
			fmt.Printf("  %-14s [%3d:%3d)  FAILED: %v\n", c.Name, c.Off, c.Off+c.Len, cr.Err)
			failed++
			if firstErr == nil {
				firstErr = cr.Err
			}
			continue
		}
		note := ""
		if cr.Degraded {
			note = fmt.Sprintf("  DEGRADED: %s", cr.DegradedReason)
		}
		fmt.Printf("  %-14s [%3d:%3d)  %s%s\n", c.Name, c.Off, c.Off+c.Len, cr.Cut, note)
		sum += cr.Bits
	}
	if j := ca.Joint; j != nil {
		fmt.Printf("joint bound: %d bits (per-class sum: %d bits)\n", j.Bits, sum)
		if failed == 0 && sum > j.Bits {
			fmt.Printf("note: the classes crowd each other out of %d bits of shared capacity; the joint bound is what a leakage budget should charge\n", sum-j.Bits)
		}
		if stages {
			fmt.Printf("stages (shared execution + joint solve): %v\n", j.Stages)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d classes failed: %w", failed, len(ca.Classes), firstErr)
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	inputs := addInputFlags(fs)
	cutStr := fs.String("cut", "", "comma-separated cut sites (instruction addresses); default: derive by analyzing this run")
	budget := fs.Int64("budget", -1, "policy budget in bits (default: the analyzed flow)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, in, err := inputs.load(fs)
	if err != nil {
		return err
	}
	var cut []uint32
	bud := *budget
	if *cutStr != "" {
		for _, part := range strings.Split(*cutStr, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return fmt.Errorf("bad cut site %q: %v", part, err)
			}
			cut = append(cut, uint32(v))
		}
	} else {
		res, err := core.Analyze(prog, in, core.Config{})
		if err != nil {
			return err
		}
		cut = res.CutSites()
		if bud < 0 {
			bud = res.TaintedOutputBits + res.Bits // site-granular checking over-counts; allow slack
		}
		fmt.Printf("derived cut from analysis (flow %d bits):\n%s", res.Bits, describeSites(prog, cut))
	}
	r, err := check.RunTaintCheck(prog, in.Secret, in.Public, cut, 0)
	if err != nil {
		return err
	}
	fmt.Printf("revealed across cut: %d bits; violations: %d (%d bits)\n",
		r.RevealedBits, len(r.Violations), r.ViolationBits)
	for _, v := range r.Violations {
		fmt.Println("  violation:", v)
	}
	if bud >= 0 {
		if r.OK(bud) {
			fmt.Printf("policy OK (budget %d bits)\n", bud)
		} else {
			fmt.Printf("policy VIOLATED (budget %d bits)\n", bud)
			os.Exit(1)
		}
	}
	return nil
}

func cmdLockstep(args []string) error {
	fs := flag.NewFlagSet("lockstep", flag.ExitOnError)
	inputs := addInputFlags(fs)
	dummyStr := fs.String("dummy", "", "innocuous input for the shadow copy (default: 'x' repeated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, in, err := inputs.load(fs)
	if err != nil {
		return err
	}
	dummy := []byte(*dummyStr)
	if len(dummy) == 0 {
		dummy = make([]byte, len(in.Secret))
		for i := range dummy {
			dummy[i] = 'x'
		}
	}
	res, err := core.Analyze(prog, in, core.Config{})
	if err != nil {
		return err
	}
	cut := res.CutSites()
	fmt.Printf("derived cut from analysis (flow %d bits):\n%s", res.Bits, describeSites(prog, cut))
	r, err := check.RunLockstep(prog, in.Secret, dummy, in.Public, cut, 0)
	if err != nil {
		return err
	}
	if r.OK {
		fmt.Printf("lockstep OK: outputs identical; %d bits transferred at the cut; %d total steps\n",
			r.BitsTransferred, r.Steps)
		return nil
	}
	fmt.Printf("lockstep VIOLATION: %s\n", r.Divergence)
	os.Exit(1)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	guestName := fs.String("guest", "", "disassemble a built-in case-study program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var prog *vm.Program
	if *guestName != "" {
		prog = guest.Program(*guestName)
	} else {
		if fs.NArg() < 1 {
			return fmt.Errorf("need a source file or -guest name")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err = core.CompileCached(fs.Arg(0), string(src))
		if err != nil {
			return err
		}
	}
	lastSite := ^uint32(0)
	for pc, in := range prog.Code {
		if in.Site != lastSite {
			fmt.Printf("; %s\n", prog.SiteString(in.Site))
			lastSite = in.Site
		}
		fmt.Printf("%6d  %v\n", pc, in)
	}
	fmt.Printf("; %d instructions, %d data bytes, entry at %d\n",
		len(prog.Code), len(prog.Data), prog.Entry)
	return nil
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	guestName := fs.String("guest", "", "analyze a built-in case-study program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var name, src string
	if *guestName != "" {
		name, src = *guestName, guest.Source(*guestName)
	} else {
		if fs.NArg() < 1 {
			return fmt.Errorf("need a source file or -guest name")
		}
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		name, src = fs.Arg(0), string(b)
	}
	f, err := parser.Parse(name, src)
	if err != nil {
		return err
	}
	rep := infer.AnalyzeFile(name, f)
	fmt.Println(rep)
	for _, item := range rep.Items {
		note := ""
		if item.NeedsLength {
			note = " [needs length]"
		}
		fmt.Printf("  %s %s(%s): %s%s\n", item.Region, item.Func, item.Expr, item.Cat, note)
	}
	props := infer.Propose(f)
	if len(props) > 0 {
		fmt.Println("proposed regions for unannotated implicit-flow sites:")
		for _, p := range props {
			fmt.Printf("  %s %s: __enclose(%s)\n", p.Pos, p.Func, strings.Join(p.Outputs, ", "))
		}
	}
	return nil
}

// describeSites renders cut sites — instruction addresses — with their
// source locations, one per line, via the program's location table.
func describeSites(prog *vm.Program, sites []uint32) string {
	var b strings.Builder
	for _, s := range sites {
		fmt.Fprintf(&b, "  site %d: %s\n", s, prog.LocString(int(s)))
	}
	return b.String()
}

func abbrev(b []byte) []byte {
	if len(b) > 96 {
		return append(append([]byte{}, b[:93]...), "..."...)
	}
	return b
}
