package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"flowcheck/internal/serve"
)

// cmdRemote runs one analysis against a flowserved shard or flowcoord
// fleet over HTTP, speaking the same /analyze JSON as the service. It
// is the client path that honors Retry-After: 429 (budget window) and
// 503 (overload, open breaker, drain) responses carrying the header are
// retried after the hinted delay, up to -retries times, so a script
// driving a busy fleet backs off the way the service asks instead of
// hammering it.
func cmdRemote(args []string) error {
	fs := flag.NewFlagSet("flowcheck remote", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8077", "service base URL (flowserved shard or flowcoord)")
	program := fs.String("program", "", "registered program name (required)")
	secret := fs.String("secret", "", "secret input literal")
	secretFile := fs.String("secret-file", "", "secret input file")
	public := fs.String("public", "", "public input literal")
	publicFile := fs.String("public-file", "", "public input file")
	principal := fs.String("principal", "", "leakage-budget principal (X-Flow-Principal)")
	precision := fs.String("precision", "", "precision rung override: trivial, static, full, adaptive")
	timeoutMS := fs.Int64("timeout-ms", 0, "server-side request timeout in ms (0 = none)")
	retries := fs.Int("retries", 3, "max retries of 429/503 responses that carry Retry-After")
	maxWait := fs.Duration("max-wait", 30*time.Second, "cap on a single Retry-After sleep")
	jsonOut := fs.Bool("json", false, "print the raw response JSON instead of a summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *program == "" {
		return fmt.Errorf("remote: -program is required")
	}
	sec, err := inputBytes(*secret, *secretFile)
	if err != nil {
		return err
	}
	pub, err := inputBytes(*public, *publicFile)
	if err != nil {
		return err
	}

	req := serve.AnalyzeRequest{
		Program:   *program,
		Principal: *principal,
		SecretB64: base64.StdEncoding.EncodeToString(sec),
		PublicB64: base64.StdEncoding.EncodeToString(pub),
		Precision: *precision,
		TimeoutMS: *timeoutMS,
	}
	resp, hdr, err := postAnalyzeRetrying(context.Background(), http.DefaultClient,
		strings.TrimSuffix(*addr, "/")+"/analyze", &req, *retries, *maxWait, os.Stderr)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	fmt.Printf("%s: %d bits (rung %s)\n", resp.Program, resp.Bits, resp.Rung)
	if resp.Cut != "" {
		fmt.Printf("cut: %s\n", resp.Cut)
	}
	if resp.Trapped {
		fmt.Printf("trapped: %s\n", resp.Trap)
	}
	if shard := hdr.Get("X-Flow-Shard"); shard != "" {
		fmt.Printf("shard: %s\n", shard)
	}
	if rem := resp.RemainingBudgetBits; rem != nil {
		fmt.Printf("budget remaining: %d bits\n", *rem)
	}
	return nil
}

// postAnalyzeRetrying posts the request and honors Retry-After on 429
// and 503: it sleeps the hinted seconds (capped by maxWait) and tries
// again, up to retries extra attempts. Responses without the header,
// and every other status, fail immediately — the service said waiting
// will not help.
func postAnalyzeRetrying(ctx context.Context, client *http.Client, url string, req *serve.AnalyzeRequest, retries int, maxWait time.Duration, progress io.Writer) (*serve.AnalyzeResponse, http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := client.Do(hreq)
		if err != nil {
			return nil, nil, err
		}
		payload, err := io.ReadAll(hresp.Body)
		hresp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if hresp.StatusCode == http.StatusOK {
			var out serve.AnalyzeResponse
			if err := json.Unmarshal(payload, &out); err != nil {
				return nil, nil, fmt.Errorf("decoding response: %w", err)
			}
			return &out, hresp.Header, nil
		}

		var er serve.ErrorResponse
		_ = json.Unmarshal(payload, &er)
		retryable := hresp.StatusCode == http.StatusTooManyRequests ||
			hresp.StatusCode == http.StatusServiceUnavailable
		ra := hresp.Header.Get("Retry-After")
		if !retryable || ra == "" || attempt >= retries {
			return nil, nil, fmt.Errorf("remote: HTTP %d (%s): %s", hresp.StatusCode, er.Kind, er.Error)
		}
		secs, err := strconv.ParseInt(ra, 10, 64)
		if err != nil || secs < 0 {
			return nil, nil, fmt.Errorf("remote: HTTP %d with unusable Retry-After %q", hresp.StatusCode, ra)
		}
		wait := time.Duration(secs) * time.Second
		if wait > maxWait {
			wait = maxWait
		}
		if progress != nil {
			fmt.Fprintf(progress, "flowcheck: %s (%s); retrying in %v (%d/%d)\n",
				hresp.Status, er.Kind, wait, attempt+1, retries)
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, nil, ctx.Err()
		case <-t.C:
		}
	}
}

func inputBytes(lit, file string) ([]byte, error) {
	if file != "" {
		return os.ReadFile(file)
	}
	return []byte(lit), nil
}
