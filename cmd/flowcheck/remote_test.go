package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flowcheck/internal/serve"
)

// The client path of the Retry-After contract: a 429 or 503 carrying the
// header is retried after the hinted delay; everything else fails fast.
func TestPostAnalyzeRetryingHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "budget window busy", Kind: "budget-exceeded"})
			return
		}
		json.NewEncoder(w).Encode(serve.AnalyzeResponse{Program: "unary", Bits: 8})
	}))
	defer ts.Close()

	var progress strings.Builder
	resp, _, err := postAnalyzeRetrying(context.Background(), ts.Client(), ts.URL+"/analyze",
		&serve.AnalyzeRequest{Program: "unary"}, 3, time.Second, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bits != 8 || calls.Load() != 2 {
		t.Fatalf("bits %d after %d calls, want 8 after 2", resp.Bits, calls.Load())
	}
	if !strings.Contains(progress.String(), "retrying") {
		t.Fatalf("no retry progress reported: %q", progress.String())
	}
}

func TestPostAnalyzeRetryingFailsFastWithoutHint(t *testing.T) {
	cases := map[string]http.HandlerFunc{
		// A 503 with no Retry-After: the service gave no reason to wait.
		"503 no header": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "overload", Kind: "overload"})
		},
		// Deterministic failures never retry, hint or not.
		"404 with header": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "unknown program", Kind: "unknown-program"})
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				handler(w, r)
			}))
			defer ts.Close()
			_, _, err := postAnalyzeRetrying(context.Background(), ts.Client(), ts.URL+"/analyze",
				&serve.AnalyzeRequest{Program: "unary"}, 3, time.Second, io.Discard)
			if err == nil {
				t.Fatal("expected an error")
			}
			if calls.Load() != 1 {
				t.Fatalf("%d calls, want exactly 1 (no retry)", calls.Load())
			}
		})
	}
}

func TestPostAnalyzeRetryingRespectsRetryBudget(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "still draining", Kind: "draining"})
	}))
	defer ts.Close()
	_, _, err := postAnalyzeRetrying(context.Background(), ts.Client(), ts.URL+"/analyze",
		&serve.AnalyzeRequest{Program: "unary"}, 2, time.Second, io.Discard)
	if err == nil {
		t.Fatal("endless 503s must eventually fail")
	}
	if calls.Load() != 3 { // first try + 2 retries
		t.Fatalf("%d calls, want 3", calls.Load())
	}
}
