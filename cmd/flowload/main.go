// Command flowload drives an analysis fleet and records its
// throughput, latency, and failover trajectory as JSON (stdout; CI
// redirects it to BENCH_fleet.json). Human-readable progress goes to
// stderr.
//
// Two modes:
//
//   - -spawn N boots a self-contained fleet in-process: N shards (each
//     a full serve.Service with every built-in guest registered) behind
//     an in-process coordinator. -kill-shard i -kill-after d then drops
//     shard i mid-run the hard way (its listener closes; connections
//     refuse), exercising failover and batch re-dispatch exactly as a
//     kill -9 would.
//   - -coord URL drives an external flowcoord over HTTP.
//
// The run issues -requests single analyses at -concurrency across the
// registered programs, then (with -batch-runs > 0) one distributed
// batch, and emits totals, latency percentiles, a per-bucket
// trajectory, and the coordinator's failover/hedge/steal counters.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fleet"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

type result struct {
	start   time.Duration // offset from run start
	latency time.Duration
	ok      bool
	status  int
}

type bucket struct {
	TMS    int64   `json:"t_ms"`
	OK     int64   `json:"ok"`
	Failed int64   `json:"failed"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type report struct {
	Mode        string   `json:"mode"`
	Shards      int      `json:"shards"`
	Programs    []string `json:"programs"`
	Requests    int      `json:"requests"`
	Concurrency int      `json:"concurrency"`
	KillShard   int      `json:"kill_shard"`
	KillAfterMS int64    `json:"kill_after_ms,omitempty"`

	OK         int64    `json:"ok"`
	Failed     int64    `json:"failed"`
	LastError  string   `json:"last_error,omitempty"`
	DurationMS float64  `json:"duration_ms"`
	Throughput float64  `json:"throughput_rps"`
	P50MS      float64  `json:"p50_ms"`
	P90MS      float64  `json:"p90_ms"`
	P99MS      float64  `json:"p99_ms"`
	MaxMS      float64  `json:"max_ms"`
	Trajectory []bucket `json:"trajectory"`

	BatchRuns         int     `json:"batch_runs,omitempty"`
	BatchBits         int64   `json:"batch_bits,omitempty"`
	BatchMergedRuns   int     `json:"batch_merged_runs,omitempty"`
	BatchRedispatches int64   `json:"batch_redispatches,omitempty"`
	BatchSteals       int64   `json:"batch_steals,omitempty"`
	BatchLatencyMS    float64 `json:"batch_latency_ms,omitempty"`

	Coordinator *fleet.Stats `json:"coordinator,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowload:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("flowload", flag.ExitOnError)
	coordURL := fs.String("coord", "", "external coordinator base URL (mutually exclusive with -spawn)")
	spawn := fs.Int("spawn", 0, "boot this many in-process shards behind an in-process coordinator")
	programs := fs.String("programs", "sshauth,count_punct", "comma-separated programs to drive")
	requests := fs.Int("requests", 200, "single-analysis requests to issue")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	batchRuns := fs.Int("batch-runs", 16, "runs in the trailing distributed batch (0 = skip)")
	killShard := fs.Int("kill-shard", -1, "spawn mode: shard index to kill mid-run (-1 = none)")
	killAfter := fs.Duration("kill-after", 300*time.Millisecond, "spawn mode: when to kill the shard")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	progs := strings.Split(*programs, ",")

	rep := report{
		Programs:    progs,
		Requests:    *requests,
		Concurrency: *concurrency,
		KillShard:   *killShard,
	}

	var analyze func(ctx context.Context, req *serve.AnalyzeRequest) (int, error)
	var batch func(ctx context.Context, req *fleet.BatchRequest) (*fleet.BatchResponse, error)
	var kill func(i int)
	var coordStats func() *fleet.Stats

	switch {
	case *spawn > 0 && *coordURL != "":
		return fmt.Errorf("-spawn and -coord are mutually exclusive")
	case *spawn > 0:
		rep.Mode = "spawn"
		rep.Shards = *spawn
		if *killShard >= 0 {
			rep.KillAfterMS = killAfter.Milliseconds()
		}
		var servers []*httptest.Server
		var specs []fleet.ShardSpec
		for i := 0; i < *spawn; i++ {
			svc := serve.New(serve.Options{
				ShardName:  fmt.Sprintf("shard-%d", i),
				CacheBytes: 32 << 20,
			})
			for _, name := range guest.Names() {
				svc.Register(name, guest.Program(name), engine.Config{})
			}
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			servers = append(servers, ts)
			specs = append(specs, fleet.ShardSpec{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL})
		}
		coord, err := fleet.New(fleet.Options{
			Shards:        specs,
			ProbeInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		coord.Start()
		defer coord.Close()
		analyze = func(ctx context.Context, req *serve.AnalyzeRequest) (int, error) {
			_, _, err := coord.Analyze(ctx, req)
			return 0, err
		}
		batch = coord.AnalyzeBatch
		kill = func(i int) {
			if i >= 0 && i < len(servers) {
				servers[i].CloseClientConnections()
				servers[i].Close()
			}
		}
		coordStats = func() *fleet.Stats { st := coord.Stats(); return &st }
	case *coordURL != "":
		rep.Mode = "remote"
		base := strings.TrimSuffix(*coordURL, "/")
		client := &http.Client{}
		analyze = func(ctx context.Context, req *serve.AnalyzeRequest) (int, error) {
			return postJSON(ctx, client, base+"/analyze", req, nil)
		}
		batch = func(ctx context.Context, req *fleet.BatchRequest) (*fleet.BatchResponse, error) {
			var out fleet.BatchResponse
			if _, err := postJSON(ctx, client, base+"/analyzebatch", req, &out); err != nil {
				return nil, err
			}
			return &out, nil
		}
		kill = func(int) {}
		coordStats = func() *fleet.Stats {
			resp, err := client.Get(base + "/statz")
			if err != nil {
				return nil
			}
			defer resp.Body.Close()
			var st fleet.Stats
			if json.NewDecoder(resp.Body).Decode(&st) != nil {
				return nil
			}
			return &st
		}
	default:
		return fmt.Errorf("one of -spawn N or -coord URL is required")
	}

	// Drive: each request perturbs the guest's sample secret
	// deterministically so the cache sees variety without any RNG.
	results := make([]result, *requests)
	var failed atomic.Int64
	var lastErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	var next atomic.Int64
	if *killShard >= 0 && rep.Mode == "spawn" {
		go func() {
			time.Sleep(*killAfter)
			fmt.Fprintf(os.Stderr, "flowload: killing shard %d at %v\n", *killShard, time.Since(start))
			kill(*killShard)
		}()
	}
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				prog := progs[i%len(progs)]
				secret, public, _ := guest.SampleInputs(prog)
				sec := append([]byte(nil), secret...)
				if len(sec) > 0 {
					sec[i%len(sec)] = byte('a' + i%26)
				}
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				t0 := time.Now()
				_, err := analyze(ctx, &serve.AnalyzeRequest{
					Program:   prog,
					SecretB64: b64(sec),
					PublicB64: b64(public),
				})
				cancel()
				results[i] = result{start: t0.Sub(start), latency: time.Since(t0), ok: err == nil}
				if err != nil {
					failed.Add(1)
					lastErr.Store(err.Error())
				}
			}
		}()
	}
	wg.Wait()
	driveDur := time.Since(start)

	if *batchRuns > 0 {
		breq := &fleet.BatchRequest{Program: progs[0]}
		secret, public, _ := guest.SampleInputs(progs[0])
		for i := 0; i < *batchRuns; i++ {
			sec := append([]byte(nil), secret...)
			if len(sec) > 0 {
				sec[i%len(sec)] = byte('A' + i%26)
			}
			breq.Runs = append(breq.Runs, fleet.RunInput{SecretB64: b64(sec), PublicB64: b64(public)})
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		bresp, err := batch(ctx, breq)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowload: batch failed: %v\n", err)
		} else {
			rep.BatchRuns = *batchRuns
			rep.BatchBits = bresp.Bits
			rep.BatchMergedRuns = bresp.MergedRuns
			rep.BatchRedispatches = bresp.Redispatches
			rep.BatchSteals = bresp.Steals
			rep.BatchLatencyMS = bresp.LatencyMS
		}
	}

	// Aggregate.
	lat := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.ok {
			lat = append(lat, r.latency)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.OK = int64(len(lat))
	rep.Failed = failed.Load()
	if e, _ := lastErr.Load().(string); e != "" {
		rep.LastError = e
	}
	rep.DurationMS = float64(driveDur.Microseconds()) / 1000
	if driveDur > 0 {
		rep.Throughput = float64(len(lat)) / driveDur.Seconds()
	}
	rep.P50MS = pctMS(lat, 50)
	rep.P90MS = pctMS(lat, 90)
	rep.P99MS = pctMS(lat, 99)
	if n := len(lat); n > 0 {
		rep.MaxMS = float64(lat[n-1].Microseconds()) / 1000
	}
	rep.Trajectory = trajectory(results, driveDur)
	rep.Coordinator = coordStats()

	fmt.Fprintf(os.Stderr, "flowload: %d ok, %d failed in %.1fms (%.1f rps), p50 %.2fms p99 %.2fms\n",
		rep.OK, rep.Failed, rep.DurationMS, rep.Throughput, rep.P50MS, rep.P99MS)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// trajectory slices the run into ≤20 equal buckets for the per-PR
// throughput/latency trend line.
func trajectory(results []result, total time.Duration) []bucket {
	if total <= 0 || len(results) == 0 {
		return nil
	}
	n := 10
	width := total / time.Duration(n)
	if width <= 0 {
		width = time.Millisecond
	}
	perBucket := make([][]time.Duration, n)
	out := make([]bucket, n)
	for i := range out {
		out[i].TMS = (width * time.Duration(i)).Milliseconds()
	}
	for _, r := range results {
		b := int(r.start / width)
		if b >= n {
			b = n - 1
		}
		if r.ok {
			out[b].OK++
			perBucket[b] = append(perBucket[b], r.latency)
		} else {
			out[b].Failed++
		}
	}
	for i := range out {
		sort.Slice(perBucket[i], func(a, b int) bool { return perBucket[i][a] < perBucket[i][b] })
		out[i].P50MS = pctMS(perBucket[i], 50)
		out[i].P99MS = pctMS(perBucket[i], 99)
	}
	return out
}

func pctMS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(sorted[idx].Microseconds()) / 1000
}

func b64(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return base64.StdEncoding.EncodeToString(b)
}

// postJSON posts v and decodes into out (when non-nil), returning the
// HTTP status. Retry-After-honoring retries live in flowcheck's client;
// the load driver reports refusals as failures on purpose — they are
// the datapoint.
func postJSON(ctx context.Context, client *http.Client, url string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	if out != nil {
		return resp.StatusCode, json.Unmarshal(payload, out)
	}
	return resp.StatusCode, nil
}
