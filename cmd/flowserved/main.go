// Command flowserved is the long-lived analysis daemon: it serves the
// quantitative information-flow analysis over HTTP/JSON, with the
// resilience layer of internal/serve in front of the engine — bounded
// deadline-aware admission, retry with capped backoff for transient
// failures, per-program circuit breaking, crash-isolated session
// recycling, and graceful drain on SIGTERM.
//
// Usage:
//
//	flowserved [-addr :8077] [flags]
//
// Endpoints:
//
//	POST /analyze  {"program":"sshauth","secret":"hunter2...","timeout_ms":500}
//	GET  /healthz  service statistics (breakers, pools, queue, EWMA latency)
//	GET  /readyz   200 while admitting; 503 once draining
//	GET  /statz    cache observability: hit/miss/evict/bytes, per-stage hit ratios
//
// The daemon runs a shared content-addressed stage cache (-cache-bytes,
// default 64 MiB; 0 disables): repeat requests are answered from the
// cache before admission queuing (X-Flow-Cache: hit, attempts 0) and
// input-only changes reuse the program's static analysis and collapsed
// graph skeleton (X-Flow-Cache: incremental).
//
// With -ledger-dir (and/or -budget-bits) the daemon keeps a durable
// leakage-budget ledger: each request is charged a pessimistic estimate
// against its principal (X-Flow-Principal header or "principal" field)
// before running and settled to the measured bits after; principals over
// budget get 429 with kind "budget-exceeded", and ledger I/O failures
// deny with 503 "ledger-unavailable" unless -ledger-fail-open. The WAL in
// -ledger-dir replays on boot, so cumulative bits — and exhausted
// budgets — survive crashes and restarts.
//
// Every built-in case-study guest (flowcheck guests) is registered as a
// program; -src FILE.mc registers additional MiniC programs by file
// basename. Shed requests (queue full, or a deadline the current backlog
// cannot meet) return 503 with kind "overload" without consuming a
// worker; an open circuit breaker returns 503 with kind "breaker-open".
// On SIGTERM/SIGINT the daemon stops admitting (readyz goes 503), drains
// in-flight requests, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/guest"
	"flowcheck/internal/lang"
	"flowcheck/internal/ledger"
	"flowcheck/internal/serve"
	"flowcheck/internal/taint"
)

type srcList []string

func (s *srcList) String() string     { return strings.Join(*s, ",") }
func (s *srcList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowserved:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("flowserved", flag.ExitOnError)
	addr := fs.String("addr", ":8077", "listen address")
	workers := fs.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue depth (0 = 4x workers)")
	maxAttempts := fs.Int("max-attempts", 3, "attempts per request, first try included")
	baseBackoff := fs.Duration("base-backoff", 5*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	maxBackoff := fs.Duration("max-backoff", 250*time.Millisecond, "retry backoff cap")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive internal failures that open a program's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker cooldown before a half-open probe")
	retryDegraded := fs.Bool("retry-degraded", false, "retry solver-degraded results with the solver budget doubled")
	highWater := fs.Int("recycle-high-water", 1<<20, "recycle sessions whose arena exceeded this many peak live edges (0 = never)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "shared content-addressed stage cache budget in bytes (0 = disable caching)")
	ledgerDir := fs.String("ledger-dir", "", "durable leakage-budget ledger directory (empty = no ledger)")
	budgetBits := fs.Int64("budget-bits", 0, "cumulative leakage budget per (principal, program) in bits (0 = account but never deny; requires -ledger-dir or -budget-bits>0 to enable the ledger)")
	ledgerWindow := fs.Duration("ledger-window", 0, "leakage budget decay window: settled bits reset this long after a pair's window opens (0 = lifetime budget)")
	ledgerSync := fs.Int("ledger-sync", 1, "fsync the ledger WAL every N appends (1 = every append, -1 = never)")
	ledgerFailOpen := fs.Bool("ledger-fail-open", false, "admit requests when ledger I/O fails instead of denying (default fail-closed)")
	exact := fs.Bool("exact", false, "exact-mode analysis (per-operation graphs)")
	maxSteps := fs.Uint64("max-steps", 0, "guest step limit (0 = engine default)")
	maxOutputBytes := fs.Int("max-output-bytes", 0, "per-run output budget in bytes (0 = unlimited)")
	maxGraphEdges := fs.Int("max-graph-edges", 0, "per-run graph edge budget (0 = unlimited)")
	solverBudget := fs.Int64("solver-budget", 0, "per-run solver work budget; exhaustion degrades (0 = unlimited)")
	shardName := fs.String("shard-name", "", "fleet shard identity; sets the X-Flow-Shard header on every response (empty = standalone)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	var srcs srcList
	fs.Var(&srcs, "src", "register a MiniC source file as a program (repeatable; program name is the file basename)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	// The ledger turns on when it has somewhere to persist or something to
	// enforce. -ledger-dir alone accounts durably without denying;
	// -budget-bits alone enforces in memory only (restart forgets).
	var led *ledger.Ledger
	if *ledgerDir != "" || *budgetBits > 0 {
		var err error
		led, err = ledger.Open(ledger.Options{
			Dir:        *ledgerDir,
			BudgetBits: *budgetBits,
			Window:     *ledgerWindow,
			SyncEvery:  *ledgerSync,
			FailOpen:   *ledgerFailOpen,
			Logger:     log,
		})
		if err != nil {
			return fmt.Errorf("opening ledger: %w", err)
		}
		defer led.Close()
		st := led.Stats()
		log.Info("leakage ledger open",
			"dir", *ledgerDir,
			"budget_bits", *budgetBits,
			"fail_open", *ledgerFailOpen,
			"replayed_records", st.ReplayedRecords,
			"recovered_pending", st.RecoveredPending,
			"truncated_bytes", st.TruncatedBytes,
			"principals", len(st.Entries),
		)
	}

	svc := serve.New(serve.Options{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		MaxAttempts:      *maxAttempts,
		BaseBackoff:      *baseBackoff,
		MaxBackoff:       *maxBackoff,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		RetryDegraded:    *retryDegraded,
		SessionHighWater: *highWater,
		CacheBytes:       *cacheBytes,
		Ledger:           led,
		ShardName:        *shardName,
		Logger:           log,
	})

	cfg := engine.Config{
		Taint:    taint.Options{Exact: *exact},
		MaxSteps: *maxSteps,
		Budget: engine.Budget{
			MaxOutputBytes: *maxOutputBytes,
			MaxGraphEdges:  *maxGraphEdges,
			SolverWork:     *solverBudget,
		},
	}
	for _, name := range guest.Names() {
		svc.Register(name, guest.Program(name), cfg)
	}
	for _, path := range srcs {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		prog, err := lang.Compile(path, string(src))
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		svc.Register(name, prog, cfg)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Info("flowserved listening", "addr", *addr, "programs", len(svc.Programs()))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	stop()

	// Graceful drain: refuse new work (readyz flips to 503), let the HTTP
	// server finish in-flight requests, then wait out the service's own
	// in-flight count before exiting 0.
	log.Info("signal received; draining")
	svc.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Drain(ctx); err != nil {
		return err
	}
	log.Info("drained; exiting")
	return nil
}
