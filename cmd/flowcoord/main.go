// Command flowcoord is the fleet coordinator: it fronts N flowserved
// shards, consistent-hashes programs across them (so each shard's
// session pool, stage cache, and breaker state stay hot for its
// programs), probes shard health, fails over on shard errors with
// capped backoff, hedges slow requests to the next ring replica, and
// fans batches across the fleet with work stealing — merging the
// per-run graphs into a joint bound that is bit-identical to a
// single-process run, even when a shard dies mid-batch.
//
// Usage:
//
//	flowcoord -shard a=http://127.0.0.1:8091 -shard b=http://127.0.0.1:8092 [-addr :8077]
//
// Endpoints:
//
//	POST /analyze       route one analysis to the program's shard (same
//	                    JSON as flowserved /analyze, plus X-Flow-Shard)
//	POST /analyzebatch  {"program":"sshauth","runs":[{"secret":"..."},...]}
//	GET  /healthz       coordinator statistics
//	GET  /readyz        200 while admitting and ≥1 shard is routable
//	GET  /statz         the shard table: state, latency, hedges,
//	                    failovers, steal counts, ring spread
//
// On SIGTERM/SIGINT the coordinator stops admitting, finishes in-flight
// requests, and exits 0. Shards drain independently — a draining shard
// refuses before charging any ledger, so the coordinator just routes
// around it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flowcheck/internal/fleet"
)

type shardList []fleet.ShardSpec

func (s *shardList) String() string {
	parts := make([]string, len(*s))
	for i, sp := range *s {
		parts[i] = sp.Name + "=" + sp.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardList) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, fleet.ShardSpec{Name: name, URL: strings.TrimSuffix(url, "/")})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("flowcoord", flag.ExitOnError)
	addr := fs.String("addr", ":8077", "listen address")
	var shards shardList
	fs.Var(&shards, "shard", "shard as name=url (repeatable)")
	replicas := fs.Int("replicas", 0, "failover depth per program key (0 = min(3, shards))")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per shard on the ring")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "shard health probe cadence")
	failThreshold := fs.Int("fail-threshold", 2, "consecutive failures that mark a shard down")
	hedgeAfter := fs.Duration("hedge-after", 50*time.Millisecond, "floor delay before hedging to the next replica")
	hedgeMultiple := fs.Float64("hedge-multiple", 3, "hedge when a shard exceeds this multiple of its latency EWMA")
	maxHedges := fs.Int("max-hedges", 1, "duplicate requests per analysis beyond the first")
	batchWorkers := fs.Int("batch-workers", 4, "concurrent batch runs per shard")
	solverBudget := fs.Int64("solver-budget", 0, "joint-solve work budget for merged batches (0 = unlimited; must match the shards')")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if len(shards) == 0 {
		return fmt.Errorf("at least one -shard name=url is required")
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	coord, err := fleet.New(fleet.Options{
		Shards:               shards,
		Replicas:             *replicas,
		VirtualNodes:         *vnodes,
		ProbeInterval:        *probeInterval,
		FailThreshold:        *failThreshold,
		HedgeAfter:           *hedgeAfter,
		HedgeMultiple:        *hedgeMultiple,
		MaxHedges:            *maxHedges,
		BatchWorkersPerShard: *batchWorkers,
		SolverWork:           *solverBudget,
		Logger:               log,
	})
	if err != nil {
		return err
	}
	coord.Start()

	srv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Info("flowcoord listening", "addr", *addr, "shards", len(shards))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	stop()

	log.Info("signal received; draining")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	coord.Close()
	log.Info("drained; exiting")
	return nil
}
