package static

import (
	"math/rand"
	"testing"

	"flowcheck/internal/guest"
	"flowcheck/internal/vm"
)

func ins(op vm.Op, a uint8, imm int32) vm.Instr {
	return vm.Instr{Op: op, A: a, Imm: imm}
}

func oneFunc(name string, code []vm.Instr) *vm.Program {
	return &vm.Program{
		Code:  code,
		Funcs: []vm.FuncInfo{{Name: name, Entry: 0, End: len(code)}},
	}
}

// cfgOf builds the single-function CFG of a hand-assembled program.
func cfgOf(t *testing.T, p *vm.Program) *FuncCFG {
	t.Helper()
	cfgs := BuildCFG(p)
	if len(cfgs) != 1 {
		t.Fatalf("got %d CFGs, want 1", len(cfgs))
	}
	return cfgs[0]
}

func TestNoFuncTableNoCFG(t *testing.T) {
	p := &vm.Program{Code: []vm.Instr{ins(vm.OpHalt, 0, 0)}}
	if got := BuildCFG(p); len(got) != 0 {
		t.Fatalf("hand-assembled program produced %d CFGs, want 0", len(got))
	}
	a := Analyze(p)
	if a.Covered(0) {
		t.Fatal("program without CFGs should have no covered pcs")
	}
}

// A conditional branch whose target is also reached by fallthrough: the
// fallthrough instruction and the jump target must land in different
// blocks, connected by an edge, not be merged.
func TestFallthroughIntoJumpTarget(t *testing.T) {
	p := oneFunc("f", []vm.Instr{
		ins(vm.OpConst, 0, 1), // 0
		ins(vm.OpJz, 0, 3),    // 1: branch over the nop
		ins(vm.OpNop, 0, 0),   // 2: fallthrough arm, falls into 3
		ins(vm.OpNop, 0, 0),   // 3: jump target
		ins(vm.OpHalt, 0, 0),  // 4
	})
	c := cfgOf(t, p)
	if len(c.Blocks) != 4 { // [0,2) [2,3) [3,5) + exit
		t.Fatalf("got %d blocks, want 4", len(c.Blocks))
	}
	if c.BlockAt(2) == c.BlockAt(3) {
		t.Fatal("fallthrough instruction merged into the jump-target block")
	}
	fall, target := c.BlockAt(2), c.BlockAt(3)
	if got := c.Blocks[fall].Succs; len(got) != 1 || got[0] != target {
		t.Fatalf("fallthrough block succs = %v, want [%d]", got, target)
	}
	branch := c.BlockAt(1)
	if got := c.Blocks[branch].Succs; len(got) != 2 {
		t.Fatalf("branch block succs = %v, want fallthrough+target", got)
	}
}

// A branch both of whose arms halt: no postdominator inside the function,
// so the inferred region conservatively spans everything reachable.
func TestBranchToExitNoPostdominator(t *testing.T) {
	p := oneFunc("f", []vm.Instr{
		ins(vm.OpJz, 0, 3),   // 0
		ins(vm.OpNop, 0, 0),  // 1
		ins(vm.OpHalt, 0, 0), // 2
		ins(vm.OpNop, 0, 0),  // 3
		ins(vm.OpHalt, 0, 0), // 4
	})
	a := Analyze(p)
	if len(a.Regions) != 1 {
		t.Fatalf("got %d regions, want 1", len(a.Regions))
	}
	r := a.Regions[0]
	if r.PostDom != -1 {
		t.Fatalf("PostDom = %d, want -1 (only postdominator is the virtual exit)", r.PostDom)
	}
	for pc := 0; pc < 5; pc++ {
		if !r.Covers(pc) {
			t.Fatalf("region misses pc %d; must span everything reachable", pc)
		}
	}
}

// One arm is an infinite loop: its blocks never reach the exit (ipdom
// -1), and the branch's postdominator is the join on the terminating arm.
func TestInfiniteLoopArm(t *testing.T) {
	p := oneFunc("f", []vm.Instr{
		ins(vm.OpJz, 0, 4),   // 0: branch
		ins(vm.OpNop, 0, 0),  // 1: loop body
		ins(vm.OpNop, 0, 0),  // 2
		ins(vm.OpJmp, 0, 1),  // 3: spin forever
		ins(vm.OpHalt, 0, 0), // 4
	})
	c := cfgOf(t, p)
	ipdom := Postdominators(c)
	if loop := c.BlockAt(1); ipdom[loop] != -1 {
		t.Fatalf("infinite-loop block ipdom = %d, want -1 (cannot reach exit)", ipdom[loop])
	}
	a := Analyze(p)
	r := a.Regions[0]
	if r.PostDom != 4 {
		t.Fatalf("PostDom = %d, want 4 (the halting arm)", r.PostDom)
	}
	for pc := 0; pc <= 3; pc++ {
		if !r.Covers(pc) {
			t.Fatalf("region misses pc %d", pc)
		}
	}
	if r.Covers(4) {
		t.Fatal("region must stop at the postdominator")
	}
}

// The classic irreducible shape: a two-block loop entered at both blocks.
// The iterative and LT algorithms must agree, and the postdominators are
// still well-defined.
func TestIrreducibleLoop(t *testing.T) {
	p := oneFunc("f", []vm.Instr{
		ins(vm.OpJz, 0, 4),   // 0: enter loop at B (4) or fall to A's feeder
		ins(vm.OpNop, 0, 0),  // 1: feeder, falls into A
		ins(vm.OpNop, 0, 0),  // 2: A
		ins(vm.OpJz, 1, 6),   // 3: A: leave loop or fall into B
		ins(vm.OpNop, 0, 0),  // 4: B
		ins(vm.OpJmp, 0, 2),  // 5: B -> A (second loop entry is 0 -> 4)
		ins(vm.OpHalt, 0, 0), // 6
	})
	c := cfgOf(t, p)
	chk := Postdominators(c)
	lt := postdominatorsLT(c)
	for b := range chk {
		if chk[b] != lt[b] {
			t.Fatalf("block %d: CHK ipdom %d != LT ipdom %d", b, chk[b], lt[b])
		}
	}
	// Every path from A reaches the exit through A's own branch block; the
	// branch's postdominator is the halt.
	blkA, blkHalt := c.BlockAt(2), c.BlockAt(6)
	if chk[blkA] != blkHalt {
		t.Fatalf("ipdom(A) = %d, want %d (halt block)", chk[blkA], blkHalt)
	}
}

// An indirect jump gets every block leader of its function as successor,
// and its region covers everything reachable from them.
func TestIndirectJumpOverApproximation(t *testing.T) {
	p := oneFunc("f", []vm.Instr{
		ins(vm.OpConst, 0, 2),  // 0
		ins(vm.OpJmpInd, 0, 0), // 1
		ins(vm.OpNop, 0, 0),    // 2
		ins(vm.OpHalt, 0, 0),   // 3
	})
	c := cfgOf(t, p)
	if !c.Indirect {
		t.Fatal("CFG not marked Indirect")
	}
	b := c.Blocks[c.BlockAt(1)]
	if len(b.Succs) != c.Exit { // every real block is a leader here
		t.Fatalf("jmpind succs = %v, want all %d block leaders", b.Succs, c.Exit)
	}
	a := Analyze(p)
	if len(a.Regions) != 1 || !a.Regions[0].Indirect {
		t.Fatalf("want one indirect region, got %+v", a.Regions)
	}
	// The block after the jmpind postdominates it (every leader reaches
	// it), so the region is the jump's own block — including a potential
	// loop back to the entry — and stops at pc 2.
	r := a.Regions[0]
	if r.PostDom != 2 {
		t.Fatalf("PostDom = %d, want 2", r.PostDom)
	}
	for pc := 0; pc < 2; pc++ {
		if !r.Covers(pc) {
			t.Fatalf("pc %d not covered by the indirect region", pc)
		}
	}
	if r.Covers(2) {
		t.Fatal("region must stop at the postdominating block")
	}
}

// CHK and LT must agree on every guest program's CFG.
func TestPostdominatorsAgreeOnGuests(t *testing.T) {
	for _, name := range guest.Names() {
		for _, c := range BuildCFG(guest.Program(name)) {
			chk := Postdominators(c)
			lt := postdominatorsLT(c)
			for b := range chk {
				if chk[b] != lt[b] {
					t.Fatalf("%s/%s block %d: CHK ipdom %d != LT ipdom %d",
						name, c.Name, b, chk[b], lt[b])
				}
			}
		}
	}
}

// Randomized agreement: arbitrary (including unreachable and irreducible)
// block graphs, CHK vs LT.
func TestPostdominatorsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12) // real blocks
		c := &FuncCFG{Name: "rand", Entry: 0, End: n}
		for i := 0; i < n; i++ {
			c.Blocks = append(c.Blocks, &Block{ID: i, Start: i, End: i + 1})
		}
		exit := &Block{ID: n, Start: n, End: n}
		c.Blocks = append(c.Blocks, exit)
		c.Exit = n
		for _, b := range c.Blocks[:n] {
			deg := 1 + rng.Intn(2)
			var succs []int
			for d := 0; d < deg; d++ {
				succs = append(succs, rng.Intn(n+1)) // may hit exit
			}
			b.Succs = dedupInts(succs)
			for _, s := range b.Succs {
				c.Blocks[s].Preds = append(c.Blocks[s].Preds, b.ID)
			}
		}
		chk := Postdominators(c)
		lt := postdominatorsLT(c)
		for b := range chk {
			if chk[b] != lt[b] {
				t.Fatalf("trial %d block %d: CHK ipdom %d != LT ipdom %d (graph %+v)",
					trial, b, chk[b], lt[b], c.Blocks)
			}
		}
	}
}
