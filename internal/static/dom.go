package static

// Postdominator computation. The primary algorithm is the iterative
// dataflow formulation of Cooper, Harvey & Kennedy ("A Simple, Fast
// Dominance Algorithm"), run over the reverse CFG rooted at the virtual
// exit block. A semi-dominator (Lengauer–Tarjan style) implementation is
// kept alongside and cross-tested against it; the simple algorithm is
// near-linear on our small reducible CFGs, and the agreement test guards
// both against transcription bugs.

// Postdominators returns ipdom, where ipdom[b] is the immediate
// postdominator of block b, ipdom[exit] == exit, and ipdom[b] == -1 for
// blocks that cannot reach the exit (e.g. bodies of infinite loops).
func Postdominators(c *FuncCFG) []int {
	// Reverse-postorder of the reverse CFG, rooted at exit: a DFS over
	// predecessor edges, then reversed finish order.
	n := len(c.Blocks)
	order := make([]int, 0, n) // postorder of reverse-DFS
	number := make([]int, n)   // block -> postorder number
	visited := make([]bool, n)
	for i := range number {
		number[i] = -1
	}
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, p := range c.Blocks[b].Preds {
			if !visited[p] {
				dfs(p)
			}
		}
		number[b] = len(order)
		order = append(order, b)
	}
	dfs(c.Exit)

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[c.Exit] = c.Exit

	intersect := func(a, b int) int {
		for a != b {
			for number[a] < number[b] {
				a = ipdom[a]
			}
			for number[b] < number[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Iterate in reverse postorder of the reverse graph: exit first.
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == c.Exit {
				continue
			}
			newIdom := -1
			for _, s := range c.Blocks[b].Succs {
				if ipdom[s] == -1 {
					continue // successor not (yet) known to reach exit
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(s, newIdom)
				}
			}
			if newIdom != -1 && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	return ipdom
}

// postdominatorsLT computes the same ipdom array with the classic
// Lengauer–Tarjan semidominator algorithm (simple path-compression
// variant) over the reverse CFG. Used only by tests as an independent
// oracle for Postdominators.
func postdominatorsLT(c *FuncCFG) []int {
	n := len(c.Blocks)
	const none = -1

	semi := make([]int, n) // dfs number of semidominator
	vertex := make([]int, 0, n)
	parent := make([]int, n) // dfs tree parent
	dfsnum := make([]int, n)
	for i := range dfsnum {
		dfsnum[i] = none
		parent[i] = none
		semi[i] = none
	}

	// DFS over the reverse CFG from exit.
	var dfs func(int)
	dfs = func(v int) {
		dfsnum[v] = len(vertex)
		semi[v] = dfsnum[v]
		vertex = append(vertex, v)
		for _, w := range c.Blocks[v].Preds {
			if dfsnum[w] == none {
				parent[w] = v
				dfs(w)
			}
		}
	}
	dfs(c.Exit)

	ancestor := make([]int, n)
	label := make([]int, n)
	for i := range ancestor {
		ancestor[i] = none
		label[i] = i
	}
	var compress func(int)
	compress = func(v int) {
		if ancestor[ancestor[v]] == none {
			return
		}
		compress(ancestor[v])
		if semi[label[ancestor[v]]] < semi[label[v]] {
			label[v] = label[ancestor[v]]
		}
		ancestor[v] = ancestor[ancestor[v]]
	}
	eval := func(v int) int {
		if ancestor[v] == none {
			return v
		}
		compress(v)
		return label[v]
	}

	bucket := make([][]int, n)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = none
	}

	for i := len(vertex) - 1; i >= 1; i-- {
		w := vertex[i]
		// Edges of the reverse CFG into w are successor edges of the CFG.
		for _, v := range c.Blocks[w].Succs {
			if dfsnum[v] == none {
				continue
			}
			u := eval(v)
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[vertex[semi[w]]] = append(bucket[vertex[semi[w]]], w)
		ancestor[w] = parent[w]
		for _, v := range bucket[parent[w]] {
			u := eval(v)
			if semi[u] < semi[v] {
				idom[v] = u
			} else {
				idom[v] = parent[w]
			}
		}
		bucket[parent[w]] = nil
	}
	for i := 1; i < len(vertex); i++ {
		w := vertex[i]
		if idom[w] != vertex[semi[w]] {
			idom[w] = idom[idom[w]]
		}
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[c.Exit] = c.Exit
	for i := 1; i < len(vertex); i++ {
		w := vertex[i]
		ipdom[w] = idom[w]
	}
	return ipdom
}
