package static

import (
	"testing"

	"flowcheck/internal/vm"
)

// buildProg assembles a tiny program with a function table so the CFG and
// bound passes have something covered to chew on.
func buildProg(code []vm.Instr, funcs []vm.FuncInfo, entry int) *vm.Program {
	return &vm.Program{Code: code, Funcs: funcs, Entry: entry}
}

func boundOf(t *testing.T, p *vm.Program) *Bound {
	t.Helper()
	a := Analyze(p)
	if a.Bound == nil {
		t.Fatal("Analyze left Bound nil")
	}
	return a.Bound
}

// A straight-line read of 4 secret bytes bounds the stream at 32 bits.
func TestBoundStraightLineRead(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R1, Imm: 0}, // buf
		{Op: vm.OpConst, A: vm.R2, Imm: 4}, // len
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if b.StreamReadBits != 32 {
		t.Fatalf("StreamReadBits = %d, want 32", b.StreamReadBits)
	}
	if !b.Resolved() {
		t.Fatalf("bound not resolved: %+v", b)
	}
	// The whole-secret cap applies in both directions.
	if got := b.Bits(1); got != 8 {
		t.Errorf("Bits(1) = %d, want 8 (capped at secret width)", got)
	}
	if got := b.Bits(64); got != 32 {
		t.Errorf("Bits(64) = %d, want 32 (capped at stream reads)", got)
	}
	if len(b.Channels) != 1 || b.Channels[0].Kind != ChanSecretRead || b.Channels[0].Count != 1 {
		t.Errorf("channels = %+v, want one secret-read with count 1", b.Channels)
	}
}

// A public-stream read contributes nothing.
func TestBoundPublicReadIgnored(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 4},
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamPublic)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if b.StreamReadBits != 0 || len(b.Channels) != 0 {
		t.Fatalf("public read charged: %+v", b)
	}
	if got := b.Bits(16); got != 0 {
		t.Errorf("Bits(16) = %d, want 0", got)
	}
}

// A read inside a loop saturates: Bits falls back to the secret width.
func TestBoundLoopedReadSaturates(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 1},
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpJmp, Imm: 0}, // back edge: the whole body is one SCC
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if b.StreamReadBits != InfBits {
		t.Fatalf("StreamReadBits = %d, want InfBits", b.StreamReadBits)
	}
	if got := b.Bits(3); got != 24 {
		t.Errorf("Bits(3) = %d, want the trivial 24", got)
	}
	if len(b.Channels) != 1 || b.Channels[0].Count != InfBits {
		t.Errorf("channels = %+v, want one site with saturated count", b.Channels)
	}
}

// SysMarkSecret forces the whole-secret fallback even when stream reads
// are small: marked memory bypasses the stream cursor.
func TestBoundMarkSecretFallsBack(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 2},
		{Op: vm.OpSys, Imm: int32(vm.SysMarkSecret)},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if !b.MarkSecret {
		t.Fatal("MarkSecret not detected")
	}
	if b.Resolved() {
		t.Fatal("marking program must not count as resolved")
	}
	if got := b.Bits(5); got != 40 {
		t.Errorf("Bits(5) = %d, want the trivial 40", got)
	}
}

// A helper called twice multiplies its sites' counts; called from a loop
// it saturates.
func TestBoundCallMultiplicity(t *testing.T) {
	// main: call helper; call helper; halt.  helper: read 1 secret byte; ret.
	code := []vm.Instr{
		{Op: vm.OpCall, Imm: 4},
		{Op: vm.OpCall, Imm: 4},
		{Op: vm.OpHalt},
		{Op: vm.OpNop},
		// helper at 4
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 1},
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpRet},
	}
	funcs := []vm.FuncInfo{
		{Name: "main", Entry: 0, End: 4},
		{Name: "helper", Entry: 4, End: len(code)},
	}
	b := boundOf(t, buildProg(code, funcs, 0))
	if b.StreamReadBits != 16 {
		t.Fatalf("StreamReadBits = %d, want 16 (two calls x 8 bits)", b.StreamReadBits)
	}
	if len(b.Channels) != 1 || b.Channels[0].Count != 2 {
		t.Errorf("channels = %+v, want one site visited twice", b.Channels)
	}
}

// Recursion saturates the callee's count.
func TestBoundRecursionSaturates(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpCall, Imm: 2},
		{Op: vm.OpHalt},
		// rec at 2: read a byte, then call itself.
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 1},
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpCall, Imm: 2},
		{Op: vm.OpRet},
	}
	funcs := []vm.FuncInfo{
		{Name: "main", Entry: 0, End: 2},
		{Name: "rec", Entry: 2, End: len(code)},
	}
	b := boundOf(t, buildProg(code, funcs, 0))
	if b.StreamReadBits != InfBits {
		t.Fatalf("StreamReadBits = %d, want InfBits under recursion", b.StreamReadBits)
	}
}

// An indirect call saturates every function's count.
func TestBoundIndirectCallSaturates(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R1, Imm: 0},
		{Op: vm.OpConst, A: vm.R2, Imm: 1},
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpCallInd, A: vm.R3},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if b.StreamReadBits != InfBits {
		t.Fatalf("StreamReadBits = %d, want InfBits with an indirect call", b.StreamReadBits)
	}
}

// A program without a function table (hand-assembled) is fully
// conservative: any secret read falls back.
func TestBoundNoCFGsFallsBack(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R0, Imm: int32(vm.StreamSecret)},
		{Op: vm.OpSys, Imm: int32(vm.SysRead)},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, nil, 0))
	if b.Resolved() {
		t.Fatalf("bound resolved without CFG coverage: %+v", b)
	}
	if got := b.Bits(2); got != 16 {
		t.Errorf("Bits(2) = %d, want the trivial 16", got)
	}
}

// Output and branch capacities are recorded on the diagnostic side.
func TestBoundDiagnostics(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpConst, A: vm.R0, Imm: 65},
		{Op: vm.OpSys, Imm: int32(vm.SysPutc)},
		{Op: vm.OpJz, A: vm.R3, Imm: 4},
		{Op: vm.OpNop},
		{Op: vm.OpHalt},
	}
	b := boundOf(t, buildProg(code, []vm.FuncInfo{{Name: "main", Entry: 0, End: len(code)}}, 0))
	if b.OutputBits != 8 {
		t.Errorf("OutputBits = %d, want 8", b.OutputBits)
	}
	if b.BranchBits != 1 {
		t.Errorf("BranchBits = %d, want 1", b.BranchBits)
	}
	if len(b.Channels) != 1 || b.Channels[0].Kind != ChanOutput {
		t.Errorf("channels = %+v, want one output site", b.Channels)
	}
}

// Saturating arithmetic sanity.
func TestSaturatingOps(t *testing.T) {
	if satAdd(InfBits, 1) != InfBits || satAdd(1, InfBits) != InfBits {
		t.Error("satAdd does not saturate")
	}
	if satAdd(InfBits-1, 2) != InfBits {
		t.Error("satAdd overflow not clamped")
	}
	if satMul(InfBits, 0) != 0 || satMul(0, InfBits) != 0 {
		t.Error("satMul 0*inf must stay 0")
	}
	if satMul(InfBits/2, 3) != InfBits {
		t.Error("satMul overflow not clamped")
	}
	if satMul(7, 6) != 42 || satAdd(7, 6) != 13 {
		t.Error("small values wrong")
	}
}
