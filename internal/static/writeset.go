package static

import "flowcheck/internal/vm"

// Write-set analysis: classify every store in a code range the way the
// paper's §8.6 pilot classifies enclosure outputs (Figure 6). A store
// whose address is a compile-time constant is a global write and a store
// at a constant frame-pointer offset is a local-variable write — both are
// "found" outputs the pilot analysis could emit directly. A store whose
// address the analysis cannot resolve (pointer arithmetic on runtime
// values, array indexing by a loop variable) is the bytecode analogue of
// the pilot's "expansion" outputs: the enclosure must declare a larger
// enclosing object. Calls out of the range correspond to the
// "interprocedural" rows — outputs written by a callee.
//
// The classification is a per-block constant propagation over three
// abstract values: unknown (⊤), an exact constant, and a constant offset
// from the frame pointer. Blocks start from scratch (BP = frame+0,
// everything else unknown) because the MiniC compiler establishes BP in
// the prologue and never modifies it mid-body, so the frame-relative
// lattice stays valid without a join across edges; any cross-block
// address computation simply degrades to unknown, which is the
// conservative direction.

// WriteKind classifies one store instruction.
type WriteKind int

const (
	WriteGlobal  WriteKind = iota // constant data address
	WriteFrame                    // constant frame-pointer offset
	WriteDynamic                  // address not statically resolvable
)

func (k WriteKind) String() string {
	switch k {
	case WriteGlobal:
		return "global"
	case WriteFrame:
		return "frame"
	case WriteDynamic:
		return "dynamic"
	}
	return "?"
}

// WriteCounts aggregates a range's stores per kind, plus the calls that
// leave the range (Figure 6's interprocedural outputs).
type WriteCounts struct {
	Global  int
	Frame   int
	Dynamic int
	Calls   int
}

// Found returns the directly-classified store count (Figure 6 "found").
func (w WriteCounts) Found() int { return w.Global + w.Frame }

// abstract value lattice: ⊤, Const(c), or BP+off.
type absKind uint8

const (
	absTop absKind = iota
	absConst
	absBP
)

type absVal struct {
	kind absKind
	off  int64 // constant value or BP offset
}

var top = absVal{kind: absTop}

// ClassifyWrites runs the store classification over every CFG and
// returns the kind of each store instruction, indexed by pc (stores
// only; other pcs are absent).
func ClassifyWrites(p *vm.Program, cfgs []*FuncCFG) map[int]WriteKind {
	kinds := make(map[int]WriteKind)
	for _, c := range cfgs {
		for _, b := range c.Blocks[:c.Exit] {
			classifyBlock(p, b, kinds)
		}
	}
	return kinds
}

func classifyBlock(p *vm.Program, b *Block, kinds map[int]WriteKind) {
	var regs [vm.NumRegs]absVal
	for i := range regs {
		regs[i] = top
	}
	regs[vm.BP] = absVal{kind: absBP}

	// The compiler routes operands through push/pop pairs (evaluate
	// address, push, evaluate value, pop address back), so an abstract
	// operand stack is needed to see frame addresses at all. A pop past
	// the values pushed in this block yields ⊤; call/ret leave SP
	// balanced, so pushed values survive a call (though registers do not).
	var stk []absVal

	for pc := b.Start; pc < b.End; pc++ {
		in := &p.Code[pc]
		switch in.Op {
		case vm.OpConst:
			regs[in.A] = absVal{kind: absConst, off: int64(in.Imm)}
		case vm.OpMov:
			regs[in.A] = regs[in.B]
		case vm.OpAdd:
			regs[in.A] = absAdd(regs[in.B], regs[in.C])
		case vm.OpSub:
			regs[in.A] = absSub(regs[in.B], regs[in.C])
		case vm.OpPush:
			stk = append(stk, regs[in.B])
		case vm.OpPop:
			if n := len(stk); n > 0 {
				regs[in.A] = stk[n-1]
				stk = stk[:n-1]
			} else {
				regs[in.A] = top
			}
		case vm.OpStore:
			addr := absAdd(regs[in.A], absVal{kind: absConst, off: int64(in.Imm)})
			switch addr.kind {
			case absConst:
				kinds[pc] = WriteGlobal
			case absBP:
				kinds[pc] = WriteFrame
			default:
				kinds[pc] = WriteDynamic
			}
		case vm.OpLoad:
			regs[in.A] = top
		case vm.OpCall, vm.OpCallInd:
			// Callee clobbers scratch registers; MiniC's convention
			// preserves SP/BP (and the words already pushed) across calls.
			for r := 0; r < vm.SP; r++ {
				regs[r] = top
			}
		case vm.OpSys, vm.OpJmp, vm.OpJz, vm.OpJnz,
			vm.OpJmpInd, vm.OpRet, vm.OpHalt, vm.OpNop:
			// No register results (OpSys writes R0).
			if in.Op == vm.OpSys {
				regs[vm.R0] = top
			}
		default:
			// Remaining ALU/compare/byte ops produce unknown values.
			regs[in.A] = top
		}
	}
}

func absAdd(a, b absVal) absVal {
	switch {
	case a.kind == absConst && b.kind == absConst:
		return absVal{kind: absConst, off: a.off + b.off}
	case a.kind == absBP && b.kind == absConst:
		return absVal{kind: absBP, off: a.off + b.off}
	case a.kind == absConst && b.kind == absBP:
		return absVal{kind: absBP, off: a.off + b.off}
	}
	return top
}

func absSub(a, b absVal) absVal {
	switch {
	case a.kind == absConst && b.kind == absConst:
		return absVal{kind: absConst, off: a.off - b.off}
	case a.kind == absBP && b.kind == absConst:
		return absVal{kind: absBP, off: a.off - b.off}
	}
	return top
}

// CountWrites tallies the classified stores and calls within the
// instruction range [start, end].
func CountWrites(p *vm.Program, kinds map[int]WriteKind, start, end int) WriteCounts {
	var w WriteCounts
	for pc := start; pc <= end && pc < len(p.Code); pc++ {
		if k, ok := kinds[pc]; ok {
			switch k {
			case WriteGlobal:
				w.Global++
			case WriteFrame:
				w.Frame++
			case WriteDynamic:
				w.Dynamic++
			}
		}
		switch p.Code[pc].Op {
		case vm.OpCall, vm.OpCallInd:
			w.Calls++
		}
	}
	return w
}
