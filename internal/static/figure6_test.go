package static_test

import (
	"testing"

	"flowcheck/internal/guest"
	"flowcheck/internal/infer"
	"flowcheck/internal/static"
)

// TestFigure6StaticVsInfer diffs the bytecode write-set classification
// against internal/infer's AST-level Figure 6 classification, per guest.
//
// The units differ by construction — infer classifies each DECLARED
// OUTPUT of a hand annotation (Figure 6's rows), while the bytecode
// analysis classifies each STORE INSTRUCTION inside the enclosure span —
// so the counts cannot be compared number-for-number. What must agree is
// the taxonomy's shape on each program:
//
//   - infer's "found" outputs are simple variables and constant-index
//     array slots; at bytecode those are constant-frame-offset or
//     constant-data-address stores, so found > 0 ⇒ span.Found() > 0.
//   - infer's "expansion" outputs are dynamic-index array writes; at
//     bytecode the index computation defeats constant propagation, so
//     expansion > 0 ⇒ span.Dynamic > 0.
//
// Documented per-program differences (all from the unit change, checked
// exactly below so a regression in either analysis shows up):
//
//   - count_punct: infer found=4 (num_dot, num_qm, common, num).
//     Bytecode: 7 frame stores — the same four outputs plus loop
//     bookkeeping (counter re-stores on increment paths) that infer
//     correctly excludes as region-locals — and 1 dynamic store: an
//     increment whose slot address is recomputed in a block whose entry
//     state is ⊤, so the per-block propagation cannot prove it
//     frame-relative. infer sees no dynamic writes because the AST has
//     no dynamic-index expression there at all.
//   - xserver: infer found=1 (the bounding-box struct). Bytecode: 7
//     frame stores (the struct's fields individually) and 2 dynamic
//     stores (glyph-width table writes with computed offsets) — the
//     latter are region-local scratch, not declared outputs.
//   - compress/battleship/calendar: infer reports expansion misses; the
//     bytecode spans indeed contain dynamic stores (hash-chain and grid
//     writes), plus frame stores for the loop state infer excludes.
//   - battleship/compress: the spans call helpers (ship_len, hash3 —
//     CountWrites.Calls > 0), yet infer reports interprocedural=0:
//     those callees do not write the declared outputs, so the AST
//     analysis never needs the interprocedural column. The bytecode
//     side counts call SITES, not callee-written outputs.
type fig6Row struct {
	hand, found, expansion, interproc int // infer, per declared output
	spans                             int
	global, frame, dynamic, calls     int // static, per store/call site, summed over spans
}

var fig6Want = map[string]fig6Row{
	"battleship":  {hand: 1, found: 0, expansion: 1, interproc: 0, spans: 1, global: 0, frame: 8, dynamic: 3, calls: 1},
	"calendar":    {hand: 1, found: 0, expansion: 1, interproc: 0, spans: 1, global: 0, frame: 6, dynamic: 1, calls: 0},
	"compress":    {hand: 4, found: 1, expansion: 3, interproc: 0, spans: 1, global: 0, frame: 29, dynamic: 13, calls: 3},
	"count_punct": {hand: 4, found: 4, expansion: 0, interproc: 0, spans: 2, global: 0, frame: 7, dynamic: 1, calls: 0},
	"divzero":     {},
	"guessnum":    {},
	"imagefilter": {},
	"interp":      {},
	"sshauth":     {},
	"unary":       {},
	"xserver":     {hand: 1, found: 1, expansion: 0, interproc: 0, spans: 1, global: 0, frame: 7, dynamic: 2, calls: 0},
}

func TestFigure6StaticVsInfer(t *testing.T) {
	for _, name := range guest.Names() {
		want, ok := fig6Want[name]
		if !ok {
			t.Errorf("%s: guest missing from the Figure 6 table — add its row", name)
			continue
		}
		f, err := guest.AST(name)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		rep := infer.AnalyzeFile(name, f)
		if rep.HandAnnots != want.hand || rep.FoundCount != want.found ||
			rep.MissExpand != want.expansion || rep.MissInterp != want.interproc {
			t.Errorf("%s: infer hand=%d found=%d expansion=%d interproc=%d, want %d/%d/%d/%d",
				name, rep.HandAnnots, rep.FoundCount, rep.MissExpand, rep.MissInterp,
				want.hand, want.found, want.expansion, want.interproc)
		}

		p := guest.Program(name)
		a := static.Analyze(p)
		if len(a.Spans) != want.spans {
			t.Errorf("%s: %d static spans, want %d", name, len(a.Spans), want.spans)
		}
		kinds := static.ClassifyWrites(p, a.CFGs)
		var got static.WriteCounts
		for _, s := range a.Spans {
			w := static.CountWrites(p, kinds, s.Enter, s.Leave)
			got.Global += w.Global
			got.Frame += w.Frame
			got.Dynamic += w.Dynamic
			got.Calls += w.Calls
		}
		if got.Global != want.global || got.Frame != want.frame ||
			got.Dynamic != want.dynamic || got.Calls != want.calls {
			t.Errorf("%s: static global=%d frame=%d dynamic=%d calls=%d, want %d/%d/%d/%d",
				name, got.Global, got.Frame, got.Dynamic, got.Calls,
				want.global, want.frame, want.dynamic, want.calls)
		}

		// The taxonomy correspondences that must hold regardless of units.
		if want.found > 0 && got.Found() == 0 {
			t.Errorf("%s: infer found %d outputs but no constant-address stores in any span",
				name, want.found)
		}
		if want.expansion > 0 && got.Dynamic == 0 {
			t.Errorf("%s: infer reports expansion misses but no dynamic stores in any span", name)
		}
	}
}
