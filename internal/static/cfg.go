// Package static is the bytecode-level static analysis subsystem: it
// builds per-function control-flow graphs over compiled vm.Instr streams,
// computes postdominator trees, and infers enclosure regions — for every
// conditional branch, the span from the branch to its immediate
// postdominator — together with an intraprocedural write-set analysis.
//
// This is the machine-code half of the paper's §8.6 pilot study, which
// internal/infer reproduces only at the AST level. Classic binary QIF and
// taint tools derive implicit-flow extents exactly this way (conditional
// branch to immediate postdominator), and the package doubles as a
// machine-checked lint for the hand-written enclosure annotations in the
// guest programs: CrossCheck validates the static results against the
// dynamic truth a taint.Tracker observed during a real run.
//
// Everything here is conservative in the over-approximating direction:
// indirect jumps are given every block leader in their function as a
// successor, calls are assumed to return (an extra fallthrough edge), and
// a branch with no postdominator inside its function gets a region
// extending over everything it can reach. Larger regions can only grow
// the enclosure extent the checker demands, never shrink it, so the
// coverage verdicts remain sound.
package static

import "flowcheck/internal/vm"

// Block is one basic block: the instruction range [Start, End) plus its
// intraprocedural successor and predecessor edges (block indices within
// the same FuncCFG; the virtual exit block is FuncCFG.Exit).
type Block struct {
	ID         int
	Start, End int
	Succs      []int
	Preds      []int
}

// FuncCFG is the control-flow graph of one function. Blocks are ordered
// by Start; Blocks[0] begins at the function entry, and the last block is
// a virtual, empty exit block (Start == End == function end) that every
// return, halt, and exit syscall feeds.
type FuncCFG struct {
	Name       string
	Entry, End int // instruction range [Entry, End)
	Blocks     []*Block
	Exit       int // index of the virtual exit block
	// Indirect reports that the function contains indirect jumps, whose
	// successors are over-approximated as every block leader.
	Indirect bool

	blockOf []int // pc-Entry -> block index
}

// BlockAt returns the index of the block containing pc, or -1 if pc is
// outside the function.
func (c *FuncCFG) BlockAt(pc int) int {
	if pc < c.Entry || pc >= c.End {
		return -1
	}
	return c.blockOf[pc-c.Entry]
}

// BuildCFG partitions every function of p into basic blocks and connects
// them. Programs without a function table (hand-assembled tests) yield no
// CFGs; callers treat their code as statically unknown.
func BuildCFG(p *vm.Program) []*FuncCFG {
	cfgs := make([]*FuncCFG, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		if f.Entry < 0 || f.End > len(p.Code) || f.Entry >= f.End {
			continue
		}
		cfgs = append(cfgs, buildFuncCFG(p, f))
	}
	return cfgs
}

// endsBlock reports whether the instruction terminates a basic block, and
// isExit whether control leaves the function (or program) entirely.
func endsBlock(in *vm.Instr) (ends, isExit bool) {
	switch in.Op {
	case vm.OpJmp, vm.OpJz, vm.OpJnz, vm.OpJmpInd:
		return true, false
	case vm.OpRet, vm.OpHalt:
		return true, true
	case vm.OpSys:
		if int(in.Imm) == vm.SysExit {
			return true, true
		}
	}
	return false, false
}

func buildFuncCFG(p *vm.Program, f vm.FuncInfo) *FuncCFG {
	c := &FuncCFG{Name: f.Name, Entry: f.Entry, End: f.End}
	n := f.End - f.Entry

	// Leaders: the entry, every in-function jump target, and every
	// instruction following a block terminator (so fallthrough into a jump
	// target still starts a fresh block there).
	leader := make([]bool, n)
	leader[0] = true
	for pc := f.Entry; pc < f.End; pc++ {
		in := &p.Code[pc]
		switch in.Op {
		case vm.OpJmp, vm.OpJz, vm.OpJnz:
			if t := int(in.Imm); t >= f.Entry && t < f.End {
				leader[t-f.Entry] = true
			}
		case vm.OpJmpInd:
			c.Indirect = true
		}
		if ends, _ := endsBlock(in); ends && pc+1 < f.End {
			leader[pc+1-f.Entry] = true
		}
	}

	// Partition into blocks.
	c.blockOf = make([]int, n)
	var cur *Block
	for i := 0; i < n; i++ {
		if leader[i] {
			cur = &Block{ID: len(c.Blocks), Start: f.Entry + i}
			c.Blocks = append(c.Blocks, cur)
		}
		cur.End = f.Entry + i + 1
		c.blockOf[i] = cur.ID
	}
	exit := &Block{ID: len(c.Blocks), Start: f.End, End: f.End}
	c.Blocks = append(c.Blocks, exit)
	c.Exit = exit.ID

	// Collect every leader once for the indirect-jump over-approximation.
	var leaders []int
	if c.Indirect {
		for _, b := range c.Blocks[:c.Exit] {
			leaders = append(leaders, b.ID)
		}
	}

	// Connect blocks. Targets that leave the function range (which the
	// MiniC compiler never emits) conservatively fall to the exit block.
	inFn := func(t int) int {
		if t >= f.Entry && t < f.End {
			return c.blockOf[t-f.Entry]
		}
		return c.Exit
	}
	for _, b := range c.Blocks[:c.Exit] {
		last := &p.Code[b.End-1]
		var succs []int
		ends, isExit := endsBlock(last)
		switch {
		case isExit:
			succs = []int{c.Exit}
		case !ends:
			// Straight-line fall-through; calls are assumed to return, so
			// OpCall/OpCallInd keep their fallthrough edge.
			if b.End < f.End {
				succs = []int{c.blockOf[b.End-f.Entry]}
			} else {
				succs = []int{c.Exit}
			}
		case last.Op == vm.OpJmp:
			succs = []int{inFn(int(last.Imm))}
		case last.Op == vm.OpJz || last.Op == vm.OpJnz:
			fall := c.Exit
			if b.End < f.End {
				fall = c.blockOf[b.End-f.Entry]
			}
			succs = []int{fall, inFn(int(last.Imm))}
		case last.Op == vm.OpJmpInd:
			// Over-approximate: a jump table can reach any leader.
			succs = append([]int(nil), leaders...)
		}
		b.Succs = dedupInts(succs)
		for _, s := range b.Succs {
			c.Blocks[s].Preds = append(c.Blocks[s].Preds, b.ID)
		}
	}
	return c
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
