package static

import (
	"fmt"
	"math"

	"flowcheck/internal/vm"
)

// Static leakage bound: a capacity abstract interpretation that computes,
// per program and with no execution, a sound upper bound in bits on what
// any run can leak.
//
// The headline number is source-side. Every secret bit that can influence
// an observable must first enter the program through SysRead on the
// secret stream (or be conjured by SysMarkSecret), and the VM's secret
// stream has a monotonic cursor: across one run the bytes read never
// exceed len(SecretIn), and each read site delivers at most its constant
// length per visit. So
//
//	leak(run) ≤ maxflow ≤ source capacity
//	          ≤ min(8·len(secret), Σ_sites 8·len_site·visits_site)
//
// and the static pass over-approximates visits_site with a saturating
// execution-count analysis: per-function block SCCs mark loop bodies
// (count ∞ per call), and a call-graph SCC condensation propagates
// call counts from the entry function (recursion and indirect calls
// saturate to ∞). Everything unresolved — a non-constant stream id or
// length, a SysRead outside every function CFG, any SysMarkSecret —
// falls back to the full secret width, which is exactly the trivial
// rung, so the bound can never be unsound, only loose.
//
// The write-set and region machinery feeds the diagnostic side of the
// Bound: output-channel capacity (SysWrite/SysPutc sites at their
// classified widths) and the total branch-condition capacity of the
// inferred enclosure regions (each conditional observed at 1 bit per
// visit, indirect jumps at a full word). Those mirror the sink side of
// the dynamic graph — whose chain edges are uncapacitated, so they do
// not tighten the sound bound — but they tell a caller *where* the
// capacity is and how the static picture compares to the measured cut.

// InfBits is the saturating "statically unbounded" capacity value.
const InfBits int64 = math.MaxInt64

// Channel kinds recorded in Bound.Channels.
const (
	ChanSecretRead = "secret-read"
	ChanMarkSecret = "mark-secret"
	ChanOutput     = "output"
)

// Channel is one statically discovered capacity site.
type Channel struct {
	PC    int    // instruction index
	Where string // vm.LocString of the site
	Kind  string // ChanSecretRead, ChanMarkSecret, or ChanOutput
	Bits  int64  // per-visit width in bits (InfBits when unresolved)
	Count int64  // static bound on visits (InfBits inside loops/recursion)
}

// Bound is the program's static capacity summary.
type Bound struct {
	// StreamReadBits is the saturating sum over secret SysRead sites of
	// 8·length·visit-count — the source-side capacity of the secret
	// stream before the whole-secret cap. InfBits when any site is
	// unresolved.
	StreamReadBits int64
	// MarkSecret reports a reachable SysMarkSecret: marked memory is a
	// secret source that bypasses the stream cursor, so the bound falls
	// back to the full secret width (the model charges a marking program
	// the same as the trivial rung).
	MarkSecret bool
	// OutputBits is the saturating static capacity of the output channel
	// (SysWrite/SysPutc). Diagnostic only: the dynamic graph's chain
	// edges are uncapacitated, so the sound bound stays source-side.
	OutputBits int64
	// BranchBits is the total branch-condition capacity of the inferred
	// regions: 1 bit per conditional visit, a full word per indirect
	// jump visit. Diagnostic, like OutputBits.
	BranchBits int64
	// Channels lists every discovered site in program order.
	Channels []Channel
	// Notes explains each conservative fallback taken.
	Notes []string
}

// Bits returns the sound leakage upper bound in bits for a run with a
// secretLen-byte secret: min(StreamReadBits, 8·secretLen), falling back
// to the full secret width when the stream side is unresolved or the
// program marks memory secret. A nil Bound is fully conservative.
func (b *Bound) Bits(secretLen int) int64 {
	trivial := 8 * int64(secretLen)
	if b == nil || b.MarkSecret || b.StreamReadBits >= InfBits {
		return trivial
	}
	if b.StreamReadBits < trivial {
		return b.StreamReadBits
	}
	return trivial
}

// Resolved reports whether the static pass bounded the secret stream
// without falling back to the whole-secret width.
func (b *Bound) Resolved() bool {
	return b != nil && !b.MarkSecret && b.StreamReadBits < InfBits
}

func (b *Bound) note(format string, args ...any) {
	b.Notes = append(b.Notes, fmt.Sprintf(format, args...))
}

// satAdd and satMul are saturating arithmetic on non-negative capacities.
func satAdd(a, b int64) int64 {
	if a >= InfBits || b >= InfBits || a > InfBits-b {
		return InfBits
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= InfBits || b >= InfBits || a > InfBits/b {
		return InfBits
	}
	return a * b
}

// computeBound runs the capacity abstract interpretation over the CFGs.
func computeBound(p *vm.Program, cfgs []*FuncCFG) *Bound {
	b := &Bound{}
	if p == nil || len(p.Code) == 0 {
		return b
	}

	// Syscalls outside every function CFG (hand-assembled programs, or a
	// broken function table) cannot be visit-counted: fall back.
	covered := newBitset(len(p.Code))
	for _, c := range cfgs {
		for pc := c.Entry; pc < c.End; pc++ {
			covered.set(pc)
		}
	}
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op != vm.OpSys || covered.has(pc) {
			continue
		}
		switch int(in.Imm) {
		case vm.SysRead:
			b.StreamReadBits = InfBits
			b.note("read syscall outside every function CFG at %s", p.LocString(pc))
		case vm.SysMarkSecret:
			b.MarkSecret = true
			b.note("mark-secret outside every function CFG at %s", p.LocString(pc))
		case vm.SysWrite, vm.SysPutc:
			b.OutputBits = InfBits
		}
	}

	counts, cyclic := multiplicities(p, cfgs)
	for fi, c := range cfgs {
		fnCount := counts[fi]
		for _, blk := range c.Blocks[:c.Exit] {
			visits := fnCount
			if cyclic[fi][blk.ID] {
				visits = satMul(visits, InfBits) // 0 stays 0, else ∞
			}
			b.scanBlock(p, blk, visits)
			b.chargeBranch(p, blk, visits)
		}
	}
	return b
}

// chargeBranch adds the block terminator's condition capacity: the
// enclosure-region model observes 1 bit per conditional visit and a full
// word per indirect jump (its target encodes up to 32 bits).
func (b *Bound) chargeBranch(p *vm.Program, blk *Block, visits int64) {
	switch p.Code[blk.End-1].Op {
	case vm.OpJz, vm.OpJnz:
		b.BranchBits = satAdd(b.BranchBits, satMul(1, visits))
	case vm.OpJmpInd:
		b.BranchBits = satAdd(b.BranchBits, satMul(32, visits))
	}
}

// scanBlock mirrors the write-set classifier's per-block constant
// propagation (see writeset.go for why no cross-block join is needed)
// and records every syscall channel at the abstract register state
// holding immediately before the call.
func (b *Bound) scanBlock(p *vm.Program, blk *Block, visits int64) {
	var regs [vm.NumRegs]absVal
	for i := range regs {
		regs[i] = top
	}
	regs[vm.BP] = absVal{kind: absBP}
	var stk []absVal

	for pc := blk.Start; pc < blk.End; pc++ {
		in := &p.Code[pc]
		switch in.Op {
		case vm.OpConst:
			regs[in.A] = absVal{kind: absConst, off: int64(in.Imm)}
		case vm.OpMov:
			regs[in.A] = regs[in.B]
		case vm.OpAdd:
			regs[in.A] = absAdd(regs[in.B], regs[in.C])
		case vm.OpSub:
			regs[in.A] = absSub(regs[in.B], regs[in.C])
		case vm.OpPush:
			stk = append(stk, regs[in.B])
		case vm.OpPop:
			if n := len(stk); n > 0 {
				regs[in.A] = stk[n-1]
				stk = stk[:n-1]
			} else {
				regs[in.A] = top
			}
		case vm.OpLoad:
			regs[in.A] = top
		case vm.OpCall, vm.OpCallInd:
			for r := 0; r < vm.SP; r++ {
				regs[r] = top
			}
		case vm.OpSys:
			b.recordSys(p, pc, int(in.Imm), &regs, visits)
			regs[vm.R0] = top
		case vm.OpStore, vm.OpJmp, vm.OpJz, vm.OpJnz,
			vm.OpJmpInd, vm.OpRet, vm.OpHalt, vm.OpNop:
			// No register results.
		default:
			regs[in.A] = top
		}
	}
}

// recordSys charges one syscall site. regs is the abstract state before
// the call (R0 not yet clobbered).
func (b *Bound) recordSys(p *vm.Program, pc, sys int, regs *[vm.NumRegs]absVal, visits int64) {
	constWidth := func(length absVal) int64 {
		if length.kind == absConst && length.off >= 0 {
			return satMul(8, length.off)
		}
		return InfBits
	}
	switch sys {
	case vm.SysRead:
		stream, length := regs[vm.R0], regs[vm.R2]
		if stream.kind == absConst && stream.off != int64(vm.StreamSecret) {
			return // public stream: no secret capacity
		}
		width := constWidth(length)
		if stream.kind != absConst {
			b.note("read with unresolved stream id at %s", p.LocString(pc))
		}
		if width >= InfBits {
			b.note("secret read with unresolved length at %s", p.LocString(pc))
		}
		b.Channels = append(b.Channels, Channel{
			PC: pc, Where: p.LocString(pc), Kind: ChanSecretRead, Bits: width, Count: visits,
		})
		b.StreamReadBits = satAdd(b.StreamReadBits, satMul(width, visits))
	case vm.SysMarkSecret:
		width := constWidth(regs[vm.R2])
		b.Channels = append(b.Channels, Channel{
			PC: pc, Where: p.LocString(pc), Kind: ChanMarkSecret, Bits: width, Count: visits,
		})
		if visits != 0 {
			b.MarkSecret = true
			b.note("mark-secret re-sources memory at %s: falling back to full secret width", p.LocString(pc))
		}
	case vm.SysWrite:
		width := constWidth(regs[vm.R2])
		b.Channels = append(b.Channels, Channel{
			PC: pc, Where: p.LocString(pc), Kind: ChanOutput, Bits: width, Count: visits,
		})
		b.OutputBits = satAdd(b.OutputBits, satMul(width, visits))
	case vm.SysPutc:
		b.Channels = append(b.Channels, Channel{
			PC: pc, Where: p.LocString(pc), Kind: ChanOutput, Bits: 8, Count: visits,
		})
		b.OutputBits = satAdd(b.OutputBits, satMul(8, visits))
	}
}

// multiplicities bounds, for every function, how many times it can be
// entered, and marks the blocks that can repeat within one entry.
//
// Block cycles: Tarjan SCCs over each function's intraprocedural CFG; a
// block in a non-trivial SCC (or with a self edge) can run any number of
// times per call, so its sites saturate. Call counts: the direct call
// graph is condensed by SCC; the entry function starts at 1, recursion
// (non-trivial call SCC or self call) saturates, a call site inside a
// block cycle contributes ∞, and any reachable indirect call saturates
// every function — the conservative fallback for unresolved targets.
// Functions never called statically get 0 and contribute nothing.
func multiplicities(p *vm.Program, cfgs []*FuncCFG) (counts []int64, cyclic [][]bool) {
	n := len(cfgs)
	counts = make([]int64, n)
	cyclic = make([][]bool, n)
	for fi, c := range cfgs {
		cyclic[fi] = blockCycles(c)
	}
	if n == 0 {
		return counts, cyclic
	}

	// Map call-target pcs to function indices.
	funcOf := func(pc int) int {
		for fi, c := range cfgs {
			if pc >= c.Entry && pc < c.End {
				return fi
			}
		}
		return -1
	}

	// Direct call edges; unresolved pieces saturate everything.
	type callEdge struct {
		callee int
		inLoop bool
	}
	edges := make([][]callEdge, n)
	saturateAll := false
	for fi, c := range cfgs {
		for _, blk := range c.Blocks[:c.Exit] {
			for pc := blk.Start; pc < blk.End; pc++ {
				switch p.Code[pc].Op {
				case vm.OpCallInd:
					saturateAll = true
				case vm.OpCall:
					callee := funcOf(int(p.Code[pc].Imm))
					if callee < 0 {
						saturateAll = true
						continue
					}
					edges[fi] = append(edges[fi], callEdge{callee, cyclic[fi][blk.ID]})
				}
			}
		}
	}

	entry := funcOf(p.Entry)
	if entry < 0 || saturateAll {
		for fi := range counts {
			counts[fi] = InfBits
		}
		return counts, cyclic
	}

	// Condense the call graph by SCC and propagate counts callers-first
	// (Tarjan emits callees before callers, so iterate in reverse).
	succs := make([][]int, n)
	for fi, es := range edges {
		for _, e := range es {
			succs[fi] = append(succs[fi], e.callee)
		}
	}
	sccs, sccOf := tarjanSCC(succs)
	recursive := make([]bool, len(sccs))
	for si, members := range sccs {
		if len(members) > 1 {
			recursive[si] = true
			continue
		}
		for _, e := range edges[members[0]] {
			if e.callee == members[0] {
				recursive[si] = true
			}
		}
	}

	counts[entry] = 1
	for si := len(sccs) - 1; si >= 0; si-- {
		members := sccs[si]
		if recursive[si] {
			live := false
			for _, fi := range members {
				if counts[fi] != 0 {
					live = true
				}
			}
			if live {
				for _, fi := range members {
					counts[fi] = InfBits
				}
			}
		}
		for _, fi := range members {
			if counts[fi] == 0 {
				continue
			}
			for _, e := range edges[fi] {
				if sccOf[e.callee] == si {
					continue // intra-SCC: handled by the recursion rule
				}
				contrib := counts[fi]
				if e.inLoop {
					contrib = InfBits
				}
				counts[e.callee] = satAdd(counts[e.callee], contrib)
			}
		}
	}
	return counts, cyclic
}

// blockCycles marks the blocks of one function that sit on an
// intraprocedural cycle (non-trivial SCC or self edge).
func blockCycles(c *FuncCFG) []bool {
	succs := make([][]int, len(c.Blocks))
	for _, blk := range c.Blocks {
		succs[blk.ID] = blk.Succs
	}
	sccs, _ := tarjanSCC(succs)
	out := make([]bool, len(c.Blocks))
	for _, members := range sccs {
		if len(members) > 1 {
			for _, v := range members {
				out[v] = true
			}
		}
	}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			if s == blk.ID {
				out[blk.ID] = true
			}
		}
	}
	return out
}

// tarjanSCC computes strongly connected components; components are
// emitted successors-first (reverse topological order of the
// condensation). Iterative to keep deep CFGs off the Go stack.
func tarjanSCC(succs [][]int) (sccs [][]int, sccOf []int) {
	n := len(succs)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	sccOf = make([]int, n)
	for i := range index {
		index[i] = unvisited
		sccOf[i] = -1
	}
	var stack []int
	next := 0

	type frame struct{ v, i int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{root, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.i == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.i < len(succs[v]) {
				w := succs[v][f.i]
				f.i++
				if index[w] == unvisited {
					work = append(work, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccOf[w] = len(sccs)
					members = append(members, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, members)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				u := work[len(work)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}
	return sccs, sccOf
}
