package static

import (
	"sort"

	"flowcheck/internal/vm"
)

// Region is the inferred enclosure extent of one conditional (or
// indirect) branch: every instruction whose execution is control-
// dependent on the branch, i.e. reachable from a branch successor
// without passing through the branch's immediate postdominator, plus the
// branch itself. When the branch has no postdominator inside its
// function (a path that never reaches the exit, e.g. an infinite loop on
// one arm), the region conservatively extends over everything the branch
// can reach.
type Region struct {
	Branch   int // pc of the controlling branch
	PostDom  int // pc of the immediate postdominator, or -1
	Func     string
	Indirect bool // region of a JmpInd rather than a Jz/Jnz

	pcs bitset // covered instruction indices (program-wide numbering)
}

// Covers reports whether pc falls inside the region.
func (r *Region) Covers(pc int) bool { return r.pcs.has(pc) }

// Size returns the number of instructions in the region.
func (r *Region) Size() int { return r.pcs.count() }

// Stats summarizes one static analysis pass for reporting.
type Stats struct {
	Funcs      int
	Blocks     int
	Branches   int // conditional + indirect branches analyzed
	Regions    int // inferred regions (== Branches)
	Enclosures int // static SysEnterRegion/SysLeaveRegion spans found
}

// Analysis is the result of the static pass over one program.
type Analysis struct {
	Prog    *vm.Program
	CFGs    []*FuncCFG
	Regions []*Region
	// Spans are the statically matched enclosure annotations, in
	// program order of their Enter pc.
	Spans []Span
	// Bound is the program's static leakage capacity (see bound.go).
	Bound *Bound
	Stats Stats

	covered bitset // union of all region pc sets
}

// Covered reports whether any inferred region contains pc.
func (a *Analysis) Covered(pc int) bool { return a.covered.has(pc) }

// RegionsAt returns the regions containing pc, innermost (smallest)
// first.
func (a *Analysis) RegionsAt(pc int) []*Region {
	var rs []*Region
	for _, r := range a.Regions {
		if r.Covers(pc) {
			rs = append(rs, r)
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Size() < rs[j].Size() })
	return rs
}

// Analyze runs the full static pass: CFG construction, postdominators,
// region inference, and enclosure-span matching.
func Analyze(p *vm.Program) *Analysis {
	a := &Analysis{Prog: p, CFGs: BuildCFG(p), covered: newBitset(len(p.Code))}
	for _, c := range a.CFGs {
		a.Stats.Funcs++
		a.Stats.Blocks += len(c.Blocks) - 1 // exclude the virtual exit
		ipdom := Postdominators(c)
		for _, b := range c.Blocks[:c.Exit] {
			last := &p.Code[b.End-1]
			var indirect bool
			switch last.Op {
			case vm.OpJz, vm.OpJnz:
			case vm.OpJmpInd:
				indirect = true
			default:
				continue
			}
			a.Stats.Branches++
			r := inferRegion(p, c, ipdom, b, indirect)
			a.Regions = append(a.Regions, r)
			a.covered.or(r.pcs)
		}
	}
	a.Spans = findSpans(p, a.CFGs)
	a.Bound = computeBound(p, a.CFGs)
	a.Stats.Regions = len(a.Regions)
	a.Stats.Enclosures = len(a.Spans)
	return a
}

// inferRegion computes the control-dependence region of the branch
// terminating block b: blocks reachable from b's successors without
// passing through b's immediate postdominator.
func inferRegion(p *vm.Program, c *FuncCFG, ipdom []int, b *Block, indirect bool) *Region {
	r := &Region{
		Branch:   b.End - 1,
		PostDom:  -1,
		Func:     c.Name,
		Indirect: indirect,
		pcs:      newBitset(len(p.Code)),
	}
	stop := ipdom[b.ID]
	if stop >= 0 && stop != c.Exit {
		r.PostDom = c.Blocks[stop].Start
	}
	seen := make([]bool, len(c.Blocks))
	if stop >= 0 {
		seen[stop] = true // barrier: do not cross the postdominator
	}
	stack := make([]int, 0, len(c.Blocks))
	for _, s := range b.Succs {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := c.Blocks[v]
		for pc := blk.Start; pc < blk.End; pc++ {
			r.pcs.set(pc)
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	r.pcs.set(r.Branch)
	return r
}

// bitset is a fixed-size bit vector over instruction indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) {
	if i >= 0 && i/64 < len(b) {
		b[i/64] |= 1 << (uint(i) % 64)
	}
}

func (b bitset) has(i int) bool {
	return i >= 0 && i/64 < len(b) && b[i/64]&(1<<(uint(i)%64)) != 0
}

func (b bitset) or(o bitset) {
	for i := range b {
		if i < len(o) {
			b[i] |= o[i]
		}
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
