package static

import (
	"testing"

	"flowcheck/internal/vm"
)

func TestClassifyWrites(t *testing.T) {
	// One block exercising all three store classes, including the
	// compiler's push/pop address shuffle.
	code := []vm.Instr{
		/* 0 */ {Op: vm.OpConst, A: vm.R0, Imm: 4096},
		/* 1 */ {Op: vm.OpStore, A: vm.R0, B: vm.R1, W: 4}, // constant data address: global
		/* 2 */ {Op: vm.OpConst, A: vm.R1, Imm: -8},
		/* 3 */ {Op: vm.OpAdd, A: vm.R0, B: vm.BP, C: vm.R1},
		/* 4 */ {Op: vm.OpStore, A: vm.R0, B: vm.R2, W: 4}, // BP-8: frame
		/* 5 */ {Op: vm.OpPush, B: vm.R0},
		/* 6 */ {Op: vm.OpConst, A: vm.R0, Imm: 7},
		/* 7 */ {Op: vm.OpPop, A: vm.R1},
		/* 8 */ {Op: vm.OpStore, A: vm.R1, B: vm.R0, W: 1}, // frame address via push/pop
		/* 9 */ {Op: vm.OpLoad, A: vm.R2, B: vm.R0, W: 4},
		/* 10 */ {Op: vm.OpStore, A: vm.R2, B: vm.R0, W: 4}, // loaded pointer: dynamic
		/* 11 */ {Op: vm.OpStore, A: vm.BP, B: vm.R0, Imm: -4, W: 4}, // BP+disp: frame
		/* 12 */ {Op: vm.OpHalt},
	}
	p := oneFunc("f", code)
	kinds := ClassifyWrites(p, BuildCFG(p))
	want := map[int]WriteKind{
		1:  WriteGlobal,
		4:  WriteFrame,
		8:  WriteFrame,
		10: WriteDynamic,
		11: WriteFrame,
	}
	if len(kinds) != len(want) {
		t.Fatalf("classified %d stores, want %d: %v", len(kinds), len(want), kinds)
	}
	for pc, k := range want {
		if kinds[pc] != k {
			t.Errorf("pc %d: classified %v, want %v", pc, kinds[pc], k)
		}
	}

	w := CountWrites(p, kinds, 0, len(code)-1)
	if w.Global != 1 || w.Frame != 3 || w.Dynamic != 1 || w.Calls != 0 {
		t.Fatalf("counts = %+v, want global=1 frame=3 dynamic=1 calls=0", w)
	}
	if w.Found() != 4 {
		t.Fatalf("Found() = %d, want 4", w.Found())
	}
}

// A call clobbers the scratch registers (the callee's writes are the
// interprocedural column), but values parked on the stack survive it.
func TestClassifyWritesAcrossCall(t *testing.T) {
	code := []vm.Instr{
		/* 0 */ {Op: vm.OpConst, A: vm.R1, Imm: -4},
		/* 1 */ {Op: vm.OpAdd, A: vm.R0, B: vm.BP, C: vm.R1},
		/* 2 */ {Op: vm.OpPush, B: vm.R0},
		/* 3 */ {Op: vm.OpCall, Imm: 8},
		/* 4 */ {Op: vm.OpStore, A: vm.R0, B: vm.R1, W: 4}, // R0 clobbered by callee: dynamic
		/* 5 */ {Op: vm.OpPop, A: vm.R2},
		/* 6 */ {Op: vm.OpStore, A: vm.R2, B: vm.R1, W: 4}, // stack slot survived: frame
		/* 7 */ {Op: vm.OpHalt},
		/* 8 */ {Op: vm.OpRet}, // callee
	}
	p := oneFunc("f", code)
	kinds := ClassifyWrites(p, BuildCFG(p))
	if kinds[4] != WriteDynamic {
		t.Errorf("store after call through clobbered register: %v, want dynamic", kinds[4])
	}
	if kinds[6] != WriteFrame {
		t.Errorf("store through call-surviving stack slot: %v, want frame", kinds[6])
	}
	w := CountWrites(p, kinds, 0, 7)
	if w.Calls != 1 {
		t.Fatalf("calls = %d, want 1", w.Calls)
	}
}
