package static

import (
	"strings"
	"testing"

	"flowcheck/internal/vm"
)

func sys(n int32) vm.Instr { return vm.Instr{Op: vm.OpSys, Imm: n} }

func TestSpanMatching(t *testing.T) {
	code := []vm.Instr{
		/* 0 */ sys(vm.SysEnterRegion),
		/* 1 */ {Op: vm.OpNop},
		/* 2 */ sys(vm.SysEnterRegion),
		/* 3 */ {Op: vm.OpNop},
		/* 4 */ sys(vm.SysLeaveRegion),
		/* 5 */ sys(vm.SysLeaveRegion),
		/* 6 */ {Op: vm.OpHalt},
	}
	a := Analyze(oneFunc("f", code))
	if len(a.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(a.Spans), a.Spans)
	}
	outer, inner := a.Spans[0], a.Spans[1]
	if outer.Enter != 0 || outer.Leave != 5 || outer.Depth != 0 || !outer.Balanced {
		t.Fatalf("outer span = %+v", outer)
	}
	if inner.Enter != 2 || inner.Leave != 4 || inner.Depth != 1 || !inner.Balanced {
		t.Fatalf("inner span = %+v", inner)
	}
	if s := spanAt(a.Spans, 3); s == nil || s.Enter != 2 {
		t.Fatalf("spanAt(3) = %+v, want the inner span", s)
	}
	if s := spanAt(a.Spans, 1); s == nil || s.Enter != 0 {
		t.Fatalf("spanAt(1) = %+v, want the outer span", s)
	}
	if got := a.Lint(); len(got) != 0 {
		t.Fatalf("balanced spans produced findings: %v", got)
	}
}

func TestUnbalancedEnclosureLint(t *testing.T) {
	a := Analyze(oneFunc("f", []vm.Instr{
		sys(vm.SysEnterRegion), // never left
		{Op: vm.OpHalt},
	}))
	fs := a.Lint()
	if len(fs) != 1 || fs[0].Kind != UnbalancedEnclosure {
		t.Fatalf("findings = %v, want one unbalanced-enclosure", fs)
	}
}

func TestCrossCheckUncoveredAndUnmatched(t *testing.T) {
	// No function table: nothing is covered, so every dynamic event is a
	// violation — the checker catches programs the static pass can't see.
	p := &vm.Program{Code: []vm.Instr{
		{Op: vm.OpJnz, A: vm.R0, Imm: 0},
		{Op: vm.OpHalt},
	}}
	a := Analyze(p)
	rec := NewRecorder()
	rec.TaintedBranch(0)
	rec.TaintedIndirect(0)
	rec.RegionEnter(0)
	rec.RegionLeave(1)
	rec.RegionLeave(1) // no open region

	fs := CrossCheck(a, rec)
	kinds := map[FindingKind]int{}
	for _, f := range fs {
		kinds[f.Kind]++
	}
	if kinds[UncoveredBranch] != 1 || kinds[UncoveredIndirect] != 1 || kinds[UnmatchedRegion] != 2 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestCrossCheckRegionEscape(t *testing.T) {
	// A tainted branch inside an enclosure whose region (branch to join)
	// extends past the Leave: the annotation fails to bracket the code
	// the branch controls.
	code := []vm.Instr{
		/* 0 */ sys(vm.SysEnterRegion),
		/* 1 */ {Op: vm.OpJz, A: vm.R0, Imm: 4},
		/* 2 */ sys(vm.SysLeaveRegion),
		/* 3 */ {Op: vm.OpNop}, // branch arm continues past the Leave
		/* 4 */ {Op: vm.OpHalt},
	}
	a := Analyze(oneFunc("f", code))
	rec := NewRecorder()
	rec.RegionEnter(0)
	rec.TaintedBranch(1)
	rec.RegionLeave(2)

	fs := CrossCheck(a, rec)
	var escape *Finding
	for i := range fs {
		if fs[i].Kind == RegionEscape {
			escape = &fs[i]
		}
	}
	if escape == nil {
		t.Fatalf("no region-escape finding in %v", fs)
	}
	if escape.PC != 1 || !strings.Contains(escape.Msg, "past the enclosure") {
		t.Fatalf("escape finding = %+v", escape)
	}
}

func TestCrossCheckClean(t *testing.T) {
	// The same shape, properly bracketed: branch, join, then Leave.
	code := []vm.Instr{
		/* 0 */ sys(vm.SysEnterRegion),
		/* 1 */ {Op: vm.OpJz, A: vm.R0, Imm: 3},
		/* 2 */ {Op: vm.OpNop},
		/* 3 */ sys(vm.SysLeaveRegion),
		/* 4 */ {Op: vm.OpHalt},
	}
	a := Analyze(oneFunc("f", code))
	rec := NewRecorder()
	rec.RegionEnter(0)
	rec.TaintedBranch(1)
	rec.RegionLeave(3)
	if fs := CrossCheck(a, rec); len(fs) != 0 {
		t.Fatalf("clean program produced findings: %v", fs)
	}
	if !rec.Observed() {
		t.Fatal("recorder should report observations")
	}
	rec.Reset()
	if rec.Observed() {
		t.Fatal("reset recorder still reports observations")
	}
}
