package static

import "flowcheck/internal/vm"

// Span is one statically matched enclosure annotation: the instruction
// range between a SysEnterRegion and its SysLeaveRegion. The MiniC
// compiler emits enclose blocks structurally, so within a function the
// Enter/Leave syscalls are properly nested and a linear stack scan in
// code order recovers the pairing exactly.
type Span struct {
	Enter, Leave int // pcs of the paired syscalls
	Func         string
	Depth        int // nesting depth, 0 for outermost
	// Balanced is false when an Enter had no matching Leave in its
	// function (or vice versa); such spans extend to the function end and
	// are reported as lint findings.
	Balanced bool
}

// Contains reports whether pc lies inside the span (inclusive of the
// Enter and Leave instructions themselves).
func (s Span) Contains(pc int) bool { return pc >= s.Enter && pc <= s.Leave }

// findSpans scans each function for enclosure syscalls and pairs them.
func findSpans(p *vm.Program, cfgs []*FuncCFG) []Span {
	var spans []Span
	for _, c := range cfgs {
		var stack []int
		for pc := c.Entry; pc < c.End; pc++ {
			in := &p.Code[pc]
			if in.Op != vm.OpSys {
				continue
			}
			switch int(in.Imm) {
			case vm.SysEnterRegion:
				stack = append(stack, pc)
			case vm.SysLeaveRegion:
				if len(stack) == 0 {
					// Leave with no Enter: degenerate span at the Leave.
					spans = append(spans, Span{Enter: pc, Leave: pc, Func: c.Name})
					continue
				}
				enter := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				spans = append(spans, Span{
					Enter: enter, Leave: pc, Func: c.Name,
					Depth: len(stack), Balanced: true,
				})
			}
		}
		for i, enter := range stack {
			// Enter with no Leave: extend to the function end.
			spans = append(spans, Span{Enter: enter, Leave: c.End - 1, Func: c.Name, Depth: i})
		}
	}
	// Restore program order by Enter pc (the stack pops inner spans first).
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].Enter > spans[j].Enter; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
	return spans
}

// spanAt returns the innermost balanced span containing pc, or nil.
// Functions are emitted contiguously, so a span can only contain pcs of
// its own function and the innermost match is the one with the largest
// Enter.
func spanAt(spans []Span, pc int) *Span {
	var best *Span
	for i := range spans {
		s := &spans[i]
		if s.Balanced && s.Contains(pc) && (best == nil || s.Enter > best.Enter) {
			best = s
		}
	}
	return best
}
