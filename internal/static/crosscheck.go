package static

import (
	"fmt"
	"sort"

	"flowcheck/internal/vm"
)

// Recorder collects the dynamic ground truth a cross-check needs: which
// tainted branches and indirect jumps actually executed, and which
// enclosure regions were entered and left. It satisfies the
// taint.Probe interface structurally (this package deliberately does not
// import internal/taint), so a Tracker can carry one without an import
// cycle. A Recorder serves a single run; call Reset before reuse.
type Recorder struct {
	branches  map[int]bool // pcs of tainted Jz/Jnz executed
	indirects map[int]bool // pcs of tainted JmpInd/Ret executed
	pairs     map[[2]int]bool
	stack     []int
	orphans   []int // Leave pcs seen with an empty region stack
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.Reset()
	return r
}

// Reset clears all recorded state for reuse across runs.
func (r *Recorder) Reset() {
	r.branches = make(map[int]bool)
	r.indirects = make(map[int]bool)
	r.pairs = make(map[[2]int]bool)
	r.stack = r.stack[:0]
	r.orphans = r.orphans[:0]
}

// TaintedBranch records a conditional branch executed on tainted data.
func (r *Recorder) TaintedBranch(pc int) { r.branches[pc] = true }

// TaintedIndirect records an indirect jump (or return) through a tainted
// address.
func (r *Recorder) TaintedIndirect(pc int) { r.indirects[pc] = true }

// RegionEnter records a SysEnterRegion executed at pc.
func (r *Recorder) RegionEnter(pc int) { r.stack = append(r.stack, pc) }

// RegionLeave records a SysLeaveRegion executed at pc, pairing it with
// the innermost open Enter.
func (r *Recorder) RegionLeave(pc int) {
	if len(r.stack) == 0 {
		r.orphans = append(r.orphans, pc)
		return
	}
	enter := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	r.pairs[[2]int{enter, pc}] = true
}

// Observed reports whether the recorder saw any relevant dynamic events.
func (r *Recorder) Observed() bool {
	return len(r.branches) > 0 || len(r.indirects) > 0 || len(r.pairs) > 0 || len(r.orphans) > 0
}

// FindingKind classifies a cross-check violation.
type FindingKind int

const (
	// UncoveredBranch: a tainted conditional branch executed at runtime
	// has no statically inferred region (no CFG covers its pc).
	UncoveredBranch FindingKind = iota
	// UncoveredIndirect: a tainted indirect jump or return executed with
	// no inferred region covering it.
	UncoveredIndirect
	// UnmatchedRegion: a dynamically observed Enter/Leave interval has no
	// matching static enclosure span.
	UnmatchedRegion
	// RegionEscape: a tainted branch inside an enclosure has an inferred
	// region extending past the enclosure's Leave — the annotation does
	// not bracket all the code the branch controls.
	RegionEscape
	// UnbalancedEnclosure: a static Enter with no matching Leave (or the
	// reverse) in its function.
	UnbalancedEnclosure
)

var findingNames = [...]string{
	UncoveredBranch:     "uncovered-branch",
	UncoveredIndirect:   "uncovered-indirect",
	UnmatchedRegion:     "unmatched-region",
	RegionEscape:        "region-escape",
	UnbalancedEnclosure: "unbalanced-enclosure",
}

func (k FindingKind) String() string {
	if int(k) < len(findingNames) {
		return findingNames[k]
	}
	return fmt.Sprintf("finding(%d)", int(k))
}

// Finding is one cross-check violation, located for human consumption.
type Finding struct {
	Kind  FindingKind
	PC    int
	Where string // Prog.LocString(PC)
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s at %s: %s", f.Kind, f.Where, f.Msg)
}

// Lint reports the purely static findings of the analysis: unbalanced
// enclosure annotations. It needs no dynamic run.
func (a *Analysis) Lint() []Finding {
	var fs []Finding
	for _, s := range a.Spans {
		if !s.Balanced {
			msg := "enclosure Enter without a matching Leave in " + s.Func
			if s.Enter == s.Leave {
				msg = "enclosure Leave without a matching Enter in " + s.Func
			}
			fs = append(fs, Finding{
				Kind: UnbalancedEnclosure, PC: s.Enter,
				Where: a.Prog.LocString(s.Enter), Msg: msg,
			})
		}
	}
	return fs
}

// CrossCheck validates the static analysis against one run's dynamic
// observations. Soundness contract (see DESIGN.md): every tainted
// branch/indirect executed must be covered by an inferred region, every
// dynamic Enter/Leave interval must match a static span exactly, and a
// tainted branch inside an enclosure must have its whole inferred region
// inside that enclosure. Violations come back sorted by pc.
func CrossCheck(a *Analysis, rec *Recorder) []Finding {
	fs := a.Lint()

	for pc := range rec.branches {
		if !a.Covered(pc) {
			fs = append(fs, Finding{
				Kind: UncoveredBranch, PC: pc, Where: a.Prog.LocString(pc),
				Msg: "tainted conditional branch executed outside every inferred region",
			})
		}
	}
	for pc := range rec.indirects {
		if !a.Covered(pc) {
			fs = append(fs, Finding{
				Kind: UncoveredIndirect, PC: pc, Where: a.Prog.LocString(pc),
				Msg: "tainted indirect transfer executed outside every inferred region",
			})
		}
	}

	for pair := range rec.pairs {
		if !hasSpan(a.Spans, pair[0], pair[1]) {
			fs = append(fs, Finding{
				Kind: UnmatchedRegion, PC: pair[0], Where: a.Prog.LocString(pair[0]),
				Msg: fmt.Sprintf("dynamic enclosure [%d,%d] has no matching static span", pair[0], pair[1]),
			})
		}
	}
	for _, pc := range rec.orphans {
		fs = append(fs, Finding{
			Kind: UnmatchedRegion, PC: pc, Where: a.Prog.LocString(pc),
			Msg: "dynamic Leave executed with no open region",
		})
	}

	// Region escape: the innermost enclosure containing a tainted branch
	// must contain the branch's whole inferred region. Functions are
	// contiguous, so a span only ever contains pcs of its own function
	// and the containment test over [Enter, Leave] is exact.
	byBranch := make(map[int]*Region, len(a.Regions))
	for _, r := range a.Regions {
		byBranch[r.Branch] = r
	}
	for pc := range rec.branches {
		s := spanAt(a.Spans, pc)
		if s == nil {
			continue
		}
		r := byBranch[pc]
		if r == nil {
			continue // already reported as UncoveredBranch
		}
		if esc := regionEscapes(a.Prog, r, s); esc >= 0 {
			fs = append(fs, Finding{
				Kind: RegionEscape, PC: pc, Where: a.Prog.LocString(pc),
				Msg: fmt.Sprintf("inferred region of tainted branch reaches %s, past the enclosure [%d,%d]",
					a.Prog.LocString(esc), s.Enter, s.Leave),
			})
		}
	}

	sort.Slice(fs, func(i, j int) bool {
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		return fs[i].Kind < fs[j].Kind
	})
	return fs
}

func hasSpan(spans []Span, enter, leave int) bool {
	for _, s := range spans {
		if s.Balanced && s.Enter == enter && s.Leave == leave {
			return true
		}
	}
	return false
}

// regionEscapes returns the first region pc outside the span, or -1 if
// the region is fully contained.
func regionEscapes(p *vm.Program, r *Region, s *Span) int {
	for pc := 0; pc < len(p.Code); pc++ {
		if r.Covers(pc) && !s.Contains(pc) {
			return pc
		}
	}
	return -1
}
