package bits

import (
	"testing"
	"testing/quick"
)

func TestCount(t *testing.T) {
	cases := []struct {
		m    Mask
		want int
	}{
		{0, 0}, {1, 1}, {0xFF, 8}, {All, 32}, {0x80000000, 1}, {0x0F0F, 8},
	}
	for _, c := range cases {
		if got := Count(c.m); got != c.want {
			t.Errorf("Count(%#x) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestByteMask(t *testing.T) {
	if ByteMask(1) != 0xFF || ByteMask(2) != 0xFFFF || ByteMask(4) != All {
		t.Fatalf("ByteMask wrong: %#x %#x %#x", ByteMask(1), ByteMask(2), ByteMask(4))
	}
}

func TestAndPublicZeroWins(t *testing.T) {
	// secret & public-0 -> public 0
	if m := And(All, 0, 0xDEADBEEF, 0); m != 0 {
		t.Errorf("And(secret, public 0) = %#x, want 0", m)
	}
	// secret & public-1 -> secret passthrough
	if m := And(0xFF, 0, 0, 0x0F); m != 0x0F {
		t.Errorf("And(secret ff, public 0f) = %#x, want 0f", m)
	}
	// both secret -> secret
	if m := And(0xF0, 0x3C, 0, 0); m&0x30 != 0x30 {
		t.Errorf("overlap bits should be secret: %#x", m)
	}
}

func TestOrPublicOneWins(t *testing.T) {
	if m := Or(All, 0, 0, 0xFFFFFFFF); m != 0 {
		t.Errorf("Or(secret, public all-ones) = %#x, want 0", m)
	}
	if m := Or(0xFF, 0, 0, 0xF0); m != 0x0F {
		t.Errorf("Or mask = %#x, want 0x0F", m)
	}
}

func TestAddIntervalRule(t *testing.T) {
	// Secret bit 0 added to a public even value: only bit 0 can differ.
	if m := Add(1, 0, 0x30, 0); m != 1 {
		t.Errorf("Add('0' + 1-bit secret) = %#x, want 1", m)
	}
	// Secret bit 0 added to a public odd value: a carry reaches bit 1.
	if m := Add(1, 0, 0, 1); m != 3 {
		t.Errorf("Add(secret bit0, public 1) = %#x, want 3", m)
	}
	// Secret top bit only: carry out is discarded.
	if m := Add(0x80000000, 0, 0, 0); m != 0x80000000 {
		t.Errorf("Add(top bit secret) = %#x, want 0x80000000", m)
	}
	if m := Add(0, 0, 123, 456); m != 0 {
		t.Errorf("Add(public,public) = %#x, want 0", m)
	}
	// Two secret low bytes: carries can reach bit 8 but not beyond.
	if m := Add(0xFF, 0xFF, 0, 0); m != 0x1FF {
		t.Errorf("Add(two secret bytes) = %#x, want 0x1FF", m)
	}
}

func TestSubIntervalRule(t *testing.T) {
	if m := Sub(0, 0, 9, 5); m != 0 {
		t.Errorf("public-public = %#x", m)
	}
	// 0x100 - (secret byte): borrow can clear bit 8.
	if m := Sub(0, 0xFF, 0x100, 0); m != 0x1FF {
		t.Errorf("Sub = %#x, want 0x1FF", m)
	}
	// Possible sign change makes everything secret.
	if m := Sub(0, 0xFF, 0, 0); m != All {
		t.Errorf("Sub(0 - secret) = %#x, want all (wraparound)", m)
	}
	// Negation of a known-for-sure nonzero range... the rule stays sound by
	// saturating when the 64-bit patterns diverge at the top.
	if m := Sub(1, 0, 0x10, 0x10); m == 0 {
		t.Errorf("Sub with secret minuend bit must not be public")
	}
}

func TestShiftByPublicAmount(t *testing.T) {
	if m := Shl(0xFF, 0, 0, 8); m != 0xFF00 {
		t.Errorf("Shl = %#x, want 0xFF00", m)
	}
	if m := Shr(0xFF00, 0, 0, 8); m != 0xFF {
		t.Errorf("Shr = %#x, want 0xFF", m)
	}
	// Arithmetic shift with secret sign bit smears secrecy.
	if m := Sar(0x80000000, 0, 0, 4); m != 0xF8000000 {
		t.Errorf("Sar = %#x, want 0xF8000000", m)
	}
	// Public value, no secret: stays public.
	if m := Sar(0, 0, 0x80000000, 4); m != 0 {
		t.Errorf("Sar public = %#x, want 0", m)
	}
}

func TestShiftBySecretAmount(t *testing.T) {
	if m := Shl(0, All, 1, 0); m != All {
		t.Errorf("Shl by secret amount of nonzero value should be fully secret, got %#x", m)
	}
	// Shifting a public zero reveals nothing.
	if m := Shl(0, All, 0, 0); m != 0 {
		t.Errorf("Shl of public zero = %#x, want 0", m)
	}
}

func TestMul(t *testing.T) {
	if m := Mul(0, 0, 123, 456); m != 0 {
		t.Errorf("public*public = %#x, want 0", m)
	}
	if m := Mul(All, 0, 0, 0); m != 0 {
		t.Errorf("secret * public-zero = %#x, want 0", m)
	}
	// secret low bits times public 4 (== shift by 2): bits >= 2 secret.
	if m := Mul(1, 0, 0, 4); m != 0xFFFFFFFC {
		t.Errorf("Mul = %#x, want 0xFFFFFFFC", m)
	}
}

func TestDiv(t *testing.T) {
	if m := Div(0, 0); m != 0 {
		t.Errorf("public/public = %#x", m)
	}
	if m := Div(1, 0); m != All {
		t.Errorf("secret/public should be fully secret, got %#x", m)
	}
}

func TestCmp(t *testing.T) {
	if m := Cmp(0, 0); m != 0 {
		t.Errorf("Cmp public = %#x", m)
	}
	if m := Cmp(0x100, 0); m != 1 {
		t.Errorf("Cmp secret = %#x, want 1", m)
	}
}

func TestExtractInsert(t *testing.T) {
	m := Mask(0xAABBCCDD)
	if got := Extract(m, 0); got != 0xDD {
		t.Errorf("Extract(0) = %#x", got)
	}
	if got := Extract(m, 3); got != 0xAA {
		t.Errorf("Extract(3) = %#x", got)
	}
	if got := Insert(m, 0x11, 1); got != 0xAABB11DD {
		t.Errorf("Insert = %#x", got)
	}
}

// Soundness property: if two operand pairs agree on all public bits, the
// results of an operation must agree on all bits the transfer function marks
// public. We exercise this for AND/OR/XOR/ADD by flipping only secret bits.
func TestSoundnessProperty(t *testing.T) {
	type opFn struct {
		name string
		mask func(ma, mb Mask, va, vb uint32) Mask
		eval func(a, b uint32) uint32
	}
	ops := []opFn{
		{"and", And, func(a, b uint32) uint32 { return a & b }},
		{"or", Or, func(a, b uint32) uint32 { return a | b }},
		{"xor", func(ma, mb Mask, _, _ uint32) Mask { return Xor(ma, mb) }, func(a, b uint32) uint32 { return a ^ b }},
		{"add", Add, func(a, b uint32) uint32 { return a + b }},
		{"sub", Sub, func(a, b uint32) uint32 { return a - b }},
		{"mul", Mul, func(a, b uint32) uint32 { return a * b }},
	}
	for _, op := range ops {
		op := op
		prop := func(va, vb uint32, ma, mb Mask, fa, fb uint32) bool {
			// Alternate values that differ from va/vb only in secret bits.
			va2 := va ^ (fa & uint32(ma))
			vb2 := vb ^ (fb & uint32(mb))
			rm := op.mask(ma, mb, va, vb)
			r1 := op.eval(va, vb)
			r2 := op.eval(va2, vb2)
			// All public result bits must be identical.
			return (r1^r2)&^uint32(rm) == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: soundness violated: %v", op.name, err)
		}
	}
}

// The same soundness property for shifts, where the transfer function also
// inspects concrete values.
func TestShiftSoundnessProperty(t *testing.T) {
	prop := func(va, vb uint32, ma, mb Mask, fa, fb uint32) bool {
		va2 := va ^ (fa & uint32(ma))
		vb2 := vb ^ (fb & uint32(mb))
		ok := true
		{
			rm := Shl(ma, mb, va, vb)
			if ((va<<(vb&31))^(va2<<(vb2&31)))&^uint32(rm) != 0 {
				ok = false
			}
		}
		{
			rm := Shr(ma, mb, va, vb)
			if ((va>>(vb&31))^(va2>>(vb2&31)))&^uint32(rm) != 0 {
				ok = false
			}
		}
		{
			rm := Sar(ma, mb, va, vb)
			r1 := uint32(int32(va) >> (vb & 31))
			r2 := uint32(int32(va2) >> (vb2 & 31))
			if (r1^r2)&^uint32(rm) != 0 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDivIntervalRules(t *testing.T) {
	// Block-average pattern: a 13-bit secret sum divided by public 25
	// yields an ~8-bit quotient.
	if m := DivU(0x1FFF, 0, 0, 25); Count(m) > 9 {
		t.Errorf("DivU(13-bit / 25) = %#x (%d bits), want <= 9 bits", m, Count(m))
	}
	if m := DivU(0, 0, 100, 25); m != 0 {
		t.Errorf("public/public = %#x", m)
	}
	// Secret divisor: fully secret.
	if m := DivU(0, 1, 100, 3); m != All {
		t.Errorf("secret divisor = %#x, want all", m)
	}
	// Modulo by a public constant bounds the result bits.
	if m := ModU(All, 0, 0, 10); m != 0x0F {
		t.Errorf("ModU(secret, 10) = %#x, want 0x0F", m)
	}
	// Signed with possibly-negative dividend saturates.
	if m := ModS(0x80000000, 0, 0, 10); m != All {
		t.Errorf("ModS with secret sign = %#x, want all", m)
	}
	if m := DivS(0xFF, 0, 0, 16); Count(m) > 5 {
		t.Errorf("DivS(8-bit / 16) = %#x, too wide", m)
	}
}

// Division/modulo soundness property under the same flip-secret-bits model.
func TestDivSoundnessProperty(t *testing.T) {
	prop := func(va, vb uint32, ma, mb Mask, fa, fb uint32) bool {
		va2 := va ^ (fa & uint32(ma))
		vb2 := vb ^ (fb & uint32(mb))
		if vb == 0 || vb2 == 0 {
			return true // the VM traps before these execute
		}
		ok := true
		if m := DivU(ma, mb, va, vb); (va/vb^va2/vb2)&^uint32(m) != 0 {
			ok = false
		}
		if m := ModU(ma, mb, va, vb); (va%vb^va2%vb2)&^uint32(m) != 0 {
			ok = false
		}
		sdiv := func(a, b uint32) uint32 {
			if int32(a) == -1<<31 && int32(b) == -1 {
				return a
			}
			return uint32(int32(a) / int32(b))
		}
		smod := func(a, b uint32) uint32 {
			if int32(a) == -1<<31 && int32(b) == -1 {
				return 0
			}
			return uint32(int32(a) % int32(b))
		}
		if m := DivS(ma, mb, va, vb); (sdiv(va, vb)^sdiv(va2, vb2))&^uint32(m) != 0 {
			ok = false
		}
		if m := ModS(ma, mb, va, vb); (smod(va, vb)^smod(va2, vb2))&^uint32(m) != 0 {
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}
