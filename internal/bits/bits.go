// Package bits implements the dynamic bit-capacity analysis of paper §2.3.
//
// Every runtime value carries a shadow mask of the same width in which a set
// bit means "this data bit may contain secret information". For each basic
// operation the package computes a conservative mask for the result from the
// masks and concrete values of the operands. The analysis is the bit-level
// tainting that Valgrind Memcheck uses for undefined-value tracking, adapted
// to secrecy: a public bit is one whose value is fully determined by public
// information.
//
// The amount of secret information that can flow through a value is bounded
// by the number of set bits in its mask (Count), which is what the taint
// engine uses as edge capacities in the flow graph.
package bits

import mbits "math/bits"

// Mask is a 32-bit secrecy mask: bit i set means bit i of the shadowed value
// may depend on secret input.
type Mask uint32

// All is the fully-secret mask for a 32-bit value.
const All Mask = 0xFFFFFFFF

// ByteMask returns the fully-secret mask for the low n bytes (n in 1..4).
func ByteMask(n int) Mask {
	if n >= 4 {
		return All
	}
	return Mask(1)<<(8*uint(n)) - 1
}

// Count returns the number of potentially-secret bits in m.
func Count(m Mask) int { return mbits.OnesCount32(uint32(m)) }

// Secret reports whether any bit of m is secret.
func Secret(m Mask) bool { return m != 0 }

// upFrom returns a mask with every bit at or above the lowest set bit of m.
// It conservatively models carry propagation: a carry originating at the
// lowest secret bit can disturb every higher bit, but never a lower one.
func upFrom(m Mask) Mask {
	if m == 0 {
		return 0
	}
	low := uint(mbits.TrailingZeros32(uint32(m)))
	return All << low
}

// Copy is the transfer function for mov/load/store: the mask is unchanged.
func Copy(m Mask) Mask { return m }

// And computes the result mask for r = a & b given operand masks and the
// concrete operand values. A result bit is public when either operand
// contributes a public 0 at that position (forcing the result to 0), or when
// both operands are public there.
func And(ma, mb Mask, va, vb uint32) Mask {
	// Secret result bits: both secret, or one secret while the other is a
	// public 1 (so the secret bit passes through).
	return (ma & mb) | (ma & ^mb & Mask(vb)) | (mb & ^ma & Mask(va))
}

// Or computes the result mask for r = a | b. Dual of And: a public 1 forces
// the result bit to 1 regardless of the other operand.
func Or(ma, mb Mask, va, vb uint32) Mask {
	return (ma & mb) | (ma & ^mb & ^Mask(vb)) | (mb & ^ma & ^Mask(va))
}

// Xor computes the result mask for r = a ^ b: a secret bit in either operand
// makes the result bit secret (xor never absorbs).
func Xor(ma, mb Mask) Mask { return ma | mb }

// Not computes the result mask for r = ^a.
func Not(ma Mask) Mask { return ma }

// fill returns a mask covering every bit position at or below the highest
// set bit of x (truncated to 32 bits). For a contiguous integer interval
// [min, max], all values agree on the bits above the highest bit of
// min ^ max; every lower bit can vary.
func fill(x uint64) Mask {
	if x == 0 {
		return 0
	}
	n := mbits.Len64(x)
	if n >= 32 {
		return All
	}
	return Mask(uint32(1)<<uint(n) - 1)
}

// Add computes the result mask for r = a + b. The sum is monotone in each
// secret bit, so it ranges over the interval [min, max] obtained by setting
// all secret bits to 0 and to 1 respectively; result bits above the
// interval's common prefix are fixed by public information, while lower
// bits (and the operand's own secret positions) may vary — the
// interval-based rule Memcheck's expensive add uses.
func Add(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	min := uint64(va&^uint32(ma)) + uint64(vb&^uint32(mb))
	max := uint64(va|uint32(ma)) + uint64(vb|uint32(mb))
	// Carries only propagate upward, so bits below the lowest secret
	// operand bit stay public regardless of the interval.
	return (ma | mb | fill(min^max)) & upFrom(ma|mb)
}

// Sub computes the result mask for r = a - b with the same interval rule
// (the difference is monotone increasing in a's secret bits and decreasing
// in b's). A sign change between the extremes makes the 64-bit patterns
// differ at the top, which degrades soundly to a fully-secret result.
func Sub(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	min := int64(va&^uint32(ma)) - int64(vb|uint32(mb))
	max := int64(va|uint32(ma)) - int64(vb&^uint32(mb))
	// Borrows, like carries, only propagate upward.
	return (ma | mb | fill(uint64(min)^uint64(max))) & upFrom(ma|mb)
}

// Mul computes the result mask for r = a * b. A public zero operand forces a
// public zero result. Otherwise a result bit can be secret only at or above
// the position of the lowest secret partial product: a secret bit of one
// operand times the lowest possibly-set bit of the other (where a secret bit
// counts as possibly set). Every lower partial product is a product of
// public bits.
func Mul(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	if ma == 0 && va == 0 {
		return 0 // public zero times anything
	}
	if mb == 0 && vb == 0 {
		return 0
	}
	// Lowest possibly-set bit of an operand (secret bits may be 1).
	act := func(m Mask, v uint32) int { return mbits.TrailingZeros32(v | uint32(m)) }
	shift := 32
	if ma != 0 {
		if s := mbits.TrailingZeros32(uint32(ma)) + act(mb, vb); s < shift {
			shift = s
		}
	}
	if mb != 0 {
		if s := mbits.TrailingZeros32(uint32(mb)) + act(ma, va); s < shift {
			shift = s
		}
	}
	if shift >= 32 {
		return 0
	}
	return All << uint(shift)
}

// Div computes the result mask for r = a / b (or a % b) when no interval
// reasoning applies: any secrecy in either operand makes the whole result
// secret; two public operands give a public result.
func Div(ma, mb Mask) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	return All
}

// DivU computes the result mask for unsigned r = a / b. With a public
// divisor, the quotient is monotone in the dividend, so the interval rule
// applies; a secret divisor mixes bits arbitrarily.
func DivU(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	if mb != 0 || vb == 0 {
		return Div(ma, mb)
	}
	min := uint64(va&^uint32(ma)) / uint64(vb)
	max := uint64(va|uint32(ma)) / uint64(vb)
	return fill(min ^ max)
}

// ModU computes the result mask for unsigned r = a % b. With a public
// divisor the remainder lies in [0, b), so only the low bits can be secret.
func ModU(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	if mb != 0 || vb == 0 {
		return Div(ma, mb)
	}
	return fill(uint64(vb - 1))
}

// signedBounds returns the extreme signed dividends over the secret bits:
// the minimum sets a secret sign bit and clears the rest; the maximum does
// the opposite.
func signedBounds(ma Mask, va uint32) (int64, int64) {
	const sign = uint32(0x80000000)
	min := va&^uint32(ma) | (uint32(ma) & sign)
	max := (va | uint32(ma)) &^ (uint32(ma) & sign)
	return int64(int32(min)), int64(int32(max))
}

// DivS computes the result mask for signed r = a / b with the interval
// rule for public positive divisors.
func DivS(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	if mb != 0 || int32(vb) <= 0 {
		return Div(ma, mb)
	}
	lo, hi := signedBounds(ma, va)
	qlo, qhi := lo/int64(int32(vb)), hi/int64(int32(vb))
	return fill(uint64(qlo) ^ uint64(qhi))
}

// ModS computes the result mask for signed r = a % b: with a public
// positive divisor and a provably non-negative dividend it behaves like
// ModU; a possibly-negative dividend makes the sign (and so everything)
// uncertain.
func ModS(ma, mb Mask, va, vb uint32) Mask {
	if ma == 0 && mb == 0 {
		return 0
	}
	if mb != 0 || int32(vb) <= 0 {
		return Div(ma, mb)
	}
	if lo, _ := signedBounds(ma, va); lo < 0 {
		return Div(ma, mb)
	}
	return fill(uint64(vb - 1))
}

// Shl computes the result mask for r = a << b. If the shift amount is
// public, the mask shifts along with the value; a secret shift amount can
// steer any value bit anywhere, so the result is secret wherever the value
// or mask has any set bit pattern (conservatively: fully secret unless the
// shifted operand is a public zero).
func Shl(ma, mb Mask, va, vb uint32) Mask {
	if mb == 0 {
		return ma << (vb & 31)
	}
	if ma == 0 && va == 0 {
		return 0
	}
	return All
}

// Shr computes the result mask for a logical right shift.
func Shr(ma, mb Mask, va, vb uint32) Mask {
	if mb == 0 {
		return ma >> (vb & 31)
	}
	if ma == 0 && va == 0 {
		return 0
	}
	return All
}

// Sar computes the result mask for an arithmetic right shift: the sign bit
// smears into every vacated position, so if it is secret the vacated bits
// are secret too.
func Sar(ma, mb Mask, va, vb uint32) Mask {
	if mb != 0 {
		if ma == 0 && va == 0 {
			return 0
		}
		return All
	}
	s := vb & 31
	m := ma >> s
	if ma&0x80000000 != 0 {
		m |= ^(All >> s) // sign-extension of the secret sign bit
	}
	return m
}

// Cmp computes the result mask for a comparison producing 0 or 1: the single
// result bit is secret iff any operand bit is secret.
func Cmp(ma, mb Mask) Mask {
	if ma|mb != 0 {
		return 1
	}
	return 0
}

// Extract returns the mask for extracting the byte at index i (0 = least
// significant) of a value with mask m, as a byte-width mask.
func Extract(m Mask, i int) Mask { return (m >> uint(8*i)) & 0xFF }

// Insert places the byte-width mask b at byte index i of m.
func Insert(m Mask, b Mask, i int) Mask {
	sh := uint(8 * i)
	return (m &^ (Mask(0xFF) << sh)) | ((b & 0xFF) << sh)
}
