// Package core is the public entry point of the reproduction: it runs a
// guest program under the quantitative information-flow analysis and
// reports how many bits of the secret input the execution revealed, as a
// maximum flow over the constructed network, together with the
// corresponding minimum cut (paper §2, §5, §6.1).
//
// Typical use:
//
//	res, err := core.AnalyzeSource("prog.mc", src, core.Inputs{Secret: key}, core.Config{})
//	fmt.Printf("%d bits revealed\n", res.Bits)
//
// Multiple executions can be analyzed jointly for cross-run soundness
// (§3.2) with AnalyzeMulti (online, serial) or AnalyzeBatch (parallel,
// merged offline by code location).
//
// The package is a thin facade over internal/engine, which owns the staged
// pipeline (Execute, Build, Solve, Report) and the pooled, reusable
// per-worker sessions behind these entry points.
package core

import (
	"context"

	"flowcheck/internal/engine"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/stagecache"
	"flowcheck/internal/static"
	"flowcheck/internal/vm"
)

// Re-exported engine types; see internal/engine for documentation.
type (
	// Config controls an analysis.
	Config = engine.Config
	// Inputs is one execution's secret/public input pair.
	Inputs = engine.Inputs
	// Result reports one analysis.
	Result = engine.Result
	// RunSummary is the per-execution record of a multi-run analysis.
	RunSummary = engine.RunSummary
	// StageStats is the per-stage timing breakdown of an analysis.
	StageStats = engine.StageStats
	// CutEdge describes one minimum-cut edge.
	CutEdge = engine.CutEdge
	// SecretClass names one kind of secret within the secret input (§10.1).
	SecretClass = engine.SecretClass
	// ClassResult is the per-class disclosure measurement.
	ClassResult = engine.ClassResult
	// ClassAnalysis is a class-set analysis: per-class bounds plus the
	// joint bound and execution count of the shared one-execution path.
	ClassAnalysis = engine.ClassAnalysis
	// Analyzer is the staged analysis engine with pooled sessions.
	Analyzer = engine.Analyzer
	// Budget bounds the resources one analysis run may consume.
	Budget = engine.Budget
	// BudgetError reports which resource budget a run exceeded.
	BudgetError = engine.BudgetError
	// CancelError reports a run aborted by its context.
	CancelError = engine.CancelError
	// InternalError is a recovered pipeline-stage panic.
	InternalError = engine.InternalError
	// Class is a failure's retry classification (Classify).
	Class = engine.Class
	// PoolStats reports an analyzer's session churn: live checkouts,
	// sessions built, and sessions quarantined instead of re-pooled.
	PoolStats = engine.PoolStats
	// MemStats reports the graph core's memory and online-compaction
	// behavior (Config.Compact), surfaced as Result.Mem.
	MemStats = flowgraph.MemStats
	// Finding is one static/dynamic cross-check violation (Config.Lint).
	Finding = static.Finding
	// StaticStats summarizes the static pre-pass behind Config.Lint.
	StaticStats = static.Stats
	// Cache is the content-addressed stage cache (Config.Cache): full
	// result hits, incremental re-solves on input-only changes, and shared
	// compile/static artifacts. See internal/stagecache.
	Cache = stagecache.Cache
	// CacheOptions configures a Cache (byte budget, shard count).
	CacheOptions = stagecache.Options
	// CacheStats is a cache snapshot with per-kind hit/miss/evict counters.
	CacheStats = stagecache.Stats
	// CacheKindStats is one kind's counter set within CacheStats.
	CacheKindStats = stagecache.KindStats
	// CacheTrace is a result's cache provenance (Result.Cache).
	CacheTrace = engine.CacheTrace
	// Precision selects the ladder rung an analysis answers from
	// (Config.Precision): a sound static bound with no execution, or the
	// full measured solve.
	Precision = engine.Precision
)

// Precision-ladder modes for Config.Precision.
const (
	// PrecisionFull always runs the full dynamic solve (the default).
	PrecisionFull = engine.PrecisionFull
	// PrecisionTrivial answers 8·len(secret) bits with no execution.
	PrecisionTrivial = engine.PrecisionTrivial
	// PrecisionStatic answers the static capacity bound with no execution.
	PrecisionStatic = engine.PrecisionStatic
	// PrecisionAdaptive answers the cheapest rung whose bound is at most
	// Config.AdaptiveThreshold bits, escalating to the full solve last.
	PrecisionAdaptive = engine.PrecisionAdaptive
)

// Ladder rungs recorded in Result.Rung.
const (
	// RungTrivial marks an 8·len(secret) answer (also solver-budget
	// degradations, which carry a non-nil Graph).
	RungTrivial = engine.RungTrivial
	// RungStatic marks a static capacity-bound answer, no execution.
	RungStatic = engine.RungStatic
	// RungFull marks a solved maximum flow.
	RungFull = engine.RungFull
)

// ParsePrecision parses a precision name ("", "full", "trivial",
// "static", "adaptive") into a Precision.
func ParsePrecision(s string) (Precision, error) { return engine.ParsePrecision(s) }

// TrivialBoundBits is the trivial rung's bound: 8·secretLen bits.
func TrivialBoundBits(secretLen int) int64 { return engine.TrivialBoundBits(secretLen) }

// Cache dispositions recorded in Result.Cache.Disposition.
const (
	// CacheBypass marks a run that was not cacheable (fault injection).
	CacheBypass = engine.CacheBypass
	// CacheMiss marks a run that computed and stored its result.
	CacheMiss = engine.CacheMiss
	// CacheHit marks a result served entirely from the cache.
	CacheHit = engine.CacheHit
	// CacheIncremental marks a computed run that reused the cached graph
	// skeleton (input-only change).
	CacheIncremental = engine.CacheIncremental
)

// Cache stage kinds: the per-stage counter names in CacheStats.Kinds.
const (
	// CacheKindCompile counts source-to-bytecode compilations (global cache).
	CacheKindCompile = engine.KindCompile
	// CacheKindStatic counts static pre-pass analyses (global cache).
	CacheKindStatic = engine.KindStatic
	// CacheKindSkeleton counts collapsed graph skeletons (Config.Cache).
	CacheKindSkeleton = engine.KindSkeleton
	// CacheKindResult counts full analysis results (Config.Cache).
	CacheKindResult = engine.KindResult
)

// Class-analysis modes for Config.ClassMode.
const (
	// ClassModeShared (the default) executes once and solves one capacity
	// view per class on the shared graph.
	ClassModeShared = engine.ClassModeShared
	// ClassModeReexec re-executes the guest once per class (the legacy
	// oracle used by soundness tests).
	ClassModeReexec = engine.ClassModeReexec
)

// NewCache creates a content-addressed stage cache to share across
// analyzers via Config.Cache.
func NewCache(opts CacheOptions) *Cache { return stagecache.New(opts) }

// GlobalCacheStats snapshots the process-global compile/static cache.
func GlobalCacheStats() CacheStats { return engine.GlobalCacheStats() }

// CompileCached compiles MiniC source through the global compile cache.
func CompileCached(filename, src string) (*vm.Program, error) {
	return engine.CompileCached(filename, src)
}

// The engine's failure taxonomy: every analysis failure matches exactly
// one of these via errors.Is. See internal/engine/errors.go.
var (
	// ErrStepLimit marks a guest that exhausted its step budget
	// (matched against Result.Trap; the partial run is still sound).
	ErrStepLimit = engine.ErrStepLimit
	// ErrBudget marks a run that exceeded a resource budget.
	ErrBudget = engine.ErrBudget
	// ErrCanceled marks a run aborted by its context.
	ErrCanceled = engine.ErrCanceled
	// ErrInternal marks a recovered pipeline-stage panic.
	ErrInternal = engine.ErrInternal
)

// Retry classifications of analysis failures; see Classify.
const (
	// ClassNone classifies a nil error.
	ClassNone = engine.ClassNone
	// ClassTransient marks failures worth retrying (step limits, exceeded
	// budgets — ideally with a larger budget).
	ClassTransient = engine.ClassTransient
	// ClassPermanent marks failures retries cannot fix (cancellation,
	// guest traps, internal errors).
	ClassPermanent = engine.ClassPermanent
)

// Classify sorts an analysis failure into the retry taxonomy consumed by
// supervision layers such as internal/serve.
func Classify(err error) Class { return engine.Classify(err) }

// NewAnalyzer creates a reusable analyzer for prog: repeated calls reuse
// pooled sessions (guest memory, tracker, solver buffers).
func NewAnalyzer(prog *vm.Program, cfg Config) *Analyzer {
	return engine.New(prog, cfg)
}

// Analyze runs one execution of prog under the analysis.
func Analyze(prog *vm.Program, in Inputs, cfg Config) (*Result, error) {
	return engine.Analyze(prog, in, cfg)
}

// AnalyzeContext is Analyze under a context: cancellation and deadlines
// abort the run mid-execution with ErrCanceled.
func AnalyzeContext(ctx context.Context, prog *vm.Program, in Inputs, cfg Config) (*Result, error) {
	return engine.AnalyzeContext(ctx, prog, in, cfg)
}

// AnalyzeMulti analyzes several executions together: graphs are merged by
// code location across runs, restoring the cross-run consistency of §3.2.
// The returned result reflects the combined graph, with per-run summaries
// in Runs; Output, ExitCode, Steps, and Trap are the last run's.
func AnalyzeMulti(prog *vm.Program, inputs []Inputs, cfg Config) (*Result, error) {
	return engine.AnalyzeMulti(prog, inputs, cfg)
}

// AnalyzeBatch analyzes several executions in parallel across worker
// sessions (cfg.Workers, default GOMAXPROCS) and merges the per-run graphs
// by code location, reporting the same joint §3.2-sound bound as
// AnalyzeMulti. Deterministic regardless of worker count.
func AnalyzeBatch(prog *vm.Program, inputs []Inputs, cfg Config) (*Result, error) {
	return engine.AnalyzeBatch(prog, inputs, cfg)
}

// AnalyzeBatchContext is AnalyzeBatch under a context. Failed runs
// (canceled, over budget, panicking, trapped) are recorded in their
// RunSummary.Err and excluded from the merge; the joint bound covers the
// surviving runs.
func AnalyzeBatchContext(ctx context.Context, prog *vm.Program, inputs []Inputs, cfg Config) (*Result, error) {
	return engine.AnalyzeBatchContext(ctx, prog, inputs, cfg)
}

// AnalyzeSource compiles MiniC source and analyzes one execution.
func AnalyzeSource(filename, src string, in Inputs, cfg Config) (*Result, error) {
	return engine.AnalyzeSource(filename, src, in, cfg)
}

// AnalyzeClasses measures, for each kind of secret, how much of it this
// execution reveals (§10.1), analyzing the classes in parallel.
func AnalyzeClasses(prog *vm.Program, in Inputs, classes []SecretClass, cfg Config) ([]ClassResult, error) {
	return engine.AnalyzeClasses(prog, in, classes, cfg)
}

// AnalyzeClassesContext is AnalyzeClasses under a context; failed classes
// carry their typed error in ClassResult.Err.
func AnalyzeClassesContext(ctx context.Context, prog *vm.Program, in Inputs, classes []SecretClass, cfg Config) ([]ClassResult, error) {
	return engine.AnalyzeClassesContext(ctx, prog, in, classes, cfg)
}

// AnalyzeClassSet is AnalyzeClasses with the full answer: per-class
// bounds, the joint (all-classes) bound, and how many guest executions
// the call performed — 1 on the default shared-graph path, whatever the
// class count.
func AnalyzeClassSet(prog *vm.Program, in Inputs, classes []SecretClass, cfg Config) (*ClassAnalysis, error) {
	return engine.AnalyzeClassSet(prog, in, classes, cfg)
}

// AnalyzeClassSetContext is AnalyzeClassSet under a context.
func AnalyzeClassSetContext(ctx context.Context, prog *vm.Program, in Inputs, classes []SecretClass, cfg Config) (*ClassAnalysis, error) {
	return engine.AnalyzeClassSetContext(ctx, prog, in, classes, cfg)
}

// RunPlain executes prog uninstrumented (the baseline for overhead
// comparisons, and the second machine of the §6.3 lockstep checker).
func RunPlain(prog *vm.Program, in Inputs, cfg Config) (*vm.Machine, error) {
	return engine.RunPlain(prog, in, cfg)
}
