// Package core is the public entry point of the reproduction: it runs a
// guest program under the quantitative information-flow analysis and
// reports how many bits of the secret input the execution revealed, as a
// maximum flow over the constructed network, together with the
// corresponding minimum cut (paper §2, §5, §6.1).
//
// Typical use:
//
//	res, err := core.AnalyzeSource("prog.mc", src, core.Inputs{Secret: key}, core.Config{})
//	fmt.Printf("%d bits revealed\n", res.Bits)
//
// Multiple executions can be analyzed jointly for cross-run soundness
// (§3.2) with AnalyzeMulti.
package core

import (
	"fmt"
	"sort"
	"strings"

	"flowcheck/internal/flowgraph"
	"flowcheck/internal/lang"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/taint"
	"flowcheck/internal/vm"
)

// Config controls an analysis.
type Config struct {
	// Taint configures the tracker (collapsing, context sensitivity, lazy
	// region limits, implicit-flow warnings).
	Taint taint.Options
	// Algorithm selects the max-flow algorithm (default Dinic).
	Algorithm maxflow.Algorithm
	// MemSize is the guest memory size (default vm.DefaultMemSize).
	MemSize int
	// MaxSteps bounds guest execution (default vm.DefaultMaxSteps).
	MaxSteps uint64
}

// Inputs is one execution's input pair: the secret input whose disclosure
// is measured, and the public input (fixed in the attack model of §3.1).
type Inputs struct {
	Secret []byte
	Public []byte
}

// Result reports one analysis.
type Result struct {
	// Bits is the headline number: the maximum flow from secret inputs to
	// public outputs, in bits.
	Bits int64

	// TaintedOutputBits is what plain tainting would report: the total
	// capacity of edges into the sink (§7).
	TaintedOutputBits int64

	// Graph is the constructed flow network; Flow and Cut the max-flow
	// result and a minimum cut over it.
	Graph *flowgraph.Graph
	Flow  *maxflow.Result
	Cut   *maxflow.Cut

	// Execution facts.
	Output   []byte
	ExitCode vm.Word
	Steps    uint64
	Trap     error // non-nil if the guest trapped (result still sound for the partial run)

	Warnings  []taint.Warning
	Snapshots []taint.Snapshot
	Stats     taint.Stats

	prog *vm.Program
}

// Analyze runs one execution of prog under the analysis.
func Analyze(prog *vm.Program, in Inputs, cfg Config) (*Result, error) {
	tr := taint.New(cfg.Taint)
	return analyzeWith(tr, prog, in, cfg)
}

// AnalyzeMulti analyzes several executions together: graphs are merged by
// code location across runs, restoring the cross-run consistency of §3.2.
// The returned result reflects the combined graph; per-run outputs are
// discarded except for the last run's.
func AnalyzeMulti(prog *vm.Program, inputs []Inputs, cfg Config) (*Result, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("core: no inputs")
	}
	tr := taint.New(cfg.Taint)
	var res *Result
	var err error
	for i, in := range inputs {
		if i > 0 {
			tr.Reset()
		}
		res, err = analyzeWith(tr, prog, in, cfg)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AnalyzeSource compiles MiniC source and analyzes one execution.
func AnalyzeSource(filename, src string, in Inputs, cfg Config) (*Result, error) {
	prog, err := lang.Compile(filename, src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, in, cfg)
}

func analyzeWith(tr *taint.Tracker, prog *vm.Program, in Inputs, cfg Config) (*Result, error) {
	m := newMachine(prog, in, cfg)
	tr.Attach(m)
	trapErr := m.Run()

	g := tr.Graph()
	flow := maxflow.Compute(g, cfg.Algorithm)
	cut := flow.MinCut()

	// The tainting bound counts only data actually written out, not the
	// unbounded chain links that model output ordering.
	var taintedOut int64
	for _, e := range g.Edges {
		if e.To == flowgraph.Sink && e.Label.Kind == flowgraph.KindOutput {
			taintedOut += e.Cap
		}
	}

	return &Result{
		Bits:              flow.Flow,
		TaintedOutputBits: taintedOut,
		Graph:             g,
		Flow:              flow,
		Cut:               cut,
		Output:            m.Output,
		ExitCode:          m.ExitCode,
		Steps:             m.Steps,
		Trap:              trapErr,
		Warnings:          tr.Warnings(),
		Snapshots:         tr.Snapshots(),
		Stats:             tr.Stats(),
		prog:              prog,
	}, nil
}

func newMachine(prog *vm.Program, in Inputs, cfg Config) *vm.Machine {
	size := cfg.MemSize
	if size == 0 {
		size = vm.DefaultMemSize
	}
	m := vm.NewMachineSize(prog, size)
	if cfg.MaxSteps != 0 {
		m.MaxSteps = cfg.MaxSteps
	}
	m.SecretIn = in.Secret
	m.PublicIn = in.Public
	return m
}

// SecretClass names one kind of secret within the secret input stream
// (paper §10.1): the bytes [Off, Off+Len).
type SecretClass struct {
	Name string
	Off  int
	Len  int
}

// ClassResult is the per-class disclosure measurement.
type ClassResult struct {
	Class SecretClass
	Bits  int64
	Cut   string
}

// AnalyzeClasses measures, for each kind of secret, how much of it this
// execution reveals, by running the analysis once per class with only that
// class's input bytes marked secret (§10.1: "our analysis can be used
// independently for each kind of secret"). The per-class bounds may sum to
// more than a joint analysis reports, since the classes share output
// capacity (the crowding-out effect the paper discusses).
func AnalyzeClasses(prog *vm.Program, in Inputs, classes []SecretClass, cfg Config) ([]ClassResult, error) {
	out := make([]ClassResult, 0, len(classes))
	for _, c := range classes {
		classCfg := cfg
		classCfg.Taint.SecretRanges = []taint.StreamRange{{Off: c.Off, Len: c.Len}}
		res, err := Analyze(prog, in, classCfg)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", c.Name, err)
		}
		out = append(out, ClassResult{Class: c, Bits: res.Bits, Cut: res.CutString()})
	}
	return out, nil
}

// RunPlain executes prog uninstrumented (the baseline for overhead
// comparisons, and the second machine of the §6.3 lockstep checker).
func RunPlain(prog *vm.Program, in Inputs, cfg Config) (*vm.Machine, error) {
	m := newMachine(prog, in, cfg)
	err := m.Run()
	return m, err
}

// CutEdge is a human-readable description of one minimum-cut edge: a
// program location whose carried bits bound the information revealed
// (§6.1). Cut descriptions drive both checking modes of §6.
type CutEdge struct {
	Where string
	Kind  flowgraph.EdgeKind
	Bits  int64
	Label flowgraph.Label
}

// DescribeCut renders the minimum cut against the program's site table,
// most-capacious edges first.
func (r *Result) DescribeCut() []CutEdge {
	if r.Cut == nil {
		return nil
	}
	out := make([]CutEdge, 0, len(r.Cut.EdgeIndex))
	for _, idx := range r.Cut.EdgeIndex {
		e := r.Graph.Edges[idx]
		where := fmt.Sprintf("site %d", e.Label.Site)
		if r.prog != nil && int(e.Label.Site) < len(r.prog.Code) {
			where = r.prog.SiteString(r.prog.Code[e.Label.Site].Site)
		}
		out = append(out, CutEdge{Where: where, Kind: e.Label.Kind, Bits: e.Cap, Label: e.Label})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bits != out[j].Bits {
			return out[i].Bits > out[j].Bits
		}
		return out[i].Where < out[j].Where
	})
	return out
}

// CutString formats the cut for reports: "9 bits = 8@file:3(f)[internal] + 1@file:14(f)[implicit]".
func (r *Result) CutString() string {
	edges := r.DescribeCut()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("%d@%s[%s]", e.Bits, e.Where, e.Kind)
	}
	return fmt.Sprintf("%d bits = %s", r.Bits, strings.Join(parts, " + "))
}

// CutSites returns the distinct instruction addresses (graph label sites)
// on the minimum cut; the checking modes of §6 use them as the trusted
// boundary.
func (r *Result) CutSites() []uint32 {
	seen := map[uint32]bool{}
	var sites []uint32
	for _, idx := range r.Cut.EdgeIndex {
		s := r.Graph.Edges[idx].Label.Site
		if !seen[s] {
			seen[s] = true
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}
