package core

// Tests for the reporting surface: cut descriptions, sites, and the
// auxiliary result fields downstream tools consume.

import (
	"strings"
	"testing"
)

func TestDescribeCutSortedAndLocated(t *testing.T) {
	src := `
int main() {
    char buf[2];
    read_secret(buf, 2);
    putc(buf[0]);          // 8 bits
    if (buf[1] > 'm') putc('H'); else putc('L'); // 1 bit
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("aq")}, Config{})
	if res.Bits != 9 {
		t.Fatalf("bits = %d, want 9", res.Bits)
	}
	edges := res.DescribeCut()
	if len(edges) < 2 {
		t.Fatalf("cut edges = %d", len(edges))
	}
	// Sorted most-capacious first.
	for i := 1; i < len(edges); i++ {
		if edges[i].Bits > edges[i-1].Bits {
			t.Fatalf("cut not sorted: %+v", edges)
		}
	}
	// Each edge names a source location in the test file.
	for _, e := range edges {
		if !strings.Contains(e.Where, "test.mc:") {
			t.Fatalf("edge location %q not resolved", e.Where)
		}
	}
	// CutString embeds the total.
	if !strings.HasPrefix(res.CutString(), "9 bits = ") {
		t.Fatalf("CutString = %q", res.CutString())
	}
}

func TestCutSitesDeduplicated(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    write_out(buf, 4); // one output site, four byte edges
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("abcd")}, Config{})
	sites := res.CutSites()
	seen := map[uint32]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("duplicate site %d in %v", s, sites)
		}
		seen[s] = true
	}
	// Sites are sorted.
	for i := 1; i < len(sites); i++ {
		if sites[i] < sites[i-1] {
			t.Fatalf("sites not sorted: %v", sites)
		}
	}
}

func TestResultExecutionFacts(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc('y');
    return 42;
}`
	res := analyze(t, src, Inputs{Secret: []byte("z")}, Config{})
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if string(res.Output) != "y" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Steps == 0 {
		t.Fatal("steps not recorded")
	}
	if res.Trap != nil {
		t.Fatalf("trap = %v", res.Trap)
	}
}

func TestTrapStillYieldsPartialResult(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc(buf[0]);
    int z; z = 0;
    return 1 / z; // traps after the leak
}`
	res, err := AnalyzeSource("t.mc", src, Inputs{Secret: []byte("k")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil {
		t.Fatal("expected trap")
	}
	if res.Bits != 8 {
		t.Fatalf("partial-run bits = %d, want 8 (the leak before the trap)", res.Bits)
	}
}

func TestMaxStepsConfig(t *testing.T) {
	src := `
int main() {
    while (1) { }
    return 0;
}`
	res, err := AnalyzeSource("t.mc", src, Inputs{}, Config{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || !strings.Contains(res.Trap.Error(), "step limit") {
		t.Fatalf("trap = %v, want step limit", res.Trap)
	}
}

func TestAnalyzeMultiRequiresInputs(t *testing.T) {
	prog := mustCompile(t, `int main() { return 0; }`)
	if _, err := AnalyzeMulti(prog, nil, Config{}); err == nil {
		t.Fatal("empty input list should error")
	}
}
