package core

import (
	"strings"
	"testing"

	"flowcheck/internal/lang"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/taint"
	"flowcheck/internal/vm"
)

func analyze(t *testing.T, src string, in Inputs, cfg Config) *Result {
	t.Helper()
	res, err := AnalyzeSource("test.mc", src, in, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if res.Trap != nil {
		t.Fatalf("guest trapped: %v", res.Trap)
	}
	return res
}

// A program that never touches its secret input reveals 0 bits
// (noninterference, §3.1).
func TestNoSecretUseIsZero(t *testing.T) {
	src := `
int main() {
    char buf[8];
    read_secret(buf, 8);
    char *msg; msg = "public!";
    write_out(msg, 7);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("12345678")}, Config{})
	if res.Bits != 0 {
		t.Fatalf("bits = %d, want 0", res.Bits)
	}
}

// Copying one secret byte to the output reveals exactly 8 bits.
func TestDirectCopyByte(t *testing.T) {
	src := `
int main() {
    char buf[8];
    read_secret(buf, 8);
    putc(buf[3]);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("abcdefgh")}, Config{})
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8", res.Bits)
	}
}

// Copying a secret byte many times still reveals only 8 bits — the
// single-output constraint of Figure 1 that plain tainting misses.
func TestCopiesDoNotMultiply(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    for (int i = 0; i < 10; i++) putc(buf[0]);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("wxyz")}, Config{})
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8 (copies must not multiply information)", res.Bits)
	}
	if res.TaintedOutputBits != 80 {
		t.Fatalf("tainting bound = %d, want 80", res.TaintedOutputBits)
	}
}

// Masking with a public constant reduces the bit capacity.
func TestBitMaskingReducesFlow(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc(buf[0] & 0x0F);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("K")}, Config{})
	if res.Bits != 4 {
		t.Fatalf("bits = %d, want 4 (low nibble only)", res.Bits)
	}
}

// XOR of two secret bytes: 8 bits, not 16 — the result holds one byte.
func TestXorCombinesToWidth(t *testing.T) {
	src := `
int main() {
    char buf[2];
    read_secret(buf, 2);
    putc(buf[0] ^ buf[1]);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("ab")}, Config{})
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8", res.Bits)
	}
}

// A branch on secret data outside any region leaks 1 bit via the output
// chain, even when the printed values themselves are public constants.
func TestBranchImplicitFlow(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 'm') putc('H');
    else putc('L');
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("q")}, Config{})
	if res.Bits != 1 {
		t.Fatalf("bits = %d, want 1 (one branch)", res.Bits)
	}
}

// An implicit flow after the last explicit output can still escape through
// the observability of termination itself (§3.1 treats distinguishable
// terminal behavior as output; this is also what makes the §3.2 unary
// printer reveal n+1 bits, including n = 0). But it cannot retroactively
// ride the earlier output: a mid-run snapshot taken right after the putc
// shows 0 bits.
func TestImplicitAfterLastOutputOrdering(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc('x');
    __flownote();
    if (buf[0] > 'm') { int dummy; dummy = 1; }
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("q")}, Config{})
	if len(res.Snapshots) != 1 || res.Snapshots[0].Bits != 0 {
		t.Fatalf("snapshot after putc should be 0 bits, got %+v", res.Snapshots)
	}
	if res.Bits != 1 {
		t.Fatalf("final bits = %d, want 1 (escapes via exit observability)", res.Bits)
	}
}

// ...but an implicit flow before an output does escape.
func TestImplicitBeforeOutputLeaks(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    int x; x = 0;
    if (buf[0] > 'm') { x = 1; }
    putc('x');
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("q")}, Config{})
	if res.Bits != 1 {
		t.Fatalf("bits = %d, want 1", res.Bits)
	}
}

// Declassification cuts the flow.
func TestDeclassify(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    __declassify(buf, 4);
    write_out(buf, 4);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("key!")}, Config{})
	if res.Bits != 0 {
		t.Fatalf("bits = %d, want 0 after declassification", res.Bits)
	}
}

// The paper's Figure 2 example: with enclosure regions, an execution that
// prints the more common punctuation character reveals 9 bits — 1 bit for
// which character won, 8 bits for the count (§2.4).
const countPunctSrc = `
void count_punct(char *buf) {
    char num_dot, num_qm, num;
    char common;
    int i;
    num_dot = 0; num_qm = 0;
    __enclose(num_dot, num_qm) {
        for (i = 0; buf[i] != '\0'; i++) {
            if (buf[i] == '.') num_dot++;
            else if (buf[i] == '?') num_qm++;
        }
    }
    __enclose(common, num) {
        if (num_dot > num_qm) { common = '.'; num = num_dot; }
        else                  { common = '?'; num = num_qm; }
    }
    while (num--) putc(common);
}
int main() {
    char buf[512];
    int n; n = read_secret(buf, 511);
    buf[n] = '\0';
    count_punct(buf);
    return 0;
}`

func TestFigure2NineBits(t *testing.T) {
	// Input with 8 dots and 4 question marks, like the paper's source.
	in := "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)}, Config{})
	if string(res.Output) != "........" {
		t.Fatalf("output = %q, want 8 dots", res.Output)
	}
	if res.Bits != 9 {
		t.Fatalf("bits = %d, want 9 (1 for the winner + 8 for the count); cut: %s",
			res.Bits, res.CutString())
	}
	// The min cut is a 1-bit edge (the winner comparison) plus an 8-bit
	// edge (num after the second region), as §2.4 describes; min cuts are
	// not unique, so accept any equivalent 1+8 split.
	edges := res.DescribeCut()
	var have1, have8 bool
	for _, e := range edges {
		if e.Bits == 1 {
			have1 = true
		}
		if e.Bits == 8 {
			have8 = true
		}
	}
	if len(edges) != 2 || !have1 || !have8 {
		t.Fatalf("cut structure unexpected: %s", res.CutString())
	}
}

// Without enclosure regions the same program is measured much more
// coarsely: every comparison against the secret leaks a bit into the chain
// (§2.4's 1855-bit blowup, scaled to our input).
func TestFigure2WithoutRegionsBlowsUp(t *testing.T) {
	src := strings.ReplaceAll(countPunctSrc, "__enclose(num_dot, num_qm)", "")
	src = strings.ReplaceAll(src, "__enclose(common, num)", "")
	in := "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"
	res := analyze(t, src, Inputs{Secret: []byte(in)}, Config{})
	if res.Bits <= 9 {
		t.Fatalf("bits = %d, want far more than 9 without regions", res.Bits)
	}
}

// The tainting bound for Figure 2 counts all tainted output bits (64 for
// the paper's run of 8 output characters).
func TestFigure2TaintingBound(t *testing.T) {
	in := "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)}, Config{})
	if res.TaintedOutputBits != 64 {
		t.Fatalf("tainting bound = %d, want 64 (8 fully-tainted output bytes)", res.TaintedOutputBits)
	}
}

// Exact (uncollapsed) mode gives the same answer on the paper's input. (On
// shorter inputs the tool may instead find the §3.2 unary cut at the print
// loop's tests, min(8, n+1) — sound for a single run.)
func TestFigure2ExactMode(t *testing.T) {
	in := "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)},
		Config{Taint: taint.Options{Exact: true}})
	if res.Bits != 9 {
		t.Fatalf("exact-mode bits = %d, want 9; cut: %s", res.Bits, res.CutString())
	}
}

// On a short run the tool picks the smaller unary cut: printing n
// characters is measured as min(8, n+1) + 1 bits — the single-run-sound
// alternative coding §3.2 discusses.
func TestFigure2UnaryCutOnShortRun(t *testing.T) {
	in := "one. two. three? four." // 3 dots, 1 question mark
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)},
		Config{Taint: taint.Options{Exact: true}})
	if string(res.Output) != "..." {
		t.Fatalf("output = %q", res.Output)
	}
	// Unary cut: the n+1 = 4 print-loop tests at 1 bit each, plus the
	// 1-bit winner comparison — cheaper than the 8-bit binary counter.
	if res.Bits != 5 {
		t.Fatalf("bits = %d, want 5 = (n+1) + 1 with n=3; cut: %s", res.Bits, res.CutString())
	}
}

// Context-sensitive collapsing also gives 9 bits on the paper's input.
func TestFigure2ContextSensitive(t *testing.T) {
	in := "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)},
		Config{Taint: taint.Options{ContextSensitive: true}})
	if res.Bits != 9 {
		t.Fatalf("ctx-sensitive bits = %d, want 9", res.Bits)
	}
}

// An enclosure region with no implicit flows inside has no effect (§8.6).
func TestInactiveRegionIsFree(t *testing.T) {
	src := `
int main() {
    char buf[2];
    read_secret(buf, 2);
    char x;
    __enclose(x) {
        x = buf[0] ^ buf[1]; // pure data flow, no branches on secrets
    }
    putc(x);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("ab")}, Config{})
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8 (region inactive, pure data flow)", res.Bits)
	}
}

// The dynamic soundness check: a location written inside a region but not
// declared still gets retagged at leave (auto-extension), so the flow is
// not underestimated.
func TestRegionAutoExtension(t *testing.T) {
	src := `
int leak;
int main() {
    char buf[1];
    read_secret(buf, 1);
    int declared; declared = 0;
    __enclose(declared) {
        if (buf[0] > 'm') leak = 1;
        else leak = 2;
    }
    putc((char)leak);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("z")}, Config{})
	if res.Bits < 1 {
		t.Fatalf("bits = %d: auto-extension failed, implicit flow lost", res.Bits)
	}
}

// Indirect jumps through a secret index (dense switch -> jump table) are
// pointer implicit flows.
func TestJumpTableImplicit(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    int x; x = buf[0] % 5;
    switch (x) {
    case 0: putc('a'); break;
    case 1: putc('b'); break;
    case 2: putc('c'); break;
    case 3: putc('d'); break;
    case 4: putc('e'); break;
    }
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("7")}, Config{})
	if res.Bits < 1 {
		t.Fatalf("bits = %d, want >= 1 (table dispatch on secret)", res.Bits)
	}
	if res.Bits > 32 {
		t.Fatalf("bits = %d, implausibly large", res.Bits)
	}
}

// Loads with secret addresses leak the secret address bits, even when the
// loaded data is public (§2.2's array example).
func TestSecretIndexLoad(t *testing.T) {
	src := `
char table[16];
int main() {
    for (int i = 0; i < 16; i++) table[i] = (char)('A' + i);
    char buf[1];
    read_secret(buf, 1);
    putc(table[buf[0] & 0x0F]);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("\x05")}, Config{})
	// The address has 4 secret bits; the loaded byte is public data. The
	// flow must be >= 4 even though tainting of the data alone says 0.
	if res.Bits < 4 {
		t.Fatalf("bits = %d, want >= 4 (secret-index load)", res.Bits)
	}
}

// Multi-run analysis: merged graphs are jointly sound (§3.2). Running the
// unary-printer on many inputs must yield a single consistent bound, not
// per-run min(8, n+1).
func TestMultiRunConsistency(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char n; n = buf[0];
    while (n--) putc('*');
    return 0;
}`
	prog := mustCompile(t, src)
	var inputs []Inputs
	for _, n := range []byte{0, 1, 3, 200} {
		inputs = append(inputs, Inputs{Secret: []byte{n}})
	}
	res, err := AnalyzeMulti(prog, inputs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Jointly, distinguishing these runs consistently costs at least 8
	// bits at the binary-counter cut; the merged graph must not report the
	// unsound min(8, n+1) = 1 of the n=0 run.
	if res.Bits < 8 {
		t.Fatalf("merged bits = %d, want >= 8", res.Bits)
	}
}

// Snapshots via __flownote give non-decreasing intermediate flows (§8.1).
func TestFlowSnapshots(t *testing.T) {
	src := `
int main() {
    char buf[3];
    read_secret(buf, 3);
    __flownote();
    putc(buf[0]);
    __flownote();
    putc(buf[1]);
    __flownote();
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("abc")}, Config{})
	s := res.Snapshots
	if len(s) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(s))
	}
	if s[0].Bits != 0 || s[1].Bits != 8 || s[2].Bits != 16 {
		t.Fatalf("snapshot bits = %d,%d,%d, want 0,8,16", s[0].Bits, s[1].Bits, s[2].Bits)
	}
}

// WarnImplicit surfaces unenclosed implicit flows (§8's annotation-finding
// workflow).
func TestWarnImplicit(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 'm') putc('H'); else putc('L');
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("q")},
		Config{Taint: taint.Options{WarnImplicit: true}})
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "implicit flow") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no implicit-flow warning; warnings: %v", res.Warnings)
	}
}

// Arithmetic that provably cancels secrecy (x & 0) flows nothing.
func TestPublicZeroAnd(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc(buf[0] & 0);
    return 0;
}`
	res := analyze(t, src, Inputs{Secret: []byte("s")}, Config{})
	if res.Bits != 0 {
		t.Fatalf("bits = %d, want 0 (x & 0 is public)", res.Bits)
	}
}

// The division example of §3.1: branching on divisor-is-zero reveals one
// bit per execution under the adversarial model.
func TestDivisionOneBit(t *testing.T) {
	src := `
int main() {
    char buf[8];
    read_secret(buf, 8);
    int a; a = buf[0];
    int b; b = buf[4];
    if (b == 0) {
        char *msg; msg = "error: divide by zero\n";
        write_out(msg, 22);
    } else {
        int q; q = a / b; // quotient is computed but never printed
        putc('k');
    }
    return 0;
}`
	for _, secret := range []string{"\x05\x00\x00\x00\x03\x00\x00\x00", "\x02\x00\x00\x00\x00\x00\x00\x00"} {
		res := analyze(t, src, Inputs{Secret: []byte(secret)}, Config{})
		if res.Bits != 1 {
			t.Fatalf("bits = %d, want 1 for secret %q", res.Bits, secret)
		}
	}
}

// Graph structure invariants hold on a nontrivial run.
func TestGraphValidates(t *testing.T) {
	in := "one. two. three? four."
	res := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)}, Config{})
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	if res.Cut.Capacity != res.Bits {
		t.Fatalf("min cut capacity %d != max flow %d", res.Cut.Capacity, res.Bits)
	}
}

// Edmonds-Karp agrees with Dinic on a real analysis graph.
func TestAlgorithmsAgreeOnRealGraph(t *testing.T) {
	in := "a. b? c."
	r1 := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)}, Config{})
	r2 := analyze(t, countPunctSrc, Inputs{Secret: []byte(in)}, Config{Algorithm: maxflow.EdmondsKarp})
	if r1.Bits != r2.Bits {
		t.Fatalf("dinic %d != edmonds-karp %d", r1.Bits, r2.Bits)
	}
}

func mustCompile(t *testing.T, src string) *vm.Program {
	t.Helper()
	p, err := lang.Compile("test.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// §10.1 extension: per-class analysis measures each kind of secret
// independently; the sum of per-class bounds can exceed the joint bound
// because classes share output capacity (crowding out).
func TestAnalyzeClasses(t *testing.T) {
	src := `
int main() {
    char a[1];
    char b[1];
    read_secret(a, 1); // Alice's secret
    read_secret(b, 1); // Bob's secret
    putc(a[0] ^ b[0]); // one byte can carry 8 bits of either, not both
    return 0;
}`
	prog := mustCompile(t, src)
	in := Inputs{Secret: []byte{0x5A, 0xA5}}
	classes := []SecretClass{
		{Name: "alice", Off: 0, Len: 1},
		{Name: "bob", Off: 1, Len: 1},
	}
	per, err := AnalyzeClasses(prog, in, classes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range per {
		if c.Bits != 8 {
			t.Errorf("class %s = %d bits, want 8", c.Class.Name, c.Bits)
		}
	}
	joint, err := Analyze(prog, in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if joint.Bits != 8 {
		t.Fatalf("joint = %d bits, want 8", joint.Bits)
	}
	if per[0].Bits+per[1].Bits <= joint.Bits {
		t.Fatal("expected per-class sum to exceed the joint bound (shared capacity)")
	}
}

// A class covering none of the used input reveals nothing.
func TestAnalyzeClassesDisjoint(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    putc(buf[0]);
    return 0;
}`
	prog := mustCompile(t, src)
	per, err := AnalyzeClasses(prog, Inputs{Secret: []byte("wxyz")}, []SecretClass{
		{Name: "used", Off: 0, Len: 1},
		{Name: "unused", Off: 2, Len: 2},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if per[0].Bits != 8 || per[1].Bits != 0 {
		t.Fatalf("per-class = %d/%d, want 8/0", per[0].Bits, per[1].Bits)
	}
}
