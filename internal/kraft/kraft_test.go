package kraft

import (
	"math"
	"testing"
)

func TestSumBasic(t *testing.T) {
	// 2^-1 + 2^-2 + 2^-2 = 1.
	if s := Sum([]int64{1, 2, 2}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("sum = %v, want 1", s)
	}
}

func TestSatisfied(t *testing.T) {
	if !Satisfied([]int64{1, 2, 2}) {
		t.Fatal("complete binary code should satisfy Kraft")
	}
	if Satisfied([]int64{1, 1, 1}) {
		t.Fatal("three 1-bit codewords cannot be uniquely decodable")
	}
	if !Satisfied(nil) {
		t.Fatal("empty set trivially satisfies")
	}
}

// The paper's own number: Σ_{n=0..255} 2^-min(8, n+1) = 503/256.
func TestPaperSection32Example(t *testing.T) {
	var ks []int64
	for n := 0; n < 256; n++ {
		k := int64(n) + 1
		if k > 8 {
			k = 8
		}
		ks = append(ks, k)
	}
	want := 503.0 / 256.0
	if s := Sum(ks); math.Abs(s-want) > 1e-9 {
		t.Fatalf("sum = %v, want 503/256 = %v", s, want)
	}
	if Satisfied(ks) {
		t.Fatal("paper's example must violate Kraft")
	}
}

func TestUniformCodeExactlyOne(t *testing.T) {
	// 256 messages at 8 bits each: sum exactly 1.
	ks := make([]int64, 256)
	for i := range ks {
		ks[i] = 8
	}
	if !Satisfied(ks) {
		t.Fatal("uniform 8-bit code over 256 messages is exactly Kraft-tight")
	}
}

func TestNegativeAndHugeCounts(t *testing.T) {
	if s := Sum([]int64{-5}); s != 1 {
		t.Fatalf("negative count should clamp to 0 bits (sum 1), got %v", s)
	}
	if s := Sum([]int64{5000}); s != 0 {
		t.Fatalf("huge count contributes 0, got %v", s)
	}
}

func TestMinConsistentUniform(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}}
	for _, c := range cases {
		if got := MinConsistentUniform(c.n); got != c.want {
			t.Errorf("MinConsistentUniform(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
