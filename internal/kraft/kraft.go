// Package kraft checks the soundness condition of paper §3.1: a set of
// per-input flow bounds k(i) corresponds to a uniquely-decodable code —
// and is therefore jointly sound — only if Kraft's inequality holds:
//
//	Σ 2^(-k(i)) ≤ 1
//
// The paper uses the inequality both to define soundness for multi-run
// measurements and to demonstrate (§3.2) that naively taking each run's
// own minimum cut can be unsound: for the character-printing loop,
// min(8, n+1) over n = 0..255 sums to 503/256 > 1.
package kraft

import "math"

// Sum computes Σ 2^(-k) for the given bit counts. Counts above 1023 are
// treated as contributing 0 (they cannot affect the comparison against 1
// at float64 precision).
func Sum(ks []int64) float64 {
	var total float64
	for _, k := range ks {
		if k < 0 {
			k = 0
		}
		if k > 1023 {
			continue
		}
		total += math.Pow(2, -float64(k))
	}
	return total
}

// Satisfied reports whether the bounds satisfy Kraft's inequality, i.e.
// whether a prefix-free code with these lengths exists. A tiny epsilon
// absorbs floating-point error in the sum.
func Satisfied(ks []int64) bool {
	return Sum(ks) <= 1+1e-9
}

// MinConsistentUniform returns the smallest single bound k that is jointly
// sound for n equally-informative distinct messages: ceil(log2 n). (Paper
// §3.1: distinguishing N messages requires log2 N bits each.)
func MinConsistentUniform(n int) int64 {
	if n <= 1 {
		return 0
	}
	k := int64(0)
	for p := 1; p < n; p *= 2 {
		k++
		if p > (1 << 62) {
			break
		}
	}
	return k
}
