package check

import (
	"strings"
	"testing"

	"flowcheck/internal/core"
	"flowcheck/internal/lang"
	"flowcheck/internal/vm"
)

// compile + analyze + return cut sites for a source.
func cutFor(t *testing.T, src string, secret []byte) (*vm.Program, []uint32, *core.Result) {
	t.Helper()
	prog, err := lang.Compile("check.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(prog, core.Inputs{Secret: secret}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, res.CutSites(), res
}

const copySrc = `
int main() {
    char buf[4];
    read_secret(buf, 4);
    putc(buf[0]);
    return 0;
}`

func TestTaintCheckAllowsCutFlows(t *testing.T) {
	prog, cut, res := cutFor(t, copySrc, []byte("abcd"))
	r, err := RunTaintCheck(prog, []byte("wxyz"), nil, cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The checker works at site granularity (the paper's "static
	// representation of the edges", §6.1), so a cut landing at the input
	// read charges all bytes read there: budget up to 8 bits per input
	// byte, but never a violation.
	if !r.OK(res.Bits + 24) {
		t.Fatalf("check failed: revealed=%d violations=%v (budget %d)", r.RevealedBits, r.Violations, res.Bits)
	}
	if r.RevealedBits == 0 {
		t.Fatal("cut crossing should charge revealed bits")
	}
}

func TestTaintCheckDetectsUncutLeak(t *testing.T) {
	// Derive the cut from a run of a *different* program (no leak), then
	// check the leaking program with an empty cut: the output is a
	// violation.
	prog, err := lang.Compile("leak.mc", copySrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTaintCheck(prog, []byte("wxyz"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) == 0 {
		t.Fatal("leak past an empty cut must be a violation")
	}
	if r.OK(1000) {
		t.Fatal("OK must be false when violations exist")
	}
}

func TestTaintCheckCleanProgramPasses(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    char *msg; msg = "fine";
    write_out(msg, 4);
    return 0;
}`
	prog, err := lang.Compile("clean.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTaintCheck(prog, []byte("ssss"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK(0) {
		t.Fatalf("clean program should pass with zero budget: %+v", r.Violations)
	}
}

func TestTaintCheckImplicitViolation(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 'm') putc('H'); else putc('L');
    return 0;
}`
	prog, err := lang.Compile("imp.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTaintCheck(prog, []byte("q"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range r.Violations {
		if strings.Contains(v.Msg, "implicit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("implicit flow not flagged: %v", r.Violations)
	}
}

// A cut derived from the analysis makes the same program pass the taint
// check: analysis and checker agree on where information crosses.
func TestTaintCheckCutFromAnalysis(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc(buf[0] & 0x0F);
    return 0;
}`
	prog, cut, res := cutFor(t, src, []byte("K"))
	r, err := RunTaintCheck(prog, []byte("J"), nil, cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK(res.Bits + 8) {
		t.Fatalf("violations: %v (revealed %d)", r.Violations, r.RevealedBits)
	}
}

func TestLockstepCleanProgram(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    char *msg; msg = "same";
    write_out(msg, 4);
    return 0;
}`
	prog, err := lang.Compile("ls.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunLockstep(prog, []byte("ssss"), []byte("dddd"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("clean program diverged: %s", r.Divergence)
	}
	if r.BitsTransferred != 0 {
		t.Fatalf("no cut, no transfer expected, got %d", r.BitsTransferred)
	}
}

func TestLockstepDetectsLeak(t *testing.T) {
	prog, err := lang.Compile("ls2.mc", copySrc)
	if err != nil {
		t.Fatal(err)
	}
	// No cut: the secret byte reaches the output, so the copies diverge.
	r, err := RunLockstep(prog, []byte("abcd"), []byte("wxyz"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("leak must cause divergence")
	}
	if !strings.Contains(r.Divergence, "diverged") && !strings.Contains(r.Divergence, "output") {
		t.Fatalf("unexpected divergence message: %s", r.Divergence)
	}
}

func TestLockstepWithCutPasses(t *testing.T) {
	prog, cut, _ := cutFor(t, copySrc, []byte("abcd"))
	r, err := RunLockstep(prog, []byte("abcd"), []byte("wxyz"), nil, cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("cut values copied, but still diverged: %s", r.Divergence)
	}
	if r.BitsTransferred == 0 {
		t.Fatal("transfer at cut expected")
	}
}

func TestLockstepControlFlowCut(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 'm') putc('H'); else putc('L');
    return 0;
}`
	prog, cut, _ := cutFor(t, src, []byte("q"))
	// Without the cut: divergence (different branch taken).
	r, err := RunLockstep(prog, []byte("q"), []byte("a"), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("secret-dependent branch must diverge without a cut")
	}
	// With the analysis-derived cut: the branch decision is transferred.
	r, err = RunLockstep(prog, []byte("q"), []byte("a"), nil, cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("cut should reconcile the branch: %s", r.Divergence)
	}
}

func TestLockstepCountPunct(t *testing.T) {
	src := `
void count_punct(char *buf) {
    char num_dot, num_qm, num;
    char common;
    int i;
    num_dot = 0; num_qm = 0;
    __enclose(num_dot, num_qm) {
        for (i = 0; buf[i] != '\0'; i++) {
            if (buf[i] == '.') num_dot++;
            else if (buf[i] == '?') num_qm++;
        }
    }
    __enclose(common, num) {
        if (num_dot > num_qm) { common = '.'; num = num_dot; }
        else                  { common = '?'; num = num_qm; }
    }
    while (num--) putc(common);
}
int main() {
    char buf[128];
    int n; n = read_secret(buf, 127);
    buf[n] = '\0';
    count_punct(buf);
    return 0;
}`
	secret := []byte("one. two. three? four. five. six? seven. eight.")
	dummy := make([]byte, len(secret))
	for i := range dummy {
		dummy[i] = 'x'
	}
	prog, cut, _ := cutFor(t, src, secret)
	r, err := RunLockstep(prog, secret, dummy, nil, cut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("count_punct lockstep failed: %s", r.Divergence)
	}
	if string(r.Output) == "" {
		t.Fatal("no output")
	}
}

func TestLockstepRejectsLengthMismatch(t *testing.T) {
	prog, err := lang.Compile("ls3.mc", copySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLockstep(prog, []byte("abcd"), []byte("ab"), nil, nil, 0); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestLockstepShadowTrapIsViolation(t *testing.T) {
	// The shadow divides by its (different) input: secret 2 runs fine, the
	// dummy 0 traps — a detectable policy-relevant divergence, not an
	// infrastructure error.
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    int d; d = (int)buf[0];
    int q; q = 100 / d;
    putc('k');
    return 0;
}`
	prog, err := lang.Compile("lt.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunLockstep(prog, []byte{2}, []byte{0}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK || !strings.Contains(r.Divergence, "trap") {
		t.Fatalf("shadow trap not flagged: ok=%v div=%q", r.OK, r.Divergence)
	}
}

func TestLockstepExitCodeDivergence(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    return (int)buf[0];
}`
	prog, err := lang.Compile("le.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunLockstep(prog, []byte{3}, []byte{9}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK || !strings.Contains(r.Divergence, "exit") {
		t.Fatalf("exit-code divergence not flagged: ok=%v div=%q", r.OK, r.Divergence)
	}
}

func TestLockstepOutputLengthDivergence(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char n; n = buf[0];
    while (n--) putc('*');
    return 0;
}`
	prog, err := lang.Compile("ll.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunLockstep(prog, []byte{2}, []byte{5}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("different output lengths must diverge")
	}
}

func TestTaintCheckStepsReported(t *testing.T) {
	prog, err := lang.Compile("ts.mc", copySrc)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := RunTaintCheck(prog, []byte("abcd"), nil, nil, 0)
	if r.Steps == 0 {
		t.Fatal("steps not counted")
	}
	if r.ExitCode != 0 {
		t.Fatalf("exit = %d", r.ExitCode)
	}
}

func TestViolationStringFormat(t *testing.T) {
	v := Violation{Where: "f.mc:3(main)", Bits: 8, Msg: "leak"}
	if s := v.String(); !strings.Contains(s, "f.mc:3") || !strings.Contains(s, "8 bits") {
		t.Fatalf("violation format: %q", s)
	}
}
