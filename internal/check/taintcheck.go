// Package check implements the two flow-bound checking techniques of paper
// §6: once the full analysis has found a flow bound and a minimum cut,
// future executions can be checked against the bound much more cheaply.
//
// The tainting-based checker (§6.2) reruns the program under plain
// bit-level tainting; cut sites act as counters that clear taint while
// charging the revealed bits, and any tainted bits reaching an output or an
// implicit-flow operation elsewhere are violations. The output-comparison
// checker (§6.3, Lockstep) runs two mostly-uninstrumented copies — one with
// the real secret, one with an innocuous input — copying only the cut
// values across and comparing outputs.
package check

import (
	"fmt"

	"flowcheck/internal/bits"
	"flowcheck/internal/vm"
)

// Violation records secret data escaping somewhere other than the cut.
type Violation struct {
	Where string
	Bits  int64
	Msg   string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s (%d bits)", v.Where, v.Msg, v.Bits) }

// TaintResult reports a tainting-based check (§6.2).
type TaintResult struct {
	// RevealedBits counts bits that crossed the cut (the allowed channel).
	RevealedBits int64
	// ViolationBits counts tainted bits that escaped elsewhere.
	ViolationBits int64
	Violations    []Violation
	Output        []byte
	ExitCode      vm.Word
	Steps         uint64
}

// OK reports whether the execution respected the policy: no flows outside
// the cut, and at most budget bits across it.
func (r *TaintResult) OK(budget int64) bool {
	return len(r.Violations) == 0 && r.RevealedBits <= budget
}

// taintChecker is a lightweight vm.Tracer: it propagates secrecy masks
// (without any graph construction), clears taint at cut sites while
// counting the bits revealed, and flags every other escape.
type taintChecker struct {
	m   *vm.Machine
	cut map[uint32]bool
	sh  *shadowMasks
	res *TaintResult

	regMask [vm.NumRegs]bits.Mask
	regions []*checkRegion

	maxViolations int
}

type checkRegion struct {
	declared []vm.Range
	active   bool
}

// RunTaintCheck executes prog under the tainting-based checker. cutSites
// are the instruction addresses of the minimum cut (core.Result.CutSites).
func RunTaintCheck(prog *vm.Program, secret, public []byte, cutSites []uint32, memSize int) (*TaintResult, error) {
	if memSize == 0 {
		memSize = vm.DefaultMemSize
	}
	m := vm.NewMachineSize(prog, memSize)
	m.SecretIn = secret
	m.PublicIn = public
	c := &taintChecker{
		m:             m,
		cut:           map[uint32]bool{},
		sh:            newShadowMasks(),
		res:           &TaintResult{},
		maxViolations: 100,
	}
	for _, s := range cutSites {
		c.cut[s] = true
	}
	m.Tracer = c
	err := m.Run()
	c.res.Output = m.Output
	c.res.ExitCode = m.ExitCode
	c.res.Steps = m.Steps
	return c.res, err
}

func (c *taintChecker) atCut() bool { return c.cut[uint32(c.m.PC)] }

func (c *taintChecker) violate(site uint32, n int64, msg string) {
	c.res.ViolationBits += n
	if len(c.res.Violations) < c.maxViolations {
		c.res.Violations = append(c.res.Violations, Violation{
			Where: c.m.Prog.SiteString(site), Bits: n, Msg: msg,
		})
	}
}

// allow charges n bits to the revealed counter (a cut crossing).
func (c *taintChecker) allow(n int64) { c.res.RevealedBits += n }

// cutFilter clears the mask at a cut site, charging the revealed bits.
func (c *taintChecker) cutFilter(m bits.Mask) bits.Mask {
	if m != 0 && c.atCut() {
		c.allow(int64(bits.Count(m)))
		return 0
	}
	return m
}

// implicitTaint handles a tainted control-flow operation: at a cut site it
// is the allowed channel; inside a region it is deferred to the region's
// outputs; anywhere else it is a violation.
func (c *taintChecker) implicitTaint(site uint32, capBits int64) {
	if capBits == 0 {
		return
	}
	if c.atCut() {
		c.allow(capBits)
		return
	}
	if n := len(c.regions); n > 0 {
		c.regions[n-1].active = true
		return
	}
	c.violate(site, capBits, "implicit flow on tainted data outside cut and regions")
}

// ---------------------------------------------------------------- hooks ---

// Const implements vm.Tracer.
func (c *taintChecker) Const(site uint32, rd int) { c.regMask[rd] = 0 }

// Mov implements vm.Tracer.
func (c *taintChecker) Mov(site uint32, rd, rs int) { c.regMask[rd] = c.regMask[rs] }

// Binop implements vm.Tracer.
func (c *taintChecker) Binop(site uint32, op vm.Op, rd, ra, rb int, va, vb vm.Word) {
	ma, mb := c.regMask[ra], c.regMask[rb]
	var rm bits.Mask
	switch op {
	case vm.OpAdd:
		rm = bits.Add(ma, mb, va, vb)
	case vm.OpSub:
		rm = bits.Sub(ma, mb, va, vb)
	case vm.OpMul:
		rm = bits.Mul(ma, mb, va, vb)
	case vm.OpDivU:
		rm = bits.DivU(ma, mb, va, vb)
	case vm.OpDivS:
		rm = bits.DivS(ma, mb, va, vb)
	case vm.OpModU:
		rm = bits.ModU(ma, mb, va, vb)
	case vm.OpModS:
		rm = bits.ModS(ma, mb, va, vb)
	case vm.OpAnd:
		rm = bits.And(ma, mb, va, vb)
	case vm.OpOr:
		rm = bits.Or(ma, mb, va, vb)
	case vm.OpXor:
		rm = bits.Xor(ma, mb)
	case vm.OpShl:
		rm = bits.Shl(ma, mb, va, vb)
	case vm.OpShrU:
		rm = bits.Shr(ma, mb, va, vb)
	case vm.OpShrS:
		rm = bits.Sar(ma, mb, va, vb)
	case vm.OpCmpEQ, vm.OpCmpNE, vm.OpCmpLTS, vm.OpCmpLES, vm.OpCmpLTU, vm.OpCmpLEU:
		rm = bits.Cmp(ma, mb)
	default:
		if ma|mb != 0 {
			rm = bits.All
		}
	}
	c.regMask[rd] = c.cutFilter(rm)
}

// Unop implements vm.Tracer.
func (c *taintChecker) Unop(site uint32, op vm.Op, rd, rs int, vs vm.Word) {
	m := c.regMask[rs]
	if op != vm.OpNot {
		m = bits.Sub(0, m, 0, vs)
	}
	c.regMask[rd] = c.cutFilter(m)
}

// ExtB implements vm.Tracer.
func (c *taintChecker) ExtB(site uint32, rd, rs, idx int) {
	c.regMask[rd] = c.cutFilter(bits.Extract(c.regMask[rs], idx))
}

// InsB implements vm.Tracer.
func (c *taintChecker) InsB(site uint32, rd, rs, idx int) {
	c.regMask[rd] = c.cutFilter(bits.Insert(c.regMask[rd], bits.Extract(c.regMask[rs], 0), idx))
}

// Load implements vm.Tracer.
func (c *taintChecker) Load(site uint32, rd, raddr int, addr vm.Word, n int) {
	if m := c.regMask[raddr]; m != 0 {
		c.implicitTaint(site, int64(bits.Count(m)))
	}
	var combined bits.Mask
	for i := 0; i < n; i++ {
		combined |= bits.Mask(c.sh.get(addr+vm.Word(i))) << uint(8*i)
	}
	c.regMask[rd] = c.cutFilter(combined)
}

// Store implements vm.Tracer.
func (c *taintChecker) Store(site uint32, raddr int, addr vm.Word, rs int, n int) {
	if m := c.regMask[raddr]; m != 0 {
		c.implicitTaint(site, int64(bits.Count(m)))
	}
	m := c.regMask[rs]
	if c.atCut() && m != 0 {
		c.allow(int64(bits.Count(m & bits.ByteMask(n))))
		m = 0
	}
	for i := 0; i < n; i++ {
		c.sh.set(addr+vm.Word(i), uint8(bits.Extract(m, i)))
	}
}

// Branch implements vm.Tracer.
func (c *taintChecker) Branch(site uint32, rc int, taken bool) {
	if c.regMask[rc] != 0 {
		c.implicitTaint(site, 1)
	}
}

// JmpInd implements vm.Tracer.
func (c *taintChecker) JmpInd(site uint32, raddr int, target vm.Word) {
	if m := c.regMask[raddr]; m != 0 {
		c.implicitTaint(site, int64(bits.Count(m)))
	}
}

// Call implements vm.Tracer.
func (c *taintChecker) Call(site uint32, target int) {}

// Ret implements vm.Tracer.
func (c *taintChecker) Ret(site uint32) {
	sp := c.m.Regs[vm.SP]
	var capBits int64
	for i := 0; i < 4; i++ {
		capBits += int64(bits.Count(bits.Mask(c.sh.get(sp + vm.Word(i)))))
	}
	if capBits > 0 {
		c.violate(site, capBits, "return through tainted address")
	}
}

// Push implements vm.Tracer.
func (c *taintChecker) Push(site uint32, rs int, addr vm.Word) {
	var m bits.Mask
	if rs >= 0 {
		m = c.regMask[rs]
	}
	for i := 0; i < 4; i++ {
		c.sh.set(addr+vm.Word(i), uint8(bits.Extract(m, i)))
	}
}

// Pop implements vm.Tracer.
func (c *taintChecker) Pop(site uint32, rd int, addr vm.Word) {
	var combined bits.Mask
	for i := 0; i < 4; i++ {
		combined |= bits.Mask(c.sh.get(addr+vm.Word(i))) << uint(8*i)
	}
	c.regMask[rd] = combined
}

// ReadInput implements vm.Tracer. A cut at the read site means the policy
// allows revealing the bytes read there: they are charged and left
// untainted.
func (c *taintChecker) ReadInput(site uint32, addr vm.Word, data []byte, secret bool) {
	c.regMask[vm.R0] = 0 // the syscall writes the byte count into R0
	if secret && c.atCut() {
		c.allow(int64(8 * len(data)))
		secret = false
	}
	v := uint8(0)
	if secret {
		v = 0xFF
	}
	for i := range data {
		c.sh.set(addr+vm.Word(i), v)
	}
}

// WriteOutput implements vm.Tracer: tainted output bits are allowed at a
// cut site and violations anywhere else.
func (c *taintChecker) WriteOutput(site uint32, addr vm.Word, data []byte, reg int) {
	var n int64
	if reg >= 0 {
		n = int64(bits.Count(bits.Extract(c.regMask[reg], 0)))
	} else {
		for i := range data {
			n += int64(bits.Count(bits.Mask(c.sh.get(addr + vm.Word(i)))))
		}
	}
	if reg < 0 {
		c.regMask[vm.R0] = 0 // the syscall writes the byte count into R0
	}
	if n == 0 {
		return
	}
	if c.atCut() {
		c.allow(n)
		return
	}
	c.violate(site, n, "tainted data reached output outside the cut")
}

// MarkSecret implements vm.Tracer.
func (c *taintChecker) MarkSecret(site uint32, addr, length vm.Word) {
	for i := vm.Word(0); i < length; i++ {
		c.sh.set(addr+i, 0xFF)
	}
}

// Declassify implements vm.Tracer.
func (c *taintChecker) Declassify(site uint32, addr, length vm.Word) {
	for i := vm.Word(0); i < length; i++ {
		c.sh.set(addr+i, 0)
	}
}

// EnterRegion implements vm.Tracer: enclosure regions are still required in
// this mode (§6.2).
func (c *taintChecker) EnterRegion(site uint32, outputs []vm.Range) {
	c.regions = append(c.regions, &checkRegion{declared: outputs})
}

// LeaveRegion implements vm.Tracer: an active region's outputs become fully
// tainted; at a cut site they are instead charged as revealed and cleared.
func (c *taintChecker) LeaveRegion(site uint32) {
	if len(c.regions) == 0 {
		return
	}
	r := c.regions[len(c.regions)-1]
	c.regions = c.regions[:len(c.regions)-1]
	if !r.active {
		return
	}
	cut := c.atCut()
	for _, rng := range r.declared {
		if cut {
			c.allow(8 * int64(rng.Len))
		}
		v := uint8(0xFF)
		if cut {
			v = 0
		}
		for i := vm.Word(0); i < rng.Len; i++ {
			c.sh.set(rng.Addr+i, v)
		}
	}
	if !cut {
		// Propagate the region's influence to an enclosing region, if any:
		// its outputs are tainted, and a branch on them later re-activates.
		if n := len(c.regions); n > 0 {
			c.regions[n-1].active = true
		}
	}
}

// FlowNote implements vm.Tracer (no-op in checking mode).
func (c *taintChecker) FlowNote(site uint32) {}

// Exit implements vm.Tracer.
func (c *taintChecker) Exit(site uint32, codeReg int) {
	if m := c.regMask[codeReg]; m != 0 {
		n := int64(bits.Count(m))
		if c.atCut() {
			c.allow(n)
		} else {
			c.violate(site, n, "tainted exit code")
		}
	}
}

// shadowMasks is a paged mask-only shadow memory (no value identities —
// checking needs no graph).
type shadowMasks struct {
	pages map[vm.Word]*[4096]uint8
}

func newShadowMasks() *shadowMasks { return &shadowMasks{pages: map[vm.Word]*[4096]uint8{}} }

func (s *shadowMasks) get(a vm.Word) uint8 {
	if p := s.pages[a>>12]; p != nil {
		return p[a&4095]
	}
	return 0
}

func (s *shadowMasks) set(a vm.Word, v uint8) {
	p := s.pages[a>>12]
	if p == nil {
		if v == 0 {
			return
		}
		p = &[4096]uint8{}
		s.pages[a>>12] = p
	}
	p[a&4095] = v
}
