package check

import (
	"bytes"
	"fmt"

	"flowcheck/internal/vm"
)

// LockstepResult reports an output-comparison check (§6.3).
type LockstepResult struct {
	// OK is true when both copies produced identical outputs: the values
	// transferred at the cut were the only secret information needed.
	OK bool
	// Divergence describes the first difference found (empty when OK).
	Divergence string
	// BitsTransferred counts the bits copied across at cut sites — the
	// information actually revealed, charged against the policy budget.
	BitsTransferred int64
	Output          []byte
	Steps           uint64
}

// Event kinds for synchronization between the two copies.
const (
	evCut = iota
	evOutput
	evHalt
	evTrap
)

type event struct {
	kind int
	site uint32 // cut site (evCut)
	out  []byte // output bytes (evOutput)
	err  error  // trap (evTrap)
}

// RunLockstep runs two copies of prog: the primary on the real secret
// input, the shadow on an innocuous input of the same length. The copies
// run independently (control flow inside enclosed computations may differ)
// and synchronize only at cut sites, where the primary's values are copied
// into the shadow, and at outputs, which must match byte for byte — the
// mostly-uninstrumented checking mode of §6.3. A policy violation shows up
// as an output (or synchronization) divergence.
func RunLockstep(prog *vm.Program, secret, dummy, public []byte, cutSites []uint32, memSize int) (*LockstepResult, error) {
	if len(dummy) != len(secret) {
		return nil, fmt.Errorf("check: dummy input length %d != secret length %d", len(dummy), len(secret))
	}
	if memSize == 0 {
		memSize = vm.DefaultMemSize
	}
	cut := map[uint32]bool{}
	for _, s := range cutSites {
		cut[s] = true
	}

	m1 := vm.NewMachineSize(prog, memSize)
	m1.SecretIn = secret
	m1.PublicIn = public
	m2 := vm.NewMachineSize(prog, memSize)
	m2.SecretIn = dummy
	m2.PublicIn = public

	ls := &lockstep{prog: prog, cut: cut, res: &LockstepResult{}}
	// Track the primary's enclosure regions so a cut at a leave site knows
	// which ranges to copy. R1 still holds the descriptor address when the
	// hook fires, and syscalls do not clobber it.
	m1.AfterInstr = func(m *vm.Machine, in *vm.Instr) {
		if in.Op != vm.OpSys {
			return
		}
		switch int(in.Imm) {
		case vm.SysEnterRegion:
			ls.regionStack = append(ls.regionStack, readRegionRanges(m))
		case vm.SysLeaveRegion:
			ls.lastLeave = ls.popRegion()
		}
	}

	fail := func(format string, args ...interface{}) (*LockstepResult, error) {
		ls.res.OK = false
		ls.res.Divergence = fmt.Sprintf(format, args...)
		ls.res.Output = m1.Output
		ls.res.Steps = m1.Steps + m2.Steps
		return ls.res, nil
	}

	for {
		e1 := ls.nextEvent(m1)
		if e1.kind == evTrap {
			return nil, fmt.Errorf("primary trapped: %w", e1.err)
		}
		e2 := ls.nextEvent(m2)
		if e2.kind == evTrap {
			return fail("shadow trapped: %v", e2.err)
		}
		if e1.kind != e2.kind {
			return fail("copies desynchronized: primary %s, shadow %s", evName(e1), evName(e2))
		}
		switch e1.kind {
		case evHalt:
			if m1.ExitCode != m2.ExitCode {
				return fail("exit codes diverged: %d vs %d", m1.ExitCode, m2.ExitCode)
			}
			if !bytes.Equal(m1.Output, m2.Output) {
				return fail("final outputs differ: %q vs %q", tail(m1.Output), tail(m2.Output))
			}
			ls.res.OK = true
			ls.res.Output = m1.Output
			ls.res.Steps = m1.Steps + m2.Steps
			return ls.res, nil

		case evOutput:
			if !bytes.Equal(e1.out, e2.out) {
				return fail("outputs diverged: primary wrote %q, shadow wrote %q", e1.out, e2.out)
			}

		case evCut:
			if e1.site != e2.site {
				return fail("cut sites diverged: primary at %s, shadow at %s",
					prog.SiteString(prog.Code[e1.site].Site), prog.SiteString(prog.Code[e2.site].Site))
			}
			if msg := ls.transferAndStep(m1, m2, int(e1.site)); msg != "" {
				return fail("%s", msg)
			}
		}
	}
}

type lockstep struct {
	prog *vm.Program
	cut  map[uint32]bool
	res  *LockstepResult
	// regionStack records the primary's enclosure output ranges so a cut
	// at a leave site knows what to copy; lastLeave holds the ranges of
	// the most recently left region.
	regionStack [][]vm.Range
	lastLeave   []vm.Range
}

func evName(e event) string {
	switch e.kind {
	case evCut:
		return fmt.Sprintf("cut@%d", e.site)
	case evOutput:
		return fmt.Sprintf("output %q", e.out)
	case evHalt:
		return "halt"
	}
	return "trap"
}

// nextEvent advances m to its next synchronization point: stopping *before*
// a cut-site instruction, or *after* producing output, or at halt/trap.
func (ls *lockstep) nextEvent(m *vm.Machine) event {
	for !m.Halted {
		pc := m.PC
		if ls.cut[uint32(pc)] {
			return event{kind: evCut, site: uint32(pc)}
		}
		outLen := len(m.Output)
		if err := m.Step(); err != nil {
			return event{kind: evTrap, err: err}
		}
		if len(m.Output) > outLen {
			return event{kind: evOutput, out: m.Output[outLen:]}
		}
	}
	return event{kind: evHalt}
}

// transferAndStep executes the cut-site instruction on both machines,
// copying the primary's value across: control-steering inputs (branch
// conditions, stored values, output buffers) before the step, computed
// results after it. It returns a divergence message, or "".
func (ls *lockstep) transferAndStep(m1, m2 *vm.Machine, pc int) string {
	in := &ls.prog.Code[pc]

	// Pre-step transfers.
	switch in.Op {
	case vm.OpJz, vm.OpJnz, vm.OpJmpInd, vm.OpCallInd:
		ls.res.BitsTransferred += 32
		m2.Regs[in.A] = m1.Regs[in.A]
	case vm.OpStore, vm.OpPush:
		ls.res.BitsTransferred += 32
		m2.Regs[in.B] = m1.Regs[in.B]
	case vm.OpSys:
		switch int(in.Imm) {
		case vm.SysPutc, vm.SysExit:
			ls.res.BitsTransferred += 32
			m2.Regs[vm.R0] = m1.Regs[vm.R0]
		case vm.SysWrite:
			n := int(m1.Regs[vm.R2])
			if src := m1.Bytes(m1.Regs[vm.R1], n); src != nil {
				if dst := m2.Bytes(m2.Regs[vm.R1], n); dst != nil {
					copy(dst, src)
					ls.res.BitsTransferred += int64(8 * n)
				}
			}
		}
	}

	out1, out2 := len(m1.Output), len(m2.Output)
	if err := m1.Step(); err != nil {
		return fmt.Sprintf("primary trapped at cut: %v", err)
	}
	if err := m2.Step(); err != nil {
		return fmt.Sprintf("shadow trapped at cut: %v", err)
	}

	// Post-step transfers.
	switch in.Op {
	case vm.OpConst, vm.OpMov, vm.OpAdd, vm.OpSub, vm.OpMul,
		vm.OpDivS, vm.OpDivU, vm.OpModS, vm.OpModU,
		vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpShl, vm.OpShrU, vm.OpShrS,
		vm.OpNot, vm.OpNeg, vm.OpExtB, vm.OpInsB,
		vm.OpCmpEQ, vm.OpCmpNE, vm.OpCmpLTS, vm.OpCmpLES, vm.OpCmpLTU, vm.OpCmpLEU,
		vm.OpLoad, vm.OpPop:
		ls.res.BitsTransferred += 32
		m2.Regs[in.A] = m1.Regs[in.A]
	case vm.OpSys:
		switch int(in.Imm) {
		case vm.SysRead:
			// A cut at the input read: the primary's bytes are the
			// revealed value.
			n := int(m1.Regs[vm.R0])
			m2.Regs[vm.R0] = m1.Regs[vm.R0]
			if src := m1.Bytes(m1.Regs[vm.R1], n); src != nil {
				if dst := m2.Bytes(m2.Regs[vm.R1], n); dst != nil {
					copy(dst, src)
					ls.res.BitsTransferred += int64(8 * n)
				}
			}
		case vm.SysLeaveRegion:
			// AfterInstr popped the region when m1 stepped.
			for _, r := range ls.lastLeave {
				if src := m1.Bytes(r.Addr, int(r.Len)); src != nil {
					if dst := m2.Bytes(r.Addr, int(r.Len)); dst != nil {
						copy(dst, src)
						ls.res.BitsTransferred += int64(8 * r.Len)
					}
				}
			}
		}
	}

	// Output produced by the cut instruction itself must still match.
	o1, o2 := m1.Output[out1:], m2.Output[out2:]
	if !bytes.Equal(o1, o2) {
		return fmt.Sprintf("outputs diverged at cut: %q vs %q", o1, o2)
	}
	return ""
}

func (ls *lockstep) popRegion() []vm.Range {
	if n := len(ls.regionStack); n > 0 {
		r := ls.regionStack[n-1]
		ls.regionStack = ls.regionStack[:n-1]
		return r
	}
	return nil
}

func tail(b []byte) []byte {
	if len(b) > 32 {
		return b[len(b)-32:]
	}
	return b
}

// readRegionRanges decodes the enclosure descriptor the machine is about to
// pass to SysEnterRegion.
func readRegionRanges(m *vm.Machine) []vm.Range {
	desc := m.Regs[vm.R1]
	cnt, ok := m.LoadWord(desc)
	if !ok || cnt > 1024 {
		return nil
	}
	out := make([]vm.Range, 0, cnt)
	for i := vm.Word(0); i < cnt; i++ {
		a, ok1 := m.LoadWord(desc + 4 + 8*i)
		l, ok2 := m.LoadWord(desc + 8 + 8*i)
		if !ok1 || !ok2 {
			return nil
		}
		out = append(out, vm.Range{Addr: a, Len: l})
	}
	return out
}
