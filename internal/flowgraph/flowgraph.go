// Package flowgraph defines the flow network that represents the possible
// propagation of secret information through a program execution (paper §2).
//
// Edges represent values and carry capacities measured in bits; nodes
// represent operations. Two distinguished nodes exist in every graph: the
// Source (all secret inputs) and the Sink (all public outputs). The graph is
// a DAG: edges always point from older to newer operations.
//
// The single-output constraint of paper Figure 1 (a value used by several
// later operations still holds only its own width of information) is
// expressed by node splitting: callers allocate a node pair joined by an
// internal edge whose capacity is the value's secret bit count, attach
// inputs to the "in" half and consumers to the "out" half.
package flowgraph

import (
	"fmt"
	"io"
	"sort"
)

// NodeID identifies a node. Source and Sink are pre-allocated in every graph.
type NodeID int32

// Distinguished nodes present in every graph.
const (
	Source NodeID = 0
	Sink   NodeID = 1
)

// Inf is the capacity used for edges with no information-theoretic bound
// (for example the output-chain links of paper §2.2). It is small enough
// that sums of many Inf capacities cannot overflow int64.
const Inf int64 = 1 << 48

// EdgeKind records why an edge exists; it is used in reports, DOT output and
// cut descriptions.
type EdgeKind uint8

// Edge kinds.
const (
	KindData     EdgeKind = iota // direct data flow between operations
	KindInternal                 // node-splitting internal edge (value width)
	KindImplicit                 // implicit flow: branch or pointer operation
	KindRegion                   // enclosure-region node to region output
	KindChain                    // output-chain link
	KindInput                    // Source to a secret input value
	KindOutput                   // value to Sink at an output operation
)

var kindNames = [...]string{"data", "internal", "implicit", "region", "chain", "input", "output"}

func (k EdgeKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Label identifies the static program location an edge arose from, used for
// graph collapsing (§5.2) and multi-run merging (§3.2). Site is a static
// code-site identifier; Ctx is an optional 64-bit probabilistic
// calling-context hash (zero when context-insensitive); Aux distinguishes
// the several edges a single site emits (operand index, internal edge, ...).
type Label struct {
	Site uint32
	Ctx  uint64
	Aux  uint8
	Kind EdgeKind
}

// Edge is one capacity-limited information channel.
type Edge struct {
	From, To NodeID
	Cap      int64
	Label    Label
}

// Graph is a flow network under construction or analysis.
type Graph struct {
	numNodes int32
	Edges    []Edge
}

// New returns a graph containing only the Source and Sink nodes.
func New() *Graph {
	return &Graph{numNodes: 2}
}

// NumNodes reports the number of nodes, including Source and Sink.
func (g *Graph) NumNodes() int { return int(g.numNodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// AddNode allocates a new node.
func (g *Graph) AddNode() NodeID {
	id := NodeID(g.numNodes)
	g.numNodes++
	return id
}

// EnsureNodes grows the node space so that ids [0, n) are valid. It is used
// by graph mergers that compute node ids externally.
func (g *Graph) EnsureNodes(n int) {
	if int32(n) > g.numNodes {
		g.numNodes = int32(n)
	}
}

// AddEdge appends an edge and returns its index. Zero-capacity edges are
// legal (they arise from fully-public values) but carry no information.
func (g *Graph) AddEdge(from, to NodeID, cap int64, label Label) int {
	if from < 0 || to < 0 || int32(from) >= g.numNodes || int32(to) >= g.numNodes {
		panic(fmt.Sprintf("flowgraph: edge (%d,%d) outside node range [0,%d)", from, to, g.numNodes))
	}
	if cap < 0 {
		panic(fmt.Sprintf("flowgraph: negative capacity %d", cap))
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Cap: cap, Label: label})
	return len(g.Edges) - 1
}

// AddValueNode allocates a split node pair for a value holding `capBits`
// secret bits: it returns the in and out halves joined by an internal edge.
// Producers should point edges at in; consumers read from out.
func (g *Graph) AddValueNode(capBits int64, label Label) (in, out NodeID) {
	in = g.AddNode()
	out = g.AddNode()
	label.Kind = KindInternal
	g.AddEdge(in, out, capBits, label)
	return in, out
}

// OutDegree returns a slice mapping each node to its out-degree.
func (g *Graph) OutDegree() []int32 {
	deg := make([]int32, g.numNodes)
	for _, e := range g.Edges {
		deg[e.From]++
	}
	return deg
}

// InDegree returns a slice mapping each node to its in-degree.
func (g *Graph) InDegree() []int32 {
	deg := make([]int32, g.numNodes)
	for _, e := range g.Edges {
		deg[e.To]++
	}
	return deg
}

// TotalSinkCapacity returns the sum of capacities of edges entering Sink —
// the bound a plain tainting analysis would report (paper §7).
func (g *Graph) TotalSinkCapacity() int64 {
	var total int64
	for _, e := range g.Edges {
		if e.To == Sink {
			total += e.Cap
		}
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{numNodes: g.numNodes, Edges: make([]Edge, len(g.Edges))}
	copy(c.Edges, g.Edges)
	return c
}

// Stats summarizes a graph for reports.
type Stats struct {
	Nodes, Edges  int
	ImplicitEdges int
	DataEdges     int
	SinkCapacity  int64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for _, e := range g.Edges {
		switch e.Label.Kind {
		case KindImplicit:
			s.ImplicitEdges++
		case KindData:
			s.DataEdges++
		}
		if e.To == Sink {
			s.SinkCapacity += e.Cap
		}
	}
	return s
}

// WriteDOT emits the graph in Graphviz DOT format. Edges with zero capacity
// are omitted to keep renders readable. Output is deterministic regardless
// of construction order: edges are emitted sorted by endpoints, then label,
// then capacity, so graph diffs in CI are stable.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "flow"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  n0 [label=\"source\",shape=doublecircle];\n  n1 [label=\"sink\",shape=doublecircle];\n", name); err != nil {
		return err
	}
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := g.Edges[order[x]], g.Edges[order[y]]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Label.Site != b.Label.Site {
			return a.Label.Site < b.Label.Site
		}
		if a.Label.Aux != b.Label.Aux {
			return a.Label.Aux < b.Label.Aux
		}
		if a.Label.Ctx != b.Label.Ctx {
			return a.Label.Ctx < b.Label.Ctx
		}
		if a.Label.Kind != b.Label.Kind {
			return a.Label.Kind < b.Label.Kind
		}
		return a.Cap < b.Cap
	})
	for _, i := range order {
		e := g.Edges[i]
		if e.Cap == 0 {
			continue
		}
		cap := fmt.Sprintf("%d", e.Cap)
		if e.Cap >= Inf {
			cap = "inf"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s:%s\"];\n", e.From, e.To, e.Label.Kind, cap); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Validate checks structural invariants: edge endpoints in range, no edges
// out of Sink or into Source, non-negative capacities. It returns the first
// violation found, or nil.
func (g *Graph) Validate() error {
	for i, e := range g.Edges {
		if int32(e.From) >= g.numNodes || int32(e.To) >= g.numNodes || e.From < 0 || e.To < 0 {
			return fmt.Errorf("edge %d: endpoint out of range: (%d,%d)", i, e.From, e.To)
		}
		if e.Cap < 0 {
			return fmt.Errorf("edge %d: negative capacity %d", i, e.Cap)
		}
		if e.From == Sink {
			return fmt.Errorf("edge %d: edge leaving sink", i)
		}
		if e.To == Source {
			return fmt.Errorf("edge %d: edge entering source", i)
		}
	}
	return nil
}

// SortEdges orders edges deterministically (by from, to, site, aux); useful
// for stable test output after map-driven construction.
func (g *Graph) SortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Label.Site != b.Label.Site {
			return a.Label.Site < b.Label.Site
		}
		return a.Label.Aux < b.Label.Aux
	})
}
