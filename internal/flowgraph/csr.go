package flowgraph

// CSR is the compressed-sparse-row residual layout shared between the
// graph core and the max-flow solver. Arcs come in pairs: arc 2i is edge
// i's forward arc (capacity Cap[2i]), arc 2i+1 its reverse (capacity 0);
// the arc ids incident to node v are HArcs[HStart[v]:HStart[v+1]]. A
// solver attaches to a CSR by aliasing the topology arrays and copying
// only Cap into its residual array — the zero-copy handoff.
//
// A CSR is reusable: builders grow the slices in place, so a solver-owned
// CSR filled repeatedly stops allocating once sized for the largest graph.
type CSR struct {
	N      int
	HStart []int32
	HArcs  []int32
	To     []int32
	Cap    []int64

	// Builder scratch, retained for reuse.
	cur    []int32
	nodeOf []int32
	keep   []int32
}

// NumEdges reports the number of forward edges in the view.
func (c *CSR) NumEdges() int { return len(c.To) / 2 }

// BuildCSR fills c with g's residual view, reusing c's backing arrays.
// Edge i of g becomes arc pair (2i, 2i+1), so flow results index back into
// g.Edges directly.
func (g *Graph) BuildCSR(c *CSR) {
	n := g.NumNodes()
	e2 := 2 * len(g.Edges)
	c.N = n
	c.HStart = growI32(c.HStart, n+1)
	c.cur = growI32(c.cur, n)
	c.HArcs = growI32(c.HArcs, e2)
	c.To = growI32(c.To, e2)
	c.Cap = growI64(c.Cap, e2)
	for i := range c.HStart {
		c.HStart[i] = 0
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		c.HStart[e.From+1]++
		c.HStart[e.To+1]++
	}
	for v := 0; v < n; v++ {
		c.HStart[v+1] += c.HStart[v]
		c.cur[v] = c.HStart[v]
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		f := int32(2 * i)
		c.To[f] = int32(e.To)
		c.Cap[f] = e.Cap
		c.To[f+1] = int32(e.From)
		c.Cap[f+1] = 0
		c.HArcs[c.cur[e.From]] = f
		c.cur[e.From]++
		c.HArcs[c.cur[e.To]] = f + 1
		c.cur[e.To]++
	}
}
