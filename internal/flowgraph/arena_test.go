package flowgraph

import (
	"math/rand"
	"testing"
)

func TestArenaBasics(t *testing.T) {
	a := NewArena()
	if a.NumNodes() != 2 || a.LiveNodes() != 2 {
		t.Fatalf("fresh arena has %d/%d nodes, want 2/2", a.NumNodes(), a.LiveNodes())
	}
	v := a.AddNode()
	w := a.AddNode()
	s1 := a.AddEdge(0, v, 8, Label{Site: 1, Kind: KindInput})
	a.AddEdge(v, w, 5, Label{Site: 2})
	a.AddEdge(w, 1, 8, Label{Site: 3, Kind: KindOutput})
	if a.LiveEdges() != 3 {
		t.Fatalf("LiveEdges = %d, want 3", a.LiveEdges())
	}
	if a.OutDegree(v) != 1 || a.InDegree(v) != 1 {
		t.Fatalf("degree(v) = in %d out %d, want 1/1", a.InDegree(v), a.OutDegree(v))
	}
	a.Accumulate(s1, Inf)
	if f, to := a.EdgeEnds(s1); f != 0 || to != v {
		t.Fatalf("EdgeEnds = (%d,%d), want (0,%d)", f, to, v)
	}
	g := a.Export(nil)
	if g.NumEdges() != 3 {
		t.Fatalf("exported %d edges, want 3", g.NumEdges())
	}
	if g.Edges[0].Cap != Inf {
		t.Fatalf("accumulated cap = %d, want saturated Inf", g.Edges[0].Cap)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := a.Mem()
	if m.TotalEdges != 3 || m.PeakLiveEdges != 3 || m.TotalNodes != 4 {
		t.Fatalf("mem = %+v", m)
	}
}

func TestArenaCompactChain(t *testing.T) {
	// source -> a -> b -> c -> sink contracts to a single edge of the min cap.
	a := NewArena()
	n1, n2, n3 := a.AddNode(), a.AddNode(), a.AddNode()
	a.AddEdge(0, n1, 9, Label{Site: 1})
	a.AddEdge(n1, n2, 4, Label{Site: 2})
	a.AddEdge(n2, n3, 7, Label{Site: 3})
	a.AddEdge(n3, 1, 8, Label{Site: 4})
	a.CompactSP(nil)
	if a.LiveEdges() != 1 {
		t.Fatalf("LiveEdges = %d, want 1", a.LiveEdges())
	}
	g := a.Export(nil)
	if len(g.Edges) != 1 || g.Edges[0].Cap != 4 || g.Edges[0].From != Source || g.Edges[0].To != Sink {
		t.Fatalf("compacted edge = %+v", g.Edges)
	}
	m := a.Mem()
	if m.SeriesOps != 3 || m.CompactionPasses != 1 || m.LiveNodes != 2 {
		t.Fatalf("mem = %+v", m)
	}
}

func TestArenaCompactParallelAndDeadEnd(t *testing.T) {
	a := NewArena()
	v := a.AddNode()
	dead := a.AddNode()
	a.AddEdge(0, v, 3, Label{Site: 1})
	a.AddEdge(0, v, 4, Label{Site: 2})
	a.AddEdge(v, 1, 10, Label{Site: 3})
	a.AddEdge(v, dead, 5, Label{Site: 4}) // dead is no ancestor of sink
	a.CompactSP(nil)
	g := a.Export(nil)
	if len(g.Edges) != 1 || g.Edges[0].Cap != 7 {
		t.Fatalf("compacted edges = %+v, want one source->sink edge of cap 7", g.Edges)
	}
	m := a.Mem()
	if m.ParallelOps == 0 || m.DeadEnds == 0 {
		t.Fatalf("mem = %+v, want parallel and dead-end ops", m)
	}
}

func TestArenaCompactRespectsProtected(t *testing.T) {
	a := NewArena()
	v := a.AddNode()
	w := a.AddNode()
	a.AddEdge(0, v, 3, Label{Site: 1})
	a.AddEdge(v, w, 2, Label{Site: 2})
	a.AddEdge(w, 1, 3, Label{Site: 3})
	prot := make([]bool, a.NumNodes())
	prot[v] = true
	prot[w] = true
	a.CompactSP(prot)
	if a.LiveEdges() != 3 || a.LiveNodes() != 4 {
		t.Fatalf("protected chain compacted: %d edges, %d nodes", a.LiveEdges(), a.LiveNodes())
	}
	// Unprotect: now the chain contracts and the slots return to the free list.
	a.CompactSP(nil)
	if a.LiveEdges() != 1 {
		t.Fatalf("LiveEdges = %d after unprotected pass, want 1", a.LiveEdges())
	}
	a.AddEdge(0, 1, 1, Label{Site: 9})
	if a.Mem().RecycledSlots == 0 {
		t.Fatal("expected AddEdge to recycle a reclaimed slot")
	}
}

func TestArenaSlotRecycling(t *testing.T) {
	// Emit, compact, emit again: the slot array must not grow past its peak.
	a := NewArena()
	for round := 0; round < 5; round++ {
		v, w := a.AddNode(), a.AddNode()
		a.AddEdge(0, v, 2, Label{Site: uint32(round), Aux: 0})
		a.AddEdge(v, w, 2, Label{Site: uint32(round), Aux: 1})
		a.AddEdge(w, 1, 2, Label{Site: uint32(round), Aux: 2})
		a.CompactSP(nil)
	}
	m := a.Mem()
	if m.TotalEdges < 15 {
		t.Fatalf("TotalEdges = %d, want >= 15", m.TotalEdges)
	}
	if len(a.edges) > 6 {
		t.Fatalf("slot array grew to %d, want <= 6 (recycling)", len(a.edges))
	}
	if m.PeakLiveEdges > 4 {
		t.Fatalf("PeakLiveEdges = %d, want <= 4", m.PeakLiveEdges)
	}
}

// TestArenaExportMatchesGraph checks that Export renumbers nodes by first
// appearance in edge order and preserves edges, caps and labels — the
// contract the historical label-map builder established.
func TestArenaExportMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	nodes := []int32{0, 1}
	for i := 0; i < 6; i++ {
		nodes = append(nodes, a.AddNode())
	}
	type emitted struct {
		from, to int32
		cap      int64
		lbl      Label
	}
	var want []emitted
	for i := 0; i < 40; i++ {
		f := nodes[rng.Intn(len(nodes))]
		to := nodes[rng.Intn(len(nodes))]
		if f == to || f == 1 || to == 0 {
			continue
		}
		cap := int64(rng.Intn(100))
		lbl := Label{Site: uint32(i)}
		a.AddEdge(f, to, cap, lbl)
		want = append(want, emitted{f, to, cap, lbl})
	}
	got := a.Export(nil)
	if got.NumEdges() != len(want) {
		t.Fatalf("edge count %d != %d", got.NumEdges(), len(want))
	}
	// Replay the first-appearance renumbering rule.
	remap := map[int32]NodeID{0: Source, 1: Sink}
	next := NodeID(2)
	for i, w := range want {
		for _, v := range []int32{w.from, w.to} {
			if _, ok := remap[v]; !ok {
				remap[v] = next
				next++
			}
		}
		e := got.Edges[i]
		if e.From != remap[w.from] || e.To != remap[w.to] || e.Cap != w.cap || e.Label != w.lbl {
			t.Fatalf("edge %d: %+v, want (%d,%d,%d,%+v)", i, e, remap[w.from], remap[w.to], w.cap, w.lbl)
		}
	}
	if got.NumNodes() != int(next) {
		t.Fatalf("NumNodes = %d, want %d", got.NumNodes(), next)
	}
}

func TestCSRMatchesBuildCSR(t *testing.T) {
	// Arena CSRInto and Graph.BuildCSR over the exported graph must produce
	// the identical layout.
	a := NewArena()
	v, w := a.AddNode(), a.AddNode()
	a.AddEdge(0, v, 3, Label{Site: 1})
	a.AddEdge(v, w, 2, Label{Site: 2})
	a.AddEdge(v, 1, 1, Label{Site: 3})
	a.AddEdge(w, 1, 4, Label{Site: 4})
	g := a.Export(nil)
	var c1, c2 CSR
	a.CSRInto(&c1, nil)
	g.BuildCSR(&c2)
	if c1.N != c2.N {
		t.Fatalf("N %d != %d", c1.N, c2.N)
	}
	for i := range c2.HStart {
		if c1.HStart[i] != c2.HStart[i] {
			t.Fatalf("HStart[%d]: %d != %d", i, c1.HStart[i], c2.HStart[i])
		}
	}
	for i := range c2.To {
		if c1.To[i] != c2.To[i] || c1.Cap[i] != c2.Cap[i] {
			t.Fatalf("arc %d: (%d,%d) != (%d,%d)", i, c1.To[i], c1.Cap[i], c2.To[i], c2.Cap[i])
		}
	}
	for i := range c2.HArcs {
		if c1.HArcs[i] != c2.HArcs[i] {
			t.Fatalf("HArcs[%d]: %d != %d", i, c1.HArcs[i], c2.HArcs[i])
		}
	}
}
