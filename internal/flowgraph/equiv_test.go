package flowgraph_test

// equiv_test.go is the online-compaction equivalence fuzz: over randomized
// layered DAGs, the max flow of an arena compacted *while edges stream in*
// must equal both the uncompacted arena's flow and the flow after a
// post-hoc whole-graph spqr.Reduce. This is the property that makes
// Config.Compact safe to enable: compaction may only reshape the network,
// never change its capacity.

import (
	"math/rand"
	"testing"

	"flowcheck/internal/flowgraph"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/spqr"
)

// randDAG builds a random layered DAG edge list over extra intermediate
// nodes: every node gets a layer, edges go strictly forward in layer
// order, Source sits below all layers and Sink above, so the result is
// acyclic with Source source-only and Sink sink-only.
type testEdge struct {
	from, to flowgraph.NodeID
	cap      int64
}

func randDAG(rng *rand.Rand, nodes, edges int) []testEdge {
	layers := make([]int, nodes+2)
	layers[flowgraph.Source] = 0
	layers[flowgraph.Sink] = nodes + 1
	for i := 0; i < nodes; i++ {
		layers[2+i] = 1 + rng.Intn(nodes)
	}
	var out []testEdge
	for len(out) < edges {
		u := flowgraph.NodeID(rng.Intn(nodes + 2))
		v := flowgraph.NodeID(rng.Intn(nodes + 2))
		if u == v || layers[u] >= layers[v] {
			continue
		}
		out = append(out, testEdge{from: u, to: v, cap: int64(1 + rng.Intn(16))})
	}
	return out
}

// emit replays the edge list into a fresh arena, compacting every
// compactEvery edges when it is > 0. The protected set at each compaction
// point is exactly the nodes that still appear in un-emitted edges — the
// same contract the tracker's protectedSet fulfils online: a node may be
// compacted away only once no future edge can touch it.
func emit(edges []testEdge, nodes, compactEvery int) *flowgraph.Graph {
	a := flowgraph.NewArena()
	for i := 0; i < nodes; i++ {
		a.AddNode()
	}
	var serial uint64
	for i, e := range edges {
		serial++
		a.AddEdge(int32(e.from), int32(e.to), e.cap,
			flowgraph.Label{Site: 1, Ctx: serial, Kind: flowgraph.KindData})
		if compactEvery > 0 && (i+1)%compactEvery == 0 {
			prot := make([]bool, a.NumNodes())
			for _, future := range edges[i+1:] {
				prot[future.from] = true
				prot[future.to] = true
			}
			a.CompactSP(prot)
		}
	}
	return a.Export(nil)
}

func TestOnlineCompactionPreservesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 60; trial++ {
		nodes := 2 + rng.Intn(40)
		edges := 1 + rng.Intn(120)
		dag := randDAG(rng, nodes, edges)

		plain := emit(dag, nodes, 0)
		want := maxflow.Compute(plain, maxflow.Dinic).Flow

		for _, every := range []int{1, 3, 7, len(dag)} {
			online := emit(dag, nodes, every)
			if got := maxflow.Compute(online, maxflow.Dinic).Flow; got != want {
				t.Fatalf("trial %d: compact-every-%d flow = %d, uncompacted = %d",
					trial, every, got, want)
			}
		}

		reduced, _ := spqr.Reduce(plain)
		if got := maxflow.Compute(reduced, maxflow.Dinic).Flow; got != want {
			t.Fatalf("trial %d: post-hoc spqr flow = %d, uncompacted = %d", trial, got, want)
		}
	}
}
