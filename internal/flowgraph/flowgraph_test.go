package flowgraph

import (
	"strings"
	"testing"
)

func TestNewHasSourceAndSink(t *testing.T) {
	g := New()
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	if a == Source || a == Sink || b == a {
		t.Fatalf("bad node ids: %d %d", a, b)
	}
	idx := g.AddEdge(a, b, 8, Label{Site: 3, Kind: KindData})
	if idx != 0 || g.NumEdges() != 1 {
		t.Fatalf("AddEdge idx=%d edges=%d", idx, g.NumEdges())
	}
	e := g.Edges[0]
	if e.From != a || e.To != b || e.Cap != 8 || e.Label.Site != 3 {
		t.Fatalf("edge mismatch: %+v", e)
	}
}

func TestAddValueNodeSplit(t *testing.T) {
	g := New()
	in, out := g.AddValueNode(16, Label{Site: 9})
	if in == out {
		t.Fatal("split node halves must differ")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("want internal edge, got %d edges", g.NumEdges())
	}
	e := g.Edges[0]
	if e.From != in || e.To != out || e.Cap != 16 || e.Label.Kind != KindInternal {
		t.Fatalf("internal edge mismatch: %+v", e)
	}
}

func TestEdgePanicsOnBadEndpoint(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range endpoint")
		}
	}()
	g.AddEdge(Source, NodeID(99), 1, Label{})
}

func TestValidate(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddEdge(Source, a, 4, Label{})
	g.AddEdge(a, Sink, 4, Label{})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.Edges = append(g.Edges, Edge{From: Sink, To: a, Cap: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("edge leaving sink not rejected")
	}
}

func TestTotalSinkCapacity(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddEdge(Source, a, 10, Label{})
	g.AddEdge(a, Sink, 3, Label{Kind: KindOutput})
	g.AddEdge(a, Sink, 4, Label{Kind: KindOutput})
	if got := g.TotalSinkCapacity(); got != 7 {
		t.Fatalf("TotalSinkCapacity = %d, want 7", got)
	}
}

func TestStats(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddEdge(Source, a, 8, Label{Kind: KindInput})
	g.AddEdge(a, Sink, 8, Label{Kind: KindOutput})
	g.AddEdge(a, Sink, 1, Label{Kind: KindImplicit})
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 3 || s.ImplicitEdges != 1 || s.SinkCapacity != 9 {
		t.Fatalf("stats mismatch: %+v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddEdge(Source, a, 5, Label{})
	c := g.Clone()
	c.Edges[0].Cap = 99
	if g.Edges[0].Cap != 5 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddEdge(Source, a, 8, Label{Kind: KindInput})
	g.AddEdge(a, Sink, Inf, Label{Kind: KindChain})
	g.AddEdge(a, Sink, 0, Label{Kind: KindData}) // omitted
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "t"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "input:8") {
		t.Fatalf("DOT missing content:\n%s", out)
	}
	if !strings.Contains(out, "chain:inf") {
		t.Fatalf("Inf capacity should render as inf:\n%s", out)
	}
	if strings.Count(out, "->") != 2 {
		t.Fatalf("zero-capacity edge should be omitted:\n%s", out)
	}
}

func TestDegrees(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(Source, a, 1, Label{})
	g.AddEdge(Source, b, 1, Label{})
	g.AddEdge(a, b, 1, Label{})
	g.AddEdge(b, Sink, 1, Label{})
	out, in := g.OutDegree(), g.InDegree()
	if out[Source] != 2 || in[b] != 2 || out[b] != 1 || in[Sink] != 1 {
		t.Fatalf("degree mismatch: out=%v in=%v", out, in)
	}
}

func TestEdgeKindString(t *testing.T) {
	if KindImplicit.String() != "implicit" || KindChain.String() != "chain" {
		t.Fatal("EdgeKind names wrong")
	}
}
