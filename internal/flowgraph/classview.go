package flowgraph

import "sort"

// This file holds the multi-commodity view layer (paper §10.1): one shared
// graph built from a single all-secrets-marked execution, with per-class
// capacity overlays instead of per-class re-executions. Classes differ only
// in which Source edges carry capacity, so topology is executed and built
// once and each class is a cheap overlay + solve.

// ByteRange is a half-open range [Off, Off+Len) of secret-stream byte
// offsets, identifying one class of secret input.
type ByteRange struct {
	Off int
	Len int
}

func (r ByteRange) contains(off int) bool {
	return off >= r.Off && off < r.Off+r.Len
}

// SourceContrib records one secret-stream byte's contribution to a Source
// edge: Off is the byte's offset in the secret input stream and Bits the
// capacity it contributed. Off < 0 marks an unattributed contribution
// (memory marked secret with no stream position, e.g. the __secret
// builtin); such capacity belongs to every class view, which is both
// conservative and what the legacy per-class re-execution does — it marks
// builtin-secret memory regardless of the class ranging.
type SourceContrib struct {
	Off  int
	Bits int64
}

// SourceMap attributes the Source edges of a built graph to the
// secret-stream bytes that fed them. Edge[i] is an index into Graph.Edges
// (ascending); Contribs[i] lists that edge's contributions, whose Bits sum
// to the edge's capacity. Source edges absent from the map are treated as
// unattributed. A SourceMap is immutable once built and safe to share
// across concurrent ClassView calls.
type SourceMap struct {
	Edge     []int32
	Contribs [][]SourceContrib
}

// CapacityView overlays per-edge capacities on a shared graph/CSR without
// copying topology. Edge indices are ascending; edges not listed keep
// their base capacity. A nil view is the identity overlay.
type CapacityView struct {
	Edge []int32
	Cap  []int64
}

// Of returns the effective capacity of edge i given its base capacity.
func (v *CapacityView) Of(i int, base int64) int64 {
	if v == nil {
		return base
	}
	k := sort.Search(len(v.Edge), func(j int) bool { return v.Edge[j] >= int32(i) })
	if k < len(v.Edge) && v.Edge[k] == int32(i) {
		return v.Cap[k]
	}
	return base
}

// ClassView builds the capacity view selecting the class covering the
// given stream ranges: an attributed Source edge keeps only the capacity
// contributed by bytes inside the ranges (other classes' bytes are
// zeroed), while unattributed contributions and unmapped Source edges keep
// full capacity. Keeping the unattributed capacity is conservative — it
// can only raise the class bound — and matches the legacy re-execution
// oracle, which marks builtin-secret memory for every class. The result
// lists only edges whose effective capacity differs from the base graph,
// in ascending edge order.
func (m *SourceMap) ClassView(g *Graph, ranges ...ByteRange) *CapacityView {
	v := &CapacityView{}
	for i, ei := range m.Edge {
		full := g.Edges[ei].Cap
		var in int64
		for _, c := range m.Contribs[i] {
			if c.Off < 0 {
				in += c.Bits
				continue
			}
			for _, r := range ranges {
				if r.contains(c.Off) {
					in += c.Bits
					break
				}
			}
		}
		if in > full {
			in = full
		}
		if in != full {
			v.Edge = append(v.Edge, ei)
			v.Cap = append(v.Cap, in)
		}
	}
	return v
}
