package flowgraph

import (
	"strings"
	"testing"
)

// TestWriteDOTDeterministic pins the exact DOT output for a small graph
// built in scrambled order: WriteDOT sorts edges, so permuting insertion
// order must not change the bytes.
func TestWriteDOTDeterministic(t *testing.T) {
	build := func(perm []int) *Graph {
		g := New()
		v := g.AddNode()
		w := g.AddNode()
		edges := []Edge{
			{From: Source, To: v, Cap: 8, Label: Label{Site: 1, Kind: KindInput}},
			{From: v, To: w, Cap: Inf, Label: Label{Site: 2, Kind: KindChain}},
			{From: v, To: Sink, Cap: 3, Label: Label{Site: 3, Kind: KindOutput}},
			{From: w, To: Sink, Cap: 0, Label: Label{Site: 4, Kind: KindOutput}}, // omitted: zero cap
		}
		for _, i := range perm {
			e := edges[i]
			g.AddEdge(e.From, e.To, e.Cap, e.Label)
		}
		return g
	}

	const want = `digraph "flow" {
  rankdir=LR;
  n0 [label="source",shape=doublecircle];
  n1 [label="sink",shape=doublecircle];
  n0 -> n2 [label="input:8"];
  n2 -> n1 [label="output:3"];
  n2 -> n3 [label="chain:inf"];
}
`
	for _, perm := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		var sb strings.Builder
		if err := build(perm).WriteDOT(&sb, ""); err != nil {
			t.Fatal(err)
		}
		if sb.String() != want {
			t.Fatalf("perm %v:\ngot:\n%s\nwant:\n%s", perm, sb.String(), want)
		}
	}
}
