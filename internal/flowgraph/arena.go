package flowgraph

import "fmt"

// Arena is the mutable graph core behind flow-graph construction: a slab of
// edge slots with per-node degree tracking, a free list for reclaimed
// slots, and in-place series-parallel contraction (CompactSP). It exists so
// the §5.2 property — tool memory proportional to static code size, not to
// executed instructions — holds while the guest is still running: the taint
// builder emits every dynamic edge into an arena and periodically compacts
// the part of the graph the execution can no longer reach, instead of
// materializing the full per-operation graph and shrinking it afterwards.
//
// Node 0 and node 1 are pre-allocated and permanently correspond to the
// graph Source and Sink; they are never contracted. Edge slots killed by
// compaction return to the free list and are reused by later AddEdge calls,
// so the slot array's length tracks the peak live size rather than the
// total emitted count.
//
// An Arena is not safe for concurrent use; each tracker owns one.
type Arena struct {
	edges  []arenaEdge
	free   []int32 // dead slots available for reuse
	indeg  []int32
	outdeg []int32
	dead   []bool

	liveNodes int
	liveEdges int
	mem       MemStats

	// Compaction scratch, allocated on first CompactSP and reused across
	// passes. The stamp arrays make per-sweep state O(1) to reset: an entry
	// is meaningful only when its stamp equals the current sweep generation.
	gen        uint32
	uniqueIn   []int32 // sole in-edge slot of a node, -1 if several
	uniqueOut  []int32
	stampIn    []uint32
	stampOut   []uint32
	dropFrom   []uint32 // gen-stamped: kill out-edges of this node (dead source side)
	dropTo     []uint32 // gen-stamped: kill in-edges of this node (dead sink side)
	parMap     map[int64]int32
	pending    []int32 // slots killed this sweep; recycled at the next sweep
	chainKills []int32
}

type arenaEdge struct {
	from, to int32
	cap      int64
	label    Label
	alive    bool
}

// MemStats reports the arena's memory behavior — the observable for the
// paper's §5.2 scalability claim. With online compaction, PeakLiveEdges
// should grow with static code size (plus the execution's live frontier)
// while TotalEdges grows with executed instructions.
type MemStats struct {
	// Live sizes now, and their high-water marks.
	LiveNodes, LiveEdges         int
	PeakLiveNodes, PeakLiveEdges int

	// Totals ever emitted into the arena.
	TotalNodes, TotalEdges int

	// Compaction activity: passes run, edges/nodes reclaimed by reductions,
	// and reclaimed edge slots reused by later insertions.
	CompactionPasses int
	ReclaimedEdges   int
	ReclaimedNodes   int
	RecycledSlots    int

	// Reduction operation counts (series contractions, parallel merges,
	// dead-end eliminations), summed over all passes.
	SeriesOps   int
	ParallelOps int
	DeadEnds    int
}

// NewArena returns an arena holding only the two terminal nodes.
func NewArena() *Arena {
	a := &Arena{}
	a.AddNode() // Source
	a.AddNode() // Sink
	return a
}

// NumNodes reports the number of node ids ever allocated (dead included);
// valid node ids are [0, NumNodes).
func (a *Arena) NumNodes() int { return len(a.indeg) }

// LiveNodes reports the nodes not reclaimed by compaction.
func (a *Arena) LiveNodes() int { return a.liveNodes }

// LiveEdges reports the edges currently alive.
func (a *Arena) LiveEdges() int { return a.liveEdges }

// Mem returns a snapshot of the arena's memory statistics.
func (a *Arena) Mem() MemStats {
	m := a.mem
	m.LiveNodes = a.liveNodes
	m.LiveEdges = a.liveEdges
	return m
}

// InDegree and OutDegree report a node's live degree.
func (a *Arena) InDegree(v int32) int32  { return a.indeg[v] }
func (a *Arena) OutDegree(v int32) int32 { return a.outdeg[v] }

// AddNode allocates a new node and returns its id.
func (a *Arena) AddNode() int32 {
	id := int32(len(a.indeg))
	a.indeg = append(a.indeg, 0)
	a.outdeg = append(a.outdeg, 0)
	a.dead = append(a.dead, false)
	a.liveNodes++
	a.mem.TotalNodes++
	if a.liveNodes > a.mem.PeakLiveNodes {
		a.mem.PeakLiveNodes = a.liveNodes
	}
	return id
}

// AddEdge inserts an edge and returns its slot, reusing a reclaimed slot
// when one is free. Slots are stable for the edge's lifetime: Accumulate
// and EdgeEnds address the edge by slot until compaction kills it.
func (a *Arena) AddEdge(from, to int32, cap int64, label Label) int32 {
	if from < 0 || to < 0 || int(from) >= len(a.indeg) || int(to) >= len(a.indeg) {
		panic(fmt.Sprintf("flowgraph: arena edge (%d,%d) outside node range [0,%d)", from, to, len(a.indeg)))
	}
	if cap < 0 {
		panic(fmt.Sprintf("flowgraph: negative capacity %d", cap))
	}
	e := arenaEdge{from: from, to: to, cap: cap, label: label, alive: true}
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
		a.edges[slot] = e
		a.mem.RecycledSlots++
	} else {
		slot = int32(len(a.edges))
		a.edges = append(a.edges, e)
	}
	a.outdeg[from]++
	a.indeg[to]++
	a.liveEdges++
	a.mem.TotalEdges++
	if a.liveEdges > a.mem.PeakLiveEdges {
		a.mem.PeakLiveEdges = a.liveEdges
	}
	return slot
}

// Accumulate adds cap to an edge's capacity, saturating at Inf — the
// collapsed-mode label hit (§5.2).
func (a *Arena) Accumulate(slot int32, cap int64) {
	e := &a.edges[slot]
	e.cap += cap
	if e.cap > Inf {
		e.cap = Inf
	}
}

// EdgeEnds returns an edge's endpoints.
func (a *Arena) EdgeEnds(slot int32) (from, to int32) {
	e := &a.edges[slot]
	return e.from, e.to
}

// kill removes an edge, crediting its slot to the pending list (recycled at
// the next compaction sweep, once nothing references it).
func (a *Arena) kill(slot int32) {
	e := &a.edges[slot]
	if !e.alive {
		return
	}
	e.alive = false
	a.outdeg[e.from]--
	a.indeg[e.to]--
	a.liveEdges--
	a.mem.ReclaimedEdges++
	a.pending = append(a.pending, slot)
}

// killNode marks a node reclaimed.
func (a *Arena) killNode(v int32) {
	if a.dead[v] {
		return
	}
	a.dead[v] = true
	a.liveNodes--
	a.mem.ReclaimedNodes++
}

// ------------------------------------------------------------ compaction ---

// CompactSP applies the series-parallel reductions of §5.1 in place until
// fixpoint:
//
//   - parallel: edges sharing (from, to) merge, capacities summed
//     (saturating at Inf)
//   - series: an unprotected interior node with in-degree 1 and out-degree
//     1 contracts, its edges replaced by one of the minimum capacity
//   - dead ends: unprotected interior nodes with in- or out-degree 0 lose
//     their edges (they can carry no s-t flow)
//   - self-loops are dropped
//
// Every reduction preserves the Source-Sink maximum flow, so CompactSP may
// run at any point during construction — provided protected[v] is true for
// every node the builder may still attach edges to (the execution's live
// frontier: shadow memory, registers, open regions, the output chain).
// Unprotected nodes are exactly those the run can never reference again,
// which is what makes eliminating them sound. protected may be nil (only
// the terminals are protected) or shorter than NumNodes (missing entries
// are unprotected); nodes 0 and 1 are always protected.
func (a *Arena) CompactSP(protected []bool) {
	a.mem.CompactionPasses++
	n := len(a.indeg)
	a.uniqueIn = growI32(a.uniqueIn, n)
	a.uniqueOut = growI32(a.uniqueOut, n)
	a.stampIn = growU32(a.stampIn, n)
	a.stampOut = growU32(a.stampOut, n)
	a.dropFrom = growU32(a.dropFrom, n)
	a.dropTo = growU32(a.dropTo, n)
	if a.parMap == nil {
		a.parMap = make(map[int64]int32)
	}
	for a.sweep(protected) > 0 {
	}
	// The last sweep's kills are safe to recycle now: all per-sweep
	// references into the slot array are dead with the sweep.
	a.free = append(a.free, a.pending...)
	a.pending = a.pending[:0]
}

func (a *Arena) prot(v int32, protected []bool) bool {
	return int(v) < len(protected) && protected[v]
}

// sweep runs one pass of all reductions over the live edges and returns
// the number of reduction operations performed. Each operation removes at
// least one edge, so iterating sweeps terminates; reductions enabled by
// this sweep's kills (cascading dead ends, chains revealed by parallel
// merges) are picked up by the next sweep.
func (a *Arena) sweep(protected []bool) int {
	a.gen++
	gen := a.gen
	// Slots killed by the previous sweep are unreferenced once the unique-
	// arc scratch is rebuilt below; recycle them.
	a.free = append(a.free, a.pending...)
	a.pending = a.pending[:0]

	ops := 0

	// Edge scan: drop self-loops, merge parallel edges (first slot wins, so
	// edge order stays deterministic), and record each node's unique in/out
	// arc for series detection.
	clear(a.parMap)
	for i := range a.edges {
		e := &a.edges[i]
		if !e.alive {
			continue
		}
		slot := int32(i)
		if e.from == e.to {
			a.kill(slot)
			ops++
			continue
		}
		key := int64(e.from)<<32 | int64(e.to)
		if first, ok := a.parMap[key]; ok {
			f := &a.edges[first]
			f.cap += e.cap
			if f.cap > Inf {
				f.cap = Inf
			}
			a.kill(slot)
			a.mem.ParallelOps++
			ops++
			continue
		}
		a.parMap[key] = slot
		if a.stampOut[e.from] == gen {
			a.uniqueOut[e.from] = -1
		} else {
			a.stampOut[e.from] = gen
			a.uniqueOut[e.from] = slot
		}
		if a.stampIn[e.to] == gen {
			a.uniqueIn[e.to] = -1
		} else {
			a.stampIn[e.to] = gen
			a.uniqueIn[e.to] = slot
		}
	}

	// Dead-end marking: unprotected interior nodes that cannot carry s-t
	// flow lose all their edges (edge-major kill below); isolated nodes are
	// reclaimed outright.
	n := int32(len(a.indeg))
	drops := false
	for v := int32(2); v < n; v++ {
		if a.dead[v] || a.prot(v, protected) {
			continue
		}
		switch {
		case a.indeg[v] == 0 && a.outdeg[v] == 0:
			a.killNode(v)
		case a.outdeg[v] == 0:
			a.dropTo[v] = gen
			a.mem.DeadEnds++
			drops = true
		case a.indeg[v] == 0:
			a.dropFrom[v] = gen
			a.mem.DeadEnds++
			drops = true
		}
	}
	if drops {
		for i := range a.edges {
			e := &a.edges[i]
			if e.alive && (a.dropTo[e.to] == gen || a.dropFrom[e.from] == gen) {
				a.kill(int32(i))
				ops++
			}
		}
	}

	// Series contraction, whole chains at a time: from each chain head
	// (a candidate whose predecessor is not one), walk the run of
	// candidate nodes, kill every traversed edge, and bridge the ends with
	// one edge of the minimum capacity. Entering only at heads both avoids
	// quadratic rescans and guarantees termination: a cycle made purely of
	// candidates has no head, and any entry point into a cycle has
	// in-degree 2 and is no candidate.
	for v := int32(2); v < n; v++ {
		if !a.chainCand(v, protected, gen) {
			continue
		}
		ein := a.uniqueIn[v]
		u := a.edges[ein].from
		if a.chainCand(u, protected, gen) {
			continue // interior of a chain; its head will consume it
		}
		capMin := a.edges[ein].cap
		lbl := a.edges[ein].label
		kills := append(a.chainKills[:0], ein)
		cur := v
		var w int32
		for {
			eout := a.uniqueOut[cur]
			if a.edges[eout].cap < capMin {
				capMin = a.edges[eout].cap
			}
			kills = append(kills, eout)
			a.killNode(cur)
			a.mem.SeriesOps++
			ops++
			w = a.edges[eout].to
			if !a.chainCand(w, protected, gen) {
				break
			}
			cur = w
		}
		for _, s := range kills {
			a.kill(s)
		}
		a.chainKills = kills[:0]
		if u != w { // u == w would be a self-loop: drop entirely
			a.AddEdge(u, w, capMin, lbl)
		}
	}
	return ops
}

// chainCand reports whether v is series-contractible right now: an
// unprotected interior node with exactly one live in-edge and one live
// out-edge, both still identified by this sweep's unique-arc scratch. A
// node whose unique arc was killed or superseded mid-sweep fails the check
// and is reconsidered by the next sweep.
func (a *Arena) chainCand(v int32, protected []bool, gen uint32) bool {
	if v < 2 || a.dead[v] || a.prot(v, protected) || a.indeg[v] != 1 || a.outdeg[v] != 1 {
		return false
	}
	if a.stampIn[v] != gen || a.stampOut[v] != gen {
		return false
	}
	in, out := a.uniqueIn[v], a.uniqueOut[v]
	return in >= 0 && out >= 0 &&
		a.edges[in].alive && a.edges[in].to == v &&
		a.edges[out].alive && a.edges[out].from == v
}

// ---------------------------------------------------------------- export ---

// Export materializes the arena's live edges as a Graph, renumbering nodes
// by first appearance in slot order. resolve maps an arena node to its
// representative (a union-find Find for collapsed construction); nil means
// identity. Arena nodes resolving to the terminals become Source and Sink;
// self-loops, edges out of the Sink, and edges into the Source are dropped,
// and capacities clamp to Inf — reproducing the historical builder output
// byte for byte when no compaction has run.
func (a *Arena) Export(resolve func(int32) int32) *Graph {
	out := New()
	node := make([]NodeID, len(a.indeg))
	for i := range node {
		node[i] = -1
	}
	rs, rt := int32(0), int32(1)
	if resolve != nil {
		rs, rt = resolve(0), resolve(1)
	}
	node[rs] = Source
	node[rt] = Sink
	for i := range a.edges {
		e := &a.edges[i]
		if !e.alive {
			continue
		}
		f, t := e.from, e.to
		if resolve != nil {
			f, t = resolve(f), resolve(t)
		}
		from := node[f]
		if from < 0 {
			from = out.AddNode()
			node[f] = from
		}
		to := node[t]
		if to < 0 {
			to = out.AddNode()
			node[t] = to
		}
		if from == to || from == Sink || to == Source {
			continue
		}
		cap := e.cap
		if cap > Inf {
			cap = Inf
		}
		out.AddEdge(from, to, cap, e.label)
	}
	return out
}

// CSRInto builds the solver-facing CSR view directly from the arena's live
// edges — the zero-copy handoff that skips Graph materialization entirely
// (used for mid-run flow measurements). Nodes are renumbered and edges
// filtered exactly as in Export, so the two views solve identically.
func (a *Arena) CSRInto(c *CSR, resolve func(int32) int32) {
	node := growI32(c.nodeOf, len(a.indeg))
	for i := range node {
		node[i] = -1
	}
	c.nodeOf = node
	rs, rt := int32(0), int32(1)
	if resolve != nil {
		rs, rt = resolve(0), resolve(1)
	}
	node[rs] = int32(Source)
	node[rt] = int32(Sink)
	numNodes := 2
	keep := c.keep[:0]
	for i := range a.edges {
		e := &a.edges[i]
		if !e.alive {
			continue
		}
		f, t := e.from, e.to
		if resolve != nil {
			f, t = resolve(f), resolve(t)
		}
		if node[f] < 0 {
			node[f] = int32(numNodes)
			numNodes++
		}
		if node[t] < 0 {
			node[t] = int32(numNodes)
			numNodes++
		}
		from, to := node[f], node[t]
		if from == to || from == int32(Sink) || to == int32(Source) {
			continue
		}
		keep = append(keep, int32(i))
	}
	c.keep = keep

	c.N = numNodes
	e2 := 2 * len(keep)
	c.HStart = growI32(c.HStart, numNodes+1)
	c.cur = growI32(c.cur, numNodes)
	c.HArcs = growI32(c.HArcs, e2)
	c.To = growI32(c.To, e2)
	c.Cap = growI64(c.Cap, e2)
	for i := range c.HStart {
		c.HStart[i] = 0
	}
	ends := func(slot int32) (int32, int32) {
		e := &a.edges[slot]
		if resolve == nil {
			return node[e.from], node[e.to]
		}
		return node[resolve(e.from)], node[resolve(e.to)]
	}
	for _, slot := range keep {
		from, to := ends(slot)
		c.HStart[from+1]++
		c.HStart[to+1]++
	}
	for v := 0; v < numNodes; v++ {
		c.HStart[v+1] += c.HStart[v]
		c.cur[v] = c.HStart[v]
	}
	for i, slot := range keep {
		e := &a.edges[slot]
		from, to := ends(slot)
		cp := e.cap
		if cp > Inf {
			cp = Inf
		}
		f := int32(2 * i)
		c.To[f] = to
		c.Cap[f] = cp
		c.To[f+1] = from
		c.Cap[f+1] = 0
		c.HArcs[c.cur[from]] = f
		c.cur[from]++
		c.HArcs[c.cur[to]] = f + 1
		c.cur[to]++
	}
}

// growI32 returns a length-n []int32, reusing s's backing array if it fits.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		ns := make([]uint32, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
