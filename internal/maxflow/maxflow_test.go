package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowcheck/internal/flowgraph"
)

func line(caps ...int64) *flowgraph.Graph {
	g := flowgraph.New()
	prev := flowgraph.Source
	for i, c := range caps {
		var next flowgraph.NodeID
		if i == len(caps)-1 {
			next = flowgraph.Sink
		} else {
			next = g.AddNode()
		}
		g.AddEdge(prev, next, c, flowgraph.Label{})
		prev = next
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := flowgraph.New()
	for _, algo := range []Algorithm{Dinic, EdmondsKarp} {
		if r := Compute(g, algo); r.Flow != 0 {
			t.Errorf("%v: flow on empty graph = %d", algo, r.Flow)
		}
	}
}

func TestSeriesBottleneck(t *testing.T) {
	g := line(10, 3, 7)
	for _, algo := range []Algorithm{Dinic, EdmondsKarp} {
		if r := Compute(g, algo); r.Flow != 3 {
			t.Errorf("%v: series flow = %d, want 3", algo, r.Flow)
		}
	}
}

func TestParallelSum(t *testing.T) {
	g := flowgraph.New()
	g.AddEdge(flowgraph.Source, flowgraph.Sink, 4, flowgraph.Label{})
	g.AddEdge(flowgraph.Source, flowgraph.Sink, 5, flowgraph.Label{})
	if r := Compute(g, Dinic); r.Flow != 9 {
		t.Fatalf("parallel flow = %d, want 9", r.Flow)
	}
}

// The classic example where a greedy path choice requires a residual
// (backward) edge to reach the optimum.
func TestResidualReroute(t *testing.T) {
	g := flowgraph.New()
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(flowgraph.Source, a, 1, flowgraph.Label{})
	g.AddEdge(flowgraph.Source, b, 1, flowgraph.Label{})
	g.AddEdge(a, b, 1, flowgraph.Label{})
	g.AddEdge(a, flowgraph.Sink, 1, flowgraph.Label{})
	g.AddEdge(b, flowgraph.Sink, 1, flowgraph.Label{})
	for _, algo := range []Algorithm{Dinic, EdmondsKarp} {
		if r := Compute(g, algo); r.Flow != 2 {
			t.Errorf("%v: flow = %d, want 2", algo, r.Flow)
		}
	}
}

// Figure 1 of the paper: c = d = a + b. Without the node-splitting internal
// edge, 64 bits could flow; with it, only 32.
func TestFigure1NodeSplitting(t *testing.T) {
	// Left graph (no constraint): the + node has two independent 32-bit
	// outputs.
	left := flowgraph.New()
	plus := left.AddNode()
	left.AddEdge(flowgraph.Source, plus, 32, flowgraph.Label{}) // a
	left.AddEdge(flowgraph.Source, plus, 32, flowgraph.Label{}) // b
	left.AddEdge(plus, flowgraph.Sink, 32, flowgraph.Label{})   // c
	left.AddEdge(plus, flowgraph.Sink, 32, flowgraph.Label{})   // d
	if r := Compute(left, Dinic); r.Flow != 64 {
		t.Fatalf("left graph flow = %d, want 64", r.Flow)
	}
	// Right graph: node splitting enforces the 32-bit single output.
	right := flowgraph.New()
	in, out := right.AddValueNode(32, flowgraph.Label{})
	right.AddEdge(flowgraph.Source, in, 32, flowgraph.Label{})
	right.AddEdge(flowgraph.Source, in, 32, flowgraph.Label{})
	right.AddEdge(out, flowgraph.Sink, 32, flowgraph.Label{})
	right.AddEdge(out, flowgraph.Sink, 32, flowgraph.Label{})
	if r := Compute(right, Dinic); r.Flow != 32 {
		t.Fatalf("right graph flow = %d, want 32", r.Flow)
	}
}

func TestDisconnected(t *testing.T) {
	g := flowgraph.New()
	a := g.AddNode()
	g.AddEdge(flowgraph.Source, a, 100, flowgraph.Label{})
	if r := Compute(g, Dinic); r.Flow != 0 {
		t.Fatalf("disconnected flow = %d, want 0", r.Flow)
	}
}

func TestInfEdges(t *testing.T) {
	g := line(flowgraph.Inf, 5, flowgraph.Inf)
	if r := Compute(g, Dinic); r.Flow != 5 {
		t.Fatalf("flow through Inf chain = %d, want 5", r.Flow)
	}
}

func TestEdgeFlowConservation(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(7)), 20, 60)
	r := Compute(g, Dinic)
	// Flow conservation at every interior node.
	net := make(map[flowgraph.NodeID]int64)
	for i, e := range g.Edges {
		f := r.EdgeFlow[i]
		if f < 0 || f > e.Cap {
			t.Fatalf("edge %d flow %d outside [0,%d]", i, f, e.Cap)
		}
		net[e.From] -= f
		net[e.To] += f
	}
	for v, x := range net {
		if v == flowgraph.Source || v == flowgraph.Sink {
			continue
		}
		if x != 0 {
			t.Fatalf("conservation violated at node %d: %d", v, x)
		}
	}
	if net[flowgraph.Sink] != r.Flow || net[flowgraph.Source] != -r.Flow {
		t.Fatalf("endpoint totals wrong: %d/%d vs %d", net[flowgraph.Source], net[flowgraph.Sink], r.Flow)
	}
}

func randomDAG(rng *rand.Rand, nodes, edges int) *flowgraph.Graph {
	g := flowgraph.New()
	ids := []flowgraph.NodeID{flowgraph.Source}
	for i := 0; i < nodes; i++ {
		ids = append(ids, g.AddNode())
	}
	ids = append(ids, flowgraph.Sink)
	// Edges only go from lower to higher rank: acyclic with Source first,
	// Sink last.
	for i := 0; i < edges; i++ {
		a := rng.Intn(len(ids) - 1)
		b := a + 1 + rng.Intn(len(ids)-a-1)
		g.AddEdge(ids[a], ids[b], int64(rng.Intn(20)), flowgraph.Label{})
	}
	return g
}

// Property: all three algorithms agree on random DAGs.
func TestAlgorithmsAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), rng.Intn(120))
		d := Compute(g, Dinic).Flow
		return d == Compute(g, EdmondsKarp).Flow && d == Compute(g, PushRelabel).Flow
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: push-relabel terminates with a genuine flow (conservation
// holds) and its residual min cut matches the flow value.
func TestPushRelabelProducesValidFlow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), rng.Intn(120))
		r := Compute(g, PushRelabel)
		net := map[flowgraph.NodeID]int64{}
		for i, e := range g.Edges {
			f := r.EdgeFlow[i]
			if f < 0 || f > e.Cap {
				return false
			}
			net[e.From] -= f
			net[e.To] += f
		}
		for v, x := range net {
			if v != flowgraph.Source && v != flowgraph.Sink && x != 0 {
				return false
			}
		}
		cut := r.MinCut()
		return cut.Capacity == r.Flow
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: max-flow equals min-cut capacity, and the cut disconnects.
func TestMaxFlowMinCut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), rng.Intn(120))
		r := Compute(g, Dinic)
		cut := r.MinCut()
		if cut.Capacity != r.Flow {
			return false
		}
		// Removing cut edges must disconnect Source from Sink.
		removed := make(map[int]bool, len(cut.EdgeIndex))
		for _, i := range cut.EdgeIndex {
			removed[i] = true
		}
		adj := make(map[flowgraph.NodeID][]flowgraph.NodeID)
		for i, e := range g.Edges {
			if !removed[i] && e.Cap > 0 {
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
		seen := map[flowgraph.NodeID]bool{flowgraph.Source: true}
		stack := []flowgraph.NodeID{flowgraph.Source}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return !seen[flowgraph.Sink]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinCutOnSeries(t *testing.T) {
	g := line(10, 3, 7)
	r := Compute(g, Dinic)
	cut := r.MinCut()
	if len(cut.EdgeIndex) != 1 || g.Edges[cut.EdgeIndex[0]].Cap != 3 {
		t.Fatalf("min cut should be the 3-capacity edge: %+v", cut)
	}
	if !cut.SourceSide[flowgraph.Source] || cut.SourceSide[flowgraph.Sink] {
		t.Fatal("source/sink side assignment wrong")
	}
	edges := cut.Edges(g)
	if len(edges) != 1 || edges[0].Cap != 3 {
		t.Fatalf("Edges() mismatch: %+v", edges)
	}
}

func TestLargeChain(t *testing.T) {
	// A deep series chain exercises the DFS on long paths.
	caps := make([]int64, 5000)
	for i := range caps {
		caps[i] = 100
	}
	caps[2500] = 17
	if r := Compute(line(caps...), Dinic); r.Flow != 17 {
		t.Fatalf("deep chain flow = %d, want 17", r.Flow)
	}
}

func BenchmarkDinicRandom(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g.Clone(), Dinic)
	}
}

func BenchmarkEdmondsKarpRandom(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g.Clone(), EdmondsKarp)
	}
}
