// Package maxflow computes maximum flows and minimum cuts on the flow
// networks of package flowgraph (paper §5, §6.1).
//
// Three exact algorithms are provided: Dinic's algorithm (the default;
// near linear on the shallow, layered graphs that collapsed executions
// produce), Edmonds–Karp (a simple augmenting-path baseline), and FIFO
// push-relabel. All operate on a shared residual representation and feed
// the same min-cut extraction.
package maxflow

import (
	"math"

	"flowcheck/internal/flowgraph"
)

// Algorithm selects the max-flow algorithm.
type Algorithm int

// Available algorithms.
const (
	Dinic Algorithm = iota
	EdmondsKarp
	PushRelabel
)

func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case EdmondsKarp:
		return "edmonds-karp"
	case PushRelabel:
		return "push-relabel"
	}
	return "unknown"
}

// Result holds a computed maximum flow.
type Result struct {
	// Flow is the value of the maximum flow from Source to Sink, in bits.
	Flow int64
	// EdgeFlow[i] is the flow routed through graph edge i.
	EdgeFlow []int64

	g   *flowgraph.Graph
	net *network
}

// network is the residual representation: each original edge i becomes arc
// 2i (forward) and 2i+1 (backward).
type network struct {
	head  [][]int32 // head[node] = incident arc ids
	to    []int32
	resid []int64
}

func build(g *flowgraph.Graph) *network {
	n := g.NumNodes()
	net := &network{
		head:  make([][]int32, n),
		to:    make([]int32, 2*len(g.Edges)),
		resid: make([]int64, 2*len(g.Edges)),
	}
	deg := make([]int32, n)
	for _, e := range g.Edges {
		deg[e.From]++
		deg[e.To]++
	}
	for v := range net.head {
		net.head[v] = make([]int32, 0, deg[v])
	}
	for i, e := range g.Edges {
		f := int32(2 * i)
		net.to[f] = int32(e.To)
		net.resid[f] = e.Cap
		net.to[f+1] = int32(e.From)
		net.resid[f+1] = 0
		net.head[e.From] = append(net.head[e.From], f)
		net.head[e.To] = append(net.head[e.To], f+1)
	}
	return net
}

// Compute runs the selected algorithm and returns the maximum flow from
// flowgraph.Source to flowgraph.Sink.
func Compute(g *flowgraph.Graph, algo Algorithm) *Result {
	net := build(g)
	var flow int64
	switch algo {
	case EdmondsKarp:
		flow = edmondsKarp(net)
	case PushRelabel:
		flow = pushRelabel(net)
	default:
		flow = dinic(net)
	}
	res := &Result{Flow: flow, EdgeFlow: make([]int64, len(g.Edges)), g: g, net: net}
	for i, e := range g.Edges {
		res.EdgeFlow[i] = e.Cap - net.resid[2*i]
	}
	return res
}

func dinic(net *network) int64 {
	n := len(net.head)
	if n <= int(flowgraph.Sink) {
		return 0
	}
	level := make([]int32, n)
	iter := make([]int32, n)
	queue := make([]int32, 0, n)
	s, t := int32(flowgraph.Source), int32(flowgraph.Sink)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range net.head[v] {
				w := net.to[a]
				if net.resid[a] > 0 && level[w] < 0 {
					level[w] = level[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int32, limit int64) int64
	dfs = func(v int32, limit int64) int64 {
		if v == t {
			return limit
		}
		for ; iter[v] < int32(len(net.head[v])); iter[v]++ {
			a := net.head[v][iter[v]]
			w := net.to[a]
			if net.resid[a] <= 0 || level[w] != level[v]+1 {
				continue
			}
			amt := limit
			if net.resid[a] < amt {
				amt = net.resid[a]
			}
			if pushed := dfs(w, amt); pushed > 0 {
				net.resid[a] -= pushed
				net.resid[a^1] += pushed
				return pushed
			}
		}
		level[v] = -1
		return 0
	}

	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, math.MaxInt64)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func edmondsKarp(net *network) int64 {
	n := len(net.head)
	if n <= int(flowgraph.Sink) {
		return 0
	}
	s, t := int32(flowgraph.Source), int32(flowgraph.Sink)
	prevArc := make([]int32, n)
	queue := make([]int32, 0, n)
	var total int64
	for {
		for i := range prevArc {
			prevArc[i] = -1
		}
		prevArc[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range net.head[v] {
				w := net.to[a]
				if net.resid[a] > 0 && prevArc[w] == -1 {
					prevArc[w] = a
					if w == t {
						found = true
						break bfs
					}
					queue = append(queue, w)
				}
			}
		}
		if !found {
			return total
		}
		// Find bottleneck along the path.
		bottleneck := int64(math.MaxInt64)
		for v := t; v != s; {
			a := prevArc[v]
			if net.resid[a] < bottleneck {
				bottleneck = net.resid[a]
			}
			v = net.to[a^1]
		}
		for v := t; v != s; {
			a := prevArc[v]
			net.resid[a] -= bottleneck
			net.resid[a^1] += bottleneck
			v = net.to[a^1]
		}
		total += bottleneck
	}
}

// Cut is a minimum s-t cut: the set of edges crossing from the source side
// to the sink side of the partition induced by residual reachability.
type Cut struct {
	// EdgeIndex lists indices into the graph's edge slice, in edge order.
	EdgeIndex []int
	// Capacity is the total capacity of the cut edges; by max-flow/min-cut
	// it equals the maximum flow value.
	Capacity int64
	// SourceSide[v] reports whether node v is reachable from Source in the
	// residual graph.
	SourceSide []bool
}

// MinCut derives a minimum cut from a computed maximum flow (paper §6.1):
// nodes reachable from Source along residual-capacity paths form the source
// side; crossing edges form the cut.
func (r *Result) MinCut() *Cut {
	n := len(r.net.head)
	seen := make([]bool, n)
	stack := []int32{int32(flowgraph.Source)}
	seen[flowgraph.Source] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range r.net.head[v] {
			if w := r.net.to[a]; r.net.resid[a] > 0 && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	cut := &Cut{SourceSide: seen}
	for i, e := range r.g.Edges {
		if seen[e.From] && !seen[e.To] {
			cut.EdgeIndex = append(cut.EdgeIndex, i)
			cut.Capacity += e.Cap
		}
	}
	return cut
}

// Edges returns the graph edges selected by the cut.
func (c *Cut) Edges(g *flowgraph.Graph) []flowgraph.Edge {
	out := make([]flowgraph.Edge, len(c.EdgeIndex))
	for i, idx := range c.EdgeIndex {
		out[i] = g.Edges[idx]
	}
	return out
}
