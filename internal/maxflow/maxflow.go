// Package maxflow computes maximum flows and minimum cuts on the flow
// networks of package flowgraph (paper §5, §6.1).
//
// Three exact algorithms are provided: Dinic's algorithm (the default;
// near linear on the shallow, layered graphs that collapsed executions
// produce), Edmonds–Karp (a simple augmenting-path baseline), and FIFO
// push-relabel. All operate on a shared residual representation and feed
// the same min-cut extraction.
//
// A Solver owns the residual network and per-algorithm scratch buffers and
// reuses them across Solve calls, so a long-lived analysis session (one
// engine worker solving many per-run graphs) allocates only the results.
// Compute is the one-shot convenience wrapper.
package maxflow

import (
	"math"

	"flowcheck/internal/flowgraph"
)

// Algorithm selects the max-flow algorithm.
type Algorithm int

// Available algorithms.
const (
	Dinic Algorithm = iota
	EdmondsKarp
	PushRelabel
)

func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case EdmondsKarp:
		return "edmonds-karp"
	case PushRelabel:
		return "push-relabel"
	}
	return "unknown"
}

// Result holds a computed maximum flow and its minimum cut. It is
// self-contained: it does not reference solver scratch buffers, so it stays
// valid after the solver moves on to other graphs.
type Result struct {
	// Flow is the value of the maximum flow from Source to Sink, in bits.
	Flow int64
	// EdgeFlow[i] is the flow routed through graph edge i.
	EdgeFlow []int64

	cut *Cut
}

// network is the residual representation over a flowgraph.CSR view: each
// original edge i is arc 2i (forward) and 2i+1 (backward); the topology
// arrays (hstart, harcs, to) alias the CSR — zero-copy — and only resid,
// the one array the algorithms mutate, is owned by the solver and reused
// across attaches.
type network struct {
	n      int
	hstart []int32
	harcs  []int32
	to     []int32
	resid  []int64
}

func (net *network) arcs(v int32) []int32 {
	return net.harcs[net.hstart[v]:net.hstart[v+1]]
}

// attach points the network at a CSR view and initializes residuals from
// its capacities. The CSR must stay unmodified for the duration of the
// solve.
func (net *network) attach(c *flowgraph.CSR) {
	net.n = c.N
	net.hstart = c.HStart
	net.harcs = c.HArcs
	net.to = c.To
	net.resid = i64n(net.resid, len(c.Cap))
	copy(net.resid, c.Cap)
}

// Solver computes maximum flows with reusable buffers: the residual network
// and all per-algorithm scratch persist across Solve calls. A Solver is not
// safe for concurrent use; pooled analysis sessions hold one each.
type Solver struct {
	algo Algorithm
	net  network
	csr  flowgraph.CSR // reusable CSR view for Graph-based solves

	// Work accounting for SolveBudgeted: spent counts arc examinations,
	// limit is the budget (0 = unlimited), exhausted records an aborted
	// solve.
	spent     int64
	limit     int64
	exhausted bool

	// Augmenting-path scratch (Dinic, Edmonds–Karp).
	level   []int32
	iter    []int32
	queue   []int32
	prevArc []int32

	// Push-relabel scratch.
	height  []int32
	newH    []int32
	bfsq    []int32
	excess  []int64
	inQueue []bool
}

// NewSolver returns a solver running the given algorithm.
func NewSolver(algo Algorithm) *Solver { return &Solver{algo: algo} }

// Algorithm reports the solver's configured algorithm.
func (s *Solver) Algorithm() Algorithm { return s.algo }

// Solve computes the maximum flow and minimum cut of g, reusing the
// solver's buffers. The returned Result (including its cut) is detached
// from the solver and stays valid across subsequent Solve calls.
func (s *Solver) Solve(g *flowgraph.Graph) *Result {
	res, _ := s.SolveBudgeted(g, 0)
	return res
}

// SolveBudgeted is Solve under a work budget, measured in arc examinations
// (work <= 0 means unlimited). When the budget runs out the algorithm stops
// augmenting and the second return value is true; the returned Result then
// holds a partial flow — a LOWER bound on the maximum flow, so it must not
// be used as a leakage upper bound, and its cut is not a minimum cut.
// Callers needing a sound bound under exhaustion should fall back to the
// graph's total sink capacity (the tainting bound, paper §7).
func (s *Solver) SolveBudgeted(g *flowgraph.Graph, work int64) (*Result, bool) {
	g.BuildCSR(&s.csr)
	return s.SolveCSR(&s.csr, work)
}

// SolveCSR solves a graph presented as a CSR view, under the same contract
// as SolveBudgeted. The solver aliases c's topology arrays and copies only
// the capacities into its residual buffer, so callers that already hold a
// CSR (the arena's zero-copy handoff) skip Graph materialization entirely.
// c must not be modified until SolveCSR returns. Edge i of the view is
// Result.EdgeFlow[i] and Cut.EdgeIndex entries index the view's edges.
func (s *Solver) SolveCSR(c *flowgraph.CSR, work int64) (*Result, bool) {
	return s.SolveCSRView(c, nil, work)
}

// SolveCSRView is SolveCSR under a capacity view: the view's per-edge
// capacities replace the CSR's in the residual network before the solve,
// so N per-class solves share one attached CSR (topology untouched, only
// residuals reset per solve). EdgeFlow and the min cut are reported
// against the view-effective capacities; edges the view zeroes never
// appear in the cut. A nil view solves the CSR as-is.
func (s *Solver) SolveCSRView(c *flowgraph.CSR, view *flowgraph.CapacityView, work int64) (*Result, bool) {
	s.net.attach(c)
	if view != nil {
		for k, ei := range view.Edge {
			s.net.resid[2*ei] = view.Cap[k]
			s.net.resid[2*ei+1] = 0
		}
	}
	s.limit, s.spent, s.exhausted = work, 0, false
	var flow int64
	if s.net.n > int(flowgraph.Sink) {
		switch s.algo {
		case EdmondsKarp:
			flow = s.edmondsKarp()
		case PushRelabel:
			flow = s.pushRelabel()
		default:
			flow = s.dinic()
		}
	}
	ne := c.NumEdges()
	res := &Result{Flow: flow, EdgeFlow: make([]int64, ne)}
	cur := viewCursor{view: view}
	for i := 0; i < ne; i++ {
		res.EdgeFlow[i] = cur.cap(i, c.Cap[2*i]) - s.net.resid[2*i]
	}
	res.cut = s.minCut(c, view)
	return res, s.exhausted
}

// viewCursor resolves view-effective capacities for ascending edge
// indices in amortized O(1) per lookup (the view's edge list is sorted).
type viewCursor struct {
	view *flowgraph.CapacityView
	k    int
}

func (c *viewCursor) cap(i int, base int64) int64 {
	v := c.view
	if v == nil {
		return base
	}
	for c.k < len(v.Edge) && v.Edge[c.k] < int32(i) {
		c.k++
	}
	if c.k < len(v.Edge) && v.Edge[c.k] == int32(i) {
		return v.Cap[c.k]
	}
	return base
}

// over reports whether the work budget is exhausted, latching the flag.
func (s *Solver) over() bool {
	if s.limit > 0 && s.spent >= s.limit {
		s.exhausted = true
	}
	return s.exhausted
}

// Compute runs the selected algorithm once and returns the maximum flow
// from flowgraph.Source to flowgraph.Sink.
func Compute(g *flowgraph.Graph, algo Algorithm) *Result {
	return NewSolver(algo).Solve(g)
}

func (s *Solver) dinic() int64 {
	net := &s.net
	n := net.n
	s.level = i32n(s.level, n)
	s.iter = i32n(s.iter, n)
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	level, iter := s.level, s.iter
	src, t := int32(flowgraph.Source), int32(flowgraph.Sink)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		q := append(s.queue[:0], src)
		for head := 0; head < len(q); head++ {
			v := q[head]
			arcs := net.arcs(v)
			s.spent += int64(len(arcs))
			for _, a := range arcs {
				w := net.to[a]
				if net.resid[a] > 0 && level[w] < 0 {
					level[w] = level[v] + 1
					q = append(q, w)
				}
			}
		}
		s.queue = q[:0]
		return level[t] >= 0
	}

	var dfs func(v int32, limit int64) int64
	dfs = func(v int32, limit int64) int64 {
		if v == t {
			return limit
		}
		for width := net.hstart[v+1] - net.hstart[v]; iter[v] < width; iter[v]++ {
			s.spent++
			a := net.harcs[net.hstart[v]+iter[v]]
			w := net.to[a]
			if net.resid[a] <= 0 || level[w] != level[v]+1 {
				continue
			}
			amt := limit
			if net.resid[a] < amt {
				amt = net.resid[a]
			}
			if pushed := dfs(w, amt); pushed > 0 {
				net.resid[a] -= pushed
				net.resid[a^1] += pushed
				return pushed
			}
		}
		level[v] = -1
		return 0
	}

	var total int64
	for !s.over() && bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for !s.over() {
			pushed := dfs(src, math.MaxInt64)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (s *Solver) edmondsKarp() int64 {
	net := &s.net
	n := net.n
	s.prevArc = i32n(s.prevArc, n)
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	prevArc := s.prevArc
	src, t := int32(flowgraph.Source), int32(flowgraph.Sink)
	var total int64
	for !s.over() {
		for i := range prevArc {
			prevArc[i] = -1
		}
		prevArc[src] = -2
		q := append(s.queue[:0], src)
		found := false
	bfs:
		for head := 0; head < len(q); head++ {
			v := q[head]
			s.spent += int64(len(net.arcs(v)))
			for _, a := range net.arcs(v) {
				w := net.to[a]
				if net.resid[a] > 0 && prevArc[w] == -1 {
					prevArc[w] = a
					if w == t {
						found = true
						break bfs
					}
					q = append(q, w)
				}
			}
		}
		s.queue = q[:0]
		if !found {
			return total
		}
		// Find bottleneck along the path.
		bottleneck := int64(math.MaxInt64)
		for v := t; v != src; {
			a := prevArc[v]
			if net.resid[a] < bottleneck {
				bottleneck = net.resid[a]
			}
			v = net.to[a^1]
		}
		for v := t; v != src; {
			a := prevArc[v]
			net.resid[a] -= bottleneck
			net.resid[a^1] += bottleneck
			v = net.to[a^1]
		}
		total += bottleneck
	}
	return total // budget exhausted mid-search: partial flow
}

// Cut is a minimum s-t cut: the set of edges crossing from the source side
// to the sink side of the partition induced by residual reachability.
type Cut struct {
	// EdgeIndex lists indices into the graph's edge slice, in edge order.
	EdgeIndex []int
	// Capacity is the total capacity of the cut edges; by max-flow/min-cut
	// it equals the maximum flow value.
	Capacity int64
	// SourceSide[v] reports whether node v is reachable from Source in the
	// residual graph.
	SourceSide []bool
}

// MinCut returns the minimum cut derived from the computed maximum flow
// (paper §6.1): nodes reachable from Source along residual-capacity paths
// form the source side; crossing edges form the cut. The cut is extracted
// eagerly by Solve, so this is a field access.
func (r *Result) MinCut() *Cut { return r.cut }

// minCut extracts the cut from the terminal residual network. SourceSide
// escapes into the Cut, so it is allocated fresh; the DFS stack is scratch.
// Edge i's endpoints are read off the CSR arc pair: To[2i+1] is the edge's
// origin, To[2i] its destination. Under a view, crossing edges count at
// their view-effective capacity and view-zeroed edges are skipped.
func (s *Solver) minCut(c *flowgraph.CSR, view *flowgraph.CapacityView) *Cut {
	net := &s.net
	seen := make([]bool, net.n)
	stack := append(s.queue[:0], int32(flowgraph.Source))
	seen[flowgraph.Source] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range net.arcs(v) {
			if w := net.to[a]; net.resid[a] > 0 && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	s.queue = stack[:0]
	cut := &Cut{SourceSide: seen}
	cur := viewCursor{view: view}
	for i, ne := 0, c.NumEdges(); i < ne; i++ {
		if seen[c.To[2*i+1]] && !seen[c.To[2*i]] {
			capi := cur.cap(i, c.Cap[2*i])
			if view != nil && capi == 0 {
				continue
			}
			cut.EdgeIndex = append(cut.EdgeIndex, i)
			cut.Capacity += capi
		}
	}
	return cut
}

// Edges returns the graph edges selected by the cut.
func (c *Cut) Edges(g *flowgraph.Graph) []flowgraph.Edge {
	out := make([]flowgraph.Edge, len(c.EdgeIndex))
	for i, idx := range c.EdgeIndex {
		out[i] = g.Edges[idx]
	}
	return out
}

// i32n returns a length-n []int32, reusing s's backing array if it fits.
func i32n(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func i64n(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func booln(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
