package maxflow

import "flowcheck/internal/flowgraph"

// pushRelabel implements the FIFO push-relabel (Goldberg–Tarjan) algorithm
// with the global relabeling heuristic. The paper's §5 surveys general
// max-flow algorithms with at least O(VE) complexity; push-relabel is the
// classic alternative family to augmenting paths, included as a third
// exact implementation for the algorithm ablation
// (BenchmarkMaxflowAlgorithms).
//
// Global relabeling periodically recomputes heights as exact residual
// distances to the sink (or, for nodes that can no longer reach it, the
// distance back to the source offset by n), taking the maximum with the
// current height: the pointwise maximum of two valid distance labelings is
// itself valid, and heights stay monotone. This collapses the long chains
// that make the heuristic-free variant impractically slow on execution
// flow graphs.
//
// The algorithm runs to completion (heights up to 2n), so leftover excess
// drains back to the source and the terminal state is a genuine maximum
// flow — the residual graph then yields the usual minimum cut.
func pushRelabel(net *network) int64 {
	n := len(net.head)
	if n <= int(flowgraph.Sink) {
		return 0
	}
	s, t := int32(flowgraph.Source), int32(flowgraph.Sink)

	height := make([]int32, n)
	excess := make([]int64, n)
	iter := make([]int32, n)

	inQueue := make([]bool, n)
	queue := make([]int32, 0, n)
	enqueue := func(v int32) {
		if v != s && v != t && !inQueue[v] && excess[v] > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	bfsQueue := make([]int32, 0, n)
	newH := make([]int32, n)
	// globalRelabel sets height[v] to the exact residual distance from v to
	// the sink; nodes that cannot reach the sink get n plus their residual
	// distance to the source (they can only return their excess). A reverse
	// arc w->v is residual exactly when the paired arc's residual capacity
	// (resid[b^1] for b in head[w]) is positive.
	globalRelabel := func() {
		const unset = int32(1) << 30
		for i := range newH {
			newH[i] = unset
		}
		newH[t] = 0
		bfsQueue = append(bfsQueue[:0], t)
		for len(bfsQueue) > 0 {
			u := bfsQueue[0]
			bfsQueue = bfsQueue[1:]
			for _, b := range net.head[u] {
				x := net.to[b]
				if newH[x] == unset && net.resid[b^1] > 0 {
					newH[x] = newH[u] + 1
					bfsQueue = append(bfsQueue, x)
				}
			}
		}
		newH[s] = int32(n)
		bfsQueue = append(bfsQueue[:0], s)
		for len(bfsQueue) > 0 {
			u := bfsQueue[0]
			bfsQueue = bfsQueue[1:]
			for _, b := range net.head[u] {
				x := net.to[b]
				if newH[x] == unset && net.resid[b^1] > 0 {
					newH[x] = newH[u] + 1
					bfsQueue = append(bfsQueue, x)
				}
			}
		}
		for i := range height {
			if newH[i] != unset && newH[i] > height[i] {
				height[i] = newH[i]
			}
		}
		for i := range iter {
			iter[i] = 0
		}
	}

	// Saturate all arcs out of the source.
	for _, a := range net.head[s] {
		if net.resid[a] > 0 {
			w := net.to[a]
			amt := net.resid[a]
			net.resid[a] = 0
			net.resid[a^1] += amt
			excess[w] += amt
			excess[s] -= amt
			enqueue(w)
		}
	}
	globalRelabel()

	// Re-run the global relabel every n work units (relabels).
	relabels := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false

		for excess[v] > 0 {
			if iter[v] == int32(len(net.head[v])) {
				// Relabel: the height invariant (h[v] <= h[w]+1 on residual
				// arcs) guarantees the new height strictly increases.
				minH := int32(2*n + 1)
				for _, a := range net.head[v] {
					if net.resid[a] > 0 {
						if h := height[net.to[a]] + 1; h < minH {
							minH = h
						}
					}
				}
				if minH > int32(2*n) {
					break // isolated: no residual arcs
				}
				height[v] = minH
				iter[v] = 0
				relabels++
				if relabels >= n {
					relabels = 0
					globalRelabel()
				}
				continue
			}
			a := net.head[v][iter[v]]
			w := net.to[a]
			if net.resid[a] > 0 && height[v] == height[w]+1 {
				amt := excess[v]
				if net.resid[a] < amt {
					amt = net.resid[a]
				}
				net.resid[a] -= amt
				net.resid[a^1] += amt
				excess[v] -= amt
				excess[w] += amt
				enqueue(w)
			} else {
				iter[v]++
			}
		}
	}
	return excess[t]
}
