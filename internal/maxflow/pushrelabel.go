package maxflow

import "flowcheck/internal/flowgraph"

// pushRelabel implements the FIFO push-relabel (Goldberg–Tarjan) algorithm
// with the global relabeling heuristic. The paper's §5 surveys general
// max-flow algorithms with at least O(VE) complexity; push-relabel is the
// classic alternative family to augmenting paths, included as a third
// exact implementation for the algorithm ablation
// (BenchmarkMaxflowAlgorithms).
//
// Global relabeling periodically recomputes heights as exact residual
// distances to the sink (or, for nodes that can no longer reach it, the
// distance back to the source offset by n), taking the maximum with the
// current height: the pointwise maximum of two valid distance labelings is
// itself valid, and heights stay monotone. This collapses the long chains
// that make the heuristic-free variant impractically slow on execution
// flow graphs.
//
// The algorithm runs to completion (heights up to 2n), so leftover excess
// drains back to the source and the terminal state is a genuine maximum
// flow — the residual graph then yields the usual minimum cut.
//
// All working arrays live on the Solver and are reused across Solve calls.
func (sv *Solver) pushRelabel() int64 {
	net := &sv.net
	n := net.n
	s, t := int32(flowgraph.Source), int32(flowgraph.Sink)

	sv.height = i32n(sv.height, n)
	sv.excess = i64n(sv.excess, n)
	sv.iter = i32n(sv.iter, n)
	sv.inQueue = booln(sv.inQueue, n)
	sv.newH = i32n(sv.newH, n)
	height, excess, iter, inQueue := sv.height, sv.excess, sv.iter, sv.inQueue
	newH := sv.newH
	for i := 0; i < n; i++ {
		height[i], excess[i], iter[i], inQueue[i] = 0, 0, 0, false
	}

	if cap(sv.queue) < n {
		sv.queue = make([]int32, 0, n)
	}
	queue := sv.queue[:0]
	enqueue := func(v int32) {
		if v != s && v != t && !inQueue[v] && excess[v] > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	if cap(sv.bfsq) < n {
		sv.bfsq = make([]int32, 0, n)
	}
	bfsQueue := sv.bfsq[:0]
	// globalRelabel sets height[v] to the exact residual distance from v to
	// the sink; nodes that cannot reach the sink get n plus their residual
	// distance to the source (they can only return their excess). A reverse
	// arc w->v is residual exactly when the paired arc's residual capacity
	// (resid[b^1] for b incident to w) is positive.
	globalRelabel := func() {
		const unset = int32(1) << 30
		for i := range newH {
			newH[i] = unset
		}
		newH[t] = 0
		bfsQueue = append(bfsQueue[:0], t)
		for head := 0; head < len(bfsQueue); head++ {
			u := bfsQueue[head]
			for _, b := range net.arcs(u) {
				x := net.to[b]
				if newH[x] == unset && net.resid[b^1] > 0 {
					newH[x] = newH[u] + 1
					bfsQueue = append(bfsQueue, x)
				}
			}
		}
		newH[s] = int32(n)
		bfsQueue = append(bfsQueue[:0], s)
		for head := 0; head < len(bfsQueue); head++ {
			u := bfsQueue[head]
			for _, b := range net.arcs(u) {
				x := net.to[b]
				if newH[x] == unset && net.resid[b^1] > 0 {
					newH[x] = newH[u] + 1
					bfsQueue = append(bfsQueue, x)
				}
			}
		}
		for i := range height {
			if newH[i] != unset && newH[i] > height[i] {
				height[i] = newH[i]
			}
		}
		for i := range iter {
			iter[i] = 0
		}
	}

	// Saturate all arcs out of the source.
	for _, a := range net.arcs(s) {
		if net.resid[a] > 0 {
			w := net.to[a]
			amt := net.resid[a]
			net.resid[a] = 0
			net.resid[a^1] += amt
			excess[w] += amt
			excess[s] -= amt
			enqueue(w)
		}
	}
	globalRelabel()

	// Re-run the global relabel every n work units (relabels).
	relabels := 0
	for head := 0; head < len(queue); head++ {
		if sv.over() {
			// Budget exhausted: stop discharging. The preflow's arrival at
			// the sink (excess[t]) is what SolveBudgeted reports as the
			// partial value.
			break
		}
		v := queue[head]
		inQueue[v] = false

		for excess[v] > 0 {
			sv.spent++
			if iter[v] == net.hstart[v+1]-net.hstart[v] {
				// Relabel: the height invariant (h[v] <= h[w]+1 on residual
				// arcs) guarantees the new height strictly increases.
				minH := int32(2*n + 1)
				for _, a := range net.arcs(v) {
					if net.resid[a] > 0 {
						if h := height[net.to[a]] + 1; h < minH {
							minH = h
						}
					}
				}
				if minH > int32(2*n) {
					break // isolated: no residual arcs
				}
				height[v] = minH
				iter[v] = 0
				relabels++
				if relabels >= n {
					relabels = 0
					globalRelabel()
				}
				continue
			}
			a := net.harcs[net.hstart[v]+iter[v]]
			w := net.to[a]
			if net.resid[a] > 0 && height[v] == height[w]+1 {
				amt := excess[v]
				if net.resid[a] < amt {
					amt = net.resid[a]
				}
				net.resid[a] -= amt
				net.resid[a^1] += amt
				excess[v] -= amt
				excess[w] += amt
				enqueue(w)
			} else {
				iter[v]++
			}
		}
	}
	sv.queue = queue[:0]
	sv.bfsq = bfsQueue[:0]
	return excess[t]
}
