package maxflow

import (
	"math/rand"
	"testing"

	"flowcheck/internal/flowgraph"
)

// budgetGraph builds a layered random graph big enough that a tiny work
// budget cannot finish it.
func budgetGraph(seed int64) *flowgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := flowgraph.New()
	const layers, width = 6, 20
	prev := []flowgraph.NodeID{flowgraph.Source}
	for l := 0; l < layers; l++ {
		var cur []flowgraph.NodeID
		for i := 0; i < width; i++ {
			cur = append(cur, g.AddNode())
		}
		for _, p := range prev {
			for _, c := range cur {
				if rng.Intn(3) != 0 {
					g.AddEdge(p, c, int64(1+rng.Intn(16)), flowgraph.Label{})
				}
			}
		}
		prev = cur
	}
	for _, p := range prev {
		g.AddEdge(p, flowgraph.Sink, int64(1+rng.Intn(16)), flowgraph.Label{})
	}
	return g
}

func TestSolveBudgetedExhaustsAndUnderestimates(t *testing.T) {
	for _, algo := range []Algorithm{Dinic, EdmondsKarp, PushRelabel} {
		g := budgetGraph(1)
		exact := Compute(g, algo).Flow

		partial, exhausted := NewSolver(algo).SolveBudgeted(g, 10)
		if !exhausted {
			t.Fatalf("%v: budget 10 on %d-edge graph not exhausted", algo, g.NumEdges())
		}
		if partial.Flow > exact {
			t.Fatalf("%v: partial flow %d exceeds exact max flow %d", algo, partial.Flow, exact)
		}

		full, exhausted := NewSolver(algo).SolveBudgeted(g, 1<<40)
		if exhausted {
			t.Fatalf("%v: huge budget reported exhausted", algo)
		}
		if full.Flow != exact {
			t.Fatalf("%v: budgeted flow %d != exact %d", algo, full.Flow, exact)
		}
	}
}

func TestSolveBudgetedDeterministic(t *testing.T) {
	for _, algo := range []Algorithm{Dinic, EdmondsKarp, PushRelabel} {
		g := budgetGraph(7)
		a, ea := NewSolver(algo).SolveBudgeted(g, 500)
		b, eb := NewSolver(algo).SolveBudgeted(g, 500)
		if a.Flow != b.Flow || ea != eb {
			t.Fatalf("%v: budgeted solve not deterministic: %d/%v vs %d/%v",
				algo, a.Flow, ea, b.Flow, eb)
		}
	}
}

func TestBudgetStateResetsBetweenSolves(t *testing.T) {
	g := budgetGraph(3)
	s := NewSolver(Dinic)
	if _, exhausted := s.SolveBudgeted(g, 5); !exhausted {
		t.Fatal("tiny budget not exhausted")
	}
	// The same solver with no budget must now solve exactly.
	res := s.Solve(g)
	if want := Compute(g, Dinic).Flow; res.Flow != want {
		t.Fatalf("solver after exhaustion: flow %d, want %d", res.Flow, want)
	}
}
