package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedNet marks a scripted transport failure. Every injected
// network fault matches it via errors.Is, so callers can separate chaos
// from real transport errors without string matching.
var ErrInjectedNet = errors.New("fault: injected network failure")

// NetError is one injected transport failure: which target, which
// request ordinal at that target, and where in the exchange it struck.
type NetError struct {
	Target string // the plan's target key (the fleet uses shard names)
	Op     string // "dial", "body", "partition"
	Req    int    // 0-based request ordinal at Target
}

func (e *NetError) Error() string {
	return fmt.Sprintf("fault: injected network failure (%s %s request %d)", e.Op, e.Target, e.Req)
}

func (e *NetError) Is(target error) bool { return target == ErrInjectedNet }

// NetInjection scripts one request's transport fate. The zero value
// injects nothing.
type NetInjection struct {
	// Refuse fails the request before any bytes move, like a refused
	// connection or an unreachable host.
	Refuse bool
	// StallFor delays the request this long before forwarding it — the
	// slow-network case hedging exists for. Cancelling the request's
	// context ends the stall early with the context error.
	StallFor time.Duration
	// CutBodyAfter, when positive, lets the response through but fails
	// its body read after this many bytes — a mid-response connection
	// cut. The status line and headers arrive intact.
	CutBodyAfter int64
}

// Active reports whether the injection does anything.
func (inj NetInjection) Active() bool {
	return inj.Refuse || inj.StallFor > 0 || inj.CutBodyAfter > 0
}

func (inj NetInjection) String() string {
	switch {
	case inj.Refuse:
		return "refuse"
	case inj.StallFor > 0:
		return fmt.Sprintf("stall:%v", inj.StallFor)
	case inj.CutBodyAfter > 0:
		return fmt.Sprintf("cut-body:%d", inj.CutBodyAfter)
	}
	return "none"
}

type netKey struct {
	target string
	req    int
}

// netWindow is a partition: requests to target with ordinal in [from, to)
// are refused, simulating the target being unreachable for a while.
type netWindow struct {
	target string
	from   int
	to     int
}

// NetPlan maps (target, request ordinal) pairs to transport injections.
// Targets are opaque strings — the fleet keys by shard name. Like Plan
// and IOPlan it is deterministic (the same request sequence hits the same
// faults), nil-safe (a nil plan injects nothing), and chainable. Unlike
// them it is explicitly mutexed: request ordinals are consumed by
// concurrent transports.
type NetPlan struct {
	mu     sync.Mutex
	counts map[string]int
	byReq  map[netKey]NetInjection
	every  map[string]NetInjection
	parts  []netWindow
}

// NewNetPlan returns an empty plan.
func NewNetPlan() *NetPlan {
	return &NetPlan{
		counts: map[string]int{},
		byReq:  map[netKey]NetInjection{},
		every:  map[string]NetInjection{},
	}
}

// ForRequest schedules inj for the req-th request (0-based) to target.
func (p *NetPlan) ForRequest(target string, req int, inj NetInjection) *NetPlan {
	p.byReq[netKey{target, req}] = inj
	return p
}

// EveryRequest schedules inj for every request to target that has no
// request-specific injection.
func (p *NetPlan) EveryRequest(target string, inj NetInjection) *NetPlan {
	p.every[target] = inj
	return p
}

// Partition refuses requests to target with ordinals in [from, to) —
// the target drops off the network for a stretch of requests, then
// comes back. Partitions win over per-request and every-request rules.
func (p *NetPlan) Partition(target string, from, to int) *NetPlan {
	p.parts = append(p.parts, netWindow{target, from, to})
	return p
}

// Next consumes one request ordinal for target and returns its scripted
// injection plus the ordinal consumed. Safe on a nil plan.
func (p *NetPlan) Next(target string) (NetInjection, int) {
	if p == nil {
		return NetInjection{}, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ord := p.counts[target]
	p.counts[target] = ord + 1
	for _, w := range p.parts {
		if w.target == target && ord >= w.from && ord < w.to {
			return NetInjection{Refuse: true}, ord
		}
	}
	if inj, ok := p.byReq[netKey{target, ord}]; ok {
		return inj, ord
	}
	return p.every[target], ord
}

// Requests reports how many ordinals have been consumed for target.
func (p *NetPlan) Requests(target string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[target]
}

// RandomNet derives a plan from a seed covering n request ordinals per
// target: refused connections, short stalls, mid-body cuts, and an
// occasional multi-request partition, mixed so most requests still pass.
// The same seed and target list always yield the same plan. Stalls are
// kept to a few milliseconds so seeded soaks stay fast.
func RandomNet(seed int64, targets []string, n int) *NetPlan {
	rng := rand.New(rand.NewSource(seed))
	p := NewNetPlan()
	for _, t := range targets {
		for i := 0; i < n; i++ {
			switch rng.Intn(12) {
			case 0:
				p.ForRequest(t, i, NetInjection{Refuse: true})
			case 1:
				p.ForRequest(t, i, NetInjection{StallFor: time.Duration(1+rng.Intn(4)) * time.Millisecond})
			case 2:
				p.ForRequest(t, i, NetInjection{CutBodyAfter: int64(1 + rng.Intn(64))})
			}
		}
		if rng.Intn(4) == 0 {
			from := rng.Intn(n)
			p.Partition(t, from, from+1+rng.Intn(5))
		}
	}
	return p
}

// NetTransport is the http.RoundTripper chaos seam: it consults a
// NetPlan before forwarding each request to Base and injects the
// scripted failure. A nil Plan forwards everything untouched, so the
// transport can stay wired in production code paths.
type NetTransport struct {
	// Base is the real transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Plan scripts the failures; nil injects nothing.
	Plan *NetPlan
	// Target derives the plan key from a request; nil means URL host.
	Target func(*http.Request) string
}

func (t *NetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host
	if t.Target != nil {
		target = t.Target(req)
	}
	inj, ord := t.Plan.Next(target)
	if inj.Refuse {
		return nil, &NetError{Target: target, Op: "dial", Req: ord}
	}
	if inj.StallFor > 0 {
		timer := time.NewTimer(inj.StallFor)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if inj.CutBodyAfter > 0 {
		resp.Body = &cutBody{
			rc:   resp.Body,
			left: inj.CutBodyAfter,
			err:  &NetError{Target: target, Op: "body", Req: ord},
		}
	}
	return resp, nil
}

// cutBody passes through the first left bytes, then fails every read
// with the injected error, simulating a connection cut mid-response.
type cutBody struct {
	rc   io.ReadCloser
	left int64
	err  error
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, b.err
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	if b.left <= 0 && err == nil {
		err = b.err
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }
