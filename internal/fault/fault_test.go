package fault

import (
	"reflect"
	"testing"
	"time"
)

func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var p *Plan
	if inj := p.Run(0); inj.Active() {
		t.Fatalf("nil plan injects %v", inj)
	}
	if inj := NewPlan().Run(3); inj.Active() {
		t.Fatalf("empty plan injects %v", inj)
	}
}

func TestForRunAndEvery(t *testing.T) {
	p := NewPlan().
		ForRun(2, Injection{TrapAtStep: 100}).
		Every(Injection{ExhaustSolver: true})
	if inj := p.Run(2); inj.TrapAtStep != 100 || inj.ExhaustSolver {
		t.Fatalf("run 2 = %v, want the run-specific trap", inj)
	}
	if inj := p.Run(5); !inj.ExhaustSolver {
		t.Fatalf("run 5 = %v, want the Every injection", inj)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a, b := Random(42, 64), Random(42, 64)
	for i := 0; i < 64; i++ {
		if !reflect.DeepEqual(a.Run(i), b.Run(i)) {
			t.Fatalf("run %d differs across identical seeds: %v vs %v", i, a.Run(i), b.Run(i))
		}
	}
	c := Random(43, 64)
	same := true
	for i := 0; i < 64; i++ {
		if !reflect.DeepEqual(a.Run(i), c.Run(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

func TestRandomCoversEveryFailureMode(t *testing.T) {
	kinds := map[string]bool{}
	for i, p := 0, Random(1, 512); i < 512; i++ {
		inj := p.Run(i)
		switch {
		case inj.TrapAtStep != 0:
			kinds["trap"] = true
		case inj.StallAtStep != 0:
			kinds["stall"] = true
			if inj.StallFor <= 0 {
				t.Fatalf("run %d: stall injection with no duration: %v", i, inj)
			}
		case inj.ExhaustResource != "":
			kinds["budget"] = true
		case inj.ExhaustSolver:
			kinds["solver"] = true
		case inj.PanicStage != "":
			kinds["panic"] = true
		}
	}
	for _, k := range []string{"trap", "stall", "budget", "solver", "panic"} {
		if !kinds[k] {
			t.Fatalf("512 random injections never produced kind %q", k)
		}
	}
}

func TestInjectionString(t *testing.T) {
	cases := map[string]Injection{
		"none":                 {},
		"trap@step=9":          {TrapAtStep: 9},
		"stall@step=7 for=2ms": {StallAtStep: 7, StallFor: 2 * time.Millisecond},
		"exhaust:graph-nodes":  {ExhaustResource: "graph-nodes"},
		"exhaust:solver-work":  {ExhaustSolver: true},
		"panic:solve":          {PanicStage: StageSolve},
	}
	for want, inj := range cases {
		if got := inj.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestStageString(t *testing.T) {
	if got := StageSolve.String(); got != "solve" {
		t.Fatalf("StageSolve.String() = %q", got)
	}
	if got := Stage("").String(); got != "none" {
		t.Fatalf(`Stage("").String() = %q, want "none"`, got)
	}
}
