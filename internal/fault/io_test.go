package fault

import (
	"errors"
	"testing"
)

func TestIOPlanScriptsOps(t *testing.T) {
	p := NewIOPlan().FailWrite(1).FailSync(0).CorruptTail(7)

	if err := p.WriteErr(); err != nil {
		t.Fatalf("write 0: unexpected %v", err)
	}
	err := p.WriteErr()
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("write 1: got %v, want ErrInjectedIO", err)
	}
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Op != "write" || ioe.N != 1 {
		t.Fatalf("write 1: detail %+v", ioe)
	}
	if err := p.WriteErr(); err != nil {
		t.Fatalf("write 2: unexpected %v", err)
	}

	if err := p.SyncErr(); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("sync 0: got %v, want ErrInjectedIO", err)
	}
	if err := p.SyncErr(); err != nil {
		t.Fatalf("sync 1: unexpected %v", err)
	}

	if n := p.TailCorruption(); n != 7 {
		t.Fatalf("tail corruption = %d, want 7", n)
	}
	if n := p.TailCorruption(); n != 0 {
		t.Fatalf("tail corruption not consumed: %d", n)
	}

	w, s := p.Ops()
	if w != 3 || s != 2 {
		t.Fatalf("ops = %d writes, %d syncs; want 3, 2", w, s)
	}
}

func TestIOPlanNilSafe(t *testing.T) {
	var p *IOPlan
	if err := p.WriteErr(); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncErr(); err != nil {
		t.Fatal(err)
	}
	if n := p.TailCorruption(); n != 0 {
		t.Fatal("nil plan corrupted something")
	}
}

func TestRandomIODeterministic(t *testing.T) {
	a, b := RandomIO(42, 100), RandomIO(42, 100)
	for i := 0; i < 100; i++ {
		ea, eb := a.WriteErr(), b.WriteErr()
		if (ea == nil) != (eb == nil) {
			t.Fatalf("write %d: plans diverge (%v vs %v)", i, ea, eb)
		}
		ea, eb = a.SyncErr(), b.SyncErr()
		if (ea == nil) != (eb == nil) {
			t.Fatalf("sync %d: plans diverge (%v vs %v)", i, ea, eb)
		}
	}
	if a.TailCorruption() != b.TailCorruption() {
		t.Fatal("tail corruption differs between identical seeds")
	}
}
