package fault

// io.go extends the fault harness to durable-store I/O: the leakage-budget
// ledger (internal/ledger) consults an IOPlan at each WAL append, each
// fsync, and once at replay, so tests can script exactly which write
// fails, which sync fails, and how many tail bytes of the log a "crash"
// corrupted — without touching the filesystem layer itself. Like Plan,
// an IOPlan is deterministic: the same plan fails the same operations in
// the same order, and RandomIO derives one from a seed for chaos soaks.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjectedIO marks a scripted I/O failure; concrete IOError values
// match it via errors.Is. Consumers treat it exactly like a real disk
// error (the whole point), but tests can tell the two apart.
var ErrInjectedIO = errors.New("fault: injected I/O failure")

// IOError is one scripted I/O failure, carrying which operation class
// failed ("write" or "sync") and the zero-based operation index.
type IOError struct {
	Op string
	N  int
}

func (e *IOError) Error() string {
	return fmt.Sprintf("fault: injected %s failure at op %d", e.Op, e.N)
}

func (e *IOError) Is(target error) bool { return target == ErrInjectedIO }

// IOPlan scripts failures for a durable store's I/O operations. The zero
// value (and nil) injects nothing. Operations are counted per class from
// zero in call order; the plan is safe for concurrent use.
type IOPlan struct {
	mu         sync.Mutex
	writes     int
	syncs      int
	failWrites map[int]bool
	failSyncs  map[int]bool
	tailBytes  int
}

// NewIOPlan returns an empty I/O plan.
func NewIOPlan() *IOPlan {
	return &IOPlan{failWrites: map[int]bool{}, failSyncs: map[int]bool{}}
}

// FailWrite schedules the n-th write (zero-based) to fail. Returns the
// plan for chaining.
func (p *IOPlan) FailWrite(n int) *IOPlan {
	p.failWrites[n] = true
	return p
}

// FailSync schedules the n-th sync (zero-based) to fail.
func (p *IOPlan) FailSync(n int) *IOPlan {
	p.failSyncs[n] = true
	return p
}

// CorruptTail schedules the store's next replay to find its last n bytes
// corrupted, as a torn final write would leave them. The corruption is
// consumed by the first TailCorruption call.
func (p *IOPlan) CorruptTail(n int) *IOPlan {
	p.tailBytes = n
	return p
}

// WriteErr counts one write operation and returns its scripted failure,
// or nil. Safe on a nil plan.
func (p *IOPlan) WriteErr() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	n := p.writes
	p.writes++
	fail := p.failWrites[n]
	p.mu.Unlock()
	if fail {
		return &IOError{Op: "write", N: n}
	}
	return nil
}

// SyncErr counts one sync operation and returns its scripted failure, or
// nil. Safe on a nil plan.
func (p *IOPlan) SyncErr() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	n := p.syncs
	p.syncs++
	fail := p.failSyncs[n]
	p.mu.Unlock()
	if fail {
		return &IOError{Op: "sync", N: n}
	}
	return nil
}

// TailCorruption returns how many tail bytes the next replay should find
// corrupted, consuming the injection (a second replay sees a clean log,
// as a real once-torn file would). Safe on a nil plan.
func (p *IOPlan) TailCorruption() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	n := p.tailBytes
	p.tailBytes = 0
	p.mu.Unlock()
	return n
}

// Ops reports how many write and sync operations the plan has counted.
func (p *IOPlan) Ops() (writes, syncs int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes, p.syncs
}

// RandomIO derives an I/O plan for roughly ops operations from a seed:
// each write and sync index independently fails with small probability,
// and occasionally the tail is scheduled corrupt. The same seed always
// yields the same plan.
func RandomIO(seed int64, ops int) *IOPlan {
	rng := rand.New(rand.NewSource(seed))
	p := NewIOPlan()
	for i := 0; i < ops; i++ {
		if rng.Intn(20) == 0 {
			p.FailWrite(i)
		}
		if rng.Intn(20) == 0 {
			p.FailSync(i)
		}
	}
	if rng.Intn(4) == 0 {
		p.CorruptTail(1 + rng.Intn(32))
	}
	return p
}
