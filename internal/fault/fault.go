// Package fault is a deterministic fault-injection harness for the
// analysis engine.
//
// A Plan scripts, per run index, which failure a run should suffer: a
// guest trap at a chosen step count, a forced budget exhaustion, a forced
// solver-budget degradation, a mid-run stall, or a panic at the entry of a
// pipeline stage. The plan is pure data — the engine interprets it at its
// own failure points (the VM check hook, the budget checks, the stage
// boundaries), so injected failures exercise exactly the code paths that
// real traps, exhausted budgets, cancellations, slow runs, and internal
// bugs take.
//
// Plans are deterministic by construction: the same plan applied to the
// same inputs fails the same runs in the same way, regardless of worker
// count or scheduling — which is what lets the batch-isolation tests
// assert bit-identical joint bounds under chaos. Random derives a plan
// from a seed for chaos-style sweeps.
package fault

import (
	"fmt"
	"math/rand"
	"time"
)

// Stage names the pipeline stage a fault targets; the first four match the
// engine's stage boundaries, the last two its batch-only recovery scopes.
type Stage string

const (
	StageExecute Stage = "execute"
	StageBuild   Stage = "build"
	StageSolve   Stage = "solve"
	StageReport  Stage = "report"
	StageFanOut  Stage = "fan-out"
	StageMerge   Stage = "merge"
)

// String renders the stage for structured log lines; the zero value reads
// as "none" so an absent stage field stays greppable.
func (s Stage) String() string {
	if s == "" {
		return "none"
	}
	return string(s)
}

// Injection describes the failure one run should suffer. The zero value
// injects nothing.
type Injection struct {
	// TrapAtStep, when non-zero, makes the guest trap at (or within one
	// check interval after) this step count, as if it had faulted.
	TrapAtStep uint64

	// StallAtStep, when non-zero, pauses the run for StallFor the first
	// time the step count reaches it — a deterministic stand-in for a slow
	// guest or a scheduling hiccup. The run then continues normally, so a
	// stalled run that beats its deadline produces bit-identical results to
	// an unstalled one; one that doesn't is canceled at the first poll
	// after the stall. This is what makes timeout, deadline-admission, and
	// backoff paths testable without wall-clock flakiness.
	StallAtStep uint64
	// StallFor is how long a StallAtStep injection pauses.
	StallFor time.Duration

	// ExhaustResource, when non-empty, reports this resource's budget as
	// exhausted at the first poll (e.g. "output-bytes", "graph-nodes").
	ExhaustResource string

	// ExhaustSolver forces the solver-work budget to read as exhausted,
	// driving the graceful-degradation fallback.
	ExhaustSolver bool

	// PanicStage, when set to one of the Stage constants, panics at the
	// entry of that stage, exercising the engine's recovery boundary.
	PanicStage Stage
}

// Active reports whether the injection does anything.
func (inj Injection) Active() bool {
	return inj.TrapAtStep != 0 || inj.StallAtStep != 0 || inj.ExhaustResource != "" || inj.ExhaustSolver || inj.PanicStage != ""
}

func (inj Injection) String() string {
	switch {
	case inj.TrapAtStep != 0:
		return fmt.Sprintf("trap@step=%d", inj.TrapAtStep)
	case inj.StallAtStep != 0:
		return fmt.Sprintf("stall@step=%d for=%v", inj.StallAtStep, inj.StallFor)
	case inj.ExhaustResource != "":
		return "exhaust:" + inj.ExhaustResource
	case inj.ExhaustSolver:
		return "exhaust:solver-work"
	case inj.PanicStage != "":
		return "panic:" + inj.PanicStage.String()
	}
	return "none"
}

// Plan maps run indices to injections. The zero value (and nil) injects
// nothing anywhere. Plans are immutable once handed to an analyzer, so one
// plan may serve concurrent runs.
type Plan struct {
	byRun map[int]Injection
	every Injection
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{byRun: map[int]Injection{}} }

// ForRun schedules inj for the run with the given index (single-run
// analyses are run 0). It returns the plan for chaining.
func (p *Plan) ForRun(run int, inj Injection) *Plan {
	p.byRun[run] = inj
	return p
}

// Every schedules inj for all runs that have no run-specific injection.
func (p *Plan) Every(inj Injection) *Plan {
	p.every = inj
	return p
}

// Run returns the injection for the given run index. Safe on a nil plan.
func (p *Plan) Run(run int) Injection {
	if p == nil {
		return Injection{}
	}
	if inj, ok := p.byRun[run]; ok {
		return inj
	}
	return p.every
}

// Runs returns the indices with run-specific injections (order unspecified).
func (p *Plan) Runs() []int {
	if p == nil {
		return nil
	}
	out := make([]int, 0, len(p.byRun))
	for i := range p.byRun {
		out = append(out, i)
	}
	return out
}

// Random derives a plan for n runs from a seed: each run independently
// draws one of the failure modes (or, most often, none). The same seed
// always yields the same plan, so chaos sweeps are reproducible. Stalls are
// kept to a few milliseconds so seeded soaks stay fast.
func Random(seed int64, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan()
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			p.ForRun(i, Injection{TrapAtStep: uint64(1 + rng.Intn(5000))})
		case 1:
			p.ForRun(i, Injection{ExhaustResource: "output-bytes"})
		case 2:
			p.ForRun(i, Injection{ExhaustSolver: true})
		case 3:
			stages := []Stage{StageExecute, StageBuild, StageSolve, StageReport}
			p.ForRun(i, Injection{PanicStage: stages[rng.Intn(len(stages))]})
		case 4:
			p.ForRun(i, Injection{
				StallAtStep: uint64(1 + rng.Intn(2000)),
				StallFor:    time.Duration(1+rng.Intn(3)) * time.Millisecond,
			})
		default:
			// healthy run
		}
	}
	return p
}
