package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNetPlanNilSafe(t *testing.T) {
	var p *NetPlan
	inj, ord := p.Next("anything")
	if inj.Active() || ord != 0 {
		t.Fatalf("nil plan injected %v at ordinal %d", inj, ord)
	}
	if p.Requests("anything") != 0 {
		t.Fatal("nil plan counted a request")
	}
}

func TestNetPlanOrdinalsAndPrecedence(t *testing.T) {
	p := NewNetPlan().
		EveryRequest("a", NetInjection{StallFor: time.Millisecond}).
		ForRequest("a", 1, NetInjection{CutBodyAfter: 7}).
		Partition("a", 3, 5)

	want := []NetInjection{
		{StallFor: time.Millisecond}, // 0: the every-request rule
		{CutBodyAfter: 7},            // 1: per-request beats every-request
		{StallFor: time.Millisecond}, // 2
		{Refuse: true},               // 3: partition window opens
		{Refuse: true},               // 4
		{StallFor: time.Millisecond}, // 5: window closed
	}
	for i, w := range want {
		inj, ord := p.Next("a")
		if ord != i || inj != w {
			t.Fatalf("ordinal %d: got (%v, %d), want (%v, %d)", i, inj, ord, w, i)
		}
	}
	if got := p.Requests("a"); got != len(want) {
		t.Fatalf("Requests(a) = %d, want %d", got, len(want))
	}
	// Targets have independent ordinal streams.
	if inj, ord := p.Next("b"); inj.Active() || ord != 0 {
		t.Fatalf("target b inherited target a's plan: (%v, %d)", inj, ord)
	}
}

func TestNetPlanPartitionBeatsPerRequest(t *testing.T) {
	p := NewNetPlan().
		ForRequest("a", 0, NetInjection{StallFor: time.Millisecond}).
		Partition("a", 0, 1)
	inj, _ := p.Next("a")
	if !inj.Refuse {
		t.Fatalf("partition should win over per-request rule, got %v", inj)
	}
}

func TestRandomNetReproducible(t *testing.T) {
	targets := []string{"a", "b", "c"}
	p1 := RandomNet(42, targets, 50)
	p2 := RandomNet(42, targets, 50)
	for _, tg := range targets {
		for i := 0; i < 60; i++ { // past n: both must agree on "nothing"
			i1, _ := p1.Next(tg)
			i2, _ := p2.Next(tg)
			if i1 != i2 {
				t.Fatalf("seed 42 diverged at %s/%d: %v vs %v", tg, i, i1, i2)
			}
		}
	}
	// A different seed must not replay the same script.
	p3, p4 := RandomNet(43, targets, 50), RandomNet(42, targets, 50)
	same := true
	for _, tg := range targets {
		for i := 0; i < 50; i++ {
			a, _ := p3.Next(tg)
			b, _ := p4.Next(tg)
			if a != b {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

func TestNetTransportRefuse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	tr := &NetTransport{Plan: NewNetPlan().ForRequest(ts.Listener.Addr().String(), 0, NetInjection{Refuse: true})}
	client := &http.Client{Transport: tr}

	_, err := client.Get(ts.URL)
	if !errors.Is(err, ErrInjectedNet) {
		t.Fatalf("want ErrInjectedNet, got %v", err)
	}
	// Ordinal 1 has no injection: the request passes.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Fatalf("clean request read %q", b)
	}
}

func TestNetTransportCutBody(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	tr := &NetTransport{
		Plan:   NewNetPlan().EveryRequest("shard-a", NetInjection{CutBodyAfter: 10}),
		Target: func(*http.Request) string { return "shard-a" },
	}
	resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
	if err != nil {
		t.Fatalf("cut-body must deliver status and headers, got %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjectedNet) {
		t.Fatalf("body read error = %v, want ErrInjectedNet", err)
	}
	if len(b) > 10 {
		t.Fatalf("read %d bytes past the cut at 10", len(b))
	}
	var ne *NetError
	if !errors.As(err, &ne) || ne.Op != "body" || ne.Target != "shard-a" {
		t.Fatalf("cut error = %#v", err)
	}
}

func TestNetTransportStallRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	tr := &NetTransport{
		Plan:   NewNetPlan().EveryRequest("s", NetInjection{StallFor: time.Minute}),
		Target: func(*http.Request) string { return "s" },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := (&http.Client{Transport: tr}).Do(req)
	if err == nil {
		t.Fatal("stalled request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the stall ignored the context", elapsed)
	}
}

func TestNetInjectionStrings(t *testing.T) {
	cases := map[string]NetInjection{
		"none":       {},
		"refuse":     {Refuse: true},
		"stall:1ms":  {StallFor: time.Millisecond},
		"cut-body:9": {CutBodyAfter: 9},
	}
	for want, inj := range cases {
		if got := inj.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", inj, got, want)
		}
	}
	if (NetInjection{}).Active() {
		t.Fatal("zero injection must be inactive")
	}
}
