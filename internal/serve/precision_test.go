package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"flowcheck/internal/engine"
	"flowcheck/internal/lang"
	"flowcheck/internal/serve"
)

// gateSrc reads 2 bytes of its secret, so its static bound (16 bits)
// separates from the trivial bound on any larger secret.
const gateSrc = `
int main() {
    char buf[2];
    read_secret(buf, 2);
    putc(buf[0] ^ buf[1]);
    return 0;
}
`

func newGateService(t *testing.T, opts serve.Options) *serve.Service {
	t.Helper()
	prog, err := lang.Compile("gate.mc", gateSrc)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(opts)
	svc.Register("gate", prog, engine.Config{})
	return svc
}

// A static-precision request answers the static bound with no execution
// and lands in the rung counters; the program's configured full solve is
// untouched for other requests.
func TestPrecisionRungRequest(t *testing.T) {
	svc := newGateService(t, serve.Options{})
	resp, err := svc.Analyze(context.Background(), serve.Request{
		Program:   "gate",
		Inputs:    engine.Inputs{Secret: make([]byte, 64)},
		Precision: "static",
	})
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Result
	if res.Bits != 16 || res.Rung != engine.RungStatic {
		t.Fatalf("static request: bits=%d rung=%q, want 16/static", res.Bits, res.Rung)
	}
	if res.Graph != nil || res.Steps != 0 {
		t.Fatalf("static request executed: steps=%d", res.Steps)
	}

	full, err := svc.Analyze(context.Background(), serve.Request{
		Program: "gate",
		Inputs:  engine.Inputs{Secret: []byte("ab")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Result.Rung != engine.RungFull {
		t.Fatalf("plain request rung = %q, want full", full.Result.Rung)
	}

	st := svc.Stats()
	if st.RungStatic != 1 || st.RungFull != 1 || st.RungTrivial != 0 {
		t.Fatalf("rung counters = trivial %d / static %d / full %d, want 0/1/1",
			st.RungTrivial, st.RungStatic, st.RungFull)
	}
}

// A bogus precision name is a typed bad request, refused before admission
// and before any ledger charge.
func TestPrecisionBadRequest(t *testing.T) {
	svc := newGateService(t, serve.Options{})
	_, err := svc.Analyze(context.Background(), serve.Request{
		Program:   "gate",
		Inputs:    engine.Inputs{Secret: []byte("ab")},
		Precision: "bogus",
	})
	if !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("got %v, want ErrBadRequest", err)
	}
	if st := svc.Stats(); st.Admitted != 0 {
		t.Fatalf("bad request was admitted: %+v", st)
	}
}

// Rung answers report Degraded (no cut exists) but must not trigger the
// degraded-retry loop: there is no larger budget that un-degrades them.
func TestPrecisionRungNotRetried(t *testing.T) {
	svc := newGateService(t, serve.Options{
		MaxAttempts:   3,
		RetryDegraded: true,
	})
	resp, err := svc.Analyze(context.Background(), serve.Request{
		Program:   "gate",
		Inputs:    engine.Inputs{Secret: []byte("ab")},
		Precision: "trivial",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("rung answer retried: attempts = %d, want 1", resp.Attempts)
	}
	if !resp.Result.Degraded || resp.Result.Rung != engine.RungTrivial {
		t.Fatalf("rung answer: %+v", resp.Result)
	}
}

// The HTTP surface threads precision through: rung in the body and the
// X-Flow-Rung header, adaptive_threshold honored, rungs in /statz, and a
// bad precision mapped to 400.
func TestHTTPPrecision(t *testing.T) {
	svc := newGateService(t, serve.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts,
		`{"program":"gate","secret":"abcdefgh","precision":"static"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out serve.AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Bits != 16 || out.Rung != engine.RungStatic || !out.Degraded {
		t.Fatalf("static over HTTP: %+v, want 16 bits / static rung / degraded", out)
	}
	if got := resp.Header.Get("X-Flow-Rung"); got != engine.RungStatic {
		t.Fatalf("X-Flow-Rung = %q, want static", got)
	}

	// Adaptive with a generous threshold stops at the trivial rung.
	resp, body = postAnalyze(t, ts,
		`{"program":"gate","secret":"ab","precision":"adaptive","adaptive_threshold":100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rung != engine.RungTrivial || out.Bits != 16 {
		t.Fatalf("adaptive over HTTP: %+v, want trivial rung at 16 bits", out)
	}

	resp, body = postAnalyze(t, ts, `{"program":"gate","secret":"ab","precision":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad precision status %d: %s", resp.StatusCode, body)
	}
	var eresp serve.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Kind != "bad-request" {
		t.Fatalf("bad precision kind %q", eresp.Kind)
	}

	statz, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer statz.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(statz.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var rungs map[string]int64
	if err := json.Unmarshal(raw["rungs"], &rungs); err != nil {
		t.Fatalf("statz rungs: %v (%s)", err, raw["rungs"])
	}
	if rungs["static"] != 1 || rungs["trivial"] != 1 {
		t.Fatalf("statz rungs = %v, want static 1 / trivial 1", rungs)
	}
}
