// Package serve is the supervised analysis service: the layer that turns
// the one-shot engine into something that can sit behind heavy traffic.
// It wraps one engine.Analyzer per registered program and owns the
// behaviors a long-lived service needs and the engine deliberately does
// not have:
//
//   - Admission control: a bounded queue in front of a fixed worker pool.
//     Requests that cannot fit (queue full) or cannot make their deadline
//     given the queue depth and an EWMA of recent per-run latency are
//     refused immediately with a typed ErrOverload — before consuming a
//     worker — instead of timing out after wasting one.
//   - Retry with capped exponential backoff and jitter for transient
//     failures (engine.Classify): exceeded budgets retry with the budget
//     grown, and optionally degraded solves retry with more solver work.
//     Permanent failures (cancellation, guest traps, internal errors)
//     are never retried.
//   - A per-program circuit breaker that opens after consecutive
//     ErrInternal results, rejects fast while open, and half-open-probes
//     one request after a cooldown before closing again.
//   - Crash-isolated worker recycling, delegated to the engine: sessions
//     that recovered a panic or outgrew Config.SessionHighWater are
//     discarded rather than pooled (engine.PoolStats counts the churn).
//   - Graceful drain: StartDrain stops admitting, Drain waits for
//     in-flight work; the HTTP layer maps these onto /readyz and SIGTERM.
//
// Every request produces structured log lines carrying the program,
// attempt number, pipeline stage (for internal failures), any scripted
// fault injection, and the outcome — the observability contract the chaos
// soak tests grep.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/ledger"
	"flowcheck/internal/stagecache"
	"flowcheck/internal/vm"
)

// Typed rejection sentinels. OverloadError and BreakerOpenError carry
// detail and match these via errors.Is.
var (
	// ErrOverload marks a request shed by admission control — refused
	// before it consumed a worker, because the queue was full or its
	// deadline could not be met given the current backlog.
	ErrOverload = errors.New("serve: overloaded")
	// ErrBreakerOpen marks a request rejected because its program's
	// circuit breaker is open (recent consecutive internal failures).
	ErrBreakerOpen = errors.New("serve: circuit breaker open")
	// ErrDraining marks a request refused because the service is
	// shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownProgram marks a request naming an unregistered program.
	ErrUnknownProgram = errors.New("serve: unknown program")
	// ErrBadRequest marks a malformed request field (e.g. an unknown
	// precision name) — refused before the ledger or any analysis.
	ErrBadRequest = errors.New("serve: bad request")
)

// OverloadError says why admission refused a request.
type OverloadError struct {
	Reason  string        // "queue-full" or "deadline"
	Queued  int64         // queue depth observed at rejection
	EstWait time.Duration // estimated time to a result (deadline sheds)
}

func (e *OverloadError) Error() string {
	if e.Reason == "deadline" {
		return fmt.Sprintf("serve: overloaded (%s: estimated %v to a result, %d queued)", e.Reason, e.EstWait, e.Queued)
	}
	return fmt.Sprintf("serve: overloaded (%s: %d queued)", e.Reason, e.Queued)
}

func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// Options configures a Service. The zero value gets sensible defaults.
type Options struct {
	// Workers bounds concurrently running analyses (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests admitted but not yet running (default
	// 4×Workers). A full queue sheds with ErrOverload.
	QueueDepth int

	// MaxAttempts bounds tries per request, first attempt included
	// (default 3). Only transient failures (engine.Classify) retry.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff (default 5ms); each retry
	// doubles it up to MaxBackoff (default 250ms), then jitters the
	// result into [d/2, d] to decorrelate retry storms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BackoffSeed seeds the jitter RNG, so tests can fix it.
	BackoffSeed int64
	// DisableBudgetGrowth stops retries of ErrBudget failures from
	// doubling the failed budget each attempt.
	DisableBudgetGrowth bool
	// RetryDegraded retries solver-budget-degraded (but successful)
	// results with the solver budget doubled, returning the degraded
	// result only if no retry produces an exact solve.
	RetryDegraded bool

	// BreakerThreshold is how many consecutive ErrInternal results open a
	// program's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before letting
	// one half-open probe through (default 500ms).
	BreakerCooldown time.Duration

	// SessionHighWater recycles engine sessions whose last run's arena
	// exceeded this many peak live edges (engine.Config.SessionHighWater);
	// applied to registered programs that do not set their own.
	SessionHighWater int

	// Ledger, when non-nil, gates every request through the durable
	// leakage-budget ledger: a pessimistic estimate (8 bits per secret
	// byte — no run can reveal more than the whole secret) is charged
	// before the run, against the request's principal, and settled down to
	// the measured bound after. Over-budget requests are denied with
	// ledger.ErrBudgetExceeded before any analysis runs; ledger I/O faults
	// deny with ledger.ErrUnavailable unless the ledger is fail-open.
	// Cache-hit fast paths are charged too — a cached answer reveals the
	// same bits.
	Ledger *ledger.Ledger

	// CacheBytes, when positive, gives the service a shared
	// content-addressed stage cache of that byte budget, injected into
	// every registered program that does not bring its own
	// (engine.Config.Cache). Warm repeat requests are then answered from
	// the cache before admission queuing — no worker slot, no session —
	// and input-only changes re-solve incrementally. Zero disables
	// caching (the seed behavior).
	CacheBytes int64

	// ShardName, when set, identifies this process in a fleet: every
	// HTTP response carries it as the X-Flow-Shard header, so clients
	// and the coordinator can attribute answers (and failures) to
	// shards. Empty means a standalone service — no header.
	ShardName string

	// Logger receives the structured per-request log lines; nil disables
	// logging.
	Logger *slog.Logger

	// Now overrides the service clock (tests); nil means time.Now.
	Now func() time.Time
	// Sleep overrides backoff sleeping (tests); nil means time.Sleep.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 5 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 250 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Request is one analysis request against a registered program.
type Request struct {
	// Program names a registered program.
	Program string
	// Principal identifies who is asking, for cumulative leakage
	// accounting (Options.Ledger). Empty means "anonymous" — all
	// unattributed requests share one budget, which errs toward denial.
	Principal string
	// Inputs is the execution's secret/public input pair.
	Inputs engine.Inputs
	// Budget, when non-nil, overrides the program's configured budget for
	// this request (served by a one-off analyzer, bypassing the session
	// pool). Budget-growth retries still apply on top of it.
	Budget *engine.Budget
	// Precision, when non-empty, overrides the program's precision-ladder
	// mode for this request: "trivial", "static", "full", or "adaptive"
	// (engine.ParsePrecision). Like Budget, a precision override is served
	// by a one-off analyzer; the cheap rungs never execute the guest, and
	// the static rung answers from the process-global static cache.
	Precision string
	// AdaptiveThreshold is the adaptive mode's escalation threshold in
	// bits: the full solve runs only while the cheap bounds exceed it.
	AdaptiveThreshold int64
	// Classes, when non-empty, asks for per-secret-class disclosure bounds
	// (§10.1) alongside the joint result: the engine executes once and
	// solves one capacity view per class on the shared graph. The ledger is
	// charged the joint bound — not the per-class sum, which double-counts
	// crowded-out capacity. Class requests are always served in shared
	// mode (reexec is an offline oracle, not a service mode) and cannot
	// combine with a Precision override: the cheap rungs never execute, so
	// there is no graph to view.
	Classes []engine.SecretClass
}

// Response is a served analysis result.
type Response struct {
	Program string
	// Attempts is how many runs the request consumed (1 = no retries).
	Attempts int
	// Result is the engine's result for the successful attempt. For class
	// requests it is the joint (all-classes) result — the number the
	// ledger settles against.
	Result *engine.Result
	// Classes holds the per-class measurements for class requests, in
	// request order; nil otherwise.
	Classes []engine.ClassResult
}

// program is one registered program: its analyzer, its base config, and
// its circuit breaker.
type program struct {
	name     string
	prog     *vm.Program
	cfg      engine.Config
	analyzer *engine.Analyzer
	br       breaker
	// retries counts this program's retried attempts (the per-program
	// slice of the service-wide Retried counter).
	retries atomic.Int64
}

// Service is the supervised analysis service. Create with New, add
// programs with Register, then call Analyze from any number of
// goroutines.
type Service struct {
	opts    Options
	log     *slog.Logger
	start   time.Time
	version string

	mu       sync.Mutex
	programs map[string]*program

	slots  chan struct{} // worker tokens; len() = running analyses
	queued atomic.Int64  // admitted, waiting for a worker

	// drainMu serializes admission against StartDrain: Analyze joins the
	// in-flight group under the read lock after re-checking the flag, so
	// Drain's Wait cannot race a late Add.
	drainMu   sync.RWMutex
	draining  atomic.Bool
	inflight  sync.WaitGroup
	inflightN atomic.Int64

	ewmaNS atomic.Int64 // EWMA of per-attempt latency, nanoseconds

	rngMu sync.Mutex
	rng   *rand.Rand

	// cache is the shared content-addressed stage cache (Options.CacheBytes);
	// nil when disabled. cacheFast counts requests answered by the warm
	// fast path — deliberately outside the admitted/completed ledger, since
	// those requests never enter admission.
	cache     *stagecache.Cache
	cacheFast atomic.Int64

	// Counters for Stats; shed counts admission rejections, breakerRej
	// breaker rejections, started individual engine runs.
	admitted   atomic.Int64
	started    atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	retried    atomic.Int64
	shed       atomic.Int64
	breakerRej atomic.Int64
	// ledgerDenied counts budget denials, ledgerUnavail fail-closed
	// denials on ledger I/O faults.
	ledgerDenied  atomic.Int64
	ledgerUnavail atomic.Int64
	// rung counters attribute successful responses (cache hits included)
	// to the precision-ladder rung that produced their bound.
	rungTrivial atomic.Int64
	rungStatic  atomic.Int64
	rungFull    atomic.Int64
}

// buildVersion resolves the running binary's version: the module version
// when built from a tagged release, else the VCS revision (shortened),
// else "unknown" (tests and plain `go run`).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	var rev string
	var dirty bool
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			dirty = kv.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		if dirty {
			rev += "-dirty"
		}
		if v == "" || v == "(devel)" {
			return rev
		}
		return v + " (" + rev + ")"
	}
	if v == "" {
		return "unknown"
	}
	return v
}

// New creates a Service with the given options.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:     opts,
		log:      opts.Logger,
		start:    opts.Now(),
		version:  buildVersion(),
		programs: map[string]*program{},
		slots:    make(chan struct{}, opts.Workers),
		rng:      rand.New(rand.NewSource(opts.BackoffSeed)),
	}
	if opts.CacheBytes > 0 {
		s.cache = stagecache.New(stagecache.Options{MaxBytes: opts.CacheBytes})
	}
	return s
}

// Cache returns the service's shared stage cache; nil when caching is
// disabled.
func (s *Service) Cache() *stagecache.Cache { return s.cache }

// Register adds (or replaces) a program under the given name. The
// service-level SessionHighWater applies unless cfg sets its own.
func (s *Service) Register(name string, prog *vm.Program, cfg engine.Config) {
	if cfg.SessionHighWater == 0 {
		cfg.SessionHighWater = s.opts.SessionHighWater
	}
	if cfg.Cache == nil {
		cfg.Cache = s.cache // nil when caching is disabled
	}
	if cfg.Fault != nil && cfg.Cache != nil {
		// Fault injection makes runs non-reproducible, so the engine
		// refuses to cache them — which silently turns a warm service into
		// a cold one. Say so once, loudly, at registration.
		s.log.Warn("fault injection active: stage cache is bypassed for this program; "+
			"every request takes the slow path (results report cache=bypass/fault-injection)",
			"program", name)
	}
	p := &program{
		name:     name,
		prog:     prog,
		cfg:      cfg,
		analyzer: engine.New(prog, cfg),
		br:       breaker{name: name, threshold: s.opts.BreakerThreshold, cooldown: s.opts.BreakerCooldown},
	}
	s.mu.Lock()
	s.programs[name] = p
	s.mu.Unlock()
}

// Programs lists the registered program names, sorted.
func (s *Service) Programs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.programs))
	for n := range s.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Service) lookup(name string) *program {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.programs[name]
}

// Analyze serves one request: ledger charge, breaker check, admission,
// then the run/retry loop on a worker slot. It is safe for concurrent
// use.
func (s *Service) Analyze(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := s.lookup(req.Program)
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, req.Program)
	}
	if _, err := engine.ParsePrecision(req.Precision); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(req.Classes) > 0 {
		if req.Precision != "" {
			return nil, fmt.Errorf("%w: classes cannot combine with a precision override (the cheap rungs never execute, so there is no graph to solve per class)", ErrBadRequest)
		}
		for _, c := range req.Classes {
			if c.Off < 0 || c.Len < 0 {
				return nil, fmt.Errorf("%w: class %q: negative offset or length", ErrBadRequest, c.Name)
			}
		}
	}
	inj := p.cfg.Fault.Run(0)

	// Leakage-budget gate: charge the pessimistic estimate durably before
	// anything runs — before even the cache fast path, since a cached
	// answer reveals the same bits a fresh run would. Whatever the request
	// then does (hit, run, shed, fail), the charge settles to the bits the
	// response actually carries: measured bits on success, zero on any
	// refusal or error (no program output was released).
	ch, err := s.chargeLedger(p, req, inj)
	if err != nil {
		return nil, err
	}
	resp, err := s.serveAdmitted(ctx, p, req, inj)
	s.settleLedger(ch, resp)
	return resp, err
}

// chargeLedger runs the admission-side half of the ledger protocol. A
// draining service refuses before touching the ledger: no charge, no WAL
// traffic, the same answer admit() would give a moment later.
func (s *Service) chargeLedger(p *program, req Request, inj fault.Injection) (*ledger.Charge, error) {
	if s.opts.Ledger == nil {
		return nil, nil
	}
	if s.draining.Load() {
		s.logOutcome(p, 0, "draining", 0, ErrDraining, inj)
		return nil, ErrDraining
	}
	principal := req.Principal
	if principal == "" {
		principal = "anonymous"
	}
	ch, err := s.opts.Ledger.Charge(principal, p.name, p.ledgerEstimate(req.Inputs))
	if err == nil {
		return ch, nil
	}
	switch {
	case errors.Is(err, ledger.ErrBudgetExceeded):
		s.ledgerDenied.Add(1)
		s.logOutcome(p, 0, "budget-exceeded", 0, err, inj)
	case errors.Is(err, ledger.ErrUnavailable):
		s.ledgerUnavail.Add(1)
		s.logOutcome(p, 0, "ledger-unavailable", 0, err, inj)
	default:
		s.logOutcome(p, 0, "ledger-error", 0, err, inj)
	}
	return nil, err
}

// settleLedger runs the response-side half: settle to the bits actually
// released. A settle failure never fails the response — the bits are
// already out — but it is logged loudly; the charge stays pending at its
// estimate, exactly what a crash-replay would reconstruct.
func (s *Service) settleLedger(ch *ledger.Charge, resp *Response) {
	if ch == nil {
		return
	}
	var bits int64
	if resp != nil && resp.Result != nil {
		bits = resp.Result.Bits
	}
	if err := s.opts.Ledger.Settle(ch, bits); err != nil {
		s.log.Error("ledger settle failed; charge stays pending at its estimate",
			"principal", ch.Principal, "program", ch.Program,
			"estimate_bits", ch.EstimateBits, "actual_bits", bits, "err", err)
	}
}

// ledgerEstimate is the pre-run charge: the program's static capacity
// bound, already capped at 8 bits per secret byte (the pre-ladder
// estimate), so adaptive queriers of read-little programs stop being
// over-charged. Sound for every rung: the flow network's source capacity
// is the secret bytes actually read (≤ min(static, 8·len)), the degraded
// trivial-cut bound min(source, sink) is no larger, and the cheap rungs
// report exactly one of these two numbers. The static analysis is served
// from the process-global cache, so the charge path stays a lookup.
func (p *program) ledgerEstimate(in engine.Inputs) int64 {
	return p.analyzer.StaticBoundBits(len(in.Secret))
}

// serveAdmitted is everything past the ledger gate: cache fast path,
// breaker check, admission, run/retry loop.
func (s *Service) serveAdmitted(ctx context.Context, p *program, req Request, inj fault.Injection) (*Response, error) {
	// Warm-program fast path: a full cache hit is answered before the
	// breaker, the queue, and the worker pool — it costs one lookup and
	// touches no session. Budget and precision overrides change the result
	// key's config half, so they always take the slow path (the cheap
	// precision rungs are themselves no-execution answers); class requests
	// carry their own class-set cache inside the engine; a draining
	// service refuses even warm requests (readyz has already failed the
	// balancer).
	if req.Budget == nil && req.Precision == "" && len(req.Classes) == 0 && !s.draining.Load() {
		if res, ok := p.analyzer.Cached(req.Inputs); ok {
			s.cacheFast.Add(1)
			s.countRung(res.Rung)
			s.log.Info("analyze",
				"program", p.name,
				"attempt", 0,
				"outcome", "cache-hit",
				"bits", res.Bits,
				"rung", res.Rung,
				"cache", res.Cache.Disposition,
				"latency", res.Stages.Lookup,
			)
			return &Response{Program: p.name, Attempts: 0, Result: res}, nil
		}
	}

	if err := p.br.allow(s.opts.Now()); err != nil {
		s.breakerRej.Add(1)
		s.logOutcome(p, 0, "breaker-open", 0, err, inj)
		return nil, err
	}

	releaseSlot, err := s.admit(ctx)
	if err != nil {
		p.br.cancelProbe() // a reserved half-open probe never ran
		if errors.Is(err, ErrOverload) {
			s.shed.Add(1)
			s.logOutcome(p, 0, "shed", 0, err, inj)
		}
		return nil, err
	}
	s.admitted.Add(1)
	s.inflightN.Add(1)
	defer func() {
		releaseSlot()
		s.inflightN.Add(-1)
		s.inflight.Done()
	}()
	return s.attempts(ctx, p, req, inj)
}

// admit is the admission gate: it sheds when the queue is full or the
// request's deadline cannot be met, and otherwise waits for a worker
// slot. It returns the slot-release func. Shed requests never touch the
// slot channel — that is the "before consuming a worker" guarantee.
func (s *Service) admit(ctx context.Context) (release func(), err error) {
	for {
		q := s.queued.Load()
		if q >= int64(s.opts.QueueDepth) {
			return nil, &OverloadError{Reason: "queue-full", Queued: q}
		}
		if dl, ok := ctx.Deadline(); ok {
			if ewma := s.EWMALatency(); ewma > 0 {
				// Everyone queued ahead drains in waves of Workers runs of
				// ~EWMA each; then our own run takes ~EWMA.
				est := time.Duration(q/int64(s.opts.Workers)+1) * ewma
				if s.opts.Now().Add(est).After(dl) {
					return nil, &OverloadError{Reason: "deadline", Queued: q, EstWait: est}
				}
			}
		}
		if !s.queued.CompareAndSwap(q, q+1) {
			continue // raced another admission; re-evaluate
		}
		break
	}
	defer s.queued.Add(-1)

	// Join the in-flight group under the drain lock: after StartDrain no
	// new request can slip past Drain's Wait.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()

	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	case <-ctx.Done():
		s.inflight.Done()
		return nil, &engine.CancelError{Cause: ctx.Err()}
	}
}

// attempts is the run/retry loop for one admitted request, holding a
// worker slot throughout.
func (s *Service) attempts(ctx context.Context, p *program, req Request, inj fault.Injection) (*Response, error) {
	var scale int64 = 1         // budget growth factor for this attempt
	var degraded *engine.Result // best degraded result seen so far
	var degradedAttempt int
	max := s.opts.MaxAttempts
	for attempt := 1; ; attempt++ {
		an := s.analyzerFor(p, req, scale)
		s.started.Add(1)
		t0 := s.opts.Now()
		var res *engine.Result
		var classes []engine.ClassResult
		var err error
		if len(req.Classes) > 0 {
			// One execution, one solve per class; the joint result carries
			// the ledger-relevant bound.
			var ca *engine.ClassAnalysis
			ca, err = an.AnalyzeClassSetContext(ctx, req.Inputs, req.Classes)
			if err == nil {
				res, classes = ca.Joint, ca.Classes
			}
		} else {
			res, err = an.AnalyzeContext(ctx, req.Inputs)
		}
		lat := s.opts.Now().Sub(t0)
		s.observeLatency(lat)

		if err == nil {
			// Only executed solver-budget degradations (which carry a graph)
			// can improve with more solver work; cheap-rung answers are
			// degraded by design and retrying them would change nothing.
			// Class requests never degraded-retry: the per-class views
			// would need their own budgets to be worth re-solving.
			if len(req.Classes) == 0 && res.Degraded && res.Graph != nil && s.opts.RetryDegraded && attempt < max && p.cfg.Budget.SolverWork > 0 {
				// A degraded result is sound but loose; remember it and
				// retry with the solver budget grown. If no retry solves
				// exactly, the degraded bound is still the answer.
				degraded, degradedAttempt = res, attempt
				scale *= 2
				d := s.backoff(attempt)
				s.retried.Add(1)
				p.retries.Add(1)
				s.logOutcome(p, attempt, "degraded-retry", lat, nil, inj)
				s.opts.Sleep(d)
				continue
			}
			p.br.onSuccess(func(prev string) {
				s.log.Info("breaker closed", "program", p.name, "from", prev)
			})
			s.completed.Add(1)
			s.countRung(res.Rung)
			s.log.Info("analyze",
				"program", p.name,
				"attempt", attempt,
				"outcome", "ok",
				"bits", res.Bits,
				"rung", res.Rung,
				"degraded", res.Degraded,
				"trapped", res.Trap != nil,
				"cache", res.Cache.Disposition,
				"classes", len(classes),
				"latency", lat,
				"inject", inj.String(),
			)
			return &Response{Program: p.name, Attempts: attempt, Result: res, Classes: classes}, nil
		}

		// Feed the breaker before deciding on a retry.
		if errors.Is(err, engine.ErrInternal) {
			p.br.onInternal(s.opts.Now(), func(consec int) {
				s.log.Warn("breaker opened", "program", p.name, "consecutive-internal", consec)
			})
		} else {
			p.br.onOther()
		}

		retryable := engine.Classify(err) == engine.ClassTransient && attempt < max
		var wait time.Duration
		if retryable {
			wait = s.backoff(attempt)
			if dl, ok := ctx.Deadline(); ok {
				// Abandon a retry that cannot finish before the deadline:
				// backoff plus one more EWMA-sized run must fit.
				if s.opts.Now().Add(wait + s.EWMALatency()).After(dl) {
					retryable = false
				}
			}
		}
		if !retryable {
			if degraded != nil {
				// A sound degraded bound beats an error: report it, noting
				// the attempts the exact retry burned.
				s.completed.Add(1)
				s.countRung(degraded.Rung)
				s.logOutcome(p, attempt, "degraded-kept", lat, err, inj)
				return &Response{Program: p.name, Attempts: degradedAttempt, Result: degraded}, nil
			}
			s.failed.Add(1)
			s.logOutcome(p, attempt, "failed", lat, err, inj)
			return nil, err
		}
		if errors.Is(err, engine.ErrBudget) && !s.opts.DisableBudgetGrowth {
			scale *= 2
		}
		s.retried.Add(1)
		p.retries.Add(1)
		s.logOutcome(p, attempt, "retry", lat, err, inj)
		s.opts.Sleep(wait)
	}
}

// analyzerFor picks the pooled per-program analyzer, or builds a one-off
// one when the request overrides the budget or precision, a retry grew
// the budget, or a class request hits a program configured for the
// reexec oracle (the service always serves classes in shared mode).
func (s *Service) analyzerFor(p *program, req Request, scale int64) *engine.Analyzer {
	classReexec := len(req.Classes) > 0 && p.cfg.ClassMode == engine.ClassModeReexec
	if req.Budget == nil && req.Precision == "" && scale == 1 && !classReexec {
		return p.analyzer
	}
	cfg := p.cfg
	if classReexec {
		cfg.ClassMode = engine.ClassModeShared
	}
	if req.Budget != nil {
		cfg.Budget = *req.Budget
	}
	if req.Precision != "" {
		// Validated at the top of Analyze; an unparseable value cannot
		// reach here.
		if prec, err := engine.ParsePrecision(req.Precision); err == nil {
			cfg.Precision = prec
			cfg.AdaptiveThreshold = req.AdaptiveThreshold
		}
	}
	if scale > 1 {
		cfg.Budget = growBudget(cfg.Budget, scale)
	}
	return engine.New(p.prog, cfg)
}

// countRung attributes one successful response to the precision-ladder
// rung that produced its bound.
func (s *Service) countRung(rung string) {
	switch rung {
	case engine.RungTrivial:
		s.rungTrivial.Add(1)
	case engine.RungStatic:
		s.rungStatic.Add(1)
	default:
		s.rungFull.Add(1)
	}
}

// growBudget scales every finite cap of b by k; unlimited (zero) caps stay
// unlimited.
func growBudget(b engine.Budget, k int64) engine.Budget {
	if b.MaxGraphNodes > 0 {
		b.MaxGraphNodes = int(int64(b.MaxGraphNodes) * k)
	}
	if b.MaxGraphEdges > 0 {
		b.MaxGraphEdges = int(int64(b.MaxGraphEdges) * k)
	}
	if b.MaxOutputBytes > 0 {
		b.MaxOutputBytes = int(int64(b.MaxOutputBytes) * k)
	}
	if b.SolverWork > 0 {
		b.SolverWork *= k
	}
	return b
}

// backoff computes the capped, jittered exponential backoff after the
// given attempt number (1-based).
func (s *Service) backoff(attempt int) time.Duration {
	d := s.opts.BaseBackoff
	for i := 1; i < attempt && d < s.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.opts.MaxBackoff {
		d = s.opts.MaxBackoff
	}
	// Jitter into [d/2, d] to decorrelate concurrent retries.
	s.rngMu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d/2) + 1))
	s.rngMu.Unlock()
	return d/2 + j
}

// observeLatency folds one run's latency into the admission EWMA
// (alpha = 1/4; the first sample seeds it).
func (s *Service) observeLatency(d time.Duration) {
	for {
		old := s.ewmaNS.Load()
		nw := int64(d)
		if old != 0 {
			nw = old - old/4 + int64(d)/4
		}
		if s.ewmaNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// EWMALatency is the admission controller's current per-run latency
// estimate (zero until the first run completes).
func (s *Service) EWMALatency() time.Duration {
	return time.Duration(s.ewmaNS.Load())
}

// logOutcome emits the structured per-request line for non-ok outcomes,
// carrying the stage (for internal failures) and any scripted injection so
// chaos-sweep logs read back to their cause.
func (s *Service) logOutcome(p *program, attempt int, outcome string, lat time.Duration, err error, inj fault.Injection) {
	attrs := []any{
		"program", p.name,
		"attempt", attempt,
		"outcome", outcome,
		"stage", stageOf(err).String(),
		"inject", inj.String(),
	}
	if lat > 0 {
		attrs = append(attrs, "latency", lat)
	}
	if err != nil {
		attrs = append(attrs, "err", err.Error())
	}
	if outcome == "failed" {
		s.log.Warn("analyze", attrs...)
		return
	}
	s.log.Info("analyze", attrs...)
}

// stageOf extracts the pipeline stage of an internal failure.
func stageOf(err error) fault.Stage {
	var ie *engine.InternalError
	if errors.As(err, &ie) {
		return ie.Stage
	}
	return ""
}

// StartDrain stops admitting new requests (idempotent). In-flight
// requests keep running; Drain waits for them.
func (s *Service) StartDrain() {
	s.drainMu.Lock()
	first := !s.draining.Swap(true)
	s.drainMu.Unlock()
	if first {
		s.log.Info("service draining", "in-flight", s.inflightN.Load(), "queued", s.queued.Load())
	}
}

// Draining reports whether the service has stopped admitting requests.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain stops admission and waits for all in-flight requests to finish,
// or for ctx to expire.
func (s *Service) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("service drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d requests in flight: %w", s.inflightN.Load(), ctx.Err())
	}
}

// ProgramStats is one program's health snapshot.
type ProgramStats struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"` // closed, open, half-open
	// ConsecutiveInternal is the breaker's current ErrInternal streak.
	ConsecutiveInternal int   `json:"consecutive_internal"`
	BreakerOpens        int64 `json:"breaker_opens"`
	// Retries is this program's share of the service-wide Retried counter.
	Retries int64            `json:"retries"`
	Pool    engine.PoolStats `json:"pool"`
}

// Stats is the service-wide health snapshot served on /healthz.
type Stats struct {
	// StartTime is when the process's Service was created (RFC 3339);
	// Version is the build's module version or VCS revision.
	StartTime       string `json:"start_time"`
	Version         string `json:"version"`
	UptimeMS        int64  `json:"uptime_ms"`
	Workers         int    `json:"workers"`
	QueueDepth      int    `json:"queue_depth"`
	Queued          int64  `json:"queued"`
	InFlight        int64  `json:"in_flight"`
	Admitted        int64  `json:"admitted"`
	Started         int64  `json:"started"` // engine runs, retries included
	Completed       int64  `json:"completed"`
	Failed          int64  `json:"failed"`
	Retried         int64  `json:"retried"`
	Shed            int64  `json:"shed"`
	BreakerRejected int64  `json:"breaker_rejected"`
	EWMALatencyUS   int64  `json:"ewma_latency_us"`
	Draining        bool   `json:"draining"`
	// CacheFastPath counts requests answered by the warm fast path; they
	// bypass admission, so they are not part of the admitted/completed
	// ledger. Cache snapshots the shared stage cache (nil when disabled).
	CacheFastPath int64             `json:"cache_fast_path"`
	Cache         *stagecache.Stats `json:"cache,omitempty"`
	// LedgerDenied counts requests denied over leakage budget,
	// LedgerUnavailable fail-closed denials on ledger I/O faults; Ledger
	// is the full ledger snapshot (nil when no ledger is configured).
	LedgerDenied      int64         `json:"ledger_denied"`
	LedgerUnavailable int64         `json:"ledger_unavailable"`
	Ledger            *ledger.Stats `json:"ledger,omitempty"`
	// Rung counters attribute successful responses (cache hits included)
	// to the precision-ladder rung that produced their bound.
	RungTrivial int64          `json:"rung_trivial"`
	RungStatic  int64          `json:"rung_static"`
	RungFull    int64          `json:"rung_full"`
	Programs    []ProgramStats `json:"programs"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	st := Stats{
		StartTime:         s.start.UTC().Format(time.RFC3339),
		Version:           s.version,
		UptimeMS:          s.opts.Now().Sub(s.start).Milliseconds(),
		Workers:           s.opts.Workers,
		QueueDepth:        s.opts.QueueDepth,
		Queued:            s.queued.Load(),
		InFlight:          s.inflightN.Load(),
		Admitted:          s.admitted.Load(),
		Started:           s.started.Load(),
		Completed:         s.completed.Load(),
		Failed:            s.failed.Load(),
		Retried:           s.retried.Load(),
		Shed:              s.shed.Load(),
		BreakerRejected:   s.breakerRej.Load(),
		EWMALatencyUS:     s.EWMALatency().Microseconds(),
		Draining:          s.draining.Load(),
		CacheFastPath:     s.cacheFast.Load(),
		LedgerDenied:      s.ledgerDenied.Load(),
		LedgerUnavailable: s.ledgerUnavail.Load(),
		RungTrivial:       s.rungTrivial.Load(),
		RungStatic:        s.rungStatic.Load(),
		RungFull:          s.rungFull.Load(),
	}
	if s.cache != nil {
		cst := s.cache.Stats()
		st.Cache = &cst
	}
	if s.opts.Ledger != nil {
		lst := s.opts.Ledger.Stats()
		st.Ledger = &lst
	}
	s.mu.Lock()
	progs := make([]*program, 0, len(s.programs))
	for _, p := range s.programs {
		progs = append(progs, p)
	}
	s.mu.Unlock()
	sort.Slice(progs, func(i, j int) bool { return progs[i].name < progs[j].name })
	for _, p := range progs {
		snap := p.br.snapshot()
		st.Programs = append(st.Programs, ProgramStats{
			Name:                p.name,
			Breaker:             snap.State,
			ConsecutiveInternal: snap.Consecutive,
			BreakerOpens:        snap.Opens,
			Retries:             p.retries.Load(),
			Pool:                p.analyzer.Pool(),
		})
	}
	return st
}
