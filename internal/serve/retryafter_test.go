package serve_test

import (
	"encoding/base64"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/ledger"
	"flowcheck/internal/serve"
)

func unaryBody(secret byte) string {
	return `{"program":"unary","secret_b64":"` + base64.StdEncoding.EncodeToString([]byte{secret}) + `"}`
}

// A 429 from a windowed budget carries Retry-After: the window tells the
// principal exactly when settled bits decay and waiting becomes useful.
func TestHTTP429RetryAfterFromLedgerWindow(t *testing.T) {
	direct, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{200}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	budget := direct.Bits + 4
	if budget < 8 {
		budget = 8 // the 1-byte pre-run estimate must fit once
	}
	led, err := ledger.Open(ledger.Options{BudgetBits: budget, Window: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	svc := newService(t, serve.Options{Ledger: led})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, _ := postAnalyze(t, ts, unaryBody(200))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", resp.StatusCode)
	}
	resp, body := postAnalyze(t, ts, unaryBody(200))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d (%s), want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("windowed 429 missing Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After %q outside the 30s window", ra)
	}
}

// A lifetime budget (no decay window) has no honest retry hint: waiting
// will never help, so the 429 must NOT advertise Retry-After.
func TestHTTP429LifetimeBudgetHasNoRetryAfter(t *testing.T) {
	led, err := ledger.Open(ledger.Options{BudgetBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	svc := newService(t, serve.Options{Ledger: led})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if resp, _ := postAnalyze(t, ts, unaryBody(200)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", resp.StatusCode)
	}
	resp, _ := postAnalyze(t, ts, unaryBody(200))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("lifetime-budget 429 advertises Retry-After %q; waiting cannot help", ra)
	}
}

// An open circuit breaker's 503 carries the remaining cooldown as
// Retry-After, so clients back off for exactly as long as the breaker
// will keep rejecting.
func TestHTTP503BreakerRetryAfter(t *testing.T) {
	svc := serve.New(serve.Options{BreakerThreshold: 1, BreakerCooldown: 2 * time.Second})
	svc.Register("boom", guest.Program("unary"), engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{PanicStage: fault.StageSolve}),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, _ := postAnalyze(t, ts, `{"program":"boom","secret_b64":"yA=="}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic returned %d, want 500", resp.StatusCode)
	}
	resp, body := postAnalyze(t, ts, `{"program":"boom","secret_b64":"yA=="}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker returned %d (%s), want 503", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 2 {
		t.Fatalf("breaker 503 Retry-After %q, want the ≤2s remaining cooldown", ra)
	}
}
