package serve_test

import (
	"encoding/base64"
	"reflect"
	"strings"
	"testing"

	"flowcheck/internal/engine"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

func wireTestGraph() *flowgraph.Graph {
	g := flowgraph.New()
	g.EnsureNodes(5)
	g.AddEdge(flowgraph.Source, 2, 8, flowgraph.Label{Site: 10, Kind: flowgraph.KindInput})
	g.AddEdge(2, 3, 1<<40, flowgraph.Label{Site: 11, Ctx: 0xdeadbeef, Aux: 2})
	g.AddEdge(3, flowgraph.Sink, 7, flowgraph.Label{Site: 12, Kind: flowgraph.KindOutput})
	return g
}

func TestWireGraphRoundTrip(t *testing.T) {
	g := wireTestGraph()
	w := serve.EncodeGraph(g, true)
	if w.Nodes != g.NumNodes() || w.Edges != g.NumEdges() || !w.Exact {
		t.Fatalf("wire header %+v does not match graph (%d nodes, %d edges)", w, g.NumNodes(), g.NumEdges())
	}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() {
		t.Fatalf("decoded %d nodes, want %d", got.NumNodes(), g.NumNodes())
	}
	if !reflect.DeepEqual(got.Edges, g.Edges) {
		t.Fatalf("decoded edges differ:\n got %+v\nwant %+v", got.Edges, g.Edges)
	}
}

// The wire format must survive a real engine-produced graph exactly —
// edge order included, since order is what keys the deterministic merge.
func TestWireGraphRoundTripEngineGraph(t *testing.T) {
	res, err := engine.Analyze(guest.Program("count_punct"), engine.Inputs{Secret: []byte("hello, world")}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := serve.EncodeGraph(res.Graph, false).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Edges, res.Graph.Edges) {
		t.Fatalf("engine graph did not survive the wire (%d vs %d edges)", got.NumEdges(), res.Graph.NumEdges())
	}
}

func TestEncodeGraphNil(t *testing.T) {
	if serve.EncodeGraph(nil, true) != nil {
		t.Fatal("nil graph must encode to nil")
	}
	var w *serve.WireGraph
	if _, err := w.Decode(); err == nil {
		t.Fatal("nil wire graph must fail to decode")
	}
}

// Corrupt and adversarial payloads must fail with errors, never panic:
// the coordinator decodes bytes that crossed a network.
func TestWireGraphDecodeRejectsCorruption(t *testing.T) {
	good := serve.EncodeGraph(wireTestGraph(), false)
	raw, _ := base64.StdEncoding.DecodeString(good.Data)

	corrupt := func(name string, mutate func(w *serve.WireGraph)) {
		t.Helper()
		w := *good
		mutate(&w)
		if _, err := w.Decode(); err == nil {
			t.Errorf("%s: decode succeeded on corrupt payload", name)
		}
	}

	corrupt("not base64", func(w *serve.WireGraph) { w.Data = "!!!" })
	corrupt("bad magic", func(w *serve.WireGraph) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		w.Data = base64.StdEncoding.EncodeToString(bad)
	})
	corrupt("truncated", func(w *serve.WireGraph) {
		w.Data = base64.StdEncoding.EncodeToString(raw[:len(raw)-3])
	})
	corrupt("edge count mismatch", func(w *serve.WireGraph) { w.Edges++ })
	corrupt("too few nodes", func(w *serve.WireGraph) { w.Nodes = 1 })
	corrupt("endpoint out of range", func(w *serve.WireGraph) { w.Nodes = 3 }) // edge 2→3 now dangles
	corrupt("negative capacity", func(w *serve.WireGraph) {
		bad := append([]byte(nil), raw...)
		// First edge's cap is a little-endian i64 at offset magic+8.
		off := len("FG1\n") + 8
		for i := 0; i < 8; i++ {
			bad[off+i] = 0xff
		}
		w.Data = base64.StdEncoding.EncodeToString(bad)
	})

	// Error text should identify the wire layer, not leak a panic trace.
	w := *good
	w.Nodes = 1
	_, err := w.Decode()
	if err == nil || !strings.Contains(err.Error(), "wire graph") {
		t.Fatalf("corruption error %v should mention the wire graph", err)
	}
}
