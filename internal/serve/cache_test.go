package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flowcheck/internal/engine"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

func newCachedService(t *testing.T) *serve.Service {
	t.Helper()
	svc := serve.New(serve.Options{CacheBytes: 32 << 20})
	svc.Register("unary", guest.Program("unary"), engine.Config{})
	return svc
}

// TestCacheFastPath: a repeat request is answered before admission — zero
// attempts, the admitted/completed ledger untouched, fast-path counter up.
func TestCacheFastPath(t *testing.T) {
	svc := newCachedService(t)
	cold, err := svc.Analyze(context.Background(), req(42))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Result.Cache.Disposition != engine.CacheMiss {
		t.Fatalf("cold disposition = %q, want %q", cold.Result.Cache.Disposition, engine.CacheMiss)
	}
	ledger := svc.Stats()

	warm, err := svc.Analyze(context.Background(), req(42))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Attempts != 0 {
		t.Fatalf("warm attempts = %d, want 0 (never admitted)", warm.Attempts)
	}
	if warm.Result.Cache.Disposition != engine.CacheHit {
		t.Fatalf("warm disposition = %q, want %q", warm.Result.Cache.Disposition, engine.CacheHit)
	}
	if warm.Result.Bits != cold.Result.Bits {
		t.Fatalf("warm bits %d != cold bits %d", warm.Result.Bits, cold.Result.Bits)
	}
	st := svc.Stats()
	if st.CacheFastPath != 1 {
		t.Fatalf("fast-path counter = %d, want 1", st.CacheFastPath)
	}
	if st.Admitted != ledger.Admitted || st.Completed != ledger.Completed || st.Started != ledger.Started {
		t.Fatalf("fast path moved the admission ledger: before %+v after %+v", ledger, st)
	}
	if st.Cache == nil {
		t.Fatal("Stats.Cache is nil with caching enabled")
	}
	if ks := st.Cache.Kinds[engine.KindResult]; ks.Hits == 0 {
		t.Fatalf("no result hits recorded: %+v", st.Cache.Kinds)
	}
}

// TestCacheBudgetOverrideTakesSlowPath: a budget override keys a
// different config, so it must not be served from the warm default-config
// entry.
func TestCacheBudgetOverrideTakesSlowPath(t *testing.T) {
	svc := newCachedService(t)
	if _, err := svc.Analyze(context.Background(), req(42)); err != nil {
		t.Fatal(err)
	}
	r := req(42)
	r.Budget = &engine.Budget{SolverWork: 1 << 40}
	resp, err := svc.Analyze(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts == 0 {
		t.Fatal("budget-override request took the fast path")
	}
	if svc.Stats().CacheFastPath != 0 {
		t.Fatal("fast-path counter moved for a budget override")
	}
}

// TestCacheDrainingRefusesFastPath: once draining, even warm requests are
// refused — the drain contract beats the cache.
func TestCacheDrainingRefusesFastPath(t *testing.T) {
	svc := newCachedService(t)
	if _, err := svc.Analyze(context.Background(), req(42)); err != nil {
		t.Fatal(err)
	}
	svc.StartDrain()
	if _, err := svc.Analyze(context.Background(), req(42)); err == nil {
		t.Fatal("draining service served a warm request")
	}
}

// TestCacheDisabledByDefault: without CacheBytes the service behaves like
// the seed — no disposition, no fast path, nil cache stats.
func TestCacheDisabledByDefault(t *testing.T) {
	svc := newService(t, serve.Options{})
	for i := 0; i < 2; i++ {
		resp, err := svc.Analyze(context.Background(), req(42))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.Cache.Disposition != "" {
			t.Fatalf("disposition = %q with caching disabled", resp.Result.Cache.Disposition)
		}
		if resp.Attempts != 1 {
			t.Fatalf("attempts = %d, want 1", resp.Attempts)
		}
	}
	st := svc.Stats()
	if st.Cache != nil || st.CacheFastPath != 0 {
		t.Fatalf("cache stats present with caching disabled: %+v", st)
	}
}

// TestHTTPCacheDisposition: the JSON field and X-Flow-Cache header carry
// the disposition, and /statz reports counters and hit ratios.
func TestHTTPCacheDisposition(t *testing.T) {
	svc := newCachedService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func() (string, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/analyze", "application/json",
			strings.NewReader(`{"program":"unary","secret":"A"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Cache string `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Cache, resp.Header.Get("X-Flow-Cache")
	}

	if field, hdr := post(); field != "miss" || hdr != "miss" {
		t.Fatalf("cold request: cache field %q, header %q; want miss/miss", field, hdr)
	}
	if field, hdr := post(); field != "hit" || hdr != "hit" {
		t.Fatalf("warm request: cache field %q, header %q; want hit/hit", field, hdr)
	}

	sresp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz struct {
		CacheEnabled  bool  `json:"cache_enabled"`
		CacheFastPath int64 `json:"cache_fast_path"`
		Cache         *struct {
			Bytes int64 `json:"bytes"`
			Kinds map[string]struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"kinds"`
			HitRatios map[string]float64 `json:"hit_ratios"`
		} `json:"cache"`
		GlobalCache struct {
			Kinds map[string]json.RawMessage `json:"kinds"`
		} `json:"global_cache"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if !statz.CacheEnabled {
		t.Fatal("/statz says caching is disabled")
	}
	if statz.CacheFastPath != 1 {
		t.Fatalf("/statz fast path = %d, want 1", statz.CacheFastPath)
	}
	if statz.Cache == nil || statz.Cache.Bytes <= 0 {
		t.Fatalf("/statz cache bytes missing: %+v", statz.Cache)
	}
	rk := statz.Cache.Kinds["result"]
	if rk.Hits != 1 || rk.Misses != 1 {
		t.Fatalf("/statz result kind = %+v, want 1 hit / 1 miss", rk)
	}
	if ratio := statz.Cache.HitRatios["result"]; ratio != 0.5 {
		t.Fatalf("/statz result hit ratio = %v, want 0.5", ratio)
	}
}

// TestServiceCacheSoak hammers a cached service from many goroutines over
// a small input space and checks the ledgers stay consistent: every
// request is either fast-pathed or admitted, the cache stays within
// budget, and warm traffic converges onto the cache. Short-friendly: CI's
// service-smoke job runs it with -short.
func TestServiceCacheSoak(t *testing.T) {
	svc := serve.New(serve.Options{CacheBytes: 16 << 20, Workers: 4, QueueDepth: 64})
	for _, name := range []string{"unary", "sshauth"} {
		svc.Register(name, guest.Program(name), engine.Config{})
	}
	goroutines, perG := 8, 60
	if testing.Short() {
		goroutines, perG = 4, 25
	}
	var wg sync.WaitGroup
	var failures sync.Map
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := "unary"
				if (g+i)%2 == 0 {
					name = "sshauth"
				}
				secret := []byte{byte(i % 8)}
				if name == "sshauth" {
					secret = []byte(fmt.Sprintf("%08d", i%8))
				}
				_, err := svc.Analyze(context.Background(), serve.Request{
					Program: name,
					Inputs:  engine.Inputs{Secret: secret},
				})
				if err != nil && !errors.Is(err, serve.ErrOverload) {
					// Shedding under deliberate overdrive is correct
					// behavior and stays in the ledger; anything else fails.
					failures.Store(fmt.Sprintf("g%d/i%d", g, i), err)
				}
			}
		}(g)
	}
	wg.Wait()
	failures.Range(func(k, v any) bool {
		t.Errorf("%s: %v", k, v)
		return true
	})

	st := svc.Stats()
	total := int64(goroutines * perG)
	if st.CacheFastPath+st.Admitted+st.Shed != total {
		t.Fatalf("request ledger: fast-path %d + admitted %d + shed %d != total %d",
			st.CacheFastPath, st.Admitted, st.Shed, total)
	}
	if st.Admitted != st.Completed+st.Failed {
		t.Fatalf("admission ledger: admitted %d != completed %d + failed %d", st.Admitted, st.Completed, st.Failed)
	}
	if st.CacheFastPath == 0 {
		t.Fatal("soak over 16 inputs never took the fast path")
	}
	if st.Cache == nil {
		t.Fatal("cache stats missing")
	}
	if st.Cache.Bytes > st.Cache.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Cache.Bytes, st.Cache.MaxBytes)
	}
	ks := st.Cache.Kinds[engine.KindResult]
	if ks.Hits+ks.Coalesced == 0 {
		t.Fatalf("soak recorded no result cache reuse: %+v", ks)
	}
}
