package serve_test

// ledger_test.go covers the service side of the leakage-budget ledger:
// charge-before-run/settle-after-run around the full request path
// (including the cache fast path), typed budget and availability
// denials end to end over HTTP, the drain-vs-charge ordering, and the
// concurrent StartDrain/admission race under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/ledger"
	"flowcheck/internal/serve"
)

func newLedger(t *testing.T, opts ledger.Options) *ledger.Ledger {
	t.Helper()
	l, err := ledger.Open(opts)
	if err != nil {
		t.Fatalf("ledger.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func principalReq(principal string, secret ...byte) serve.Request {
	r := req(secret...)
	r.Principal = principal
	return r
}

func TestLedgerChargesAndSettlesToMeasuredBits(t *testing.T) {
	led := newLedger(t, ledger.Options{Dir: t.TempDir(), BudgetBits: 1000})
	svc := newService(t, serve.Options{Ledger: led})

	resp, err := svc.Analyze(context.Background(), principalReq("alice", 200))
	if err != nil {
		t.Fatal(err)
	}
	// The charge settled down from the 8-bit estimate (1 secret byte) to
	// the measured bound.
	if got := led.Cumulative("alice", "unary"); got != resp.Result.Bits {
		t.Fatalf("cumulative = %d, want the measured %d", got, resp.Result.Bits)
	}
	lst := led.Stats()
	if lst.Charged != 1 || lst.Settled != 1 {
		t.Fatalf("ledger charged=%d settled=%d, want 1/1", lst.Charged, lst.Settled)
	}
	st := svc.Stats()
	if st.Ledger == nil || st.Ledger.Settled != 1 {
		t.Fatalf("service stats missing ledger section: %+v", st.Ledger)
	}
	if st.StartTime == "" || st.Version == "" {
		t.Fatalf("service stats missing identity: start=%q version=%q", st.StartTime, st.Version)
	}
}

func TestLedgerUnattributedRequestsShareAnonymous(t *testing.T) {
	led := newLedger(t, ledger.Options{BudgetBits: 1000})
	svc := newService(t, serve.Options{Ledger: led})
	if _, err := svc.Analyze(context.Background(), req(200)); err != nil {
		t.Fatal(err)
	}
	if got := led.Cumulative("anonymous", "unary"); got <= 0 {
		t.Fatalf("anonymous cumulative = %d, want > 0", got)
	}
}

func TestLedgerDeniesOverBudget(t *testing.T) {
	// Budget of 8: the first 1-byte request fits exactly (estimate 8),
	// settles lower, and requests keep fitting until cumulative + 8 > 8.
	led := newLedger(t, ledger.Options{BudgetBits: 8})
	svc := newService(t, serve.Options{Ledger: led})

	var denied error
	for i := 0; i < 50; i++ {
		_, err := svc.Analyze(context.Background(), principalReq("alice", 200))
		if err != nil {
			denied = err
			break
		}
	}
	if !errors.Is(denied, ledger.ErrBudgetExceeded) {
		t.Fatalf("never denied, or wrong error: %v", denied)
	}
	var ex *ledger.ExceededError
	if !errors.As(denied, &ex) || ex.Principal != "alice" || ex.Program != "unary" {
		t.Fatalf("denial detail %+v", denied)
	}
	if svc.Stats().LedgerDenied == 0 {
		t.Fatal("LedgerDenied counter not incremented")
	}
	// A different principal is unaffected.
	if _, err := svc.Analyze(context.Background(), principalReq("bob", 200)); err != nil {
		t.Fatalf("bob denied by alice's exhaustion: %v", err)
	}
}

func TestLedgerChargesCacheHits(t *testing.T) {
	led := newLedger(t, ledger.Options{BudgetBits: 1000})
	svc := newService(t, serve.Options{Ledger: led, CacheBytes: 8 << 20})

	r1, err := svc.Analyze(context.Background(), principalReq("alice", 200))
	if err != nil {
		t.Fatal(err)
	}
	after1 := led.Cumulative("alice", "unary")
	r2, err := svc.Analyze(context.Background(), principalReq("alice", 200))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Attempts != 0 {
		t.Fatalf("second request attempts = %d, want 0 (cache fast path)", r2.Attempts)
	}
	// The hit revealed the same bits; the ledger must have charged it.
	if got := led.Cumulative("alice", "unary"); got != after1+r1.Result.Bits {
		t.Fatalf("cumulative after hit = %d, want %d", got, after1+r1.Result.Bits)
	}
}

func TestLedgerFailClosedDeniesAdmission(t *testing.T) {
	plan := fault.NewIOPlan().FailWrite(0)
	led := newLedger(t, ledger.Options{Dir: t.TempDir(), BudgetBits: 1000, Faults: plan})
	svc := newService(t, serve.Options{Ledger: led})

	_, err := svc.Analyze(context.Background(), principalReq("alice", 200))
	if !errors.Is(err, ledger.ErrUnavailable) {
		t.Fatalf("got %v, want ledger.ErrUnavailable", err)
	}
	st := svc.Stats()
	if st.LedgerUnavailable != 1 {
		t.Fatalf("LedgerUnavailable = %d, want 1", st.LedgerUnavailable)
	}
	if st.Started != 0 {
		t.Fatalf("a denied request started an engine run (started=%d)", st.Started)
	}
	// The fault was one-shot; the service recovers.
	if _, err := svc.Analyze(context.Background(), principalReq("alice", 200)); err != nil {
		t.Fatalf("post-fault request: %v", err)
	}
}

func TestLedgerHTTPOutcomes(t *testing.T) {
	led := newLedger(t, ledger.Options{BudgetBits: 8})
	svc := newService(t, serve.Options{Ledger: led})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// First request fits (estimate 8 ≤ budget 8) and reports remaining.
	resp, body := postAnalyze(t, ts, `{"program":"unary","principal":"alice","secret_b64":"yA==","timeout_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out serve.AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.RemainingBudgetBits == nil || *out.RemainingBudgetBits != 8-out.Bits {
		t.Fatalf("remaining budget %v, want %d", out.RemainingBudgetBits, 8-out.Bits)
	}
	if resp.Header.Get("X-Flow-Budget-Remaining") == "" {
		t.Fatal("no X-Flow-Budget-Remaining header")
	}

	// Exhaust the budget, then expect 429 with the typed kind.
	for i := 0; i < 50; i++ {
		resp, _ = postAnalyze(t, ts, `{"program":"unary","principal":"alice","secret_b64":"yA==","timeout_ms":5000}`)
		if resp.StatusCode != http.StatusOK {
			break
		}
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted principal got %d, want 429", resp.StatusCode)
	}
	resp, body = postAnalyze(t, ts, `{"program":"unary","principal":"alice","secret_b64":"yA==","timeout_ms":5000}`)
	var eresp serve.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || eresp.Kind != "budget-exceeded" {
		t.Fatalf("status %d kind %q, want 429 budget-exceeded", resp.StatusCode, eresp.Kind)
	}

	// The X-Flow-Principal header wins over the body field.
	resp, _ = postAnalyze(t, ts, `{"program":"unary","secret_b64":"yA==","timeout_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous principal caught alice's denial: %d", resp.StatusCode)
	}

	// /statz carries the ledger, program, and service-identity sections.
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz struct {
		Service struct {
			StartTime string `json:"start_time"`
			Version   string `json:"version"`
		} `json:"service"`
		Programs []serve.ProgramStats `json:"programs"`
		Ledger   *ledger.Stats        `json:"ledger"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Service.StartTime == "" || statz.Service.Version == "" {
		t.Fatalf("statz missing service identity: %+v", statz.Service)
	}
	if len(statz.Programs) == 0 {
		t.Fatal("statz missing programs section")
	}
	if statz.Ledger == nil || statz.Ledger.Denied == 0 {
		t.Fatalf("statz ledger section %+v, want denials recorded", statz.Ledger)
	}
	if len(statz.Ledger.NearThreshold) == 0 ||
		!strings.Contains(statz.Ledger.NearThreshold[0], "alice") {
		t.Fatalf("alice exhausted but not near-threshold: %v", statz.Ledger.NearThreshold)
	}
}

func TestLedgerHTTPUnavailableOutcome(t *testing.T) {
	plan := fault.NewIOPlan().FailWrite(0)
	led := newLedger(t, ledger.Options{Dir: t.TempDir(), Faults: plan})
	svc := newService(t, serve.Options{Ledger: led})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts, `{"program":"unary","secret_b64":"yA==","timeout_ms":5000}`)
	var eresp serve.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eresp.Kind != "ledger-unavailable" {
		t.Fatalf("status %d kind %q, want 503 ledger-unavailable", resp.StatusCode, eresp.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestDrainedServiceRejectsChargesWALIntact is the drain regression: a
// drained service must refuse before touching the ledger, leaving the WAL
// byte-identical and replayable.
func TestDrainedServiceRejectsChargesWALIntact(t *testing.T) {
	dir := t.TempDir()
	led := newLedger(t, ledger.Options{Dir: dir, BudgetBits: 1000})
	svc := newService(t, serve.Options{Ledger: led})

	if _, err := svc.Analyze(context.Background(), principalReq("alice", 200)); err != nil {
		t.Fatal(err)
	}
	before := led.Stats()

	svc.StartDrain()
	for i := 0; i < 5; i++ {
		_, err := svc.Analyze(context.Background(), principalReq("alice", 200))
		if !errors.Is(err, serve.ErrDraining) {
			t.Fatalf("drained service: got %v, want ErrDraining", err)
		}
	}
	after := led.Stats()
	if after.Charged != before.Charged || after.Appends != before.Appends || after.WALBytes != before.WALBytes {
		t.Fatalf("drained rejections touched the ledger: before %+v after %+v", before, after)
	}

	// The WAL is intact: a fresh ledger replays it cleanly to the same bits.
	liveBits := led.Cumulative("alice", "unary")
	if liveBits <= 0 {
		t.Fatalf("live cumulative = %d, want > 0", liveBits)
	}
	led.Close()
	l2 := newLedger(t, ledger.Options{Dir: dir})
	if st := l2.Stats(); st.Truncations != 0 {
		t.Fatalf("WAL corrupted by drained rejections: %+v", st)
	}
	if got := l2.Cumulative("alice", "unary"); got != liveBits {
		t.Fatalf("replayed bits %d != live bits %d", got, liveBits)
	}
}

// TestDrainVsAdmissionRace runs StartDrain concurrently with a burst of
// admissions (run under -race). Every request must either complete
// normally or fail with the typed draining error, and when the dust
// settles the ledger must have no dangling pending charges: each
// successful charge was settled exactly once.
func TestDrainVsAdmissionRace(t *testing.T) {
	led := newLedger(t, ledger.Options{Dir: t.TempDir(), BudgetBits: 1 << 40})
	svc := newService(t, serve.Options{Workers: 4, Ledger: led})

	const requesters = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	var mu sync.Mutex
	var unexpected []error
	for g := 0; g < requesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				_, err := svc.Analyze(context.Background(), principalReq("racer", byte(g*20+i)))
				switch {
				case err == nil:
				case errors.Is(err, serve.ErrDraining):
				case errors.Is(err, serve.ErrOverload):
				default:
					mu.Lock()
					unexpected = append(unexpected, err)
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		svc.StartDrain()
	}()
	close(start)
	wg.Wait()
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(unexpected) > 0 {
		t.Fatalf("unexpected errors during drain race: %v", unexpected)
	}

	lst := led.Stats()
	for _, e := range lst.Entries {
		if e.PendingBits != 0 {
			t.Fatalf("dangling pending charge after drain: %+v", e)
		}
	}
	if lst.Settled != lst.Charged-lst.Denied {
		t.Fatalf("charged=%d settled=%d denied=%d: some charge was never settled",
			lst.Charged, lst.Settled, lst.Denied)
	}
}

func TestRegisterWarnsOnFaultCacheBypass(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	svc := serve.New(serve.Options{
		CacheBytes: 1 << 20,
		Logger:     slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil)),
	})
	svc.Register("faulty", guest.Program("unary"), engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{}),
	})
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "stage cache is bypassed") {
		t.Fatalf("no bypass warning at registration; log: %s", logged)
	}

	// And the served result carries the machine-readable reason.
	resp, err := svc.Analyze(context.Background(), serve.Request{
		Program: "faulty", Inputs: engine.Inputs{Secret: []byte{200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Cache.Disposition != engine.CacheBypass ||
		resp.Result.Cache.BypassReason != "fault-injection" {
		t.Fatalf("cache trace %+v, want bypass/fault-injection", resp.Result.Cache)
	}
}
