package serve

import (
	"errors"
	"testing"
	"time"
)

// The breaker state machine under a fake clock: closed → open at the
// threshold, open → half-open after the cooldown (one probe), probe
// success → closed, probe failure → open again; non-internal outcomes
// break the streak without closing a non-closed breaker.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &breaker{name: "p", threshold: 3, cooldown: time.Second}

	// Internal failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if err := b.allow(now); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.onInternal(now, nil)
	}
	if s := b.snapshot(); s.State != "closed" || s.Consecutive != 2 {
		t.Fatalf("snapshot %+v, want closed/2", s)
	}

	// A success resets the streak.
	if err := b.allow(now); err != nil {
		t.Fatal(err)
	}
	b.onSuccess(nil)
	if s := b.snapshot(); s.Consecutive != 0 {
		t.Fatalf("success did not reset streak: %+v", s)
	}

	// Threshold consecutive internals open it.
	opened := 0
	for i := 0; i < 3; i++ {
		if err := b.allow(now); err != nil {
			t.Fatal(err)
		}
		b.onInternal(now, func(consec int) { opened = consec })
	}
	if opened != 3 {
		t.Fatalf("onOpen consec = %d, want 3", opened)
	}
	err := b.allow(now.Add(time.Millisecond))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	var be *BreakerOpenError
	if !errors.As(err, &be) || be.State != "open" || be.Program != "p" || be.RetryAfter <= 0 {
		t.Fatalf("open error %+v", be)
	}

	// Cooldown elapsed: exactly one probe passes, others are rejected.
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if err := b.allow(now); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe allowed: %v", err)
	}

	// Probe success closes it and reports the transition.
	closedFrom := ""
	b.onSuccess(func(prev string) { closedFrom = prev })
	if closedFrom != "half-open" {
		t.Fatalf("onClose prev = %q, want half-open", closedFrom)
	}
	if err := b.allow(now); err != nil {
		t.Fatalf("closed-after-probe breaker rejected: %v", err)
	}
	b.onSuccess(nil)

	// Reopen, probe, and fail the probe: back to open immediately.
	for i := 0; i < 3; i++ {
		b.onInternal(now, nil)
	}
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatal(err)
	}
	b.onInternal(now, nil)
	if s := b.snapshot(); s.State != "open" || s.Opens != 3 {
		t.Fatalf("failed probe left %+v, want open/opens=3", s)
	}

	// A canceled probe frees the slot for the next request.
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatal(err)
	}
	b.cancelProbe()
	if err := b.allow(now); err != nil {
		t.Fatalf("slot not freed after cancelProbe: %v", err)
	}

	// A typed, non-internal failure during half-open frees the probe slot
	// without closing: the engine is orderly but not yet proven healthy.
	b.onOther()
	if s := b.snapshot(); s.State != "half-open" || s.Consecutive != 0 {
		t.Fatalf("onOther left %+v, want half-open/0", s)
	}
	if err := b.allow(now); err != nil {
		t.Fatalf("probe slot not freed by onOther: %v", err)
	}
}

// The second open happens at the first internal failure of the streak
// only via threshold; counting restarts from scratch after close.
func TestBreakerThresholdRestartsAfterClose(t *testing.T) {
	now := time.Unix(0, 0)
	b := &breaker{name: "p", threshold: 2, cooldown: time.Second}
	b.onInternal(now, nil)
	b.onSuccess(nil)
	b.onInternal(now, nil)
	if s := b.snapshot(); s.State != "closed" {
		t.Fatalf("opened below threshold: %+v", s)
	}
	b.onInternal(now, nil)
	if s := b.snapshot(); s.State != "open" {
		t.Fatalf("did not open at threshold: %+v", s)
	}
}
