package serve

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"flowcheck/internal/flowgraph"
)

// WireGraph is a flow graph in transit: the packed little-endian edge
// list, base64 in JSON. Shards attach one to an AnalyzeResponse when the
// request set include_graph, and the fleet coordinator decodes, salts
// (exact-mode labels), and merges them into the distributed joint bound.
//
// The encoding is exact and order-preserving — edge order is what makes
// the location-keyed merge deterministic — so a decoded graph merges
// bit-identically to the in-process original.
type WireGraph struct {
	// Nodes is the graph's node count (source and sink included).
	Nodes int `json:"nodes"`
	// Edges is the edge count, redundantly with the packed data so
	// consumers can sanity-check before decoding.
	Edges int `json:"edges"`
	// Exact says the labels are exact-mode per-builder serials: a
	// cross-run merge must salt them (merge.SaltLabels) to keep runs
	// disjoint, exactly as AnalyzeBatch salts its in-process runs.
	Exact bool `json:"exact,omitempty"`
	// Data is the base64 packed edge list (wireMagic, then 30 bytes per
	// edge: from u32, to u32, cap i64, site u32, ctx u64, aux u8, kind u8).
	Data string `json:"data"`
}

const wireMagic = "FG1\n"
const wireEdgeSize = 30

// EncodeGraph packs a graph for transit. Nil stays nil, so callers can
// pass Result.Graph straight through.
func EncodeGraph(g *flowgraph.Graph, exact bool) *WireGraph {
	if g == nil {
		return nil
	}
	raw := make([]byte, len(wireMagic)+wireEdgeSize*len(g.Edges))
	copy(raw, wireMagic)
	off := len(wireMagic)
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(raw[off+0:], uint32(e.From))
		binary.LittleEndian.PutUint32(raw[off+4:], uint32(e.To))
		binary.LittleEndian.PutUint64(raw[off+8:], uint64(e.Cap))
		binary.LittleEndian.PutUint32(raw[off+16:], e.Label.Site)
		binary.LittleEndian.PutUint64(raw[off+20:], e.Label.Ctx)
		raw[off+28] = e.Label.Aux
		raw[off+29] = uint8(e.Label.Kind)
		off += wireEdgeSize
	}
	return &WireGraph{
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Exact: exact,
		Data:  base64.StdEncoding.EncodeToString(raw),
	}
}

// Decode unpacks the wire graph into a fresh, caller-owned graph,
// validating every field the in-process construction path would have
// panicked on — a corrupt or adversarial payload fails with an error,
// never a panic.
func (w *WireGraph) Decode() (*flowgraph.Graph, error) {
	if w == nil {
		return nil, fmt.Errorf("serve: nil wire graph")
	}
	raw, err := base64.StdEncoding.DecodeString(w.Data)
	if err != nil {
		return nil, fmt.Errorf("serve: wire graph base64: %w", err)
	}
	if len(raw) < len(wireMagic) || string(raw[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("serve: wire graph: bad magic")
	}
	raw = raw[len(wireMagic):]
	if len(raw)%wireEdgeSize != 0 {
		return nil, fmt.Errorf("serve: wire graph: %d trailing bytes", len(raw)%wireEdgeSize)
	}
	n := len(raw) / wireEdgeSize
	if n != w.Edges {
		return nil, fmt.Errorf("serve: wire graph: header says %d edges, data has %d", w.Edges, n)
	}
	if w.Nodes < 2 {
		return nil, fmt.Errorf("serve: wire graph: %d nodes (need source and sink)", w.Nodes)
	}
	g := flowgraph.New()
	g.EnsureNodes(w.Nodes)
	g.Edges = make([]flowgraph.Edge, 0, n)
	for i := 0; i < n; i++ {
		off := i * wireEdgeSize
		from := int32(binary.LittleEndian.Uint32(raw[off+0:]))
		to := int32(binary.LittleEndian.Uint32(raw[off+4:]))
		cap := int64(binary.LittleEndian.Uint64(raw[off+8:]))
		if from < 0 || to < 0 || int(from) >= w.Nodes || int(to) >= w.Nodes {
			return nil, fmt.Errorf("serve: wire graph edge %d: endpoints (%d,%d) outside [0,%d)", i, from, to, w.Nodes)
		}
		if cap < 0 {
			return nil, fmt.Errorf("serve: wire graph edge %d: negative capacity %d", i, cap)
		}
		g.AddEdge(flowgraph.NodeID(from), flowgraph.NodeID(to), cap, flowgraph.Label{
			Site: binary.LittleEndian.Uint32(raw[off+16:]),
			Ctx:  binary.LittleEndian.Uint64(raw[off+20:]),
			Aux:  raw[off+28],
			Kind: flowgraph.EdgeKind(raw[off+29]),
		})
	}
	return g, nil
}
