package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"flowcheck/internal/engine"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

func postAnalyze(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPAnalyze(t *testing.T) {
	svc := newService(t, serve.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	want, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{200}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postAnalyze(t, ts, `{"program":"unary","secret_b64":"yA==","timeout_ms":5000}`) // 0xc8 = 200
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out serve.AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Bits != want.Bits || out.Program != "unary" || out.Attempts != 1 {
		t.Fatalf("response %+v, want bits=%d", out, want.Bits)
	}
	if out.OutputBytes != len(want.Output) || out.Cut == "" {
		t.Fatalf("response %+v missing execution facts", out)
	}
}

// A per-request solver budget of 1 forces the degradation path through the
// full HTTP surface: 200 with degraded=true and no cut.
func TestHTTPAnalyzeDegradedOverride(t *testing.T) {
	svc := newService(t, serve.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts, `{"program":"unary","secret":"x","solver_budget":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out serve.AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedReason == "" {
		t.Fatalf("override did not degrade: %+v", out)
	}
	if out.Cut != "" {
		t.Fatalf("degraded response still carries a cut: %+v", out)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	svc := newService(t, serve.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"bad-json", `{`, http.StatusBadRequest, "bad-request"},
		{"bad-base64", `{"program":"unary","secret_b64":"!!"}`, http.StatusBadRequest, "bad-request"},
		{"unknown-program", `{"program":"nope"}`, http.StatusNotFound, "unknown-program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postAnalyze(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var out serve.ErrorResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Kind != tc.kind {
				t.Fatalf("kind %q, want %q", out.Kind, tc.kind)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPHealthAndReady(t *testing.T) {
	svc := newService(t, serve.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Workers <= 0 || len(st.Programs) != 1 {
		t.Fatalf("healthz %d %+v", resp.StatusCode, st)
	}

	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d before drain, want 200", resp.StatusCode)
	}

	svc.StartDrain()
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after StartDrain, want 503", resp.StatusCode)
	}

	resp, body := postAnalyze(t, ts, `{"program":"unary","secret":"x"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze while draining: %d %s", resp.StatusCode, body)
	}
	var out serve.ErrorResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "draining" {
		t.Fatalf("kind %q, want draining", out.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
