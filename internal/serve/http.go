package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/ledger"
	"flowcheck/internal/stagecache"
)

// AnalyzeRequest is the JSON body of POST /analyze. Secret and public
// inputs come either as literal strings or base64 (for binary inputs);
// the *_b64 field wins when both are set.
type AnalyzeRequest struct {
	Program string `json:"program"`
	// Principal attributes the request for cumulative leakage accounting
	// (the X-Flow-Principal header wins when both are set); empty means
	// "anonymous". Ignored when the service has no ledger.
	Principal string `json:"principal,omitempty"`
	Secret    string `json:"secret,omitempty"`
	SecretB64 string `json:"secret_b64,omitempty"`
	Public    string `json:"public,omitempty"`
	PublicB64 string `json:"public_b64,omitempty"`

	// TimeoutMS bounds the request end to end; the deadline also feeds
	// the admission controller's shed decision.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Optional per-request budget overrides (0 = keep the program's).
	// Setting any serves the request from a one-off analyzer.
	MaxGraphNodes  int   `json:"max_graph_nodes,omitempty"`
	MaxGraphEdges  int   `json:"max_graph_edges,omitempty"`
	MaxOutputBytes int   `json:"max_output_bytes,omitempty"`
	SolverBudget   int64 `json:"solver_budget,omitempty"`

	// Precision picks the ladder rung: "trivial", "static", "full", or
	// "adaptive" (empty keeps the program's configured mode). Trivial and
	// static answer a sound upper bound with no execution; adaptive
	// escalates to the full solve only while the cheap bound exceeds
	// AdaptiveThreshold bits.
	Precision         string `json:"precision,omitempty"`
	AdaptiveThreshold int64  `json:"adaptive_threshold,omitempty"`

	// Classes asks for per-secret-class bounds (§10.1) alongside the joint
	// result: one execution, one solve per class on the shared graph. The
	// principal's ledger is charged the joint bound, not the per-class sum.
	// Cannot combine with a precision override.
	Classes []ClassSpec `json:"classes,omitempty"`

	// IncludeGraph asks for the run's flow graph in the response
	// (AnalyzeResponse.Graph), packed for transit. The fleet coordinator
	// sets it on batch runs so it can merge per-run graphs into the
	// distributed joint bound. Cheap precision rungs carry no graph.
	IncludeGraph bool `json:"include_graph,omitempty"`
}

// ClassSpec names one secret class: the secret-stream bytes
// [off, off+len).
type ClassSpec struct {
	Name string `json:"name"`
	Off  int    `json:"off"`
	Len  int    `json:"len"`
}

// AnalyzeResponse is the JSON body of a served analysis.
type AnalyzeResponse struct {
	Program           string `json:"program"`
	Bits              int64  `json:"bits"`
	TaintedOutputBits int64  `json:"tainted_output_bits"`
	Degraded          bool   `json:"degraded"`
	DegradedReason    string `json:"degraded_reason,omitempty"`
	// Rung is the precision-ladder rung that produced Bits ("trivial",
	// "static", "full"); also the X-Flow-Rung response header. Cheap-rung
	// answers report degraded=true with zero steps: nothing executed.
	Rung        string  `json:"rung,omitempty"`
	Trapped     bool    `json:"trapped"`
	Trap        string  `json:"trap,omitempty"`
	Cut         string  `json:"cut,omitempty"`
	Steps       uint64  `json:"steps"`
	OutputBytes int     `json:"output_bytes"`
	Attempts    int     `json:"attempts"`
	LatencyMS   float64 `json:"latency_ms"`
	// Cache is the request's cache disposition ("hit", "miss",
	// "incremental", "bypass"; empty when caching is disabled). Also
	// exposed as the X-Flow-Cache response header. Attempts is 0 for
	// fast-path hits: the request never entered admission. CacheNote says
	// why a bypass happened (e.g. "fault-injection").
	Cache     string `json:"cache,omitempty"`
	CacheNote string `json:"cache_note,omitempty"`
	// RemainingBudgetBits is the principal's leakage budget left after
	// this response settled, when the service has a ledger and the program
	// a finite budget. Also the X-Flow-Budget-Remaining response header.
	RemainingBudgetBits *int64 `json:"remaining_budget_bits,omitempty"`
	// Classes holds the per-class measurements of a class request, in
	// request order. The top-level bits/cut are then the joint result —
	// the number the ledger charged, at most (and often less than) the
	// per-class sum.
	Classes []ClassResponse `json:"classes,omitempty"`
	// Graph is the run's packed flow graph, present when the request set
	// include_graph and the answering rung produced one.
	Graph *WireGraph `json:"graph,omitempty"`
}

// ClassResponse is one secret class's measurement.
type ClassResponse struct {
	Name string `json:"name"`
	Off  int    `json:"off"`
	Len  int    `json:"len"`
	Bits int64  `json:"bits"`
	Cut  string `json:"cut,omitempty"`
	// Rung/Degraded mirror the top-level provenance fields: RungFull for a
	// solved per-class max flow, RungTrivial with degraded=true when the
	// class solve fell back to its trivial-cut bound.
	Rung           string `json:"rung,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Error is the class's isolated failure; bits/cut are then meaningless
	// while sibling classes remain valid.
	Error string `json:"error,omitempty"`
}

// ErrorResponse is the JSON body of a failed request; Kind is the stable
// machine-readable failure class.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler returns the service's HTTP surface:
//
//	POST /analyze  run one analysis (AnalyzeRequest → AnalyzeResponse)
//	GET  /healthz  liveness + Stats JSON (always 200 while the process runs)
//	GET  /readyz   admission readiness (503 once draining)
//	GET  /statz    cache observability: hit/miss/evict/bytes per kind
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	if s.opts.ShardName == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Flow-Shard", s.opts.ShardName)
		mux.ServeHTTP(w, r)
	})
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("decoding request: %w", err))
		return
	}
	secret, err := pickInput(req.SecretB64, req.Secret)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("secret: %w", err))
		return
	}
	public, err := pickInput(req.PublicB64, req.Public)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("public: %w", err))
		return
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	principal := req.Principal
	if h := r.Header.Get("X-Flow-Principal"); h != "" {
		principal = h
	}
	sreq := Request{
		Program:           req.Program,
		Principal:         principal,
		Inputs:            engine.Inputs{Secret: secret, Public: public},
		Precision:         req.Precision,
		AdaptiveThreshold: req.AdaptiveThreshold,
	}
	for _, c := range req.Classes {
		sreq.Classes = append(sreq.Classes, engine.SecretClass{Name: c.Name, Off: c.Off, Len: c.Len})
	}
	if req.MaxGraphNodes > 0 || req.MaxGraphEdges > 0 || req.MaxOutputBytes > 0 || req.SolverBudget > 0 {
		sreq.Budget = &engine.Budget{
			MaxGraphNodes:  req.MaxGraphNodes,
			MaxGraphEdges:  req.MaxGraphEdges,
			MaxOutputBytes: req.MaxOutputBytes,
			SolverWork:     req.SolverBudget,
		}
	}

	t0 := s.opts.Now()
	resp, err := s.Analyze(ctx, sreq)
	if err != nil {
		status, kind := httpStatus(err)
		if ra := retryAfterHint(status, err); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		writeError(w, status, kind, err)
		return
	}
	res := resp.Result
	out := AnalyzeResponse{
		Program:           resp.Program,
		Bits:              res.Bits,
		TaintedOutputBits: res.TaintedOutputBits,
		Degraded:          res.Degraded,
		DegradedReason:    res.DegradedReason,
		Rung:              res.Rung,
		Trapped:           res.Trap != nil,
		Steps:             res.Steps,
		OutputBytes:       len(res.Output),
		Attempts:          resp.Attempts,
		LatencyMS:         float64(s.opts.Now().Sub(t0).Microseconds()) / 1000,
	}
	if res.Trap != nil {
		out.Trap = res.Trap.Error()
	}
	if res.Cut != nil {
		out.Cut = res.CutString()
	}
	for _, cr := range resp.Classes {
		cresp := ClassResponse{
			Name:           cr.Class.Name,
			Off:            cr.Class.Off,
			Len:            cr.Class.Len,
			Bits:           cr.Bits,
			Cut:            cr.Cut,
			Rung:           cr.Rung,
			Degraded:       cr.Degraded,
			DegradedReason: cr.DegradedReason,
		}
		if cr.Err != nil {
			cresp.Error = cr.Err.Error()
		}
		out.Classes = append(out.Classes, cresp)
	}
	if req.IncludeGraph && res.Graph != nil {
		exact := false
		if p := s.lookup(resp.Program); p != nil {
			exact = p.cfg.Taint.Exact
		}
		out.Graph = EncodeGraph(res.Graph, exact)
	}
	if res.Rung != "" {
		w.Header().Set("X-Flow-Rung", res.Rung)
	}
	if res.Cache.Disposition != "" {
		out.Cache = res.Cache.Disposition
		out.CacheNote = res.Cache.BypassReason
		w.Header().Set("X-Flow-Cache", res.Cache.Disposition)
	}
	if l := s.opts.Ledger; l != nil {
		if principal == "" {
			principal = "anonymous"
		}
		if rem, ok := l.Remaining(principal, resp.Program); ok {
			out.RemainingBudgetBits = &rem
			w.Header().Set("X-Flow-Budget-Remaining", fmt.Sprint(rem))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// statzCache is one cache's /statz rendering: the raw snapshot plus the
// derived per-kind hit ratios.
type statzCache struct {
	stagecache.Stats
	HitRatios map[string]float64 `json:"hit_ratios"`
}

func renderStatz(st stagecache.Stats) statzCache {
	out := statzCache{Stats: st, HitRatios: map[string]float64{}}
	for name, ks := range st.Kinds {
		out.HitRatios[name] = ks.HitRatio()
	}
	return out
}

// statzService is the process-identity section of /statz.
type statzService struct {
	StartTime string `json:"start_time"`
	UptimeMS  int64  `json:"uptime_ms"`
	Version   string `json:"version"`
	Draining  bool   `json:"draining"`
}

// handleStatz serves operational observability: process identity (start
// time, uptime, build version), cache counters with per-stage hit ratios
// for both the service cache (result/skeleton) and the process-global
// cache (compile/static), per-program breaker state and retry counters,
// and the leakage-budget ledger (bits per query, cumulative vs. budget,
// principals near threshold).
func (s *Service) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	resp := struct {
		Service       statzService     `json:"service"`
		CacheEnabled  bool             `json:"cache_enabled"`
		CacheFastPath int64            `json:"cache_fast_path"`
		Cache         *statzCache      `json:"cache,omitempty"`
		GlobalCache   statzCache       `json:"global_cache"`
		Rungs         map[string]int64 `json:"rungs"`
		Programs      []ProgramStats   `json:"programs"`
		Ledger        *ledger.Stats    `json:"ledger,omitempty"`
	}{
		Service: statzService{
			StartTime: s.start.UTC().Format(time.RFC3339),
			UptimeMS:  s.opts.Now().Sub(s.start).Milliseconds(),
			Version:   s.version,
			Draining:  s.draining.Load(),
		},
		CacheEnabled:  s.cache != nil,
		CacheFastPath: s.cacheFast.Load(),
		GlobalCache:   renderStatz(engine.GlobalCacheStats()),
		Rungs: map[string]int64{
			engine.RungTrivial: st.RungTrivial,
			engine.RungStatic:  st.RungStatic,
			engine.RungFull:    st.RungFull,
		},
		Programs: st.Programs,
	}
	if s.cache != nil {
		sc := renderStatz(s.cache.Stats())
		resp.Cache = &sc
	}
	if s.opts.Ledger != nil {
		lst := s.opts.Ledger.Stats()
		resp.Ledger = &lst
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// httpStatus maps the service and engine failure taxonomies onto HTTP:
// load shedding and breaking are 503 (retry elsewhere/later), deadlines
// 504, resource budgets 422 (the request as posed cannot be served),
// internal failures 500.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrOverload):
		return http.StatusServiceUnavailable, "overload"
	case errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable, "breaker-open"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrUnknownProgram):
		return http.StatusNotFound, "unknown-program"
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, "bad-request"
	case errors.Is(err, ledger.ErrBudgetExceeded):
		// 429: the principal, not the service, is out of capacity.
		return http.StatusTooManyRequests, "budget-exceeded"
	case errors.Is(err, ledger.ErrUnavailable):
		return http.StatusServiceUnavailable, "ledger-unavailable"
	case errors.Is(err, engine.ErrCanceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, engine.ErrBudget):
		return http.StatusUnprocessableEntity, "budget"
	case errors.Is(err, engine.ErrInternal):
		return http.StatusInternalServerError, "internal"
	}
	return http.StatusInternalServerError, "error"
}

// retryAfterHint derives the Retry-After header for a refused request:
// an open breaker's remaining cooldown, an exceeded budget's remaining
// decay window, or 1 second for the generic shed/drain/unavailable
// cases. Whole seconds, rounded up. Empty means no header — notably a
// 429 against a windowless (lifetime) budget, where retrying is useless.
func retryAfterHint(status int, err error) string {
	var d time.Duration
	var boe *BreakerOpenError
	var exc *ledger.ExceededError
	switch {
	case errors.As(err, &boe):
		d = boe.RetryAfter
	case errors.As(err, &exc):
		if exc.RetryAfter <= 0 {
			return ""
		}
		d = exc.RetryAfter
	case status != http.StatusServiceUnavailable:
		return ""
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs)
}

func pickInput(b64, lit string) ([]byte, error) {
	if b64 != "" {
		return base64.StdEncoding.DecodeString(b64)
	}
	if lit != "" {
		return []byte(lit), nil
	}
	return nil, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
}
