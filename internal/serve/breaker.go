package serve

import (
	"fmt"
	"sync"
	"time"
)

// BreakerOpenError rejects a request because its program's circuit
// breaker is not accepting traffic.
type BreakerOpenError struct {
	Program string
	// State is "open" (cooling down) or "half-open" (a probe is already
	// in flight).
	State string
	// Consecutive is the internal-failure streak that opened the breaker.
	Consecutive int
	// RetryAfter estimates when the next probe will be allowed.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker %s for %q after %d consecutive internal failures (retry in ~%v)",
		e.State, e.Program, e.Consecutive, e.RetryAfter)
}

func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-program circuit breaker over consecutive ErrInternal
// results: internal failures say the engine (not the input) is sick for
// this program, so after threshold of them in a row the breaker opens and
// rejects fast. After cooldown it lets exactly one probe through
// (half-open); the probe's success closes it, another internal failure
// reopens it, and any other outcome frees the probe slot for the next
// request. Non-internal failures and successes reset the streak.
type breaker struct {
	name      string
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int // current consecutive-ErrInternal streak
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
}

// allow decides whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed, reserving the
// caller as the probe.
func (b *breaker) allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if wait := b.cooldown - now.Sub(b.openedAt); wait > 0 {
			return &BreakerOpenError{Program: b.name, State: "open", Consecutive: b.consec, RetryAfter: wait}
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return &BreakerOpenError{Program: b.name, State: "half-open", Consecutive: b.consec, RetryAfter: b.cooldown}
		}
		b.probing = true
		return nil
	}
}

// cancelProbe releases a reserved half-open probe that never ran (the
// request was shed or canceled after allow), so the next request can
// probe instead of waiting out another cooldown.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// onSuccess records a successful run: the streak resets and a non-closed
// breaker closes, reporting the transition via onClose (called unlocked).
func (b *breaker) onSuccess(onClose func(prev string)) {
	b.mu.Lock()
	prev := b.state
	b.consec = 0
	b.probing = false
	b.state = breakerClosed
	b.mu.Unlock()
	if prev != breakerClosed && onClose != nil {
		onClose(prev.String())
	}
}

// onInternal records an ErrInternal result: the streak grows, and the
// breaker opens when it reaches the threshold (or immediately on a failed
// half-open probe), reporting the transition via onOpen (called unlocked).
func (b *breaker) onInternal(now time.Time, onOpen func(consecutive int)) {
	b.mu.Lock()
	b.consec++
	b.probing = false
	opened := false
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consec >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		opened = true
	}
	consec := b.consec
	b.mu.Unlock()
	if opened && onOpen != nil {
		onOpen(consec)
	}
}

// onOther records a non-internal failure: it breaks the internal-failure
// streak (the engine produced a typed, orderly failure, which is the
// system working) and frees a half-open probe slot without closing.
func (b *breaker) onOther() {
	b.mu.Lock()
	b.consec = 0
	b.probing = false
	b.mu.Unlock()
}

type breakerSnap struct {
	State       string
	Consecutive int
	Opens       int64
}

func (b *breaker) snapshot() breakerSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerSnap{State: b.state.String(), Consecutive: b.consec, Opens: b.opens}
}
