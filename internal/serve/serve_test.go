package serve_test

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

func newService(t *testing.T, opts serve.Options) *serve.Service {
	t.Helper()
	svc := serve.New(opts)
	svc.Register("unary", guest.Program("unary"), engine.Config{})
	return svc
}

func req(secret ...byte) serve.Request {
	return serve.Request{Program: "unary", Inputs: engine.Inputs{Secret: secret}}
}

// waitFor polls cond for up to two seconds; soak-free synchronization for
// the admission tests.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAnalyzeOK(t *testing.T) {
	svc := newService(t, serve.Options{})
	want, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{200}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Analyze(context.Background(), req(200))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", resp.Attempts)
	}
	if resp.Result.Bits != want.Bits {
		t.Fatalf("served bits %d != direct engine bits %d", resp.Result.Bits, want.Bits)
	}
	st := svc.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Failed != 0 || st.Shed != 0 {
		t.Fatalf("stats after one success: %+v", st)
	}
	if st.EWMALatencyUS <= 0 {
		t.Fatal("EWMA latency not observed")
	}
}

func TestUnknownProgram(t *testing.T) {
	svc := newService(t, serve.Options{})
	_, err := svc.Analyze(context.Background(), serve.Request{Program: "nope"})
	if !errors.Is(err, serve.ErrUnknownProgram) {
		t.Fatalf("got %v, want ErrUnknownProgram", err)
	}
}

// TestQueueFullSheds pins the "before consuming a worker" guarantee: with
// the single worker held by a stalled run and the depth-1 queue occupied,
// a third request is refused with a typed queue-full OverloadError and no
// engine run is started for it.
func TestQueueFullSheds(t *testing.T) {
	svc := serve.New(serve.Options{Workers: 1, QueueDepth: 1})
	// Every run of "slow" stalls 300ms at step 1, holding the worker.
	svc.Register("slow", guest.Program("unary"), engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{StallAtStep: 1, StallFor: 300 * time.Millisecond}),
	})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		svc.Analyze(context.Background(), serve.Request{Program: "slow", Inputs: engine.Inputs{Secret: []byte{1}}})
	}()
	waitFor(t, "worker occupied", func() bool { return svc.Stats().Started >= 1 })
	go func() {
		defer wg.Done()
		svc.Analyze(context.Background(), serve.Request{Program: "slow", Inputs: engine.Inputs{Secret: []byte{2}}})
	}()
	waitFor(t, "queue occupied", func() bool { return svc.Stats().Queued >= 1 })

	_, err := svc.Analyze(context.Background(), serve.Request{Program: "slow", Inputs: engine.Inputs{Secret: []byte{3}}})
	if !errors.Is(err, serve.ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	var oe *serve.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Fatalf("got %v, want queue-full OverloadError", err)
	}
	st := svc.Stats()
	if st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	if st.Started > 1 {
		t.Fatalf("shed request started an engine run (started=%d)", st.Started)
	}
	wg.Wait()
}

// TestDeadlineSheds: once the EWMA knows a run takes time, a request whose
// deadline the backlog estimate cannot meet is shed up front instead of
// being admitted to time out on a worker.
func TestDeadlineSheds(t *testing.T) {
	svc := newService(t, serve.Options{Workers: 1})
	if _, err := svc.Analyze(context.Background(), req(5)); err != nil {
		t.Fatal(err) // seeds the EWMA
	}
	if svc.EWMALatency() <= 0 {
		t.Fatal("EWMA not seeded")
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, err := svc.Analyze(ctx, req(5))
	var oe *serve.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("got %v, want deadline OverloadError", err)
	}
	if st := svc.Stats(); st.Started != 1 {
		t.Fatalf("shed request started an engine run (started=%d)", st.Started)
	}
}

// TestRetryGrowsBudget: a real output-budget failure retries with the
// budget doubled each attempt and succeeds once it fits — here 64 → 128 →
// 256 against 200 output bytes, succeeding on attempt 3.
func TestRetryGrowsBudget(t *testing.T) {
	var slept []time.Duration
	svc := serve.New(serve.Options{
		MaxAttempts: 3,
		BaseBackoff: 4 * time.Millisecond,
		MaxBackoff:  16 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	svc.Register("unary", guest.Program("unary"), engine.Config{
		Budget: engine.Budget{MaxOutputBytes: 64},
	})

	want, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{200}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Analyze(context.Background(), req(200))
	if err != nil {
		t.Fatalf("request failed after retries: %v", err)
	}
	if resp.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", resp.Attempts)
	}
	if resp.Result.Bits != want.Bits {
		t.Fatalf("retried bits %d != unbudgeted bits %d", resp.Result.Bits, want.Bits)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(slept))
	}
	for i, d := range slept {
		lo := (4 * time.Millisecond) << i / 2
		hi := (4 * time.Millisecond) << i
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
	if st := svc.Stats(); st.Retried != 2 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Budget growth off: the same request fails with the typed budget error
// after exhausting attempts on the unchanged budget.
func TestRetryWithoutGrowthFails(t *testing.T) {
	svc := serve.New(serve.Options{
		MaxAttempts:         2,
		DisableBudgetGrowth: true,
		Sleep:               func(time.Duration) {},
	})
	svc.Register("unary", guest.Program("unary"), engine.Config{
		Budget: engine.Budget{MaxOutputBytes: 64},
	})
	_, err := svc.Analyze(context.Background(), req(200))
	if !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	if st := svc.Stats(); st.Failed != 1 || st.Retried != 1 || st.Started != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRetryDegraded: a solver-degraded (but sound) result retries with the
// solver budget doubled until the solve is exact.
func TestRetryDegraded(t *testing.T) {
	svc := serve.New(serve.Options{
		MaxAttempts:   20,
		RetryDegraded: true,
		Sleep:         func(time.Duration) {},
	})
	svc.Register("unary", guest.Program("unary"), engine.Config{
		Budget: engine.Budget{SolverWork: 1},
	})
	want, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{200}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Analyze(context.Background(), req(200))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Degraded {
		t.Fatalf("result still degraded after %d attempts", resp.Attempts)
	}
	if resp.Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2 (first solve must have degraded)", resp.Attempts)
	}
	if resp.Result.Bits != want.Bits {
		t.Fatalf("bits %d != exact %d", resp.Result.Bits, want.Bits)
	}
}

// Without RetryDegraded the degraded result is returned as-is, first try.
func TestDegradedReturnedWithoutRetry(t *testing.T) {
	svc := serve.New(serve.Options{})
	svc.Register("unary", guest.Program("unary"), engine.Config{
		Budget: engine.Budget{SolverWork: 1},
	})
	resp, err := svc.Analyze(context.Background(), req(200))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result.Degraded || resp.Attempts != 1 {
		t.Fatalf("degraded=%v attempts=%d, want degraded on attempt 1", resp.Result.Degraded, resp.Attempts)
	}
}

// TestBreakerOpensAndProbes: consecutive internal failures open the
// program's breaker, open rejects fast without touching the engine, the
// cooldown admits one half-open probe, and a failed probe reopens.
func TestBreakerOpensAndProbes(t *testing.T) {
	svc := serve.New(serve.Options{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	svc.Register("panicky", guest.Program("unary"), engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{PanicStage: fault.StageSolve}),
	})
	call := func() error {
		_, err := svc.Analyze(context.Background(), serve.Request{Program: "panicky", Inputs: engine.Inputs{Secret: []byte{3}}})
		return err
	}

	for i := 0; i < 2; i++ {
		if err := call(); !errors.Is(err, engine.ErrInternal) {
			t.Fatalf("call %d: got %v, want ErrInternal", i, err)
		}
	}
	err := call()
	if !errors.Is(err, serve.ErrBreakerOpen) {
		t.Fatalf("got %v, want ErrBreakerOpen", err)
	}
	var be *serve.BreakerOpenError
	if !errors.As(err, &be) || be.State != "open" || be.Consecutive != 2 {
		t.Fatalf("got %+v, want open breaker after 2 consecutive", be)
	}
	st := svc.Stats()
	if st.Started != 2 {
		t.Fatalf("breaker-rejected request started an engine run (started=%d)", st.Started)
	}
	if st.BreakerRejected != 1 || st.Programs[0].Breaker != "open" || st.Programs[0].BreakerOpens != 1 {
		t.Fatalf("stats: %+v", st)
	}

	time.Sleep(60 * time.Millisecond) // past the cooldown
	if err := call(); !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("half-open probe: got %v, want the probe to run and fail", err)
	}
	if err := call(); !errors.Is(err, serve.ErrBreakerOpen) {
		t.Fatalf("after failed probe: got %v, want ErrBreakerOpen", err)
	}
	if st := svc.Stats(); st.Programs[0].BreakerOpens != 2 {
		t.Fatalf("failed probe did not reopen: %+v", st.Programs[0])
	}
}

// TestDrain: once draining, requests are refused with ErrDraining and
// Drain returns with nothing in flight.
func TestDrain(t *testing.T) {
	svc := newService(t, serve.Options{})
	if _, err := svc.Analyze(context.Background(), req(5)); err != nil {
		t.Fatal(err)
	}
	svc.StartDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if _, err := svc.Analyze(context.Background(), req(5)); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.InFlight != 0 || !st.Draining {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestLogsCarryStageAndInjection: the structured failure line names the
// pipeline stage and renders the scripted injection — the observability
// contract the chaos sweeps grep.
func TestLogsCarryStageAndInjection(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	svc := serve.New(serve.Options{
		Logger: slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil)),
	})
	svc.Register("panicky", guest.Program("unary"), engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{PanicStage: fault.StageBuild}),
	})
	if _, err := svc.Analyze(context.Background(), serve.Request{Program: "panicky", Inputs: engine.Inputs{Secret: []byte{3}}}); err == nil {
		t.Fatal("injected panic did not fail the request")
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"outcome=failed", "stage=build", "inject=panic:build", "program=panicky", "attempt=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
