package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/serve"
)

// TestServiceChaosSoak hammers a small service (2 workers, depth-2 queue)
// with concurrent traffic across programs scripted to panic, trap, stall,
// exhaust budgets, degrade, or behave — plus short-deadline requests to
// provoke admission sheds. The soak asserts the resilience contract as
// observable properties:
//
//   - every request terminates with a success or a typed, classified error
//     (no hangs, no untyped failures);
//   - shed requests got ErrOverload without consuming a worker: engine
//     runs are started only for admitted requests, and the admission
//     ledger balances (admitted = completed + failed);
//   - sound results are bit-identical to a fault-free reference run of the
//     same program and input — chaos may fail requests, never corrupt them;
//   - after Drain, nothing is in flight and no engine session is live or
//     left poisoned in a pool (quarantine counted in recycled).
//
// Run under -race this is also the service's data-race soak. Guarded by
// -short so the quick tier stays quick.
func TestServiceChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}

	svc := serve.New(serve.Options{
		Workers:          2,
		QueueDepth:       2,
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       4 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		SessionHighWater: 1 << 20,
	})
	prog := guest.Program("unary")
	svc.Register("healthy", prog, engine.Config{})
	svc.Register("trappy", prog, engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{TrapAtStep: 50}),
	})
	svc.Register("stally", prog, engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{StallAtStep: 100, StallFor: time.Millisecond}),
	})
	svc.Register("panicky", prog, engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{PanicStage: fault.StageSolve}),
	})
	svc.Register("tight", prog, engine.Config{
		Budget: engine.Budget{MaxOutputBytes: 64}, // retries grow it to fit
	})
	svc.Register("degraded", prog, engine.Config{
		Budget: engine.Budget{SolverWork: 1},
	})
	programs := []string{"healthy", "trappy", "stally", "panicky", "tight", "degraded"}

	// Fault-free references: sound served results must match these bits.
	secret := byte(200)
	ref, err := engine.Analyze(prog, engine.Inputs{Secret: []byte{secret}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	refTrap, err := engine.New(prog, engine.Config{
		Fault: fault.NewPlan().Every(fault.Injection{TrapAtStep: 50}),
	}).Analyze(engine.Inputs{Secret: []byte{secret}})
	if err != nil {
		t.Fatal(err)
	}

	const total = 120
	type outcome struct {
		program string
		resp    *serve.Response
		err     error
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		i := i
		name := programs[i%len(programs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if i%7 == 0 {
				// A sprinkle of tight deadlines to provoke deadline sheds
				// once the EWMA warms up.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 3*time.Millisecond)
				defer cancel()
			}
			resp, err := svc.Analyze(ctx, serve.Request{
				Program: name,
				Inputs:  engine.Inputs{Secret: []byte{secret}},
			})
			outcomes[i] = outcome{program: name, resp: resp, err: err}
		}()
	}
	wg.Wait()

	var ok, shed, breaker, canceled, internal, budget int
	for i, o := range outcomes {
		switch {
		case o.err == nil:
			ok++
			res := o.resp.Result
			if res.Degraded {
				if o.program != "degraded" {
					t.Errorf("req %d (%s): unexpected degraded result", i, o.program)
				}
				continue
			}
			// Sound, exact results must be bit-identical to the reference.
			want := ref.Bits
			if o.program == "trappy" {
				want = refTrap.Bits
			}
			if res.Bits != want {
				t.Errorf("req %d (%s): bits %d != reference %d", i, o.program, res.Bits, want)
			}
		case errors.Is(o.err, serve.ErrOverload):
			shed++
		case errors.Is(o.err, serve.ErrBreakerOpen):
			breaker++
			if o.program != "panicky" {
				t.Errorf("req %d (%s): breaker opened for a healthy program: %v", i, o.program, o.err)
			}
		case errors.Is(o.err, engine.ErrCanceled):
			canceled++
		case errors.Is(o.err, engine.ErrInternal):
			internal++
			if o.program != "panicky" {
				t.Errorf("req %d (%s): internal failure without injected panic: %v", i, o.program, o.err)
			}
		case errors.Is(o.err, engine.ErrBudget):
			budget++
		default:
			t.Errorf("req %d (%s): untyped failure %v", i, o.program, o.err)
		}
	}
	t.Logf("ok=%d shed=%d breaker=%d canceled=%d internal=%d budget=%d", ok, shed, breaker, canceled, internal, budget)
	if ok == 0 {
		t.Fatal("no request succeeded; soak exercised nothing")
	}

	// Drain and check the ledger. Every request is accounted exactly once,
	// engine runs happened only for admitted requests, and sheds plus
	// breaker rejections never consumed a worker.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	// ErrCanceled reaches the client from two places — the slot wait in
	// admission and a deadline mid-run — so the ledger brackets it: the
	// gap between total and (shed + breaker-rejected + admitted) is
	// exactly the admission cancels, and client-observed cancels cover it.
	cancelInAdmit := total - st.Shed - st.BreakerRejected - st.Admitted
	if cancelInAdmit < 0 || cancelInAdmit > int64(canceled) {
		t.Fatalf("admission ledger unbalanced: shed %d + breaker %d + admitted %d vs total %d (client cancels %d)",
			st.Shed, st.BreakerRejected, st.Admitted, total, canceled)
	}
	if shed == 0 {
		t.Fatal("no request was shed; the soak never overloaded admission")
	}
	if st.Admitted != st.Completed+st.Failed {
		t.Fatalf("admitted %d != completed %d + failed %d", st.Admitted, st.Completed, st.Failed)
	}
	if int64(shed) != st.Shed || int64(breaker) != st.BreakerRejected || int64(ok) != st.Completed {
		t.Fatalf("client-observed outcomes (ok=%d shed=%d breaker=%d) disagree with stats %+v", ok, shed, breaker, st)
	}
	if st.Started < st.Admitted {
		t.Fatalf("started %d < admitted %d: an admitted request ran nothing", st.Started, st.Admitted)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("drained service still has work: %+v", st)
	}
	for _, p := range st.Programs {
		if p.Pool.Live != 0 {
			t.Fatalf("program %s leaked %d sessions", p.Name, p.Pool.Live)
		}
	}
	// Panicked sessions were quarantined, never re-pooled.
	for _, p := range st.Programs {
		if p.Name == "panicky" && p.Pool.Recycled == 0 && internal+breaker > 0 {
			t.Fatalf("panicky program recycled no sessions: %+v", p)
		}
	}

	// Post-drain the service refuses cleanly.
	if _, err := svc.Analyze(context.Background(), serve.Request{Program: "healthy"}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain analyze: %v, want ErrDraining", err)
	}
}

// TestServiceSoakDeterministicBounds reruns the same mixed workload twice
// on fresh services and checks the sound results agree run to run — the
// service layer (retries, recycling, concurrency) must not perturb the
// analysis semantics.
func TestServiceSoakDeterministicBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	secrets := []byte{0, 3, 40, 128, 200, 255}
	run := func() map[string]int64 {
		svc := serve.New(serve.Options{Workers: 3, QueueDepth: 64, MaxAttempts: 3, BaseBackoff: time.Millisecond})
		svc.Register("unary", guest.Program("unary"), engine.Config{
			Budget: engine.Budget{MaxOutputBytes: 64},
		})
		bits := make(map[string]int64)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, sec := range secrets {
			sec := sec
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := svc.Analyze(context.Background(), serve.Request{
					Program: "unary", Inputs: engine.Inputs{Secret: []byte{sec}},
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					bits[fmt.Sprintf("s%d", sec)] = -1
					return
				}
				bits[fmt.Sprintf("s%d", sec)] = resp.Result.Bits
			}()
		}
		wg.Wait()
		return bits
	}
	a, b := run(), run()
	for k, v := range a {
		if v == -1 {
			t.Fatalf("%s failed", k)
		}
		if b[k] != v {
			t.Fatalf("%s: %d != %d across identical runs", k, v, b[k])
		}
	}
}
