// Package merge combines flow graphs from multiple executions into a single
// graph whose maximum flow is a sound bound for the whole set of runs
// (paper §3.2).
//
// Independently-analyzed runs can be individually sound but jointly
// inconsistent: each run's minimum cut may fall in a different place,
// which amounts to using a different code per run and can violate Kraft's
// inequality. Merging identifies edges that carry the same label (static
// code location plus optional calling-context hash) across runs, sums their
// capacities, and unifies their endpoints with a union-find structure —
// after which any cut is consistently placed for every run at once.
package merge

import (
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/unionfind"
)

// Graphs merges any number of labelled flow graphs. Edges with identical
// labels are replaced by a single edge whose capacity is the (saturating)
// sum of the originals, and the nodes those edges connect are unified.
// Unlabelled edges (Label zero value apart from Kind) merge like any
// others; graphs built in exact mode carry unique labels and therefore
// merge side by side without unification.
// SaltLabels offsets every edge label's Ctx in g by salt<<44, in place.
//
// Exact-mode builders number their edges with a per-builder serial starting
// at 1, so graphs produced by different trackers (as in the engine's
// parallel batch path) carry colliding Ctx values that Graphs would wrongly
// unify. Salting each run's graph with a distinct value keeps the labels
// disjoint, so the runs merge side by side — exactly how a single
// exact-mode tracker numbers successive runs online. Collapsed-mode graphs
// must not be salted: there the label is the intentional merge key.
func SaltLabels(g *flowgraph.Graph, salt uint64) {
	for i := range g.Edges {
		g.Edges[i].Label.Ctx += salt << 44
	}
}

func Graphs(graphs ...*flowgraph.Graph) *flowgraph.Graph {
	uf := unionfind.New(0)
	srcEl := uf.MakeSet()
	sinkEl := uf.MakeSet()

	type accEdge struct {
		from, to int
		cap      int64
	}
	edges := map[flowgraph.Label]*accEdge{}
	var order []flowgraph.Label

	for _, g := range graphs {
		// Fresh elements for this graph's nodes, with Source and Sink
		// mapped to the shared elements.
		local := make([]int, g.NumNodes())
		for i := range local {
			local[i] = -1
		}
		local[flowgraph.Source] = srcEl
		local[flowgraph.Sink] = sinkEl
		el := func(n flowgraph.NodeID) int {
			if local[n] < 0 {
				local[n] = uf.MakeSet()
			}
			return local[n]
		}
		for _, e := range g.Edges {
			from, to := el(e.From), el(e.To)
			if acc, ok := edges[e.Label]; ok {
				acc.cap += e.Cap
				if acc.cap > flowgraph.Inf {
					acc.cap = flowgraph.Inf
				}
				uf.Union(acc.from, from)
				uf.Union(acc.to, to)
				continue
			}
			edges[e.Label] = &accEdge{from: from, to: to, cap: e.Cap}
			order = append(order, e.Label)
		}
	}

	out := flowgraph.New()
	nodeOf := map[int]flowgraph.NodeID{
		uf.Find(srcEl):  flowgraph.Source,
		uf.Find(sinkEl): flowgraph.Sink,
	}
	get := func(el int) flowgraph.NodeID {
		c := uf.Find(el)
		if n, ok := nodeOf[c]; ok {
			return n
		}
		n := out.AddNode()
		nodeOf[c] = n
		return n
	}
	for _, lbl := range order {
		e := edges[lbl]
		from, to := get(e.from), get(e.to)
		if from == to || from == flowgraph.Sink || to == flowgraph.Source {
			continue
		}
		out.AddEdge(from, to, e.cap, lbl)
	}
	return out
}
