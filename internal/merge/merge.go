// Package merge combines flow graphs from multiple executions into a single
// graph whose maximum flow is a sound bound for the whole set of runs
// (paper §3.2).
//
// Independently-analyzed runs can be individually sound but jointly
// inconsistent: each run's minimum cut may fall in a different place,
// which amounts to using a different code per run and can violate Kraft's
// inequality. Merging identifies edges that carry the same label (static
// code location plus optional calling-context hash) across runs, sums their
// capacities, and unifies their endpoints with a union-find structure —
// after which any cut is consistently placed for every run at once.
package merge

import (
	"fmt"

	"flowcheck/internal/flowgraph"
	"flowcheck/internal/unionfind"
)

// saltShift positions the salt above the bits exact-mode serials and
// context hashes legitimately occupy; see SaltLabels.
const saltShift = 44

// MaxSalt is the largest salt SaltLabels accepts: the salt field above bit
// saltShift holds 64-44 = 20 bits.
const MaxSalt = uint64(1)<<(64-saltShift) - 1

// SaltError reports a SaltLabels call that would overflow the Ctx salt
// field or collide with a label's existing Ctx bits.
type SaltError struct {
	Salt uint64
	// Edge is the index of the offending edge, or -1 when the salt itself
	// is out of range.
	Edge int
	Ctx  uint64
}

func (e *SaltError) Error() string {
	if e.Edge < 0 {
		return fmt.Sprintf("merge: salt %d exceeds the %d-bit salt field (max %d)", e.Salt, 64-saltShift, MaxSalt)
	}
	return fmt.Sprintf("merge: edge %d Ctx %#x already uses bit %d or above; salting with %d would collide", e.Edge, e.Ctx, saltShift, e.Salt)
}

// SaltLabels offsets every edge label's Ctx in g by salt<<44, in place.
//
// Exact-mode builders number their edges with a per-builder serial starting
// at 1, so graphs produced by different trackers (as in the engine's
// parallel batch path) carry colliding Ctx values that Graphs would wrongly
// unify. Salting each run's graph with a distinct value keeps the labels
// disjoint, so the runs merge side by side — exactly how a single
// exact-mode tracker numbers successive runs online. Collapsed-mode graphs
// must not be salted: there the label is the intentional merge key.
//
// The salt occupies Ctx bits [44, 64); SaltLabels returns a *SaltError
// (leaving g unmodified) if salt needs more than 20 bits, or if any edge's
// Ctx already reaches into the salt field — either would alias two
// different (salt, serial) pairs onto one label and silently under-count
// the merged flow.
func SaltLabels(g *flowgraph.Graph, salt uint64) error {
	if salt > MaxSalt {
		return &SaltError{Salt: salt, Edge: -1}
	}
	shifted := salt << saltShift
	for i := range g.Edges {
		if ctx := g.Edges[i].Label.Ctx; ctx+shifted < ctx || (ctx>>saltShift) != 0 {
			return &SaltError{Salt: salt, Edge: i, Ctx: ctx}
		}
	}
	for i := range g.Edges {
		g.Edges[i].Label.Ctx += shifted
	}
	return nil
}

// Graphs merges any number of labelled flow graphs. Edges with identical
// labels are replaced by a single edge whose capacity is the (saturating)
// sum of the originals, and the nodes those edges connect are unified.
// Unlabelled edges (Label zero value apart from Kind) merge like any
// others; graphs built in exact mode carry unique labels and therefore
// merge side by side without unification.
//
// The merge accumulates directly in an arena: label hits add capacity in
// place and union endpoints lazily; classes are resolved once, at export.
func Graphs(graphs ...*flowgraph.Graph) *flowgraph.Graph {
	ar := flowgraph.NewArena()
	uf := unionfind.New(2) // elements 0,1 mirror the arena terminals
	slots := map[flowgraph.Label]int32{}

	for _, g := range graphs {
		// Fresh elements for this graph's nodes, with Source and Sink
		// mapped to the shared terminals.
		local := make([]int32, g.NumNodes())
		for i := range local {
			local[i] = -1
		}
		local[flowgraph.Source] = 0
		local[flowgraph.Sink] = 1
		el := func(n flowgraph.NodeID) int32 {
			if local[n] < 0 {
				local[n] = ar.AddNode()
				uf.MakeSet()
			}
			return local[n]
		}
		for i := range g.Edges {
			e := &g.Edges[i]
			from, to := el(e.From), el(e.To)
			if slot, ok := slots[e.Label]; ok {
				ar.Accumulate(slot, e.Cap)
				sf, st := ar.EdgeEnds(slot)
				uf.Union(int(sf), int(from))
				uf.Union(int(st), int(to))
				continue
			}
			slots[e.Label] = ar.AddEdge(from, to, e.Cap, e.Label)
		}
	}

	return ar.Export(func(v int32) int32 { return int32(uf.Find(int(v))) })
}
