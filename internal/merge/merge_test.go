package merge_test

import (
	"errors"
	"testing"

	"flowcheck/internal/core"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/kraft"
	"flowcheck/internal/lang"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/merge"
	"flowcheck/internal/taint"
)

func chainGraph(site uint32, caps ...int64) *flowgraph.Graph {
	g := flowgraph.New()
	prev := flowgraph.Source
	for i, c := range caps {
		var next flowgraph.NodeID
		if i == len(caps)-1 {
			next = flowgraph.Sink
		} else {
			next = g.AddNode()
		}
		g.AddEdge(prev, next, c, flowgraph.Label{Site: site, Aux: uint8(i)})
		prev = next
	}
	return g
}

func TestMergeIdenticalGraphsSumsCapacity(t *testing.T) {
	g1 := chainGraph(1, 8, 3)
	g2 := chainGraph(1, 8, 3)
	m := merge.Graphs(g1, g2)
	if m.NumEdges() != 2 {
		t.Fatalf("merged edges = %d, want 2", m.NumEdges())
	}
	if f := maxflow.Compute(m, maxflow.Dinic).Flow; f != 6 {
		t.Fatalf("merged flow = %d, want 6 (3+3 at the bottleneck)", f)
	}
}

func TestMergeDisjointLabelsSideBySide(t *testing.T) {
	g1 := chainGraph(1, 5)
	g2 := chainGraph(2, 7)
	m := merge.Graphs(g1, g2)
	if f := maxflow.Compute(m, maxflow.Dinic).Flow; f != 12 {
		t.Fatalf("merged flow = %d, want 12 (parallel paths)", f)
	}
}

func TestMergeSingleGraphIsIdentity(t *testing.T) {
	g := chainGraph(1, 8, 3, 9)
	m := merge.Graphs(g)
	if maxflow.Compute(m, maxflow.Dinic).Flow != maxflow.Compute(g, maxflow.Dinic).Flow {
		t.Fatal("merging one graph changed its flow")
	}
}

func TestMergedFlowAtLeastMaxOfRuns(t *testing.T) {
	// Merging can only add capacity along shared labels: the merged flow is
	// at least each individual flow.
	g1 := chainGraph(1, 8, 2)
	g2 := chainGraph(1, 8, 5)
	m := merge.Graphs(g1, g2)
	f := maxflow.Compute(m, maxflow.Dinic).Flow
	if f < 5 {
		t.Fatalf("merged flow %d below individual max", f)
	}
}

func TestSaltLabelsBoundaries(t *testing.T) {
	mk := func(ctx uint64) *flowgraph.Graph {
		g := flowgraph.New()
		g.AddEdge(flowgraph.Source, flowgraph.Sink, 1, flowgraph.Label{Site: 1, Ctx: ctx})
		return g
	}

	// Valid: max salt with a Ctx below the salt field.
	g := mk(1<<44 - 1)
	if err := merge.SaltLabels(g, merge.MaxSalt); err != nil {
		t.Fatalf("max salt rejected: %v", err)
	}
	if got, want := g.Edges[0].Label.Ctx, (merge.MaxSalt<<44)|(1<<44-1); got != want {
		t.Fatalf("salted Ctx = %#x, want %#x", got, want)
	}

	// Salt too wide for the 20-bit field.
	var serr *merge.SaltError
	err := merge.SaltLabels(mk(0), merge.MaxSalt+1)
	if err == nil {
		t.Fatal("overflowing salt accepted")
	}
	if !errors.As(err, &serr) || serr.Edge != -1 {
		t.Fatalf("err = %#v, want *SaltError with Edge=-1", err)
	}

	// Ctx already occupying the salt field: collision, graph unmodified.
	g = mk(1 << 44)
	err = merge.SaltLabels(g, 1)
	if err == nil {
		t.Fatal("colliding Ctx accepted")
	}
	if !errors.As(err, &serr) || serr.Edge != 0 {
		t.Fatalf("err = %#v, want *SaltError with Edge=0", err)
	}
	if g.Edges[0].Label.Ctx != 1<<44 {
		t.Fatalf("failed SaltLabels modified the graph: Ctx = %#x", g.Edges[0].Label.Ctx)
	}

	// Distinct salts keep two identical exact-mode graphs disjoint.
	g1, g2 := mk(7), mk(7)
	if err := merge.SaltLabels(g1, 1); err != nil {
		t.Fatal(err)
	}
	if err := merge.SaltLabels(g2, 2); err != nil {
		t.Fatal(err)
	}
	if f := maxflow.Compute(merge.Graphs(g1, g2), maxflow.Dinic).Flow; f != 2 {
		t.Fatalf("salted merge flow = %d, want 2 (side-by-side paths)", f)
	}
}

// The paper's §3.2 unsoundness example, end to end: a program that prints
// its secret byte in unary. Per-run analysis yields min(8, n+1) bits, which
// violates Kraft's inequality over all byte values; the merged graph's
// bound is consistent.
const unarySrc = `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char n; n = buf[0];
    while (n--) putc('*');
    return 0;
}`

func TestUnaryBinaryConsistency(t *testing.T) {
	prog, err := lang.Compile("unary.mc", unarySrc)
	if err != nil {
		t.Fatal(err)
	}
	// Per-run bounds for a few representative inputs.
	var perRun []int64
	var graphs []*flowgraph.Graph
	inputs := []byte{0, 1, 2, 5, 150}
	for _, n := range inputs {
		res, err := core.Analyze(prog, core.Inputs{Secret: []byte{n}}, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(n) + 1
		if want > 8 {
			want = 8
		}
		if res.Bits != want {
			t.Fatalf("per-run bits for n=%d: %d, want min(8, n+1) = %d", n, res.Bits, want)
		}
		perRun = append(perRun, res.Bits)
		graphs = append(graphs, res.Graph)
	}

	// Hypothetically extending per-run results to all 256 inputs violates
	// Kraft: sum = 503/256 > 1 (§3.2).
	var all []int64
	for n := 0; n < 256; n++ {
		k := int64(n) + 1
		if k > 8 {
			k = 8
		}
		all = append(all, k)
	}
	if kraft.Satisfied(all) {
		t.Fatalf("per-run bounds should violate Kraft, sum = %v", kraft.Sum(all))
	}

	// The merged graph gives one jointly-sound bound >= 8 bits, and using
	// it for every run satisfies Kraft.
	m := merge.Graphs(graphs...)
	f := maxflow.Compute(m, maxflow.Dinic).Flow
	if f < 8 {
		t.Fatalf("merged bound %d < 8 is jointly unsound", f)
	}
	joint := make([]int64, 256)
	for i := range joint {
		joint[i] = f
	}
	if !kraft.Satisfied(joint) {
		t.Fatalf("uniform bound %d violates Kraft?!", f)
	}
}

// Offline merge (this package) agrees with online multi-run analysis
// (core.AnalyzeMulti / taint.Reset) on the bound.
func TestOfflineMergeMatchesOnline(t *testing.T) {
	prog, err := lang.Compile("unary.mc", unarySrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []core.Inputs{
		{Secret: []byte{0}}, {Secret: []byte{3}}, {Secret: []byte{200}},
	}
	online, err := core.AnalyzeMulti(prog, inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*flowgraph.Graph
	for _, in := range inputs {
		res, err := core.Analyze(prog, in, core.Config{Taint: taint.Options{}})
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, res.Graph)
	}
	offline := maxflow.Compute(merge.Graphs(graphs...), maxflow.Dinic).Flow
	if offline != online.Bits {
		t.Fatalf("offline merge %d != online multi-run %d", offline, online.Bits)
	}
}
