package stagecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"flowcheck/internal/cachekey"
)

func key(i int) cachekey.Key {
	return cachekey.New("test/v1").Int(int64(i)).Sum()
}

func TestPutGet(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	k := key(1)
	if _, ok := c.Get("result", k); ok {
		t.Fatalf("hit on empty cache")
	}
	c.Put("result", k, "value", 100)
	v, ok := c.Get("result", k)
	if !ok || v.(string) != "value" {
		t.Fatalf("Get = %v, %v; want value, true", v, ok)
	}
	st := c.Stats()
	ks := st.Kinds["result"]
	if ks.Hits != 1 || ks.Misses != 1 || ks.Stores != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 store", ks)
	}
	if st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("bytes/entries = %d/%d; want 100/1", st.Bytes, st.Entries)
	}
}

func TestPeekDoesNotCountMisses(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	if _, ok := c.Peek("result", key(1)); ok {
		t.Fatalf("peek hit on empty cache")
	}
	c.Put("result", key(1), 42, 8)
	if v, ok := c.Peek("result", key(1)); !ok || v.(int) != 42 {
		t.Fatalf("peek after put = %v, %v", v, ok)
	}
	ks := c.Stats().Kinds["result"]
	if ks.Misses != 0 {
		t.Fatalf("peek counted %d misses; want 0", ks.Misses)
	}
	if ks.Hits != 1 {
		t.Fatalf("peek counted %d hits; want 1", ks.Hits)
	}
}

func TestReplaceSameKey(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 1})
	c.Put("result", key(1), "old", 100)
	c.Put("result", key(1), "new", 40)
	v, ok := c.Get("result", key(1))
	if !ok || v.(string) != "new" {
		t.Fatalf("Get after replace = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 40 {
		t.Fatalf("after replace entries=%d bytes=%d; want 1/40", st.Entries, st.Bytes)
	}
}

func TestEvictionUnderTinyBudget(t *testing.T) {
	// One shard so the budget and the LRU order are exact.
	c := New(Options{MaxBytes: 250, Shards: 1})
	for i := 0; i < 5; i++ {
		c.Put("result", key(i), i, 100) // each insert over 2 entries evicts the oldest
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("entries=%d bytes=%d; want 2 entries / 200 bytes under a 250-byte budget", st.Entries, st.Bytes)
	}
	ks := st.Kinds["result"]
	if ks.Evictions != 3 {
		t.Fatalf("evictions = %d; want 3", ks.Evictions)
	}
	if ks.Bytes != 200 {
		t.Fatalf("kind bytes = %d; want 200", ks.Bytes)
	}
	// The survivors must be the two most recently inserted.
	for i := 0; i < 3; i++ {
		if _, ok := c.Peek("result", key(i)); ok {
			t.Fatalf("key %d survived; should have been evicted LRU-first", i)
		}
	}
	for i := 3; i < 5; i++ {
		if _, ok := c.Peek("result", key(i)); !ok {
			t.Fatalf("key %d missing; most-recent entries should survive", i)
		}
	}
}

func TestLRUOrderRespectsGets(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1})
	c.Put("r", key(1), 1, 100)
	c.Put("r", key(2), 2, 100)
	c.Put("r", key(3), 3, 100)
	c.Get("r", key(1)) // refresh 1; 2 is now coldest
	c.Put("r", key(4), 4, 100)
	if _, ok := c.Peek("r", key(2)); ok {
		t.Fatalf("key 2 survived; it was coldest after key 1 was touched")
	}
	if _, ok := c.Peek("r", key(1)); !ok {
		t.Fatalf("key 1 evicted despite recent Get")
	}
}

func TestOversizedValueDoesNotStick(t *testing.T) {
	c := New(Options{MaxBytes: 100, Shards: 1})
	c.Put("r", key(1), "huge", 1000)
	if _, ok := c.Peek("r", key(1)); ok {
		t.Fatalf("value larger than the whole budget stayed cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after oversized insert = %+v; want empty", st)
	}
}

func TestDoComputesOnceSequentially(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	calls := 0
	compute := func() (any, int64, error) {
		calls++
		return "v", 10, nil
	}
	v, hit, err := c.Do("result", key(1), compute)
	if err != nil || hit || v.(string) != "v" {
		t.Fatalf("first Do = %v, %v, %v; want v, false, nil", v, hit, err)
	}
	v, hit, err = c.Do("result", key(1), compute)
	if err != nil || !hit || v.(string) != "v" {
		t.Fatalf("second Do = %v, %v, %v; want v, true, nil", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	boom := errors.New("boom")
	_, _, err := c.Do("result", key(1), func() (any, int64, error) { return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do error = %v; want boom", err)
	}
	// The failure must not poison the key.
	v, hit, err := c.Do("result", key(1), func() (any, int64, error) { return "ok", 1, nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("Do after error = %v, %v, %v; want ok, false, nil", v, hit, err)
	}
}

// TestSingleflightCollapse hammers one key from many goroutines and proves
// exactly one compute runs; everyone else blocks and shares the value.
// Meant to run under -race.
func TestSingleflightCollapse(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	k := key(7)
	const goroutines = 64

	var computes atomic.Int64
	gate := make(chan struct{})
	ready := make(chan struct{}, goroutines)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{}
			<-gate
			v, _, err := c.Do("result", k, func() (any, int64, error) {
				computes.Add(1)
				return "shared", 10, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if v.(string) != "shared" {
				t.Errorf("Do value = %v; want shared", v)
			}
		}()
	}
	for i := 0; i < goroutines; i++ {
		<-ready
	}
	close(gate)
	wg.Wait()

	// Racing goroutines can slip past each other before the first registers
	// its call, so "exactly one" is not guaranteed by the API — but the
	// common case collapses, and total computes must stay far below the
	// goroutine count. With the gate pattern above one compute is typical.
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key; want 1 (singleflight)", n)
	}
	st := c.Stats().Kinds["result"]
	if st.Misses != 1 {
		t.Fatalf("misses = %d; want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("hits+coalesced = %d; want %d", st.Hits+st.Coalesced, goroutines-1)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 16, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key((seed + i) % 37)
				kind := fmt.Sprintf("kind%d", i%3)
				if i%5 == 0 {
					c.Put(kind, k, i, int64(50+i%100))
				} else {
					c.Do(kind, k, func() (any, int64, error) { return i, 64, nil })
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	tot := st.Totals()
	if tot.Hits+tot.Misses+tot.Coalesced == 0 {
		t.Fatalf("no lookups recorded")
	}
}

func TestHitRatio(t *testing.T) {
	ks := KindStats{Hits: 3, Coalesced: 1, Misses: 4}
	if got := ks.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v; want 0.5", got)
	}
	if (KindStats{}).HitRatio() != 0 {
		t.Fatalf("empty HitRatio should be 0")
	}
}

func TestStatsKindNamesSorted(t *testing.T) {
	c := New(Options{})
	c.Put("zeta", key(1), 1, 1)
	c.Put("alpha", key(2), 1, 1)
	names := c.Stats().KindNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("KindNames = %v; want [alpha zeta]", names)
	}
}
