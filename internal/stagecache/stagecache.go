// Package stagecache is the content-addressed store behind the staged
// analysis pipeline: a sharded LRU keyed by cachekey.Key, bounded by a
// byte budget rather than an entry count (entry sizes come from the same
// arena/graph accounting that flowgraph.MemStats reports, so one cached
// result is charged what its graph actually holds live).
//
// Concurrency model: the key space is split across power-of-two shards by
// the key's leading byte; each shard owns a mutex, its entry map, and an
// intrusive LRU ring, so unrelated programs never contend. Concurrent
// misses on one key are collapsed by a per-key singleflight: the first
// caller of Do computes, every concurrent caller blocks on that call and
// shares its value (and its error — including a cancellation of the
// computing caller; supervision layers treat that like any other
// transient failure). Values must be treated as immutable once stored:
// hits hand the same value to many goroutines.
//
// Stats are broken out per kind ("compile", "static", "result",
// "skeleton", ...) so the service can report per-stage hit ratios. Kinds
// are a labeling for observability only; key disjointness across stages is
// the caller's job (cachekey domain strings).
package stagecache

import (
	"sort"
	"sync"
	"sync/atomic"

	"flowcheck/internal/cachekey"
)

// DefaultMaxBytes is the byte budget used when Options.MaxBytes is zero.
const DefaultMaxBytes = 64 << 20

const defaultShards = 16

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards (default
	// DefaultMaxBytes). The budget is split evenly per shard; exceeding a
	// shard's share evicts that shard's least-recently-used entries.
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two (default 16).
	Shards int
}

// Cache is a sharded, byte-budgeted, content-addressed LRU.
type Cache struct {
	shards []shard
	mask   uint32

	statsMu sync.Mutex
	kinds   map[string]*kindCounters
}

type kindCounters struct {
	hits, misses, coalesced, stores, evictions, bytes atomic.Int64
}

// entry is one cached value on its shard's intrusive LRU ring.
type entry struct {
	key        cachekey.Key
	kind       string
	val        any
	size       int64
	prev, next *entry
}

// call is one in-flight singleflight computation.
type call struct {
	wg   sync.WaitGroup
	val  any
	size int64
	err  error
}

type shard struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[cachekey.Key]*entry
	lru     entry // sentinel: lru.next is most recent, lru.prev oldest
	calls   map[cachekey.Key]*call
}

// New creates a cache under the given options.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two so the shard picker is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Cache{
		shards: make([]shard, p),
		mask:   uint32(p - 1),
		kinds:  map[string]*kindCounters{},
	}
	per := opts.MaxBytes / int64(p)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.max = per
		s.entries = map[cachekey.Key]*entry{}
		s.calls = map[cachekey.Key]*call{}
		s.lru.next, s.lru.prev = &s.lru, &s.lru
	}
	return c
}

func (c *Cache) shard(k cachekey.Key) *shard {
	return &c.shards[uint32(k[0])&c.mask]
}

func (c *Cache) kind(kind string) *kindCounters {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	kc := c.kinds[kind]
	if kc == nil {
		kc = &kindCounters{}
		c.kinds[kind] = kc
	}
	return kc
}

// --- intrusive LRU ring (shard.mu held) ---

func (s *shard) pushFront(e *entry) {
	e.prev = &s.lru
	e.next = s.lru.next
	e.prev.next = e
	e.next.prev = e
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) touch(e *entry) {
	s.unlink(e)
	s.pushFront(e)
}

// insert stores a value and evicts from the cold end until the shard fits
// its budget again. The just-inserted entry can evict itself if it alone
// exceeds the shard's share — an oversized value simply does not cache.
func (s *shard) insert(c *Cache, k cachekey.Key, kind string, v any, size int64) {
	if old := s.entries[k]; old != nil {
		s.unlink(old)
		s.bytes -= old.size
		c.kind(old.kind).bytes.Add(-old.size)
		delete(s.entries, k)
	}
	e := &entry{key: k, kind: kind, val: v, size: size}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += size
	kc := c.kind(kind)
	kc.stores.Add(1)
	kc.bytes.Add(size)
	for s.bytes > s.max && s.lru.prev != &s.lru {
		victim := s.lru.prev
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		vc := c.kind(victim.kind)
		vc.evictions.Add(1)
		vc.bytes.Add(-victim.size)
	}
}

// Get returns the cached value for k, counting the lookup as a hit or a
// miss of the given kind. A hit refreshes the entry's recency.
func (c *Cache) Get(kind string, k cachekey.Key) (any, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e := s.entries[k]
	if e != nil {
		s.touch(e)
	}
	s.mu.Unlock()
	if e == nil {
		c.kind(kind).misses.Add(1)
		return nil, false
	}
	c.kind(kind).hits.Add(1)
	return e.val, true
}

// Peek is Get without miss accounting: a present entry counts as a hit
// (and is refreshed), an absent one counts nothing. Fast-path probes use
// it so a miss that immediately falls through to Do is not counted twice.
func (c *Cache) Peek(kind string, k cachekey.Key) (any, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e := s.entries[k]
	if e != nil {
		s.touch(e)
	}
	s.mu.Unlock()
	if e == nil {
		return nil, false
	}
	c.kind(kind).hits.Add(1)
	return e.val, true
}

// Put stores a value of the given byte size, evicting LRU entries as
// needed.
func (c *Cache) Put(kind string, k cachekey.Key, v any, size int64) {
	s := c.shard(k)
	s.mu.Lock()
	s.insert(c, k, kind, v, size)
	s.mu.Unlock()
}

// Do returns the cached value for k, computing and storing it on a miss.
// Concurrent Do calls for one key are collapsed: exactly one runs compute,
// the rest block and share its value. The second return reports whether
// the caller's value came from the cache or another caller's computation
// (true) rather than its own compute (false). Errors are not cached; every
// caller collapsed onto a failed computation receives its error.
func (c *Cache) Do(kind string, k cachekey.Key, compute func() (any, int64, error)) (any, bool, error) {
	s := c.shard(k)
	s.mu.Lock()
	if e := s.entries[k]; e != nil {
		s.touch(e)
		s.mu.Unlock()
		c.kind(kind).hits.Add(1)
		return e.val, true, nil
	}
	if cl := s.calls[k]; cl != nil {
		s.mu.Unlock()
		c.kind(kind).coalesced.Add(1)
		cl.wg.Wait()
		return cl.val, cl.err == nil, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	s.calls[k] = cl
	s.mu.Unlock()

	c.kind(kind).misses.Add(1)
	cl.val, cl.size, cl.err = compute()

	s.mu.Lock()
	delete(s.calls, k)
	if cl.err == nil {
		s.insert(c, k, kind, cl.val, cl.size)
	}
	s.mu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// KindStats is the per-kind counter snapshot.
type KindStats struct {
	// Hits are lookups served from a stored entry; Coalesced are misses
	// that piggybacked on another caller's in-flight computation (work was
	// still saved); Misses are lookups that ran compute.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Stores counts values inserted; Evictions counts entries pushed out by
	// the byte budget; Bytes is the kind's live footprint.
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
}

// HitRatio is (hits + coalesced) over all lookups, 0 when none happened.
func (k KindStats) HitRatio() float64 {
	total := k.Hits + k.Coalesced + k.Misses
	if total == 0 {
		return 0
	}
	return float64(k.Hits+k.Coalesced) / float64(total)
}

// Stats is a cache-wide snapshot.
type Stats struct {
	MaxBytes int64                `json:"max_bytes"`
	Bytes    int64                `json:"bytes"`
	Entries  int                  `json:"entries"`
	Kinds    map[string]KindStats `json:"kinds"`
}

// Totals sums the per-kind counters.
func (st Stats) Totals() KindStats {
	var t KindStats
	for _, k := range st.Kinds {
		t.Hits += k.Hits
		t.Misses += k.Misses
		t.Coalesced += k.Coalesced
		t.Stores += k.Stores
		t.Evictions += k.Evictions
		t.Bytes += k.Bytes
	}
	return t
}

// KindNames returns the kinds seen so far, sorted, for stable rendering.
func (st Stats) KindNames() []string {
	names := make([]string, 0, len(st.Kinds))
	for n := range st.Kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	st := Stats{Kinds: map[string]KindStats{}}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.MaxBytes += s.max
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	for name, kc := range c.kinds {
		st.Kinds[name] = KindStats{
			Hits:      kc.hits.Load(),
			Misses:    kc.misses.Load(),
			Coalesced: kc.coalesced.Load(),
			Stores:    kc.stores.Load(),
			Evictions: kc.evictions.Load(),
			Bytes:     kc.bytes.Load(),
		}
	}
	return st
}
