// Package guest holds the MiniC case-study programs of paper §2.4 and §8,
// reimplemented as guests for the reproduction's VM.
//
// Each program reproduces the security-relevant kernel of one paper
// subject:
//
//   - count_punct: the Figure 2 running example (9 bits).
//   - battleship:  KBattleship's shot protocol (§8.1), in fixed and buggy
//     (shipTypeAt-leaking) variants.
//   - sshauth:     OpenSSH host authentication (§8.2) with a full MD5;
//     the 128-bit digest is the measured bottleneck.
//   - imagefilter: ImageMagick-style pixelate/blur/swirl (§8.3, Figure 5).
//   - calendar:    OpenGroupware appointment-grid scheduling (§8.4).
//   - xserver:     X-server text drawing with font-metric bounding boxes,
//     cut-and-paste, and a memory-scanning attack path (§8.5).
//   - compress:    an LZSS compressor standing in for bzip2 in the
//     Figure 3 scaling study (§5.3).
//   - unary:       the §3.2 unary-printer consistency example.
//   - divzero:     the §3.1 division example (a 1-bit adversarial channel).
//   - guessnum:    an interactive guess-the-secret protocol whose per-query
//     leak is small but whose adaptive trajectory extracts the whole
//     secret — the scenario behind the cumulative leakage-budget ledger.
//
// Every program is compiled together with a small MiniC prelude
// (stdlib.mc) providing strlen/puts/puti and friends.
package guest

import (
	"embed"
	"sort"
	"sync"

	"flowcheck/internal/lang"
	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/parser"
	"flowcheck/internal/vm"
	"flowcheck/internal/workload"
)

//go:embed sources/*.mc
var sources embed.FS

// Names lists the available guest programs.
func Names() []string {
	entries, err := sources.ReadDir("sources")
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if n == "stdlib.mc" {
			continue
		}
		names = append(names, n[:len(n)-3])
	}
	sort.Strings(names)
	return names
}

// Source returns the full MiniC source of a guest (prelude included).
func Source(name string) string {
	prelude, err := sources.ReadFile("sources/stdlib.mc")
	if err != nil {
		panic(err)
	}
	body, err := sources.ReadFile("sources/" + name + ".mc")
	if err != nil {
		panic("guest: unknown program " + name)
	}
	return string(prelude) + "\n" + string(body)
}

var (
	progMu    sync.Mutex
	progCache = map[string]*vm.Program{}
)

// Program compiles (and caches) a guest program.
func Program(name string) *vm.Program {
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[name]; ok {
		return p
	}
	p := lang.MustCompile(name+".mc", Source(name))
	progCache[name] = p
	return p
}

// AST parses a guest program (for the §8.6 inference study).
func AST(name string) (*ast.File, error) {
	return parser.Parse(name+".mc", Source(name))
}

// SampleInputs returns a representative secret/public input pair for a
// guest — enough to drive it down its interesting paths (tainted
// branches, enclosure regions) for smoke tests and the static/dynamic
// cross-check of cmd/flowlint. The recipes mirror the experiment inputs
// of internal/experiments. ok is false for unknown names.
func SampleInputs(name string) (secret, public []byte, ok bool) {
	switch name {
	case "count_punct":
		return []byte("one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"), nil, true
	case "battleship":
		shots := [][2]byte{{0, 0}, {3, 4}, {5, 5}, {9, 9}}
		return workload.BattleshipSecret(7), workload.BattleshipShots(0, shots), true
	case "sshauth":
		key := make([]byte, 64)
		for i := range key {
			key[i] = byte(i*37 + 11)
		}
		return key, append([]byte("session-id-0123!"), []byte("challenge-bytes!")...), true
	case "imagefilter":
		return workload.Image(25, 25, 1), []byte{0}, true
	case "calendar":
		secret := workload.CalendarSecret([]workload.Appointment{
			{StartSlot: 20, EndSlot: 24},
			{StartSlot: 30, EndSlot: 33},
		})
		return secret, workload.CalendarQuery(2, 9, 18), true
	case "xserver":
		text := []byte("Hello, world!")
		s := append([]byte{}, []byte("card=4111111111111111 pin=0000!!")...)
		s = append(s, byte(len(text)))
		return append(s, text...), []byte{0}, true
	case "compress":
		return workload.PiWords(512), nil, true
	case "interp":
		secret := make([]byte, 64)
		for i := range secret {
			secret[i] = byte(i*29 + 7)
		}
		script := []byte{1, 3, 2, 0x0F, 5, 7, 0}
		return secret, append([]byte{byte(len(script))}, script...), true
	case "unary":
		return []byte{5}, nil, true
	case "guessnum":
		return []byte{167}, []byte{128}, true
	case "divzero":
		return []byte{9, 0, 0, 0, 3, 0, 0, 0}, nil, true
	}
	return nil, nil, false
}
