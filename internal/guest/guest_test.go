package guest

import (
	"bytes"
	"crypto/md5"
	"strings"
	"testing"

	"flowcheck/internal/core"
	"flowcheck/internal/workload"
)

func TestNamesAndSources(t *testing.T) {
	names := Names()
	want := []string{"battleship", "calendar", "compress", "count_punct", "divzero",
		"guessnum", "imagefilter", "interp", "sshauth", "unary", "xserver"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		if !strings.Contains(Source(n), "int main(") {
			t.Fatalf("%s: no main in source", n)
		}
	}
}

func TestAllGuestsCompile(t *testing.T) {
	for _, n := range Names() {
		t.Run(n, func(t *testing.T) {
			if p := Program(n); len(p.Code) == 0 {
				t.Fatal("empty program")
			}
		})
	}
}

func run(t *testing.T, name string, secret, public []byte) *core.Result {
	t.Helper()
	res, err := core.Analyze(Program(name), core.Inputs{Secret: secret, Public: public}, core.Config{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Trap != nil {
		t.Fatalf("%s trapped: %v", name, res.Trap)
	}
	return res
}

// ------------------------------------------------------------ count_punct ---

func TestCountPunctNineBits(t *testing.T) {
	in := []byte("one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?")
	res := run(t, "count_punct", in, nil)
	if string(res.Output) != "........" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Bits != 9 {
		t.Fatalf("bits = %d, want 9; cut %s", res.Bits, res.CutString())
	}
}

// ------------------------------------------------------------- battleship ---

func TestBattleshipMissIsOneBit(t *testing.T) {
	secret := workload.BattleshipSecret(7)
	// One shot guaranteed to miss: find a free cell from the placement.
	board := boardFrom(secret)
	var miss [2]byte
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if board[r*10+c] == 0 {
				miss = [2]byte{byte(r), byte(c)}
			}
		}
	}
	res := run(t, "battleship", secret, workload.BattleshipShots(0, [][2]byte{miss}))
	if string(res.Output) != "0" {
		t.Fatalf("miss reply = %q", res.Output)
	}
	if res.Bits != 1 {
		t.Fatalf("miss bits = %d, want 1; cut %s", res.Bits, res.CutString())
	}
}

func TestBattleshipHitIsTwoBits(t *testing.T) {
	secret := workload.BattleshipSecret(7)
	board := boardFrom(secret)
	var hit [2]byte
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if board[r*10+c] == 5 { // a cell of the length-5 ship: can't sink in one shot
				hit = [2]byte{byte(r), byte(c)}
			}
		}
	}
	res := run(t, "battleship", secret, workload.BattleshipShots(0, [][2]byte{hit}))
	if string(res.Output) != "10" {
		t.Fatalf("hit reply = %q", res.Output)
	}
	if res.Bits != 2 {
		t.Fatalf("non-fatal hit bits = %d, want 2; cut %s", res.Bits, res.CutString())
	}
}

func TestBattleshipBugLeaksShipType(t *testing.T) {
	secret := workload.BattleshipSecret(7)
	board := boardFrom(secret)
	var hit [2]byte
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if board[r*10+c] != 0 {
				hit = [2]byte{byte(r), byte(c)}
			}
		}
	}
	fixed := run(t, "battleship", secret, workload.BattleshipShots(0, [][2]byte{hit}))
	buggy := run(t, "battleship", secret, workload.BattleshipShots(1, [][2]byte{hit}))
	if buggy.Bits <= fixed.Bits {
		t.Fatalf("shipTypeAt bug not visible: buggy %d <= fixed %d bits", buggy.Bits, fixed.Bits)
	}
	if buggy.Bits < 8 {
		t.Fatalf("buggy reply carries the type byte: %d bits", buggy.Bits)
	}
}

func TestBattleshipGameFlowAccumulates(t *testing.T) {
	secret := workload.BattleshipSecret(3)
	shots := [][2]byte{{0, 0}, {5, 5}, {9, 9}, {2, 7}}
	res := run(t, "battleship", secret, workload.BattleshipShots(0, shots))
	if len(res.Snapshots) != len(shots) {
		t.Fatalf("snapshots = %d, want %d", len(res.Snapshots), len(shots))
	}
	for i := 1; i < len(res.Snapshots); i++ {
		if res.Snapshots[i].Bits < res.Snapshots[i-1].Bits {
			t.Fatalf("flow decreased between shots: %+v", res.Snapshots)
		}
	}
	// Each reply costs 1 or 2 bits.
	if res.Bits < int64(len(shots)) || res.Bits > int64(2*len(shots))+1 {
		t.Fatalf("game bits = %d for %d shots", res.Bits, len(shots))
	}
}

// boardFrom mirrors place_ships for test oracles.
func boardFrom(placement []byte) [100]byte {
	var board [100]byte
	lens := []int{5, 4, 3, 2}
	for s := 0; s < 4; s++ {
		r, c, o := int(placement[3*s])%10, int(placement[3*s+1])%10, int(placement[3*s+2])&1
		for k := 0; k < lens[s]; k++ {
			var idx int
			if o == 0 {
				idx = r*10 + (c+k)%10
			} else {
				idx = ((r+k)%10)*10 + c
			}
			board[idx] = byte(lens[s])
		}
	}
	return board
}

// ---------------------------------------------------------------- sshauth ---

func TestSSHAuthDigestCorrectAnd128Bits(t *testing.T) {
	key := bytes.Repeat([]byte("K3y!"), 16) // 64 bytes
	session := []byte("session-id-0123!")
	challenge := []byte("challenge-bytes!")
	public := append(append([]byte{}, session...), challenge...)
	res := run(t, "sshauth", key, public)

	// Oracle: reproduce the toy decryption and hash with crypto/md5.
	decrypted := make([]byte, 16)
	for i := 0; i < 16; i++ {
		k0 := uint32(key[i]) | uint32(key[16+i])<<8
		k1 := uint32(key[32+i]) | uint32(key[48+i])<<8
		mix := (k0*31 + k1*17) ^ (k0 >> 3) ^ (k1 << 2)
		decrypted[i] = challenge[i] ^ byte(mix) ^ byte(mix>>8)
	}
	sum := md5.Sum(append(append([]byte{}, session...), decrypted...))
	want := append(sum[:], '\n')
	if !bytes.Equal(res.Output, want) {
		t.Fatalf("digest mismatch:\n got %x\nwant %x", res.Output, want)
	}

	// The paper's measurement: exactly 128 bits of key information.
	if res.Bits != 128 {
		t.Fatalf("bits = %d, want 128; cut %s", res.Bits, res.CutString())
	}
}

// ------------------------------------------------------------ imagefilter ---

func TestImageFilterPixelateBottleneck(t *testing.T) {
	img := workload.Image(25, 25, 1)
	res := run(t, "imagefilter", img, []byte{0})
	if len(res.Output) != len(img) {
		t.Fatalf("output size %d != input %d", len(res.Output), len(img))
	}
	// 25 block averages x 8 bits + 16 header bits, plus a little slack for
	// the block-value masks; far below the 5016-bit input.
	if res.Bits < 216 || res.Bits > 700 {
		t.Fatalf("pixelate bits = %d, want a few hundred; cut %s", res.Bits, res.CutString())
	}
}

func TestImageFilterBlurRetainsMore(t *testing.T) {
	img := workload.Image(25, 25, 1)
	pix := run(t, "imagefilter", img, []byte{0})
	blur := run(t, "imagefilter", img, []byte{1})
	if blur.Bits <= pix.Bits {
		t.Fatalf("blur (%d bits) should retain more than pixelate (%d bits)", blur.Bits, pix.Bits)
	}
	if blur.Bits > 1200 {
		t.Fatalf("blur bits = %d, still expected well under the input size", blur.Bits)
	}
}

func TestImageFilterSwirlNoBottleneck(t *testing.T) {
	img := workload.Image(25, 25, 1)
	swirl := run(t, "imagefilter", img, []byte{2})
	inputBits := int64(8 * len(img))
	// The swirl is continuous: the bound stays at (essentially) the input
	// size, as in Figure 5's right-hand image.
	if swirl.Bits < inputBits*8/10 {
		t.Fatalf("swirl bits = %d, want close to input size %d", swirl.Bits, inputBits)
	}
	if swirl.Bits > inputBits+64 {
		t.Fatalf("swirl bits = %d exceeds input size %d", swirl.Bits, inputBits)
	}
}

// ---------------------------------------------------------------- calendar ---

func TestCalendarSingleAppointmentIntersectionCut(t *testing.T) {
	// One appointment 10:00-12:00 (slots 20..24), queried 9:00-18:00.
	secret := append([]byte{1}, 20, 24)
	public := []byte{1, 9, 18}
	res := run(t, "calendar", secret, public)
	if string(res.Output) != "BBRRRRBBBBBBBBBBBB\n" {
		t.Fatalf("grid = %q", res.Output)
	}
	// The cut sits at the two 6-bit slot indices: ~12 bits, below the
	// 18-bit display bound.
	if res.Bits < 10 || res.Bits > 17 {
		t.Fatalf("sparse-calendar bits = %d, want ~12 (< 18); cut %s", res.Bits, res.CutString())
	}
}

func TestCalendarBusyDayDisplayCut(t *testing.T) {
	// Five appointments: the per-appointment cut (~12 bits each) now
	// exceeds the 18-bit display bound, so the display cut wins (§8.4).
	secret := []byte{5, 18, 20, 21, 23, 25, 27, 30, 33, 40, 44}
	public := []byte{5, 9, 18}
	res := run(t, "calendar", secret, public)
	if res.Bits < 17 || res.Bits > 19 {
		t.Fatalf("busy-calendar bits = %d, want ~18; cut %s", res.Bits, res.CutString())
	}
}

// ----------------------------------------------------------------- xserver ---

func TestXServerBoundingBox(t *testing.T) {
	text := []byte("Hello, world!")
	secret := append(append(append([]byte{}, bytes.Repeat([]byte{0}, 32)...), byte(len(text))), text...)
	res := run(t, "xserver", secret, []byte{0})
	if len(res.Output) != 4 {
		t.Fatalf("bbox output = %v", res.Output)
	}
	// The box width constrains the sum of 13 glyph widths: around 16-21
	// bits (the paper measured 21, "somewhat imprecisely"), far below the
	// 104 direct bits of the text.
	if res.Bits < 8 || res.Bits > 40 {
		t.Fatalf("bbox bits = %d, want a couple dozen; cut %s", res.Bits, res.CutString())
	}
	if res.Bits >= 8*13 {
		t.Fatalf("bbox bits = %d, not below the text size", res.Bits)
	}
}

func TestXServerPasteDirectFlow(t *testing.T) {
	secret := append(append(append([]byte{}, []byte("card=4111111111111111 pin=0000!!")...), 4), []byte("text")...)
	res := run(t, "xserver", secret, []byte{1})
	if len(res.Output) != 32 {
		t.Fatalf("paste output = %q", res.Output)
	}
	if res.Bits != 256 {
		t.Fatalf("paste bits = %d, want 256 (32 bytes)", res.Bits)
	}
}

func TestXServerExploitExfiltrates(t *testing.T) {
	secret := append(append(append([]byte{}, []byte("card=4111111111111111 pin=0000!!")...), 4), []byte("text")...)
	res := run(t, "xserver", secret, []byte{2})
	if !bytes.Contains(res.Output, []byte("4111111111111111")) {
		t.Fatalf("exploit output = %q", res.Output)
	}
	if res.Bits < 100 {
		t.Fatalf("exploit bits = %d, should be large", res.Bits)
	}
}

// ---------------------------------------------------------------- compress ---

func TestCompressRoundTripShape(t *testing.T) {
	in := workload.PiWords(2048)
	res := run(t, "compress", in, nil)
	if len(res.Output) == 0 || len(res.Output) >= len(in) {
		t.Fatalf("pi words should compress: %d -> %d", len(in), len(res.Output))
	}
	if decompressLZSS(res.Output, len(in)) == nil {
		t.Fatal("output is not a valid LZSS stream")
	}
	if !bytes.Equal(decompressLZSS(res.Output, len(in)), in) {
		t.Fatal("round trip mismatch")
	}
	// Figure 3 shape: flow ~ 8 x compressed size (plus small slack), well
	// below 8 x input size.
	outBits := int64(8 * len(res.Output))
	if res.Bits > outBits+64 {
		t.Fatalf("bits = %d exceeds compressed size %d", res.Bits, outBits)
	}
	if res.Bits < outBits/2 {
		t.Fatalf("bits = %d suspiciously below compressed size %d", res.Bits, outBits)
	}
	if res.Bits >= int64(8*len(in)) {
		t.Fatalf("bits = %d not below input size", res.Bits)
	}
}

func TestCompressTinyInputBoundedByInput(t *testing.T) {
	in := []byte("abcdefgh") // incompressible at this size
	res := run(t, "compress", in, nil)
	if res.Bits > int64(8*len(in)) {
		t.Fatalf("bits = %d exceeds input size %d", res.Bits, 8*len(in))
	}
}

// decompressLZSS is the Go-side oracle for the guest's output format.
func decompressLZSS(comp []byte, maxLen int) []byte {
	var out []byte
	i := 0
	for i < len(comp) {
		flags := comp[i]
		i++
		for b := 0; b < 8 && i < len(comp); b++ {
			if flags&(1<<b) != 0 {
				if i+1 >= len(comp) {
					return nil
				}
				off := int(comp[i]) | int(comp[i+1]&0x0F)<<8
				l := int(comp[i+1]>>4) + 3
				i += 2
				start := len(out) - off
				if start < 0 {
					return nil
				}
				for k := 0; k < l; k++ {
					out = append(out, out[start+k])
				}
			} else {
				out = append(out, comp[i])
				i++
			}
			if len(out) > maxLen {
				return nil
			}
		}
	}
	return out
}

// ------------------------------------------------------------ unary/divzero ---

func TestUnaryGuest(t *testing.T) {
	res := run(t, "unary", []byte{5}, nil)
	if string(res.Output) != "*****" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Bits != 6 { // min(8, n+1) with n=5
		t.Fatalf("bits = %d, want 6", res.Bits)
	}
}

func TestDivzeroGuest(t *testing.T) {
	zero := []byte{9, 0, 0, 0, 0, 0, 0, 0}
	nonzero := []byte{9, 0, 0, 0, 3, 0, 0, 0}
	r1 := run(t, "divzero", zero, nil)
	r2 := run(t, "divzero", nonzero, nil)
	if !bytes.Contains(r1.Output, []byte("error")) || !bytes.Contains(r2.Output, []byte("ok")) {
		t.Fatalf("outputs: %q / %q", r1.Output, r2.Output)
	}
	if r1.Bits != 1 || r2.Bits != 1 {
		t.Fatalf("bits = %d/%d, want 1/1", r1.Bits, r2.Bits)
	}
}

// ------------------------------------------------------------------ interp ---

// buildScript assembles interpreter bytecode with a length prefix.
func buildScript(ops ...byte) []byte {
	return append([]byte{byte(len(ops))}, ops...)
}

// §10.3: the measured flow reflects what the interpreted script computes,
// not the interpreter's own code.
func TestInterpreterMaskedOutput(t *testing.T) {
	// OUT(input[3] & 0x0F): 4 bits.
	script := buildScript(
		1, 3, // PUSHIN 3
		2, 0x0F, // PUSHK 15
		5, // AND
		7, // OUT
		0, // HALT
	)
	secret := bytes.Repeat([]byte{0xA7}, 64)
	res := run(t, "interp", secret, script)
	if len(res.Output) != 1 || res.Output[0] != 0xA7&0x0F {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Bits != 4 {
		t.Fatalf("bits = %d, want 4 (the script masks to a nibble); cut %s", res.Bits, res.CutString())
	}
}

func TestInterpreterXorCombines(t *testing.T) {
	// OUT(input[0] ^ input[1]): 8 bits, not 16.
	script := buildScript(1, 0, 1, 1, 4, 7, 0)
	res := run(t, "interp", []byte("abcdefgh"), script)
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8", res.Bits)
	}
}

func TestInterpreterDumpsInput(t *testing.T) {
	// OUT(input[0]); OUT(input[1]); OUT(input[2]): 24 bits.
	script := buildScript(1, 0, 7, 1, 1, 7, 1, 2, 7, 0)
	res := run(t, "interp", []byte("wxyz"), script)
	if string(res.Output) != "wxy" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Bits != 24 {
		t.Fatalf("bits = %d, want 24", res.Bits)
	}
}

func TestInterpreterSecretBranch(t *testing.T) {
	// if (input[0] < 100) skip the first OUT: the JNZ condition is secret.
	script := buildScript(
		1, 0, // PUSHIN 0
		2, 100, // PUSHK 100
		9,     // LT
		10, 3, // JNZ +3 (skip the next 3 bytes: PUSHK 'A'; OUT)
		2, 'A',
		7,
		2, 'B',
		7,
		0,
	)
	lo := run(t, "interp", bytes.Repeat([]byte{5}, 64), script)
	hi := run(t, "interp", bytes.Repeat([]byte{200}, 64), script)
	if string(lo.Output) != "B" || string(hi.Output) != "AB" {
		t.Fatalf("outputs %q / %q", lo.Output, hi.Output)
	}
	// One secret comparison steers the interpreter's control flow: the
	// measurement should be a couple of bits (the 1-bit condition plus the
	// interpreter-level implicit flows it causes), far below the 512-bit
	// secret input.
	for _, r := range []int64{lo.Bits, hi.Bits} {
		if r < 1 || r > 40 {
			t.Fatalf("branchy script bits = %d/%d, want small", lo.Bits, hi.Bits)
		}
	}
}

// §7: repeated requests. Within one analyzed session, probing the same
// cell twice reveals no more than probing it once (the destroyed cell's
// state is public on the second probe); probing two distinct cells reveals
// two bits. Across independently merged runs, capacities sum — a sound
// upper bound that never undercounts repetition.
func TestBattleshipRepeatedRequests(t *testing.T) {
	secret := workload.BattleshipSecret(7)
	board := boardFrom(secret)
	var misses [][2]byte
	for r := 0; r < 10 && len(misses) < 2; r++ {
		for c := 0; c < 10 && len(misses) < 2; c++ {
			if board[r*10+c] == 0 {
				misses = append(misses, [2]byte{byte(r), byte(c)})
			}
		}
	}
	same := run(t, "battleship", secret, workload.BattleshipShots(0, [][2]byte{misses[0], misses[0]}))
	diff := run(t, "battleship", secret, workload.BattleshipShots(0, [][2]byte{misses[0], misses[1]}))
	if same.Bits != 1 {
		t.Fatalf("repeated probe = %d bits, want 1 (asks the same question)", same.Bits)
	}
	if diff.Bits != 2 {
		t.Fatalf("distinct probes = %d bits, want 2", diff.Bits)
	}

	// Merged independent runs: the bound sums (soundness under merging),
	// so repetition across sessions is still counted conservatively.
	prog := Program("battleship")
	merged, err := core.AnalyzeMulti(prog, []core.Inputs{
		{Secret: secret, Public: workload.BattleshipShots(0, [][2]byte{misses[0]})},
		{Secret: secret, Public: workload.BattleshipShots(0, [][2]byte{misses[0]})},
	}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Bits < 1 || merged.Bits > 2 {
		t.Fatalf("merged repeated runs = %d bits", merged.Bits)
	}
}
