package taint

import (
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/unionfind"
)

// builder incrementally constructs a flow graph during execution, emitting
// directly into an arena-backed graph core (flowgraph.Arena).
//
// It implements both construction modes of paper §4.2/§5.2 with one
// mechanism. Every runtime value is a pair of arena nodes (the two halves
// of a split node); every edge carries a Label. In collapsed mode, edges
// with the same label are merged: their capacities accumulate in place and
// their endpoints' classes are unioned — the paper's almost-linear-time
// combination using a union-find structure (§3.2); the union-find runs in
// lockstep with arena node allocation, so element ids and node ids
// coincide. In exact mode every edge is given a unique label, no merging
// occurs, and the arena can additionally be compacted online (CompactSP)
// while execution continues, keeping live size proportional to static code
// locations plus the execution's live frontier.
//
// Value pairs are canonicalized per label in collapsed mode, so the
// builder's memory grows with code coverage (the number of distinct
// labels), not with run time — the property §5.2 relies on for analyzing
// long executions.
type builder struct {
	ar *flowgraph.Arena

	// uf unions collapsed-label endpoints lazily; classes are resolved only
	// at export. nil in exact mode, where no unions ever happen.
	uf *unionfind.UF

	// slots maps a label to its arena edge slot (collapsed mode only;
	// exact-mode labels are unique by construction, so no map is needed).
	slots map[flowgraph.Label]int32

	// labels counts distinct labelled edges ever emitted; unlike the
	// arena's live-edge count it is immune to compaction, so reports keep
	// their historical meaning.
	labels int

	srcEl, sinkEl int32

	exact  bool
	serial uint64

	// canonVal maps a site label to its canonical value pair (collapsed
	// mode only).
	canonVal map[flowgraph.Label]valPair

	// attrib records, per final edge label, which secret-stream bytes fed
	// the Source edges emitted under that label (Options.AttributeSources
	// mode; nil otherwise). It is keyed on the label as stored in the
	// arena — after the exact-mode serial stamp — so exported edges look
	// their attribution up by Edge.Label directly.
	attrib map[flowgraph.Label][]flowgraph.SourceContrib

	implicitEdges int
}

type valPair struct {
	in, out int32
}

func newBuilder(exact, attribute bool) *builder {
	b := &builder{
		ar:    flowgraph.NewArena(),
		exact: exact,
	}
	b.srcEl = 0 // arena Source
	b.sinkEl = 1
	if !exact {
		b.uf = unionfind.New(2) // elements 0,1 mirror the terminal nodes
		b.slots = map[flowgraph.Label]int32{}
		b.canonVal = map[flowgraph.Label]valPair{}
	}
	if attribute {
		b.attrib = map[flowgraph.Label][]flowgraph.SourceContrib{}
	}
	return b
}

// element allocates a fresh graph element (used for region and chain nodes).
func (b *builder) element() int32 {
	el := b.ar.AddNode()
	if b.uf != nil {
		b.uf.MakeSet() // keep element ids and arena node ids in lockstep
	}
	return el
}

// addEdge records an information channel of cap bits from element `from` to
// element `to` under the given label.
func (b *builder) addEdge(from, to int32, cap int64, lbl flowgraph.Label) {
	if lbl.Kind == flowgraph.KindImplicit {
		b.implicitEdges++
	}
	if b.exact {
		b.serial++
		lbl.Ctx = b.serial
		b.ar.AddEdge(from, to, cap, lbl)
		b.labels++
		return
	}
	if slot, ok := b.slots[lbl]; ok {
		b.ar.Accumulate(slot, cap)
		ef, et := b.ar.EdgeEnds(slot)
		b.uf.Union(int(ef), int(from))
		b.uf.Union(int(et), int(to))
		return
	}
	b.slots[lbl] = b.ar.AddEdge(from, to, cap, lbl)
	b.labels++
}

// addSourceEdge is addEdge for Source-rooted secret-input edges, recording
// the emitting byte's secret-stream offset when attribution is enabled.
// streamOff < 0 marks an unattributed byte (memory marked secret with no
// stream position); every class view then keeps its capacity. Attribution
// is recorded against the label as finally stored — in exact mode that is
// the post-serial label, which addEdge would otherwise hide — which is why
// this cannot be layered on top of addEdge from the tracker.
func (b *builder) addSourceEdge(to int32, cap int64, lbl flowgraph.Label, streamOff int) {
	if b.attrib == nil {
		b.addEdge(b.srcEl, to, cap, lbl)
		return
	}
	if b.exact {
		b.serial++
		lbl.Ctx = b.serial
		b.ar.AddEdge(b.srcEl, to, cap, lbl)
		b.labels++
	} else if slot, ok := b.slots[lbl]; ok {
		b.ar.Accumulate(slot, cap)
		ef, et := b.ar.EdgeEnds(slot)
		b.uf.Union(int(ef), int(b.srcEl))
		b.uf.Union(int(et), int(to))
	} else {
		b.slots[lbl] = b.ar.AddEdge(b.srcEl, to, cap, lbl)
		b.labels++
	}
	b.attrib[lbl] = append(b.attrib[lbl], flowgraph.SourceContrib{Off: streamOff, Bits: cap})
}

// value creates (or, in collapsed mode, re-finds) the split node pair for a
// value produced at the given site label, charging capBits to its internal
// edge. Producers attach edges to in; consumers read from out.
func (b *builder) value(lbl flowgraph.Label, capBits int64) (in, out int32) {
	lbl.Kind = flowgraph.KindInternal
	if !b.exact {
		if vp, ok := b.canonVal[lbl]; ok {
			b.ar.Accumulate(b.slots[lbl], capBits)
			return vp.in, vp.out
		}
	}
	in = b.element()
	out = b.element()
	b.addEdge(in, out, capBits, lbl)
	if !b.exact {
		b.canonVal[lbl] = valPair{in: in, out: out}
	}
	return in, out
}

// compact runs an in-place series-parallel compaction pass over the arena.
// protected must cover every element the tracker can still attach edges to;
// see Tracker.MaybeCompact for the safety argument. Exact mode only: the
// collapsed builder's label and canonical-value maps hold slot and element
// references that compaction would invalidate.
func (b *builder) compact(protected []bool) {
	b.ar.CompactSP(protected)
}

// build assembles the current state into a flowgraph. It does not consume
// the builder, so intermediate flows (§8.1's real-time mode) can be
// computed mid-run.
func (b *builder) build() *flowgraph.Graph {
	return b.ar.Export(b.resolve())
}

// resolve returns the node-representative function for export: union-find
// class resolution in collapsed mode, identity (nil) in exact mode.
func (b *builder) resolve() func(int32) int32 {
	if b.uf == nil {
		return nil
	}
	return func(v int32) int32 { return int32(b.uf.Find(int(v))) }
}
