package taint

import (
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/unionfind"
)

// builder incrementally constructs a flow graph during execution.
//
// It implements both construction modes of paper §4.2/§5.2 with one
// mechanism. Every runtime value is a pair of union-find elements (the two
// halves of a split node); every edge carries a Label. In collapsed mode,
// edges with the same label are merged: their capacities accumulate and
// their endpoints' classes are unioned — the paper's almost-linear-time
// combination using a union-find structure (§3.2). In exact mode every edge
// is given a unique label, so no merging occurs and the graph reflects each
// dynamic operation individually.
//
// Value pairs are canonicalized per label in collapsed mode, so the
// builder's memory grows with code coverage (the number of distinct
// labels), not with run time — the property §5.2 relies on for analyzing
// long executions.
type builder struct {
	uf    *unionfind.UF
	edges map[flowgraph.Label]*accEdge
	order []flowgraph.Label

	srcEl, sinkEl int32

	exact  bool
	serial uint64

	// canonVal maps a site label to its canonical value pair (collapsed
	// mode only).
	canonVal map[flowgraph.Label]valPair

	implicitEdges int
}

type accEdge struct {
	from, to int32
	cap      int64
}

type valPair struct {
	in, out int32
}

func newBuilder(exact bool) *builder {
	b := &builder{
		uf:       unionfind.New(0),
		edges:    map[flowgraph.Label]*accEdge{},
		canonVal: map[flowgraph.Label]valPair{},
		exact:    exact,
	}
	b.srcEl = int32(b.uf.MakeSet())
	b.sinkEl = int32(b.uf.MakeSet())
	return b
}

// element allocates a fresh graph element (used for region and chain nodes).
func (b *builder) element() int32 { return int32(b.uf.MakeSet()) }

func satAdd(a, c int64) int64 {
	s := a + c
	if s > flowgraph.Inf {
		return flowgraph.Inf
	}
	return s
}

// addEdge records an information channel of cap bits from element `from` to
// element `to` under the given label.
func (b *builder) addEdge(from, to int32, cap int64, lbl flowgraph.Label) {
	if lbl.Kind == flowgraph.KindImplicit {
		b.implicitEdges++
	}
	if b.exact {
		b.serial++
		lbl.Ctx = b.serial
	}
	if e, ok := b.edges[lbl]; ok {
		e.cap = satAdd(e.cap, cap)
		b.uf.Union(int(e.from), int(from))
		b.uf.Union(int(e.to), int(to))
		return
	}
	b.edges[lbl] = &accEdge{from: from, to: to, cap: cap}
	b.order = append(b.order, lbl)
}

// value creates (or, in collapsed mode, re-finds) the split node pair for a
// value produced at the given site label, charging capBits to its internal
// edge. Producers attach edges to in; consumers read from out.
func (b *builder) value(lbl flowgraph.Label, capBits int64) (in, out int32) {
	lbl.Kind = flowgraph.KindInternal
	if !b.exact {
		if vp, ok := b.canonVal[lbl]; ok {
			e := b.edges[lbl]
			e.cap = satAdd(e.cap, capBits)
			return vp.in, vp.out
		}
	}
	in = b.element()
	out = b.element()
	b.addEdge(in, out, capBits, lbl)
	if !b.exact {
		b.canonVal[lbl] = valPair{in: in, out: out}
	}
	return in, out
}

// build assembles the current state into a flowgraph. It does not consume
// the builder, so intermediate flows (§8.1's real-time mode) can be
// computed mid-run.
func (b *builder) build() *flowgraph.Graph {
	g := flowgraph.New()
	nodeOf := map[int]flowgraph.NodeID{
		b.uf.Find(int(b.srcEl)):  flowgraph.Source,
		b.uf.Find(int(b.sinkEl)): flowgraph.Sink,
	}
	get := func(el int32) flowgraph.NodeID {
		c := b.uf.Find(int(el))
		if n, ok := nodeOf[c]; ok {
			return n
		}
		n := g.AddNode()
		nodeOf[c] = n
		return n
	}
	for _, lbl := range b.order {
		e := b.edges[lbl]
		from, to := get(e.from), get(e.to)
		if from == to || from == flowgraph.Sink || to == flowgraph.Source {
			// Self-loops carry no s-t flow; edges out of the sink or into
			// the source cannot arise from well-formed labels but are
			// dropped defensively rather than corrupting the graph.
			continue
		}
		cap := e.cap
		if cap > flowgraph.Inf {
			cap = flowgraph.Inf
		}
		g.AddEdge(from, to, cap, lbl)
	}
	return g
}
