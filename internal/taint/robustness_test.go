package taint_test

// Robustness fuzz at the instruction level: random (valid) instruction
// sequences run under the tracker. Whatever the program does, the tracker
// must not panic, the produced graph must satisfy its structural
// invariants, and the measured flow can never exceed the amount of secret
// data that entered (8 bits per secret input byte) — the analysis's global
// soundness ceiling.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowcheck/internal/maxflow"
	"flowcheck/internal/taint"
	"flowcheck/internal/vm"
)

const (
	fuzzMemBase = int32(vm.DataBase)
	fuzzMemSpan = 1 << 12 // all memory ops land in [DataBase, DataBase+4K)
)

// genInstr emits one random instruction that cannot trap (addresses are
// masked into a valid window, divisors forced nonzero, jumps skipped).
func genInstr(rng *rand.Rand, code *[]vm.Instr) {
	reg := func() uint8 { return uint8(rng.Intn(6)) } // R0..R5; leave SP/BP alone
	emit := func(in vm.Instr) { *code = append(*code, in) }

	switch rng.Intn(10) {
	case 0: // const
		emit(vm.Instr{Op: vm.OpConst, A: reg(), Imm: int32(rng.Uint32())})
	case 1: // mov
		emit(vm.Instr{Op: vm.OpMov, A: reg(), B: reg()})
	case 2, 3: // binary ALU (division via forced-nonzero divisor)
		ops := []vm.Op{vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpAnd, vm.OpOr, vm.OpXor,
			vm.OpShl, vm.OpShrU, vm.OpShrS, vm.OpCmpEQ, vm.OpCmpLTU, vm.OpCmpLTS}
		emit(vm.Instr{Op: ops[rng.Intn(len(ops))], A: reg(), B: reg(), C: reg()})
	case 4: // division with a safe divisor
		d := reg()
		emit(vm.Instr{Op: vm.OpConst, A: d, Imm: int32(1 + rng.Intn(100))})
		ops := []vm.Op{vm.OpDivU, vm.OpDivS, vm.OpModU, vm.OpModS}
		emit(vm.Instr{Op: ops[rng.Intn(len(ops))], A: reg(), B: reg(), C: d})
	case 5: // unary / sub-register
		switch rng.Intn(3) {
		case 0:
			emit(vm.Instr{Op: vm.OpNot, A: reg(), B: reg()})
		case 1:
			emit(vm.Instr{Op: vm.OpNeg, A: reg(), B: reg()})
		default:
			emit(vm.Instr{Op: vm.OpExtB, A: reg(), B: reg(), Imm: int32(rng.Intn(4))})
		}
	case 6: // masked load
		a := reg()
		emit(vm.Instr{Op: vm.OpConst, A: vm.R5, Imm: int32(fuzzMemSpan - 8)})
		emit(vm.Instr{Op: vm.OpAnd, A: a, B: a, C: vm.R5})
		emit(vm.Instr{Op: vm.OpConst, A: vm.R5, Imm: fuzzMemBase})
		emit(vm.Instr{Op: vm.OpAdd, A: a, B: a, C: vm.R5})
		w := []uint8{1, 2, 4}[rng.Intn(3)]
		emit(vm.Instr{Op: vm.OpLoad, A: reg(), B: a, W: w})
	case 7: // masked store
		a := reg()
		emit(vm.Instr{Op: vm.OpConst, A: vm.R5, Imm: int32(fuzzMemSpan - 8)})
		emit(vm.Instr{Op: vm.OpAnd, A: a, B: a, C: vm.R5})
		emit(vm.Instr{Op: vm.OpConst, A: vm.R5, Imm: fuzzMemBase})
		emit(vm.Instr{Op: vm.OpAdd, A: a, B: a, C: vm.R5})
		w := []uint8{1, 2, 4}[rng.Intn(3)]
		emit(vm.Instr{Op: vm.OpStore, A: a, B: reg(), W: w})
	case 8: // forward branch over one instruction
		c := reg()
		target := int32(len(*code) + 2)
		op := vm.OpJz
		if rng.Intn(2) == 0 {
			op = vm.OpJnz
		}
		emit(vm.Instr{Op: op, A: c, Imm: target})
		emit(vm.Instr{Op: vm.OpConst, A: reg(), Imm: int32(rng.Intn(256))})
	case 9: // output
		if rng.Intn(2) == 0 {
			emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysPutc})
		} else {
			// write(1, base, small)
			emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 1})
			emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: fuzzMemBase})
			emit(vm.Instr{Op: vm.OpConst, A: vm.R2, Imm: int32(rng.Intn(16))})
			emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysWrite})
		}
	}
}

func genMachineProgram(seed int64) (*vm.Program, int) {
	rng := rand.New(rand.NewSource(seed))
	var code []vm.Instr
	secretBytes := 1 + rng.Intn(32)
	// read(secret, base, secretBytes)
	code = append(code,
		vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: vm.StreamSecret},
		vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: fuzzMemBase},
		vm.Instr{Op: vm.OpConst, A: vm.R2, Imm: int32(secretBytes)},
		vm.Instr{Op: vm.OpSys, Imm: vm.SysRead},
	)
	n := 20 + rng.Intn(100)
	for i := 0; i < n; i++ {
		genInstr(rng, &code)
	}
	code = append(code, vm.Instr{Op: vm.OpHalt})
	return &vm.Program{Code: code, Sites: []vm.SiteInfo{{}}}, secretBytes
}

func TestTrackerRobustnessOnRandomCode(t *testing.T) {
	prop := func(seed int64) bool {
		prog, secretBytes := genMachineProgram(seed)
		for _, exact := range []bool{false, true} {
			tr := taint.New(taint.Options{Exact: exact})
			m := vm.NewMachineSize(prog, 1<<16)
			m.SecretIn = make([]byte, secretBytes)
			for i := range m.SecretIn {
				m.SecretIn[i] = byte(seed>>uint(i%8) + int64(i)*31)
			}
			m.MaxSteps = 100000
			tr.Attach(m)
			if err := m.Run(); err != nil {
				t.Logf("seed %d trapped (generator bug?): %v", seed, err)
				return false
			}
			g := tr.Graph()
			if err := g.Validate(); err != nil {
				t.Logf("seed %d: invalid graph: %v", seed, err)
				return false
			}
			flow := maxflow.Compute(g, maxflow.Dinic).Flow
			if flow > int64(8*secretBytes) {
				t.Logf("seed %d: flow %d exceeds secret input %d bits", seed, flow, 8*secretBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
