package taint_test

// Tracker-level behavioral tests, driven through small MiniC programs.
// (External test package: core imports taint, so these use core's
// conveniences without an import cycle.)

import (
	"strings"
	"testing"

	"flowcheck/internal/core"
	"flowcheck/internal/lang"
	"flowcheck/internal/taint"
	"flowcheck/internal/vm"
)

func analyze(t *testing.T, src string, secret []byte, opts taint.Options) *core.Result {
	t.Helper()
	res, err := core.AnalyzeSource("t.mc", src, core.Inputs{Secret: secret}, core.Config{Taint: opts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	return res
}

// Nested regions: the inner region captures its implicit flows; the outer
// region sees only the inner's outputs.
func TestNestedRegions(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char inner, outer;
    __enclose(outer) {
        __enclose(inner) {
            if (buf[0] > 'm') inner = 1;
            else inner = 2;
        }
        if (inner == 1) outer = 7;
        else outer = 9;
    }
    putc(outer);
    return 0;
}`
	res := analyze(t, src, []byte("x"), taint.Options{})
	// Information funnels: 1 bit into the inner region; everything the
	// outer region learns derives from it.
	if res.Bits != 1 {
		t.Fatalf("bits = %d, want 1; cut %s", res.Bits, res.CutString())
	}
}

// A region whose outputs are never used afterwards contributes nothing.
func TestRegionDeadOutputs(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char dead;
    __enclose(dead) {
        if (buf[0] > 'm') dead = 1;
    }
    putc('k');
    return 0;
}`
	res := analyze(t, src, []byte("x"), taint.Options{})
	if res.Bits != 0 {
		t.Fatalf("bits = %d, want 0 (region output unused)", res.Bits)
	}
}

// Two sequential outputs after one region: the region's information is
// counted once even though both outputs depend on it.
func TestRegionOutputUsedTwice(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    char r;
    __enclose(r) {
        if (buf[0] > 'm') r = 1;
        else r = 0;
    }
    putc('0' + r);
    putc('0' + r);
    return 0;
}`
	res := analyze(t, src, []byte("x"), taint.Options{})
	if res.Bits != 1 {
		t.Fatalf("bits = %d, want 1", res.Bits)
	}
}

// Stats reflect activity: regions entered, implicit edges, secret bytes.
func TestStatsPopulated(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    char n;
    __enclose(n) {
        for (int i = 0; i < 4; i++)
            if (buf[i] == 'x') n++;
    }
    putc(n);
    return 0;
}`
	res := analyze(t, src, []byte("axbx"), taint.Options{})
	st := res.Stats
	if st.RegionsEntered != 1 {
		t.Errorf("regions = %d", st.RegionsEntered)
	}
	if st.ImplicitEdges == 0 {
		t.Error("no implicit edges recorded")
	}
	if st.SecretInputBytes != 4 {
		t.Errorf("secret bytes = %d", st.SecretInputBytes)
	}
	if st.OutputBytes != 1 {
		t.Errorf("output bytes = %d", st.OutputBytes)
	}
	if st.Elements == 0 || st.LabelledEdges == 0 {
		t.Errorf("graph stats empty: %+v", st)
	}
}

// The warning cap bounds diagnostic memory.
func TestWarningCap(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    for (int i = 0; i < 100; i++) {
        if (buf[0] > 'm') putc('a');
        else putc('b');
    }
    return 0;
}`
	res := analyze(t, src, []byte("z"), taint.Options{WarnImplicit: true, MaxWarnings: 5})
	if len(res.Warnings) != 5 {
		t.Fatalf("warnings = %d, want capped at 5", len(res.Warnings))
	}
}

// SecretRanges: only the configured window of the secret stream is secret,
// even across multiple reads.
func TestSecretRangesAcrossReads(t *testing.T) {
	src := `
int main() {
    char a[2];
    char b[2];
    read_secret(a, 2); // stream offsets 0,1
    read_secret(b, 2); // stream offsets 2,3
    putc(a[0]); putc(a[1]); putc(b[0]); putc(b[1]);
    return 0;
}`
	res := analyze(t, src, []byte{1, 2, 3, 4}, taint.Options{
		SecretRanges: []taint.StreamRange{{Off: 1, Len: 2}}, // a[1] and b[0]
	})
	if res.Bits != 16 {
		t.Fatalf("bits = %d, want 16 (two secret bytes)", res.Bits)
	}
}

// Exact mode and collapsed mode agree on straight-line data flows.
func TestModesAgreeOnStraightLine(t *testing.T) {
	src := `
int main() {
    char buf[3];
    read_secret(buf, 3);
    putc(buf[0] ^ buf[1]);
    putc(buf[2] & 0x3F);
    return 0;
}`
	coll := analyze(t, src, []byte("abc"), taint.Options{})
	exact := analyze(t, src, []byte("abc"), taint.Options{Exact: true})
	if coll.Bits != exact.Bits {
		t.Fatalf("collapsed %d != exact %d", coll.Bits, exact.Bits)
	}
	if coll.Bits != 14 {
		t.Fatalf("bits = %d, want 14 (8 + 6)", coll.Bits)
	}
}

// The descriptor machinery engages for large region outputs.
func TestLazyDescriptorsEngage(t *testing.T) {
	src := `
char big[4096];
int main() {
    char buf[1];
    read_secret(buf, 1);
    __enclose(big : 4096) {
        if (buf[0] > 'm') big[0] = 1;
    }
    putc(big[100]);
    return 0;
}`
	res := analyze(t, src, []byte("z"), taint.Options{})
	// The whole array was retagged lazily and one byte read back out.
	if res.Bits != 1 {
		t.Fatalf("bits = %d, want 1 (region carries the single branch)", res.Bits)
	}
}

// Declassified data stays public through subsequent computation.
func TestDeclassifyPropagates(t *testing.T) {
	src := `
int main() {
    char buf[4];
    read_secret(buf, 4);
    __declassify(buf, 2);
    putc(buf[0] + buf[1]); // both declassified
    putc(buf[2]);          // still secret
    return 0;
}`
	res := analyze(t, src, []byte("abcd"), taint.Options{})
	if res.Bits != 8 {
		t.Fatalf("bits = %d, want 8", res.Bits)
	}
}

// Context-sensitive labels distinguish call sites: a helper called from two
// places does not collapse the two flows into one node chain.
func TestContextSensitivityDistinguishesCallSites(t *testing.T) {
	src := `
char out1, out2;
void pick(char *src0, char *dst) { *dst = *src0; }
int main() {
    char buf[2];
    read_secret(buf, 2);
    pick(buf, &out1);
    pick(buf + 1, &out2);
    putc(out1);
    putc(out2);
    return 0;
}`
	ins := analyze(t, src, []byte("ab"), taint.Options{})
	ctx := analyze(t, src, []byte("ab"), taint.Options{ContextSensitive: true})
	// Both are sound (16 bits of data flow); context sensitivity must not
	// lose information, and typically yields at least as large a graph.
	if ins.Bits != 16 || ctx.Bits != 16 {
		t.Fatalf("bits = %d/%d, want 16/16", ins.Bits, ctx.Bits)
	}
	if ctx.Graph.NumNodes() < ins.Graph.NumNodes() {
		t.Fatalf("context-sensitive graph smaller than insensitive: %d < %d",
			ctx.Graph.NumNodes(), ins.Graph.NumNodes())
	}
}

// Reset clears per-run state but keeps accumulated structure: analyzing the
// same input twice doubles accumulated capacities, not the bound's
// soundness.
func TestMultiRunSameInputStable(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    putc(buf[0]);
    return 0;
}`
	prog, err := core.AnalyzeSource("t.mc", src, core.Inputs{Secret: []byte{7}}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Bits != 8 {
		t.Fatalf("single run = %d", prog.Bits)
	}
	// Two identical runs merged: the input edge accumulates to 16, the
	// output edge too; the bound stays finite and >= 8.
	multi := analyzeMulti(t, src, [][]byte{{7}, {7}})
	if multi.Bits < 8 {
		t.Fatalf("merged bits = %d, want >= 8", multi.Bits)
	}
}

func analyzeMulti(t *testing.T, src string, secrets [][]byte) *core.Result {
	t.Helper()
	p, err := compileSrc(src)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []core.Inputs
	for _, s := range secrets {
		inputs = append(inputs, core.Inputs{Secret: s})
	}
	res, err := core.AnalyzeMulti(p, inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compileSrc(src string) (*vm.Program, error) {
	return lang.Compile("t.mc", src)
}

func TestWarnIncludesLocation(t *testing.T) {
	src := `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0]) putc('y'); else putc('n');
    return 0;
}`
	res := analyze(t, src, []byte{1}, taint.Options{WarnImplicit: true})
	if len(res.Warnings) == 0 {
		t.Fatal("no warnings")
	}
	if !strings.Contains(res.Warnings[0].Site, "t.mc:") {
		t.Fatalf("warning site %q lacks source location", res.Warnings[0].Site)
	}
}
