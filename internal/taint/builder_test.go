package taint

import (
	"testing"

	"flowcheck/internal/flowgraph"
	"flowcheck/internal/maxflow"
)

func lbl(site uint32, aux uint8, kind flowgraph.EdgeKind) flowgraph.Label {
	return flowgraph.Label{Site: site, Aux: aux, Kind: kind}
}

func TestBuilderSimpleChain(t *testing.T) {
	b := newBuilder(false, false)
	in, out := b.value(lbl(1, 0, flowgraph.KindInternal), 8)
	b.addEdge(b.srcEl, in, 8, lbl(1, 1, flowgraph.KindInput))
	b.addEdge(out, b.sinkEl, 8, lbl(2, 0, flowgraph.KindOutput))
	g := b.build()
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 8 {
		t.Fatalf("flow = %d, want 8", f)
	}
}

// Collapsed mode: repeating the same site accumulates capacity on one edge
// set rather than growing the graph (§5.2).
func TestBuilderCollapseAccumulates(t *testing.T) {
	b := newBuilder(false, false)
	for i := 0; i < 100; i++ {
		in, out := b.value(lbl(1, 0, flowgraph.KindInternal), 8)
		b.addEdge(b.srcEl, in, 8, lbl(1, 1, flowgraph.KindInput))
		b.addEdge(out, b.sinkEl, 8, lbl(2, 0, flowgraph.KindOutput))
	}
	g := b.build()
	if g.NumEdges() != 3 {
		t.Fatalf("collapsed edges = %d, want 3", g.NumEdges())
	}
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 800 {
		t.Fatalf("accumulated flow = %d, want 800", f)
	}
	if b.uf.Len() != 4 { // src, sink, one value pair
		t.Fatalf("uf elements = %d, want 4 (bounded by labels)", b.uf.Len())
	}
}

// Exact mode: every repetition gets fresh nodes and edges.
func TestBuilderExactGrows(t *testing.T) {
	b := newBuilder(true, false)
	for i := 0; i < 10; i++ {
		in, out := b.value(lbl(1, 0, flowgraph.KindInternal), 8)
		b.addEdge(b.srcEl, in, 8, lbl(1, 1, flowgraph.KindInput))
		b.addEdge(out, b.sinkEl, 8, lbl(2, 0, flowgraph.KindOutput))
	}
	g := b.build()
	if g.NumEdges() != 30 {
		t.Fatalf("exact edges = %d, want 30", g.NumEdges())
	}
	// Ten disjoint 8-bit paths.
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 80 {
		t.Fatalf("flow = %d, want 80", f)
	}
}

func TestBuilderCapSaturates(t *testing.T) {
	b := newBuilder(false, false)
	in, out := b.value(lbl(1, 0, flowgraph.KindInternal), flowgraph.Inf)
	b.addEdge(b.srcEl, in, flowgraph.Inf, lbl(1, 1, flowgraph.KindInput))
	b.addEdge(b.srcEl, in, flowgraph.Inf, lbl(1, 1, flowgraph.KindInput))
	b.addEdge(out, b.sinkEl, 4, lbl(2, 0, flowgraph.KindOutput))
	g := b.build()
	for _, e := range g.Edges {
		if e.Cap > flowgraph.Inf {
			t.Fatalf("capacity overflow: %d", e.Cap)
		}
	}
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 4 {
		t.Fatalf("flow = %d, want 4", f)
	}
}

// Unioning endpoints through repeated labels keeps the graph connected
// correctly: two different intermediates merged by a shared edge label.
func TestBuilderUnionMergesClasses(t *testing.T) {
	b := newBuilder(false, false)
	// Two executions of "site 5" with different downstream consumers.
	in1, out1 := b.value(lbl(5, 0, flowgraph.KindInternal), 8)
	b.addEdge(b.srcEl, in1, 8, lbl(5, 1, flowgraph.KindInput))
	in2, out2 := b.value(lbl(5, 0, flowgraph.KindInternal), 8)
	b.addEdge(b.srcEl, in2, 8, lbl(5, 1, flowgraph.KindInput))
	if in1 != in2 || out1 != out2 {
		t.Fatal("collapsed values at the same site must be canonical")
	}
	b.addEdge(out2, b.sinkEl, 16, lbl(6, 0, flowgraph.KindOutput))
	g := b.build()
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 16 {
		t.Fatalf("flow = %d, want 16", f)
	}
}

func TestBuilderSelfLoopDropped(t *testing.T) {
	b := newBuilder(false, false)
	in, out := b.value(lbl(1, 0, flowgraph.KindInternal), 8)
	// Force a union that turns an edge into a self-loop.
	b.uf.Union(int(in), int(out))
	b.addEdge(b.srcEl, in, 8, lbl(1, 1, flowgraph.KindInput))
	b.addEdge(out, b.sinkEl, 8, lbl(2, 0, flowgraph.KindOutput))
	g := b.build()
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	if f := maxflow.Compute(g, maxflow.Dinic).Flow; f != 8 {
		t.Fatalf("flow = %d, want 8", f)
	}
}

func TestBuilderRebuildIsStable(t *testing.T) {
	b := newBuilder(false, false)
	in, out := b.value(lbl(1, 0, flowgraph.KindInternal), 8)
	b.addEdge(b.srcEl, in, 8, lbl(1, 1, flowgraph.KindInput))
	b.addEdge(out, b.sinkEl, 8, lbl(2, 0, flowgraph.KindOutput))
	g1 := b.build()
	g2 := b.build()
	if g1.NumEdges() != g2.NumEdges() || g1.NumNodes() != g2.NumNodes() {
		t.Fatal("build is not repeatable")
	}
	f1 := maxflow.Compute(g1, maxflow.Dinic).Flow
	f2 := maxflow.Compute(g2, maxflow.Dinic).Flow
	if f1 != f2 {
		t.Fatalf("flows differ: %d vs %d", f1, f2)
	}
}
