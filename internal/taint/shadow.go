package taint

import (
	"flowcheck/internal/bits"
	"flowcheck/internal/vm"
)

// Shadow state per guest memory byte: the union-find element of the value
// occupying the byte (0 = public, no graph node) and its secrecy mask.
//
// Two representations coexist, as in paper §4.3: a paged per-byte shadow,
// and a bounded set of lazy region descriptors. A descriptor records that a
// long contiguous range holds one value (for example after an enclosure
// region retags a whole array) without touching each byte; later
// single-byte writes are recorded as exceptions until the descriptor
// overflows and is shrunk or flushed.

const (
	pageShift = 12
	pageSize  = 1 << pageShift

	// Defaults from the paper: at most 40 descriptors, ranges longer than
	// 10 bytes, at most 30 exceptions each.
	defaultMaxDescriptors = 40
	descMinLen            = 10
	defaultMaxExceptions  = 30
)

type page struct {
	el   [pageSize]int32
	mask [pageSize]uint8
}

// descriptor says bytes [start, end) hold the value el with byte mask mask,
// except at the addresses in exc (whose per-byte shadow is authoritative).
type descriptor struct {
	start, end vm.Word
	el         int32
	mask       uint8
	exc        []vm.Word
}

func (d *descriptor) covers(a vm.Word) bool { return a >= d.start && a < d.end }

func (d *descriptor) excepted(a vm.Word) bool {
	for _, e := range d.exc {
		if e == a {
			return true
		}
	}
	return false
}

type shadowMem struct {
	pages map[vm.Word]*page
	descs []*descriptor

	maxDescs int
	maxExc   int

	// One-entry page cache: consecutive accesses overwhelmingly hit the
	// same page (the current stack frame or the active buffer).
	lastKey  vm.Word
	lastPage *page

	// Flushes counts descriptor eliminations (for stats/ablation).
	flushes int
}

func newShadowMem(maxDescs, maxExc int) *shadowMem {
	switch {
	case maxDescs == 0:
		maxDescs = defaultMaxDescriptors
	case maxDescs < 0:
		maxDescs = 0 // lazy descriptors disabled (the §4.3 ablation)
	}
	if maxExc <= 0 {
		maxExc = defaultMaxExceptions
	}
	return &shadowMem{pages: map[vm.Word]*page{}, maxDescs: maxDescs, maxExc: maxExc}
}

func (s *shadowMem) pageFor(a vm.Word, create bool) *page {
	key := a >> pageShift
	if s.lastPage != nil && s.lastKey == key {
		return s.lastPage
	}
	p := s.pages[key]
	if p == nil && create {
		p = &page{}
		s.pages[key] = p
	}
	if p != nil {
		s.lastKey, s.lastPage = key, p
	}
	return p
}

// descFor returns the descriptor covering a, if any. Descriptors never
// overlap (setRange flushes overlaps), so at most one matches.
func (s *shadowMem) descFor(a vm.Word) *descriptor {
	for _, d := range s.descs {
		if d.covers(a) {
			return d
		}
	}
	return nil
}

// get returns the shadow of one byte.
func (s *shadowMem) get(a vm.Word) (int32, bits.Mask) {
	if d := s.descFor(a); d != nil && !d.excepted(a) {
		return d.el, bits.Mask(d.mask)
	}
	if p := s.pageFor(a, false); p != nil {
		off := a & (pageSize - 1)
		return p.el[off], bits.Mask(p.mask[off])
	}
	return 0, 0
}

// setByte writes the shadow of one byte, recording an exception if a
// descriptor covers the address.
func (s *shadowMem) setByte(a vm.Word, el int32, mask bits.Mask) {
	if d := s.descFor(a); d != nil {
		if !d.excepted(a) {
			d.exc = append(d.exc, a)
			if len(d.exc) > s.maxExc {
				s.overflow(d)
			}
		}
	}
	p := s.pageFor(a, el != 0 || mask != 0 || s.pageFor(a, false) != nil)
	if p != nil {
		off := a & (pageSize - 1)
		p.el[off] = el
		p.mask[off] = uint8(mask)
	}
}

// overflow handles a descriptor exceeding its exception budget: if all
// exceptions fall in the first half, the descriptor shrinks to the second
// half (the excepted bytes' per-byte shadow is already authoritative);
// otherwise it is eliminated by flushing to the per-byte shadow.
func (s *shadowMem) overflow(d *descriptor) {
	mid := d.start + (d.end-d.start)/2
	allFirst := true
	for _, e := range d.exc {
		if e >= mid {
			allFirst = false
			break
		}
	}
	if allFirst {
		// Flush the first half's non-excepted bytes, then shrink.
		for a := d.start; a < mid; a++ {
			if !d.excepted(a) {
				s.rawSet(a, d.el, d.mask)
			}
		}
		d.start = mid
		d.exc = d.exc[:0]
		return
	}
	s.flush(d)
}

// rawSet writes per-byte shadow without descriptor bookkeeping.
func (s *shadowMem) rawSet(a vm.Word, el int32, mask uint8) {
	p := s.pageFor(a, el != 0 || mask != 0 || s.pageFor(a, false) != nil)
	if p != nil {
		off := a & (pageSize - 1)
		p.el[off] = el
		p.mask[off] = mask
	}
}

// flush eliminates a descriptor, materializing it into the per-byte shadow.
func (s *shadowMem) flush(d *descriptor) {
	for a := d.start; a < d.end; a++ {
		if !d.excepted(a) {
			s.rawSet(a, d.el, d.mask)
		}
	}
	for i, x := range s.descs {
		if x == d {
			s.descs = append(s.descs[:i], s.descs[i+1:]...)
			break
		}
	}
	s.flushes++
}

// setRange sets [a, a+n) to one value. Long ranges become descriptors (the
// lazy path); short ones are written byte by byte.
func (s *shadowMem) setRange(a vm.Word, n int, el int32, mask bits.Mask) {
	if n <= 0 {
		return
	}
	end := a + vm.Word(n)
	// Resolve overlaps: shrink or flush any descriptor touching the range.
	for i := 0; i < len(s.descs); {
		d := s.descs[i]
		switch {
		case d.end <= a || d.start >= end:
			i++ // disjoint
		case d.start >= a && d.end <= end:
			// Fully covered: drop without flushing (it is being overwritten).
			s.descs = append(s.descs[:i], s.descs[i+1:]...)
		default:
			// Partial overlap: flush (rare).
			s.flush(d)
		}
	}
	if n > descMinLen && len(s.descs) < s.maxDescs {
		s.descs = append(s.descs, &descriptor{start: a, end: end, el: el, mask: uint8(mask)})
		// Clear stale exceptions' authority: per-byte values inside the
		// range are now overridden only via the exception list, which is
		// empty, so nothing else to do.
		return
	}
	if n > descMinLen && s.maxDescs > 0 && len(s.descs) >= s.maxDescs {
		// Descriptor table full: evict the oldest to keep the lazy path.
		s.flush(s.descs[0])
		s.descs = append(s.descs, &descriptor{start: a, end: end, el: el, mask: uint8(mask)})
		return
	}
	for i := 0; i < n; i++ {
		s.setByte(a+vm.Word(i), el, mask)
	}
}

// forEachEl calls mark for every value element currently stored anywhere in
// shadow memory — page bytes and lazy descriptors. Online compaction uses
// it to protect the execution's live frontier: any element reported here
// can still feed edges and must not be contracted. Zero (public) entries
// are skipped; duplicates may be reported.
func (s *shadowMem) forEachEl(mark func(int32)) {
	for _, p := range s.pages {
		for _, el := range p.el {
			if el != 0 {
				mark(el)
			}
		}
	}
	for _, d := range s.descs {
		if d.el != 0 {
			mark(d.el)
		}
	}
}

// run is a maximal subrange of bytes holding the same value element.
type run struct {
	start   vm.Word
	n       int
	el      int32
	maskSum int // total secret bits across the run's bytes
}

// rangeRuns decomposes [a, a+n) into value runs, coalescing adjacent bytes
// that belong to the same value. Region-leave retagging uses this to draw
// one edge per distinct old value rather than one per byte.
func (s *shadowMem) rangeRuns(a vm.Word, n int) []run {
	// Fast path: the whole range is one exception-free descriptor.
	if d := s.descFor(a); d != nil && len(d.exc) == 0 && a+vm.Word(n) <= d.end {
		return []run{{start: a, n: n, el: d.el, maskSum: n * bits.Count(bits.Mask(d.mask))}}
	}
	var runs []run
	for i := 0; i < n; i++ {
		addr := a + vm.Word(i)
		el, m := s.get(addr)
		cnt := bits.Count(m & 0xFF)
		if len(runs) > 0 && runs[len(runs)-1].el == el && runs[len(runs)-1].start+vm.Word(runs[len(runs)-1].n) == addr {
			runs[len(runs)-1].n++
			runs[len(runs)-1].maskSum += cnt
		} else {
			runs = append(runs, run{start: addr, n: 1, el: el, maskSum: cnt})
		}
	}
	return runs
}
