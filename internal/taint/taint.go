// Package taint implements the paper's dynamic analysis (§2–§4): bit-level
// secrecy tracking, value tagging, implicit-flow accounting with enclosure
// regions and an output chain, and flow-graph construction with optional
// collapsing by code location.
//
// A Tracker attaches to a vm.Machine as its Tracer. As the guest executes,
// the tracker maintains a shadow secrecy mask and a graph node for every
// register and memory byte derived from the secret input, and emits
// capacity-labelled edges into a builder. After (or during) the run, Graph
// produces a flowgraph whose Source→Sink maximum flow bounds the bits of
// secret information the execution revealed.
package taint

import (
	"fmt"
	"sort"

	"flowcheck/internal/bits"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/vm"
)

// Options configures a Tracker.
type Options struct {
	// Exact disables graph collapsing: every dynamic operation becomes its
	// own nodes and edges (§4.2's streaming mode). Memory then grows with
	// run time, so exact mode suits small runs, tests, and ablations. The
	// default (false) collapses edges by code location (§5.2).
	Exact bool

	// ContextSensitive labels edges with a 64-bit probabilistic
	// calling-context hash in addition to the instruction address
	// (Bond–McKinley, as in §3.2), trading graph size for precision.
	ContextSensitive bool

	// MaxDescriptors and MaxExceptions bound the lazy large-region
	// machinery of §4.3 (defaults 40 and 30). A negative MaxDescriptors
	// disables the lazy path entirely — the per-byte ablation of §4.3.
	MaxDescriptors int
	MaxExceptions  int

	// WarnImplicit logs every implicit-flow operation that is not inside
	// an enclosure region — the mode §8 uses to find where annotations are
	// needed.
	WarnImplicit bool

	// MaxWarnings bounds diagnostic accumulation (default 1000).
	MaxWarnings int

	// SecretRanges restricts which byte offsets of the secret input stream
	// are treated as secret; nil means all of it. This implements the
	// paper's §10.1 "different kinds of secret": analyzing the same
	// execution once per class, with each class's range, measures each
	// secret's disclosure independently.
	SecretRanges []StreamRange

	// Compact enables online series-parallel compaction in exact mode: when
	// the number of live edges grows past an epoch threshold, the part of
	// the graph the execution can no longer touch is contracted in place
	// (§5.1 reductions), and the next epoch begins Compact edges above the
	// compacted size. This keeps peak memory proportional to static code
	// locations plus the live frontier rather than executed instructions —
	// the online analogue of §5.2's collapsing. Zero disables compaction;
	// collapsed mode ignores it (collapsing already bounds the graph).
	Compact int

	// AttributeSources records, for every Source edge emitted, which
	// secret-stream byte offsets fed it and with how many bits, exposed
	// via Tracker.SourceMap after the graph is built. This is the
	// multi-commodity alternative to SecretRanges: mark everything in one
	// execution, then overlay per-class capacity views on the shared
	// graph (one execution, N class solves) instead of re-executing with
	// one ranging per class. Setting it forces Compact to 0 — online
	// compaction can merge Source edges away and lose their labels, which
	// would silently drop attribution.
	AttributeSources bool
}

// StreamRange is a byte range of the secret input stream (§10.1).
type StreamRange struct {
	Off, Len int
}

// Probe observes the dynamic control-flow facts the static cross-checker
// (internal/static) validates against: tainted conditional branches,
// tainted indirect control transfers, and enclosure-region brackets. All
// PCs are instruction indices into the running program. A probe is
// per-run state: Reset detaches it, so the engine re-installs one before
// each execution it wants observed.
type Probe interface {
	// TaintedBranch reports a conditional branch on a secret condition.
	TaintedBranch(pc int)
	// TaintedIndirect reports an indirect jump (or return) through a
	// secret target.
	TaintedIndirect(pc int)
	// RegionEnter and RegionLeave bracket a dynamic enclosure region.
	RegionEnter(pc int)
	RegionLeave(pc int)
}

// Warning is a diagnostic produced during tracking.
type Warning struct {
	Site string
	Msg  string
}

func (w Warning) String() string { return w.Site + ": " + w.Msg }

// Snapshot records an intermediate flow measurement (the §8.1 real-time
// mode), taken at a __flownote() call.
type Snapshot struct {
	Steps       uint64
	OutputBytes int
	Bits        int64
}

// Stats summarizes tracker activity.
type Stats struct {
	Elements         int // graph elements (arena nodes) allocated
	LabelledEdges    int // distinct edge labels
	ImplicitEdges    int // implicit-flow edge events
	DescriptorFlush  int // lazy-region descriptor eliminations
	RegionsEntered   int
	AutoOutputs      int // undeclared written locations retagged at leaves
	OutputBytes      int
	SecretInputBytes int
}

type regionState struct {
	el       int32
	declared []vm.Range
	active   bool
	enterPC  uint32

	// auto records written-but-undeclared locations for the dynamic
	// soundness check. Stack writes within the current frame (between SP
	// and BP at write time) are coalesced into one min/max range so loops
	// don't pay a map operation per byte; the live part (at or above SP at
	// leave) is retagged. Data-segment and above-frame writes are tracked
	// exactly.
	auto         map[vm.Word]bool // non-stack writes
	stackLo      vm.Word          // frame-write range (stackLo < stackHi)
	stackHi      vm.Word
	autoOverflow bool
	autoLo       vm.Word
	autoHi       vm.Word

	// lastDecl caches the index of the declared range the previous write
	// hit: loops write the same output ranges repeatedly.
	lastDecl int
}

const autoTrackLimit = 4096

// Tracker implements vm.Tracer.
type Tracker struct {
	opts Options
	m    *vm.Machine
	b    *builder
	sh   *shadowMem

	regEl   [vm.NumRegs]int32
	regMask [vm.NumRegs]bits.Mask

	regions []*regionState
	chainEl int32

	ctx      uint64
	ctxStack []uint64

	regionCanon map[flowgraph.Label]int32
	chainCanon  map[flowgraph.Label]int32

	warnings  []Warning
	snapshots []Snapshot
	stats     Stats
	probe     Probe

	// secPos tracks the secret stream offset for SecretRanges filtering.
	secPos int

	// compactAt is the live-edge threshold that triggers the next online
	// compaction pass (see Options.Compact).
	compactAt int
	// protScratch is the reusable protected-node mark array for compaction.
	protScratch []bool

	// csr and noteSolver serve FlowNote's mid-run measurements: the graph is
	// handed to the solver as a reusable CSR view, skipping Graph
	// materialization.
	csr        flowgraph.CSR
	noteSolver *maxflow.Solver
}

// New creates a tracker.
func New(opts Options) *Tracker {
	if opts.MaxWarnings == 0 {
		opts.MaxWarnings = 1000
	}
	if opts.AttributeSources {
		opts.Compact = 0 // compaction can drop Source-edge labels
	}
	t := &Tracker{
		opts:        opts,
		b:           newBuilder(opts.Exact, opts.AttributeSources),
		sh:          newShadowMem(opts.MaxDescriptors, opts.MaxExceptions),
		regionCanon: map[flowgraph.Label]int32{},
		chainCanon:  map[flowgraph.Label]int32{},
	}
	t.chainEl = t.b.element()
	t.compactAt = opts.Compact
	return t
}

// Attach installs the tracker as m's tracer.
func (t *Tracker) Attach(m *vm.Machine) {
	t.m = m
	m.Tracer = t
}

// Reset prepares the tracker for another execution while keeping the
// accumulated graph. In collapsed mode, edges of the new run merge with the
// old ones by label — the multi-run combination of §3.2, applied online —
// so the final graph's maximum flow is jointly sound for all runs analyzed.
func (t *Tracker) Reset() {
	t.sh = newShadowMem(t.opts.MaxDescriptors, t.opts.MaxExceptions)
	for i := range t.regEl {
		t.regEl[i] = 0
		t.regMask[i] = 0
	}
	t.regions = t.regions[:0]
	t.ctx = 0
	t.ctxStack = t.ctxStack[:0]
	t.secPos = 0
	t.m = nil
	t.probe = nil
}

// SetProbe installs (or, with nil, detaches) a dynamic-event observer for
// the next execution. Reset and ResetAll detach it.
func (t *Tracker) SetProbe(p Probe) { t.probe = p }

// ResetAll reinitializes the tracker for an unrelated execution, discarding
// the accumulated graph, canonical elements, and diagnostics — unlike
// Reset, which keeps them so successive runs merge online (§3.2). The
// engine's pooled sessions call this between independent runs; the parallel
// batch path then re-establishes §3.2 soundness by merging the per-run
// graphs offline, by label.
func (t *Tracker) ResetAll() {
	t.Reset()
	t.b = newBuilder(t.opts.Exact, t.opts.AttributeSources)
	t.chainEl = t.b.element()
	t.compactAt = t.opts.Compact
	clear(t.regionCanon)
	clear(t.chainCanon)
	// Diagnostics escape into Results; release rather than truncate.
	t.warnings = nil
	t.snapshots = nil
	t.stats = Stats{}
}

// Graph builds the flow graph for the execution so far.
func (t *Tracker) Graph() *flowgraph.Graph { return t.b.build() }

// SourceMap extracts the Source-edge attribution of a graph built by this
// tracker (Options.AttributeSources; nil otherwise): for each Source edge
// of g, the secret-stream bytes that fed it. Source edges with no
// recorded attribution are left out of the map and thus keep full
// capacity in every class view, which is conservative.
func (t *Tracker) SourceMap(g *flowgraph.Graph) *flowgraph.SourceMap {
	if t.b.attrib == nil {
		return nil
	}
	m := &flowgraph.SourceMap{}
	for i, e := range g.Edges {
		if e.From != flowgraph.Source {
			continue
		}
		contribs, ok := t.b.attrib[e.Label]
		if !ok {
			continue
		}
		m.Edge = append(m.Edge, int32(i))
		m.Contribs = append(m.Contribs, contribs)
	}
	return m
}

// GraphSize reports the current size of the accumulating graph — live arena
// nodes (an upper bound on exported nodes) and live edges — without
// building it. It is cheap enough for the engine's step-interval budget
// polling: in exact mode graph growth tracks run time, and this is the
// handle that bounds it mid-run. With online compaction enabled, the size
// reported (and hence budgeted) is the post-compaction live size.
func (t *Tracker) GraphSize() (nodes, edges int) {
	return t.b.ar.LiveNodes(), t.b.ar.LiveEdges()
}

// MemStats reports the graph core's memory behavior: peak live sizes,
// totals emitted, and compaction activity.
func (t *Tracker) MemStats() flowgraph.MemStats { return t.b.ar.Mem() }

// MaybeCompact runs an online series-parallel compaction pass if compaction
// is enabled and the live-edge count has crossed the current epoch
// threshold. It must only be called at instruction boundaries (the engine's
// periodic check hook): mid-instruction, partially-emitted structures (for
// example a region being left) could reference nodes a pass would contract.
//
// Soundness: CompactSP only touches nodes outside the protected set, which
// covers every element the tracker can still attach edges to — registers,
// shadow memory (pages and descriptors), open regions, and the output
// chain head. An unprotected node can never gain another edge, so
// contracting it preserves the final graph's Source-Sink max flow.
func (t *Tracker) MaybeCompact() {
	if t.opts.Compact <= 0 || !t.opts.Exact {
		return
	}
	if t.b.ar.LiveEdges() < t.compactAt {
		return
	}
	t.b.compact(t.protectedSet())
	t.compactAt = t.b.ar.LiveEdges() + t.opts.Compact
}

// protectedSet marks every arena node the tracker may still reference.
func (t *Tracker) protectedSet() []bool {
	n := t.b.ar.NumNodes()
	p := t.protScratch
	if cap(p) < n {
		p = make([]bool, n)
	} else {
		p = p[:n]
		clear(p)
	}
	t.protScratch = p
	mark := func(el int32) {
		if el > 0 {
			p[el] = true
		}
	}
	mark(t.chainEl)
	for i := range t.regEl {
		mark(t.regEl[i])
	}
	for _, r := range t.regions {
		mark(r.el)
	}
	t.sh.forEachEl(mark)
	return p
}

// Warnings returns accumulated diagnostics.
func (t *Tracker) Warnings() []Warning { return t.warnings }

// Snapshots returns the intermediate flow measurements taken at
// __flownote() calls.
func (t *Tracker) Snapshots() []Snapshot { return t.snapshots }

// Stats returns tracker statistics.
func (t *Tracker) Stats() Stats {
	s := t.stats
	s.Elements = t.b.ar.NumNodes()
	s.LabelledEdges = t.b.labels
	s.ImplicitEdges = t.b.implicitEdges
	s.DescriptorFlush = t.sh.flushes
	return s
}

func (t *Tracker) warnf(site uint32, format string, args ...interface{}) {
	if len(t.warnings) >= t.opts.MaxWarnings {
		return
	}
	loc := fmt.Sprintf("pc=%d", t.m.PC)
	if t.m != nil && t.m.Prog != nil {
		loc = t.m.Prog.SiteString(site)
	}
	t.warnings = append(t.warnings, Warning{Site: loc, Msg: fmt.Sprintf(format, args...)})
}

// label builds an edge label for the current instruction.
func (t *Tracker) label(kind flowgraph.EdgeKind, aux uint8) flowgraph.Label {
	l := flowgraph.Label{Site: uint32(t.m.PC), Aux: aux, Kind: kind}
	if t.opts.ContextSensitive {
		l.Ctx = t.ctx
	}
	return l
}

func (t *Tracker) setReg(r int, el int32, m bits.Mask) {
	t.regEl[r] = el
	t.regMask[r] = m
}

func (t *Tracker) clearReg(r int) { t.setReg(r, 0, 0) }

// implicit records an implicit flow of capBits from the value el to the
// innermost enclosure (or the output chain when outside any region), per
// §2.2.
func (t *Tracker) implicit(site uint32, el int32, capBits int64) {
	if el == 0 || capBits == 0 {
		return
	}
	lbl := t.label(flowgraph.KindImplicit, 0)
	if n := len(t.regions); n > 0 {
		r := t.regions[n-1]
		r.active = true
		t.b.addEdge(el, r.el, capBits, lbl)
		return
	}
	if t.opts.WarnImplicit {
		t.warnf(site, "implicit flow of %d bit(s) outside any enclosure region", capBits)
	}
	t.b.addEdge(el, t.chainEl, capBits, lbl)
}

// ---------------------------------------------------------------- hooks ---

// Const implements vm.Tracer.
func (t *Tracker) Const(site uint32, rd int) { t.clearReg(rd) }

// Mov implements vm.Tracer.
func (t *Tracker) Mov(site uint32, rd, rs int) {
	// Copying does not create nodes or edges (§2.1).
	t.setReg(rd, t.regEl[rs], t.regMask[rs])
}

// Binop implements vm.Tracer.
func (t *Tracker) Binop(site uint32, op vm.Op, rd, ra, rb int, va, vb vm.Word) {
	ea, eb := t.regEl[ra], t.regEl[rb]
	if ea == 0 && eb == 0 {
		t.clearReg(rd)
		return
	}
	ma, mb := t.regMask[ra], t.regMask[rb]
	var rm bits.Mask
	switch op {
	case vm.OpAdd:
		rm = bits.Add(ma, mb, va, vb)
	case vm.OpSub:
		rm = bits.Sub(ma, mb, va, vb)
	case vm.OpMul:
		rm = bits.Mul(ma, mb, va, vb)
	case vm.OpDivU:
		rm = bits.DivU(ma, mb, va, vb)
	case vm.OpDivS:
		rm = bits.DivS(ma, mb, va, vb)
	case vm.OpModU:
		rm = bits.ModU(ma, mb, va, vb)
	case vm.OpModS:
		rm = bits.ModS(ma, mb, va, vb)
	case vm.OpAnd:
		rm = bits.And(ma, mb, va, vb)
	case vm.OpOr:
		rm = bits.Or(ma, mb, va, vb)
	case vm.OpXor:
		rm = bits.Xor(ma, mb)
	case vm.OpShl:
		rm = bits.Shl(ma, mb, va, vb)
	case vm.OpShrU:
		rm = bits.Shr(ma, mb, va, vb)
	case vm.OpShrS:
		rm = bits.Sar(ma, mb, va, vb)
	case vm.OpCmpEQ, vm.OpCmpNE, vm.OpCmpLTS, vm.OpCmpLES, vm.OpCmpLTU, vm.OpCmpLEU:
		rm = bits.Cmp(ma, mb)
	default:
		rm = bits.Mask(0)
		if ma|mb != 0 {
			rm = bits.All
		}
	}
	if rm == 0 {
		t.clearReg(rd)
		return
	}
	in, out := t.b.value(t.label(flowgraph.KindInternal, 0), int64(bits.Count(rm)))
	if ea != 0 {
		t.b.addEdge(ea, in, int64(bits.Count(ma)), t.label(flowgraph.KindData, 1))
	}
	if eb != 0 {
		t.b.addEdge(eb, in, int64(bits.Count(mb)), t.label(flowgraph.KindData, 2))
	}
	t.setReg(rd, out, rm)
}

// Unop implements vm.Tracer.
func (t *Tracker) Unop(site uint32, op vm.Op, rd, rs int, vs vm.Word) {
	es := t.regEl[rs]
	if es == 0 {
		t.clearReg(rd)
		return
	}
	ms := t.regMask[rs]
	var rm bits.Mask
	if op == vm.OpNot {
		rm = bits.Not(ms)
	} else {
		rm = bits.Sub(0, ms, 0, vs) // negation is 0 - x
	}
	if rm == 0 {
		t.clearReg(rd)
		return
	}
	in, out := t.b.value(t.label(flowgraph.KindInternal, 0), int64(bits.Count(rm)))
	t.b.addEdge(es, in, int64(bits.Count(ms)), t.label(flowgraph.KindData, 1))
	t.setReg(rd, out, rm)
}

// ExtB implements vm.Tracer (§4.1 sub-register read).
func (t *Tracker) ExtB(site uint32, rd, rs, idx int) {
	m := bits.Extract(t.regMask[rs], idx)
	if t.regEl[rs] == 0 || m == 0 {
		t.clearReg(rd)
		return
	}
	in, out := t.b.value(t.label(flowgraph.KindInternal, 0), int64(bits.Count(m)))
	t.b.addEdge(t.regEl[rs], in, int64(bits.Count(m)), t.label(flowgraph.KindData, 1))
	t.setReg(rd, out, m)
}

// InsB implements vm.Tracer (§4.1 sub-register write).
func (t *Tracker) InsB(site uint32, rd, rs, idx int) {
	keepMask := bits.Insert(t.regMask[rd], 0, idx)
	newByte := bits.Extract(t.regMask[rs], 0)
	rm := bits.Insert(t.regMask[rd], newByte, idx)
	if rm == 0 {
		t.clearReg(rd)
		return
	}
	in, out := t.b.value(t.label(flowgraph.KindInternal, 0), int64(bits.Count(rm)))
	if t.regEl[rd] != 0 && keepMask != 0 {
		t.b.addEdge(t.regEl[rd], in, int64(bits.Count(keepMask)), t.label(flowgraph.KindData, 1))
	}
	if t.regEl[rs] != 0 && newByte != 0 {
		t.b.addEdge(t.regEl[rs], in, int64(bits.Count(newByte)), t.label(flowgraph.KindData, 2))
	}
	t.setReg(rd, out, rm)
}

// Load implements vm.Tracer.
func (t *Tracker) Load(site uint32, rd, raddr int, addr vm.Word, n int) {
	t.pointerImplicit(site, raddr)
	var combined bits.Mask
	var els [4]int32
	var ms [4]bits.Mask
	any := false
	for i := 0; i < n; i++ {
		el, m := t.sh.get(addr + vm.Word(i))
		els[i], ms[i] = el, m&0xFF
		combined |= (m & 0xFF) << uint(8*i)
		if el != 0 {
			any = true
		}
	}
	if !any || combined == 0 {
		t.clearReg(rd)
		return
	}
	in, out := t.b.value(t.label(flowgraph.KindInternal, 0), int64(bits.Count(combined)))
	for i := 0; i < n; i++ {
		if els[i] != 0 && ms[i] != 0 {
			t.b.addEdge(els[i], in, int64(bits.Count(ms[i])), t.label(flowgraph.KindData, uint8(1+i)))
		}
	}
	t.setReg(rd, out, combined)
}

// Store implements vm.Tracer.
func (t *Tracker) Store(site uint32, raddr int, addr vm.Word, rs int, n int) {
	t.pointerImplicit(site, raddr)
	t.regionWrite(addr, n)
	t.storeValue(addr, n, t.regEl[rs], t.regMask[rs])
}

// storeValue splits a register value into per-byte memory values (§2.1).
func (t *Tracker) storeValue(addr vm.Word, n int, el int32, m bits.Mask) {
	if el == 0 {
		for i := 0; i < n; i++ {
			t.sh.setByte(addr+vm.Word(i), 0, 0)
		}
		return
	}
	for i := 0; i < n; i++ {
		bm := bits.Extract(m, i)
		if bm == 0 {
			t.sh.setByte(addr+vm.Word(i), 0, 0)
			continue
		}
		in, out := t.b.value(t.label(flowgraph.KindInternal, uint8(10+i)), int64(bits.Count(bm)))
		t.b.addEdge(el, in, int64(bits.Count(bm)), t.label(flowgraph.KindData, uint8(20+i)))
		t.sh.setByte(addr+vm.Word(i), out, bm)
	}
}

// pointerImplicit accounts for an address-dependent operation: as many bits
// as are secret in the pointer may leak through the choice of location
// (§2.2).
func (t *Tracker) pointerImplicit(site uint32, raddr int) {
	if m := t.regMask[raddr]; m != 0 {
		t.implicit(site, t.regEl[raddr], int64(bits.Count(m)))
	}
}

// Branch implements vm.Tracer: a two-way branch on a secret condition leaks
// one bit into the enclosure.
func (t *Tracker) Branch(site uint32, rc int, taken bool) {
	if t.regMask[rc] != 0 {
		if t.probe != nil {
			t.probe.TaintedBranch(t.m.PC)
		}
		t.implicit(site, t.regEl[rc], 1)
	}
}

// JmpInd implements vm.Tracer: an indirect jump through a secret register
// leaks as many bits as are secret in the target.
func (t *Tracker) JmpInd(site uint32, raddr int, target vm.Word) {
	if t.regMask[raddr] != 0 && t.probe != nil {
		t.probe.TaintedIndirect(t.m.PC)
	}
	t.pointerImplicit(site, raddr)
}

// Call implements vm.Tracer: maintains the probabilistic calling-context
// hash V' = 3V + callsite (§3.2).
func (t *Tracker) Call(site uint32, target int) {
	t.ctxStack = append(t.ctxStack, t.ctx)
	t.ctx = 3*t.ctx + uint64(t.m.PC)
}

// Ret implements vm.Tracer. A tainted return address is itself an indirect
// jump on secret data (the §8.5 code-injection channel).
func (t *Tracker) Ret(site uint32) {
	sp := t.m.Regs[vm.SP]
	var capBits int64
	var el int32
	for i := 0; i < 4; i++ {
		e, m := t.sh.get(sp + vm.Word(i))
		if e != 0 && m != 0 {
			el = e
			capBits += int64(bits.Count(m))
		}
	}
	if el != 0 && capBits > 0 {
		if t.probe != nil {
			t.probe.TaintedIndirect(t.m.PC)
		}
		t.warnf(site, "return through tainted address (%d secret bits)", capBits)
		t.implicit(site, el, capBits)
	}
	if n := len(t.ctxStack); n > 0 {
		t.ctx = t.ctxStack[n-1]
		t.ctxStack = t.ctxStack[:n-1]
	}
}

// Push implements vm.Tracer. rs < 0 pushes a public value (return address).
func (t *Tracker) Push(site uint32, rs int, addr vm.Word) {
	t.regionWrite(addr, 4)
	if rs < 0 {
		t.storeValue(addr, 4, 0, 0)
		return
	}
	if m := t.regMask[vm.SP]; m != 0 {
		t.implicit(site, t.regEl[vm.SP], int64(bits.Count(m)))
	}
	t.storeValue(addr, 4, t.regEl[rs], t.regMask[rs])
}

// Pop implements vm.Tracer. Load handles the (vanishingly rare) secret
// stack pointer as a pointer implicit flow.
func (t *Tracker) Pop(site uint32, rd int, addr vm.Word) {
	t.Load(site, rd, vm.SP, addr, 4)
}

// ReadInput implements vm.Tracer: secret input bytes become a fresh value
// fed by the Source with 8 bits per byte; public input clears shadow.
func (t *Tracker) ReadInput(site uint32, addr vm.Word, data []byte, secret bool) {
	// The syscall writes the byte count into R0; the count (public input
	// geometry) is not itself secret data.
	t.clearReg(vm.R0)
	n := len(data)
	if n == 0 {
		return
	}
	t.regionWrite(addr, n)
	if !secret {
		t.sh.setRange(addr, n, 0, 0)
		return
	}
	streamOff := t.secPos
	t.secPos += n
	if t.opts.SecretRanges == nil {
		t.stats.SecretInputBytes += n
		t.markSecretRange(addr, vm.Word(n), streamOff)
		return
	}
	// Class-restricted analysis (§10.1): only bytes inside a configured
	// stream range are secret; the rest of this read is public data.
	for i := 0; i < n; i++ {
		if t.inSecretRange(streamOff + i) {
			t.stats.SecretInputBytes++
			t.markSecretRange(addr+vm.Word(i), 1, streamOff+i)
		} else {
			t.sh.setByte(addr+vm.Word(i), 0, 0)
		}
	}
}

func (t *Tracker) inSecretRange(off int) bool {
	for _, r := range t.opts.SecretRanges {
		if off >= r.Off && off < r.Off+r.Len {
			return true
		}
	}
	return false
}

// markSecretRange tags [addr, addr+n) as secret input. Each byte becomes
// its own value (8 bits from the Source), so later uses of one byte are
// bounded by that byte's capacity rather than the whole input's. Byte
// labels are distinguished by address, which also makes them merge
// correctly across runs (§3.2): the same input location's capacities sum.
// streamOff is the first byte's offset in the secret input stream, used
// for class attribution (Options.AttributeSources); pass -1 for memory
// with no stream position (the __secret builtin).
func (t *Tracker) markSecretRange(addr, n vm.Word, streamOff int) {
	for i := vm.Word(0); i < n; i++ {
		lbl := t.label(flowgraph.KindInternal, 0)
		lbl.Ctx ^= uint64(addr+i) << 32
		in, out := t.b.value(lbl, 8)
		elbl := t.label(flowgraph.KindInput, 1)
		elbl.Ctx ^= uint64(addr+i) << 32
		off := -1
		if streamOff >= 0 {
			off = streamOff + int(i)
		}
		t.b.addSourceEdge(in, 8, elbl, off)
		t.sh.setByte(addr+i, out, 0xFF)
	}
}

// WriteOutput implements vm.Tracer.
func (t *Tracker) WriteOutput(site uint32, addr vm.Word, data []byte, reg int) {
	t.stats.OutputBytes += len(data)
	// An output inside an active enclosure region can carry the region's
	// implicit information before the region's leave retags its outputs;
	// connect the region to the chain so that channel is counted (§2.2's
	// soundness requirement, enforced dynamically).
	for _, r := range t.regions {
		if r.active {
			t.b.addEdge(r.el, t.chainEl, flowgraph.Inf, t.label(flowgraph.KindRegion, 50))
			t.warnf(site, "output inside active enclosure region entered at pc=%d", r.enterPC)
		}
	}
	if reg >= 0 {
		// SysPutc: one byte from a register.
		if t.regEl[reg] != 0 {
			bm := bits.Extract(t.regMask[reg], 0)
			if bm != 0 {
				t.b.addEdge(t.regEl[reg], t.b.sinkEl, int64(bits.Count(bm)), t.label(flowgraph.KindOutput, 0))
			}
		}
	} else {
		// A secret buffer pointer or length on a write syscall is itself
		// an information channel (which bytes, and how many, were output).
		t.pointerImplicit(site, vm.R1)
		if m := t.regMask[vm.R2]; m != 0 {
			t.implicit(site, t.regEl[vm.R2], int64(bits.Count(m)))
		}
		for _, run := range t.sh.rangeRuns(addr, len(data)) {
			if run.el != 0 && run.maskSum > 0 {
				t.b.addEdge(run.el, t.b.sinkEl, int64(run.maskSum), t.label(flowgraph.KindOutput, 0))
			}
		}
		// The syscall writes the byte count into R0.
		t.clearReg(vm.R0)
	}
	t.advanceChain(site)
}

// advanceChain implements the output chain of §2.2: the current chain node
// drains to the sink at this output, and a fresh node becomes the
// attachment point for subsequent implicit flows, linked forward so earlier
// implicit information can still reach later outputs (but not earlier
// ones).
func (t *Tracker) advanceChain(site uint32) {
	t.b.addEdge(t.chainEl, t.b.sinkEl, flowgraph.Inf, t.label(flowgraph.KindChain, 1))
	linkLbl := t.label(flowgraph.KindChain, 2)
	var next int32
	if t.opts.Exact {
		next = t.b.element()
	} else if el, ok := t.chainCanon[linkLbl]; ok {
		next = el
	} else {
		next = t.b.element()
		t.chainCanon[linkLbl] = next
	}
	t.b.addEdge(t.chainEl, next, flowgraph.Inf, linkLbl)
	t.chainEl = next
}

// MarkSecret implements vm.Tracer (the __secret builtin).
func (t *Tracker) MarkSecret(site uint32, addr, length vm.Word) {
	if length == 0 {
		return
	}
	t.stats.SecretInputBytes += int(length)
	// Builtin-marked memory has no secret-stream position: its Source
	// capacity is unattributed, so every class view keeps it — matching
	// the per-class re-execution oracle, which also marks it regardless
	// of the class ranging.
	t.markSecretRange(addr, length, -1)
}

// Declassify implements vm.Tracer (the __declassify builtin).
func (t *Tracker) Declassify(site uint32, addr, length vm.Word) {
	t.sh.setRange(addr, int(length), 0, 0)
}

// EnterRegion implements vm.Tracer.
func (t *Tracker) EnterRegion(site uint32, outputs []vm.Range) {
	t.stats.RegionsEntered++
	if t.probe != nil {
		t.probe.RegionEnter(t.m.PC)
	}
	lbl := t.label(flowgraph.KindRegion, 99)
	var el int32
	if t.opts.Exact {
		el = t.b.element()
	} else if e, ok := t.regionCanon[lbl]; ok {
		el = e
	} else {
		el = t.b.element()
		t.regionCanon[lbl] = el
	}
	t.regions = append(t.regions, &regionState{
		el:       el,
		declared: outputs,
		enterPC:  uint32(t.m.PC),
		auto:     map[vm.Word]bool{},
	})
}

// regionWrite records a write inside the innermost region for the dynamic
// soundness check: locations written but not declared become automatic
// outputs at leave time.
func (t *Tracker) regionWrite(addr vm.Word, n int) {
	if len(t.regions) == 0 {
		return
	}
	r := t.regions[len(t.regions)-1]
	for i := 0; i < n; i++ {
		a := addr + vm.Word(i)
		declared := false
		if li := r.lastDecl; li < len(r.declared) {
			if d := r.declared[li]; a >= d.Addr && a < d.Addr+d.Len {
				declared = true
			}
		}
		if !declared {
			for di, d := range r.declared {
				if a >= d.Addr && a < d.Addr+d.Len {
					declared = true
					r.lastDecl = di
					break
				}
			}
		}
		if declared {
			continue
		}
		if sp := t.m.Regs[vm.SP]; a >= sp && a < t.m.Regs[vm.BP] {
			// A current-frame stack write: coalesce.
			if r.stackLo == r.stackHi {
				r.stackLo, r.stackHi = a, a+1
			} else {
				if a < r.stackLo {
					r.stackLo = a
				}
				if a >= r.stackHi {
					r.stackHi = a + 1
				}
			}
			continue
		}
		if r.autoOverflow {
			if a < r.autoLo {
				r.autoLo = a
			}
			if a >= r.autoHi {
				r.autoHi = a + 1
			}
			continue
		}
		r.auto[a] = true
		if len(r.auto) > autoTrackLimit {
			// Coalesce the exact set into a single covering range.
			r.autoOverflow = true
			r.autoLo, r.autoHi = a, a+1
			for b := range r.auto {
				if b < r.autoLo {
					r.autoLo = b
				}
				if b >= r.autoHi {
					r.autoHi = b + 1
				}
			}
		}
	}
}

// LeaveRegion implements vm.Tracer: the paper's ENTER/LEAVE pair's second
// half. If any implicit flow reached the region, every declared output (and
// every undeclared-but-written live location — the dynamic soundness check)
// is retagged with a fresh value fed by both its old value and the region
// node.
func (t *Tracker) LeaveRegion(site uint32) {
	if t.probe != nil {
		t.probe.RegionLeave(t.m.PC)
	}
	if len(t.regions) == 0 {
		t.warnf(site, "LEAVE_ENCLOSE without matching enter")
		return
	}
	r := t.regions[len(t.regions)-1]
	t.regions = t.regions[:len(t.regions)-1]
	if !r.active {
		return // no implicit flows: the region has no effect (§8.6)
	}

	ranges := make([]vm.Range, 0, len(r.declared)+4)
	ranges = append(ranges, r.declared...)
	ranges = append(ranges, t.autoRanges(r)...)

	for i, rng := range ranges {
		if rng.Len == 0 {
			continue
		}
		capBits := int64(8) * int64(rng.Len)
		// Labels are salted with addresses so that distinct locations keep
		// distinct nodes: a shared label would union every old value in
		// the range into one class and erase their individual capacity
		// bottlenecks (the same scheme markSecretRange uses).
		vlbl := t.label(flowgraph.KindInternal, uint8(i))
		vlbl.Ctx ^= uint64(rng.Addr) << 32
		in, out := t.b.value(vlbl, capBits)
		rlbl := t.label(flowgraph.KindRegion, uint8(i))
		rlbl.Ctx ^= uint64(rng.Addr) << 32
		t.b.addEdge(r.el, in, capBits, rlbl)
		for _, run := range t.sh.rangeRuns(rng.Addr, int(rng.Len)) {
			if run.el != 0 && run.maskSum > 0 {
				dlbl := t.label(flowgraph.KindData, uint8(i))
				dlbl.Ctx ^= uint64(run.start) << 32
				t.b.addEdge(run.el, in, int64(run.maskSum), dlbl)
			}
		}
		t.sh.setRange(rng.Addr, int(rng.Len), out, 0xFF)
	}

	// Registers still holding tagged values are conservatively treated as
	// region outputs too. (With the MiniC compiler no value survives a
	// statement boundary in a register, so this is cheap insurance.)
	for reg := 0; reg < vm.NumRegs; reg++ {
		if t.regEl[reg] == 0 {
			continue
		}
		in, out := t.b.value(t.label(flowgraph.KindInternal, uint8(200+reg)), 32)
		t.b.addEdge(r.el, in, 32, t.label(flowgraph.KindRegion, uint8(200+reg)))
		t.b.addEdge(t.regEl[reg], in, int64(bits.Count(t.regMask[reg])), t.label(flowgraph.KindData, uint8(200+reg)))
		t.setReg(reg, out, bits.All)
	}
}

// autoRanges converts the undeclared-write record into coalesced ranges.
// Non-stack writes are always included; the frame-write range is clipped
// to [SP-at-leave, BP): everything below SP is dead expression temporaries
// and callee frames, and the slots at or above BP (saved frame pointer,
// return address) are not written by single-exit region bodies.
func (t *Tracker) autoRanges(r *regionState) []vm.Range {
	sp := t.m.Regs[vm.SP]
	var out []vm.Range
	if r.stackHi > r.stackLo {
		lo, hi := r.stackLo, r.stackHi
		if lo < sp {
			lo = sp
		}
		if hi > lo {
			t.stats.AutoOutputs += int(hi - lo)
			out = append(out, vm.Range{Addr: lo, Len: hi - lo})
		}
	}
	if r.autoOverflow {
		t.stats.AutoOutputs += int(r.autoHi - r.autoLo)
		return append(out, vm.Range{Addr: r.autoLo, Len: r.autoHi - r.autoLo})
	}
	addrs := make([]vm.Word, 0, len(r.auto))
	for a := range r.auto {
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return out
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	start, n := addrs[0], vm.Word(1)
	for _, a := range addrs[1:] {
		if a == start+n {
			n++
			continue
		}
		out = append(out, vm.Range{Addr: start, Len: n})
		start, n = a, 1
	}
	out = append(out, vm.Range{Addr: start, Len: n})
	t.stats.AutoOutputs += len(addrs)
	return out
}

// Exit implements vm.Tracer: program termination is a final observable
// event (§3.1 treats distinguishable terminal behaviors, like the division
// example's error report, as outputs). The exit code drains to the sink as
// data, and the output chain drains so pending implicit flows are counted —
// this is what makes printing n characters reveal n+1 bits, including the
// n = 0 case (§3.2).
func (t *Tracker) Exit(site uint32, codeReg int) {
	if t.regEl[codeReg] != 0 {
		if m := t.regMask[codeReg]; m != 0 {
			t.b.addEdge(t.regEl[codeReg], t.b.sinkEl, int64(bits.Count(m)), t.label(flowgraph.KindOutput, 3))
		}
	}
	// Unclosed active regions can still influence termination behavior.
	for _, r := range t.regions {
		if r.active {
			t.b.addEdge(r.el, t.chainEl, flowgraph.Inf, t.label(flowgraph.KindRegion, 50))
		}
	}
	t.b.addEdge(t.chainEl, t.b.sinkEl, flowgraph.Inf, t.label(flowgraph.KindChain, 1))
}

// FlowNote implements vm.Tracer: take an intermediate flow measurement.
// The graph is handed to the solver as a CSR view built straight from the
// arena — no intermediate Graph is materialized, so real-time measurements
// (§8.1) stay cheap even when taken frequently.
func (t *Tracker) FlowNote(site uint32) {
	t.b.ar.CSRInto(&t.csr, t.b.resolve())
	if t.noteSolver == nil {
		t.noteSolver = maxflow.NewSolver(maxflow.Dinic)
	}
	res, _ := t.noteSolver.SolveCSR(&t.csr, 0)
	t.snapshots = append(t.snapshots, Snapshot{
		Steps:       t.m.Steps,
		OutputBytes: t.stats.OutputBytes,
		Bits:        res.Flow,
	})
}
