package taint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowcheck/internal/bits"
	"flowcheck/internal/vm"
)

func TestShadowByteRoundTrip(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setByte(0x1000, 7, 0xAB&0xFF)
	el, m := s.get(0x1000)
	if el != 7 || m != 0xAB {
		t.Fatalf("get = (%d, %#x)", el, m)
	}
	// Unset bytes are public.
	if el, m := s.get(0x1001); el != 0 || m != 0 {
		t.Fatalf("default shadow not public: (%d, %#x)", el, m)
	}
}

func TestShadowRangeBecomesDescriptor(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setRange(0x2000, 1000, 5, 0xFF)
	if len(s.descs) != 1 {
		t.Fatalf("descs = %d, want 1 (lazy path)", len(s.descs))
	}
	if el, m := s.get(0x2300); el != 5 || m != 0xFF {
		t.Fatalf("descriptor read = (%d, %#x)", el, m)
	}
}

func TestShadowShortRangeStaysPerByte(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setRange(0x2000, 4, 5, 0xFF)
	if len(s.descs) != 0 {
		t.Fatalf("short range should not create a descriptor")
	}
	if el, _ := s.get(0x2003); el != 5 {
		t.Fatal("short range bytes not set")
	}
}

func TestShadowExceptions(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setRange(0x2000, 1000, 5, 0xFF)
	s.setByte(0x2100, 9, 0x0F)
	if el, m := s.get(0x2100); el != 9 || m != 0x0F {
		t.Fatalf("exception read = (%d, %#x)", el, m)
	}
	if el, _ := s.get(0x2101); el != 5 {
		t.Fatal("neighbor clobbered by exception")
	}
}

func TestShadowExceptionOverflowFlushes(t *testing.T) {
	s := newShadowMem(0, 5)
	s.setRange(0x2000, 1000, 5, 0xFF)
	// Exceptions in the second half cannot be shrunk away, forcing
	// elimination once the budget is exceeded.
	for i := 0; i < 6; i++ {
		s.setByte(0x2000+500+vm.Word(i), 9, 0x01)
	}
	if len(s.descs) != 0 {
		t.Fatalf("descriptor should be eliminated, have %d", len(s.descs))
	}
	// Values must survive the flush.
	if el, _ := s.get(0x2001); el != 5 {
		t.Fatal("flush lost descriptor value")
	}
	if el, _ := s.get(0x2000 + 502); el != 9 {
		t.Fatal("flush lost exception value")
	}
}

func TestShadowShrinkWhenExceptionsInFirstHalf(t *testing.T) {
	s := newShadowMem(0, 4)
	s.setRange(0x2000, 1000, 5, 0xFF)
	for i := 0; i < 6; i++ {
		s.setByte(0x2000+vm.Word(i), 9, 0x01)
	}
	if len(s.descs) != 1 {
		t.Fatalf("descriptor should shrink, not vanish: %d", len(s.descs))
	}
	d := s.descs[0]
	if d.start <= 0x2005 {
		t.Fatalf("descriptor did not shrink: start=%#x", d.start)
	}
	// Both halves still read correctly.
	if el, _ := s.get(0x2002); el != 9 {
		t.Fatal("first-half exception lost")
	}
	if el, _ := s.get(0x2300); el != 5 {
		t.Fatal("second-half descriptor value lost")
	}
}

func TestShadowOverwriteRange(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setRange(0x2000, 100, 5, 0xFF)
	s.setRange(0x2000, 100, 0, 0) // declassify
	if el, m := s.get(0x2050); el != 0 || m != 0 {
		t.Fatalf("overwrite failed: (%d, %#x)", el, m)
	}
}

func TestRangeRunsCoalesce(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setByte(0x1000, 3, 0xFF)
	s.setByte(0x1001, 3, 0x0F)
	s.setByte(0x1002, 4, 0xFF)
	runs := s.rangeRuns(0x1000, 4)
	if len(runs) != 3 {
		t.Fatalf("runs = %+v, want 3 (el 3, el 4, el 0)", runs)
	}
	if runs[0].el != 3 || runs[0].n != 2 || runs[0].maskSum != 12 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
	if runs[1].el != 4 || runs[1].maskSum != 8 {
		t.Fatalf("run 1 = %+v", runs[1])
	}
	if runs[2].el != 0 {
		t.Fatalf("run 2 = %+v", runs[2])
	}
}

func TestRangeRunsDescriptorFastPath(t *testing.T) {
	s := newShadowMem(0, 0)
	s.setRange(0x4000, 10000, 7, 0xFF)
	runs := s.rangeRuns(0x4000, 10000)
	if len(runs) != 1 || runs[0].el != 7 || runs[0].maskSum != 80000 {
		t.Fatalf("fast path runs = %+v", runs)
	}
}

// Property: a shadow memory driven by random byte/range operations always
// agrees with a naive per-byte reference model.
func TestShadowMatchesReferenceModel(t *testing.T) {
	type cell struct {
		el int32
		m  uint8
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newShadowMem(4, 6) // small limits to stress shrink/flush
		ref := map[vm.Word]cell{}
		base := vm.Word(0x1000)
		const span = 4096
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // byte write
				a := base + vm.Word(rng.Intn(span))
				el, m := int32(rng.Intn(5)), uint8(rng.Intn(256))
				if el == 0 {
					m = 0
				}
				s.setByte(a, el, bits.Mask(m))
				ref[a] = cell{el, m}
			case 1: // range write
				a := base + vm.Word(rng.Intn(span))
				n := rng.Intn(200) + 1
				el, m := int32(rng.Intn(5)), uint8(rng.Intn(256))
				if el == 0 {
					m = 0
				}
				s.setRange(a, n, el, bits.Mask(m))
				for i := 0; i < n; i++ {
					ref[a+vm.Word(i)] = cell{el, m}
				}
			case 2: // read check
				a := base + vm.Word(rng.Intn(span))
				el, m := s.get(a)
				want := ref[a]
				if el != want.el || uint8(m) != want.m {
					return false
				}
			}
		}
		// Full sweep at the end.
		for a, want := range ref {
			el, m := s.get(a)
			if el != want.el || uint8(m) != want.m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShadowRangeRetagLazy(b *testing.B) {
	s := newShadowMem(0, 0)
	for i := 0; i < b.N; i++ {
		s.setRange(0x10000, 1<<16, int32(i+1), 0xFF)
	}
}
