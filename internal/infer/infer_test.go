package infer

import (
	"testing"

	"flowcheck/internal/lang/parser"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	f, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzeFile("t", f)
}

func TestSimpleScalarOutputsFound(t *testing.T) {
	rep := analyze(t, `
int main() {
    int a; int b;
    char buf[4];
    __enclose(a, b) {
        if (buf[0] == '.') a = 1;
        else b = 2;
    }
    return 0;
}`)
	if rep.HandAnnots != 2 || rep.FoundCount != 2 {
		t.Fatalf("report: %s", rep)
	}
}

func TestCountPunctAnnotationsFound(t *testing.T) {
	rep := analyze(t, `
void count_punct(char *buf) {
    char num_dot; char num_qm; char num; char common; int i;
    __enclose(num_dot, num_qm) {
        for (i = 0; buf[i] != '\0'; i++) {
            if (buf[i] == '.') num_dot++;
            else if (buf[i] == '?') num_qm++;
        }
    }
    __enclose(common, num) {
        if (num_dot > num_qm) { common = '.'; num = num_dot; }
        else                  { common = '?'; num = num_qm; }
    }
}
int main() { return 0; }`)
	if rep.HandAnnots != 4 || rep.FoundCount != 4 {
		t.Fatalf("all four Figure-2 outputs should be found: %s", rep)
	}
}

func TestNonConstIndexIsExpansionMiss(t *testing.T) {
	rep := analyze(t, `
int main() {
    int arr[10];
    int i;
    char c;
    __enclose(arr) {
        if (c) arr[i] = 1;
    }
    return 0;
}`)
	if rep.MissExpand != 1 || rep.FoundCount != 0 {
		t.Fatalf("non-constant index should be an expansion miss: %s", rep)
	}
}

func TestConstIndexFound(t *testing.T) {
	rep := analyze(t, `
int main() {
    int arr[10];
    char c;
    __enclose(arr) {
        if (c) arr[3] = 1;
    }
    return 0;
}`)
	if rep.FoundCount != 1 {
		t.Fatalf("constant index should be found: %s", rep)
	}
}

func TestCalleeWriteIsInterproceduralMiss(t *testing.T) {
	rep := analyze(t, `
void helper(int *p) { *p = 1; }
int main() {
    int x;
    char c;
    __enclose(x) {
        if (c) helper(&x);
    }
    return 0;
}`)
	if rep.MissInterp != 1 || rep.FoundCount != 0 {
		t.Fatalf("write via callee should be interprocedural miss: %s", rep)
	}
}

func TestRuntimeLengthCounted(t *testing.T) {
	rep := analyze(t, `
int main() {
    char buf[64];
    int n;
    char c;
    char *p; p = buf;
    __enclose(p : n) {
        int i;
        for (i = 0; i < n; i++) if (c) p[i] = 0;
    }
    return 0;
}`)
	if rep.NeedLength != 1 {
		t.Fatalf("runtime extent should count toward need-length: %s", rep)
	}
	// The pointer store itself is visible, though (expansion vs found
	// depends on index constancy; p[i] with dynamic i is a pointer store
	// through the declared pointer).
	if rep.FoundCount+rep.MissExpand != 1 {
		t.Fatalf("pointer range output should be classified: %s", rep)
	}
}

func TestConstLengthNotCounted(t *testing.T) {
	rep := analyze(t, `
int main() {
    char buf[64];
    char c;
    char *p; p = buf;
    __enclose(p : 64) {
        if (c) *p = 0;
    }
    return 0;
}`)
	if rep.NeedLength != 0 {
		t.Fatalf("constant extent must not count toward need-length: %s", rep)
	}
	if rep.FoundCount != 1 {
		t.Fatalf("pointer store should be found: %s", rep)
	}
}

func TestRegionLocalsExcluded(t *testing.T) {
	rep := analyze(t, `
int main() {
    int out;
    char c;
    __enclose(out) {
        int tmp; tmp = 0;   // region-local: not an output
        if (c) { tmp = 1; out = tmp; }
    }
    return 0;
}`)
	if rep.FoundCount != 1 || rep.HandAnnots != 1 {
		t.Fatalf("locals must not confuse classification: %s", rep)
	}
}

func TestIncDecCountAsWrites(t *testing.T) {
	rep := analyze(t, `
int main() {
    int a; int b;
    char c;
    __enclose(a, b) {
        if (c) { a++; --b; }
    }
    return 0;
}`)
	if rep.FoundCount != 2 {
		t.Fatalf("inc/dec are writes: %s", rep)
	}
}

func TestProposals(t *testing.T) {
	f, err := parser.Parse("p.mc", `
int count;
int main() {
    char buf[8];
    int i;
    for (i = 0; i < 8; i++)
        if (buf[i] == 'x') count++;
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	props := Propose(f)
	if len(props) != 1 {
		t.Fatalf("proposals = %d, want 1 (the for loop)", len(props))
	}
	foundCount := false
	for _, o := range props[0].Outputs {
		if o == "count" {
			foundCount = true
		}
	}
	if !foundCount {
		t.Fatalf("proposal should list count: %v", props[0].Outputs)
	}
}

func TestProposeSkipsAnnotated(t *testing.T) {
	f, err := parser.Parse("p.mc", `
int main() {
    int a;
    char c;
    __enclose(a) {
        if (c) a = 1;
    }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if props := Propose(f); len(props) != 0 {
		t.Fatalf("annotated code should yield no proposals, got %d", len(props))
	}
}

func TestFoundFraction(t *testing.T) {
	rep := &Report{HandAnnots: 4, FoundCount: 3}
	if f := rep.FoundFraction(); f != 0.75 {
		t.Fatalf("fraction = %v", f)
	}
	empty := &Report{}
	if empty.FoundFraction() != 1 {
		t.Fatal("empty report fraction should be 1")
	}
}

func TestExprString(t *testing.T) {
	f, err := parser.Parse("e.mc", `
int main() {
    int a[4];
    int i;
    char c;
    __enclose(a[i+1]) { if (c) a[i+1] = 0; }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeFile("e", f)
	if len(rep.Items) != 1 || rep.Items[0].Expr != "a[i+1]" {
		t.Fatalf("items: %+v", rep.Items)
	}
}
