package infer_test

import (
	"testing"

	"flowcheck/internal/guest"
	"flowcheck/internal/infer"
)

// TestAllGuestsFigure6 pins the Figure 6 classification for every guest
// case study: how many enclosure regions each program annotates by hand,
// and how the inference fares on each (found as-is, needs the expansion
// heuristic, needs interprocedural analysis, needs a length bound).
// Guests without hand annotations must stay at zero across the board —
// a nonzero row there means the parser or inference started
// hallucinating regions.
func TestAllGuestsFigure6(t *testing.T) {
	want := map[string]infer.Report{
		"battleship":  {HandAnnots: 1, MissExpand: 1},
		"calendar":    {HandAnnots: 1, MissExpand: 1},
		"compress":    {HandAnnots: 4, FoundCount: 1, MissExpand: 3},
		"count_punct": {HandAnnots: 4, FoundCount: 4},
		"divzero":     {},
		"guessnum":    {},
		"imagefilter": {},
		"interp":      {},
		"sshauth":     {},
		"unary":       {},
		"xserver":     {HandAnnots: 1, FoundCount: 1},
	}
	names := guest.Names()
	if len(names) != len(want) {
		t.Fatalf("guest set changed: %d guests, table has %d — update the table", len(names), len(want))
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no expected row — add one", name)
			continue
		}
		f, err := guest.AST(name)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		r := infer.AnalyzeFile(name, f)
		if r.HandAnnots != w.HandAnnots || r.NeedLength != w.NeedLength ||
			r.MissExpand != w.MissExpand || r.MissInterp != w.MissInterp ||
			r.FoundCount != w.FoundCount {
			t.Errorf("%s: hand=%d needlen=%d expansion=%d interproc=%d found=%d, want %d/%d/%d/%d/%d",
				name, r.HandAnnots, r.NeedLength, r.MissExpand, r.MissInterp, r.FoundCount,
				w.HandAnnots, w.NeedLength, w.MissExpand, w.MissInterp, w.FoundCount)
		}
	}
}
