// Package infer reimplements the pilot static analysis of paper §8.6: a
// very simple, intraprocedural, syntax-directed, flow- and
// context-insensitive side-effect analysis that computes, for a code region
// containing implicit flows, the set of locations the region might write —
// the outputs an enclosure annotation must declare.
//
// As in the paper, the analysis is evaluated against the hand-written
// annotations in the case-study programs: each declared output is
// classified as found, missed because the write uses a non-constant array
// index (the "expansion" column of Figure 6), or missed because the write
// happens in a callee ("interprocedural"); outputs whose extent cannot be
// known statically are additionally counted in the "need length" column.
package infer

import (
	"fmt"
	"strings"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/token"
)

// Category classifies how the pilot analysis fared on one hand annotation.
type Category int

// Classification outcomes, mirroring Figure 6's columns.
const (
	Found Category = iota
	MissedExpansion
	MissedInterprocedural
)

func (c Category) String() string {
	switch c {
	case Found:
		return "found"
	case MissedExpansion:
		return "missed/expansion"
	case MissedInterprocedural:
		return "missed/interprocedural"
	}
	return "?"
}

// ItemReport is the verdict for one declared output of one region.
type ItemReport struct {
	Region token.Pos
	Func   string
	Expr   string
	Cat    Category
	// NeedsLength marks outputs whose byte extent is a runtime value
	// (Figure 6's "need length" column).
	NeedsLength bool
}

// Report aggregates a file's classification (one Figure 6 row).
type Report struct {
	Program    string
	Items      []ItemReport
	HandAnnots int
	NeedLength int
	MissExpand int
	MissInterp int
	FoundCount int
}

// FoundFraction returns the fraction of hand annotations the pilot found.
func (r *Report) FoundFraction() float64 {
	if r.HandAnnots == 0 {
		return 1
	}
	return float64(r.FoundCount) / float64(r.HandAnnots)
}

func (r *Report) String() string {
	return fmt.Sprintf("%s: hand=%d needLen=%d missExp=%d missInterproc=%d found=%d (%.0f%%)",
		r.Program, r.HandAnnots, r.NeedLength, r.MissExpand, r.MissInterp, r.FoundCount,
		100*r.FoundFraction())
}

// writeSet is what the single syntax-directed pass collects from a region
// body: names assigned directly, array names with constant or non-constant
// indices, pointer targets stored through, and whether calls occur.
type writeSet struct {
	simple      map[string]bool // x = ...
	arrConst    map[string]bool // x[3] = ...
	arrDyn      map[string]bool // x[i] = ..., i not constant
	ptrStore    map[string]bool // *p = ... or p[i] = ... where p is a pointer
	locals      map[string]bool // declared inside the region: not outputs
	hasCall     bool
	addrTakenIn map[string]bool // &x passed to a call inside the region
}

func newWriteSet() *writeSet {
	return &writeSet{
		simple: map[string]bool{}, arrConst: map[string]bool{}, arrDyn: map[string]bool{},
		ptrStore: map[string]bool{}, locals: map[string]bool{}, addrTakenIn: map[string]bool{},
	}
}

// AnalyzeFile runs the pilot analysis over every __enclose annotation in f
// and classifies each declared output. The file must be parsed; it does not
// need to be type-checked (the analysis is purely syntactic, like the CIL
// pass in the paper).
func AnalyzeFile(name string, f *ast.File) *Report {
	rep := &Report{Program: name}
	for _, fn := range f.Funcs {
		walkStmts(fn.Body, func(s ast.Stmt) {
			enc, ok := s.(*ast.Enclose)
			if !ok {
				return
			}
			ws := newWriteSet()
			collectWrites(enc.Body, ws)
			for _, item := range enc.Items {
				ir := classify(item, ws)
				ir.Region = enc.Pos()
				ir.Func = fn.Name
				rep.Items = append(rep.Items, ir)
				rep.HandAnnots++
				switch ir.Cat {
				case Found:
					rep.FoundCount++
				case MissedExpansion:
					rep.MissExpand++
				case MissedInterprocedural:
					rep.MissInterp++
				}
				if ir.NeedsLength {
					rep.NeedLength++
				}
			}
		})
	}
	return rep
}

// classify decides how the pilot analysis fares on one declared output.
func classify(item ast.EncItem, ws *writeSet) ItemReport {
	expr := ExprString(item.Ptr)
	ir := ItemReport{Expr: expr}

	// A range output `p : len` needs a statically-known extent.
	if item.Len != nil {
		if _, ok := constEval(item.Len); !ok {
			ir.NeedsLength = true
		}
	}

	name, isIdent := identName(item.Ptr)
	if !isIdent {
		// Complex output expressions (e.g. field-like or deref chains) are
		// beyond the syntax-directed pass.
		ir.Cat = MissedInterprocedural
		return ir
	}

	switch {
	case ws.simple[name]:
		ir.Cat = Found
	case ws.arrDyn[name]:
		// The pass sees only "name[i]": it cannot name the whole array at
		// region entry — the paper's expansion category.
		ir.Cat = MissedExpansion
	case ws.arrConst[name]:
		ir.Cat = Found
	case ws.ptrStore[name]:
		// Writes through the declared pointer: found, but the extent is
		// dynamic.
		ir.Cat = Found
		if item.Len != nil {
			if _, ok := constEval(item.Len); !ok {
				ir.NeedsLength = true
			}
		}
	case ws.hasCall:
		ir.Cat = MissedInterprocedural
	default:
		ir.Cat = MissedInterprocedural
	}
	return ir
}

// collectWrites performs the single syntax-directed pass over a region
// body, disregarding control flow except as implied by block structure.
func collectWrites(s ast.Stmt, ws *writeSet) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			collectWrites(st, ws)
		}
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			ws.locals[d.Name] = true
			if d.Init != nil {
				collectWritesExpr(d.Init, ws)
			}
		}
	case *ast.ExprStmt:
		collectWritesExpr(s.X, ws)
	case *ast.If:
		collectWritesExpr(s.Cond, ws)
		collectWrites(s.Then, ws)
		if s.Else != nil {
			collectWrites(s.Else, ws)
		}
	case *ast.While:
		collectWritesExpr(s.Cond, ws)
		collectWrites(s.Body, ws)
	case *ast.DoWhile:
		collectWrites(s.Body, ws)
		collectWritesExpr(s.Cond, ws)
	case *ast.For:
		if s.Init != nil {
			collectWrites(s.Init, ws)
		}
		if s.Cond != nil {
			collectWritesExpr(s.Cond, ws)
		}
		if s.Post != nil {
			collectWritesExpr(s.Post, ws)
		}
		collectWrites(s.Body, ws)
	case *ast.Switch:
		collectWritesExpr(s.X, ws)
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				collectWrites(st, ws)
			}
		}
	case *ast.Enclose:
		collectWrites(s.Body, ws)
	case *ast.Return:
		if s.X != nil {
			collectWritesExpr(s.X, ws)
		}
	}
}

func collectWritesExpr(e ast.Expr, ws *writeSet) {
	switch e := e.(type) {
	case *ast.Assign:
		recordWrite(e.LHS, ws)
		collectWritesExpr(e.RHS, ws)
	case *ast.Unary:
		if e.Op == token.PlusPlus || e.Op == token.MinusMinus {
			recordWrite(e.X, ws)
		}
		collectWritesExpr(e.X, ws)
	case *ast.Postfix:
		recordWrite(e.X, ws)
		collectWritesExpr(e.X, ws)
	case *ast.Binary:
		collectWritesExpr(e.X, ws)
		collectWritesExpr(e.Y, ws)
	case *ast.Cond:
		collectWritesExpr(e.C, ws)
		collectWritesExpr(e.Then, ws)
		collectWritesExpr(e.Else, ws)
	case *ast.Call:
		ws.hasCall = true
		for _, a := range e.Args {
			// &x passed to a call: the callee may write x, but the
			// intraprocedural pass cannot see it.
			if u, ok := a.(*ast.Unary); ok && u.Op == token.Amp {
				if n, ok := identName(u.X); ok {
					ws.addrTakenIn[n] = true
				}
			}
			collectWritesExpr(a, ws)
		}
	case *ast.Index:
		collectWritesExpr(e.X, ws)
		collectWritesExpr(e.Idx, ws)
	case *ast.Cast:
		collectWritesExpr(e.X, ws)
	}
}

func recordWrite(lhs ast.Expr, ws *writeSet) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if !ws.locals[lhs.Name] {
			ws.simple[lhs.Name] = true
		}
	case *ast.Index:
		if name, ok := identName(lhs.X); ok && !ws.locals[name] {
			if _, isConst := constEval(lhs.Idx); isConst {
				ws.arrConst[name] = true
			} else {
				ws.arrDyn[name] = true
			}
			// Indexing a pointer variable is also a pointer store.
			ws.ptrStore[name] = true
		}
	case *ast.Unary:
		if lhs.Op == token.Star {
			if name, ok := identName(lhs.X); ok && !ws.locals[name] {
				ws.ptrStore[name] = true
			}
		}
	}
}

func identName(e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// constEval folds compile-time constants: literals, sizeof, and arithmetic
// over them — the same power the parser's constant evaluator has.
func constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return int64(e.Val), true
	case *ast.SizeofExpr:
		return int64(e.Of.Size()), true
	case *ast.Unary:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.Minus:
			return -v, true
		case token.Tilde:
			return int64(^uint32(v)), true
		}
	case *ast.Binary:
		a, okA := constEval(e.X)
		b, okB := constEval(e.Y)
		if !okA || !okB {
			return 0, false
		}
		switch e.Op {
		case token.Plus:
			return a + b, true
		case token.Minus:
			return a - b, true
		case token.Star:
			return a * b, true
		case token.Slash:
			if b != 0 {
				return a / b, true
			}
		case token.Shl:
			return a << uint(b&31), true
		case token.Shr:
			return a >> uint(b&31), true
		}
	}
	return 0, false
}

// ExprString renders an expression for annotation output.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.IntLit:
		return fmt.Sprintf("%d", e.Val)
	case *ast.StrLit:
		return fmt.Sprintf("%q", e.Val)
	case *ast.Ident:
		return e.Name
	case *ast.Index:
		return ExprString(e.X) + "[" + ExprString(e.Idx) + "]"
	case *ast.Unary:
		return e.Op.String() + ExprString(e.X)
	case *ast.Postfix:
		return ExprString(e.X) + e.Op.String()
	case *ast.Binary:
		return ExprString(e.X) + e.Op.String() + ExprString(e.Y)
	case *ast.Assign:
		return ExprString(e.LHS) + e.Op.String() + ExprString(e.RHS)
	case *ast.Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return e.Fun.Name + "(" + strings.Join(args, ",") + ")"
	case *ast.Cast:
		return "(" + e.To.String() + ")" + ExprString(e.X)
	case *ast.SizeofExpr:
		return "sizeof(" + e.Of.String() + ")"
	case *ast.Cond:
		return ExprString(e.C) + "?" + ExprString(e.Then) + ":" + ExprString(e.Else)
	}
	return "?"
}

// Proposal is a suggested enclosure annotation for a statement that
// contains potential implicit flows but is not already enclosed.
type Proposal struct {
	Pos     token.Pos
	Func    string
	Outputs []string
}

// Propose suggests enclosure regions: for every outermost control
// construct (if/loop/switch) not already inside an __enclose, it emits the
// write set the pilot analysis can name. This is the "inference can simply
// choose starting and ending points enclosing every possible implicit flow
// operation" mode of §8.6.
func Propose(f *ast.File) []Proposal {
	var out []Proposal
	for _, fn := range f.Funcs {
		for _, s := range fn.Body.Stmts {
			proposeStmt(s, fn.Name, &out)
		}
	}
	return out
}

func proposeStmt(s ast.Stmt, fn string, out *[]Proposal) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			proposeStmt(st, fn, out)
		}
	case *ast.Enclose:
		return // already annotated; nested constructs are covered
	case *ast.If, *ast.While, *ast.DoWhile, *ast.For, *ast.Switch:
		ws := newWriteSet()
		collectWrites(s, ws)
		var outputs []string
		for n := range ws.simple {
			outputs = append(outputs, n)
		}
		for n := range ws.arrConst {
			outputs = append(outputs, n+"[const]")
		}
		for n := range ws.arrDyn {
			outputs = append(outputs, n+"[*]")
		}
		for n := range ws.ptrStore {
			outputs = append(outputs, "*"+n)
		}
		*out = append(*out, Proposal{Pos: s.Pos(), Func: fn, Outputs: dedupSort(outputs)})
	}
}

func dedupSort(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	strings := out
	for i := 1; i < len(strings); i++ {
		for j := i; j > 0 && strings[j-1] > strings[j]; j-- {
			strings[j-1], strings[j] = strings[j], strings[j-1]
		}
	}
	return strings
}

// walkStmts applies fn to every statement in a subtree, including nested
// ones.
func walkStmts(s ast.Stmt, fn func(ast.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmts(st, fn)
		}
	case *ast.If:
		walkStmts(s.Then, fn)
		walkStmts(s.Else, fn)
	case *ast.While:
		walkStmts(s.Body, fn)
	case *ast.DoWhile:
		walkStmts(s.Body, fn)
	case *ast.For:
		walkStmts(s.Init, fn)
		walkStmts(s.Body, fn)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				walkStmts(st, fn)
			}
		}
	case *ast.Enclose:
		walkStmts(s.Body, fn)
	}
}
