package detlint

import (
	"strings"
	"testing"
)

// The determinism-critical packages must lint clean: merged graphs are
// cached content-addressed and cache keys are content addresses. CI runs
// this test in the static job.
func TestDeterminismClean(t *testing.T) {
	for _, dir := range []string{"../merge", "../cachekey"} {
		fs, err := CheckDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", dir, f)
		}
	}
}

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fs, err := CheckSource("fixture.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func kinds(fs []Finding) string {
	var ks []string
	for _, f := range fs {
		ks = append(ks, f.Kind)
	}
	return strings.Join(ks, ",")
}

func TestFlagsTimeNow(t *testing.T) {
	fs := check(t, `package p
import "time"
func f() time.Time { return time.Now() }
func g(t0 time.Time) time.Duration { return time.Since(t0) }
`)
	if kinds(fs) != "time-now,time-now" {
		t.Fatalf("findings = %v, want two time-now", fs)
	}
	if !strings.Contains(fs[0].Pos, "fixture.go:3") {
		t.Errorf("first finding at %s, want line 3", fs[0].Pos)
	}
}

func TestFlagsRenamedTimeImport(t *testing.T) {
	fs := check(t, `package p
import clock "time"
func f() clock.Time { return clock.Now() }
`)
	if kinds(fs) != "time-now" {
		t.Fatalf("findings = %v, want one time-now through the renamed import", fs)
	}
}

func TestIgnoresShadowedTime(t *testing.T) {
	fs := check(t, `package p
type fake struct{}
func (fake) Now() int { return 0 }
func f() int {
	time := fake{}
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none: no time import, local shadow", fs)
	}
}

func TestFlagsMapRanges(t *testing.T) {
	fs := check(t, `package p
var global map[string]int
func f(param map[int]bool) {
	for range param {
	}
	local := make(map[string]int)
	for k := range local {
		_ = k
	}
	lit := map[string]int{"a": 1}
	for k, v := range lit {
		_, _ = k, v
	}
	for range map[int]int{1: 2} {
	}
	for range make(map[int]int) {
	}
	for range global {
	}
}
`)
	if len(fs) != 6 {
		t.Fatalf("findings = %v (%d), want 6 map-range", fs, len(fs))
	}
	for _, f := range fs {
		if f.Kind != "map-range" {
			t.Errorf("finding %v, want map-range", f)
		}
	}
}

func TestIgnoresSliceRanges(t *testing.T) {
	fs := check(t, `package p
func f(xs []int, s string, n int) {
	for i := range xs {
		_ = i
	}
	for _, c := range s {
		_ = c
	}
	for i := range n {
		_ = i
	}
	ys := make([]int, 4)
	for range ys {
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none over slices/strings/ints", fs)
	}
}
