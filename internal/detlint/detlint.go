// Package detlint is a repo-local determinism lint for the layers whose
// outputs must be byte-identical across processes: the location-keyed
// graph merge (internal/merge) and the content-address derivation
// (internal/cachekey). A merged graph is cached under its content
// address and a cache key IS a content address, so any nondeterminism —
// wall-clock reads, or iteration over a Go map, whose order is
// randomized per process — silently poisons the cache instead of
// failing a test.
//
// The lint is purely syntactic (go/parser + go/ast, no type checker) and
// deliberately narrow: it flags
//
//   - calls to time.Now or time.Since through the "time" import, and
//   - range statements over an operand that is syntactically a map: a
//     map composite literal, a make(map[...]...) call, or an identifier
//     declared with an explicit map type or initialized from either form.
//
// A range over a map reached through an interface or a function result
// is invisible to it — the lint is a tripwire for the common regression,
// not a proof. CI runs it over both packages via TestDeterminismClean.
package detlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	Pos  string // file:line:col
	Kind string // "time-now" or "map-range"
	Msg  string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s: %s", f.Pos, f.Kind, f.Msg) }

// CheckDir lints every non-test .go file in dir.
func CheckDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fs, err := CheckSource(filepath.Join(dir, name), string(src))
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// CheckSource lints one file's source text.
func CheckSource(filename, src string) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}

	// The local name of the "time" import ("" if not imported; time.Now
	// through a renamed import is still caught).
	timeName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}

	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if timeName == "" {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != timeName || pkg.Obj != nil { // Obj != nil: a local shadowing "time"
				return true
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				findings = append(findings, Finding{
					Pos:  fset.Position(n.Pos()).String(),
					Kind: "time-now",
					Msg:  fmt.Sprintf("%s.%s reads the wall clock; deterministic code must take time as an input", timeName, sel.Sel.Name),
				})
			}
		case *ast.RangeStmt:
			if isSyntacticMap(n.X) {
				findings = append(findings, Finding{
					Pos:  fset.Position(n.Pos()).String(),
					Kind: "map-range",
					Msg:  "range over a map iterates in randomized order; extract and sort the keys",
				})
			}
		}
		return true
	})
	return findings, nil
}

// isSyntacticMap reports whether expr is a map by syntax alone: a map
// literal, a make(map...) call, or an identifier whose declaration (via
// the parser's file-scope object resolution) has an explicit map type or
// a map-shaped initializer.
func isSyntacticMap(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		return isMakeMap(e)
	case *ast.Ident:
		if e.Obj == nil {
			return false
		}
		switch decl := e.Obj.Decl.(type) {
		case *ast.ValueSpec: // var x map[K]V  /  var x = map[K]V{...}
			if _, ok := decl.Type.(*ast.MapType); ok {
				return true
			}
			for i, name := range decl.Names {
				if name.Name == e.Name && i < len(decl.Values) {
					return isMapInitializer(decl.Values[i])
				}
			}
		case *ast.AssignStmt: // x := make(map[K]V)  /  x := map[K]V{...}
			for i, lhs := range decl.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != e.Name || i >= len(decl.Rhs) {
					continue
				}
				return isMapInitializer(decl.Rhs[i])
			}
		case *ast.Field: // func f(x map[K]V)
			_, ok := decl.Type.(*ast.MapType)
			return ok
		}
	}
	return false
}

func isMapInitializer(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		return isMakeMap(e)
	}
	return false
}

func isMakeMap(call *ast.CallExpr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" || fn.Obj != nil || len(call.Args) == 0 {
		return false
	}
	_, ok = call.Args[0].(*ast.MapType)
	return ok
}
