// Package workload generates the inputs the paper's experiments use.
//
// The Figure 3 scaling study compresses "the digits of pi, written out in
// English words"; PiWords reproduces that corpus with an unbounded spigot
// algorithm, so inputs of any size are available deterministically and
// offline. The other generators build ship placements, shot sequences,
// grayscale test images, and appointment calendars for the §8 case
// studies.
package workload

import (
	"math/big"
	"math/rand"
	"strings"
)

var digitWords = [10]string{
	"zero", "one", "two", "three", "four",
	"five", "six", "seven", "eight", "nine",
}

// PiDigits returns the first n decimal digits of pi (3, 1, 4, 1, 5, ...),
// computed with the streaming spigot algorithm of Gibbons (2006) using
// big-integer state.
func PiDigits(n int) []int {
	digits := make([]int, 0, n)
	// State: q, r, t, k, n, l per the classic unbounded spigot.
	q := big.NewInt(1)
	r := big.NewInt(0)
	t := big.NewInt(1)
	k := big.NewInt(1)
	nn := big.NewInt(3)
	l := big.NewInt(3)

	tmp := new(big.Int)
	for len(digits) < n {
		// if 4q + r - t < n*t: emit digit n
		tmp.Mul(q, big.NewInt(4))
		tmp.Add(tmp, r)
		tmp.Sub(tmp, t)
		cmp := new(big.Int).Mul(nn, t)
		if tmp.Cmp(cmp) < 0 {
			digits = append(digits, int(nn.Int64()))
			// (q, r, t, k, n, l) = (10q, 10(r-nt), t, k, 10(3q+r)/t - 10n, l)
			nr := new(big.Int).Mul(nn, t)
			nr.Sub(r, nr)
			nr.Mul(nr, big.NewInt(10))
			q10 := new(big.Int).Mul(q, big.NewInt(10))
			n2 := new(big.Int).Mul(q, big.NewInt(3))
			n2.Add(n2, r)
			n2.Mul(n2, big.NewInt(10))
			n2.Div(n2, t)
			n2.Sub(n2, new(big.Int).Mul(nn, big.NewInt(10)))
			q, r, nn = q10, nr, n2
		} else {
			// (q, r, t, k, n, l) = (qk, (2q+r)l, tl, k+1, (q(7k+2)+rl)/(tl), l+2)
			nr := new(big.Int).Mul(q, big.NewInt(2))
			nr.Add(nr, r)
			nr.Mul(nr, l)
			nt := new(big.Int).Mul(t, l)
			n2 := new(big.Int).Mul(k, big.NewInt(7))
			n2.Add(n2, big.NewInt(2))
			n2.Mul(n2, q)
			n2.Add(n2, new(big.Int).Mul(r, l))
			n2.Div(n2, nt)
			nq := new(big.Int).Mul(q, k)
			nk := new(big.Int).Add(k, big.NewInt(1))
			nl := new(big.Int).Add(l, big.NewInt(2))
			q, r, t, k, nn, l = nq, nr, nt, nk, n2, nl
		}
	}
	return digits
}

// PiWords returns at least n bytes of the digits of pi spelled out in
// English words ("three point one four one five nine ..."), truncated to
// exactly n bytes — the highly compressible corpus of §5.3.
func PiWords(n int) []byte {
	var sb strings.Builder
	sb.Grow(n + 16)
	// Average ~5 bytes per digit word incl. space.
	digits := PiDigits(n/4 + 8)
	for i, d := range digits {
		if i == 1 {
			sb.WriteString("point ")
		}
		sb.WriteString(digitWords[d])
		sb.WriteByte(' ')
		if sb.Len() >= n {
			break
		}
	}
	for sb.Len() < n {
		sb.WriteString(digitWords[0])
		sb.WriteByte(' ')
	}
	return []byte(sb.String())[:n]
}

// RandomBytes returns n deterministic pseudo-random bytes — an
// incompressible corpus for the Figure 3 "input-bound" regime.
func RandomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// Placement is one Battleship ship position.
type Placement struct {
	Row, Col, Orient byte
}

// BattleshipSecret encodes 4 non-overlapping ship placements (lengths 5,
// 4, 3, 2) as the 12-byte secret input of the battleship guest.
func BattleshipSecret(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	lens := []int{5, 4, 3, 2}
	occupied := map[int]bool{}
	out := make([]byte, 0, 12)
	for _, l := range lens {
	retry:
		for {
			r, c, o := rng.Intn(10), rng.Intn(10), rng.Intn(2)
			cells := make([]int, l)
			for k := 0; k < l; k++ {
				if o == 0 {
					cells[k] = r*10 + (c+k)%10
				} else {
					cells[k] = ((r+k)%10)*10 + c
				}
			}
			for _, cell := range cells {
				if occupied[cell] {
					continue retry
				}
			}
			for _, cell := range cells {
				occupied[cell] = true
			}
			out = append(out, byte(r), byte(c), byte(o))
			break
		}
	}
	return out
}

// BattleshipShots encodes a public input: mode byte plus n shots.
func BattleshipShots(mode byte, shots [][2]byte) []byte {
	out := []byte{mode}
	for _, s := range shots {
		out = append(out, s[0], s[1])
	}
	return append(out, 0xFF, 0xFF)
}

// Image generates a deterministic w x h 8-bit grayscale test image with
// smooth structure (gradients plus a bright disc), preceded by a 2-byte
// header (w, h) — the secret input of the imagefilter guest.
func Image(w, h int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, 2+w*h)
	out = append(out, byte(w), byte(h))
	cx, cy := w/3+rng.Intn(w/3), h/3+rng.Intn(h/3)
	rad := (w + h) / 6
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (x*255)/w/2 + (y*255)/h/2
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy < rad*rad {
				v += 90
			}
			v += rng.Intn(8)
			if v > 255 {
				v = 255
			}
			out = append(out, byte(v))
		}
	}
	return out
}

// Appointment is one calendar entry in half-hour slots since midnight
// (0..47), matching the calendar guest's wire format.
type Appointment struct {
	StartSlot, EndSlot int
}

// CalendarSecret encodes appointments as the calendar guest's secret
// input: a count byte, then (start slot, end slot) byte pairs.
func CalendarSecret(appts []Appointment) []byte {
	out := []byte{byte(len(appts))}
	for _, a := range appts {
		out = append(out, byte(a.StartSlot), byte(a.EndSlot))
	}
	return out
}

// CalendarQuery encodes the public input: appointment count and the query
// window (start hour, end hour).
func CalendarQuery(count, startHour, endHour int) []byte {
	return []byte{byte(count), byte(startHour), byte(endHour)}
}
