package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestPiDigits(t *testing.T) {
	want := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4}
	got := PiDigits(20)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("digit %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestPiWords(t *testing.T) {
	w := PiWords(64)
	if len(w) != 64 {
		t.Fatalf("len = %d", len(w))
	}
	if !strings.HasPrefix(string(w), "three point one four one five nine ") {
		t.Fatalf("prefix = %q", w[:36])
	}
}

func TestPiWordsDeterministic(t *testing.T) {
	if !bytes.Equal(PiWords(512), PiWords(512)) {
		t.Fatal("PiWords not deterministic")
	}
}

func TestBattleshipSecretValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		b := BattleshipSecret(seed)
		if len(b) != 12 {
			t.Fatalf("len = %d", len(b))
		}
		// Reconstruct and check non-overlap.
		occupied := map[int]bool{}
		lens := []int{5, 4, 3, 2}
		for s := 0; s < 4; s++ {
			r, c, o := int(b[3*s]), int(b[3*s+1]), int(b[3*s+2])
			if r > 9 || c > 9 || o > 1 {
				t.Fatalf("out of range placement %v", b[3*s:3*s+3])
			}
			for k := 0; k < lens[s]; k++ {
				var cell int
				if o == 0 {
					cell = r*10 + (c+k)%10
				} else {
					cell = ((r+k)%10)*10 + c
				}
				if occupied[cell] {
					t.Fatalf("seed %d: overlapping ships at cell %d", seed, cell)
				}
				occupied[cell] = true
			}
		}
		if len(occupied) != 14 {
			t.Fatalf("occupied cells = %d, want 14", len(occupied))
		}
	}
}

func TestBattleshipShotsEncoding(t *testing.T) {
	b := BattleshipShots(1, [][2]byte{{2, 3}, {4, 5}})
	want := []byte{1, 2, 3, 4, 5, 0xFF, 0xFF}
	if !bytes.Equal(b, want) {
		t.Fatalf("shots = %v, want %v", b, want)
	}
}

func TestImage(t *testing.T) {
	img := Image(25, 25, 1)
	if len(img) != 2+25*25 {
		t.Fatalf("len = %d", len(img))
	}
	if img[0] != 25 || img[1] != 25 {
		t.Fatalf("header = %v", img[:2])
	}
	// Some variety in pixel values.
	seen := map[byte]bool{}
	for _, p := range img[2:] {
		seen[p] = true
	}
	if len(seen) < 16 {
		t.Fatalf("image too flat: %d distinct values", len(seen))
	}
}

func TestCalendarEncoding(t *testing.T) {
	b := CalendarSecret([]Appointment{{StartSlot: 20, EndSlot: 24}})
	want := []byte{1, 20, 24}
	if !bytes.Equal(b, want) {
		t.Fatalf("calendar = %v, want %v", b, want)
	}
	q := CalendarQuery(1, 9, 18)
	if !bytes.Equal(q, []byte{1, 9, 18}) {
		t.Fatalf("query = %v", q)
	}
}

func BenchmarkPiWords64K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PiWords(64 << 10)
	}
}
