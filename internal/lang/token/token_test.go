package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", Ident: "identifier", KwEnclose: "__enclose",
		ShlAssign: "<<=", AndAnd: "&&", LBrace: "{",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKeywordTable(t *testing.T) {
	if Keywords["unsigned"] != KwUint {
		t.Error("unsigned should alias uint")
	}
	if Keywords["__enclose"] != KwEnclose {
		t.Error("__enclose missing")
	}
	if _, ok := Keywords["banana"]; ok {
		t.Error("non-keyword present")
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.mc", Line: 3, Col: 7}
	if p.String() != "a.mc:3:7" {
		t.Errorf("Pos = %q", p)
	}
	p.File = ""
	if p.String() != "3:7" {
		t.Errorf("fileless Pos = %q", p)
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Ident, Text: "foo"}, `ident "foo"`},
		{Token{Kind: Int, Val: 42}, "int 42"},
		{Token{Kind: String, Str: "hi"}, `string "hi"`},
		{Token{Kind: Semi}, ";"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
}
