// Package token defines the lexical tokens of MiniC, the small C-like
// guest language this reproduction uses in place of the paper's C/C++
// case-study sources.
//
// MiniC exists because the paper's analysis runs over compiled machine code:
// we need realistic guest programs (with loops, pointers, arrays, implicit
// flows, and enclosure-region annotations) compiled down to the vm package's
// instruction set. The language is deliberately a C subset plus the paper's
// ENTER_ENCLOSE/LEAVE_ENCLOSE annotations as a structured statement.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int    // integer literal (decimal, hex, or char)
	String // string literal

	// Keywords.
	KwInt
	KwUint
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwSizeof
	KwEnclose // __enclose

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Colon
	Question

	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	PlusPlus
	MinusMinus

	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign
)

var names = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer", String: "string",
	KwInt: "int", KwUint: "uint", KwChar: "char", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwSizeof: "sizeof", KwEnclose: "__enclose",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Colon: ":", Question: "?",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	PlusPlus: "++", MinusMinus: "--",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=", SlashAssign: "/=",
	PercentAssign: "%=", AmpAssign: "&=", PipeAssign: "|=", CaretAssign: "^=",
	ShlAssign: "<<=", ShrAssign: ">>=",
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "uint": KwUint, "unsigned": KwUint, "char": KwChar,
	"void": KwVoid, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "do": KwDo, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "sizeof": KwSizeof, "__enclose": KwEnclose,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier spelling or raw literal text
	Val  int64  // value of an Int token
	Str  string // decoded value of a String token
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return fmt.Sprintf("ident %q", t.Text)
	case Int:
		return fmt.Sprintf("int %d", t.Val)
	case String:
		return fmt.Sprintf("string %q", t.Str)
	}
	return t.Kind.String()
}
