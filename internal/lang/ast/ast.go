// Package ast defines the abstract syntax tree and type representation of
// MiniC. The parser produces this tree, the sema package resolves and types
// it, the codegen package lowers it to vm instructions, and the infer
// package (paper §8.6) analyzes it to propose enclosure-region annotations.
package ast

import (
	"fmt"
	"strings"

	"flowcheck/internal/lang/token"
)

// ---------------------------------------------------------------- types ---

// TypeKind enumerates MiniC types.
type TypeKind uint8

// Type kinds.
const (
	Void TypeKind = iota
	Int           // 32-bit signed
	Uint          // 32-bit unsigned
	Char          // 8-bit unsigned
	Pointer
	Array
	Func
)

// Type is a MiniC type. Types are compared structurally with Equal.
type Type struct {
	Kind   TypeKind
	Elem   *Type // Pointer, Array
	Len    int   // Array
	Params []*Type
	Result *Type // Func
}

// Pre-built basic types.
var (
	VoidType = &Type{Kind: Void}
	IntType  = &Type{Kind: Int}
	UintType = &Type{Kind: Uint}
	CharType = &Type{Kind: Char}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns the type elem[n].
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Char:
		return 1
	case Int, Uint, Pointer:
		return 4
	case Array:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// IsInteger reports whether t is an arithmetic integer type.
func (t *Type) IsInteger() bool { return t.Kind == Int || t.Kind == Uint || t.Kind == Char }

// IsScalar reports whether t can be held in a register (integers and
// pointers).
func (t *Type) IsScalar() bool { return t.IsInteger() || t.Kind == Pointer }

// IsSigned reports whether arithmetic on t is signed.
func (t *Type) IsSigned() bool { return t.Kind == Int }

// Decay converts array types to pointers to their element type (as in C
// expression contexts); other types are unchanged.
func (t *Type) Decay() *Type {
	if t.Kind == Array {
		return PointerTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Pointer:
		return t.Elem.Equal(o.Elem)
	case Array:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case Func:
		if len(t.Params) != len(o.Params) || !t.Result.Equal(o.Result) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case Void:
		return "void"
	case Int:
		return "int"
	case Uint:
		return "uint"
	case Char:
		return "char"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Func:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s(%s)", t.Result, strings.Join(parts, ","))
	}
	return "?"
}

// -------------------------------------------------------------- symbols ---

// SymKind classifies declared names.
type SymKind uint8

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
	SymBuiltin
)

// Symbol is a resolved name. Sema creates symbols; codegen fills Addr (for
// globals: data-segment address; for locals and params: frame offset
// relative to BP).
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type
	Pos  token.Pos
	// Addr is the data address (globals) or BP-relative offset (locals:
	// negative; params: positive), assigned during code generation.
	Addr int32
	// Builtin identifies which builtin this is (SymBuiltin only).
	Builtin string
}

// ---------------------------------------------------------------- exprs ---

// Expr is an expression node. T is filled by sema with the node's value
// type (after array decay where applicable).
type Expr interface {
	Pos() token.Pos
	Type() *Type
	SetType(*Type)
}

// ExprBase carries the position and (after sema) the type of an
// expression; every expression node embeds it.
type ExprBase struct {
	P token.Pos
	T *Type
}

// Pos returns the expression position.
func (e *ExprBase) Pos() token.Pos { return e.P }

// Type returns the value type assigned by sema (nil before checking).
func (e *ExprBase) Type() *Type { return e.T }

// SetType annotates the expression with its value type.
func (e *ExprBase) SetType(t *Type) { e.T = t }

// IntLit is an integer or character literal.
type IntLit struct {
	ExprBase
	Val uint32
}

// StrLit is a string literal; its value is NUL-terminated in the data
// segment and the expression yields a char*.
type StrLit struct {
	ExprBase
	Val string
}

// Ident is a name use; Sym is resolved by sema.
type Ident struct {
	ExprBase
	Name string
	Sym  *Symbol
}

// Unary is !x ~x -x *x &x ++x --x.
type Unary struct {
	ExprBase
	Op token.Kind
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	ExprBase
	Op token.Kind
	X  Expr
}

// Binary is x op y for arithmetic, comparison, shift, and the
// short-circuit logical operators.
type Binary struct {
	ExprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is lhs = rhs or a compound assignment (+=, <<=, ...).
type Assign struct {
	ExprBase
	Op       token.Kind // token.Assign or a compound-assign kind
	LHS, RHS Expr
}

// Cond is the ternary c ? a : b.
type Cond struct {
	ExprBase
	C, Then, Else Expr
}

// Call is a function or builtin call.
type Call struct {
	ExprBase
	Fun  *Ident
	Args []Expr
}

// Index is x[i].
type Index struct {
	ExprBase
	X, Idx Expr
}

// Cast is (type)x.
type Cast struct {
	ExprBase
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	ExprBase
	Of *Type
}

// ---------------------------------------------------------------- stmts ---

// Stmt is a statement node.
type Stmt interface {
	Pos() token.Pos
}

// StmtBase carries the statement position; every statement node embeds it.
type StmtBase struct{ P token.Pos }

// Pos returns the statement position.
func (s *StmtBase) Pos() token.Pos { return s.P }

// Block is { stmts }.
type Block struct {
	StmtBase
	Stmts []Stmt
}

// VarDecl declares one variable (a multi-declarator line parses into
// several VarDecls). It appears at file scope or inside a DeclStmt.
type VarDecl struct {
	StmtBase
	Name string
	T    *Type
	Init Expr // optional
	Sym  *Symbol
}

// DeclStmt wraps local declarations.
type DeclStmt struct {
	StmtBase
	Decls []*VarDecl
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	StmtBase
	X Expr
}

// Empty is a lone semicolon.
type Empty struct{ StmtBase }

// If is if (c) then else.
type If struct {
	StmtBase
	Cond       Expr
	Then, Else Stmt // Else may be nil
}

// While is while (c) body.
type While struct {
	StmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is do body while (c);.
type DoWhile struct {
	StmtBase
	Body Stmt
	Cond Expr
}

// For is for (init; cond; post) body; any header part may be nil.
type For struct {
	StmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Case is one arm of a switch.
type Case struct {
	StmtBase
	Vals      []int64 // constant labels; empty for default
	IsDefault bool
	Stmts     []Stmt
}

// Switch is switch (x) { cases } with C-style fallthrough.
type Switch struct {
	StmtBase
	X     Expr
	Cases []*Case
}

// Return is return [x].
type Return struct {
	StmtBase
	X Expr // nil for void return
}

// Break and Continue affect the innermost loop or switch (break only).
type Break struct{ StmtBase }

// Continue continues the innermost loop.
type Continue struct{ StmtBase }

// EncItem is one declared output of an enclosure region: a scalar lvalue,
// or a pointer expression with an explicit byte length (`ptr : len`).
type EncItem struct {
	Ptr Expr
	Len Expr // nil for scalar lvalues
}

// Enclose is the paper's ENTER_ENCLOSE/LEAVE_ENCLOSE pair as a structured
// single-entry single-exit statement:
//
//	__enclose(out1, buf : n) { ... }
type Enclose struct {
	StmtBase
	Items []EncItem
	Body  *Block
	// DescOff is the BP-relative offset of the runtime output descriptor,
	// assigned by codegen.
	DescOff int32
}

// ---------------------------------------------------------------- decls ---

// FuncDecl is a function definition.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Params []*VarDecl
	Result *Type
	Body   *Block
	Sym    *Symbol
}

// Pos returns the declaration position.
func (f *FuncDecl) Pos() token.Pos { return f.P }

// File is a parsed translation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// NewPos constructs expression bases; helpers for the parser.
func NewExprBase(p token.Pos) ExprBase { return ExprBase{P: p} }

// NewStmtBase constructs statement bases.
func NewStmtBase(p token.Pos) StmtBase { return StmtBase{P: p} }
