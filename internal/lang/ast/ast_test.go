package ast

import "testing"

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{VoidType, 0},
		{CharType, 1},
		{IntType, 4},
		{UintType, 4},
		{PointerTo(CharType), 4},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(ArrayOf(CharType, 3), 4), 12},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(IntType).Equal(PointerTo(IntType)) {
		t.Error("identical pointer types unequal")
	}
	if PointerTo(IntType).Equal(PointerTo(CharType)) {
		t.Error("different pointee types equal")
	}
	if ArrayOf(IntType, 3).Equal(ArrayOf(IntType, 4)) {
		t.Error("different array lengths equal")
	}
	f1 := &Type{Kind: Func, Params: []*Type{IntType}, Result: VoidType}
	f2 := &Type{Kind: Func, Params: []*Type{IntType}, Result: VoidType}
	f3 := &Type{Kind: Func, Params: []*Type{CharType}, Result: VoidType}
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("function type equality wrong")
	}
	if IntType.Equal(nil) {
		t.Error("nil comparison")
	}
}

func TestTypeStringAndPredicates(t *testing.T) {
	if s := ArrayOf(PointerTo(CharType), 8).String(); s != "char*[8]" {
		t.Errorf("String = %q", s)
	}
	if !IntType.IsSigned() || UintType.IsSigned() || CharType.IsSigned() {
		t.Error("signedness predicates wrong")
	}
	if !CharType.IsInteger() || PointerTo(IntType).IsInteger() {
		t.Error("IsInteger wrong")
	}
	if !PointerTo(IntType).IsScalar() || ArrayOf(IntType, 2).IsScalar() {
		t.Error("IsScalar wrong")
	}
}

func TestDecay(t *testing.T) {
	d := ArrayOf(IntType, 5).Decay()
	if d.Kind != Pointer || d.Elem.Kind != Int {
		t.Errorf("Decay = %v", d)
	}
	if IntType.Decay() != IntType {
		t.Error("non-array types must not decay")
	}
}
