package codegen

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"flowcheck/internal/lang/parser"
	"flowcheck/internal/lang/sema"
	"flowcheck/internal/vm"
)

func compile(t *testing.T, src string) *vm.Program {
	t.Helper()
	f, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(f); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGlobalsLayout(t *testing.T) {
	p := compile(t, `
int a;
char buf[10];
int b;
int main() { return 0; }`)
	addrA, okA := p.Globals["a"]
	addrBuf, okBuf := p.Globals["buf"]
	addrB, okB := p.Globals["b"]
	if !okA || !okBuf || !okB {
		t.Fatalf("globals map: %v", p.Globals)
	}
	if addrA < vm.DataBase {
		t.Fatalf("a below data base: %#x", addrA)
	}
	if addrBuf != addrA+4 {
		t.Fatalf("buf at %#x, want a+4", addrBuf)
	}
	// b is 4-aligned after the 10-byte buffer.
	if addrB%4 != 0 || addrB < addrBuf+10 {
		t.Fatalf("b at %#x", addrB)
	}
}

func TestStringsInterned(t *testing.T) {
	p := compile(t, `
int main() {
    char *a; char *b;
    a = "shared";
    b = "shared";
    return a == b;
}`)
	// The data segment contains "shared" exactly once.
	count := 0
	data := string(p.Data)
	for i := 0; i+6 <= len(data); i++ {
		if data[i:i+6] == "shared" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("literal appears %d times in data", count)
	}
}

func TestSiteTableMapsLines(t *testing.T) {
	p := compile(t, `int main() {
    int x;
    x = 1;
    return x;
}`)
	// Every instruction's site resolves to the source file.
	for pc, in := range p.Code {
		s := p.SiteString(in.Site)
		if s == "" {
			t.Fatalf("pc %d: empty site", pc)
		}
	}
	// The assignment's instructions carry line 3.
	found := false
	for _, in := range p.Code {
		if int(in.Site) < len(p.Sites) && p.Sites[in.Site].Line == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no instruction attributed to line 3")
	}
}

func TestDenseSwitchEmitsJumpTable(t *testing.T) {
	p := compile(t, `
int main() {
    int x; x = 2;
    switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    }
    return 99;
}`)
	hasInd := false
	for _, in := range p.Code {
		if in.Op == vm.OpJmpInd {
			hasInd = true
		}
	}
	if !hasInd {
		t.Fatal("dense switch should compile to an indirect jump")
	}
	// The jump table in the data segment holds valid code addresses.
	m := vm.NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 12 {
		t.Fatalf("switch result = %d", m.ExitCode)
	}
}

func TestSparseSwitchAvoidsTable(t *testing.T) {
	p := compile(t, `
int main() {
    switch (5) {
    case 1: return 1;
    case 10000: return 2;
    }
    return 3;
}`)
	for _, in := range p.Code {
		if in.Op == vm.OpJmpInd {
			t.Fatal("sparse switch should not build a table")
		}
	}
}

func TestCharCastUsesSubRegister(t *testing.T) {
	p := compile(t, `int main() { int x; x = 300; return (char)x; }`)
	has := false
	for _, in := range p.Code {
		if in.Op == vm.OpExtB {
			has = true
		}
	}
	if !has {
		t.Fatal("char cast should compile to a sub-register extract (§4.1)")
	}
	m := vm.NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 44 {
		t.Fatalf("(char)300 = %d, want 44", m.ExitCode)
	}
}

func TestGlobalInitializersRunBeforeMain(t *testing.T) {
	p := compile(t, `
int a = 7;
int main() { return a; }`)
	m := vm.NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 7 {
		t.Fatalf("exit = %d", m.ExitCode)
	}
	// The raw data segment starts zeroed; the value is written by startup
	// code.
	addr := p.Globals["a"] - vm.DataBase
	if binary.LittleEndian.Uint32(p.Data[addr:]) != 0 {
		t.Fatal("initializer should not be baked into the data image")
	}
}

func TestEncloseDescriptorShape(t *testing.T) {
	p := compile(t, `
int main() {
    char buf[16];
    int n;
    __enclose(n, buf : 16) { n = 1; }
    return n;
}`)
	// Execution decodes the descriptor without trapping and the region
	// syscalls bracket the body.
	enter, leave := 0, 0
	for _, in := range p.Code {
		if in.Op == vm.OpSys {
			switch int(in.Imm) {
			case vm.SysEnterRegion:
				enter++
			case vm.SysLeaveRegion:
				leave++
			}
		}
	}
	if enter != 1 || leave != 1 {
		t.Fatalf("region syscalls = %d/%d", enter, leave)
	}
	m := vm.NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 1 {
		t.Fatalf("exit = %d", m.ExitCode)
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	p := compile(t, `int main() { int x; x = 5; }`)
	m := vm.NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 0 {
		t.Fatalf("fall-off exit = %d, want 0", m.ExitCode)
	}
}

func TestFuncTable(t *testing.T) {
	p := compile(t, `
int helper(int x) { return x + 1; }
int main() { return helper(41); }`)
	if len(p.Funcs) < 3 { // __start, helper, main
		t.Fatalf("function table = %+v, want __start + 2 functions", p.Funcs)
	}
	names := map[string]bool{}
	for i, f := range p.Funcs {
		names[f.Name] = true
		if f.Entry >= f.End {
			t.Fatalf("%s: empty extent [%d,%d)", f.Name, f.Entry, f.End)
		}
		if i > 0 {
			prev := p.Funcs[i-1]
			if f.Entry != prev.End {
				t.Fatalf("gap between %s (ends %d) and %s (enters %d); extents must tile the code",
					prev.Name, prev.End, f.Name, f.Entry)
			}
		}
	}
	if !names["__start"] || !names["helper"] || !names["main"] {
		t.Fatalf("function names = %v", names)
	}
	if last := p.Funcs[len(p.Funcs)-1]; last.End != len(p.Code) {
		t.Fatalf("last extent ends at %d, code has %d instructions", last.End, len(p.Code))
	}
	// FuncAt agrees with the extents at every pc.
	for pc := range p.Code {
		f := p.FuncAt(pc)
		if f == nil {
			t.Fatalf("FuncAt(%d) = nil inside the code", pc)
		}
		if pc < f.Entry || pc >= f.End {
			t.Fatalf("FuncAt(%d) = %+v does not contain pc", pc, f)
		}
	}
	if p.FuncAt(-1) != nil || p.FuncAt(len(p.Code)) != nil {
		t.Fatal("FuncAt out of range should be nil")
	}
}

func TestLocStringFormats(t *testing.T) {
	p := compile(t, `int main() {
    int x;
    x = 1;
    return x;
}`)
	// Every pc names at least its function and pc; inside user functions the
	// synthesized prologue aside, stores carry file:line. (__start has no
	// source lines, so it falls back to fn+off.)
	sawLine := false
	for pc := range p.Code {
		s := p.LocString(pc)
		if !strings.Contains(s, fmt.Sprintf("@pc=%d", pc)) {
			t.Fatalf("pc %d: LocString = %q lacks the pc", pc, s)
		}
		if f := p.FuncAt(pc); f != nil && f.Name == "main" && strings.Contains(s, "t.mc:") {
			sawLine = true
		}
	}
	if !sawLine {
		t.Fatal("no instruction in main resolved to a file:line location")
	}
	if got := p.LocString(-1); got != "pc=-1" {
		t.Fatalf("out of range LocString = %q", got)
	}
	// A program with a function table but no site info falls back to fn+off.
	bare := &vm.Program{
		Code:  []vm.Instr{{Op: vm.OpNop}, {Op: vm.OpHalt}},
		Funcs: []vm.FuncInfo{{Name: "f", Entry: 0, End: 2}},
	}
	if got := bare.LocString(1); got != "f+1 @pc=1" {
		t.Fatalf("bare LocString = %q", got)
	}
	// Neither table: raw pc.
	raw := &vm.Program{Code: []vm.Instr{{Op: vm.OpHalt}}}
	if got := raw.LocString(0); got != "pc=0" {
		t.Fatalf("raw LocString = %q", got)
	}
}
