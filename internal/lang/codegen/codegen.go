// Package codegen lowers type-checked MiniC programs to vm instructions.
//
// The generator uses a simple stack-machine discipline over the VM's
// registers: every expression leaves its value in R0, spilling intermediate
// values to the runtime stack with push/pop. R1 and R2 are scratch. The
// calling convention is cdecl-like: arguments pushed right to left, return
// value in R0, caller pops arguments; BP frames locals.
//
// The paper's ENTER_ENCLOSE/LEAVE_ENCLOSE annotations (§2.2) compile to
// SysEnterRegion/SysLeaveRegion syscalls around the region body, with the
// declared output ranges materialized into a frame-allocated descriptor.
// Dense switch statements compile to data-segment jump tables reached
// through an indirect jump, exercising the analysis's secret-pointer
// accounting exactly as compiled C would.
package codegen

import (
	"fmt"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/token"
	"flowcheck/internal/vm"
)

// Error is a code-generation error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type fixup struct {
	pc   int    // instruction whose Imm needs the target
	name string // function name (for call fixups), or "" for label fixups
}

type gen struct {
	f    *ast.File
	code []vm.Instr

	data    []byte
	strings map[string]vm.Word // interned string literals
	globals map[string]vm.Word

	sites   []vm.SiteInfo
	siteIdx map[vm.SiteInfo]uint32
	curSite uint32
	curFn   string

	funcEntry map[string]int
	funcs     []vm.FuncInfo
	callFix   []fixup

	// Per-function state.
	frameSize  int32 // bytes of locals (positive)
	breakT     []int // break target label stack
	contT      []int // continue target label stack
	epilogue   int   // label of the current function's epilogue
	labelTargs []int // label id -> pc (-1 while unresolved)
	labelFix   [][]int
	// Jump tables awaiting backpatch: data offset and case label ids.
	tableFix []tablePatch
}

type tablePatch struct {
	dataOff vm.Word
	labels  []int
}

// Compile lowers a checked file to an executable program. The file must
// have passed sema.Check.
func Compile(f *ast.File) (*vm.Program, error) {
	g := &gen{
		f:         f,
		strings:   map[string]vm.Word{},
		globals:   map[string]vm.Word{},
		siteIdx:   map[vm.SiteInfo]uint32{},
		funcEntry: map[string]int{},
	}
	g.sites = append(g.sites, vm.SiteInfo{}) // site 0: unknown
	if err := g.compile(); err != nil {
		return nil, err
	}
	p := &vm.Program{
		Code:    g.code,
		Data:    g.data,
		Entry:   g.funcEntry["__start"],
		Sites:   g.sites,
		Funcs:   g.funcs,
		Globals: g.globals,
	}
	return p, nil
}

func (g *gen) compile() error {
	// Lay out globals in the data segment.
	for _, d := range g.f.Globals {
		g.alignData(4)
		addr := vm.DataBase + vm.Word(len(g.data))
		g.data = append(g.data, make([]byte, d.T.Size())...)
		d.Sym.Addr = int32(addr)
		g.globals[d.Name] = addr
	}

	// Synthesized startup: run global initializers, call main, halt.
	g.funcEntry["__start"] = len(g.code)
	g.curFn = "__start"
	for _, d := range g.f.Globals {
		if d.Init == nil {
			continue
		}
		g.setSite(d.Pos())
		if err := g.expr(d.Init); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: d.Sym.Addr})
		g.emit(vm.Instr{Op: vm.OpStore, A: vm.R1, B: vm.R0, W: width(d.T)})
	}
	mainFix := len(g.code)
	g.emit(vm.Instr{Op: vm.OpCall, Imm: -1})
	g.emit(vm.Instr{Op: vm.OpHalt})
	g.funcs = append(g.funcs, vm.FuncInfo{Name: "__start", Entry: g.funcEntry["__start"], End: len(g.code)})

	// Compile functions.
	for _, fn := range g.f.Funcs {
		if err := g.fn(fn); err != nil {
			return err
		}
	}
	g.code[mainFix].Imm = int32(g.funcEntry["main"])

	// Resolve cross-function call fixups.
	for _, fx := range g.callFix {
		entry, ok := g.funcEntry[fx.name]
		if !ok {
			return &Error{Msg: "call to undefined function " + fx.name}
		}
		g.code[fx.pc].Imm = int32(entry)
	}
	return nil
}

// ---------------------------------------------------------------- helpers ---

func width(t *ast.Type) uint8 {
	if t.Kind == ast.Char {
		return 1
	}
	return 4
}

func (g *gen) alignData(n int) {
	for len(g.data)%n != 0 {
		g.data = append(g.data, 0)
	}
}

func (g *gen) internString(s string) vm.Word {
	if addr, ok := g.strings[s]; ok {
		return addr
	}
	addr := vm.DataBase + vm.Word(len(g.data))
	g.data = append(g.data, s...)
	g.data = append(g.data, 0)
	g.strings[s] = addr
	return addr
}

func (g *gen) setSite(p token.Pos) {
	si := vm.SiteInfo{File: p.File, Line: p.Line, Fn: g.curFn}
	if idx, ok := g.siteIdx[si]; ok {
		g.curSite = idx
		return
	}
	idx := uint32(len(g.sites))
	g.sites = append(g.sites, si)
	g.siteIdx[si] = idx
	g.curSite = idx
}

func (g *gen) emit(in vm.Instr) int {
	in.Site = g.curSite
	g.code = append(g.code, in)
	return len(g.code) - 1
}

// Labels: newLabel allocates, mark binds to the current pc, jumps record
// fixups resolved in endFunc.
func (g *gen) newLabel() int {
	g.labelTargs = append(g.labelTargs, -1)
	g.labelFix = append(g.labelFix, nil)
	return len(g.labelTargs) - 1
}

func (g *gen) mark(lbl int) { g.labelTargs[lbl] = len(g.code) }

func (g *gen) jump(op vm.Op, cond uint8, lbl int) {
	pc := g.emit(vm.Instr{Op: op, A: cond, Imm: -1})
	g.labelFix[lbl] = append(g.labelFix[lbl], pc)
}

func (g *gen) resolveLabels() {
	for lbl, fixes := range g.labelFix {
		t := g.labelTargs[lbl]
		for _, pc := range fixes {
			g.code[pc].Imm = int32(t)
		}
	}
}

// ---------------------------------------------------------------- function ---

func (g *gen) fn(fn *ast.FuncDecl) error {
	g.curFn = fn.Name
	g.funcEntry[fn.Name] = len(g.code)
	g.setSite(fn.Pos())

	// Assign parameter offsets: first parameter at BP+8.
	off := int32(8)
	for _, p := range fn.Params {
		p.Sym.Addr = off
		off += 4 // every parameter occupies one stack word
	}

	g.frameSize = 0
	g.epilogue = g.newLabel()
	g.assignLocals(fn.Body)

	// Prologue.
	g.emit(vm.Instr{Op: vm.OpPush, B: vm.BP})
	g.emit(vm.Instr{Op: vm.OpMov, A: vm.BP, B: vm.SP})
	if g.frameSize > 0 {
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: g.frameSize})
		g.emit(vm.Instr{Op: vm.OpSub, A: vm.SP, B: vm.SP, C: vm.R1})
	}

	if err := g.stmt(fn.Body); err != nil {
		return err
	}

	// Fall-off-the-end return (value 0 for non-void mains and friends).
	g.setSite(fn.Pos())
	g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 0})
	g.mark(g.epilogue)
	g.emit(vm.Instr{Op: vm.OpMov, A: vm.SP, B: vm.BP})
	g.emit(vm.Instr{Op: vm.OpPop, A: vm.BP})
	g.emit(vm.Instr{Op: vm.OpRet})

	g.resolveLabels()
	// Fill this function's jump tables now that case label PCs are known.
	for _, tp := range g.tableFix {
		for i, lbl := range tp.labels {
			pc := g.labelTargs[lbl]
			off := tp.dataOff - vm.DataBase + vm.Word(4*i)
			g.data[off] = byte(pc)
			g.data[off+1] = byte(pc >> 8)
			g.data[off+2] = byte(pc >> 16)
			g.data[off+3] = byte(pc >> 24)
		}
	}
	g.tableFix = g.tableFix[:0]
	g.labelTargs = g.labelTargs[:0]
	g.labelFix = g.labelFix[:0]
	g.funcs = append(g.funcs, vm.FuncInfo{Name: fn.Name, Entry: g.funcEntry[fn.Name], End: len(g.code)})
	return nil
}

// assignLocals walks the body assigning BP-relative offsets to every local
// declaration and enclosure descriptor. All block locals live for the whole
// function (no slot reuse), which keeps addresses stable for the region
// machinery.
func (g *gen) assignLocals(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			g.assignLocals(st)
		}
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			size := int32((d.T.Size() + 3) &^ 3)
			g.frameSize += size
			d.Sym.Addr = -g.frameSize
		}
	case *ast.If:
		g.assignLocals(s.Then)
		if s.Else != nil {
			g.assignLocals(s.Else)
		}
	case *ast.While:
		g.assignLocals(s.Body)
	case *ast.DoWhile:
		g.assignLocals(s.Body)
	case *ast.For:
		if s.Init != nil {
			g.assignLocals(s.Init)
		}
		g.assignLocals(s.Body)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				g.assignLocals(st)
			}
		}
	case *ast.Enclose:
		// Reserve the descriptor: count word plus (addr, len) per item.
		size := int32(4 * (1 + 2*len(s.Items)))
		g.frameSize += size
		s.DescOff = -g.frameSize
		g.assignLocals(s.Body)
	}
}

// ---------------------------------------------------------------- stmts ---

func (g *gen) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			if err := g.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				g.setSite(d.Pos())
				if err := g.expr(d.Init); err != nil {
					return err
				}
				g.emit(vm.Instr{Op: vm.OpMov, A: vm.R2, B: vm.BP})
				g.emit(vm.Instr{Op: vm.OpStore, A: vm.R2, B: vm.R0, W: width(d.T), Imm: d.Sym.Addr})
			}
		}
		return nil

	case *ast.ExprStmt:
		g.setSite(s.Pos())
		return g.expr(s.X)

	case *ast.Empty:
		return nil

	case *ast.If:
		g.setSite(s.Pos())
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		elseL, endL := g.newLabel(), g.newLabel()
		g.jump(vm.OpJz, vm.R0, elseL)
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		g.jump(vm.OpJmp, 0, endL)
		g.mark(elseL)
		if s.Else != nil {
			if err := g.stmt(s.Else); err != nil {
				return err
			}
		}
		g.mark(endL)
		return nil

	case *ast.While:
		top, end := g.newLabel(), g.newLabel()
		g.mark(top)
		g.setSite(s.Pos())
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.jump(vm.OpJz, vm.R0, end)
		g.breakT = append(g.breakT, end)
		g.contT = append(g.contT, top)
		err := g.stmt(s.Body)
		g.breakT = g.breakT[:len(g.breakT)-1]
		g.contT = g.contT[:len(g.contT)-1]
		if err != nil {
			return err
		}
		g.jump(vm.OpJmp, 0, top)
		g.mark(end)
		return nil

	case *ast.DoWhile:
		top, cond, end := g.newLabel(), g.newLabel(), g.newLabel()
		g.mark(top)
		g.breakT = append(g.breakT, end)
		g.contT = append(g.contT, cond)
		err := g.stmt(s.Body)
		g.breakT = g.breakT[:len(g.breakT)-1]
		g.contT = g.contT[:len(g.contT)-1]
		if err != nil {
			return err
		}
		g.mark(cond)
		g.setSite(s.Pos())
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.jump(vm.OpJnz, vm.R0, top)
		g.mark(end)
		return nil

	case *ast.For:
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		top, post, end := g.newLabel(), g.newLabel(), g.newLabel()
		g.mark(top)
		if s.Cond != nil {
			g.setSite(s.Cond.Pos())
			if err := g.expr(s.Cond); err != nil {
				return err
			}
			g.jump(vm.OpJz, vm.R0, end)
		}
		g.breakT = append(g.breakT, end)
		g.contT = append(g.contT, post)
		err := g.stmt(s.Body)
		g.breakT = g.breakT[:len(g.breakT)-1]
		g.contT = g.contT[:len(g.contT)-1]
		if err != nil {
			return err
		}
		g.mark(post)
		if s.Post != nil {
			g.setSite(s.Post.Pos())
			if err := g.expr(s.Post); err != nil {
				return err
			}
		}
		g.jump(vm.OpJmp, 0, top)
		g.mark(end)
		return nil

	case *ast.Switch:
		return g.switchStmt(s)

	case *ast.Return:
		g.setSite(s.Pos())
		if s.X != nil {
			if err := g.expr(s.X); err != nil {
				return err
			}
		}
		g.jump(vm.OpJmp, 0, g.epilogue)
		return nil

	case *ast.Break:
		g.setSite(s.Pos())
		g.jump(vm.OpJmp, 0, g.breakT[len(g.breakT)-1])
		return nil

	case *ast.Continue:
		g.setSite(s.Pos())
		g.jump(vm.OpJmp, 0, g.contT[len(g.contT)-1])
		return nil

	case *ast.Enclose:
		return g.enclose(s)
	}
	return &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unhandled statement %T", s)}
}

func (g *gen) enclose(s *ast.Enclose) error {
	g.setSite(s.Pos())
	// Build the descriptor in the frame: [count, addr1, len1, ...].
	g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(len(s.Items))})
	g.storeBP(s.DescOff, vm.R1)
	for i, it := range s.Items {
		slot := s.DescOff + int32(4+8*i)
		if it.Len == nil {
			t := it.Ptr.Type()
			if err := g.addr(it.Ptr); err != nil {
				return err
			}
			g.storeBP(slot, vm.R0)
			size := t.Size()
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(size)})
			g.storeBP(slot+4, vm.R1)
		} else {
			if err := g.expr(it.Ptr); err != nil {
				return err
			}
			g.storeBP(slot, vm.R0)
			if err := g.expr(it.Len); err != nil {
				return err
			}
			g.storeBP(slot+4, vm.R0)
		}
	}
	// R1 = BP + descOff; SysEnterRegion.
	g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: s.DescOff})
	g.emit(vm.Instr{Op: vm.OpAdd, A: vm.R1, B: vm.BP, C: vm.R1})
	g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysEnterRegion})
	if err := g.stmt(s.Body); err != nil {
		return err
	}
	g.setSite(s.Pos())
	g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysLeaveRegion})
	return nil
}

// storeBP stores register r to [BP+off].
func (g *gen) storeBP(off int32, r uint8) {
	g.emit(vm.Instr{Op: vm.OpMov, A: vm.R2, B: vm.BP})
	g.emit(vm.Instr{Op: vm.OpStore, A: vm.R2, B: r, W: 4, Imm: off})
}

func (g *gen) switchStmt(s *ast.Switch) error {
	g.setSite(s.Pos())
	if err := g.expr(s.X); err != nil {
		return err
	}
	end := g.newLabel()

	// Gather labels.
	type arm struct {
		val int64
		lbl int
	}
	var arms []arm
	caseLbl := make([]int, len(s.Cases))
	defaultLbl := end
	for i, c := range s.Cases {
		caseLbl[i] = g.newLabel()
		if c.IsDefault {
			defaultLbl = caseLbl[i]
		}
		for _, v := range c.Vals {
			arms = append(arms, arm{v, caseLbl[i]})
		}
	}

	dense := false
	var lo, hi int64
	if len(arms) >= 3 {
		lo, hi = arms[0].val, arms[0].val
		for _, a := range arms {
			if a.val < lo {
				lo = a.val
			}
			if a.val > hi {
				hi = a.val
			}
		}
		span := hi - lo + 1
		if span <= 3*int64(len(arms))+8 && span <= 1024 {
			dense = true
		}
	}

	if dense {
		// Jump table in the data segment, reached by an indirect jump:
		// the canonical tainted-pointer implicit flow (§2.2).
		span := int(hi - lo + 1)
		g.alignData(4)
		tbl := vm.DataBase + vm.Word(len(g.data))
		g.data = append(g.data, make([]byte, 4*span)...)
		labels := make([]int, span)
		for i := range labels {
			labels[i] = defaultLbl
		}
		for _, a := range arms {
			labels[a.val-lo] = a.lbl
		}
		g.tableFix = append(g.tableFix, tablePatch{dataOff: tbl, labels: labels})

		// R0 = switch value. Bounds-check, then jump through the table.
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(lo)})
		g.emit(vm.Instr{Op: vm.OpSub, A: vm.R0, B: vm.R0, C: vm.R1}) // idx = x - lo
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(span)})
		g.emit(vm.Instr{Op: vm.OpCmpLTU, A: vm.R1, B: vm.R0, C: vm.R1}) // idx < span (unsigned)
		g.jump(vm.OpJz, vm.R1, defaultLbl)
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: 4})
		g.emit(vm.Instr{Op: vm.OpMul, A: vm.R0, B: vm.R0, C: vm.R1})
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(tbl)})
		g.emit(vm.Instr{Op: vm.OpAdd, A: vm.R0, B: vm.R0, C: vm.R1})
		g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R0, W: 4})
		g.emit(vm.Instr{Op: vm.OpJmpInd, A: vm.R0})
	} else {
		// Comparison chain.
		for _, a := range arms {
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(a.val)})
			g.emit(vm.Instr{Op: vm.OpCmpEQ, A: vm.R1, B: vm.R0, C: vm.R1})
			g.jump(vm.OpJnz, vm.R1, a.lbl)
		}
		g.jump(vm.OpJmp, 0, defaultLbl)
	}

	g.breakT = append(g.breakT, end)
	for i, c := range s.Cases {
		g.mark(caseLbl[i])
		for _, st := range c.Stmts {
			if err := g.stmt(st); err != nil {
				return err
			}
		}
	}
	g.breakT = g.breakT[:len(g.breakT)-1]
	g.mark(end)
	return nil
}
