package codegen

import (
	"fmt"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/token"
	"flowcheck/internal/vm"
)

// expr compiles e, leaving its value in R0. R1 and R2 are clobbered;
// intermediate values are spilled to the runtime stack.
func (g *gen) expr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.IntLit:
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: int32(e.Val)})
		return nil

	case *ast.StrLit:
		g.setSite(e.Pos())
		addr := g.internString(e.Val)
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: int32(addr)})
		return nil

	case *ast.Ident:
		g.setSite(e.Pos())
		sym := e.Sym
		if sym.Type.Kind == ast.Array {
			return g.addr(e) // arrays decay to their address
		}
		switch sym.Kind {
		case ast.SymLocal, ast.SymParam:
			g.emit(vm.Instr{Op: vm.OpMov, A: vm.R1, B: vm.BP})
			g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R1, W: width(sym.Type), Imm: sym.Addr})
		case ast.SymGlobal:
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: sym.Addr})
			g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R1, W: width(sym.Type)})
		default:
			return &Error{Pos: e.Pos(), Msg: "cannot evaluate " + sym.Name}
		}
		return nil

	case *ast.Unary:
		return g.unary(e)

	case *ast.Postfix:
		return g.incDec(e.X, e.Op == token.PlusPlus, false)

	case *ast.Binary:
		return g.binary(e)

	case *ast.Assign:
		return g.assign(e)

	case *ast.Cond:
		g.setSite(e.Pos())
		if err := g.expr(e.C); err != nil {
			return err
		}
		elseL, endL := g.newLabel(), g.newLabel()
		g.jump(vm.OpJz, vm.R0, elseL)
		if err := g.expr(e.Then); err != nil {
			return err
		}
		g.jump(vm.OpJmp, 0, endL)
		g.mark(elseL)
		if err := g.expr(e.Else); err != nil {
			return err
		}
		g.mark(endL)
		return nil

	case *ast.Call:
		return g.call(e)

	case *ast.Index:
		if err := g.addrIndex(e); err != nil {
			return err
		}
		g.setSite(e.Pos())
		if elem := e.X.Type().Elem; elem.Kind != ast.Array {
			g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R0, W: width(elem)})
		} // an array element decays to its address
		return nil

	case *ast.Cast:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		if e.To.Kind == ast.Char {
			// Truncation to char is a sub-register read (paper §4.1): the
			// low byte of the full register, zero-extended.
			g.emit(vm.Instr{Op: vm.OpExtB, A: vm.R0, B: vm.R0, Imm: 0})
		}
		return nil

	case *ast.SizeofExpr:
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: int32(e.Of.Size())})
		return nil
	}
	return &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unhandled expression %T", e)}
}

// addr compiles the address of lvalue e into R0.
func (g *gen) addr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.Ident:
		g.setSite(e.Pos())
		sym := e.Sym
		switch sym.Kind {
		case ast.SymLocal, ast.SymParam:
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: sym.Addr})
			g.emit(vm.Instr{Op: vm.OpAdd, A: vm.R0, B: vm.BP, C: vm.R1})
		case ast.SymGlobal:
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: sym.Addr})
		default:
			return &Error{Pos: e.Pos(), Msg: sym.Name + " has no address"}
		}
		return nil

	case *ast.Index:
		return g.addrIndex(e)

	case *ast.Unary:
		if e.Op == token.Star {
			return g.expr(e.X)
		}
	}
	return &Error{Pos: e.Pos(), Msg: fmt.Sprintf("expression %T is not addressable", e)}
}

func (g *gen) addrIndex(e *ast.Index) error {
	if err := g.expr(e.X); err != nil { // base pointer value
		return err
	}
	g.emit(vm.Instr{Op: vm.OpPush, B: vm.R0})
	if err := g.expr(e.Idx); err != nil {
		return err
	}
	g.setSite(e.Pos())
	size := e.X.Type().Elem.Size() // stride of the undecayed element type
	if size != 1 {
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(size)})
		g.emit(vm.Instr{Op: vm.OpMul, A: vm.R0, B: vm.R0, C: vm.R1})
	}
	g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1})
	g.emit(vm.Instr{Op: vm.OpAdd, A: vm.R0, B: vm.R1, C: vm.R0})
	return nil
}

func (g *gen) unary(e *ast.Unary) error {
	switch e.Op {
	case token.Star:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		if elem := e.X.Type().Elem; elem.Kind != ast.Array {
			g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R0, W: width(elem)})
		}
		return nil

	case token.Amp:
		return g.addr(e.X)

	case token.Bang:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: 0})
		g.emit(vm.Instr{Op: vm.OpCmpEQ, A: vm.R0, B: vm.R0, C: vm.R1})
		return nil

	case token.Tilde:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpNot, A: vm.R0, B: vm.R0})
		return nil

	case token.Minus:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpNeg, A: vm.R0, B: vm.R0})
		return nil

	case token.PlusPlus, token.MinusMinus:
		return g.incDec(e.X, e.Op == token.PlusPlus, true)
	}
	return &Error{Pos: e.Pos(), Msg: "unhandled unary " + e.Op.String()}
}

// incDec compiles ++/-- on lvalue x. If pre, the result is the new value,
// otherwise the old one. Pointers step by their element size.
func (g *gen) incDec(x ast.Expr, inc, pre bool) error {
	if err := g.addr(x); err != nil {
		return err
	}
	g.setSite(x.Pos())
	t := x.Type()
	delta := int32(1)
	if t.Kind == ast.Pointer {
		delta = int32(t.Elem.Size())
	}
	w := width(t)
	g.emit(vm.Instr{Op: vm.OpMov, A: vm.R2, B: vm.R0})        // R2 = addr
	g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R0, B: vm.R2, W: w}) // R0 = old
	g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: delta})
	op := vm.OpAdd
	if !inc {
		op = vm.OpSub
	}
	g.emit(vm.Instr{Op: op, A: vm.R1, B: vm.R0, C: vm.R1}) // R1 = new
	g.emit(vm.Instr{Op: vm.OpStore, A: vm.R2, B: vm.R1, W: w})
	if pre {
		g.emit(vm.Instr{Op: vm.OpMov, A: vm.R0, B: vm.R1})
	}
	return nil
}

func (g *gen) binary(e *ast.Binary) error {
	// Short-circuit logical operators compile to branches; when their
	// operands are secret these branches are implicit flows, exactly as
	// for compiled C (§2.2).
	if e.Op == token.AndAnd || e.Op == token.OrOr {
		falseL, endL := g.newLabel(), g.newLabel()
		shortIsFalse := e.Op == token.AndAnd
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.setSite(e.Pos())
		if shortIsFalse {
			g.jump(vm.OpJz, vm.R0, falseL)
		} else {
			g.jump(vm.OpJnz, vm.R0, falseL) // falseL doubles as the short-circuit target
		}
		if err := g.expr(e.Y); err != nil {
			return err
		}
		g.setSite(e.Pos())
		if shortIsFalse {
			g.jump(vm.OpJz, vm.R0, falseL)
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 1})
			g.jump(vm.OpJmp, 0, endL)
			g.mark(falseL)
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 0})
		} else {
			g.jump(vm.OpJnz, vm.R0, falseL)
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 0})
			g.jump(vm.OpJmp, 0, endL)
			g.mark(falseL)
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 1})
		}
		g.mark(endL)
		return nil
	}

	xt, yt := e.X.Type(), e.Y.Type()

	if err := g.expr(e.X); err != nil {
		return err
	}
	g.emit(vm.Instr{Op: vm.OpPush, B: vm.R0})
	if err := g.expr(e.Y); err != nil {
		return err
	}
	g.setSite(e.Pos())

	// Pointer arithmetic scaling.
	if e.Op == token.Plus || e.Op == token.Minus {
		if xt.Kind == ast.Pointer && yt.IsInteger() && xt.Elem.Size() != 1 {
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(xt.Elem.Size())})
			g.emit(vm.Instr{Op: vm.OpMul, A: vm.R0, B: vm.R0, C: vm.R1})
		}
		if yt.Kind == ast.Pointer && xt.IsInteger() && yt.Elem.Size() != 1 {
			// x (int, on stack) + y (pointer, in R0): scale the stacked int
			// after popping, below.
			g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1})
			g.emit(vm.Instr{Op: vm.OpConst, A: vm.R2, Imm: int32(yt.Elem.Size())})
			g.emit(vm.Instr{Op: vm.OpMul, A: vm.R1, B: vm.R1, C: vm.R2})
			g.emit(vm.Instr{Op: vm.OpAdd, A: vm.R0, B: vm.R1, C: vm.R0})
			return nil
		}
	}

	g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1}) // R1 = x, R0 = y

	signed := isSignedOp(xt, yt)
	var op vm.Op
	swap := false
	switch e.Op {
	case token.Plus:
		op = vm.OpAdd
	case token.Minus:
		op = vm.OpSub
	case token.Star:
		op = vm.OpMul
	case token.Slash:
		op = pick(signed, vm.OpDivS, vm.OpDivU)
	case token.Percent:
		op = pick(signed, vm.OpModS, vm.OpModU)
	case token.Amp:
		op = vm.OpAnd
	case token.Pipe:
		op = vm.OpOr
	case token.Caret:
		op = vm.OpXor
	case token.Shl:
		op = vm.OpShl
	case token.Shr:
		op = pick(xt.IsSigned(), vm.OpShrS, vm.OpShrU)
	case token.EqEq:
		op = vm.OpCmpEQ
	case token.NotEq:
		op = vm.OpCmpNE
	case token.Lt:
		op = pick(signed, vm.OpCmpLTS, vm.OpCmpLTU)
	case token.Le:
		op = pick(signed, vm.OpCmpLES, vm.OpCmpLEU)
	case token.Gt:
		op = pick(signed, vm.OpCmpLTS, vm.OpCmpLTU)
		swap = true
	case token.Ge:
		op = pick(signed, vm.OpCmpLES, vm.OpCmpLEU)
		swap = true
	default:
		return &Error{Pos: e.Pos(), Msg: "unhandled binary " + e.Op.String()}
	}
	if swap {
		g.emit(vm.Instr{Op: op, A: vm.R0, B: vm.R0, C: vm.R1})
	} else {
		g.emit(vm.Instr{Op: op, A: vm.R0, B: vm.R1, C: vm.R0})
	}

	// Pointer difference scales down by the element size.
	if e.Op == token.Minus && xt.Kind == ast.Pointer && yt.Kind == ast.Pointer && xt.Elem.Size() != 1 {
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(xt.Elem.Size())})
		g.emit(vm.Instr{Op: vm.OpDivS, A: vm.R0, B: vm.R0, C: vm.R1})
	}
	return nil
}

// isSignedOp reports whether the usual arithmetic conversions make the
// operation signed: true only when both promoted operands are signed ints
// and no pointers are involved.
func isSignedOp(x, y *ast.Type) bool {
	if x.Kind == ast.Pointer || y.Kind == ast.Pointer {
		return false
	}
	return x.Kind != ast.Uint && y.Kind != ast.Uint
}

func pick(c bool, a, b vm.Op) vm.Op {
	if c {
		return a
	}
	return b
}

func (g *gen) assign(e *ast.Assign) error {
	lt := e.LHS.Type()
	w := width(lt)

	if err := g.addr(e.LHS); err != nil {
		return err
	}
	g.emit(vm.Instr{Op: vm.OpPush, B: vm.R0})
	if err := g.expr(e.RHS); err != nil {
		return err
	}
	g.setSite(e.Pos())

	if e.Op == token.Assign {
		g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1})
		g.emit(vm.Instr{Op: vm.OpStore, A: vm.R1, B: vm.R0, W: w})
		return nil
	}

	// Compound assignment: R0 = rhs; reload old value and combine.
	if lt.Kind == ast.Pointer && lt.Elem.Size() != 1 {
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(lt.Elem.Size())})
		g.emit(vm.Instr{Op: vm.OpMul, A: vm.R0, B: vm.R0, C: vm.R1})
	}
	g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1})                  // addr
	g.emit(vm.Instr{Op: vm.OpLoad, A: vm.R2, B: vm.R1, W: w}) // old

	signed := lt.IsSigned()
	var op vm.Op
	switch e.Op {
	case token.PlusAssign:
		op = vm.OpAdd
	case token.MinusAssign:
		op = vm.OpSub
	case token.StarAssign:
		op = vm.OpMul
	case token.SlashAssign:
		op = pick(signed, vm.OpDivS, vm.OpDivU)
	case token.PercentAssign:
		op = pick(signed, vm.OpModS, vm.OpModU)
	case token.AmpAssign:
		op = vm.OpAnd
	case token.PipeAssign:
		op = vm.OpOr
	case token.CaretAssign:
		op = vm.OpXor
	case token.ShlAssign:
		op = vm.OpShl
	case token.ShrAssign:
		op = pick(signed, vm.OpShrS, vm.OpShrU)
	default:
		return &Error{Pos: e.Pos(), Msg: "unhandled compound assignment"}
	}
	g.emit(vm.Instr{Op: op, A: vm.R0, B: vm.R2, C: vm.R0}) // new = old op rhs
	g.emit(vm.Instr{Op: vm.OpStore, A: vm.R1, B: vm.R0, W: w})
	return nil
}

func (g *gen) call(e *ast.Call) error {
	sym := e.Fun.Sym
	if sym.Kind == ast.SymBuiltin {
		return g.builtin(e)
	}
	// Push arguments right to left.
	for i := len(e.Args) - 1; i >= 0; i-- {
		if err := g.expr(e.Args[i]); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpPush, B: vm.R0})
	}
	g.setSite(e.Pos())
	pc := g.emit(vm.Instr{Op: vm.OpCall, Imm: -1})
	g.callFix = append(g.callFix, fixup{pc: pc, name: e.Fun.Name})
	if n := len(e.Args); n > 0 {
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R1, Imm: int32(4 * n)})
		g.emit(vm.Instr{Op: vm.OpAdd, A: vm.SP, B: vm.SP, C: vm.R1})
	}
	return nil
}

func (g *gen) builtin(e *ast.Call) error {
	// Helpers for the two-argument (pointer, length) builtins.
	ptrLen := func() error {
		if err := g.expr(e.Args[0]); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpPush, B: vm.R0})
		if err := g.expr(e.Args[1]); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpMov, A: vm.R2, B: vm.R0})
		g.emit(vm.Instr{Op: vm.OpPop, A: vm.R1})
		return nil
	}
	switch e.Fun.Sym.Builtin {
	case "read_secret", "read_public":
		if err := ptrLen(); err != nil {
			return err
		}
		stream := int32(vm.StreamPublic)
		if e.Fun.Sym.Builtin == "read_secret" {
			stream = vm.StreamSecret
		}
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: stream})
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysRead})
	case "write_out":
		if err := ptrLen(); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpConst, A: vm.R0, Imm: 1})
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysWrite})
	case "putc":
		if err := g.expr(e.Args[0]); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysPutc})
	case "exit":
		if err := g.expr(e.Args[0]); err != nil {
			return err
		}
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysExit})
	case "__secret":
		if err := ptrLen(); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysMarkSecret})
	case "__declassify":
		if err := ptrLen(); err != nil {
			return err
		}
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysDeclassify})
	case "__flownote":
		g.setSite(e.Pos())
		g.emit(vm.Instr{Op: vm.OpSys, Imm: vm.SysFlowNote})
	default:
		return &Error{Pos: e.Pos(), Msg: "unknown builtin " + e.Fun.Name}
	}
	return nil
}
