// Package lang ties together the MiniC front end: lexing, parsing, semantic
// analysis, and code generation to the vm package's instruction set.
//
// MiniC is the guest language of this reproduction. The paper analyzes
// compiled x86 binaries via Valgrind; here, guest programs are written in
// this C subset and compiled to the reproduction's VM, so the analysis
// observes the same kinds of machine-level events (word ALU ops, byte
// loads/stores, conditional and indirect jumps, syscalls) it would on x86.
package lang

import (
	"flowcheck/internal/lang/codegen"
	"flowcheck/internal/lang/parser"
	"flowcheck/internal/lang/sema"
	"flowcheck/internal/vm"
)

// Compile parses, checks, and compiles one MiniC source file.
func Compile(filename, src string) (*vm.Program, error) {
	f, err := parser.Parse(filename, src)
	if err != nil {
		return nil, err
	}
	if err := sema.Check(f); err != nil {
		return nil, err
	}
	return codegen.Compile(f)
}

// MustCompile is Compile for known-good sources (the embedded guest
// programs); it panics on error.
func MustCompile(filename, src string) *vm.Program {
	p, err := Compile(filename, src)
	if err != nil {
		panic("lang: compiling " + filename + ": " + err.Error())
	}
	return p
}
