package parser

import (
	"strings"
	"testing"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/token"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return f
}

func mainBody(t *testing.T, src string) []ast.Stmt {
	t.Helper()
	f := parse(t, src)
	for _, fn := range f.Funcs {
		if fn.Name == "main" {
			return fn.Body.Stmts
		}
	}
	t.Fatal("no main")
	return nil
}

func TestGlobalsAndFunctions(t *testing.T) {
	f := parse(t, `
int g = 3;
char buf[10];
int *p, q;
void f(int a, char *s, int arr[]) { }
int main() { return 0; }`)
	if len(f.Globals) != 4 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	if f.Globals[0].Name != "g" || f.Globals[0].Init == nil {
		t.Fatalf("g = %+v", f.Globals[0])
	}
	if f.Globals[1].T.Kind != ast.Array || f.Globals[1].T.Len != 10 {
		t.Fatalf("buf type = %v", f.Globals[1].T)
	}
	if f.Globals[2].T.Kind != ast.Pointer {
		t.Fatalf("p type = %v", f.Globals[2].T)
	}
	if f.Globals[3].T.Kind != ast.Int {
		t.Fatalf("q type = %v (pointer star must not distribute)", f.Globals[3].T)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if len(fn.Params) != 3 {
		t.Fatalf("params = %d", len(fn.Params))
	}
	if fn.Params[2].T.Kind != ast.Pointer {
		t.Fatalf("array param should decay to pointer, got %v", fn.Params[2].T)
	}
}

func TestConstantArrayLengths(t *testing.T) {
	f := parse(t, `
char a[4*1024];
char b[sizeof(int)*8];
int main() { return 0; }`)
	if f.Globals[0].T.Len != 4096 {
		t.Fatalf("a len = %d", f.Globals[0].T.Len)
	}
	if f.Globals[1].T.Len != 32 {
		t.Fatalf("b len = %d", f.Globals[1].T.Len)
	}
}

func TestPrecedence(t *testing.T) {
	stmts := mainBody(t, `int main() { int x; x = 1 + 2 * 3 == 7 && 1 | 0; return 0; }`)
	// x = (((1 + (2*3)) == 7) && (1|0))
	es, ok := stmts[1].(*ast.ExprStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmts[1])
	}
	asn := es.X.(*ast.Assign)
	and, ok := asn.RHS.(*ast.Binary)
	if !ok || and.Op != token.AndAnd {
		t.Fatalf("top op = %+v, want &&", asn.RHS)
	}
	eq := and.X.(*ast.Binary)
	if eq.Op != token.EqEq {
		t.Fatalf("left of && = %v, want ==", eq.Op)
	}
	or := and.Y.(*ast.Binary)
	if or.Op != token.Pipe {
		t.Fatalf("right of && = %v, want |", or.Op)
	}
	plus := eq.X.(*ast.Binary)
	if plus.Op != token.Plus {
		t.Fatalf("left of == = %v", plus.Op)
	}
	mul := plus.Y.(*ast.Binary)
	if mul.Op != token.Star {
		t.Fatalf("right of + = %v", mul.Op)
	}
}

func TestUnaryAndPostfix(t *testing.T) {
	stmts := mainBody(t, `int main() { int x; int *p; x = -*p + !x; p[x]++; ++x; return 0; }`)
	if len(stmts) < 5 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if _, ok := stmts[3].(*ast.ExprStmt).X.(*ast.Postfix); !ok {
		t.Fatalf("p[x]++ parsed as %T", stmts[3].(*ast.ExprStmt).X)
	}
	if u, ok := stmts[4].(*ast.ExprStmt).X.(*ast.Unary); !ok || u.Op != token.PlusPlus {
		t.Fatalf("++x parsed as %T", stmts[4].(*ast.ExprStmt).X)
	}
}

func TestCastVsParen(t *testing.T) {
	stmts := mainBody(t, `int main() { int x; x = (int)x + (x); return 0; }`)
	asn := stmts[1].(*ast.ExprStmt).X.(*ast.Assign)
	add := asn.RHS.(*ast.Binary)
	if _, ok := add.X.(*ast.Cast); !ok {
		t.Fatalf("(int)x parsed as %T", add.X)
	}
	if _, ok := add.Y.(*ast.Ident); !ok {
		t.Fatalf("(x) parsed as %T", add.Y)
	}
}

func TestTernaryNesting(t *testing.T) {
	stmts := mainBody(t, `int main() { int x; x = 1 ? 2 : 3 ? 4 : 5; return 0; }`)
	asn := stmts[1].(*ast.ExprStmt).X.(*ast.Assign)
	c := asn.RHS.(*ast.Cond)
	if _, ok := c.Else.(*ast.Cond); !ok {
		t.Fatalf("ternary should right-associate, else = %T", c.Else)
	}
}

func TestControlFlowForms(t *testing.T) {
	stmts := mainBody(t, `
int main() {
    if (1) ; else ;
    while (1) break;
    do { } while (0);
    for (;;) break;
    for (int i = 0; i < 3; i++) continue;
    switch (1) { case 1: break; default: ; }
    return 0;
}`)
	types := []string{"*ast.If", "*ast.While", "*ast.DoWhile", "*ast.For", "*ast.For", "*ast.Switch", "*ast.Return"}
	if len(stmts) != len(types) {
		t.Fatalf("stmts = %d", len(stmts))
	}
	for i, want := range types {
		if got := typeName(stmts[i]); got != want {
			t.Errorf("stmt %d = %s, want %s", i, got, want)
		}
	}
}

func typeName(s ast.Stmt) string {
	switch s.(type) {
	case *ast.If:
		return "*ast.If"
	case *ast.While:
		return "*ast.While"
	case *ast.DoWhile:
		return "*ast.DoWhile"
	case *ast.For:
		return "*ast.For"
	case *ast.Switch:
		return "*ast.Switch"
	case *ast.Return:
		return "*ast.Return"
	}
	return "?"
}

func TestEncloseForms(t *testing.T) {
	stmts := mainBody(t, `
int main() {
    int x; char buf[4]; int n;
    __enclose(x) { }
    __enclose(x, buf : 4, buf : n*2) { }
    return 0;
}`)
	// stmts[0..2] are the three declaration statements.
	e1 := stmts[3].(*ast.Enclose)
	if len(e1.Items) != 1 || e1.Items[0].Len != nil {
		t.Fatalf("e1 items = %+v", e1.Items)
	}
	e2 := stmts[4].(*ast.Enclose)
	if len(e2.Items) != 3 {
		t.Fatalf("e2 items = %d", len(e2.Items))
	}
	if e2.Items[1].Len == nil || e2.Items[2].Len == nil {
		t.Fatal("range items must carry lengths")
	}
}

func TestSwitchCaseStructure(t *testing.T) {
	stmts := mainBody(t, `
int main() {
    switch (3) {
    case 1:
    case 2: return 1;
    case 10+20: return 2;
    default: return 3;
    }
    return 0;
}`)
	sw := stmts[0].(*ast.Switch)
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if len(sw.Cases[0].Stmts) != 0 {
		t.Fatal("fallthrough case should have no stmts")
	}
	if sw.Cases[2].Vals[0] != 30 {
		t.Fatalf("folded case = %d", sw.Cases[2].Vals[0])
	}
	if !sw.Cases[3].IsDefault {
		t.Fatal("default not marked")
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int main() { return 1 +; }", "expected expression"},
		{"int main() { if 1) ; }", "expected ("},
		{"int main() { int a[0]; }", "array length"},
		{"int main() { int a[x]; }", "not a compile-time constant"},
		{"int main() { 3(); }", "not a function name"},
		{"int main() { switch (1) { int x; } }", "expected case or default"},
		{"int main() {", "unexpected EOF"},
		{"int 5;", "expected identifier"},
		{"banana main() {}", "expected declaration"},
	}
	for _, c := range cases {
		_, err := Parse("t.mc", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestVoidParamList(t *testing.T) {
	f := parse(t, `int f(void) { return 1; } int main() { return f(); }`)
	if len(f.Funcs[0].Params) != 0 {
		t.Fatalf("f(void) params = %d", len(f.Funcs[0].Params))
	}
}

func TestMultiDimensionalArray(t *testing.T) {
	f := parse(t, `int grid[3][4]; int main() { return 0; }`)
	typ := f.Globals[0].T
	if typ.Kind != ast.Array || typ.Len != 3 || typ.Elem.Kind != ast.Array || typ.Elem.Len != 4 {
		t.Fatalf("grid type = %v", typ)
	}
	if typ.Size() != 48 {
		t.Fatalf("size = %d", typ.Size())
	}
}
