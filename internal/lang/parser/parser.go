// Package parser implements a recursive-descent parser for MiniC.
package parser

import (
	"fmt"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/lexer"
	"flowcheck/internal/lang/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse lexes and parses one MiniC source file.
func Parse(file, src string) (*ast.File, error) {
	toks, err := lexer.Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file(file)
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func isTypeKeyword(k token.Kind) bool {
	return k == token.KwInt || k == token.KwUint || k == token.KwChar || k == token.KwVoid
}

// ----------------------------------------------------------------- file ---

func (p *parser) file(name string) (*ast.File, error) {
	f := &ast.File{Name: name}
	for !p.at(token.EOF) {
		if !isTypeKeyword(p.cur().Kind) {
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		// Peek past pointer stars to see if this is a function definition.
		stars := 0
		for p.at(token.Star) {
			stars++
			p.next()
		}
		nameTok, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		typ := applyStars(base, stars)
		if p.at(token.LParen) {
			fd, err := p.funcDecl(nameTok, typ)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
			continue
		}
		decls, err := p.declarators(base, typ, nameTok)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, decls...)
	}
	return f, nil
}

func applyStars(t *ast.Type, stars int) *ast.Type {
	for i := 0; i < stars; i++ {
		t = ast.PointerTo(t)
	}
	return t
}

func (p *parser) baseType() (*ast.Type, error) {
	switch p.next().Kind {
	case token.KwInt:
		return ast.IntType, nil
	case token.KwUint:
		return ast.UintType, nil
	case token.KwChar:
		return ast.CharType, nil
	case token.KwVoid:
		return ast.VoidType, nil
	}
	return nil, p.errf("expected type")
}

// declarators parses the remainder of a variable declaration line after the
// first declarator's name token has been consumed, through the semicolon.
func (p *parser) declarators(base, firstType *ast.Type, firstName token.Token) ([]*ast.VarDecl, error) {
	var decls []*ast.VarDecl
	typ, nameTok := firstType, firstName
	for {
		typ2, err := p.arraySuffix(typ)
		if err != nil {
			return nil, err
		}
		vd := &ast.VarDecl{StmtBase: ast.NewStmtBase(nameTok.Pos), Name: nameTok.Text, T: typ2}
		if p.accept(token.Assign) {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		decls = append(decls, vd)
		if p.accept(token.Comma) {
			stars := 0
			for p.at(token.Star) {
				stars++
				p.next()
			}
			nameTok, err = p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			typ = applyStars(base, stars)
			continue
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return decls, nil
	}
}

// arraySuffix parses zero or more [N] suffixes, building nested array types
// (outermost dimension first, as in C).
func (p *parser) arraySuffix(t *ast.Type) (*ast.Type, error) {
	var lens []int
	for p.accept(token.LBracket) {
		n, err := p.constExpr()
		if err != nil {
			return nil, err
		}
		if n <= 0 || n > 1<<24 {
			return nil, p.errf("array length %d out of range", n)
		}
		lens = append(lens, int(n))
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
	}
	for i := len(lens) - 1; i >= 0; i-- {
		t = ast.ArrayOf(t, lens[i])
	}
	return t, nil
}

// constExpr evaluates a compile-time constant expression for array lengths
// and case labels: literals, sizeof, unary -/~, and the binary arithmetic,
// shift, and bitwise operators over them.
func (p *parser) constExpr() (int64, error) {
	e, err := p.binaryExpr(0)
	if err != nil {
		return 0, err
	}
	return p.evalConst(e)
}

func (p *parser) evalConst(e ast.Expr) (int64, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return int64(e.Val), nil
	case *ast.SizeofExpr:
		return int64(e.Of.Size()), nil
	case *ast.Unary:
		v, err := p.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.Minus:
			return -v, nil
		case token.Tilde:
			return int64(uint32(^uint32(v))), nil
		case token.Bang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *ast.Binary:
		a, err := p.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		b, err := p.evalConst(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.Plus:
			return a + b, nil
		case token.Minus:
			return a - b, nil
		case token.Star:
			return a * b, nil
		case token.Slash:
			if b == 0 {
				return 0, &Error{Pos: e.Pos(), Msg: "division by zero in constant"}
			}
			return a / b, nil
		case token.Percent:
			if b == 0 {
				return 0, &Error{Pos: e.Pos(), Msg: "modulo by zero in constant"}
			}
			return a % b, nil
		case token.Shl:
			return a << uint(b&31), nil
		case token.Shr:
			return a >> uint(b&31), nil
		case token.Amp:
			return a & b, nil
		case token.Pipe:
			return a | b, nil
		case token.Caret:
			return a ^ b, nil
		}
	}
	return 0, &Error{Pos: e.Pos(), Msg: "expression is not a compile-time constant"}
}

// ------------------------------------------------------------ functions ---

func (p *parser) funcDecl(nameTok token.Token, result *ast.Type) (*ast.FuncDecl, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	fd := &ast.FuncDecl{P: nameTok.Pos, Name: nameTok.Text, Result: result}
	if p.at(token.KwVoid) && p.peek().Kind == token.RParen {
		p.next()
	}
	if !p.at(token.RParen) {
		for {
			if !isTypeKeyword(p.cur().Kind) {
				return nil, p.errf("expected parameter type")
			}
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			stars := 0
			for p.at(token.Star) {
				stars++
				p.next()
			}
			pn, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			typ := applyStars(base, stars)
			// Array parameters decay to pointers, as in C.
			if p.accept(token.LBracket) {
				if !p.at(token.RBracket) {
					if _, err := p.constExpr(); err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(token.RBracket); err != nil {
					return nil, err
				}
				typ = ast.PointerTo(typ)
			}
			fd.Params = append(fd.Params, &ast.VarDecl{
				StmtBase: ast.NewStmtBase(pn.Pos), Name: pn.Text, T: typ,
			})
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// ------------------------------------------------------------ statements ---

func (p *parser) block() (*ast.Block, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{StmtBase: ast.NewStmtBase(lb.Pos)}
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case token.LBrace:
		return p.block()

	case token.Semi:
		p.next()
		return &ast.Empty{StmtBase: ast.NewStmtBase(t.Pos)}, nil

	case token.KwInt, token.KwUint, token.KwChar, token.KwVoid:
		return p.declStmt()

	case token.KwIf:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els ast.Stmt
		if p.accept(token.KwElse) {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &ast.If{StmtBase: ast.NewStmtBase(t.Pos), Cond: cond, Then: then, Else: els}, nil

	case token.KwWhile:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &ast.While{StmtBase: ast.NewStmtBase(t.Pos), Cond: cond, Body: body}, nil

	case token.KwDo:
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.DoWhile{StmtBase: ast.NewStmtBase(t.Pos), Body: body, Cond: cond}, nil

	case token.KwFor:
		return p.forStmt()

	case token.KwSwitch:
		return p.switchStmt()

	case token.KwReturn:
		p.next()
		r := &ast.Return{StmtBase: ast.NewStmtBase(t.Pos)}
		if !p.at(token.Semi) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return r, nil

	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Break{StmtBase: ast.NewStmtBase(t.Pos)}, nil

	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Continue{StmtBase: ast.NewStmtBase(t.Pos)}, nil

	case token.KwEnclose:
		return p.encloseStmt()
	}

	// Expression statement.
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{StmtBase: ast.NewStmtBase(t.Pos), X: x}, nil
}

func (p *parser) declStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	stars := 0
	for p.at(token.Star) {
		stars++
		p.next()
	}
	nameTok, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	decls, err := p.declarators(base, applyStars(base, stars), nameTok)
	if err != nil {
		return nil, err
	}
	return &ast.DeclStmt{StmtBase: ast.NewStmtBase(pos), Decls: decls}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	f := &ast.For{StmtBase: ast.NewStmtBase(t.Pos)}
	if !p.at(token.Semi) {
		if isTypeKeyword(p.cur().Kind) {
			init, err := p.declStmt() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = &ast.ExprStmt{StmtBase: ast.NewStmtBase(x.Pos()), X: x}
			if _, err := p.expect(token.Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(token.Semi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.RParen) {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	sw := &ast.Switch{StmtBase: ast.NewStmtBase(t.Pos), X: x}
	for !p.at(token.RBrace) {
		ct := p.cur()
		var c *ast.Case
		switch ct.Kind {
		case token.KwCase:
			p.next()
			v, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			c = &ast.Case{StmtBase: ast.NewStmtBase(ct.Pos), Vals: []int64{v}}
		case token.KwDefault:
			p.next()
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			c = &ast.Case{StmtBase: ast.NewStmtBase(ct.Pos), IsDefault: true}
		default:
			return nil, p.errf("expected case or default in switch, found %s", ct)
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) {
			if p.at(token.EOF) {
				return nil, p.errf("unexpected EOF in switch")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			c.Stmts = append(c.Stmts, s)
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.next() // }
	return sw, nil
}

func (p *parser) encloseStmt() (ast.Stmt, error) {
	t := p.next() // __enclose
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	enc := &ast.Enclose{StmtBase: ast.NewStmtBase(t.Pos)}
	if !p.at(token.RParen) {
		for {
			// Items are parsed below the ternary level so that the
			// `ptr : len` form is unambiguous.
			item, err := p.binaryExpr(0)
			if err != nil {
				return nil, err
			}
			it := ast.EncItem{Ptr: item}
			if p.accept(token.Colon) {
				l, err := p.binaryExpr(0)
				if err != nil {
					return nil, err
				}
				it.Len = l
			}
			enc.Items = append(enc.Items, it)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	enc.Body = body
	return enc, nil
}

// ----------------------------------------------------------- expressions ---

func (p *parser) expr() (ast.Expr, error) { return p.assignExpr() }

var assignOps = map[token.Kind]bool{
	token.Assign: true, token.PlusAssign: true, token.MinusAssign: true,
	token.StarAssign: true, token.SlashAssign: true, token.PercentAssign: true,
	token.AmpAssign: true, token.PipeAssign: true, token.CaretAssign: true,
	token.ShlAssign: true, token.ShrAssign: true,
}

func (p *parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Kind] {
		op := p.next().Kind
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Assign{ExprBase: ast.NewExprBase(lhs.Pos()), Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) ternaryExpr() (ast.Expr, error) {
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(token.Question) {
		return cond, nil
	}
	then, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	els, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Cond{ExprBase: ast.NewExprBase(cond.Pos()), C: cond, Then: then, Else: els}, nil
}

// Binary operator precedence levels, lowest first.
var precLevels = [][]token.Kind{
	{token.OrOr},
	{token.AndAnd},
	{token.Pipe},
	{token.Caret},
	{token.Amp},
	{token.EqEq, token.NotEq},
	{token.Lt, token.Le, token.Gt, token.Ge},
	{token.Shl, token.Shr},
	{token.Plus, token.Minus},
	{token.Star, token.Slash, token.Percent},
}

func (p *parser) binaryExpr(level int) (ast.Expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binaryExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range precLevels[level] {
			if p.at(k) {
				p.next()
				rhs, err := p.binaryExpr(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &ast.Binary{ExprBase: ast.NewExprBase(lhs.Pos()), Op: k, X: lhs, Y: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Bang, token.Tilde, token.Minus, token.Star, token.Amp:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{ExprBase: ast.NewExprBase(t.Pos), Op: t.Kind, X: x}, nil

	case token.PlusPlus, token.MinusMinus:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{ExprBase: ast.NewExprBase(t.Pos), Op: t.Kind, X: x}, nil

	case token.KwSizeof:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return &ast.SizeofExpr{ExprBase: ast.NewExprBase(t.Pos), Of: typ}, nil

	case token.LParen:
		// Cast if the parenthesis starts a type.
		if isTypeKeyword(p.peek().Kind) {
			p.next()
			typ, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &ast.Cast{ExprBase: ast.NewExprBase(t.Pos), To: typ, X: x}, nil
		}
	}
	return p.postfixExpr()
}

// typeName parses a type in cast/sizeof position: base type plus stars.
func (p *parser) typeName() (*ast.Type, error) {
	if !isTypeKeyword(p.cur().Kind) {
		return nil, p.errf("expected type name")
	}
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	stars := 0
	for p.at(token.Star) {
		stars++
		p.next()
	}
	return applyStars(base, stars), nil
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case token.LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			x = &ast.Index{ExprBase: ast.NewExprBase(x.Pos()), X: x, Idx: idx}

		case token.PlusPlus, token.MinusMinus:
			p.next()
			x = &ast.Postfix{ExprBase: ast.NewExprBase(x.Pos()), Op: t.Kind, X: x}

		case token.LParen:
			id, ok := x.(*ast.Ident)
			if !ok {
				return nil, p.errf("called object is not a function name")
			}
			p.next()
			call := &ast.Call{ExprBase: ast.NewExprBase(id.Pos()), Fun: id}
			if !p.at(token.RParen) {
				for {
					arg, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(token.Comma) {
						break
					}
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x = call

		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.next()
		return &ast.IntLit{ExprBase: ast.NewExprBase(t.Pos), Val: uint32(t.Val)}, nil
	case token.String:
		p.next()
		return &ast.StrLit{ExprBase: ast.NewExprBase(t.Pos), Val: t.Str}, nil
	case token.Ident:
		p.next()
		return &ast.Ident{ExprBase: ast.NewExprBase(t.Pos), Name: t.Text}, nil
	case token.LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
