package sema

import (
	"strings"
	"testing"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/parser"
)

func check(t *testing.T, src string) (*ast.File, error) {
	t.Helper()
	f, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f, Check(f)
}

func mustCheck(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func wantErr(t *testing.T, src, msg string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), msg) {
		t.Fatalf("err = %v, want contains %q\n%s", err, msg, src)
	}
}

func TestResolutionAnnotatesSymbols(t *testing.T) {
	f := mustCheck(t, `
int g;
int add(int a, int b) { return a + b; }
int main() { return add(g, 2); }`)
	if f.Globals[0].Sym == nil || f.Globals[0].Sym.Kind != ast.SymGlobal {
		t.Fatal("global symbol missing")
	}
	if f.Funcs[0].Sym == nil || f.Funcs[0].Sym.Type.Kind != ast.Func {
		t.Fatal("function symbol missing")
	}
	if f.Funcs[0].Params[0].Sym.Kind != ast.SymParam {
		t.Fatal("param symbol missing")
	}
}

func TestExpressionTypes(t *testing.T) {
	f := mustCheck(t, `
int main() {
    char c; uint u; int i; int *p; int a[4];
    c = 'x';
    i = c + 1;      // char promotes to int
    u = u + i;      // mixed -> uint
    p = a;          // array decays
    i = p - p;      // pointer difference -> int
    i = *p;
    return (a[2] < i) + (p == a);
}`)
	_ = f
}

func TestScopes(t *testing.T) {
	mustCheck(t, `
int x;
int main() {
    int x;      // shadows the global
    { int x; x = 1; }
    x = 2;
    return x;
}`)
	wantErr(t, `int main() { { int y; } return y; }`, "undeclared")
}

func TestBuiltinChecking(t *testing.T) {
	mustCheck(t, `
int main() {
    char buf[4]; int n;
    int *ip; uint *up;
    n = read_secret(buf, 4);      // char* accepted
    __secret(ip, 4);              // any pointer accepted
    __declassify(up, 4);
    write_out(buf, n);
    putc(65);
    __flownote();
    exit(0);
    return 0;
}`)
	wantErr(t, `int main() { read_secret(3, 4); return 0; }`, "must be a pointer")
	wantErr(t, `int main() { putc(); return 0; }`, "expects 1 arguments")
	wantErr(t, `int main() { __flownote(1); return 0; }`, "expects 0 arguments")
}

func TestTypeErrors(t *testing.T) {
	wantErr(t, `int main() { int *p; char *q; p = q; return 0; }`, "cannot assign")
	wantErr(t, `int main() { int x; x[3] = 1; return 0; }`, "not a pointer or array")
	wantErr(t, `int main() { int a[3]; int b[3]; a = b; return 0; }`, "cannot assign to an array")
	wantErr(t, `int main() { int *p; return p + p; }`, "invalid operands")
	wantErr(t, `int main() { int *p; char *q; return p - q; }`, "incompatible pointers")
	wantErr(t, `int main() { void f; return 0; }`, "void type")
	wantErr(t, `int f() { return 1; } int main() { f = 3; return 0; }`, "not assignable")
	wantErr(t, `int main() { int x; return x(); }`, "not a function")
	wantErr(t, `void f() { } int main() { int x; x = f(); return 0; }`, "cannot assign")
}

func TestReturnChecking(t *testing.T) {
	wantErr(t, `int f() { return; } int main() { return 0; }`, "missing return value")
	wantErr(t, `void f() { return 3; } int main() { return 0; }`, "return with value")
	mustCheck(t, `void f() { return; } int main() { return 0; }`)
}

func TestPointerZeroLiteral(t *testing.T) {
	mustCheck(t, `int main() { int *p; p = (int*)0; return p == 0; }`)
}

func TestEncloseRules(t *testing.T) {
	// Single-exit enforcement.
	wantErr(t, `int main() { int x; __enclose(x) { return 1; } return 0; }`, "single-exit")
	wantErr(t, `int main() { int x; while (1) { __enclose(x) { break; } } return 0; }`, "boundary")
	wantErr(t, `int main() { int x; while (1) { __enclose(x) { continue; } } return 0; }`, "boundary")
	// Loops wholly inside the region are fine.
	mustCheck(t, `int main() { int x; __enclose(x) { while (1) break; } return 0; }`)
	// Output must be addressable.
	wantErr(t, `int main() { int x; __enclose(x+1) { } return 0; }`, "not assignable")
	// Range form needs a pointer and an integer length.
	wantErr(t, `int main() { int x; __enclose(x : 4) { } return 0; }`, "must be a pointer")
	mustCheck(t, `int main() { char b[8]; __enclose(b : 8) { } return 0; }`)
}

func TestCompoundAssignRules(t *testing.T) {
	mustCheck(t, `int main() { int *p; int a[4]; p = a; p += 2; p -= 1; return *p; }`)
	wantErr(t, `int main() { int *p; p *= 2; return 0; }`, "invalid compound assignment")
	wantErr(t, `int main() { int *p; int *q; p += q; return 0; }`, "invalid compound assignment")
}

func TestSwitchRules(t *testing.T) {
	wantErr(t, `int main() { switch (1) { default: ; default: ; } return 0; }`, "multiple default")
	wantErr(t, `int main() { switch (1) { case 2: ; case 2: ; } return 0; }`, "duplicate case")
	wantErr(t, `int main() { int *p; switch (p) { case 1: ; } return 0; }`, "must be an integer")
}

func TestNoMain(t *testing.T) {
	wantErr(t, `int f() { return 0; }`, "no main")
}

func TestRedefinitions(t *testing.T) {
	wantErr(t, `int x; int x; int main() { return 0; }`, "redefinition")
	wantErr(t, `int f() { return 0; } int f() { return 1; } int main() { return 0; }`, "redefinition")
	wantErr(t, `int main(int a, int a) { return 0; }`, "redefinition")
}

func TestTernaryTypeMerge(t *testing.T) {
	mustCheck(t, `int main() { int i; char c; uint u; u = 1 ? i : c; return 0; }`)
	wantErr(t, `int main() { int *p; int i; return 1 ? p : i; }`, "mismatched ternary")
	mustCheck(t, `int main() { int *p; int *q; p = 1 ? p : q; return 0; }`)
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("read_secret") || !IsBuiltin("__flownote") {
		t.Fatal("builtins not recognized")
	}
	if IsBuiltin("main") || IsBuiltin("strlen") {
		t.Fatal("non-builtins misclassified")
	}
}
