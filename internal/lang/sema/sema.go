// Package sema resolves names and type-checks MiniC programs.
//
// Beyond ordinary C-subset checking, it enforces the structural rules the
// paper's enclosure regions need (§2.2): a region is single-entry and
// single-exit, so return statements and break/continue that would jump out
// of an __enclose block are rejected, and the declared outputs must be
// addressable locations.
package sema

import (
	"fmt"

	"flowcheck/internal/lang/ast"
	"flowcheck/internal/lang/token"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Builtin signatures. A nil parameter type means "any pointer".
type builtinSig struct {
	params []*ast.Type
	result *ast.Type
}

var anyPtr *ast.Type // sentinel: any pointer type accepted

// Builtins maps builtin function names to their signatures. These compile
// to syscalls rather than calls (see codegen).
var builtins = map[string]builtinSig{
	"read_secret":  {params: []*ast.Type{anyPtr, ast.IntType}, result: ast.IntType},
	"read_public":  {params: []*ast.Type{anyPtr, ast.IntType}, result: ast.IntType},
	"write_out":    {params: []*ast.Type{anyPtr, ast.IntType}, result: ast.VoidType},
	"putc":         {params: []*ast.Type{ast.IntType}, result: ast.VoidType},
	"exit":         {params: []*ast.Type{ast.IntType}, result: ast.VoidType},
	"__secret":     {params: []*ast.Type{anyPtr, ast.IntType}, result: ast.VoidType},
	"__declassify": {params: []*ast.Type{anyPtr, ast.IntType}, result: ast.VoidType},
	"__flownote":   {params: []*ast.Type{}, result: ast.VoidType},
}

// IsBuiltin reports whether name is a MiniC builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

type checker struct {
	file   *ast.File
	scopes []map[string]*ast.Symbol
	fn     *ast.FuncDecl

	// Single-exit enforcement for __enclose (paper §2.2): break and
	// continue may not cross a region boundary, and return may not appear
	// inside one.
	breakDepth   int
	contDepth    int
	encloseBreak []int // breakDepth at each active enclose entry
	encloseCont  []int
}

// Check resolves and type-checks a file in place. It returns the first
// error found, or nil.
func Check(f *ast.File) error {
	c := &checker{file: f}
	c.pushScope()
	// Declare builtins.
	for name, sig := range builtins {
		params := make([]*ast.Type, len(sig.params))
		for i, p := range sig.params {
			if p == anyPtr {
				params[i] = ast.PointerTo(ast.VoidType)
			} else {
				params[i] = p
			}
		}
		c.scopes[0][name] = &ast.Symbol{
			Name: name, Kind: ast.SymBuiltin, Builtin: name,
			Type: &ast.Type{Kind: ast.Func, Params: params, Result: sig.result},
		}
	}
	// Declare globals and functions (two passes so functions can call
	// forward and reference any global).
	for _, g := range f.Globals {
		if err := c.declareVar(g, ast.SymGlobal); err != nil {
			return err
		}
	}
	for _, fn := range f.Funcs {
		if c.lookupLocal(fn.Name) != nil {
			return &Error{Pos: fn.Pos(), Msg: "redefinition of " + fn.Name}
		}
		params := make([]*ast.Type, len(fn.Params))
		for i, p := range fn.Params {
			params[i] = p.T
		}
		sym := &ast.Symbol{
			Name: fn.Name, Kind: ast.SymFunc, Pos: fn.Pos(),
			Type: &ast.Type{Kind: ast.Func, Params: params, Result: fn.Result},
		}
		fn.Sym = sym
		c.scopes[0][fn.Name] = sym
	}
	// Check global initializers (they run in the synthesized startup code,
	// in declaration order, before main).
	for _, g := range f.Globals {
		if g.Init != nil {
			t, err := c.exprRV(g.Init)
			if err != nil {
				return err
			}
			if err := c.assignable(t, g.T.Decay(), g.Init.Pos()); err != nil {
				return err
			}
		}
	}
	// Check function bodies.
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	// A program must have a main.
	if s := c.scopes[0]["main"]; s == nil || s.Kind != ast.SymFunc {
		return &Error{Msg: "program has no main function"}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*ast.Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *ast.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) lookupLocal(name string) *ast.Symbol {
	return c.scopes[len(c.scopes)-1][name]
}

func (c *checker) declareVar(d *ast.VarDecl, kind ast.SymKind) error {
	if c.lookupLocal(d.Name) != nil {
		return &Error{Pos: d.Pos(), Msg: "redefinition of " + d.Name}
	}
	if d.T.Kind == ast.Void {
		return &Error{Pos: d.Pos(), Msg: "variable " + d.Name + " has void type"}
	}
	sym := &ast.Symbol{Name: d.Name, Kind: kind, Type: d.T, Pos: d.Pos()}
	d.Sym = sym
	c.scopes[len(c.scopes)-1][d.Name] = sym
	return nil
}

func (c *checker) checkFunc(fn *ast.FuncDecl) error {
	c.fn = fn
	c.pushScope()
	defer c.popScope()
	for _, p := range fn.Params {
		if p.T.Kind == ast.Array {
			p.T = ast.PointerTo(p.T.Elem)
		}
		if err := c.declareVar(p, ast.SymParam); err != nil {
			return err
		}
	}
	return c.stmt(fn.Body)
}

// ------------------------------------------------------------ statements ---

func (c *checker) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		c.pushScope()
		defer c.popScope()
		for _, st := range s.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		for _, d := range s.Decls {
			if err := c.declareVar(d, ast.SymLocal); err != nil {
				return err
			}
			if d.Init != nil {
				t, err := c.exprRV(d.Init)
				if err != nil {
					return err
				}
				if err := c.assignable(t, d.T.Decay(), d.Init.Pos()); err != nil {
					return err
				}
			}
		}
		return nil

	case *ast.ExprStmt:
		_, err := c.exprRV(s.X)
		return err

	case *ast.Empty:
		return nil

	case *ast.If:
		if err := c.scalarCond(s.Cond); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil

	case *ast.While:
		if err := c.scalarCond(s.Cond); err != nil {
			return err
		}
		c.breakDepth++
		c.contDepth++
		err := c.stmt(s.Body)
		c.breakDepth--
		c.contDepth--
		return err

	case *ast.DoWhile:
		c.breakDepth++
		c.contDepth++
		err := c.stmt(s.Body)
		c.breakDepth--
		c.contDepth--
		if err != nil {
			return err
		}
		return c.scalarCond(s.Cond)

	case *ast.For:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.scalarCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.exprRV(s.Post); err != nil {
				return err
			}
		}
		c.breakDepth++
		c.contDepth++
		err := c.stmt(s.Body)
		c.breakDepth--
		c.contDepth--
		return err

	case *ast.Switch:
		t, err := c.exprRV(s.X)
		if err != nil {
			return err
		}
		if !t.IsInteger() {
			return &Error{Pos: s.X.Pos(), Msg: "switch expression must be an integer"}
		}
		seen := map[int64]bool{}
		defaults := 0
		c.breakDepth++
		defer func() { c.breakDepth-- }()
		for _, cs := range s.Cases {
			if cs.IsDefault {
				defaults++
				if defaults > 1 {
					return &Error{Pos: cs.Pos(), Msg: "multiple default cases"}
				}
			}
			for _, v := range cs.Vals {
				if seen[v] {
					return &Error{Pos: cs.Pos(), Msg: fmt.Sprintf("duplicate case %d", v)}
				}
				seen[v] = true
			}
			for _, st := range cs.Stmts {
				if err := c.stmt(st); err != nil {
					return err
				}
			}
		}
		return nil

	case *ast.Return:
		if len(c.encloseBreak) > 0 {
			return &Error{Pos: s.Pos(), Msg: "return inside __enclose region (regions must be single-exit)"}
		}
		want := c.fn.Result
		if s.X == nil {
			if want.Kind != ast.Void {
				return &Error{Pos: s.Pos(), Msg: "missing return value in " + c.fn.Name}
			}
			return nil
		}
		if want.Kind == ast.Void {
			return &Error{Pos: s.Pos(), Msg: "return with value in void function " + c.fn.Name}
		}
		t, err := c.exprRV(s.X)
		if err != nil {
			return err
		}
		return c.assignable(t, want, s.X.Pos())

	case *ast.Break:
		base := 0
		if n := len(c.encloseBreak); n > 0 {
			base = c.encloseBreak[n-1]
		}
		if c.breakDepth <= base {
			return &Error{Pos: s.Pos(), Msg: "break outside loop or switch (or crossing an __enclose boundary)"}
		}
		return nil

	case *ast.Continue:
		base := 0
		if n := len(c.encloseCont); n > 0 {
			base = c.encloseCont[n-1]
		}
		if c.contDepth <= base {
			return &Error{Pos: s.Pos(), Msg: "continue outside loop (or crossing an __enclose boundary)"}
		}
		return nil

	case *ast.Enclose:
		for i, it := range s.Items {
			if it.Len == nil {
				// Scalar lvalue output.
				t, err := c.exprLV(it.Ptr)
				if err != nil {
					return err
				}
				if !t.IsScalar() && t.Kind != ast.Array {
					return &Error{Pos: it.Ptr.Pos(), Msg: fmt.Sprintf("enclosure output %d is not addressable data", i)}
				}
			} else {
				t, err := c.exprRV(it.Ptr)
				if err != nil {
					return err
				}
				if t.Kind != ast.Pointer {
					return &Error{Pos: it.Ptr.Pos(), Msg: "enclosure range output must be a pointer"}
				}
				lt, err := c.exprRV(it.Len)
				if err != nil {
					return err
				}
				if !lt.IsInteger() {
					return &Error{Pos: it.Len.Pos(), Msg: "enclosure range length must be an integer"}
				}
			}
		}
		c.encloseBreak = append(c.encloseBreak, c.breakDepth)
		c.encloseCont = append(c.encloseCont, c.contDepth)
		err := c.stmt(s.Body)
		c.encloseBreak = c.encloseBreak[:len(c.encloseBreak)-1]
		c.encloseCont = c.encloseCont[:len(c.encloseCont)-1]
		return err
	}
	return &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unhandled statement %T", s)}
}

func (c *checker) scalarCond(e ast.Expr) error {
	t, err := c.exprRV(e)
	if err != nil {
		return err
	}
	if !t.IsScalar() {
		return &Error{Pos: e.Pos(), Msg: "condition must be scalar, got " + t.String()}
	}
	return nil
}

// ----------------------------------------------------------- expressions ---

// exprRV types an expression in rvalue context (arrays decay to pointers).
func (c *checker) exprRV(e ast.Expr) (*ast.Type, error) {
	t, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	d := t.Decay()
	if d != t {
		e.SetType(d)
	}
	return d, nil
}

// exprLV types an expression and verifies it is an lvalue.
func (c *checker) exprLV(e ast.Expr) (*ast.Type, error) {
	t, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	if !isLvalue(e) {
		return nil, &Error{Pos: e.Pos(), Msg: "expression is not assignable"}
	}
	return t, nil
}

func isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Sym != nil && e.Sym.Kind != ast.SymFunc && e.Sym.Kind != ast.SymBuiltin
	case *ast.Index:
		return true
	case *ast.Unary:
		return e.Op == token.Star
	}
	return false
}

func (c *checker) expr(e ast.Expr) (*ast.Type, error) {
	t, err := c.exprInner(e)
	if err != nil {
		return nil, err
	}
	e.SetType(t)
	return t, nil
}

func (c *checker) exprInner(e ast.Expr) (*ast.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.IntType, nil

	case *ast.StrLit:
		return ast.PointerTo(ast.CharType), nil

	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return nil, &Error{Pos: e.Pos(), Msg: "undeclared identifier " + e.Name}
		}
		e.Sym = sym
		return sym.Type, nil

	case *ast.Unary:
		return c.unary(e)

	case *ast.Postfix:
		t, err := c.exprLV(e.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, &Error{Pos: e.Pos(), Msg: "++/-- needs a scalar operand"}
		}
		return t, nil

	case *ast.Binary:
		return c.binary(e)

	case *ast.Assign:
		lt, err := c.exprLV(e.LHS)
		if err != nil {
			return nil, err
		}
		if lt.Kind == ast.Array {
			return nil, &Error{Pos: e.Pos(), Msg: "cannot assign to an array"}
		}
		rt, err := c.exprRV(e.RHS)
		if err != nil {
			return nil, err
		}
		if e.Op == token.Assign {
			if err := c.assignable(rt, lt, e.RHS.Pos()); err != nil {
				return nil, err
			}
		} else {
			// Compound assignment: pointer += int is allowed; otherwise
			// both sides must be integers.
			if lt.Kind == ast.Pointer {
				if (e.Op != token.PlusAssign && e.Op != token.MinusAssign) || !rt.IsInteger() {
					return nil, &Error{Pos: e.Pos(), Msg: "invalid compound assignment to pointer"}
				}
			} else if !lt.IsInteger() || !rt.IsInteger() {
				return nil, &Error{Pos: e.Pos(), Msg: "compound assignment needs integer operands"}
			}
		}
		return lt, nil

	case *ast.Cond:
		if err := c.scalarCond(e.C); err != nil {
			return nil, err
		}
		tt, err := c.exprRV(e.Then)
		if err != nil {
			return nil, err
		}
		et, err := c.exprRV(e.Else)
		if err != nil {
			return nil, err
		}
		if tt.IsInteger() && et.IsInteger() {
			return promote2(tt, et), nil
		}
		if tt.Equal(et) {
			return tt, nil
		}
		return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("mismatched ternary arms: %s vs %s", tt, et)}

	case *ast.Call:
		return c.call(e)

	case *ast.Index:
		xt, err := c.exprRV(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != ast.Pointer {
			return nil, &Error{Pos: e.Pos(), Msg: "indexed expression is not a pointer or array"}
		}
		if xt.Elem.Kind == ast.Void {
			return nil, &Error{Pos: e.Pos(), Msg: "cannot index a void pointer"}
		}
		it, err := c.exprRV(e.Idx)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, &Error{Pos: e.Idx.Pos(), Msg: "array index must be an integer"}
		}
		return xt.Elem, nil

	case *ast.Cast:
		xt, err := c.exprRV(e.X)
		if err != nil {
			return nil, err
		}
		if !xt.IsScalar() || !e.To.IsScalar() && e.To.Kind != ast.Void {
			return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("invalid cast from %s to %s", xt, e.To)}
		}
		return e.To, nil

	case *ast.SizeofExpr:
		return ast.UintType, nil
	}
	return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unhandled expression %T", e)}
}

func (c *checker) unary(e *ast.Unary) (*ast.Type, error) {
	switch e.Op {
	case token.Star:
		t, err := c.exprRV(e.X)
		if err != nil {
			return nil, err
		}
		if t.Kind != ast.Pointer || t.Elem.Kind == ast.Void {
			return nil, &Error{Pos: e.Pos(), Msg: "cannot dereference " + t.String()}
		}
		return t.Elem, nil

	case token.Amp:
		t, err := c.exprLV(e.X)
		if err != nil {
			return nil, err
		}
		if t.Kind == ast.Array {
			// &arr aliases the first element, as the guests use it.
			return ast.PointerTo(t.Elem), nil
		}
		return ast.PointerTo(t), nil

	case token.Bang:
		if err := c.scalarCond(e.X); err != nil {
			return nil, err
		}
		return ast.IntType, nil

	case token.Tilde, token.Minus:
		t, err := c.exprRV(e.X)
		if err != nil {
			return nil, err
		}
		if !t.IsInteger() {
			return nil, &Error{Pos: e.Pos(), Msg: "operand must be an integer"}
		}
		return promote(t), nil

	case token.PlusPlus, token.MinusMinus:
		t, err := c.exprLV(e.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, &Error{Pos: e.Pos(), Msg: "++/-- needs a scalar operand"}
		}
		return t, nil
	}
	return nil, &Error{Pos: e.Pos(), Msg: "unhandled unary operator " + e.Op.String()}
}

func (c *checker) binary(e *ast.Binary) (*ast.Type, error) {
	xt, err := c.exprRV(e.X)
	if err != nil {
		return nil, err
	}
	yt, err := c.exprRV(e.Y)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.AndAnd, token.OrOr:
		if !xt.IsScalar() || !yt.IsScalar() {
			return nil, &Error{Pos: e.Pos(), Msg: "logical operands must be scalar"}
		}
		return ast.IntType, nil

	case token.EqEq, token.NotEq, token.Lt, token.Le, token.Gt, token.Ge:
		if xt.IsInteger() && yt.IsInteger() ||
			xt.Kind == ast.Pointer && yt.Kind == ast.Pointer ||
			xt.Kind == ast.Pointer && isZero(e.Y) || yt.Kind == ast.Pointer && isZero(e.X) {
			return ast.IntType, nil
		}
		return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("cannot compare %s and %s", xt, yt)}

	case token.Plus:
		if xt.Kind == ast.Pointer && yt.IsInteger() {
			return xt, nil
		}
		if yt.Kind == ast.Pointer && xt.IsInteger() {
			return yt, nil
		}
	case token.Minus:
		if xt.Kind == ast.Pointer && yt.IsInteger() {
			return xt, nil
		}
		if xt.Kind == ast.Pointer && yt.Kind == ast.Pointer {
			if !xt.Elem.Equal(yt.Elem) {
				return nil, &Error{Pos: e.Pos(), Msg: "subtraction of incompatible pointers"}
			}
			return ast.IntType, nil
		}
	}
	if !xt.IsInteger() || !yt.IsInteger() {
		return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("invalid operands to %s: %s and %s", e.Op, xt, yt)}
	}
	return promote2(xt, yt), nil
}

func (c *checker) call(e *ast.Call) (*ast.Type, error) {
	sym := c.lookup(e.Fun.Name)
	if sym == nil {
		return nil, &Error{Pos: e.Pos(), Msg: "call to undeclared function " + e.Fun.Name}
	}
	if sym.Kind != ast.SymFunc && sym.Kind != ast.SymBuiltin {
		return nil, &Error{Pos: e.Pos(), Msg: e.Fun.Name + " is not a function"}
	}
	e.Fun.Sym = sym
	e.Fun.SetType(sym.Type)
	ft := sym.Type
	if len(e.Args) != len(ft.Params) {
		return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("%s expects %d arguments, got %d", e.Fun.Name, len(ft.Params), len(e.Args))}
	}
	for i, arg := range e.Args {
		at, err := c.exprRV(arg)
		if err != nil {
			return nil, err
		}
		want := ft.Params[i]
		// Builtin pointer parameters accept any pointer type.
		if sym.Kind == ast.SymBuiltin && want.Kind == ast.Pointer && want.Elem.Kind == ast.Void {
			if at.Kind != ast.Pointer {
				return nil, &Error{Pos: arg.Pos(), Msg: fmt.Sprintf("argument %d of %s must be a pointer", i+1, e.Fun.Name)}
			}
			continue
		}
		if err := c.assignable(at, want, arg.Pos()); err != nil {
			return nil, err
		}
	}
	return ft.Result, nil
}

// assignable reports whether a value of type from can be assigned to a
// location of type to. Integer types interconvert freely (with truncation
// or extension); pointers must match exactly, except that a literal 0 or a
// cast supplies any pointer.
func (c *checker) assignable(from, to *ast.Type, pos token.Pos) error {
	if from.IsInteger() && to.IsInteger() {
		return nil
	}
	if to.Kind == ast.Pointer && from.Kind == ast.Pointer {
		if to.Elem.Equal(from.Elem) || to.Elem.Kind == ast.Void || from.Elem.Kind == ast.Void {
			return nil
		}
	}
	return &Error{Pos: pos, Msg: fmt.Sprintf("cannot assign %s to %s", from, to)}
}

func isZero(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Val == 0
}

// promote applies the integer promotion: char becomes int.
func promote(t *ast.Type) *ast.Type {
	if t.Kind == ast.Char {
		return ast.IntType
	}
	return t
}

// promote2 applies the usual arithmetic conversions: char promotes to int;
// if either operand is uint, the result is uint.
func promote2(a, b *ast.Type) *ast.Type {
	a, b = promote(a), promote(b)
	if a.Kind == ast.Uint || b.Kind == ast.Uint {
		return ast.UintType
	}
	return ast.IntType
}
