// Package lexer tokenizes MiniC source text.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"flowcheck/internal/lang/token"
)

// Error is a lexical error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source into tokens.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// New returns a lexer over src; file names positions in diagnostics.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Tokenize scans the whole input, returning all tokens followed by an EOF
// token.
func Tokenize(file, src string) ([]token.Token, error) {
	lx := New(file, src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return token.Token{Kind: token.Ident, Pos: pos, Text: text}, nil

	case isDigit(c):
		return l.number(pos)

	case c == '\'':
		return l.charLit(pos)

	case c == '"':
		return l.stringLit(pos)
	}

	// Operators: longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	three := ""
	if l.off+2 < len(l.src) {
		three = l.src[l.off : l.off+3]
	}
	mk := func(k token.Kind, n int) (token.Token, error) {
		for i := 0; i < n; i++ {
			l.advance()
		}
		return token.Token{Kind: k, Pos: pos}, nil
	}
	switch three {
	case "<<=":
		return mk(token.ShlAssign, 3)
	case ">>=":
		return mk(token.ShrAssign, 3)
	}
	switch two {
	case "<<":
		return mk(token.Shl, 2)
	case ">>":
		return mk(token.Shr, 2)
	case "<=":
		return mk(token.Le, 2)
	case ">=":
		return mk(token.Ge, 2)
	case "==":
		return mk(token.EqEq, 2)
	case "!=":
		return mk(token.NotEq, 2)
	case "&&":
		return mk(token.AndAnd, 2)
	case "||":
		return mk(token.OrOr, 2)
	case "++":
		return mk(token.PlusPlus, 2)
	case "--":
		return mk(token.MinusMinus, 2)
	case "+=":
		return mk(token.PlusAssign, 2)
	case "-=":
		return mk(token.MinusAssign, 2)
	case "*=":
		return mk(token.StarAssign, 2)
	case "/=":
		return mk(token.SlashAssign, 2)
	case "%=":
		return mk(token.PercentAssign, 2)
	case "&=":
		return mk(token.AmpAssign, 2)
	case "|=":
		return mk(token.PipeAssign, 2)
	case "^=":
		return mk(token.CaretAssign, 2)
	}
	single := map[byte]token.Kind{
		'(': token.LParen, ')': token.RParen, '{': token.LBrace, '}': token.RBrace,
		'[': token.LBracket, ']': token.RBracket, ';': token.Semi, ',': token.Comma,
		':': token.Colon, '?': token.Question, '=': token.Assign,
		'+': token.Plus, '-': token.Minus, '*': token.Star, '/': token.Slash,
		'%': token.Percent, '&': token.Amp, '|': token.Pipe, '^': token.Caret,
		'~': token.Tilde, '!': token.Bang, '<': token.Lt, '>': token.Gt,
	}
	if k, ok := single[c]; ok {
		return mk(k, 1)
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) number(pos token.Pos) (token.Token, error) {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil || v > 0xFFFFFFFF {
			return token.Token{}, &Error{Pos: pos, Msg: "invalid hex literal " + text}
		}
		return token.Token{Kind: token.Int, Pos: pos, Text: text, Val: int64(v)}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	v, err := strconv.ParseUint(text, 10, 64)
	if err != nil || v > 0xFFFFFFFF {
		return token.Token{}, &Error{Pos: pos, Msg: "integer literal out of 32-bit range: " + text}
	}
	return token.Token{Kind: token.Int, Pos: pos, Text: text, Val: int64(v)}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) escape(pos token.Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, &Error{Pos: pos, Msg: "unterminated escape"}
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	case 'x':
		if l.off+1 >= len(l.src) || !isHex(l.peek()) || !isHex(l.peek2()) {
			return 0, &Error{Pos: pos, Msg: "bad \\x escape"}
		}
		hi, lo := l.advance(), l.advance()
		v, _ := strconv.ParseUint(string([]byte{hi, lo}), 16, 8)
		return byte(v), nil
	}
	return 0, &Error{Pos: pos, Msg: fmt.Sprintf("unknown escape \\%c", c)}
}

func (l *Lexer) charLit(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return token.Token{}, &Error{Pos: pos, Msg: "unterminated char literal"}
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(pos)
		if err != nil {
			return token.Token{}, err
		}
		v = e
	} else if c == '\'' {
		return token.Token{}, &Error{Pos: pos, Msg: "empty char literal"}
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return token.Token{}, &Error{Pos: pos, Msg: "unterminated char literal"}
	}
	return token.Token{Kind: token.Int, Pos: pos, Text: "'" + string(v) + "'", Val: int64(v)}, nil
}

func (l *Lexer) stringLit(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return token.Token{}, &Error{Pos: pos, Msg: "newline in string literal"}
		}
		if c == '\\' {
			e, err := l.escape(pos)
			if err != nil {
				return token.Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Kind: token.String, Pos: pos, Str: sb.String()}, nil
}
