package lexer

import (
	"strings"
	"testing"

	"flowcheck/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize("t.mc", src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	ks := kinds(t, "int uint unsigned char void if else while for do return foo _bar x9")
	want := []token.Kind{
		token.KwInt, token.KwUint, token.KwUint, token.KwChar, token.KwVoid,
		token.KwIf, token.KwElse, token.KwWhile, token.KwFor, token.KwDo,
		token.KwReturn, token.Ident, token.Ident, token.Ident, token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("kinds = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	cases := map[string]token.Kind{
		"<<=": token.ShlAssign, ">>=": token.ShrAssign,
		"<<": token.Shl, ">>": token.Shr, "<=": token.Le, ">=": token.Ge,
		"==": token.EqEq, "!=": token.NotEq, "&&": token.AndAnd, "||": token.OrOr,
		"++": token.PlusPlus, "--": token.MinusMinus,
		"+=": token.PlusAssign, "^=": token.CaretAssign,
		"<": token.Lt, "=": token.Assign, "&": token.Amp, "~": token.Tilde,
	}
	for src, want := range cases {
		ks := kinds(t, src)
		if ks[0] != want || ks[1] != token.EOF {
			t.Errorf("%q -> %v, want %v", src, ks, want)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("t.mc", "0 42 4294967295 0x0 0xFF 0xdeadBEEF")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 4294967295, 0, 255, 0xdeadbeef}
	for i, w := range want {
		if toks[i].Kind != token.Int || toks[i].Val != w {
			t.Errorf("number %d = %v (val %d), want %d", i, toks[i], toks[i].Val, w)
		}
	}
}

func TestNumberOverflow(t *testing.T) {
	if _, err := Tokenize("t.mc", "4294967296"); err == nil {
		t.Error("2^32 should be rejected")
	}
	if _, err := Tokenize("t.mc", "0x100000000"); err == nil {
		t.Error("hex 2^32 should be rejected")
	}
}

func TestCharLiterals(t *testing.T) {
	toks, err := Tokenize("t.mc", `'a' '\n' '\t' '\0' '\\' '\'' '\x41'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{'a', '\n', '\t', 0, '\\', '\'', 'A'}
	for i, w := range want {
		if toks[i].Val != w {
			t.Errorf("char %d = %d, want %d", i, toks[i].Val, w)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("t.mc", `"hello" "a\nb" "\x00\xff" ""`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "a\nb", "\x00\xff", ""}
	for i, w := range want {
		if toks[i].Kind != token.String || toks[i].Str != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Str, w)
		}
	}
}

func TestComments(t *testing.T) {
	ks := kinds(t, "a // line comment\n/* block\n comment */ b /*inline*/ c")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("kinds = %v", ks)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("f.mc", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[0].Pos.File != "f.mc" {
		t.Errorf("file = %q", toks[0].Pos.File)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"@", "unexpected character"},
		{`"abc`, "unterminated string"},
		{`"ab
c"`, "newline in string"},
		{"'", "unterminated char"},
		{"''", "empty char"},
		{"/* open", "unterminated block comment"},
		{`'\q'`, "unknown escape"},
		{`"\x4"`, `bad \x escape`},
	}
	for _, c := range cases {
		_, err := Tokenize("t.mc", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Tokenize("t.mc", "ok\n  @")
	if err == nil || !strings.Contains(err.Error(), "t.mc:2:3") {
		t.Fatalf("err = %v, want position t.mc:2:3", err)
	}
}
