package lang

import (
	"strings"
	"testing"

	"flowcheck/internal/vm"
)

// exec compiles src, runs it with the given inputs, and returns the machine.
func exec(t *testing.T, src string, secret, public string) *vm.Machine {
	t.Helper()
	p, err := Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := vm.NewMachine(p)
	m.SecretIn = []byte(secret)
	m.PublicIn = []byte(public)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func out(t *testing.T, src string) string {
	t.Helper()
	return string(exec(t, src, "", "").Output)
}

func exitCode(t *testing.T, src string) uint32 {
	t.Helper()
	return exec(t, src, "", "").ExitCode
}

func TestReturnConstant(t *testing.T) {
	if c := exitCode(t, `int main() { return 42; }`); c != 42 {
		t.Fatalf("exit = %d", c)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want uint32
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"10/3", 3},
		{"10%3", 1},
		{"7-10", 0xFFFFFFFD},
		{"1<<10", 1024},
		{"1024>>3", 128},
		{"0xF0|0x0F", 0xFF},
		{"0xFF&0x0F", 0x0F},
		{"0xFF^0x0F", 0xF0},
		{"~0", 0xFFFFFFFF},
		{"-(5)", 0xFFFFFFFB},
		{"!5", 0},
		{"!0", 1},
		{"3<4", 1},
		{"4<=4", 1},
		{"5>4", 1},
		{"3>=4", 0},
		{"3==3", 1},
		{"3!=3", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 7", 1},
		{"1 ? 11 : 22", 11},
		{"0 ? 11 : 22", 22},
		{"sizeof(int)", 4},
		{"sizeof(char)", 1},
		{"sizeof(int*)", 4},
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		if got := exitCode(t, src); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestSignedVsUnsigned(t *testing.T) {
	// -1 < 0 signed, but 0xFFFFFFFF > 0 unsigned.
	if c := exitCode(t, `int main() { int a; a = -1; return a < 0; }`); c != 1 {
		t.Fatal("signed compare failed")
	}
	if c := exitCode(t, `int main() { uint a; a = 0xFFFFFFFF; return a < 1; }`); c != 0 {
		t.Fatal("unsigned compare failed")
	}
	// Arithmetic shift of negative int.
	if c := exitCode(t, `int main() { int a; a = -8; return a >> 1 == -4; }`); c != 1 {
		t.Fatal("arithmetic shift failed")
	}
	// Logical shift of uint.
	if c := exitCode(t, `int main() { uint a; a = 0x80000000; return a >> 31; }`); c != 1 {
		t.Fatal("logical shift failed")
	}
	// Signed vs unsigned division.
	if c := exitCode(t, `int main() { int a; a = -7; return a / 2 == -3; }`); c != 1 {
		t.Fatal("signed division failed")
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	src := `
int main() {
    int a, b, c;
    a = 5; b = 7;
    c = a;
    c += b;
    c *= 2;
    c -= 4;
    c /= 2;
    return c; // (5+7)*2-4)/2 = 10
}`
	if c := exitCode(t, src); c != 10 {
		t.Fatalf("compound assignment chain = %d, want 10", c)
	}
}

func TestIncDec(t *testing.T) {
	src := `
int main() {
    int a; a = 5;
    int b; b = a++;   // b=5, a=6
    int c; c = ++a;   // c=7, a=7
    int d; d = a--;   // d=7, a=6
    int e; e = --a;   // e=5, a=5
    return b*1000 + c*100 + d*10 + e;
}`
	if c := exitCode(t, src); c != 5775 {
		t.Fatalf("inc/dec = %d, want 5775", c)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
int main() {
    int i, sum;
    i = 0; sum = 0;
    while (i < 10) { sum += i; i++; }
    return sum;
}`
	if c := exitCode(t, src); c != 45 {
		t.Fatalf("while sum = %d", c)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
int main() {
    int sum; sum = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        sum += i; // 1+3+5+7+9 = 25
    }
    return sum;
}`
	if c := exitCode(t, src); c != 25 {
		t.Fatalf("for loop = %d, want 25", c)
	}
}

func TestDoWhile(t *testing.T) {
	src := `
int main() {
    int i; i = 10; int n; n = 0;
    do { n++; } while (i < 5);
    return n;
}`
	if c := exitCode(t, src); c != 1 {
		t.Fatalf("do-while executed %d times, want 1", c)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }`
	if c := exitCode(t, src); c != 144 {
		t.Fatalf("fib(12) = %d, want 144", c)
	}
}

func TestMultipleArgs(t *testing.T) {
	src := `
int f(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }
int main() { return f(1,2,3,4); }`
	if c := exitCode(t, src); c != 1234 {
		t.Fatalf("args = %d, want 1234", c)
	}
}

func TestArraysAndPointers(t *testing.T) {
	src := `
int main() {
    int a[10];
    for (int i = 0; i < 10; i++) a[i] = i*i;
    int *p; p = a;
    int sum; sum = 0;
    for (int i = 0; i < 10; i++) sum += p[i];
    return sum; // 285
}`
	if c := exitCode(t, src); c != 285 {
		t.Fatalf("array sum = %d, want 285", c)
	}
}

func TestPointerArithmetic(t *testing.T) {
	src := `
int main() {
    int a[5];
    a[0]=10; a[1]=20; a[2]=30; a[3]=40; a[4]=50;
    int *p; p = a;
    p++;          // -> a[1]
    p = p + 2;    // -> a[3]
    int *q; q = a;
    return *p + (p - q); // 40 + 3
}`
	if c := exitCode(t, src); c != 43 {
		t.Fatalf("pointer arithmetic = %d, want 43", c)
	}
}

func TestCharAndStrings(t *testing.T) {
	src := `
int strlen(char *s) {
    int n; n = 0;
    while (s[n] != '\0') n++;
    return n;
}
int main() {
    char *s; s = "hello";
    for (int i = 0; i < strlen(s); i++) putc(s[i]);
    putc('\n');
    return strlen(s);
}`
	m := exec(t, src, "", "")
	if string(m.Output) != "hello\n" || m.ExitCode != 5 {
		t.Fatalf("output %q exit %d", m.Output, m.ExitCode)
	}
}

func TestCharNarrowing(t *testing.T) {
	src := `
int main() {
    char c;
    c = (char)(300); // 300 & 0xFF = 44
    return c;
}`
	if c := exitCode(t, src); c != 44 {
		t.Fatalf("char narrowing = %d, want 44", c)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter = 3;
int table[4];
int bump() { counter++; return counter; }
int main() {
    table[0] = bump();
    table[1] = bump();
    return table[0]*10 + table[1];
}`
	if c := exitCode(t, src); c != 45 {
		t.Fatalf("globals = %d, want 45", c)
	}
}

func TestAddressOf(t *testing.T) {
	src := `
void setv(int *p, int v) { *p = v; }
int main() {
    int x; x = 1;
    setv(&x, 99);
    return x;
}`
	if c := exitCode(t, src); c != 99 {
		t.Fatalf("address-of = %d", c)
	}
}

func TestSwitchDense(t *testing.T) {
	src := `
int classify(int x) {
    switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: // fallthrough
    case 4: return 34;
    default: return 99;
    }
}
int main() {
    return classify(0)*100000 + classify(2)*1000 + classify(3)*10 + classify(7)/11;
}`
	// 10*100000 + 12*1000 + 34*10 + 9 = 1012349
	if c := exitCode(t, src); c != 1012349 {
		t.Fatalf("dense switch = %d, want 1012349", c)
	}
}

func TestSwitchSparse(t *testing.T) {
	src := `
int f(int x) {
    switch (x) {
    case 1: return 1;
    case 1000: return 2;
    case 100000: return 3;
    }
    return 0;
}
int main() { return f(1)*100 + f(1000)*10 + f(100000) + f(5); }`
	if c := exitCode(t, src); c != 123 {
		t.Fatalf("sparse switch = %d, want 123", c)
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	src := `
int main() {
    int n; n = 0;
    switch (2) {
    case 1: n += 1;
    case 2: n += 2;  // entry
    case 3: n += 4;  // fallthrough
        break;
    case 4: n += 8;
    }
    return n;
}`
	if c := exitCode(t, src); c != 6 {
		t.Fatalf("fallthrough = %d, want 6", c)
	}
}

func TestReadWriteBuiltins(t *testing.T) {
	src := `
int main() {
    char buf[16];
    int n; n = read_secret(buf, 16);
    write_out(buf, n);
    return n;
}`
	m := exec(t, src, "topsecret", "")
	if string(m.Output) != "topsecret" || m.ExitCode != 9 {
		t.Fatalf("io: %q / %d", m.Output, m.ExitCode)
	}
}

func TestEncloseCompilesAndRuns(t *testing.T) {
	src := `
int main() {
    char buf[8];
    int n; n = read_secret(buf, 8);
    int count; count = 0;
    __enclose(count) {
        for (int i = 0; i < n; i++)
            if (buf[i] == 'a') count++;
    }
    return count;
}`
	m := exec(t, src, "banana", "")
	if m.ExitCode != 3 {
		t.Fatalf("enclose count = %d, want 3", m.ExitCode)
	}
}

func TestEncloseRangeItem(t *testing.T) {
	src := `
int main() {
    char dst[4];
    char src0[4];
    src0[0]='x'; src0[1]='y'; src0[2]='z'; src0[3]='w';
    __enclose(dst : 4) {
        for (int i = 0; i < 4; i++) dst[i] = src0[3-i];
    }
    write_out(dst, 4);
    return 0;
}`
	m := exec(t, src, "", "")
	if string(m.Output) != "wzyx" {
		t.Fatalf("enclose range: %q", m.Output)
	}
}

func TestTernaryAndLogicalShortCircuit(t *testing.T) {
	src := `
int g;
int touch() { g = 1; return 1; }
int main() {
    g = 0;
    int r; r = (0 && touch()) ? 5 : 7;
    if (g != 0) return 100; // touch must not run
    int s; s = (1 || touch()) ? 2 : 3;
    if (g != 0) return 200;
    return r*10 + s; // 72
}`
	if c := exitCode(t, src); c != 72 {
		t.Fatalf("short-circuit = %d, want 72", c)
	}
}

func TestCastsAndUintHex(t *testing.T) {
	src := `
int main() {
    uint x; x = 0xDEADBEEF;
    char lo; lo = (char)x;        // 0xEF
    uint hi; hi = x >> 24;        // 0xDE
    return (int)lo + (int)hi;     // 239 + 222 = 461
}`
	if c := exitCode(t, src); c != 461 {
		t.Fatalf("casts = %d, want 461", c)
	}
}

func TestNestedArrays2D(t *testing.T) {
	src := `
int main() {
    int grid[3][4];
    for (int r = 0; r < 3; r++)
        for (int c = 0; c < 4; c++)
            grid[r][c] = r*10 + c;
    return grid[2][3]; // 23
}`
	if c := exitCode(t, src); c != 23 {
		t.Fatalf("2D array = %d, want 23", c)
	}
}

func TestStringLiteralInterning(t *testing.T) {
	src := `
int main() {
    char *a; a = "same";
    char *b; b = "same";
    return a == b;
}`
	if c := exitCode(t, src); c != 1 {
		t.Fatal("identical literals should intern to one address")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `int main() { return x; }`, "undeclared"},
		{"no-main", `int f() { return 0; }`, "no main"},
		{"redefined", `int main() { int a; int a; return 0; }`, "redefinition"},
		{"bad-call-arity", `int f(int a) { return a; } int main() { return f(); }`, "expects 1 arguments"},
		{"void-var", `int main() { void v; return 0; }`, "void type"},
		{"assign-to-rvalue", `int main() { 3 = 4; return 0; }`, "not assignable"},
		{"break-outside", `int main() { break; return 0; }`, "break outside"},
		{"return-in-enclose", `int main() { int x; __enclose(x) { return 1; } return 0; }`, "single-exit"},
		{"break-crossing-enclose", `int main() { int x; while (1) { __enclose(x) { break; } } return 0; }`, "boundary"},
		{"deref-int", `int main() { int x; return *x; }`, "dereference"},
		{"duplicate-case", `int main() { switch (1) { case 1: case 1: return 0; } return 0; }`, "duplicate case"},
		{"syntax", `int main() { return 1 +; }`, "syntax error"},
		{"lex", "int main() { return 0; } @", "unexpected character"},
		{"unterminated-string", `int main() { char *s; s = "abc`, "unterminated"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("err.mc", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestBreakInsideLoopInsideEncloseAllowed(t *testing.T) {
	src := `
int main() {
    int count; count = 0;
    __enclose(count) {
        for (int i = 0; i < 10; i++) {
            if (i == 3) break; // loop is inside the region: fine
            count++;
        }
    }
    return count;
}`
	if c := exitCode(t, src); c != 3 {
		t.Fatalf("break in enclosed loop = %d, want 3", c)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// line comment
/* block
   comment */
int main() {
    return /* inline */ 9; // trailing
}`
	if c := exitCode(t, src); c != 9 {
		t.Fatalf("comments = %d", c)
	}
}

func TestGlobalInitOrder(t *testing.T) {
	src := `
int a = 10;
int b = a + 5;
int main() { return b; }`
	if c := exitCode(t, src); c != 15 {
		t.Fatalf("global init order = %d, want 15", c)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	p, err := Compile("t.mc", `int main() { int z; z = 0; return 5/z; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(p)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestFigure2CountPunctBehaviour(t *testing.T) {
	// The paper's Figure 2 program, ported to MiniC: prints the more
	// common of '.' and '?', as many times as it occurred (mod 256).
	src := `
void count_punct(char *buf) {
    char num_dot, num_qm, num;
    char common;
    int i;
    num_dot = 0; num_qm = 0;
    __enclose(num_dot, num_qm) {
        for (i = 0; buf[i] != '\0'; i++) {
            if (buf[i] == '.') num_dot++;
            else if (buf[i] == '?') num_qm++;
        }
    }
    __enclose(common, num) {
        if (num_dot > num_qm) { common = '.'; num = num_dot; }
        else                  { common = '?'; num = num_qm; }
    }
    while (num--) putc(common);
}
int main() {
    char buf[256];
    int n; n = read_secret(buf, 255);
    buf[n] = '\0';
    count_punct(buf);
    return 0;
}`
	m := exec(t, src, "one. two. three? four. maybe? five.", "")
	if string(m.Output) != "...." {
		t.Fatalf("count_punct output %q, want %q", m.Output, "....")
	}
}

func BenchmarkCompileFib(b *testing.B) {
	src := `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`
	for i := 0; i < b.N; i++ {
		if _, err := Compile("bench.mc", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunFib(b *testing.B) {
	p := MustCompile("bench.mc", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(15); }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.NewMachine(p)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
