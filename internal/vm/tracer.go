package vm

// Tracer receives instrumentation events as the machine executes. The taint
// engine (paper §2–4) implements this interface to build the flow graph; a
// nil tracer runs the program uninstrumented (used by the lockstep checker
// of §6.3 and by baseline benchmarks).
//
// All hooks are invoked *before* the architectural effect of the
// instruction is applied, so the tracer observes pre-state values; hooks
// receive concrete operand values so they do not need to re-decode.
type Tracer interface {
	// Const is invoked for a constant load into register rd.
	Const(site uint32, rd int)

	// Mov is invoked for a register-to-register copy.
	Mov(site uint32, rd, rs int)

	// Binop is invoked for a binary ALU or comparison op rd <- ra op rb.
	Binop(site uint32, op Op, rd, ra, rb int, va, vb Word)

	// Unop is invoked for rd <- op rs (not/neg).
	Unop(site uint32, op Op, rd, rs int, vs Word)

	// ExtB/InsB are the sub-register accesses of §4.1.
	ExtB(site uint32, rd, rs, idx int)
	InsB(site uint32, rd, rs, idx int)

	// Load is invoked for rd <- mem[addr .. addr+n). raddr is the address
	// register (for implicit-flow accounting when the address is secret).
	Load(site uint32, rd, raddr int, addr Word, n int)

	// Store is invoked for mem[addr .. addr+n) <- rs.
	Store(site uint32, raddr int, addr Word, rs int, n int)

	// Branch is invoked for a conditional jump on register rc.
	Branch(site uint32, rc int, taken bool)

	// JmpInd is invoked for an indirect jump through register raddr.
	JmpInd(site uint32, raddr int, target Word)

	// Call and Ret maintain the calling-context hash (paper §3.2).
	Call(site uint32, target int)
	Ret(site uint32)

	// Push and Pop are stack moves between a register and memory.
	Push(site uint32, rs int, addr Word)
	Pop(site uint32, rd int, addr Word)

	// ReadInput is invoked after a SysRead copied data into guest memory.
	// secret reports whether the stream is the secret input.
	ReadInput(site uint32, addr Word, data []byte, secret bool)

	// WriteOutput is invoked when guest bytes reach the public output
	// (SysWrite or SysPutc; for SysPutc, addr is the special register
	// pseudo-address and reg is the source register, otherwise reg is -1).
	WriteOutput(site uint32, addr Word, data []byte, reg int)

	// MarkSecret and Declassify adjust secrecy of a memory range.
	MarkSecret(site uint32, addr Word, length Word)
	Declassify(site uint32, addr Word, length Word)

	// EnterRegion and LeaveRegion bracket an enclosure region (§2.2) whose
	// declared outputs are the given ranges.
	EnterRegion(site uint32, outputs []Range)
	LeaveRegion(site uint32)

	// FlowNote requests an intermediate flow report (§8.1's real-time
	// recomputation mode).
	FlowNote(site uint32)

	// Exit is invoked when the program halts (OpHalt or SysExit).
	// Termination and the exit code are observable behavior (§3.1), so the
	// analysis treats exit as a final output event.
	Exit(site uint32, codeReg int)
}
