package vm

import (
	"errors"
	"fmt"
	"testing"
)

// loopProg builds a program that spins forever: jmp to itself.
func loopProg() *Program {
	p := &Program{
		Code: []Instr{
			{Op: OpJmp, Imm: 0},
		},
	}
	return p
}

func TestStepLimitTrapIsTyped(t *testing.T) {
	m := NewMachineSize(loopProg(), int(DataBase)+16)
	m.MaxSteps = 100
	err := m.Run()
	if err == nil {
		t.Fatal("expected a step-limit trap")
	}
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("errors.Is(err, ErrStepLimit) = false for %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapStepLimit {
		t.Fatalf("trap = %#v, want Kind=TrapStepLimit", err)
	}
	if m.Steps != 100 {
		t.Fatalf("executed %d steps, want 100", m.Steps)
	}
}

func TestGuestFaultIsNotStepLimit(t *testing.T) {
	// Load from address 0 (below DataBase) traps as a genuine fault.
	p := &Program{Code: []Instr{
		{Op: OpLoad, A: R0, B: R1, W: 4},
		{Op: OpHalt},
	}}
	m := NewMachineSize(p, int(DataBase)+16)
	err := m.Run()
	if err == nil {
		t.Fatal("expected a fault trap")
	}
	if errors.Is(err, ErrStepLimit) {
		t.Fatalf("guest fault %v must not match ErrStepLimit", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapFault {
		t.Fatalf("trap = %#v, want Kind=TrapFault", err)
	}
}

func TestCheckHookPolledAndAborts(t *testing.T) {
	m := NewMachineSize(loopProg(), int(DataBase)+16)
	m.MaxSteps = 1 << 20
	m.CheckEvery = 64
	stop := errors.New("stop now")
	calls := 0
	m.Check = func(m *Machine) error {
		calls++
		if m.Steps >= 1000 {
			return stop
		}
		return nil
	}
	err := m.Run()
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	if calls < 2 {
		t.Fatalf("hook called %d times, want repeated polling", calls)
	}
	// The hook fires at the first interval boundary at or after step 1000.
	if m.Steps < 1000 || m.Steps > 1000+64 {
		t.Fatalf("aborted at step %d, want within one interval of 1000", m.Steps)
	}
}

func TestCheckHookUpFrontPoll(t *testing.T) {
	m := NewMachineSize(loopProg(), int(DataBase)+16)
	errEarly := fmt.Errorf("already expired")
	m.Check = func(m *Machine) error { return errEarly }
	if err := m.Run(); !errors.Is(err, errEarly) {
		t.Fatalf("err = %v, want up-front hook error before any step", err)
	}
	if m.Steps != 0 {
		t.Fatalf("executed %d steps, want 0", m.Steps)
	}
}

func TestResetClearsCheckHook(t *testing.T) {
	p := &Program{Code: []Instr{{Op: OpHalt}}}
	m := NewMachineSize(p, int(DataBase)+16)
	m.Check = func(m *Machine) error { return errors.New("boom") }
	m.CheckEvery = 1
	m.Reset()
	if m.Check != nil || m.CheckEvery != 0 {
		t.Fatal("Reset must detach the check hook")
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run after reset: %v", err)
	}
}
