// Package vm implements the 32-bit register machine that stands in for the
// paper's Linux/x86 execution substrate (paper §4).
//
// The paper's tool instruments x86 binaries through Valgrind's dynamic
// rewriting. Here the machine itself exposes instrumentation hooks (Tracer)
// at exactly the granularity the analysis needs: word-sized ALU operations,
// byte-granular loads and stores, conditional and indirect jumps, calls and
// returns, and I/O syscalls. Sub-register accesses (the overlapping %dx /
// %edx registers of §4.1) are expressed as full-register reads combined with
// bitwise extract/insert operations, mirroring how Flowcheck rewrites
// Valgrind IR.
package vm

import "fmt"

// Word is the machine word: all registers and ALU operations are 32-bit.
type Word = uint32

// Register indices. There are eight general-purpose registers; by software
// convention SP is the stack pointer and BP the frame pointer.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	SP
	BP
	NumRegs
)

// Op is an instruction opcode.
type Op uint8

// Instruction set. Operand conventions: A is the destination register (or
// the condition/address register for control flow), B and C are source
// registers, Imm is an immediate or code target.
const (
	OpNop Op = iota

	OpConst // A <- Imm
	OpMov   // A <- B

	// Binary ALU: A <- B op C.
	OpAdd
	OpSub
	OpMul
	OpDivS // signed division; divisor 0 traps
	OpDivU
	OpModS
	OpModU
	OpAnd
	OpOr
	OpXor
	OpShl  // shift amount taken mod 32
	OpShrU // logical right shift
	OpShrS // arithmetic right shift

	// Unary ALU: A <- op B.
	OpNot
	OpNeg

	// Comparisons: A <- (B op C) ? 1 : 0.
	OpCmpEQ
	OpCmpNE
	OpCmpLTS
	OpCmpLES
	OpCmpLTU
	OpCmpLEU

	// Sub-register access (paper §4.1): byte-level views of registers,
	// implemented as full-register operations with bitwise selection.
	OpExtB // A <- byte Imm of B (zero-extended)
	OpInsB // byte Imm of A <- low byte of B (other bytes preserved)

	// Memory. W selects the access width in bytes (1, 2, or 4); loads
	// zero-extend. Imm is a constant displacement added to the address
	// register.
	OpLoad  // A <- mem[B + Imm]
	OpStore // mem[A + Imm] <- B

	// Control flow. Code targets are instruction indices.
	OpJmp     // pc <- Imm
	OpJz      // if A == 0: pc <- Imm
	OpJnz     // if A != 0: pc <- Imm
	OpJmpInd  // pc <- A (jump tables)
	OpCall    // push pc+1; pc <- Imm
	OpCallInd // push pc+1; pc <- A
	OpRet     // pc <- pop

	// Stack sugar.
	OpPush // push B
	OpPop  // A <- pop

	OpSys  // syscall Imm; arguments in R0..R2, result in R0
	OpHalt // stop with exit code in R0
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDivS: "divs", OpDivU: "divu",
	OpModS: "mods", OpModU: "modu", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShrU: "shru", OpShrS: "shrs", OpNot: "not", OpNeg: "neg",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLTS: "cmplts", OpCmpLES: "cmples",
	OpCmpLTU: "cmpltu", OpCmpLEU: "cmpleu", OpExtB: "extb", OpInsB: "insb",
	OpLoad: "load", OpStore: "store",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpJmpInd: "jmpind",
	OpCall: "call", OpCallInd: "callind", OpRet: "ret",
	OpPush: "push", OpPop: "pop", OpSys: "sys", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinaryALU reports whether o is a two-source ALU or comparison operation.
func (o Op) IsBinaryALU() bool { return o >= OpAdd && o <= OpCmpLEU && o != OpNot && o != OpNeg }

// IsCompare reports whether o produces a 0/1 comparison result.
func (o Op) IsCompare() bool { return o >= OpCmpEQ && o <= OpCmpLEU }

// Syscall numbers (the Imm field of OpSys).
const (
	SysExit        = iota // exit with code R0
	SysRead               // R0 = read(stream R0, buf R1, len R2)
	SysWrite              // R0 = write(fd R0, buf R1, len R2)
	SysPutc               // write one byte from R0 to public output
	SysMarkSecret         // mark mem[R1 .. R1+R2) secret
	SysDeclassify         // mark mem[R1 .. R1+R2) public
	SysEnterRegion        // enter enclosure region; descriptor at R1
	SysLeaveRegion        // leave innermost enclosure region
	SysFlowNote           // recompute/report flow now (KBattleship live mode)
)

// Input stream ids for SysRead.
const (
	StreamPublic = 0
	StreamSecret = 1
)

// Instr is one machine instruction.
type Instr struct {
	Op      Op
	W       uint8 // access width for OpLoad/OpStore (1, 2, or 4)
	A, B, C uint8 // register operands
	Imm     int32 // immediate / code target / displacement / syscall number
	Site    uint32
}

func (in Instr) String() string {
	return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d w=%d", in.Op, in.A, in.B, in.C, in.Imm, in.W)
}

// SiteInfo describes a static code site for diagnostics and edge labels.
type SiteInfo struct {
	File string
	Line int
	Fn   string
}

// FuncInfo records the instruction extent of one compiled function. The
// compiler emits functions contiguously, so [Entry, End) is exactly the
// function's code; the static analyzer uses these extents to build
// per-function CFGs, and diagnostics use them to name a raw PC.
type FuncInfo struct {
	Name  string
	Entry int // first instruction index
	End   int // one past the last instruction index
}

// Range is a byte range of guest memory, used for enclosure-region output
// descriptors and secrecy marking.
type Range struct {
	Addr Word
	Len  Word
}

// Program is a loadable guest program.
type Program struct {
	Code  []Instr
	Data  []byte // initial contents of the global data segment at DataBase
	Entry int    // starting instruction index
	// Sites maps site ids to source locations; index 0 is "unknown".
	Sites []SiteInfo
	// Funcs lists compiled function extents in ascending Entry order
	// (including the synthesized __start). Nil for hand-assembled
	// programs, which then get no per-function static analysis.
	Funcs []FuncInfo
	// Globals maps global symbol names to their data-segment addresses,
	// for tests and debugging.
	Globals map[string]Word
}

// SiteString renders a site id as file:line for diagnostics.
func (p *Program) SiteString(site uint32) string {
	if int(site) < len(p.Sites) {
		s := p.Sites[site]
		if s.File != "" {
			return fmt.Sprintf("%s:%d(%s)", s.File, s.Line, s.Fn)
		}
	}
	return fmt.Sprintf("site%d", site)
}

// FuncAt returns the function containing instruction index pc, or nil if
// pc is out of range or the program has no function table.
func (p *Program) FuncAt(pc int) *FuncInfo {
	lo, hi := 0, len(p.Funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		f := &p.Funcs[mid]
		switch {
		case pc < f.Entry:
			hi = mid
		case pc >= f.End:
			lo = mid + 1
		default:
			return f
		}
	}
	return nil
}

// LocString names an instruction index for diagnostics: the per-instruction
// source location (file:line and function) when the program carries one,
// falling back to the raw PC.
func (p *Program) LocString(pc int) string {
	if pc < 0 || pc >= len(p.Code) {
		return fmt.Sprintf("pc=%d", pc)
	}
	if site := p.Code[pc].Site; int(site) < len(p.Sites) && p.Sites[site].File != "" {
		return fmt.Sprintf("%s @pc=%d", p.SiteString(site), pc)
	}
	if f := p.FuncAt(pc); f != nil {
		return fmt.Sprintf("%s+%d @pc=%d", f.Name, pc-f.Entry, pc)
	}
	return fmt.Sprintf("pc=%d", pc)
}
