package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DataBase is the lowest mapped guest address. Addresses below it trap, so
// null-pointer dereferences are caught.
const DataBase Word = 0x1000

// DefaultMemSize is the default guest memory size in bytes.
const DefaultMemSize = 4 << 20

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 2_000_000_000

// DefaultCheckEvery is the step interval at which Run polls the Check hook
// when none is configured. It is large enough that the per-step overhead is
// a single decrement, yet small enough that a stuck guest is interrupted
// within microseconds.
const DefaultCheckEvery = 4096

// TrapKind classifies why a trap occurred. Genuine guest faults (bad
// memory, division by zero, illegal opcodes) are distinguished from the
// machine's own step budget running out: a step-limit trap says nothing
// about the guest, only that the caller bounded it.
type TrapKind uint8

// Trap kinds.
const (
	TrapFault     TrapKind = iota // the guest performed an illegal operation
	TrapStepLimit                 // MaxSteps was exhausted
)

// ErrStepLimit matches (with errors.Is) any trap caused by step-budget
// exhaustion rather than a guest fault.
var ErrStepLimit = errors.New("vm: step limit exhausted")

// Trap is a runtime fault in guest execution.
type Trap struct {
	PC   int
	Site uint32
	Msg  string
	Kind TrapKind
}

func (t *Trap) Error() string { return fmt.Sprintf("trap at pc=%d: %s", t.PC, t.Msg) }

// Is reports typed-sentinel matches: errors.Is(err, ErrStepLimit) holds
// exactly for step-limit traps.
func (t *Trap) Is(target error) bool {
	return target == ErrStepLimit && t.Kind == TrapStepLimit
}

// Machine executes a Program. Create with NewMachine, set inputs, then Run.
type Machine struct {
	Prog *Program
	Mem  []byte
	Regs [NumRegs]Word
	PC   int

	// Halted and ExitCode are set when the program exits.
	Halted   bool
	ExitCode Word

	// PublicIn and SecretIn are the two input streams of the analysis: the
	// secret input is the data whose disclosure is being measured (§1).
	PublicIn []byte
	SecretIn []byte
	pubPos   int
	secPos   int

	// Output accumulates the public output.
	Output []byte

	// Tracer receives instrumentation events; nil runs uninstrumented.
	Tracer Tracer

	// AfterInstr, when non-nil, is invoked after each instruction's
	// architectural effect (used by the lockstep checker of §6.3).
	AfterInstr func(m *Machine, in *Instr)

	// Steps counts executed instructions; MaxSteps bounds them.
	Steps    uint64
	MaxSteps uint64

	// Check, when non-nil, is polled by Run every CheckEvery steps
	// (DefaultCheckEvery when zero). A non-nil return aborts the run with
	// that error. It is the machine's cancellation and resource-budget
	// seam: the analysis engine uses it to poll context deadlines, output
	// and graph budgets, and injected faults without paying a per-step
	// cost.
	Check      func(m *Machine) error
	CheckEvery uint64
}

// NewMachine creates a machine with the program's data segment loaded and
// the stack pointer at the top of memory.
func NewMachine(p *Program) *Machine {
	return NewMachineSize(p, DefaultMemSize)
}

// NewMachineSize creates a machine with the given memory size.
func NewMachineSize(p *Program, memSize int) *Machine {
	if memSize < int(DataBase)+len(p.Data) {
		panic("vm: memory too small for data segment")
	}
	m := &Machine{
		Prog:     p,
		Mem:      make([]byte, memSize),
		PC:       p.Entry,
		MaxSteps: DefaultMaxSteps,
	}
	copy(m.Mem[DataBase:], p.Data)
	m.Regs[SP] = Word(memSize)
	m.Regs[BP] = Word(memSize)
	return m
}

// Reset returns the machine to its initial state for a fresh run of the
// same program, reusing the memory buffer: data segment reloaded, registers
// cleared, stack pointer at the top of memory. Inputs and hooks are
// detached, and Output is released rather than truncated — the previous
// run's Result may still hold it.
func (m *Machine) Reset() {
	clear(m.Mem)
	copy(m.Mem[DataBase:], m.Prog.Data)
	m.Regs = [NumRegs]Word{}
	m.Regs[SP] = Word(len(m.Mem))
	m.Regs[BP] = Word(len(m.Mem))
	m.PC = m.Prog.Entry
	m.Halted = false
	m.ExitCode = 0
	m.PublicIn, m.SecretIn = nil, nil
	m.pubPos, m.secPos = 0, 0
	m.Output = nil
	m.Tracer = nil
	m.AfterInstr = nil
	m.Steps = 0
	m.Check = nil
	m.CheckEvery = 0
}

func (m *Machine) trap(in *Instr, format string, args ...interface{}) error {
	return &Trap{PC: m.PC, Site: in.Site, Msg: fmt.Sprintf(format, args...) + " at " + m.Prog.SiteString(in.Site)}
}

// checkMem validates an n-byte access at addr.
func (m *Machine) checkMem(addr Word, n int) bool {
	return addr >= DataBase && int(addr)+n <= len(m.Mem) && int(addr)+n > 0
}

// LoadWord reads a little-endian word from guest memory (no tracing); it is
// a helper for syscall argument decoding and tests.
func (m *Machine) LoadWord(addr Word) (Word, bool) {
	if !m.checkMem(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), true
}

// StoreWord writes a little-endian word (no tracing).
func (m *Machine) StoreWord(addr Word, v Word) bool {
	if !m.checkMem(addr, 4) {
		return false
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	return true
}

// Bytes returns the guest memory range [addr, addr+n), or nil if out of
// bounds.
func (m *Machine) Bytes(addr Word, n int) []byte {
	if n < 0 || !m.checkMem(addr, n) {
		return nil
	}
	return m.Mem[addr : int(addr)+n]
}

// Run executes until the program halts, a trap occurs, or the Check hook
// rejects the run.
func (m *Machine) Run() error {
	if m.Check == nil {
		for !m.Halted {
			if err := m.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	every := m.CheckEvery
	if every == 0 {
		every = DefaultCheckEvery
	}
	// Poll once up front so an already-expired deadline or already-blown
	// budget stops even a run shorter than one interval.
	if err := m.Check(m); err != nil {
		return err
	}
	next := m.Steps + every
	for !m.Halted {
		if err := m.Step(); err != nil {
			return err
		}
		if m.Steps >= next {
			if err := m.Check(m); err != nil {
				return err
			}
			next = m.Steps + every
		}
	}
	return nil
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Code) {
		return &Trap{PC: m.PC, Msg: "program counter outside code"}
	}
	if m.Steps >= m.MaxSteps {
		in := &m.Prog.Code[m.PC]
		t := m.trap(in, "step limit (%d) exhausted", m.MaxSteps)
		t.(*Trap).Kind = TrapStepLimit
		return t
	}
	m.Steps++
	in := &m.Prog.Code[m.PC]
	t := m.Tracer
	nextPC := m.PC + 1

	switch in.Op {
	case OpNop:

	case OpConst:
		if t != nil {
			t.Const(in.Site, int(in.A))
		}
		m.Regs[in.A] = Word(in.Imm)

	case OpMov:
		if t != nil {
			t.Mov(in.Site, int(in.A), int(in.B))
		}
		m.Regs[in.A] = m.Regs[in.B]

	case OpAdd, OpSub, OpMul, OpDivS, OpDivU, OpModS, OpModU,
		OpAnd, OpOr, OpXor, OpShl, OpShrU, OpShrS,
		OpCmpEQ, OpCmpNE, OpCmpLTS, OpCmpLES, OpCmpLTU, OpCmpLEU:
		va, vb := m.Regs[in.B], m.Regs[in.C]
		switch in.Op {
		case OpDivS, OpDivU, OpModS, OpModU:
			if vb == 0 {
				return m.trap(in, "division by zero")
			}
		}
		if t != nil {
			t.Binop(in.Site, in.Op, int(in.A), int(in.B), int(in.C), va, vb)
		}
		m.Regs[in.A] = evalBinop(in.Op, va, vb)

	case OpNot, OpNeg:
		vs := m.Regs[in.B]
		if t != nil {
			t.Unop(in.Site, in.Op, int(in.A), int(in.B), vs)
		}
		if in.Op == OpNot {
			m.Regs[in.A] = ^vs
		} else {
			m.Regs[in.A] = -vs
		}

	case OpExtB:
		idx := int(in.Imm) & 3
		if t != nil {
			t.ExtB(in.Site, int(in.A), int(in.B), idx)
		}
		m.Regs[in.A] = (m.Regs[in.B] >> (8 * uint(idx))) & 0xFF

	case OpInsB:
		idx := int(in.Imm) & 3
		if t != nil {
			t.InsB(in.Site, int(in.A), int(in.B), idx)
		}
		sh := 8 * uint(idx)
		m.Regs[in.A] = (m.Regs[in.A] &^ (0xFF << sh)) | ((m.Regs[in.B] & 0xFF) << sh)

	case OpLoad:
		n := int(in.W)
		addr := m.Regs[in.B] + Word(in.Imm)
		if !m.checkMem(addr, n) {
			return m.trap(in, "load of %d bytes at %#x out of bounds", n, addr)
		}
		if t != nil {
			t.Load(in.Site, int(in.A), int(in.B), addr, n)
		}
		switch n {
		case 1:
			m.Regs[in.A] = Word(m.Mem[addr])
		case 2:
			m.Regs[in.A] = Word(binary.LittleEndian.Uint16(m.Mem[addr:]))
		case 4:
			m.Regs[in.A] = binary.LittleEndian.Uint32(m.Mem[addr:])
		default:
			return m.trap(in, "bad load width %d", n)
		}

	case OpStore:
		n := int(in.W)
		addr := m.Regs[in.A] + Word(in.Imm)
		if !m.checkMem(addr, n) {
			return m.trap(in, "store of %d bytes at %#x out of bounds", n, addr)
		}
		if t != nil {
			t.Store(in.Site, int(in.A), addr, int(in.B), n)
		}
		v := m.Regs[in.B]
		switch n {
		case 1:
			m.Mem[addr] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(m.Mem[addr:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(m.Mem[addr:], v)
		default:
			return m.trap(in, "bad store width %d", n)
		}

	case OpJmp:
		nextPC = int(in.Imm)

	case OpJz, OpJnz:
		v := m.Regs[in.A]
		taken := (v == 0) == (in.Op == OpJz)
		if t != nil {
			t.Branch(in.Site, int(in.A), taken)
		}
		if taken {
			nextPC = int(in.Imm)
		}

	case OpJmpInd:
		target := m.Regs[in.A]
		if t != nil {
			t.JmpInd(in.Site, int(in.A), target)
		}
		nextPC = int(target)

	case OpCall, OpCallInd:
		var target int
		if in.Op == OpCall {
			target = int(in.Imm)
		} else {
			target = int(m.Regs[in.A])
			if t != nil {
				t.JmpInd(in.Site, int(in.A), Word(target))
			}
		}
		sp := m.Regs[SP] - 4
		if !m.checkMem(sp, 4) {
			return m.trap(in, "stack overflow on call")
		}
		if t != nil {
			t.Call(in.Site, target)
			t.Push(in.Site, -1, sp) // return address is public
		}
		binary.LittleEndian.PutUint32(m.Mem[sp:], Word(m.PC+1))
		m.Regs[SP] = sp
		nextPC = target

	case OpRet:
		sp := m.Regs[SP]
		if !m.checkMem(sp, 4) {
			return m.trap(in, "stack underflow on ret")
		}
		if t != nil {
			t.Ret(in.Site)
		}
		nextPC = int(binary.LittleEndian.Uint32(m.Mem[sp:]))
		m.Regs[SP] = sp + 4

	case OpPush:
		sp := m.Regs[SP] - 4
		if !m.checkMem(sp, 4) {
			return m.trap(in, "stack overflow on push")
		}
		if t != nil {
			t.Push(in.Site, int(in.B), sp)
		}
		binary.LittleEndian.PutUint32(m.Mem[sp:], m.Regs[in.B])
		m.Regs[SP] = sp

	case OpPop:
		sp := m.Regs[SP]
		if !m.checkMem(sp, 4) {
			return m.trap(in, "stack underflow on pop")
		}
		if t != nil {
			t.Pop(in.Site, int(in.A), sp)
		}
		m.Regs[in.A] = binary.LittleEndian.Uint32(m.Mem[sp:])
		m.Regs[SP] = sp + 4

	case OpSys:
		if err := m.syscall(in); err != nil {
			return err
		}

	case OpHalt:
		if t != nil {
			t.Exit(in.Site, R0)
		}
		m.Halted = true
		m.ExitCode = m.Regs[R0]

	default:
		return m.trap(in, "illegal opcode %v", in.Op)
	}

	m.PC = nextPC
	if m.AfterInstr != nil {
		m.AfterInstr(m, in)
	}
	return nil
}

func evalBinop(op Op, a, b Word) Word {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDivS:
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a // overflow wraps, like x86 would fault; define as identity
		}
		return Word(int32(a) / int32(b))
	case OpDivU:
		return a / b
	case OpModS:
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return Word(int32(a) % int32(b))
	case OpModU:
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 31)
	case OpShrU:
		return a >> (b & 31)
	case OpShrS:
		return Word(int32(a) >> (b & 31))
	case OpCmpEQ:
		return b2w(a == b)
	case OpCmpNE:
		return b2w(a != b)
	case OpCmpLTS:
		return b2w(int32(a) < int32(b))
	case OpCmpLES:
		return b2w(int32(a) <= int32(b))
	case OpCmpLTU:
		return b2w(a < b)
	case OpCmpLEU:
		return b2w(a <= b)
	}
	panic("evalBinop: not a binop: " + op.String())
}

func b2w(b bool) Word {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) syscall(in *Instr) error {
	t := m.Tracer
	switch int(in.Imm) {
	case SysExit:
		if t != nil {
			t.Exit(in.Site, R0)
		}
		m.Halted = true
		m.ExitCode = m.Regs[R0]

	case SysRead:
		stream, buf, n := m.Regs[R0], m.Regs[R1], int(m.Regs[R2])
		if n < 0 || !m.checkMem(buf, n) {
			return m.trap(in, "read buffer %#x+%d out of bounds", buf, n)
		}
		var src []byte
		var pos *int
		secret := stream == StreamSecret
		if secret {
			src, pos = m.SecretIn, &m.secPos
		} else {
			src, pos = m.PublicIn, &m.pubPos
		}
		avail := len(src) - *pos
		if n > avail {
			n = avail
		}
		if n > 0 {
			copy(m.Mem[buf:], src[*pos:*pos+n])
			*pos += n
		}
		if t != nil {
			t.ReadInput(in.Site, buf, m.Mem[buf:int(buf)+n], secret)
		}
		m.Regs[R0] = Word(n)

	case SysWrite:
		buf, n := m.Regs[R1], int(m.Regs[R2])
		if n < 0 || !m.checkMem(buf, n) {
			return m.trap(in, "write buffer %#x+%d out of bounds", buf, n)
		}
		data := m.Mem[buf : int(buf)+n]
		if t != nil {
			t.WriteOutput(in.Site, buf, data, -1)
		}
		m.Output = append(m.Output, data...)
		m.Regs[R0] = Word(n)

	case SysPutc:
		c := byte(m.Regs[R0])
		if t != nil {
			t.WriteOutput(in.Site, 0, []byte{c}, R0)
		}
		m.Output = append(m.Output, c)

	case SysMarkSecret, SysDeclassify:
		addr, n := m.Regs[R1], m.Regs[R2]
		if !m.checkMem(addr, int(n)) {
			return m.trap(in, "mark range %#x+%d out of bounds", addr, n)
		}
		if t != nil {
			if int(in.Imm) == SysMarkSecret {
				t.MarkSecret(in.Site, addr, n)
			} else {
				t.Declassify(in.Site, addr, n)
			}
		}

	case SysEnterRegion:
		desc := m.Regs[R1]
		cnt, ok := m.LoadWord(desc)
		if !ok || cnt > 1024 {
			return m.trap(in, "bad enclosure descriptor at %#x", desc)
		}
		outs := make([]Range, 0, cnt)
		for i := Word(0); i < cnt; i++ {
			a, ok1 := m.LoadWord(desc + 4 + 8*i)
			l, ok2 := m.LoadWord(desc + 8 + 8*i)
			if !ok1 || !ok2 {
				return m.trap(in, "bad enclosure descriptor entry %d", i)
			}
			outs = append(outs, Range{Addr: a, Len: l})
		}
		if t != nil {
			t.EnterRegion(in.Site, outs)
		}

	case SysLeaveRegion:
		if t != nil {
			t.LeaveRegion(in.Site)
		}

	case SysFlowNote:
		if t != nil {
			t.FlowNote(in.Site)
		}

	default:
		return m.trap(in, "unknown syscall %d", in.Imm)
	}
	return nil
}
