package vm

// Additional instruction-set coverage: corners of the ISA the main test
// file doesn't reach.

import (
	"strings"
	"testing"
)

func TestNopAndMovChains(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpNop},
		Instr{Op: OpConst, A: R1, Imm: 9},
		Instr{Op: OpNop},
		Instr{Op: OpMov, A: R2, B: R1},
		Instr{Op: OpMov, A: R0, B: R2},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 9 {
		t.Fatalf("exit = %d", m.ExitCode)
	}
}

func TestInsBPreservesOtherBytes(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R0, Imm: 0x11223344},
		Instr{Op: OpConst, A: R1, Imm: 0xAB},
		Instr{Op: OpInsB, A: R0, B: R1, Imm: 2}, // byte 2 <- 0xAB
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0x11AB3344 {
		t.Fatalf("InsB = %#x", m.ExitCode)
	}
}

func TestExtBIndexMasking(t *testing.T) {
	// Imm beyond 3 wraps mod 4, mirroring how hardware sub-registers alias.
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 0x11223344},
		Instr{Op: OpExtB, A: R0, B: R1, Imm: 5}, // 5 & 3 = 1 -> 0x33
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0x33 {
		t.Fatalf("ExtB wrap = %#x", m.ExitCode)
	}
}

func TestSignedDivisionOverflowDefined(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: -2147483648},
		Instr{Op: OpConst, A: R2, Imm: -1},
		Instr{Op: OpDivS, A: R0, B: R1, C: R2},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0x80000000 {
		t.Fatalf("INT_MIN / -1 = %#x, want defined wrap", m.ExitCode)
	}
	m = run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: -2147483648},
		Instr{Op: OpConst, A: R2, Imm: -1},
		Instr{Op: OpModS, A: R0, B: R1, C: R2},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0 {
		t.Fatalf("INT_MIN %% -1 = %#x, want 0", m.ExitCode)
	}
}

func TestStore16(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpConst, A: R2, Imm: int32(0xCAFEBABE - 0x100000000)},
		Instr{Op: OpStore, A: R1, B: R2, W: 2},
		Instr{Op: OpLoad, A: R0, B: R1, W: 4},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0xBABE {
		t.Fatalf("16-bit store = %#x", m.ExitCode)
	}
}

func TestMarkSecretOutOfBoundsTraps(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: 0},
		Instr{Op: OpConst, A: R2, Imm: 100},
		Instr{Op: OpSys, Imm: SysMarkSecret},
	)
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadEnclosureDescriptorTraps(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpSys, Imm: SysEnterRegion},
	)
	p.Data = []byte{0xFF, 0xFF, 0xFF, 0xFF} // absurd count
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "descriptor") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteToInvalidFdStillPublicOutput(t *testing.T) {
	// The VM models a single public output; any fd goes there.
	p := prog(
		Instr{Op: OpConst, A: R0, Imm: 7},
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpConst, A: R2, Imm: 2},
		Instr{Op: OpSys, Imm: SysWrite},
		Instr{Op: OpHalt},
	)
	p.Data = []byte("ok")
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if string(m.Output) != "ok" {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestJmpIndOutOfRangeTraps(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: 9999},
		Instr{Op: OpJmpInd, A: R1},
	)
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "program counter") {
		t.Fatalf("err = %v", err)
	}
}

func TestBytesAccessor(t *testing.T) {
	p := prog(Instr{Op: OpHalt})
	p.Data = []byte("hello")
	m := NewMachineSize(p, 1<<16)
	if got := m.Bytes(DataBase, 5); string(got) != "hello" {
		t.Fatalf("Bytes = %q", got)
	}
	if m.Bytes(0, 4) != nil {
		t.Fatal("unmapped range should return nil")
	}
	if m.Bytes(DataBase, -1) != nil {
		t.Fatal("negative length should return nil")
	}
}

func TestOpStringsTotal(t *testing.T) {
	for op := OpNop; op <= OpHalt; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Fatalf("opcode %d has no name", op)
		}
	}
}
