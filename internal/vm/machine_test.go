package vm

import (
	"fmt"
	"strings"
	"testing"
)

// prog assembles a program from instructions with an empty data segment.
func prog(code ...Instr) *Program {
	return &Program{Code: code, Sites: []SiteInfo{{}}}
}

func run(t *testing.T, p *Program) *Machine {
	t.Helper()
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestConstMovHalt(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 42},
		Instr{Op: OpMov, A: R0, B: R1},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", m.ExitCode)
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b Word
		want Word
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, 0xFFFFFFFF},
		{OpMul, 6, 7, 42},
		{OpDivU, 42, 5, 8},
		{OpModU, 42, 5, 2},
		{OpDivS, Word(0xFFFFFFF8) /* -8 */, 3, Word(0xFFFFFFFE) /* -2 */},
		{OpModS, Word(0xFFFFFFF8), 3, Word(0xFFFFFFFE)},
		{OpAnd, 0xFF0F, 0x0FF0, 0x0F00},
		{OpOr, 0xF0, 0x0F, 0xFF},
		{OpXor, 0xFF, 0x0F, 0xF0},
		{OpShl, 1, 8, 256},
		{OpShrU, 0x80000000, 31, 1},
		{OpShrS, 0x80000000, 31, 0xFFFFFFFF},
		{OpCmpEQ, 5, 5, 1},
		{OpCmpNE, 5, 5, 0},
		{OpCmpLTS, 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
		{OpCmpLTU, 0xFFFFFFFF, 0, 0},
		{OpCmpLES, 7, 7, 1},
		{OpCmpLEU, 8, 7, 0},
	}
	for _, c := range cases {
		t.Run(c.op.String(), func(t *testing.T) {
			m := run(t, prog(
				Instr{Op: OpConst, A: R1, Imm: int32(c.a)},
				Instr{Op: OpConst, A: R2, Imm: int32(c.b)},
				Instr{Op: c.op, A: R0, B: R1, C: R2},
				Instr{Op: OpHalt},
			))
			if m.ExitCode != c.want {
				t.Fatalf("%v(%#x,%#x) = %#x, want %#x", c.op, c.a, c.b, m.ExitCode, c.want)
			}
		})
	}
}

func TestUnaryOps(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 1},
		Instr{Op: OpNeg, A: R0, B: R1},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0xFFFFFFFF {
		t.Fatalf("neg 1 = %#x", m.ExitCode)
	}
	m = run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 0},
		Instr{Op: OpNot, A: R0, B: R1},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 0xFFFFFFFF {
		t.Fatalf("not 0 = %#x", m.ExitCode)
	}
}

func TestSubRegisterAccess(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: int32(0xAABBCCDD - 0x100000000)},
		Instr{Op: OpExtB, A: R2, B: R1, Imm: 2}, // R2 = 0xBB
		Instr{Op: OpConst, A: R3, Imm: 0x11},
		Instr{Op: OpInsB, A: R1, B: R3, Imm: 0}, // R1 = 0xAABBCC11
		Instr{Op: OpMov, A: R0, B: R1},
		Instr{Op: OpHalt},
	))
	if m.Regs[R2] != 0xBB {
		t.Errorf("ExtB = %#x, want 0xBB", m.Regs[R2])
	}
	if m.ExitCode != 0xAABBCC11 {
		t.Errorf("InsB result = %#x, want 0xAABBCC11", m.ExitCode)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	base := int32(DataBase)
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: base},
		Instr{Op: OpConst, A: R2, Imm: int32(0x11223344)},
		Instr{Op: OpStore, A: R1, B: R2, W: 4},
		Instr{Op: OpLoad, A: R3, B: R1, W: 1},         // 0x44 (little-endian)
		Instr{Op: OpLoad, A: R4, B: R1, W: 2, Imm: 1}, // 0x2233
		Instr{Op: OpLoad, A: R5, B: R1, W: 4},
		Instr{Op: OpHalt},
	))
	if m.Regs[R3] != 0x44 {
		t.Errorf("byte load = %#x", m.Regs[R3])
	}
	if m.Regs[R4] != 0x2233 {
		t.Errorf("halfword load with displacement = %#x", m.Regs[R4])
	}
	if m.Regs[R5] != 0x11223344 {
		t.Errorf("word load = %#x", m.Regs[R5])
	}
}

func TestBranches(t *testing.T) {
	// if (R1 == 0) R0 = 1 else R0 = 2
	code := func(v int32) *Program {
		return prog(
			Instr{Op: OpConst, A: R1, Imm: v},
			Instr{Op: OpJz, A: R1, Imm: 4},
			Instr{Op: OpConst, A: R0, Imm: 2},
			Instr{Op: OpJmp, Imm: 5},
			Instr{Op: OpConst, A: R0, Imm: 1},
			Instr{Op: OpHalt},
		)
	}
	if m := run(t, code(0)); m.ExitCode != 1 {
		t.Fatalf("jz not taken on zero: %d", m.ExitCode)
	}
	if m := run(t, code(7)); m.ExitCode != 2 {
		t.Fatalf("jz taken on nonzero: %d", m.ExitCode)
	}
}

func TestJmpInd(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 3},
		Instr{Op: OpJmpInd, A: R1},
		Instr{Op: OpHalt}, // skipped
		Instr{Op: OpConst, A: R0, Imm: 9},
		Instr{Op: OpHalt},
	))
	if m.ExitCode != 9 {
		t.Fatalf("indirect jump failed: %d", m.ExitCode)
	}
}

func TestCallRetAndStack(t *testing.T) {
	// main: R0 = f(); halt. f: return 7 (via R0).
	m := run(t, prog(
		Instr{Op: OpCall, Imm: 2},
		Instr{Op: OpHalt},
		Instr{Op: OpConst, A: R0, Imm: 7}, // f:
		Instr{Op: OpRet},
	))
	if m.ExitCode != 7 {
		t.Fatalf("call/ret = %d, want 7", m.ExitCode)
	}
}

func TestCallInd(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 3},
		Instr{Op: OpCallInd, A: R1},
		Instr{Op: OpHalt},
		Instr{Op: OpConst, A: R0, Imm: 5}, // f:
		Instr{Op: OpRet},
	))
	if m.ExitCode != 5 {
		t.Fatalf("callind = %d", m.ExitCode)
	}
}

func TestPushPop(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R1, Imm: 11},
		Instr{Op: OpConst, A: R2, Imm: 22},
		Instr{Op: OpPush, B: R1},
		Instr{Op: OpPush, B: R2},
		Instr{Op: OpPop, A: R3},
		Instr{Op: OpPop, A: R4},
		Instr{Op: OpHalt},
	))
	if m.Regs[R3] != 22 || m.Regs[R4] != 11 {
		t.Fatalf("push/pop LIFO wrong: %d %d", m.Regs[R3], m.Regs[R4])
	}
	if m.Regs[SP] != Word(1<<16) {
		t.Fatalf("SP not restored: %#x", m.Regs[SP])
	}
}

func TestReadWriteSyscalls(t *testing.T) {
	p := prog(
		// read(secret, DataBase, 5)
		Instr{Op: OpConst, A: R0, Imm: StreamSecret},
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpConst, A: R2, Imm: 5},
		Instr{Op: OpSys, Imm: SysRead},
		// write(1, DataBase, R0) -- R0 has byte count from read
		Instr{Op: OpMov, A: R2, B: R0},
		Instr{Op: OpConst, A: R0, Imm: 1},
		Instr{Op: OpSys, Imm: SysWrite},
		Instr{Op: OpHalt},
	)
	m := NewMachineSize(p, 1<<16)
	m.SecretIn = []byte("hello world")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if string(m.Output) != "hello" {
		t.Fatalf("output = %q, want hello", m.Output)
	}
}

func TestReadPastEOF(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R0, Imm: StreamPublic},
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpConst, A: R2, Imm: 100},
		Instr{Op: OpSys, Imm: SysRead},
		Instr{Op: OpHalt},
	)
	m := NewMachineSize(p, 1<<16)
	m.PublicIn = []byte("abc")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 0 && m.Regs[R0] != 3 {
		t.Fatalf("short read = %d, want 3", m.Regs[R0])
	}
}

func TestPutc(t *testing.T) {
	m := run(t, prog(
		Instr{Op: OpConst, A: R0, Imm: 'X'},
		Instr{Op: OpSys, Imm: SysPutc},
		Instr{Op: OpHalt},
	))
	if string(m.Output) != "X" {
		t.Fatalf("putc output = %q", m.Output)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"div-by-zero", prog(
			Instr{Op: OpConst, A: R1, Imm: 1},
			Instr{Op: OpConst, A: R2, Imm: 0},
			Instr{Op: OpDivU, A: R0, B: R1, C: R2},
		), "division by zero"},
		{"load-oob", prog(
			Instr{Op: OpConst, A: R1, Imm: 0},
			Instr{Op: OpLoad, A: R0, B: R1, W: 4},
		), "out of bounds"},
		{"null-store", prog(
			Instr{Op: OpConst, A: R1, Imm: 8},
			Instr{Op: OpStore, A: R1, B: R0, W: 1},
		), "out of bounds"},
		{"pc-overrun", prog(
			Instr{Op: OpNop},
		), "program counter"},
		{"stack-underflow", prog(
			Instr{Op: OpRet},
		), "underflow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewMachineSize(c.p, 1<<16)
			err := m.Run()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	p := prog(Instr{Op: OpJmp, Imm: 0})
	m := NewMachineSize(p, 1<<16)
	m.MaxSteps = 1000
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestDataSegmentLoaded(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpLoad, A: R0, B: R1, W: 4},
		Instr{Op: OpHalt},
	)
	p.Data = []byte{0x78, 0x56, 0x34, 0x12}
	m := NewMachineSize(p, 1<<16)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 0x12345678 {
		t.Fatalf("data segment = %#x", m.ExitCode)
	}
}

func TestAfterInstrHook(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R0, Imm: 1},
		Instr{Op: OpConst, A: R0, Imm: 2},
		Instr{Op: OpHalt},
	)
	m := NewMachineSize(p, 1<<16)
	var n int
	m.AfterInstr = func(m *Machine, in *Instr) { n++ }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("AfterInstr fired %d times, want 3", n)
	}
}

// recorder records tracer events as strings for order/content assertions.
type recorder struct {
	events []string
}

func (r *recorder) log(f string, args ...interface{}) {
	r.events = append(r.events, fmt.Sprintf(f, args...))
}

func (r *recorder) Const(site uint32, rd int)   { r.log("const r%d", rd) }
func (r *recorder) Mov(site uint32, rd, rs int) { r.log("mov r%d r%d", rd, rs) }
func (r *recorder) Binop(site uint32, op Op, rd, ra, rb int, va, vb Word) {
	r.log("binop %v r%d r%d r%d %d %d", op, rd, ra, rb, va, vb)
}
func (r *recorder) Unop(site uint32, op Op, rd, rs int, vs Word) { r.log("unop %v", op) }
func (r *recorder) ExtB(site uint32, rd, rs, idx int)            { r.log("extb %d", idx) }
func (r *recorder) InsB(site uint32, rd, rs, idx int)            { r.log("insb %d", idx) }
func (r *recorder) Load(site uint32, rd, raddr int, addr Word, n int) {
	r.log("load r%d @%#x n=%d", rd, addr, n)
}
func (r *recorder) Store(site uint32, raddr int, addr Word, rs int, n int) {
	r.log("store @%#x r%d n=%d", addr, rs, n)
}
func (r *recorder) Branch(site uint32, rc int, taken bool)     { r.log("branch r%d %v", rc, taken) }
func (r *recorder) JmpInd(site uint32, raddr int, target Word) { r.log("jmpind r%d", raddr) }
func (r *recorder) Call(site uint32, target int)               { r.log("call %d", target) }
func (r *recorder) Ret(site uint32)                            { r.log("ret") }
func (r *recorder) Push(site uint32, rs int, addr Word)        { r.log("push r%d", rs) }
func (r *recorder) Pop(site uint32, rd int, addr Word)         { r.log("pop r%d", rd) }
func (r *recorder) ReadInput(site uint32, addr Word, data []byte, secret bool) {
	r.log("read %q secret=%v", data, secret)
}
func (r *recorder) WriteOutput(site uint32, addr Word, data []byte, reg int) {
	r.log("write %q", data)
}
func (r *recorder) MarkSecret(site uint32, addr, length Word) { r.log("marksecret %d", length) }
func (r *recorder) Declassify(site uint32, addr, length Word) { r.log("declassify %d", length) }
func (r *recorder) EnterRegion(site uint32, outputs []Range)  { r.log("enter %d", len(outputs)) }
func (r *recorder) LeaveRegion(site uint32)                   { r.log("leave") }
func (r *recorder) FlowNote(site uint32)                      { r.log("flownote") }
func (r *recorder) Exit(site uint32, codeReg int)             { r.log("exit r%d", codeReg) }

func TestTracerEvents(t *testing.T) {
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: 10},
		Instr{Op: OpConst, A: R2, Imm: 3},
		Instr{Op: OpAdd, A: R0, B: R1, C: R2},
		Instr{Op: OpJnz, A: R0, Imm: 4},
		Instr{Op: OpCall, Imm: 6},
		Instr{Op: OpHalt},
		Instr{Op: OpRet}, // f:
	)
	m := NewMachineSize(p, 1<<16)
	rec := &recorder{}
	m.Tracer = rec
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"const r1",
		"const r2",
		"binop add r0 r1 r2 10 3",
		"branch r0 true",
		"call 6",
		"push r-1",
		"ret",
		"exit r0",
	}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v", rec.events)
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, rec.events[i], want[i], rec.events)
		}
	}
}

func TestEnclosureDescriptorDecoding(t *testing.T) {
	// Descriptor at DataBase: 2 ranges (0x2000,4) and (0x3000,16).
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: int32(DataBase)},
		Instr{Op: OpSys, Imm: SysEnterRegion},
		Instr{Op: OpSys, Imm: SysLeaveRegion},
		Instr{Op: OpHalt},
	)
	p.Data = []byte{
		2, 0, 0, 0,
		0x00, 0x20, 0, 0, 4, 0, 0, 0,
		0x00, 0x30, 0, 0, 16, 0, 0, 0,
	}
	m := NewMachineSize(p, 1<<16)
	rec := &recorder{}
	m.Tracer = rec
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.events[1] != "enter 2" || rec.events[2] != "leave" {
		t.Fatalf("events = %v", rec.events)
	}
}

func BenchmarkUninstrumentedLoop(b *testing.B) {
	// Tight countdown loop: measures raw dispatch speed.
	p := prog(
		Instr{Op: OpConst, A: R1, Imm: 1000},
		Instr{Op: OpConst, A: R2, Imm: 1},
		Instr{Op: OpSub, A: R1, B: R1, C: R2}, // loop:
		Instr{Op: OpJnz, A: R1, Imm: 2},
		Instr{Op: OpHalt},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewMachineSize(p, 1<<16)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
