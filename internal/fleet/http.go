package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"flowcheck/internal/serve"
)

// ShardStats is one row of the /statz shard table.
type ShardStats struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	// EWMALatencyUS is the coordinator-observed request RTT;
	// ReportedEWMAUS is the shard's own per-run EWMA from /healthz.
	EWMALatencyUS       int64  `json:"ewma_latency_us"`
	ReportedEWMAUS      int64  `json:"reported_ewma_us"`
	ConsecutiveFailures int32  `json:"consecutive_failures"`
	LastProbe           string `json:"last_probe,omitempty"`
	RingVNodes          int    `json:"ring_vnodes"`

	Requests  int64 `json:"requests"`
	Failures  int64 `json:"failures"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Failovers int64 `json:"failovers"`
	Steals    int64 `json:"steals"`
}

// Stats snapshots the coordinator: fleet-wide counters plus the
// per-shard table.
type Stats struct {
	StartTime string `json:"start_time"`
	UptimeMS  int64  `json:"uptime_ms"`
	Draining  bool   `json:"draining"`
	Healthy   int    `json:"healthy_shards"`

	Requests     int64 `json:"requests"`
	Batches      int64 `json:"batches"`
	HedgesFired  int64 `json:"hedges_fired"`
	HedgeWins    int64 `json:"hedge_wins"`
	Failovers    int64 `json:"failovers"`
	Steals       int64 `json:"steals"`
	Redispatches int64 `json:"redispatches"`

	Shards []ShardStats `json:"shards"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		StartTime:    c.start.UTC().Format(time.RFC3339),
		UptimeMS:     c.opts.Now().Sub(c.start).Milliseconds(),
		Draining:     c.draining.Load(),
		Requests:     c.requests.Load(),
		Batches:      c.batches.Load(),
		HedgesFired:  c.hedgesFired.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Failovers:    c.failovers.Load(),
		Steals:       c.steals.Load(),
		Redispatches: c.redispatches.Load(),
	}
	spread := c.ring.Spread()
	for i, sh := range c.shards {
		state := sh.getState()
		if state == StateHealthy || state == StateSuspect {
			st.Healthy++
		}
		row := ShardStats{
			Name:                sh.name,
			URL:                 sh.url,
			State:               state.String(),
			EWMALatencyUS:       sh.ewmaUS.Load(),
			ReportedEWMAUS:      sh.reportedUS.Load(),
			ConsecutiveFailures: sh.consecFails.Load(),
			RingVNodes:          spread[i],
			Requests:            sh.requests.Load(),
			Failures:            sh.failures.Load(),
			Hedges:              sh.hedges.Load(),
			HedgeWins:           sh.hedgeWins.Load(),
			Failovers:           sh.failovers.Load(),
			Steals:              sh.steals.Load(),
		}
		if ms := sh.lastProbeMS.Load(); ms > 0 {
			row.LastProbe = time.UnixMilli(ms).UTC().Format(time.RFC3339)
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}

// Handler returns the coordinator's HTTP surface:
//
//	POST /analyze       route one analysis (serve.AnalyzeRequest in/out)
//	POST /analyzebatch  distributed batch (BatchRequest → BatchResponse)
//	GET  /healthz       coordinator Stats (always 200 while running)
//	GET  /readyz        503 when draining or the whole fleet is down
//	GET  /statz         the shard table (same Stats payload)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", c.handleAnalyze)
	mux.HandleFunc("POST /analyzebatch", c.handleBatch)
	mux.HandleFunc("GET /healthz", c.handleStatz)
	mux.HandleFunc("GET /statz", c.handleStatz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return mux
}

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req serve.AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeFleetError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("decoding request: %w", err), 0)
		return
	}
	if h := r.Header.Get("X-Flow-Principal"); h != "" {
		req.Principal = h
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		// The coordinator owns the deadline so a stalled shard attempt
		// cannot eat the whole budget before failover; shards see the
		// remaining time through context cancellation.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp, shardName, err := c.Analyze(ctx, &req)
	if err != nil {
		status, kind, retryAfter := fleetStatus(err)
		if shardName != "" {
			w.Header().Set("X-Flow-Shard", shardName)
		}
		writeFleetError(w, status, kind, err, retryAfter)
		return
	}
	w.Header().Set("X-Flow-Shard", shardName)
	if resp.Rung != "" {
		w.Header().Set("X-Flow-Rung", resp.Rung)
	}
	if resp.Cache != "" {
		w.Header().Set("X-Flow-Cache", resp.Cache)
	}
	writeFleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeFleetError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("decoding request: %w", err), 0)
		return
	}
	if h := r.Header.Get("X-Flow-Principal"); h != "" {
		req.Principal = h
	}
	resp, err := c.AnalyzeBatch(r.Context(), &req)
	if err != nil {
		status, kind, retryAfter := fleetStatus(err)
		writeFleetError(w, status, kind, err, retryAfter)
		return
	}
	writeFleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeFleetJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeFleetJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	for _, sh := range c.shards {
		if sh.routable() {
			writeFleetJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeFleetJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no-shards"})
}

// fleetStatus maps a routing failure onto HTTP. Shard-classified errors
// pass through with their original status and kind (the coordinator is
// a proxy, not a translator); the coordinator's own refusals are 503,
// and a dead transport with no HTTP status at all is a 502.
func fleetStatus(err error) (status int, kind string, retryAfter time.Duration) {
	var se *shardError
	switch {
	case errors.As(err, &se):
		if se.status == 0 {
			return http.StatusBadGateway, "shard-unreachable", 0
		}
		return se.status, se.kind, se.retryAfter
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining", 0
	case errors.Is(err, ErrNoShards):
		return http.StatusServiceUnavailable, "no-shards", 0
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "canceled", 0
	}
	return http.StatusInternalServerError, "error", 0
}

func writeFleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeFleetError(w http.ResponseWriter, status int, kind string, err error, retryAfter time.Duration) {
	switch status {
	case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	writeFleetJSON(w, status, serve.ErrorResponse{Error: err.Error(), Kind: kind})
}
