package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/merge"
	"flowcheck/internal/serve"
)

// RunInput is one batch run's inputs (the *_b64 field wins, as in
// serve.AnalyzeRequest).
type RunInput struct {
	Secret    string `json:"secret,omitempty"`
	SecretB64 string `json:"secret_b64,omitempty"`
	Public    string `json:"public,omitempty"`
	PublicB64 string `json:"public_b64,omitempty"`
}

// BatchRequest asks the fleet for the joint bound over several runs of
// one program — the distributed AnalyzeBatch.
type BatchRequest struct {
	Program   string     `json:"program"`
	Principal string     `json:"principal,omitempty"`
	Runs      []RunInput `json:"runs"`
	// TimeoutMS bounds the whole batch end to end.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRunStatus is one run's fate: where it ran, what it measured, and
// how the scheduler moved it.
type BatchRunStatus struct {
	Run   int    `json:"run"`
	Shard string `json:"shard,omitempty"`
	Bits  int64  `json:"bits"` // the run's standalone bound
	// Trapped runs are excluded from the merge (batch trap semantics: a
	// trapped run would silently weaken the joint bound) but their
	// execution facts are known.
	Trapped bool   `json:"trapped,omitempty"`
	Trap    string `json:"trap,omitempty"`
	// Error is a run-isolated failure; the run is excluded and the
	// sibling runs still produce the joint bound.
	Error string `json:"error,omitempty"`
	// Dispatches counts tries (1 = first try stuck); Stolen says a
	// non-preferred shard's worker claimed it.
	Dispatches int  `json:"dispatches"`
	Stolen     bool `json:"stolen,omitempty"`
}

// BatchResponse is the fleet's joint answer. Bits is solved at the
// coordinator over the merged per-run graphs via the same
// engine.SolveJoint seam the in-process batch uses, so it is
// bit-identical to running the batch in one process — including when
// shards died mid-batch and runs were re-dispatched.
type BatchResponse struct {
	Program           string           `json:"program"`
	Bits              int64            `json:"bits"`
	TaintedOutputBits int64            `json:"tainted_output_bits"`
	Rung              string           `json:"rung,omitempty"`
	Degraded          bool             `json:"degraded"`
	DegradedReason    string           `json:"degraded_reason,omitempty"`
	Cut               string           `json:"cut,omitempty"`
	MergedRuns        int              `json:"merged_runs"`
	Runs              []BatchRunStatus `json:"runs"`
	Redispatches      int64            `json:"redispatches"`
	Steals            int64            `json:"steals"`
	LatencyMS         float64          `json:"latency_ms"`
}

// batchRun is one queued run: its preference list position and the
// shards that already failed it.
type batchRun struct {
	idx        int
	prefs      []int // shard indices in ring preference order
	prefAt     int   // next preference to try
	tried      map[int]bool
	dispatches int
}

// runOutcome is a settled run.
type runOutcome struct {
	shard      string
	resp       *serve.AnalyzeResponse
	err        error
	dispatches int
	stolen     bool
}

// AnalyzeBatch fans the runs across every routable shard with work
// stealing and merges the surviving graphs at the coordinator. Each run
// is consistent-hashed to a preferred shard (deterministically, so
// repeated batches re-warm the same caches); idle shards steal queued
// runs from busy ones; a run whose shard fails retryably is re-enqueued
// for the next shard in its preference list — shard loss costs latency,
// not runs. Deterministic per-run failures (a trapped guest, an
// over-budget run, a 429 budget denial) are recorded and excluded from
// the merge exactly as the in-process batch excludes them, and are
// never re-dispatched: they would fail identically anywhere, and
// re-trying a 429 on a replica would circumvent the principal's budget.
func (c *Coordinator) AnalyzeBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	if c.draining.Load() {
		return nil, ErrDraining
	}
	c.inflight.Add(1)
	defer c.inflight.Done()
	c.batches.Add(1)
	start := c.opts.Now()

	if len(req.Runs) == 0 {
		return nil, fmt.Errorf("fleet: batch with no runs")
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	outcomes := make([]runOutcome, len(req.Runs))
	st := &batchState{
		cond:  sync.NewCond(&sync.Mutex{}),
		queue: make([]*batchRun, 0, len(req.Runs)),
	}
	for i := range req.Runs {
		st.queue = append(st.queue, &batchRun{
			idx:   i,
			prefs: c.ring.Lookup(runKey(req.Program, i), len(c.shards)),
			tried: map[int]bool{},
		})
	}

	var wg sync.WaitGroup
	for w := range c.shards {
		for k := 0; k < c.opts.BatchWorkersPerShard; k++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c.batchWorker(ctx, w, req, st, outcomes)
			}(w)
		}
	}
	// Wake waiting workers when the batch context dies so they can bail.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.cond.Broadcast()
		case <-stopWatch:
		}
	}()
	wg.Wait()
	close(stopWatch)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fleet: batch canceled: %w", err)
	}
	return c.mergeBatch(req, outcomes, start)
}

type batchState struct {
	cond     *sync.Cond
	queue    []*batchRun
	inflight int
	done     bool
}

// claimFor pops a run worker w may try: w's own preferred runs first,
// then anyone's (a steal). A worker whose shard is not routable claims
// only runs with no routable untried shard left — the desperation case,
// where a stale health picture beats a stuck queue. Returns nil when
// the worker should wait.
func (c *Coordinator) claimFor(st *batchState, w int) (r *batchRun, stolen bool) {
	best, bestStolen := -1, false
	for i, br := range st.queue {
		if br.tried[w] {
			continue
		}
		if !c.shards[w].routable() {
			desperate := true
			for j := range c.shards {
				if !br.tried[j] && c.shards[j].routable() {
					desperate = false
					break
				}
			}
			if !desperate {
				continue
			}
		}
		if len(br.prefs) > 0 && br.prefs[br.prefAt%len(br.prefs)] == w {
			best, bestStolen = i, false
			break
		}
		if best < 0 {
			best, bestStolen = i, true
		}
	}
	if best < 0 {
		return nil, false
	}
	r = st.queue[best]
	st.queue = append(st.queue[:best], st.queue[best+1:]...)
	st.inflight++
	return r, bestStolen
}

// batchWorker is one shard's claim loop.
func (c *Coordinator) batchWorker(ctx context.Context, w int, req *BatchRequest, st *batchState, outcomes []runOutcome) {
	sh := c.shards[w]
	for {
		st.cond.L.Lock()
		var br *batchRun
		var stolen bool
		for {
			if st.done || ctx.Err() != nil {
				st.cond.L.Unlock()
				return
			}
			if len(st.queue) == 0 && st.inflight == 0 {
				st.done = true
				st.cond.Broadcast()
				st.cond.L.Unlock()
				return
			}
			if br, stolen = c.claimFor(st, w); br != nil {
				break
			}
			st.cond.Wait()
		}
		st.cond.L.Unlock()

		br.dispatches++
		br.tried[w] = true
		if stolen {
			sh.steals.Add(1)
			c.steals.Add(1)
		}
		in := req.Runs[br.idx]
		resp, err := c.do(ctx, sh, &serve.AnalyzeRequest{
			Program:      req.Program,
			Principal:    req.Principal,
			Secret:       in.Secret,
			SecretB64:    in.SecretB64,
			Public:       in.Public,
			PublicB64:    in.PublicB64,
			IncludeGraph: true,
		})

		st.cond.L.Lock()
		st.inflight--
		settle := func(o runOutcome) {
			o.dispatches = br.dispatches
			o.stolen = stolen
			outcomes[br.idx] = o
		}
		switch {
		case err == nil:
			settle(runOutcome{shard: sh.name, resp: resp})
		case ctx.Err() != nil:
			settle(runOutcome{shard: sh.name, err: ctx.Err()})
		default:
			var se *shardError
			retryable := errors.As(err, &se) && se.retryable()
			untried := 0
			for i := range c.shards {
				if !br.tried[i] {
					untried++
				}
			}
			if retryable && untried > 0 && br.dispatches <= c.opts.MaxRedispatch {
				// Shard loss: hand the run to the next shard in its
				// preference order. The re-dispatched run produces the same
				// graph anywhere, so the merge below cannot tell.
				br.prefAt++
				st.queue = append(st.queue, br)
				c.redispatches.Add(1)
				c.log.Info("fleet: redispatching run", "program", req.Program, "run", br.idx, "from", sh.name, "err", err)
			} else {
				settle(runOutcome{shard: sh.name, err: err})
			}
		}
		st.cond.Broadcast()
		st.cond.L.Unlock()
	}
}

// mergeBatch replays the in-process batch's merge discipline over the
// shard outcomes: exclude failed and trapped runs, salt exact-mode
// labels with the run index, merge in run order, solve jointly via
// engine.SolveJoint. Identical inputs therefore yield identical bits
// whether the runs executed here, on one shard, or scattered across a
// fleet that lost a member mid-batch.
func (c *Coordinator) mergeBatch(req *BatchRequest, outcomes []runOutcome, start time.Time) (*BatchResponse, error) {
	out := &BatchResponse{
		Program: req.Program,
		Runs:    make([]BatchRunStatus, 0, len(outcomes)),
	}
	graphs := make([]*flowgraph.Graph, 0, len(outcomes))
	var failures []error
	for i, o := range outcomes {
		rs := BatchRunStatus{Run: i, Shard: o.shard, Dispatches: o.dispatches, Stolen: o.stolen}
		fail := func(err error) {
			rs.Error = err.Error()
			failures = append(failures, fmt.Errorf("run %d: %w", i, err))
		}
		switch {
		case o.err != nil:
			fail(o.err)
		case o.resp == nil:
			fail(fmt.Errorf("fleet: run never dispatched"))
		case o.resp.Trapped:
			rs.Bits = o.resp.Bits
			rs.Trapped = true
			rs.Trap = o.resp.Trap
			failures = append(failures, fmt.Errorf("run %d: trapped: %s", i, o.resp.Trap))
		case o.resp.Graph == nil:
			fail(fmt.Errorf("fleet: shard %s returned no graph (cheap precision rung?)", o.shard))
		default:
			rs.Bits = o.resp.Bits
			g, err := o.resp.Graph.Decode()
			if err == nil && o.resp.Graph.Exact {
				err = merge.SaltLabels(g, uint64(i+1))
			}
			if err != nil {
				fail(err)
			} else {
				graphs = append(graphs, g)
			}
		}
		out.Runs = append(out.Runs, rs)
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("fleet: all %d runs failed: %w", len(outcomes), errors.Join(failures...))
	}
	jr := engine.SolveJoint(graphs, c.opts.Algorithm, c.opts.SolverWork)
	out.Bits = jr.Bits
	out.TaintedOutputBits = jr.TaintedOutputBits
	out.Rung = jr.Rung
	out.Degraded = jr.Degraded
	out.DegradedReason = jr.DegradedReason
	out.Cut = jr.CutString()
	out.MergedRuns = len(graphs)
	for _, rs := range out.Runs {
		if rs.Dispatches > 1 {
			out.Redispatches += int64(rs.Dispatches - 1)
		}
		if rs.Stolen {
			out.Steals++
		}
	}
	out.LatencyMS = float64(c.opts.Now().Sub(start).Microseconds()) / 1000
	return out, nil
}
