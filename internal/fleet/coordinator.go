package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flowcheck/internal/maxflow"
	"flowcheck/internal/serve"
)

// Typed coordinator rejections.
var (
	// ErrNoShards marks a request with no live shard to serve it.
	ErrNoShards = errors.New("fleet: no healthy shards")
	// ErrDraining marks a request refused by a shutting-down coordinator.
	ErrDraining = errors.New("fleet: coordinator draining")
)

// ShardSpec names one flowserved backend.
type ShardSpec struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Options configures a Coordinator. The zero value of every knob gets a
// sensible default.
type Options struct {
	// Shards is the fleet membership. Names must be unique; they key the
	// ring, the NetPlan chaos targets, and the X-Flow-Shard header.
	Shards []ShardSpec

	// VirtualNodes per shard on the ring (default 64).
	VirtualNodes int
	// Replicas is each key's preference-list depth: how many distinct
	// shards a request may try across failover and hedging (default
	// min(3, len(Shards))).
	Replicas int

	// ProbeInterval is the health-probe cadence (default 250ms);
	// ProbeTimeout bounds one probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is how many consecutive failures mark a shard down
	// (default 2). Down shards rejoin on the next passing probe.
	FailThreshold int

	// HedgeAfter is the floor hedge delay (default 50ms); the effective
	// delay is max(HedgeAfter, HedgeMultiple × the shard's latency EWMA).
	// MaxHedges bounds duplicate launches per request (default 1); zero
	// HedgeMultiple defaults to 3. Hedging duplicates work, so it costs
	// capacity to buy tail latency — the loser is canceled and its
	// ledger charge settles to zero (serve settles canceled runs at 0).
	HedgeAfter    time.Duration
	HedgeMultiple float64
	MaxHedges     int

	// BaseBackoff/MaxBackoff shape the capped, jittered failover backoff
	// (defaults 10ms/500ms); BackoffSeed fixes the jitter for tests.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	BackoffSeed int64

	// BatchWorkersPerShard is each shard's concurrent run width during a
	// batch fan-out (default 4). MaxRedispatch bounds how many times one
	// run may be re-dispatched after shard failures (default
	// 2×len(Shards)) before the run is recorded failed.
	BatchWorkersPerShard int
	MaxRedispatch        int

	// Algorithm and SolverWork configure the coordinator's joint solve of
	// merged batch graphs; they must match the shards' configuration for
	// distributed batches to be bit-identical to in-process ones
	// (defaults: Dinic, unlimited — the engine's own defaults).
	Algorithm  maxflow.Algorithm
	SolverWork int64

	// Transport is the chaos seam: the fleet's HTTP round tripper
	// (fault.NetTransport in tests). Nil means http.DefaultTransport.
	Transport http.RoundTripper

	// Logger receives per-request routing decisions; nil disables.
	Logger *slog.Logger
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Replicas > len(o.Shards) {
		o.Replicas = len(o.Shards)
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.HedgeMultiple <= 0 {
		o.HedgeMultiple = 3
	}
	if o.MaxHedges <= 0 {
		o.MaxHedges = 1
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	if o.BatchWorkersPerShard <= 0 {
		o.BatchWorkersPerShard = 4
	}
	if o.MaxRedispatch <= 0 {
		o.MaxRedispatch = 2 * len(o.Shards)
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Coordinator fronts a fleet of flowserved shards: consistent-hash
// routing, health probing, failover, hedging, and distributed batches.
// Create with New, optionally Start the probe loop, serve Handler, and
// Close to drain.
type Coordinator struct {
	opts   Options
	log    *slog.Logger
	ring   *ring
	shards []*shard
	client *http.Client
	start  time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	draining atomic.Bool
	inflight sync.WaitGroup

	probeCancel context.CancelFunc
	probeDone   chan struct{}

	requests     atomic.Int64
	hedgesFired  atomic.Int64
	hedgeWins    atomic.Int64
	failovers    atomic.Int64
	steals       atomic.Int64
	redispatches atomic.Int64
	batches      atomic.Int64
}

// New builds a coordinator over the given shards. It does not probe:
// every shard starts healthy and the first failures or Start's probe
// loop correct the picture.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	names := make([]string, 0, len(opts.Shards))
	seen := map[string]bool{}
	for _, s := range opts.Shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("fleet: shard needs both name and url (got %q, %q)", s.Name, s.URL)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		names = append(names, s.Name)
	}
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:  opts,
		log:   opts.Logger,
		ring:  newRing(names, opts.VirtualNodes),
		start: opts.Now(),
		rng:   rand.New(rand.NewSource(opts.BackoffSeed)),
		client: &http.Client{
			Transport: opts.Transport,
		},
	}
	for _, s := range opts.Shards {
		c.shards = append(c.shards, &shard{name: s.Name, url: s.URL})
	}
	return c, nil
}

// Start launches the background health-probe loop. Optional: without it
// the coordinator still demotes shards on request failures, but down
// shards never rejoin and drain states are only discovered the hard way.
func (c *Coordinator) Start() {
	if c.probeDone != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	c.probeDone = make(chan struct{})
	go func() {
		defer close(c.probeDone)
		ticker := time.NewTicker(c.opts.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				var wg sync.WaitGroup
				for _, sh := range c.shards {
					wg.Add(1)
					go func(sh *shard) {
						defer wg.Done()
						c.probe(ctx, sh)
					}(sh)
				}
				wg.Wait()
			}
		}
	}()
}

// Close drains the coordinator: new requests are refused with
// ErrDraining, the probe loop stops, and Close returns once in-flight
// requests finish.
func (c *Coordinator) Close() {
	c.draining.Store(true)
	if c.probeCancel != nil {
		c.probeCancel()
		<-c.probeDone
	}
	c.inflight.Wait()
}

// Draining reports whether Close has begun.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// candidates is the key's live preference list: the ring order filtered
// to routable shards. When nothing is routable it falls back to the full
// ring order — the health picture may be stale, and a refused desperate
// attempt is better than refusing the client outright.
func (c *Coordinator) candidates(key uint64) []*shard {
	order := c.ring.Lookup(key, c.opts.Replicas)
	out := make([]*shard, 0, len(order))
	for _, i := range order {
		if c.shards[i].routable() {
			out = append(out, c.shards[i])
		}
	}
	if len(out) == 0 {
		for _, i := range order {
			out = append(out, c.shards[i])
		}
	}
	return out
}

// backoff is the capped, jittered failover delay before the k-th
// failover attempt (k ≥ 1): base·2^(k-1) capped, jittered into [d/2, d].
func (c *Coordinator) backoff(k int) time.Duration {
	d := c.opts.BaseBackoff << (k - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// hedgeDelay is how long the coordinator waits on a shard before
// launching the duplicate: a multiple of the shard's latency budget,
// floored so cold shards are not hedged instantly.
func (c *Coordinator) hedgeDelay(sh *shard) time.Duration {
	d := c.opts.HedgeAfter
	if b := sh.latencyBudgetUS(); b > 0 {
		m := time.Duration(float64(b)*c.opts.HedgeMultiple) * time.Microsecond
		if m > d {
			d = m
		}
	}
	return d
}

// Analyze routes one request: primary attempt on the program's home
// shard, a hedged duplicate on the next replica when the primary
// exceeds its latency budget, and failover with capped backoff on
// retryable failures. The first sound answer wins and every other
// in-flight attempt is canceled — a canceled shard run settles its
// ledger charge to zero, so the race never double-charges the
// principal.
func (c *Coordinator) Analyze(ctx context.Context, req *serve.AnalyzeRequest) (*serve.AnalyzeResponse, string, error) {
	if c.draining.Load() {
		return nil, "", ErrDraining
	}
	c.inflight.Add(1)
	defer c.inflight.Done()
	c.requests.Add(1)

	cands := c.candidates(programKey(req.Program))
	if len(cands) == 0 {
		return nil, "", ErrNoShards
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp   *serve.AnalyzeResponse
		err    error
		sh     *shard
		hedged bool
	}
	results := make(chan outcome, len(cands))
	next, outstanding := 0, 0
	launch := func(delay time.Duration, hedged, failover bool) {
		sh := cands[next]
		next++
		outstanding++
		if hedged {
			sh.hedges.Add(1)
			c.hedgesFired.Add(1)
		}
		if failover {
			sh.failovers.Add(1)
			c.failovers.Add(1)
		}
		go func() {
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-rctx.Done():
					t.Stop()
					results <- outcome{err: &shardError{shard: sh.name, err: rctx.Err()}, sh: sh}
					return
				case <-t.C:
				}
			}
			resp, err := c.do(rctx, sh, req)
			results <- outcome{resp: resp, err: err, sh: sh, hedged: hedged}
		}()
	}

	launch(0, false, false)
	var hedgeCh <-chan time.Time
	if next < len(cands) && c.opts.MaxHedges > 0 {
		t := time.NewTimer(c.hedgeDelay(cands[0]))
		defer t.Stop()
		hedgeCh = t.C
	}
	hedges, failoverK := 0, 0
	var lastErr error
	for outstanding > 0 {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if hedges < c.opts.MaxHedges && next < len(cands) {
				hedges++
				c.log.Info("fleet: hedging", "program", req.Program, "to", cands[next].name)
				launch(0, true, false)
			}
		case out := <-results:
			outstanding--
			if out.err == nil {
				cancel()
				if out.hedged {
					out.sh.hedgeWins.Add(1)
					c.hedgeWins.Add(1)
				}
				return out.resp, out.sh.name, nil
			}
			var se *shardError
			if errors.As(out.err, &se) && !se.retryable() {
				// Deterministic refusals (429 above all) end the race: a
				// replica answering what this shard denied would defeat the
				// denial, not route around a failure.
				cancel()
				return nil, out.sh.name, out.err
			}
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			lastErr = out.err
			if next < len(cands) {
				failoverK++
				c.log.Info("fleet: failover", "program", req.Program, "from", out.sh.name, "to", cands[next].name, "err", out.err)
				launch(c.backoff(failoverK), false, true)
			}
		}
	}
	if lastErr == nil {
		lastErr = ErrNoShards
	}
	return nil, "", lastErr
}
