package fleet

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/ledger"
	"flowcheck/internal/serve"
)

// testShard is one in-process flowserved: a real serve.Service behind a
// real HTTP listener, exactly what the coordinator fronts in production.
type testShard struct {
	name string
	svc  *serve.Service
	ts   *httptest.Server
	led  *ledger.Ledger
}

// newTestShard boots a shard serving the unary guest with cfg.
func newTestShard(t *testing.T, name string, cfg engine.Config, opts serve.Options) *testShard {
	t.Helper()
	opts.ShardName = name
	svc := serve.New(opts)
	svc.Register("unary", guest.Program("unary"), cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return &testShard{name: name, svc: svc, ts: ts, led: opts.Ledger}
}

func newTestCoordinator(t *testing.T, opts Options, shards ...*testShard) *Coordinator {
	t.Helper()
	for _, sh := range shards {
		opts.Shards = append(opts.Shards, ShardSpec{Name: sh.name, URL: sh.ts.URL})
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func unaryRequest(secret byte) *serve.AnalyzeRequest {
	return &serve.AnalyzeRequest{
		Program:   "unary",
		SecretB64: base64.StdEncoding.EncodeToString([]byte{secret}),
	}
}

func unaryDirect(t *testing.T, secret byte) *engine.Result {
	t.Helper()
	res, err := engine.Analyze(guest.Program("unary"), engine.Inputs{Secret: []byte{secret}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// unaryPrimary reports which of the two named shards owns the unary
// program on the ring, so tests can place faults on the primary
// deterministically.
func unaryPrimary(names ...string) int {
	return newRing(names, 64).Lookup(programKey("unary"), len(names))[0]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Routing: the answer matches a direct engine run bit for bit, and the
// same program lands on the same shard request after request — the cache
// affinity consistent hashing exists for.
func TestAnalyzeMatchesDirectAndSticksToOneShard(t *testing.T) {
	a := newTestShard(t, "a", engine.Config{}, serve.Options{})
	b := newTestShard(t, "b", engine.Config{}, serve.Options{})
	c := newTestCoordinator(t, Options{}, a, b)

	want := unaryDirect(t, 200)
	homes := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp, shardName, err := c.Analyze(context.Background(), unaryRequest(200))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Bits != want.Bits {
			t.Fatalf("fleet bits %d != direct %d", resp.Bits, want.Bits)
		}
		homes[shardName] = true
	}
	if len(homes) != 1 {
		t.Fatalf("program moved between shards with no failures: %v", homes)
	}
}

// Failover: the primary is dead at the TCP level; the request must
// succeed on the replica, the failover be counted, and the dead shard be
// demoted so later requests skip it.
func TestFailoverOnDeadPrimary(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	live := newTestShard(t, "live", engine.Config{}, serve.Options{})
	// Give the dead listener the ring's preferred name so the first
	// attempt deterministically hits it.
	names := []string{"x", "y"}
	primary := unaryPrimary(names...)
	deadName, liveName := names[primary], names[1-primary]
	c, err := New(Options{
		Shards: []ShardSpec{
			{Name: deadName, URL: deadURL},
			{Name: liveName, URL: live.ts.URL},
		},
		FailThreshold: 1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := unaryDirect(t, 7)
	resp, shardName, err := c.Analyze(context.Background(), unaryRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	if shardName != liveName || resp.Bits != want.Bits {
		t.Fatalf("answer came from %q with %d bits, want %s/%d", shardName, resp.Bits, liveName, want.Bits)
	}
	if c.failovers.Load() == 0 {
		t.Fatal("failover not counted")
	}
	if st := c.shards[0].getState(); st != StateDown {
		t.Fatalf("dead shard state %v, want down (FailThreshold 1)", st)
	}

	// Demoted shards get no traffic: the next request goes straight to
	// the live shard with no additional failover.
	before := c.failovers.Load()
	if _, shardName, err = c.Analyze(context.Background(), unaryRequest(7)); err != nil || shardName != liveName {
		t.Fatalf("post-demotion request: shard %q err %v", shardName, err)
	}
	if c.failovers.Load() != before {
		t.Fatal("routing around a down shard must not count as failover")
	}
}

// Hedging: the primary stalls mid-execution; the duplicate launched on
// the replica must win the race, the caller must get the (identical)
// answer fast, and the loser's cancellation must not demote the stalled
// shard.
func TestHedgeWinsOnStallingPrimary(t *testing.T) {
	stallCfg := engine.Config{Fault: fault.NewPlan().Every(fault.Injection{StallAtStep: 1, StallFor: 500 * time.Millisecond})}
	names := []string{"a", "b"}
	primary := unaryPrimary(names...)
	cfgs := map[int]engine.Config{primary: stallCfg, 1 - primary: {}}

	a := newTestShard(t, "a", cfgs[0], serve.Options{})
	b := newTestShard(t, "b", cfgs[1], serve.Options{})
	c := newTestCoordinator(t, Options{HedgeAfter: 5 * time.Millisecond}, a, b)

	want := unaryDirect(t, 42)
	start := time.Now()
	resp, shardName, err := c.Analyze(context.Background(), unaryRequest(42))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bits != want.Bits {
		t.Fatalf("hedged answer %d bits, want %d", resp.Bits, want.Bits)
	}
	if shardName != names[1-primary] {
		t.Fatalf("winner %q, want the hedged replica %q", shardName, names[1-primary])
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge took %v; the caller waited out the stall", elapsed)
	}
	if c.hedgesFired.Load() != 1 || c.hedgeWins.Load() != 1 {
		t.Fatalf("hedges fired %d won %d, want 1/1", c.hedgesFired.Load(), c.hedgeWins.Load())
	}
	// The stalled primary lost a race; it did not fail.
	if st := c.shards[primary].getState(); st == StateDown {
		t.Fatal("losing a hedge race demoted the shard")
	}
}

// A 429 budget denial must end the request: failing over to a replica
// whose ledger has not seen the spend would circumvent the principal's
// fleet-wide budget by design.
func Test429NeverFailsOver(t *testing.T) {
	names := []string{"deny", "other"}
	primary := unaryPrimary(names...)

	denying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "budget exceeded", Kind: "budget-exceeded"})
	}))
	t.Cleanup(denying.Close)
	other := newTestShard(t, "spare", engine.Config{}, serve.Options{})

	specs := make([]ShardSpec, 2)
	specs[primary] = ShardSpec{Name: names[primary], URL: denying.URL}
	specs[1-primary] = ShardSpec{Name: names[1-primary], URL: other.ts.URL}
	c, err := New(Options{Shards: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, shardName, err := c.Analyze(context.Background(), unaryRequest(9))
	if err == nil {
		t.Fatal("budget denial answered successfully")
	}
	var se *shardError
	if !errors.As(err, &se) || se.status != http.StatusTooManyRequests {
		t.Fatalf("error %v, want a 429 shardError", err)
	}
	if se.kind != "budget-exceeded" || se.retryAfter != 7*time.Second {
		t.Fatalf("shardError kind %q retryAfter %v, want budget-exceeded/7s", se.kind, se.retryAfter)
	}
	if shardName != names[primary] {
		t.Fatalf("denial attributed to %q, want %q", shardName, names[primary])
	}
	// The replica never saw the request.
	if got := c.shards[1-primary].requests.Load(); got != 0 {
		t.Fatalf("replica served %d requests after a 429; budget circumvented", got)
	}
	if c.failovers.Load() != 0 {
		t.Fatal("429 counted as failover")
	}
}

// The drain-vs-hedge race of ISSUE 10: the primary stalls, the hedge
// duplicates the request onto the replica, and the primary enters drain
// while both are in flight. The principal must be charged for exactly
// one analysis across the whole fleet — the winner settles its measured
// bits, the canceled loser settles to zero.
func TestDrainDuringHedgeSettlesExactlyOneCharge(t *testing.T) {
	openLedger := func() *ledger.Ledger {
		led, err := ledger.Open(ledger.Options{BudgetBits: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { led.Close() })
		return led
	}

	stallCfg := engine.Config{Fault: fault.NewPlan().Every(fault.Injection{StallAtStep: 1, StallFor: 300 * time.Millisecond})}
	names := []string{"a", "b"}
	primary := unaryPrimary(names...)
	cfgs := map[int]engine.Config{primary: stallCfg, 1 - primary: {}}

	ledgers := []*ledger.Ledger{openLedger(), openLedger()}
	a := newTestShard(t, "a", cfgs[0], serve.Options{Ledger: ledgers[0]})
	b := newTestShard(t, "b", cfgs[1], serve.Options{Ledger: ledgers[1]})
	shards := []*testShard{a, b}
	c := newTestCoordinator(t, Options{HedgeAfter: 5 * time.Millisecond}, a, b)

	// The moment the hedge fires (primary stalled, duplicate launched),
	// the primary starts draining — the exact race the ledger must
	// survive without double-charging.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		deadline := time.Now().Add(5 * time.Second)
		for c.hedgesFired.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		shards[primary].svc.StartDrain()
	}()

	want := unaryDirect(t, 64)
	req := unaryRequest(64)
	req.Principal = "alice"
	resp, shardName, err := c.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	<-drained
	if shardName != names[1-primary] || resp.Bits != want.Bits {
		t.Fatalf("winner %q bits %d, want %q/%d", shardName, resp.Bits, names[1-primary], want.Bits)
	}

	// The loser's charge settles (to zero) once its canceled run unwinds
	// past the stall; wait for both ledgers to go quiescent.
	pending := func() int64 {
		var n int64
		for _, led := range ledgers {
			for _, e := range led.Stats().Entries {
				n += e.PendingBits
			}
		}
		return n
	}
	waitFor(t, "all charges settled", func() bool { return pending() == 0 })

	var settled int64
	for _, led := range ledgers {
		for _, e := range led.Stats().Entries {
			if e.Principal != "alice" {
				t.Fatalf("unexpected principal %q in ledger", e.Principal)
			}
			settled += e.SettledBits
		}
	}
	if settled != want.Bits {
		t.Fatalf("fleet-wide settled bits = %d, want exactly one charge of %d", settled, want.Bits)
	}
	if got := ledgers[primary].Cumulative("alice", "unary"); got != 0 {
		t.Fatalf("canceled loser settled %d bits, want 0", got)
	}
	if got := ledgers[1-primary].Cumulative("alice", "unary"); got != want.Bits {
		t.Fatalf("winner settled %d bits, want %d", got, want.Bits)
	}
}

// Probing heals: a shard marked down rejoins the ring after a passing
// probe, and a draining shard is discovered and routed around.
func TestProbeRejoinAndDrainDiscovery(t *testing.T) {
	a := newTestShard(t, "a", engine.Config{}, serve.Options{})
	b := newTestShard(t, "b", engine.Config{}, serve.Options{})
	c := newTestCoordinator(t, Options{ProbeInterval: 5 * time.Millisecond}, a, b)
	c.Start()

	c.shards[0].setState(StateDown)
	waitFor(t, "down shard to rejoin", func() bool { return c.shards[0].getState() == StateHealthy })

	b.svc.StartDrain()
	waitFor(t, "draining shard to be discovered", func() bool { return c.shards[1].getState() == StateDraining })
	if c.shards[1].routable() {
		t.Fatal("draining shard still routable")
	}
}

// The coordinator's own HTTP surface: X-Flow-Shard on answers, the
// /statz shard table, readyz flipping on drain, and Retry-After on the
// draining refusal.
func TestCoordinatorHTTPSurface(t *testing.T) {
	a := newTestShard(t, "a", engine.Config{}, serve.Options{})
	b := newTestShard(t, "b", engine.Config{}, serve.Options{})
	c := newTestCoordinator(t, Options{}, a, b)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	// The shards themselves stamp X-Flow-Shard on every response.
	sresp, err := http.Get(a.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := sresp.Header.Get("X-Flow-Shard"); got != "a" {
		t.Fatalf("shard healthz X-Flow-Shard = %q, want a", got)
	}

	body := `{"program":"unary","secret_b64":"` + base64.StdEncoding.EncodeToString([]byte{200}) + `"}`
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Flow-Shard") == "" {
		t.Fatal("coordinator response missing X-Flow-Shard")
	}

	statz, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer statz.Body.Close()
	var st Stats
	if err := json.NewDecoder(statz.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || st.Requests != 1 || st.Healthy != 2 {
		t.Fatalf("statz %+v, want 2 shards, 1 request, 2 healthy", st)
	}
	for _, row := range st.Shards {
		if row.State == "" || row.URL == "" || row.RingVNodes == 0 {
			t.Fatalf("incomplete shard row %+v", row)
		}
	}

	ready, _ := http.Get(ts.URL + "/readyz")
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d while healthy", ready.StatusCode)
	}

	c.Close()
	ready, _ = http.Get(ts.URL + "/readyz")
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while draining, want 503", ready.StatusCode)
	}
	denied, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer denied.Body.Close()
	if denied.StatusCode != http.StatusServiceUnavailable || denied.Header.Get("Retry-After") == "" {
		t.Fatalf("draining analyze: status %d Retry-After %q, want 503 with a hint",
			denied.StatusCode, denied.Header.Get("Retry-After"))
	}
}
