package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func TestRingDeterministic(t *testing.T) {
	r1 := newRing(ringNames(5), 64)
	r2 := newRing(ringNames(5), 64)
	for i := 0; i < 200; i++ {
		key := runKey("prog", i)
		if a, b := r1.Lookup(key, 3), r2.Lookup(key, 3); !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: rebuilt ring disagrees: %v vs %v", i, a, b)
		}
	}
}

func TestRingLookupDistinctShards(t *testing.T) {
	r := newRing(ringNames(4), 64)
	for i := 0; i < 100; i++ {
		prefs := r.Lookup(programKey(fmt.Sprintf("p%d", i)), 4)
		if len(prefs) != 4 {
			t.Fatalf("key p%d: %d prefs, want 4", i, len(prefs))
		}
		seen := map[int]bool{}
		for _, s := range prefs {
			if s < 0 || s >= 4 || seen[s] {
				t.Fatalf("key p%d: bad preference list %v", i, prefs)
			}
			seen[s] = true
		}
	}
	// Asking for more replicas than shards clamps.
	if prefs := r.Lookup(programKey("x"), 99); len(prefs) != 4 {
		t.Fatalf("over-asked lookup returned %d shards", len(prefs))
	}
}

// TestRingBalance sanity-checks that 64 vnodes/shard spread keys without
// gross hot spots: every shard should own a reasonable share of 10k keys.
func TestRingBalance(t *testing.T) {
	const shards, keys = 5, 10000
	r := newRing(ringNames(shards), 64)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(runKey("bench", i), 1)[0]]++
	}
	fair := keys / shards
	for s, n := range counts {
		if n < fair/3 || n > fair*3 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): %v", s, n, keys, fair, counts)
		}
	}
}

// TestRingStabilityUnderMembershipChange pins the consistent-hashing
// property the coordinator's failover depends on: removing one shard
// must not reshuffle keys among the survivors — every key either stays
// put or moves to the removed shard's next replica.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := newRing([]string{"a", "b", "c", "d"}, 64)
	// Dropping "d": the survivors keep their names, so their vnode hashes
	// are unchanged and each key's survivor order is preserved.
	less := newRing([]string{"a", "b", "c"}, 64)
	moved := 0
	for i := 0; i < 2000; i++ {
		key := runKey("stability", i)
		fullOrder := full.Lookup(key, 4)
		lessOwner := less.Lookup(key, 1)[0]
		// The smaller ring's owner must be the full ring's first owner
		// that is not shard 3 ("d").
		want := fullOrder[0]
		if want == 3 {
			want = fullOrder[1]
			moved++
		}
		if lessOwner != want {
			t.Fatalf("key %d: owner %d after removal, want %d (full order %v)", i, lessOwner, want, fullOrder)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed shard; test proves nothing")
	}
}

func TestRingSpread(t *testing.T) {
	r := newRing(ringNames(3), 16)
	spread := r.Spread()
	total := 0
	for _, n := range spread {
		total += n
	}
	if total != 48 || len(spread) != 3 {
		t.Fatalf("spread %v, want 3 shards × 16 vnodes", spread)
	}
}

func TestProgramKeyStable(t *testing.T) {
	if programKey("sshauth") != programKey("sshauth") {
		t.Fatal("programKey not deterministic")
	}
	if programKey("sshauth") == programKey("unary") {
		t.Fatal("distinct programs collided (astronomically unlikely)")
	}
	if runKey("p", 0) == runKey("p", 1) {
		t.Fatal("distinct runs collided (astronomically unlikely)")
	}
}
