package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"flowcheck/internal/serve"
)

// ShardState is a shard's liveness as the coordinator sees it.
type ShardState int32

const (
	// StateHealthy: probes pass, requests route here.
	StateHealthy ShardState = iota
	// StateSuspect: a recent failure; still routable, next in line for
	// demotion. A passing probe or request heals it.
	StateSuspect
	// StateDown: consecutive failures crossed the threshold; the shard
	// gets no traffic until a probe passes (rejoin).
	StateDown
	// StateDraining: the shard reported draining; it refuses work before
	// charging any ledger, so the coordinator routes around it.
	StateDraining
)

func (s ShardState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// shard is one flowserved backend: its address, the coordinator's view
// of its health and latency, and its traffic counters.
type shard struct {
	name string
	url  string // base URL, no trailing slash

	state       atomic.Int32 // ShardState
	consecFails atomic.Int32

	// ewmaUS is the coordinator-observed request RTT EWMA; reportedUS is
	// the shard's own per-run EWMA from /healthz. The hedge budget uses
	// whichever is larger — the shard knows its queue, the coordinator
	// knows the network.
	ewmaUS      atomic.Int64
	reportedUS  atomic.Int64
	lastProbeMS atomic.Int64 // unix ms of the last probe attempt

	requests  atomic.Int64
	failures  atomic.Int64
	hedges    atomic.Int64 // duplicate requests launched against this shard
	hedgeWins atomic.Int64 // hedged duplicates that won the race
	failovers atomic.Int64 // requests landed here after another shard failed
	steals    atomic.Int64 // batch runs stolen from another shard's queue
}

func (sh *shard) getState() ShardState  { return ShardState(sh.state.Load()) }
func (sh *shard) setState(s ShardState) { sh.state.Store(int32(s)) }

// routable says the shard should receive normal traffic.
func (sh *shard) routable() bool {
	s := sh.getState()
	return s == StateHealthy || s == StateSuspect
}

// observe folds one measured RTT into the coordinator-side EWMA
// (α = 0.2, the same smoothing serve's admission controller uses).
func (sh *shard) observe(rtt time.Duration) {
	us := rtt.Microseconds()
	for {
		old := sh.ewmaUS.Load()
		var next int64
		if old == 0 {
			next = us
		} else {
			next = old + (us-old)/5
		}
		if sh.ewmaUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// latencyBudgetUS is the hedge trigger: the worse of the two latency
// views, or zero when neither has data yet.
func (sh *shard) latencyBudgetUS() int64 {
	a, b := sh.ewmaUS.Load(), sh.reportedUS.Load()
	if b > a {
		a = b
	}
	return a
}

// noteFailure records a failed request or probe and demotes the shard:
// suspect on the first failure, down once consecutive failures reach
// threshold.
func (sh *shard) noteFailure(threshold int) {
	sh.failures.Add(1)
	n := sh.consecFails.Add(1)
	if int(n) >= threshold {
		sh.setState(StateDown)
	} else if sh.getState() == StateHealthy {
		sh.setState(StateSuspect)
	}
}

// noteSuccess heals the shard back to healthy (rejoin when it was down).
func (sh *shard) noteSuccess() {
	sh.consecFails.Store(0)
	if sh.getState() != StateDraining {
		sh.setState(StateHealthy)
	}
}

// shardError is a shard's refusal or failure, classified for the
// failover policy. status 0 means the transport failed before any HTTP
// status arrived.
type shardError struct {
	shard      string
	status     int
	kind       string // ErrorResponse.Kind when the shard answered
	retryAfter time.Duration
	err        error
}

func (e *shardError) Error() string {
	if e.status == 0 {
		return fmt.Sprintf("fleet: shard %s: %v", e.shard, e.err)
	}
	return fmt.Sprintf("fleet: shard %s: HTTP %d (%s): %v", e.shard, e.status, e.kind, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// retryable says another shard (or a later try) could still answer this
// request. Transport failures and service-side unavailability are; a
// 429 budget denial is NOT — the principal is out of leakage budget
// fleet-wide by intent, and failing over to a replica whose ledger has
// not seen the spend would be deliberate budget circumvention. The
// deterministic 4xx failures would just fail identically elsewhere.
func (e *shardError) retryable() bool {
	if e.status == 0 {
		return true
	}
	switch e.status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one /analyze call against one shard and classifies the
// outcome. A 200 updates the latency EWMA and heals the shard; failures
// demote it per the coordinator's threshold.
func (c *Coordinator) do(ctx context.Context, sh *shard, req *serve.AnalyzeRequest) (*serve.AnalyzeResponse, error) {
	sh.requests.Add(1)
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &shardError{shard: sh.name, status: http.StatusBadRequest, kind: "bad-request", err: err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+"/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, &shardError{shard: sh.name, status: http.StatusBadRequest, kind: "bad-request", err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")

	t0 := c.opts.Now()
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			// Our own cancellation (a lost hedge race, a caller timeout) is
			// not the shard's failure; don't demote it for our impatience.
			return nil, &shardError{shard: sh.name, err: ctx.Err()}
		}
		sh.noteFailure(c.opts.FailThreshold)
		return nil, &shardError{shard: sh.name, err: err}
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		if ctx.Err() != nil {
			return nil, &shardError{shard: sh.name, err: ctx.Err()}
		}
		sh.noteFailure(c.opts.FailThreshold)
		return nil, &shardError{shard: sh.name, err: fmt.Errorf("reading response: %w", err)}
	}

	if hresp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		_ = json.Unmarshal(payload, &er)
		se := &shardError{
			shard:  sh.name,
			status: hresp.StatusCode,
			kind:   er.Kind,
			err:    errors.New(er.Error),
		}
		if er.Error == "" {
			se.err = fmt.Errorf("HTTP %d", hresp.StatusCode)
		}
		if ra := hresp.Header.Get("Retry-After"); ra != "" {
			var secs int64
			if _, perr := fmt.Sscan(ra, &secs); perr == nil && secs > 0 {
				se.retryAfter = time.Duration(secs) * time.Second
			}
		}
		// Overload, draining, and breaker refusals are the service
		// protecting itself, not evidence the process is gone: route
		// around without demoting. Real 5xx internals demote.
		if se.status == http.StatusInternalServerError || se.status == http.StatusBadGateway {
			sh.noteFailure(c.opts.FailThreshold)
		} else if se.kind == "draining" {
			sh.setState(StateDraining)
		}
		return nil, se
	}

	var out serve.AnalyzeResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		sh.noteFailure(c.opts.FailThreshold)
		return nil, &shardError{shard: sh.name, err: fmt.Errorf("decoding response: %w", err)}
	}
	sh.observe(c.opts.Now().Sub(t0))
	sh.noteSuccess()
	return &out, nil
}

// probe refreshes one shard's health from /healthz: liveness, the
// shard's own latency EWMA, and its draining flag.
func (c *Coordinator) probe(ctx context.Context, sh *shard) {
	sh.lastProbeMS.Store(c.opts.Now().UnixMilli())
	pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		sh.noteFailure(c.opts.FailThreshold)
		return
	}
	hresp, err := c.client.Do(hreq)
	if err != nil {
		sh.noteFailure(c.opts.FailThreshold)
		return
	}
	defer hresp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 8<<20)).Decode(&st); err != nil || hresp.StatusCode != http.StatusOK {
		sh.noteFailure(c.opts.FailThreshold)
		return
	}
	sh.reportedUS.Store(st.EWMALatencyUS)
	sh.consecFails.Store(0)
	if st.Draining {
		sh.setState(StateDraining)
	} else {
		sh.setState(StateHealthy)
	}
}
