package fleet

import (
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowcheck/internal/engine"
	"flowcheck/internal/fault"
	"flowcheck/internal/guest"
	"flowcheck/internal/ledger"
	"flowcheck/internal/serve"
	"flowcheck/internal/taint"
)

// chaosFleet is N real serve.Services behind real listeners, fronted by
// a coordinator whose transport runs through a fault.NetPlan — the whole
// production stack, minus the network being real.
type chaosFleet struct {
	shards  []*testShard
	ledgers []*ledger.Ledger
	coord   *Coordinator
	base    *http.Transport
}

func newChaosFleet(t *testing.T, n int, cfg engine.Config, plan *fault.NetPlan, opts Options) *chaosFleet {
	t.Helper()
	f := &chaosFleet{base: &http.Transport{}}
	t.Cleanup(f.base.CloseIdleConnections)
	hostToName := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		led, err := ledger.Open(ledger.Options{BudgetBits: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { led.Close() })
		svc := serve.New(serve.Options{ShardName: name, Ledger: led})
		svc.Register("unary", guest.Program("unary"), cfg)
		svc.Register("count_punct", guest.Program("count_punct"), cfg)
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		hostToName[ts.Listener.Addr().String()] = name
		f.shards = append(f.shards, &testShard{name: name, svc: svc, ts: ts, led: led})
		f.ledgers = append(f.ledgers, led)
		opts.Shards = append(opts.Shards, ShardSpec{Name: name, URL: ts.URL})
	}
	opts.Transport = &fault.NetTransport{
		Base: f.base,
		Plan: plan,
		Target: func(r *http.Request) string {
			if name, ok := hostToName[r.URL.Host]; ok {
				return name
			}
			return r.URL.Host
		},
	}
	coord, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	f.coord = coord
	return f
}

// The headline guarantee of ISSUE 10: a distributed batch whose shard
// dies mid-batch still produces the exact bits a single process would
// have, because the surviving runs are re-dispatched and the merge goes
// through the same engine.SolveJoint seam.
func TestBatchBitIdenticalUnderShardKill(t *testing.T) {
	for _, exact := range []bool{false, true} {
		name := "collapsed"
		if exact {
			name = "exact"
		}
		t.Run(name, func(t *testing.T) {
			cfg := engine.Config{Taint: taint.Options{Exact: exact}}

			// Shard s1 serves one batch request, then drops off the network
			// for good — the transport-level kill -9.
			plan := fault.NewNetPlan().Partition("s1", 1, 1<<30)
			f := newChaosFleet(t, 3, cfg, plan, Options{
				FailThreshold:        1,
				BaseBackoff:          time.Millisecond,
				MaxBackoff:           2 * time.Millisecond,
				BatchWorkersPerShard: 2,
			})

			const nRuns = 12
			req := &BatchRequest{Program: "unary"}
			inputs := make([]engine.Inputs, nRuns)
			for i := 0; i < nRuns; i++ {
				secret := []byte{byte(3 + i*17)}
				inputs[i] = engine.Inputs{Secret: secret}
				req.Runs = append(req.Runs, RunInput{SecretB64: base64.StdEncoding.EncodeToString(secret)})
			}
			want, err := engine.New(guest.Program("unary"), cfg).AnalyzeBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}

			resp, err := f.coord.AnalyzeBatch(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.MergedRuns != nRuns {
				t.Fatalf("merged %d of %d runs: %+v", resp.MergedRuns, nRuns, resp.Runs)
			}
			if resp.Bits != want.Bits {
				t.Fatalf("distributed batch %d bits, single-process %d — NOT bit-identical", resp.Bits, want.Bits)
			}
			if resp.Redispatches == 0 {
				t.Fatal("the killed shard's runs were never re-dispatched; the kill did not bite")
			}
			for _, rs := range resp.Runs {
				if rs.Error != "" || rs.Trapped {
					t.Fatalf("run %d lost to the shard kill: %+v", rs.Run, rs)
				}
			}
		})
	}
}

// The seeded chaos soak of ISSUE 10's acceptance criterion: a mixed
// fault.RandomNet plan (refused connections, stalls, mid-body cuts,
// partitions) over 100+ concurrent requests with hedging and failover
// racing everywhere. Invariants: every answered request is bit-exact
// (zero unsound answers), the fleet's ledgers end quiescent with no
// charge left pending, and draining leaks no goroutines.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	baseGoroutines := runtime.NumGoroutine()

	const seed = 20260807
	plan := fault.RandomNet(seed, []string{"s0", "s1", "s2"}, 300)
	f := newChaosFleet(t, 3, engine.Config{}, plan, Options{
		FailThreshold: 2,
		ProbeInterval: 20 * time.Millisecond,
		HedgeAfter:    2 * time.Millisecond,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
	})
	f.coord.Start()

	// Precompute ground truth: the analysis is deterministic, so any
	// answer that differs from a direct engine run is unsound.
	type workItem struct {
		program string
		secret  []byte
	}
	var work []workItem
	for i := 0; i < 4; i++ {
		work = append(work, workItem{"unary", []byte{byte(40 * (i + 1))}})
		work = append(work, workItem{"count_punct", []byte(fmt.Sprintf("hello, world %d!?", i))})
	}
	expected := make(map[int]int64, len(work))
	for i, w := range work {
		res, err := engine.Analyze(guest.Program(w.program), engine.Inputs{Secret: w.secret}, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = res.Bits
	}

	const requests = 140
	const workers = 10
	var ok, failed, unsound atomic.Int64
	var okBits atomic.Int64 // Σ expected bits over answered requests
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				item := work[i%len(work)]
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				resp, _, err := f.coord.Analyze(ctx, &serve.AnalyzeRequest{
					Program:   item.program,
					SecretB64: base64.StdEncoding.EncodeToString(item.secret),
				})
				cancel()
				switch {
				case err != nil:
					failed.Add(1)
				case resp.Bits != expected[i%len(work)]:
					unsound.Add(1)
					t.Errorf("request %d (%s): got %d bits, want %d — UNSOUND", i, item.program, resp.Bits, expected[i%len(work)])
				default:
					ok.Add(1)
					okBits.Add(expected[i%len(work)])
				}
			}
		}()
	}

	// Two distributed batches race the singles through the same chaos.
	batchInputs := make([]engine.Inputs, 8)
	batchReq := &BatchRequest{Program: "unary"}
	for i := range batchInputs {
		secret := []byte{byte(5 + i*11)}
		batchInputs[i] = engine.Inputs{Secret: secret}
		batchReq.Runs = append(batchReq.Runs, RunInput{SecretB64: base64.StdEncoding.EncodeToString(secret)})
	}
	var batchResults [2]*BatchResponse
	for b := range batchResults {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			resp, err := f.coord.AnalyzeBatch(ctx, batchReq)
			if err != nil {
				t.Logf("batch %d failed under chaos: %v", b, err)
				return
			}
			batchResults[b] = resp
		}(b)
	}
	wg.Wait()

	t.Logf("soak: %d ok, %d failed, %d unsound; coordinator %+v",
		ok.Load(), failed.Load(), unsound.Load(), f.coord.Stats())
	if unsound.Load() != 0 {
		t.Fatalf("%d unsound answers", unsound.Load())
	}
	if ok.Load() < requests*3/4 {
		t.Fatalf("only %d/%d requests answered; the fleet did not route around the chaos", ok.Load(), requests)
	}

	// Batch soundness: the merged bits must equal a single-process batch
	// over exactly the runs that merged — shard loss may shrink the merge
	// (recorded per run), never skew it.
	for b, resp := range batchResults {
		if resp == nil {
			continue
		}
		var mergedInputs []engine.Inputs
		for _, rs := range resp.Runs {
			if rs.Error == "" && !rs.Trapped {
				mergedInputs = append(mergedInputs, batchInputs[rs.Run])
			}
		}
		if len(mergedInputs) != resp.MergedRuns {
			t.Fatalf("batch %d: %d clean runs but MergedRuns=%d", b, len(mergedInputs), resp.MergedRuns)
		}
		want, err := engine.New(guest.Program("unary"), engine.Config{}).AnalyzeBatch(mergedInputs)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Bits != want.Bits {
			t.Fatalf("batch %d: distributed %d bits over %d runs, single-process %d — UNSOUND",
				b, resp.Bits, resp.MergedRuns, want.Bits)
		}
	}

	// Drain the whole fleet and check the ledger invariants: nothing
	// pending (every charge settled, hedging and cancellation included),
	// and total settled bits consistent with the answers released.
	f.coord.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var totalShardRequests int64
	for _, sh := range f.shards {
		sh.svc.StartDrain()
		if err := sh.svc.Drain(drainCtx); err != nil {
			t.Fatalf("shard %s drain: %v", sh.name, err)
		}
		totalShardRequests += sh.svc.Stats().Admitted
	}
	var pending, settled int64
	for _, led := range f.ledgers {
		for _, e := range led.Stats().Entries {
			pending += e.PendingBits
			settled += e.SettledBits
		}
	}
	if pending != 0 {
		t.Fatalf("%d bits still pending after drain; a charge never settled", pending)
	}
	var maxBits int64
	for _, b := range expected {
		if b > maxBits {
			maxBits = b
		}
	}
	if settled < okBits.Load() {
		t.Fatalf("fleet settled %d bits < %d released to clients; answers escaped the ledger", settled, okBits.Load())
	}
	if limit := (totalShardRequests + 16) * maxBits; settled > limit {
		t.Fatalf("fleet settled %d bits > %d plausible maximum; double-charging", settled, limit)
	}

	// Close every listener, then the fleet must shrink back to the
	// baseline goroutine count: no leaked probe loops, batch workers,
	// hedge goroutines, or stuck handlers.
	for _, sh := range f.shards {
		sh.ts.Close()
	}
	f.base.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseGoroutines+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
		runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
}
