// Package fleet is the horizontal scaling layer: a coordinator that
// spreads analysis traffic across N flowserved shards and treats shard
// death, stalls, and partitions as routine events that cost latency,
// never soundness.
//
// Placement is a consistent-hash ring over the shards' names keyed by
// PR 6's content-addressed program keys, so a program's requests land on
// the same shard run after run and that shard's session pool, stage
// cache, and breaker state stay hot for it. Single requests fail over
// along the key's replica list with capped backoff and hedge to the next
// replica when the owner dawdles past its latency budget; batches fan
// their runs across every healthy shard with work stealing and merge the
// per-run graphs at the coordinator through the same engine.SolveJoint
// seam the in-process batch uses — which is why a distributed batch is
// bit-identical to a single-process one, even when a shard is killed
// mid-batch and its runs are re-dispatched.
package fleet

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flowcheck/internal/cachekey"
)

// vnode is one virtual point on the ring.
type vnode struct {
	hash  uint64
	shard int // index into the coordinator's shard slice
}

// ring is an immutable consistent-hash ring over the fleet's shards.
// Health is not the ring's concern: Lookup returns the full preference
// order for a key, and the coordinator filters by liveness, so a shard
// leaving and rejoining never moves any keys — it just shifts traffic
// to each key's next replica and back.
type ring struct {
	vnodes []vnode
	shards int
}

// newRing builds the ring with vper virtual nodes per shard. Virtual
// nodes smooth the key distribution; their hashes are content-addressed
// from the shard names, so every coordinator that knows the same shard
// names builds the same ring.
func newRing(names []string, vper int) *ring {
	r := &ring{vnodes: make([]vnode, 0, len(names)*vper), shards: len(names)}
	for i, name := range names {
		for v := 0; v < vper; v++ {
			k := cachekey.New("fleet/vnode/v1").Str(name).Int(int64(v)).Sum()
			r.vnodes = append(r.vnodes, vnode{hash: binary.BigEndian.Uint64(k[:8]), shard: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].shard < r.vnodes[b].shard
	})
	return r
}

// programKey places a program on the ring: the same content-addressed
// hashing as the shard-local stage caches, so placement is stable across
// coordinator restarts and independent of Go's randomized map iteration.
func programKey(program string) uint64 {
	k := cachekey.New("fleet/key/v1").Str(program).Sum()
	return binary.BigEndian.Uint64(k[:8])
}

// runKey places one batch run: batches spread across the fleet instead
// of hot-spotting the program's home shard, but deterministically, so a
// re-run of the same batch offers each shard the same runs again warm.
func runKey(program string, run int) uint64 {
	k := cachekey.New("fleet/run/v1").Str(program).Int(int64(run)).Sum()
	return binary.BigEndian.Uint64(k[:8])
}

// Lookup returns up to n distinct shard indices in the key's preference
// order: the first vnode clockwise from the key, then the next distinct
// shards encountered walking the ring.
func (r *ring) Lookup(key uint64, n int) []int {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > r.shards {
		n = r.shards
	}
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= key })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.shard] {
			seen[v.shard] = true
			out = append(out, v.shard)
		}
	}
	return out
}

// Spread reports how many vnodes each shard owns — /statz material for
// eyeballing ring balance.
func (r *ring) Spread() []int {
	counts := make([]int, r.shards)
	for _, v := range r.vnodes {
		counts[v.shard]++
	}
	return counts
}

func (r *ring) String() string {
	return fmt.Sprintf("ring(%d shards, %d vnodes)", r.shards, len(r.vnodes))
}
