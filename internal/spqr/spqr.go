// Package spqr implements series-parallel reduction of flow networks,
// reproducing the structural investigation of paper §5.1.
//
// The paper explored SPQR trees to exploit the series-parallel regularities
// of execution flow graphs, and found the graphs to be a mixture: a
// constant fraction of each graph is an irreducible (non-series-parallel)
// core, which is why the exact approach does not scale and the collapsing
// approach of §5.2 is used instead. This package measures exactly that: it
// applies series and parallel reductions (plus dead-end elimination) until
// fixpoint, reports how much of the graph remains, and returns the reduced
// graph, whose s-t maximum flow equals the original's.
//
// The reduction engine itself lives in flowgraph.Arena.CompactSP, where the
// taint builder also runs it online during execution; this package is the
// post-hoc entry point that loads a finished Graph into an arena, compacts
// with no protected nodes, and reports how much survived.
//
// Reductions applied, all of which preserve the Source-Sink max flow:
//
//   - parallel: edges sharing (from, to) merge into one with summed capacity
//   - series: an interior node with in-degree 1 and out-degree 1 contracts,
//     its two edges replaced by one with the minimum capacity
//   - dead ends: interior nodes with in-degree or out-degree 0 are removed
//     together with their edges (they can carry no s-t flow)
//   - self-loops arising from contraction are dropped
package spqr

import (
	"flowcheck/internal/flowgraph"
)

// Stats reports how far reduction got.
type Stats struct {
	OrigNodes, OrigEdges       int
	ReducedNodes, ReducedEdges int
	SeriesOps, ParallelOps     int
	DeadNodes                  int
	// CoreFraction is ReducedEdges / OrigEdges: the share of the graph that
	// is not series-parallel reducible. Paper §5.1 observed ~16% for bzip2.
	CoreFraction float64
}

// Reduce applies series-parallel reductions to a copy of g until fixpoint
// and returns the reduced graph (with compacted node ids; Source and Sink
// keep their identities) together with reduction statistics.
func Reduce(g *flowgraph.Graph) (*flowgraph.Graph, Stats) {
	st := Stats{OrigNodes: g.NumNodes(), OrigEdges: g.NumEdges()}
	a := flowgraph.NewArena()
	for v := 2; v < g.NumNodes(); v++ {
		a.AddNode()
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		a.AddEdge(int32(e.From), int32(e.To), e.Cap, flowgraph.Label{Kind: flowgraph.KindData})
	}
	a.CompactSP(nil)
	m := a.Mem() // fresh arena: totals are this reduction's own counts
	st.SeriesOps = m.SeriesOps
	st.ParallelOps = m.ParallelOps
	st.DeadNodes = m.DeadEnds
	out := a.Export(nil)
	st.ReducedNodes = out.NumNodes()
	st.ReducedEdges = out.NumEdges()
	if st.OrigEdges > 0 {
		st.CoreFraction = float64(st.ReducedEdges) / float64(st.OrigEdges)
	}
	return out, st
}
