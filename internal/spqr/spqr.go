// Package spqr implements series-parallel reduction of flow networks,
// reproducing the structural investigation of paper §5.1.
//
// The paper explored SPQR trees to exploit the series-parallel regularities
// of execution flow graphs, and found the graphs to be a mixture: a
// constant fraction of each graph is an irreducible (non-series-parallel)
// core, which is why the exact approach does not scale and the collapsing
// approach of §5.2 is used instead. This package measures exactly that: it
// applies series and parallel reductions (plus dead-end elimination) until
// fixpoint, reports how much of the graph remains, and returns the reduced
// graph, whose s-t maximum flow equals the original's.
//
// Reductions applied, all of which preserve the Source-Sink max flow:
//
//   - parallel: edges sharing (from, to) merge into one with summed capacity
//   - series: an interior node with in-degree 1 and out-degree 1 contracts,
//     its two edges replaced by one with the minimum capacity
//   - dead ends: interior nodes with in-degree or out-degree 0 are removed
//     together with their edges (they can carry no s-t flow)
//   - self-loops arising from contraction are dropped
package spqr

import (
	"flowcheck/internal/flowgraph"
)

// Stats reports how far reduction got.
type Stats struct {
	OrigNodes, OrigEdges       int
	ReducedNodes, ReducedEdges int
	SeriesOps, ParallelOps     int
	DeadNodes                  int
	// CoreFraction is ReducedEdges / OrigEdges: the share of the graph that
	// is not series-parallel reducible. Paper §5.1 observed ~16% for bzip2.
	CoreFraction float64
}

type redEdge struct {
	from, to int32
	cap      int64
	alive    bool
}

type reducer struct {
	edges []redEdge
	// incidence lists hold edge indices; entries may be stale (dead or
	// re-pointed) and are filtered on scan.
	in, out  [][]int32
	indeg    []int32
	outdeg   []int32
	work     []int32
	inWork   []bool
	stats    Stats
	numNodes int
}

// Reduce applies series-parallel reductions to a copy of g until fixpoint
// and returns the reduced graph (with compacted node ids; Source and Sink
// keep their identities) together with reduction statistics.
func Reduce(g *flowgraph.Graph) (*flowgraph.Graph, Stats) {
	r := &reducer{numNodes: g.NumNodes()}
	r.stats.OrigNodes = g.NumNodes()
	r.stats.OrigEdges = g.NumEdges()
	r.edges = make([]redEdge, 0, len(g.Edges))
	r.in = make([][]int32, r.numNodes)
	r.out = make([][]int32, r.numNodes)
	r.indeg = make([]int32, r.numNodes)
	r.outdeg = make([]int32, r.numNodes)
	for _, e := range g.Edges {
		r.addEdge(int32(e.From), int32(e.To), e.Cap)
	}
	r.work = make([]int32, 0, r.numNodes)
	r.inWork = make([]bool, r.numNodes)
	for v := int32(0); v < int32(r.numNodes); v++ {
		r.push(v)
	}
	r.run()
	return r.result()
}

func (r *reducer) addEdge(from, to int32, cap int64) {
	idx := int32(len(r.edges))
	r.edges = append(r.edges, redEdge{from: from, to: to, cap: cap, alive: true})
	r.out[from] = append(r.out[from], idx)
	r.in[to] = append(r.in[to], idx)
	r.outdeg[from]++
	r.indeg[to]++
}

func (r *reducer) killEdge(idx int32) {
	e := &r.edges[idx]
	if !e.alive {
		return
	}
	e.alive = false
	r.outdeg[e.from]--
	r.indeg[e.to]--
	r.push(e.from)
	r.push(e.to)
}

func (r *reducer) push(v int32) {
	if !r.inWork[v] {
		r.inWork[v] = true
		r.work = append(r.work, v)
	}
}

func interior(v int32) bool {
	return v != int32(flowgraph.Source) && v != int32(flowgraph.Sink)
}

// liveOut returns the live out-edge indices of v, compacting the list.
func (r *reducer) liveOut(v int32) []int32 {
	lst := r.out[v][:0]
	for _, idx := range r.out[v] {
		if e := &r.edges[idx]; e.alive && e.from == v {
			lst = append(lst, idx)
		}
	}
	r.out[v] = lst
	return lst
}

func (r *reducer) liveIn(v int32) []int32 {
	lst := r.in[v][:0]
	for _, idx := range r.in[v] {
		if e := &r.edges[idx]; e.alive && e.to == v {
			lst = append(lst, idx)
		}
	}
	r.in[v] = lst
	return lst
}

func (r *reducer) run() {
	for len(r.work) > 0 {
		v := r.work[len(r.work)-1]
		r.work = r.work[:len(r.work)-1]
		r.inWork[v] = false
		r.reduceNode(v)
	}
}

func (r *reducer) reduceNode(v int32) {
	// Drop self-loops.
	for _, idx := range r.liveOut(v) {
		if r.edges[idx].to == v {
			r.killEdge(idx)
		}
	}

	if interior(v) {
		// Dead-end elimination.
		if r.outdeg[v] == 0 {
			for _, idx := range r.liveIn(v) {
				r.killEdge(idx)
			}
			if len(r.liveIn(v)) == 0 && len(r.liveOut(v)) == 0 {
				r.stats.DeadNodes++
			}
			return
		}
		if r.indeg[v] == 0 {
			for _, idx := range r.liveOut(v) {
				r.killEdge(idx)
			}
			r.stats.DeadNodes++
			return
		}
		// Series contraction.
		if r.indeg[v] == 1 && r.outdeg[v] == 1 {
			ins := r.liveIn(v)
			outs := r.liveOut(v)
			if len(ins) == 1 && len(outs) == 1 {
				ein, eout := &r.edges[ins[0]], &r.edges[outs[0]]
				u, w := ein.from, eout.to
				cap := ein.cap
				if eout.cap < cap {
					cap = eout.cap
				}
				r.killEdge(ins[0])
				r.killEdge(outs[0])
				if u != w { // u == w would be a self-loop: drop entirely
					r.addEdge(u, w, cap)
				}
				r.stats.SeriesOps++
				r.push(u)
				r.push(w)
				return
			}
		}
	}

	// Parallel merge of v's out-edges.
	outs := r.liveOut(v)
	if len(outs) > 1 {
		byTarget := make(map[int32]int32, len(outs))
		for _, idx := range outs {
			t := r.edges[idx].to
			if first, ok := byTarget[t]; ok {
				cap := r.edges[first].cap + r.edges[idx].cap
				if cap > flowgraph.Inf {
					cap = flowgraph.Inf
				}
				r.edges[first].cap = cap
				r.killEdge(idx)
				r.stats.ParallelOps++
				r.push(t)
			} else {
				byTarget[t] = idx
			}
		}
	}
}

func (r *reducer) result() (*flowgraph.Graph, Stats) {
	out := flowgraph.New()
	remap := make([]flowgraph.NodeID, r.numNodes)
	for i := range remap {
		remap[i] = -1
	}
	remap[flowgraph.Source] = flowgraph.Source
	remap[flowgraph.Sink] = flowgraph.Sink
	for _, e := range r.edges {
		if !e.alive {
			continue
		}
		for _, v := range [2]int32{e.from, e.to} {
			if remap[v] < 0 {
				remap[v] = out.AddNode()
			}
		}
		out.AddEdge(remap[e.from], remap[e.to], e.cap, flowgraph.Label{Kind: flowgraph.KindData})
	}
	r.stats.ReducedNodes = out.NumNodes()
	r.stats.ReducedEdges = out.NumEdges()
	if r.stats.OrigEdges > 0 {
		r.stats.CoreFraction = float64(r.stats.ReducedEdges) / float64(r.stats.OrigEdges)
	}
	return out, r.stats
}
