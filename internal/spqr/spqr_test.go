package spqr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowcheck/internal/flowgraph"
	"flowcheck/internal/maxflow"
)

func TestSeriesChainCollapses(t *testing.T) {
	g := flowgraph.New()
	prev := flowgraph.Source
	for i := 0; i < 10; i++ {
		n := g.AddNode()
		g.AddEdge(prev, n, int64(10+i), flowgraph.Label{})
		prev = n
	}
	g.AddEdge(prev, flowgraph.Sink, 5, flowgraph.Label{})
	red, st := Reduce(g)
	if red.NumEdges() != 1 {
		t.Fatalf("chain should collapse to one edge, got %d", red.NumEdges())
	}
	if red.Edges[0].Cap != 5 {
		t.Fatalf("series capacity = %d, want 5 (min)", red.Edges[0].Cap)
	}
	if st.SeriesOps == 0 {
		t.Fatal("no series reductions recorded")
	}
}

func TestParallelEdgesMerge(t *testing.T) {
	g := flowgraph.New()
	for i := 0; i < 4; i++ {
		g.AddEdge(flowgraph.Source, flowgraph.Sink, 3, flowgraph.Label{})
	}
	red, st := Reduce(g)
	if red.NumEdges() != 1 || red.Edges[0].Cap != 12 {
		t.Fatalf("parallel merge wrong: %d edges, cap %v", red.NumEdges(), red.Edges)
	}
	if st.ParallelOps != 3 {
		t.Fatalf("ParallelOps = %d, want 3", st.ParallelOps)
	}
}

func TestDeadEndRemoved(t *testing.T) {
	g := flowgraph.New()
	a := g.AddNode()
	dead := g.AddNode()
	g.AddEdge(flowgraph.Source, a, 8, flowgraph.Label{})
	g.AddEdge(a, flowgraph.Sink, 8, flowgraph.Label{})
	g.AddEdge(a, dead, 8, flowgraph.Label{}) // leads nowhere
	red, _ := Reduce(g)
	for _, e := range red.Edges {
		if e.To != flowgraph.Sink && e.From != flowgraph.Source && e.To == e.From {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
	// The whole thing is series-parallel: must reduce to a single s-t edge.
	if red.NumEdges() != 1 || red.Edges[0].Cap != 8 {
		t.Fatalf("expected single 8-cap edge, got %+v", red.Edges)
	}
}

func TestDiamondReduces(t *testing.T) {
	// source -> a -> sink via two parallel interior paths: fully SP.
	g := flowgraph.New()
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(flowgraph.Source, a, 10, flowgraph.Label{})
	g.AddEdge(flowgraph.Source, b, 10, flowgraph.Label{})
	g.AddEdge(a, flowgraph.Sink, 4, flowgraph.Label{})
	g.AddEdge(b, flowgraph.Sink, 3, flowgraph.Label{})
	red, _ := Reduce(g)
	if red.NumEdges() != 1 || red.Edges[0].Cap != 7 {
		t.Fatalf("diamond should reduce to one 7-cap edge: %+v", red.Edges)
	}
}

func TestNonSPCoreRemains(t *testing.T) {
	// K4-like crossing structure is not series-parallel reducible.
	g := flowgraph.New()
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(flowgraph.Source, a, 1, flowgraph.Label{})
	g.AddEdge(flowgraph.Source, b, 1, flowgraph.Label{})
	g.AddEdge(a, c, 1, flowgraph.Label{})
	g.AddEdge(a, d, 1, flowgraph.Label{})
	g.AddEdge(b, c, 1, flowgraph.Label{})
	g.AddEdge(b, d, 1, flowgraph.Label{})
	g.AddEdge(c, flowgraph.Sink, 1, flowgraph.Label{})
	g.AddEdge(d, flowgraph.Sink, 1, flowgraph.Label{})
	red, st := Reduce(g)
	if red.NumEdges() < 4 {
		t.Fatalf("crossing core should not fully reduce: %d edges", red.NumEdges())
	}
	if st.CoreFraction <= 0 || st.CoreFraction > 1 {
		t.Fatalf("CoreFraction = %v", st.CoreFraction)
	}
}

func randomDAG(rng *rand.Rand, nodes, edges int) *flowgraph.Graph {
	g := flowgraph.New()
	ids := []flowgraph.NodeID{flowgraph.Source}
	for i := 0; i < nodes; i++ {
		ids = append(ids, g.AddNode())
	}
	ids = append(ids, flowgraph.Sink)
	for i := 0; i < edges; i++ {
		a := rng.Intn(len(ids) - 1)
		b := a + 1 + rng.Intn(len(ids)-a-1)
		g.AddEdge(ids[a], ids[b], int64(rng.Intn(20)), flowgraph.Label{})
	}
	return g
}

// Property: reduction preserves the Source-Sink maximum flow.
func TestReductionPreservesMaxFlow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), rng.Intn(160))
		want := maxflow.Compute(g, maxflow.Dinic).Flow
		red, _ := Reduce(g)
		got := maxflow.Compute(red, maxflow.Dinic).Flow
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: reduction is a fixpoint (reducing twice changes nothing more).
func TestReductionIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), rng.Intn(100))
		r1, _ := Reduce(g)
		r2, st2 := Reduce(r1)
		return r2.NumEdges() == r1.NumEdges() && st2.SeriesOps == 0 && st2.ParallelOps == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(3)), 30, 100)
	_, st := Reduce(g)
	if st.OrigNodes != g.NumNodes() || st.OrigEdges != g.NumEdges() {
		t.Fatalf("orig stats wrong: %+v", st)
	}
	if st.ReducedEdges > st.OrigEdges {
		t.Fatalf("reduction grew the graph: %+v", st)
	}
}

func BenchmarkReduceRandom(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 5000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(g)
	}
}
