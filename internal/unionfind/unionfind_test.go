package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets() = %d, want 5", u.Sets())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, u.Find(i), i)
		}
	}
}

func TestUnionBasic(t *testing.T) {
	u := New(4)
	u.Union(0, 1)
	u.Union(2, 3)
	if !u.Same(0, 1) || !u.Same(2, 3) {
		t.Fatal("expected 0~1 and 2~3")
	}
	if u.Same(1, 2) {
		t.Fatal("0-1 and 2-3 should be disjoint")
	}
	if u.Sets() != 2 {
		t.Fatalf("Sets() = %d, want 2", u.Sets())
	}
	u.Union(1, 3)
	if !u.Same(0, 2) {
		t.Fatal("after union all should be connected")
	}
	if u.Sets() != 1 {
		t.Fatalf("Sets() = %d, want 1", u.Sets())
	}
}

func TestUnionIdempotent(t *testing.T) {
	u := New(3)
	u.Union(0, 1)
	before := u.Sets()
	u.Union(0, 1)
	u.Union(1, 0)
	if u.Sets() != before {
		t.Fatalf("repeated union changed set count: %d -> %d", before, u.Sets())
	}
}

func TestGrowOnDemand(t *testing.T) {
	var u UF
	if got := u.Find(10); got != 10 {
		t.Fatalf("Find(10) = %d, want 10", got)
	}
	if u.Len() != 11 {
		t.Fatalf("Len() = %d, want 11", u.Len())
	}
	u.Union(10, 20)
	if !u.Same(10, 20) {
		t.Fatal("grown elements should union")
	}
}

func TestMakeSet(t *testing.T) {
	u := New(2)
	id := u.MakeSet()
	if id != 2 {
		t.Fatalf("MakeSet() = %d, want 2", id)
	}
	if u.Same(id, 0) || u.Same(id, 1) {
		t.Fatal("fresh set must be disjoint")
	}
}

// Property: union-find connectivity matches a naive reference implementation
// under random operation sequences.
func TestAgainstNaive(t *testing.T) {
	const n = 64
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := New(n)
		// naive: component label per element
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 200; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				u.Union(a, b)
				relabel(label[a], label[b])
			} else if u.Same(a, b) != (label[a] == label[b]) {
				return false
			}
		}
		// Full cross-check at the end.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSetsCountMatchesComponents(t *testing.T) {
	u := New(10)
	// Build a chain 0-1-2-3-4 and a pair 7-8.
	for i := 0; i < 4; i++ {
		u.Union(i, i+1)
	}
	u.Union(7, 8)
	// Components: {0..4}, {5}, {6}, {7,8}, {9} = 5
	if u.Sets() != 5 {
		t.Fatalf("Sets() = %d, want 5", u.Sets())
	}
}

func BenchmarkUnionFind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := New(1024)
		for j := 0; j < 1023; j++ {
			u.Union(j, j+1)
		}
		for j := 0; j < 1024; j++ {
			u.Find(j)
		}
	}
}
