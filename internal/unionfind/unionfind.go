// Package unionfind provides a disjoint-set (union-find) structure with
// path compression and union by rank.
//
// The taint engine and the multi-run graph merger (paper §3.2, §5.2) use it
// to identify flow-graph nodes that share an edge label: for each edge
// (u, v) at location l, the sets containing u and the placeholder "source of
// edges at l" are merged, and similarly for v and "target of edges at l".
package unionfind

// UF is a union-find structure over dense integer elements. New elements are
// created on demand by Find or Union; the zero value is ready to use.
type UF struct {
	parent []int32
	rank   []uint8
	sets   int
}

// New returns a union-find structure with n initial singleton elements.
func New(n int) *UF {
	u := &UF{}
	u.Grow(n)
	return u
}

// Grow ensures elements [0, n) exist.
func (u *UF) Grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, int32(len(u.parent)))
		u.rank = append(u.rank, 0)
		u.sets++
	}
}

// Len reports the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Sets reports the number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// MakeSet creates a fresh singleton element and returns its id.
func (u *UF) MakeSet() int {
	id := len(u.parent)
	u.Grow(id + 1)
	return id
}

// Find returns the representative of x, growing the structure if x is new.
func (u *UF) Find(x int) int {
	u.Grow(x + 1)
	root := x
	for u.parent[root] != int32(root) {
		root = int(u.parent[root])
	}
	// Path compression.
	for x != root {
		next := int(u.parent[x])
		u.parent[x] = int32(root)
		x = next
	}
	return root
}

// Union merges the sets containing x and y and returns the representative of
// the merged set.
func (u *UF) Union(x, y int) int {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return rx
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return rx
}

// Same reports whether a and b are in the same set.
func (u *UF) Same(a, b int) bool { return u.Find(a) == u.Find(b) }
