package cachekey

import (
	"testing"

	"flowcheck/internal/lang"
)

const srcA = `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 10) { putc('y'); } else { putc('n'); }
    return 0;
}
`

const srcB = `
int main() {
    char buf[1];
    read_secret(buf, 1);
    if (buf[0] > 11) { putc('y'); } else { putc('n'); }
    return 0;
}
`

func TestProgramKeyDeterministic(t *testing.T) {
	p1, err := lang.Compile("a.mc", srcA)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lang.Compile("a.mc", srcA)
	if err != nil {
		t.Fatal(err)
	}
	if Program(p1) != Program(p2) {
		t.Fatalf("identical source compiled twice produced different program keys")
	}
	if Program(p1) != Program(p1) {
		t.Fatalf("Program key is not deterministic for one value")
	}
}

func TestProgramKeySensitivity(t *testing.T) {
	p1, err := lang.Compile("a.mc", srcA)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lang.Compile("a.mc", srcB)
	if err != nil {
		t.Fatal(err)
	}
	if Program(p1) == Program(p2) {
		t.Fatalf("different programs share a program key")
	}
	// Same logic, different filename: site tables differ, so diagnostics
	// rendered from cached results would differ — keys must too.
	p3, err := lang.Compile("b.mc", srcA)
	if err != nil {
		t.Fatal(err)
	}
	if Program(p1) == Program(p3) {
		t.Fatalf("programs with different site files share a program key")
	}
}

func TestInputsKeyFieldBoundaries(t *testing.T) {
	// Length prefixes must keep adjacent fields from aliasing.
	if Inputs([]byte("ab"), []byte("c")) == Inputs([]byte("a"), []byte("bc")) {
		t.Fatalf("inputs key aliases across the secret/public boundary")
	}
	if Inputs(nil, nil) != Inputs([]byte{}, []byte{}) {
		t.Fatalf("nil and empty inputs should share a key")
	}
	if Inputs([]byte{1}, nil) == Inputs(nil, []byte{1}) {
		t.Fatalf("secret and public bytes must not be interchangeable")
	}
}

func TestDomainSeparation(t *testing.T) {
	a := New("kind-a/v1").Int(7).Sum()
	b := New("kind-b/v1").Int(7).Sum()
	if a == b {
		t.Fatalf("identical payloads under different domains share a key")
	}
	if Source("f.mc", srcA) == Inputs([]byte("f.mc"), []byte(srcA)) {
		t.Fatalf("source and inputs domains collide")
	}
}

func TestShortIsPrefix(t *testing.T) {
	k := New("x/v1").Str("payload").Sum()
	if len(k.Short()) != 12 || k.String()[:12] != k.Short() {
		t.Fatalf("Short() = %q is not the 12-hex-char prefix of %q", k.Short(), k.String())
	}
}
