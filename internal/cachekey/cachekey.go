// Package cachekey derives stable content-addressed keys for the staged
// analysis pipeline (internal/stagecache, internal/engine). A Key is a
// SHA-256 digest over a canonical encoding of the stage's inputs: compiled
// bytecode for the compile/static stages, the raw secret/public byte
// streams for per-input stages, and a field-by-field canonicalization of
// the analysis configuration (done by the engine, which knows which Config
// fields are result-relevant).
//
// Every key derivation starts from a domain string ("result/v1",
// "static/v1", ...) so keys from different stages can never collide even
// when their payloads do, and variable-length fields are length-prefixed
// so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc"). Bump a domain's
// version suffix whenever the encoding of that stage's payload changes —
// that is the whole invalidation story for persisted or long-lived caches.
package cachekey

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"flowcheck/internal/vm"
)

// Key is a content-addressed cache key: a SHA-256 digest.
type Key [sha256.Size]byte

// String returns the full hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an abbreviated hex form for logs and result provenance.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// Hasher accumulates canonically-encoded fields into a key. All writers
// return the hasher so derivations chain.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// New starts a key derivation under the given domain string. Distinct
// domains yield disjoint key spaces.
func New(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	return h.Str(domain)
}

func (h *Hasher) writeUint64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

// Bytes writes a length-prefixed byte field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.writeUint64(uint64(len(b)))
	h.h.Write(b)
	return h
}

// Str writes a length-prefixed string field.
func (h *Hasher) Str(s string) *Hasher {
	h.writeUint64(uint64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// Int writes a fixed-width signed integer field.
func (h *Hasher) Int(v int64) *Hasher {
	h.writeUint64(uint64(v))
	return h
}

// Uint writes a fixed-width unsigned integer field.
func (h *Hasher) Uint(v uint64) *Hasher {
	h.writeUint64(v)
	return h
}

// Bool writes a boolean field.
func (h *Hasher) Bool(b bool) *Hasher {
	if b {
		return h.Int(1)
	}
	return h.Int(0)
}

// Key mixes an already-derived key in as a field, so composite keys
// (program x config x inputs) build from stage keys without rehashing the
// underlying payloads.
func (h *Hasher) Key(k Key) *Hasher {
	h.h.Write(k[:])
	return h
}

// Sum finalizes the derivation.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Program hashes a compiled program: code (every instruction field), data
// segment, entry point, and the site/function tables. The diagnostic
// tables are included because cached results embed rendered source
// locations (cut descriptions, lint findings), so two programs that differ
// only in locations must not share result entries.
func Program(p *vm.Program) Key {
	h := New("program/v1")
	h.Int(int64(p.Entry))
	h.Int(int64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		h.writeUint64(uint64(in.Op)<<32 | uint64(in.W)<<24 | uint64(in.A)<<16 | uint64(in.B)<<8 | uint64(in.C))
		h.writeUint64(uint64(uint32(in.Imm))<<32 | uint64(in.Site))
	}
	h.Bytes(p.Data)
	h.Int(int64(len(p.Sites)))
	for _, s := range p.Sites {
		h.Str(s.File).Int(int64(s.Line)).Str(s.Fn)
	}
	h.Int(int64(len(p.Funcs)))
	for _, f := range p.Funcs {
		h.Str(f.Name).Int(int64(f.Entry)).Int(int64(f.End))
	}
	return h.Sum()
}

// Inputs hashes one execution's secret/public input pair.
func Inputs(secret, public []byte) Key {
	return New("inputs/v1").Bytes(secret).Bytes(public).Sum()
}

// Source hashes MiniC source for the compile stage. The filename is part
// of the key: it is baked into compiled site tables and therefore into
// every rendered diagnostic downstream.
func Source(filename, src string) Key {
	return New("source/v1").Str(filename).Str(src).Sum()
}
