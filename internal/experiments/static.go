package experiments

import (
	"time"

	"flowcheck/internal/core"
	"flowcheck/internal/guest"
)

// StaticRow is one guest's static-pass measurement: the size of the
// analysis (CFG blocks, branches, inferred regions, enclosure spans),
// the cross-check verdict against a run on the guest's sample inputs,
// and how long the pass took.
type StaticRow struct {
	Guest      string
	Funcs      int
	Blocks     int
	Branches   int
	Regions    int
	Enclosures int
	Findings   int // cross-check violations (0 = annotations validated)
	Elapsed    time.Duration
}

// StaticPass runs the static pre-pass plus dynamic cross-check over
// every guest program, on its sample inputs.
func StaticPass() []StaticRow {
	var rows []StaticRow
	for _, name := range guest.Names() {
		secret, public, ok := guest.SampleInputs(name)
		if !ok {
			continue
		}
		res := mustAnalyze(name, core.Inputs{Secret: secret, Public: public},
			core.Config{Lint: true})
		st := res.StaticStats
		rows = append(rows, StaticRow{
			Guest:      name,
			Funcs:      st.Funcs,
			Blocks:     st.Blocks,
			Branches:   st.Branches,
			Regions:    st.Regions,
			Enclosures: st.Enclosures,
			Findings:   len(res.Lint),
			Elapsed:    res.Stages.Static,
		})
	}
	return rows
}

// StaticTotals sums region and finding counts for the perf trajectory.
func StaticTotals(rows []StaticRow) (regions, findings int) {
	for _, r := range rows {
		regions += r.Regions
		findings += r.Findings
	}
	return regions, findings
}
