package experiments

import (
	"fmt"
	"time"

	"flowcheck/internal/core"
	"flowcheck/internal/guest"
	"flowcheck/internal/modelcount"
	"flowcheck/internal/vm"
)

// LadderRow is one guest's precision-ladder tightness measurement: the
// bound each rung answers on the guest's sample inputs, a bounded
// behavior-enumeration lower bound, and what each rung costs. The sound
// orderings measured ≤ static ≤ trivial and lower ≤ static are asserted
// by experiments_test.go over every row. Lower vs measured can cross:
// MeasuredBits covers one execution while LowerBits counts behaviors
// across the enumerated domain (the §3.2 single-run caveat — unary's
// exhaustive 8-bit lower bound exceeds its 6-bit single-run flow).
type LadderRow struct {
	Guest        string
	SecretBytes  int
	LowerBits    float64 // modelcount behavior enumeration (bounded)
	Exhaustive   bool    // the enumeration covered the whole secret domain
	MeasuredBits int64   // full solve (max flow)
	StaticBits   int64   // static rung
	TrivialBits  int64   // trivial rung: 8·len(secret)
	TrivialTime  time.Duration
	StaticTime   time.Duration
	FullTime     time.Duration
}

// ladderGapSrc is the synthetic gap demonstration: the guest reads only 4
// bytes of however large a secret it is offered, so over a 64-byte secret
// the three rungs separate cleanly — trivial 512, static 32, measured 8.
const ladderGapSrc = `
int main() {
    char buf[4];
    read_secret(buf, 4);
    putc(buf[0] ^ buf[1] ^ buf[2] ^ buf[3]);
    return 0;
}
`

// LadderGapSecretBytes is the gap row's secret size.
const LadderGapSecretBytes = 64

// ladderMaxEnumerated caps the behavior enumeration per guest; 256
// secrets cover a 1-byte domain exhaustively and sample larger ones.
const ladderMaxEnumerated = 256

// Ladder measures every guest at each rung of the precision ladder, plus
// the synthetic gap row (guest name "gap-demo").
func Ladder() []LadderRow {
	var rows []LadderRow
	for _, name := range guest.Names() {
		secret, public, ok := guest.SampleInputs(name)
		if !ok {
			continue
		}
		rows = append(rows, ladderRow(name, guest.Program(name),
			core.Inputs{Secret: secret, Public: public}))
	}
	prog, err := core.CompileCached("ladder_gap.mc", ladderGapSrc)
	if err != nil {
		panic(fmt.Sprintf("ladder gap demo: %v", err))
	}
	res := ladderRow("gap-demo", prog,
		core.Inputs{Secret: make([]byte, LadderGapSecretBytes)})
	rows = append(rows, res)
	return rows
}

func ladderRow(name string, prog *vm.Program, in core.Inputs) LadderRow {
	analyze := func(p core.Precision) (*core.Result, time.Duration) {
		start := time.Now()
		res, err := core.Analyze(prog, in, core.Config{Precision: p})
		if err != nil {
			panic(fmt.Sprintf("ladder %s (%v): %v", name, p, err))
		}
		return res, time.Since(start)
	}
	trivial, trivialTime := analyze(core.PrecisionTrivial)
	static, staticTime := analyze(core.PrecisionStatic)
	full, fullTime := analyze(core.PrecisionFull)

	mc := modelcount.Enumerate(prog, modelcount.Options{
		SecretLen:  len(in.Secret),
		Public:     in.Public,
		MaxSecrets: ladderMaxEnumerated,
	})
	return LadderRow{
		Guest:        name,
		SecretBytes:  len(in.Secret),
		LowerBits:    mc.LowerBits,
		Exhaustive:   mc.Exhaustive,
		MeasuredBits: full.Bits,
		StaticBits:   static.Bits,
		TrivialBits:  trivial.Bits,
		TrivialTime:  trivialTime,
		StaticTime:   staticTime,
		FullTime:     fullTime,
	}
}

// LadderTotals summarizes the tightness sweep for the perf trajectory:
// the gap row's three bounds and the worst full-solve latency ratio a
// static-rung answer avoids.
func LadderTotals(rows []LadderRow) (trivialBits, staticBits, measuredBits int64, fullUS, staticUS float64) {
	for _, r := range rows {
		fullUS += float64(r.FullTime.Microseconds())
		staticUS += float64(r.StaticTime.Microseconds())
		if r.Guest == "gap-demo" {
			trivialBits, staticBits, measuredBits = r.TrivialBits, r.StaticBits, r.MeasuredBits
		}
	}
	return trivialBits, staticBits, measuredBits, fullUS, staticUS
}
