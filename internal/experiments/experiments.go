// Package experiments regenerates every table and figure in the paper's
// evaluation, as indexed in DESIGN.md. Each experiment returns structured
// results; cmd/flowbench renders them as text, the repository-root
// experiments_test.go asserts their shape against the paper's claims, and
// bench_test.go times them.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"flowcheck/internal/check"
	"flowcheck/internal/core"
	"flowcheck/internal/flowgraph"
	"flowcheck/internal/guest"
	"flowcheck/internal/infer"
	"flowcheck/internal/kraft"
	"flowcheck/internal/maxflow"
	"flowcheck/internal/merge"
	"flowcheck/internal/spqr"
	"flowcheck/internal/taint"
	"flowcheck/internal/workload"
)

// mustAnalyze runs one analysis, panicking on guest errors (experiment
// inputs are fixed and known-good).
func mustAnalyze(name string, in core.Inputs, cfg core.Config) *core.Result {
	res, err := core.Analyze(guest.Program(name), in, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiment %s: %v", name, err))
	}
	if res.Trap != nil {
		panic(fmt.Sprintf("experiment %s trapped: %v", name, res.Trap))
	}
	return res
}

// --------------------------------------------------------------- Figure 2 ---

// Fig2Result reproduces §2.4: the count_punct example.
type Fig2Result struct {
	Output         string
	Bits           int64 // paper: 9
	WithoutRegions int64 // paper: 1855 (their input); >> 9 here
	TaintBound     int64 // paper: 64
	Cut            string
}

// Fig2Input is the 8-dot/4-question-mark input standing in for the paper's
// own source file.
const Fig2Input = "one. two. three? four. five. six? seven. eight. nine? ten. eleven. twelve?"

// Fig2 runs the §2.4 experiment.
func Fig2() Fig2Result {
	in := core.Inputs{Secret: []byte(Fig2Input)}
	res := mustAnalyze("count_punct", in, core.Config{})

	noRegions := strings.ReplaceAll(guest.Source("count_punct"), "__enclose(num_dot, num_qm)", "")
	noRegions = strings.ReplaceAll(noRegions, "__enclose(common, num)", "")
	res2, err := core.AnalyzeSource("count_punct_noregions.mc", noRegions, in, core.Config{})
	if err != nil {
		panic(err)
	}
	return Fig2Result{
		Output:         string(res.Output),
		Bits:           res.Bits,
		WithoutRegions: res2.Bits,
		TaintBound:     res.TaintedOutputBits,
		Cut:            res.CutString(),
	}
}

// --------------------------------------------------------------- Figure 3 ---

// Fig3Point is one input size of the compression scaling study (§5.3).
type Fig3Point struct {
	InputBytes      int
	CompressedBytes int
	Bits            int64 // measured flow
	InputBits       int64 // 8 * input size (the left-hand bound)
	OutputBits      int64 // 8 * compressed size (the right-hand bound)
	Elapsed         time.Duration
	Steps           uint64
	GraphNodes      int
	GraphEdges      int
}

// Fig3Sizes is the default log-scale sweep.
var Fig3Sizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Fig3 compresses pi-in-words at each size under the analysis with
// collapsing enabled, as in §5.3.
func Fig3(sizes []int) []Fig3Point {
	return fig3Corpus(sizes, workload.PiWords)
}

// Fig3Incompressible runs the same sweep on pseudo-random data: LZSS finds
// no matches, the output exceeds the input, and the measured flow follows
// the 8·input curve — the left-hand bound of Figure 3 at every size.
func Fig3Incompressible(sizes []int) []Fig3Point {
	return fig3Corpus(sizes, func(n int) []byte { return workload.RandomBytes(n, 42) })
}

func fig3Corpus(sizes []int, corpus func(int) []byte) []Fig3Point {
	out := make([]Fig3Point, 0, len(sizes))
	for _, n := range sizes {
		in := corpus(n)
		start := time.Now()
		res := mustAnalyze("compress", core.Inputs{Secret: in}, core.Config{})
		out = append(out, Fig3Point{
			InputBytes:      n,
			CompressedBytes: len(res.Output),
			Bits:            res.Bits,
			InputBits:       int64(8 * n),
			OutputBits:      int64(8 * len(res.Output)),
			Elapsed:         time.Since(start),
			Steps:           res.Steps,
			GraphNodes:      res.Graph.NumNodes(),
			GraphEdges:      res.Graph.NumEdges(),
		})
	}
	return out
}

// --------------------------------------------------------------- Figure 4 ---

// CaseStudyRow is one row of the Figure 4 inventory.
type CaseStudyRow struct {
	Program    string
	PaperKLOC  string // the original subject's size, for reference
	SecretData string
	GuestLines int
}

// Tab4 builds the case-study inventory.
func Tab4() []CaseStudyRow {
	rows := []CaseStudyRow{
		{"battleship", "6.6 (KBattleship)", "ship locations", 0},
		{"sshauth", "65 (OpenSSH client)", "authentication key", 0},
		{"imagefilter", "290 (ImageMagick)", "original image details", 0},
		{"calendar", "550 (OpenGroupware.org)", "schedule details", 0},
		{"xserver", "440 (X server)", "displayed text", 0},
	}
	for i := range rows {
		rows[i].GuestLines = strings.Count(guest.Source(rows[i].Program), "\n")
	}
	return rows
}

// ------------------------------------------------------------- Battleship ---

// BattleshipResult reproduces §8.1.
type BattleshipResult struct {
	MissBits     int64 // paper: 1
	HitBits      int64 // paper: 2 (non-fatal)
	BuggyBits    int64 // >= 8: the shipTypeAt leak
	GameBits     int64 // a short game, accumulated
	GameShots    int
	PerShotFlows []int64 // real-time snapshots
	MissReply    string
	HitReply     string
}

// Battleship runs the §8.1 measurements.
func Battleship() BattleshipResult {
	secret := workload.BattleshipSecret(7)
	board := boardFrom(secret)
	var miss, hit [2]byte
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			switch board[r*10+c] {
			case 0:
				miss = [2]byte{byte(r), byte(c)}
			case 5:
				hit = [2]byte{byte(r), byte(c)}
			}
		}
	}
	var out BattleshipResult
	res := mustAnalyze("battleship", core.Inputs{Secret: secret, Public: workload.BattleshipShots(0, [][2]byte{miss})}, core.Config{})
	out.MissBits, out.MissReply = res.Bits, string(res.Output)
	res = mustAnalyze("battleship", core.Inputs{Secret: secret, Public: workload.BattleshipShots(0, [][2]byte{hit})}, core.Config{})
	out.HitBits, out.HitReply = res.Bits, string(res.Output)
	res = mustAnalyze("battleship", core.Inputs{Secret: secret, Public: workload.BattleshipShots(1, [][2]byte{hit})}, core.Config{})
	out.BuggyBits = res.Bits

	shots := [][2]byte{{0, 0}, {3, 4}, {5, 5}, {9, 9}, {2, 7}, {4, 4}}
	res = mustAnalyze("battleship", core.Inputs{Secret: secret, Public: workload.BattleshipShots(0, shots)}, core.Config{})
	out.GameBits = res.Bits
	out.GameShots = len(shots)
	for _, s := range res.Snapshots {
		out.PerShotFlows = append(out.PerShotFlows, s.Bits)
	}
	return out
}

func boardFrom(placement []byte) [100]byte {
	var board [100]byte
	lens := []int{5, 4, 3, 2}
	for s := 0; s < 4; s++ {
		r, c, o := int(placement[3*s])%10, int(placement[3*s+1])%10, int(placement[3*s+2])&1
		for k := 0; k < lens[s]; k++ {
			var idx int
			if o == 0 {
				idx = r*10 + (c+k)%10
			} else {
				idx = ((r+k)%10)*10 + c
			}
			board[idx] = byte(lens[s])
		}
	}
	return board
}

// ------------------------------------------------------------------- SSH ---

// SSHResult reproduces §8.2.
type SSHResult struct {
	Bits      int64 // paper: 128
	KeyBits   int64 // 512: the secret key's size
	Cut       string
	DigestHex string
}

// SSHInputs are the fixed experiment inputs.
func SSHInputs() core.Inputs {
	key := make([]byte, 64)
	for i := range key {
		key[i] = byte(i*37 + 11)
	}
	public := append([]byte("session-id-0123!"), []byte("challenge-bytes!")...)
	return core.Inputs{Secret: key, Public: public}
}

// SSH runs the §8.2 measurement.
func SSH() SSHResult {
	res := mustAnalyze("sshauth", SSHInputs(), core.Config{})
	return SSHResult{
		Bits:      res.Bits,
		KeyBits:   512,
		Cut:       res.CutString(),
		DigestHex: fmt.Sprintf("%x", res.Output[:16]),
	}
}

// --------------------------------------------------------------- Figure 5 ---

// Fig5Result reproduces §8.3: information preserved by image transforms.
type Fig5Result struct {
	InputBits    int64 // 8 * (2 + w*h); paper: 375120 for their image
	PixelateBits int64 // paper: 1464
	BlurBits     int64 // paper: 1720
	SwirlBits    int64 // paper: 375120 (= input size)
}

// Fig5 runs the three transforms on the standard 25x25 test image.
func Fig5() Fig5Result {
	img := workload.Image(25, 25, 1)
	r := Fig5Result{InputBits: int64(8 * len(img))}
	r.PixelateBits = mustAnalyze("imagefilter", core.Inputs{Secret: img, Public: []byte{0}}, core.Config{}).Bits
	r.BlurBits = mustAnalyze("imagefilter", core.Inputs{Secret: img, Public: []byte{1}}, core.Config{}).Bits
	r.SwirlBits = mustAnalyze("imagefilter", core.Inputs{Secret: img, Public: []byte{2}}, core.Config{}).Bits
	return r
}

// ---------------------------------------------------------------- Calendar ---

// CalendarResult reproduces §8.4.
type CalendarResult struct {
	SparseBits int64 // paper: 12 (cut at the intersection loop)
	BusyBits   int64 // paper: 18 (cut at the display grid)
	SparseGrid string
	BusyGrid   string
}

// Calendar runs the sparse and busy measurements.
func Calendar() CalendarResult {
	var out CalendarResult
	res := mustAnalyze("calendar", core.Inputs{
		// One appointment 10:00-12:00 (slots 20..24).
		Secret: workload.CalendarSecret([]workload.Appointment{{StartSlot: 20, EndSlot: 24}}),
		Public: workload.CalendarQuery(1, 9, 18),
	}, core.Config{})
	out.SparseBits, out.SparseGrid = res.Bits, strings.TrimSpace(string(res.Output))
	res = mustAnalyze("calendar", core.Inputs{
		Secret: workload.CalendarSecret([]workload.Appointment{
			{StartSlot: 18, EndSlot: 20}, {StartSlot: 21, EndSlot: 23},
			{StartSlot: 25, EndSlot: 27}, {StartSlot: 30, EndSlot: 33},
			{StartSlot: 40, EndSlot: 44},
		}),
		Public: workload.CalendarQuery(5, 9, 18),
	}, core.Config{})
	out.BusyBits, out.BusyGrid = res.Bits, strings.TrimSpace(string(res.Output))
	return out
}

// ----------------------------------------------------------------- XServer ---

// XServerResult reproduces §8.5.
type XServerResult struct {
	BBoxBits       int64 // paper: ~21 for "Hello, world!"
	TextBits       int64 // 8 * 13: the direct size of the text
	PasteBits      int64 // 256: cut-and-paste is a direct flow
	ExploitBits    int64
	CheckerCaught  bool // the §6.2 checker flags the exploit
	CheckerMessage string
}

// XServer runs the §8.5 measurements, including the checker-vs-exploit
// experiment.
func XServer() XServerResult {
	text := []byte("Hello, world!")
	mkSecret := func(paste []byte) []byte {
		s := append([]byte{}, paste...)
		s = append(s, byte(len(text)))
		return append(s, text...)
	}
	plainPaste := make([]byte, 32)
	copy(plainPaste, "no digits in here at all (safe)!")
	cardPaste := []byte("card=4111111111111111 pin=0000!!")

	var out XServerResult
	res := mustAnalyze("xserver", core.Inputs{Secret: mkSecret(plainPaste), Public: []byte{0}}, core.Config{})
	out.BBoxBits = res.Bits
	out.TextBits = int64(8 * len(text))
	res = mustAnalyze("xserver", core.Inputs{Secret: mkSecret(plainPaste), Public: []byte{1}}, core.Config{})
	out.PasteBits = res.Bits
	res = mustAnalyze("xserver", core.Inputs{Secret: mkSecret(cardPaste), Public: []byte{2}}, core.Config{})
	out.ExploitBits = res.Bits

	// Policy: only the bounding-box channel (the cut of the mode-0 run) is
	// allowed. The exploit run must produce violations under the §6.2
	// checker.
	bbox := mustAnalyze("xserver", core.Inputs{Secret: mkSecret(cardPaste), Public: []byte{0}}, core.Config{})
	chk, err := check.RunTaintCheck(guest.Program("xserver"), mkSecret(cardPaste), []byte{2}, bbox.CutSites(), 0)
	if err != nil {
		panic(err)
	}
	out.CheckerCaught = len(chk.Violations) > 0
	if out.CheckerCaught {
		out.CheckerMessage = chk.Violations[0].String()
	}
	return out
}

// --------------------------------------------------------------- Figure 6 ---

// Tab6 runs the §8.6 enclosure-inference pilot over every annotated guest
// and returns one report per program (the Figure 6 rows).
func Tab6() []*infer.Report {
	var out []*infer.Report
	for _, name := range []string{"count_punct", "battleship", "calendar", "compress", "xserver"} {
		f, err := guest.AST(name)
		if err != nil {
			panic(err)
		}
		out = append(out, infer.AnalyzeFile(name, f))
	}
	return out
}

// Tab6Total aggregates the reports into the paper's overall found fraction
// (theirs: 72%).
func Tab6Total(reps []*infer.Report) (hand, found int, fraction float64) {
	for _, r := range reps {
		hand += r.HandAnnots
		found += r.FoundCount
	}
	if hand > 0 {
		fraction = float64(found) / float64(hand)
	}
	return
}

// ----------------------------------------------------------------- SP (§5.1) ---

// SPPoint is one series-parallel reduction measurement.
type SPPoint struct {
	InputBytes   int
	Nodes, Edges int
	CoreFraction float64 // the non-series-parallel share (§5.1: ~16% for bzip2)
	FlowBefore   int64
	FlowAfter    int64
}

// SPStudy reduces the exact (uncollapsed) compression graphs across input
// sizes — the raw per-operation graphs the paper applied SPQR trees to.
// The observed irreducible core is a roughly constant fraction of the
// graph (§5.1 reports ~16% for bzip2; we measure 13-16%).
func SPStudy(sizes []int) []SPPoint {
	var out []SPPoint
	for _, n := range sizes {
		res := mustAnalyze("compress", core.Inputs{Secret: workload.PiWords(n)},
			core.Config{Taint: taint.Options{Exact: true}})
		red, st := spqr.Reduce(res.Graph)
		out = append(out, SPPoint{
			InputBytes:   n,
			Nodes:        st.OrigNodes,
			Edges:        st.OrigEdges,
			CoreFraction: st.CoreFraction,
			FlowBefore:   res.Bits,
			FlowAfter:    maxflow.Compute(red, maxflow.Dinic).Flow,
		})
	}
	return out
}

// ------------------------------------------- Online compaction (§5.1/§5.2) ---

// CompactionPoint is one input size of the online-compaction study: an
// exact-mode compress run with Config.Compact enabled. TotalEdges counts
// every edge the execution emitted and grows with executed instructions;
// PeakLiveEdges is the most the arena ever held live at once, which grows
// with the graph's irreducible core — i.e. with static code locations.
// This recovers the memory argument of §5.2's collapsing without giving up
// exact per-operation labels.
type CompactionPoint struct {
	InputBytes       int
	Steps            uint64
	Bits             int64 // cross-checked against the uncompacted run
	TotalEdges       int
	PeakLiveEdges    int
	CompactionPasses int
	ReclaimedEdges   int
	Ratio            float64 // TotalEdges / PeakLiveEdges
}

// CompactionSizes is the default sweep — a prefix of Fig3Sizes, since each
// point also runs the uncompacted exact analysis as its reference.
var CompactionSizes = []int{256, 512, 1024, 2048, 4096}

// Compaction sweeps the Fig. 3 compress workload in exact mode with online
// compaction on, panicking if any compacted bound deviates from the
// uncompacted one.
func Compaction(sizes []int) []CompactionPoint {
	out := make([]CompactionPoint, 0, len(sizes))
	for _, n := range sizes {
		in := core.Inputs{Secret: workload.PiWords(n)}
		plain := mustAnalyze("compress", in, core.Config{Taint: taint.Options{Exact: true}})
		res := mustAnalyze("compress", in, core.Config{
			Taint: taint.Options{Exact: true}, Compact: 4096,
		})
		if res.Bits != plain.Bits {
			panic(fmt.Sprintf("compaction changed the bound at n=%d: %d vs %d", n, res.Bits, plain.Bits))
		}
		p := CompactionPoint{
			InputBytes:       n,
			Steps:            res.Steps,
			Bits:             res.Bits,
			TotalEdges:       res.Mem.TotalEdges,
			PeakLiveEdges:    res.Mem.PeakLiveEdges,
			CompactionPasses: res.Mem.CompactionPasses,
			ReclaimedEdges:   res.Mem.ReclaimedEdges,
		}
		if p.PeakLiveEdges > 0 {
			p.Ratio = float64(p.TotalEdges) / float64(p.PeakLiveEdges)
		}
		out = append(out, p)
	}
	return out
}

// ------------------------------------------------------------- Kraft (§3.2) ---

// KraftResult reproduces the §3.2 consistency experiment on the unary
// printer.
type KraftResult struct {
	PerRunBits  []int64 // min(8, n+1) + exit, per analyzed run
	PerRunSum   float64 // hypothetical sum over all 256 inputs: 503/256 > 1
	PerRunSound bool    // false
	MergedBits  int64   // jointly-sound bound from the merged graph
	MergedSound bool    // true
}

// Kraft runs a few unary-printer inputs individually and merged.
func Kraft() KraftResult {
	prog := guest.Program("unary")
	inputs := []byte{0, 1, 2, 5, 40, 200}
	var out KraftResult
	var graphs []*flowgraph.Graph
	for _, n := range inputs {
		res, err := core.Analyze(prog, core.Inputs{Secret: []byte{n}}, core.Config{})
		if err != nil {
			panic(err)
		}
		out.PerRunBits = append(out.PerRunBits, res.Bits)
		graphs = append(graphs, res.Graph)
	}
	var all []int64
	for n := 0; n < 256; n++ {
		k := int64(n) + 1
		if k > 8 {
			k = 8
		}
		all = append(all, k)
	}
	out.PerRunSum = kraft.Sum(all)
	out.PerRunSound = kraft.Satisfied(all)
	out.MergedBits = maxflow.Compute(merge.Graphs(graphs...), maxflow.Dinic).Flow
	uniform := make([]int64, 256)
	for i := range uniform {
		uniform[i] = out.MergedBits
	}
	out.MergedSound = kraft.Satisfied(uniform)
	return out
}

// ------------------------------------------------------- Checking (§6.2/6.3) ---

// CheckResult compares the checking modes on the count_punct policy.
type CheckResult struct {
	AnalysisBits    int64
	TaintRevealed   int64
	TaintViolations int
	LockstepOK      bool
	LockstepBits    int64
	// Step counts proxy the relative overheads (§6.3: lockstep ~2x
	// uninstrumented; §6.2: tainting-class).
	PlainSteps    uint64
	TaintSteps    uint64
	LockstepSteps uint64
}

// Checking runs both §6 checkers against the Figure 2 program and policy.
func Checking() CheckResult {
	secret := []byte(Fig2Input)
	prog := guest.Program("count_punct")
	res := mustAnalyze("count_punct", core.Inputs{Secret: secret}, core.Config{})
	var out CheckResult
	out.AnalysisBits = res.Bits

	chk, err := check.RunTaintCheck(prog, secret, nil, res.CutSites(), 0)
	if err != nil {
		panic(err)
	}
	out.TaintRevealed = chk.RevealedBits
	out.TaintViolations = len(chk.Violations)
	out.TaintSteps = chk.Steps

	dummy := make([]byte, len(secret))
	for i := range dummy {
		dummy[i] = 'x'
	}
	ls, err := check.RunLockstep(prog, secret, dummy, nil, res.CutSites(), 0)
	if err != nil {
		panic(err)
	}
	out.LockstepOK = ls.OK
	out.LockstepBits = ls.BitsTransferred
	out.LockstepSteps = ls.Steps

	m, err := core.RunPlain(prog, core.Inputs{Secret: secret}, core.Config{})
	if err != nil {
		panic(err)
	}
	out.PlainSteps = m.Steps
	return out
}

// --------------------------------------------------- Collapsing (§5.2/§5.3) ---

// CollapseResult compares exact and collapsed construction (§5.3 reports
// 3.6e9 pre-collapse nodes vs ~22000 after for their 2.5 MB run).
type CollapseResult struct {
	InputBytes     int
	Steps          uint64
	ExactNodes     int
	ExactEdges     int
	CollapsedNodes int
	CollapsedEdges int
	ExactBits      int64
	CollapsedBits  int64
	CtxNodes       int // context-sensitive collapsing
	CtxBits        int64
}

// Collapse measures graph sizes for one compression input.
func Collapse(n int) CollapseResult {
	in := core.Inputs{Secret: workload.PiWords(n)}
	exact := mustAnalyze("compress", in, core.Config{Taint: taint.Options{Exact: true}})
	coll := mustAnalyze("compress", in, core.Config{})
	ctx := mustAnalyze("compress", in, core.Config{Taint: taint.Options{ContextSensitive: true}})
	return CollapseResult{
		InputBytes:     n,
		Steps:          coll.Steps,
		ExactNodes:     exact.Graph.NumNodes(),
		ExactEdges:     exact.Graph.NumEdges(),
		CollapsedNodes: coll.Graph.NumNodes(),
		CollapsedEdges: coll.Graph.NumEdges(),
		ExactBits:      exact.Bits,
		CollapsedBits:  coll.Bits,
		CtxNodes:       ctx.Graph.NumNodes(),
		CtxBits:        ctx.Bits,
	}
}

// --------------------------------------------------- Multi-class (§10.1) ---

// MultiClassResult measures each secret class independently (the paper's
// §10.1 future-work direction) and compares the two class pipelines: the
// legacy reexec mode (one instrumented execution per class) against the
// shared multi-commodity mode (one execution, one capacity-view solve per
// class over the shared graph).
type MultiClassResult struct {
	Classes []core.ClassResult
	Joint   int64
	Sum     int64

	// Per-mode cost over Iters repetitions of the whole class set.
	Iters    int
	ReexecMS float64 // mean latency, one execution per class
	SharedMS float64 // mean latency, one execution + per-class solves
	// Executions per class actually performed by each mode (1.0 for
	// reexec; 1/N for shared).
	ReexecExecsPerClass float64
	SharedExecsPerClass float64
	// Agree reports that the two modes produced identical per-class
	// bounds on this workload.
	Agree bool
}

// MultiClass analyzes a two-appointment calendar per appointment and
// jointly: each appointment's disclosure is bounded separately, and the
// per-class bounds can sum to more than the joint bound because the 18
// grid squares are shared capacity (the crowding-out effect of §10.1).
// Both class pipelines run, timed, on the same class set.
func MultiClass() MultiClassResult {
	in := core.Inputs{
		Secret: workload.CalendarSecret([]workload.Appointment{
			{StartSlot: 20, EndSlot: 24}, {StartSlot: 30, EndSlot: 33},
		}),
		Public: workload.CalendarQuery(2, 9, 18),
	}
	classes := []core.SecretClass{
		{Name: "appointment-1", Off: 1, Len: 2},
		{Name: "appointment-2", Off: 3, Len: 2},
	}
	prog := guest.Program("calendar")
	const iters = 20

	run := func(mode string) (*core.ClassAnalysis, float64, float64) {
		cfg := core.Config{ClassMode: mode}
		var last *core.ClassAnalysis
		var execs int
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			ca, err := core.AnalyzeClassSet(prog, in, classes, cfg)
			if err != nil {
				panic(err)
			}
			last, execs = ca, ca.Executions
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / iters
		return last, ms, float64(execs) / float64(len(classes))
	}

	shared, sharedMS, sharedEPC := run(core.ClassModeShared)
	reexec, reexecMS, reexecEPC := run(core.ClassModeReexec)

	joint := mustAnalyze("calendar", in, core.Config{})
	var sum int64
	agree := true
	for i, c := range shared.Classes {
		sum += c.Bits
		if c.Bits != reexec.Classes[i].Bits {
			agree = false
		}
	}
	return MultiClassResult{
		Classes:             shared.Classes,
		Joint:               joint.Bits,
		Sum:                 sum,
		Iters:               iters,
		ReexecMS:            reexecMS,
		SharedMS:            sharedMS,
		ReexecExecsPerClass: reexecEPC,
		SharedExecsPerClass: sharedEPC,
		Agree:               agree,
	}
}

// ------------------------------------------------- Interpreter (§10.3) ---

// InterpResult demonstrates analyzing interpreted code (§10.3): the script
// is public, the interpreted data secret, and the measurement reflects the
// script's computation, not the interpreter's code.
type InterpResult struct {
	MaskNibbleBits int64 // script: OUT(input[3] & 0x0F) -> 4
	XorBits        int64 // script: OUT(input[0] ^ input[1]) -> 8
	DumpBits       int64 // script: OUT three input bytes -> 24
}

// Interp runs three scripts under the bytecode-interpreter guest.
func Interp() InterpResult {
	secret := make([]byte, 64)
	for i := range secret {
		secret[i] = byte(i*29 + 7)
	}
	runScript := func(ops ...byte) int64 {
		public := append([]byte{byte(len(ops))}, ops...)
		return mustAnalyze("interp", core.Inputs{Secret: secret, Public: public}, core.Config{}).Bits
	}
	return InterpResult{
		MaskNibbleBits: runScript(1, 3, 2, 0x0F, 5, 7, 0),
		XorBits:        runScript(1, 0, 1, 1, 4, 7, 0),
		DumpBits:       runScript(1, 0, 7, 1, 1, 7, 1, 2, 7, 0),
	}
}

// ----------------------------------------------------------------- Divzero ---

// Divzero reproduces the §3.1 division example: both behaviors reveal one
// bit under the adversarial model.
func Divzero() (zeroBits, nonzeroBits int64) {
	z := mustAnalyze("divzero", core.Inputs{Secret: []byte{9, 0, 0, 0, 0, 0, 0, 0}}, core.Config{})
	nz := mustAnalyze("divzero", core.Inputs{Secret: []byte{9, 0, 0, 0, 3, 0, 0, 0}}, core.Config{})
	return z.Bits, nz.Bits
}

// ------------------------------------------------ Engine batch throughput ---

// BatchResult measures the staged engine's parallel batch path against
// serial analysis over the same executions of the compression case study
// (ROADMAP: multi-execution throughput as the first scaling axis).
type BatchResult struct {
	Guest      string
	Runs       int
	Workers    int // GOMAXPROCS at measurement time
	JointBits  int64
	PerRunBits []int64

	Serial time.Duration // N independent Analyze calls (fresh state each)
	Multi  time.Duration // online AnalyzeMulti (§3.2 accumulation)
	Batch1 time.Duration // AnalyzeBatch, 1 worker, pooled sessions
	BatchN time.Duration // AnalyzeBatch, GOMAXPROCS workers

	Agree bool // AnalyzeBatch and AnalyzeMulti report the same joint Bits
}

// Batch runs the comparison over `runs` compress executions with growing
// secret inputs.
func Batch(runs int) BatchResult {
	prog := guest.Program("compress")
	inputs := make([]core.Inputs, runs)
	for i := range inputs {
		inputs[i] = core.Inputs{Secret: workload.PiWords(512 + 64*i)}
	}
	r := BatchResult{Guest: "compress", Runs: runs, Workers: runtime.GOMAXPROCS(0)}

	t0 := time.Now()
	for _, in := range inputs {
		res, err := core.Analyze(prog, in, core.Config{})
		if err != nil {
			panic(err)
		}
		r.PerRunBits = append(r.PerRunBits, res.Bits)
	}
	r.Serial = time.Since(t0)

	t0 = time.Now()
	multi, err := core.AnalyzeMulti(prog, inputs, core.Config{})
	if err != nil {
		panic(err)
	}
	r.Multi = time.Since(t0)

	t0 = time.Now()
	b1, err := core.AnalyzeBatch(prog, inputs, core.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	r.Batch1 = time.Since(t0)

	t0 = time.Now()
	bn, err := core.AnalyzeBatch(prog, inputs, core.Config{})
	if err != nil {
		panic(err)
	}
	r.BatchN = time.Since(t0)

	r.JointBits = bn.Bits
	r.Agree = bn.Bits == multi.Bits && b1.Bits == multi.Bits
	return r
}

// --------------------------------------------- Engine graceful degradation ---

// DegradePoint is one solver-budget setting: the bound it yields and what
// the solve cost. Degraded points report the trivial-cut fallback.
type DegradePoint struct {
	Budget   int64
	Bits     int64
	Degraded bool
	Solve    time.Duration
}

// DegradeResult sweeps the solver work budget on one compress run, showing
// the robustness tradeoff: every budget returns a sound bound, tightening
// toward the exact max flow as the budget grows.
type DegradeResult struct {
	Guest     string
	ExactBits int64
	Points    []DegradePoint
}

// Degrade measures the budgeted-solve fallback on a compress execution.
func Degrade(n int) DegradeResult {
	prog := guest.Program("compress")
	in := core.Inputs{Secret: workload.PiWords(n)}
	exact := mustAnalyze("compress", in, core.Config{})
	r := DegradeResult{Guest: "compress", ExactBits: exact.Bits}
	for _, budget := range []int64{100, 1_000, 10_000, 100_000, 1_000_000} {
		res, err := core.Analyze(prog, in, core.Config{Budget: core.Budget{SolverWork: budget}})
		if err != nil {
			panic(err)
		}
		if res.Bits < exact.Bits {
			panic("degraded bound below exact max flow")
		}
		r.Points = append(r.Points, DegradePoint{
			Budget: budget, Bits: res.Bits, Degraded: res.Degraded, Solve: res.Stages.Solve,
		})
	}
	return r
}
