package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"flowcheck/internal/core"
)

// ------------------------------------------------ Content-addressed cache ---

// CacheResult measures the staged cache's three serving regimes on one
// program (DESIGN.md "Content-addressed caching"): cold — every input
// analyzed through a fresh cache, the full pipeline runs; incremental —
// fresh inputs against a cache that has seen the program once, so the
// static analysis and the collapsed graph skeleton are reused and only
// Execute + the capacity re-solve run; warm — exact repeats, answered
// entirely from the cached result without touching a session.
type CacheResult struct {
	Inputs int // distinct inputs per phase

	Cold        time.Duration // phase totals over Inputs runs
	Incremental time.Duration
	Warm        time.Duration

	ColdDisp, IncDisp, WarmDisp string // uniform disposition per phase

	BitsAgree bool    // every cached bound matches an uncached rerun
	HitRatio  float64 // result-kind hit ratio over the warm sweep's cache
	Evictions int64   // result-kind evictions (want 0 at this budget)
}

// cacheStudySource generates a straight-line mixing program: every
// statement is its own code location, so the collapsed graph carries one
// node per statement and Build + Solve are a substantial share of the
// pipeline — the share an incremental re-solve saves. Control flow is
// input-independent, so every input yields the same topology and the
// incremental phase exercises the skeleton-refill path rather than
// falling back to a full build.
func cacheStudySource(stmts int) string {
	var b strings.Builder
	b.WriteString("int main() {\n\tchar buf[4];\n\tread_secret(buf, 4);\n\tint acc;\n\tacc = 0;\n")
	for i := 0; i < stmts; i++ {
		fmt.Fprintf(&b, "\tacc = acc ^ (buf[%d] + %d);\n", i%4, i%251)
	}
	b.WriteString("\tputc(acc & 255);\n\treturn 0;\n}\n")
	return b.String()
}

// CacheStudy sweeps n distinct inputs through each regime.
func CacheStudy(n int) CacheResult {
	prog, err := core.CompileCached("cachestudy.mc", cacheStudySource(1000))
	if err != nil {
		panic(err)
	}
	inputs := make([]core.Inputs, n)
	for i := range inputs {
		inputs[i] = core.Inputs{Secret: []byte{byte(i), byte(i >> 8), 0x5A, byte(7 * i)}}
	}
	r := CacheResult{Inputs: n, BitsAgree: true}
	ctx := context.Background()

	sweep := func(cfg core.Config, ins []core.Inputs) (time.Duration, string) {
		disp := ""
		t0 := time.Now()
		for _, in := range ins {
			res, err := core.AnalyzeContext(ctx, prog, in, cfg)
			if err != nil {
				panic(err)
			}
			if disp == "" {
				disp = res.Cache.Disposition
			} else if res.Cache.Disposition != disp {
				panic(fmt.Sprintf("mixed dispositions in one phase: %s vs %s", disp, res.Cache.Disposition))
			}
		}
		return time.Since(t0), disp
	}

	// Cold: a fresh cache per input — nothing to reuse, every run is a miss.
	t0 := time.Now()
	for _, in := range inputs {
		cfg := core.Config{Cache: core.NewCache(core.CacheOptions{})}
		if _, err := core.AnalyzeContext(ctx, prog, in, cfg); err != nil {
			panic(err)
		}
	}
	r.Cold, r.ColdDisp = time.Since(t0), core.CacheMiss

	// Incremental: one seed run caches the skeleton and static analysis;
	// the n fresh inputs then re-run only Execute + the capacity re-solve.
	// Each cached result retains its ~25k-edge graph, so the budget is
	// sized to hold the whole sweep — eviction is measured elsewhere
	// (stagecache tests), not here.
	cache := core.NewCache(core.CacheOptions{MaxBytes: 512 << 20})
	cfg := core.Config{Cache: cache}
	if _, err := core.AnalyzeContext(ctx, prog, core.Inputs{Secret: []byte{0xFF, 0xEE, 0xDD, 0xCC}}, cfg); err != nil {
		panic(err)
	}
	r.Incremental, r.IncDisp = sweep(cfg, inputs)

	// Warm: the same inputs again — full result hits, no pipeline work.
	r.Warm, r.WarmDisp = sweep(cfg, inputs)

	// Cached bounds must match uncached reruns bit for bit.
	for _, in := range inputs {
		cached, err := core.AnalyzeContext(ctx, prog, in, cfg)
		if err != nil {
			panic(err)
		}
		plain, err := core.Analyze(prog, in, core.Config{})
		if err != nil {
			panic(err)
		}
		if cached.Bits != plain.Bits || cached.TaintedOutputBits != plain.TaintedOutputBits ||
			string(cached.Output) != string(plain.Output) {
			r.BitsAgree = false
		}
	}

	st := cache.Stats()
	ks := st.Kinds[core.CacheKindResult]
	r.HitRatio = ks.HitRatio()
	r.Evictions = ks.Evictions
	return r
}
