package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"flowcheck/internal/ledger"
)

// ---------------------------------------------- Leakage-ledger overhead ---

// LedgerResult measures what the durable leakage-budget ledger adds to a
// served request: one Charge before the run and one Settle after. Three
// durability regimes bracket the cost — volatile (no WAL at all),
// durable without fsync (WAL appends ride the page cache), and durable
// with fsync per append (the fail-closed default: a settled record is on
// disk when Settle returns) — plus the cost of a budget denial, which
// touches no WAL (denials are derived state, recomputed on replay).
type LedgerResult struct {
	Ops int // charge+settle pairs per regime

	Volatile    time.Duration // regime totals over Ops pairs
	DurableLazy time.Duration // WAL, SyncEvery: -1
	DurableSync time.Duration // WAL, fsync every append
	Denied      time.Duration // over-budget denials (no I/O)

	// ReplayOK: reopening the synced regime's directory recovers the
	// exact cumulative bits the in-memory ledger held.
	ReplayOK bool
	// WALBytes is the synced regime's WAL size after Ops pairs, showing
	// what snapshot compaction left behind.
	WALBytes int64
}

// LedgerStudy runs n charge+settle pairs through each regime.
func LedgerStudy(n int) LedgerResult {
	r := LedgerResult{Ops: n}

	pairs := func(l *ledger.Ledger) time.Duration {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			c, err := l.Charge("bench", "prog", 64)
			if err != nil {
				panic(err)
			}
			if err := l.Settle(c, 3); err != nil {
				panic(err)
			}
		}
		return time.Since(t0)
	}

	{
		l, err := ledger.Open(ledger.Options{})
		if err != nil {
			panic(err)
		}
		r.Volatile = pairs(l)
		l.Close()
	}

	{
		dir, err := os.MkdirTemp("", "flowbench-ledger-lazy-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, err := ledger.Open(ledger.Options{Dir: dir, SyncEvery: -1})
		if err != nil {
			panic(err)
		}
		r.DurableLazy = pairs(l)
		l.Close()
	}

	var wantBits int64
	{
		dir, err := os.MkdirTemp("", "flowbench-ledger-sync-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, err := ledger.Open(ledger.Options{Dir: dir, SyncEvery: 1})
		if err != nil {
			panic(err)
		}
		r.DurableSync = pairs(l)
		wantBits = l.Cumulative("bench", "prog")
		st := l.Stats()
		r.WALBytes = st.WALBytes
		l.Close()

		// Crash-replay sanity: reopening recovers the same cumulative bits.
		l2, err := ledger.Open(ledger.Options{Dir: dir})
		if err != nil {
			panic(err)
		}
		r.ReplayOK = l2.Cumulative("bench", "prog") == wantBits
		l2.Close()
	}

	{
		l, err := ledger.Open(ledger.Options{BudgetBits: 1})
		if err != nil {
			panic(err)
		}
		if _, err := l.Charge("bench", "prog", 1); err != nil {
			panic(err)
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := l.Charge("bench", "prog", 64); !errors.Is(err, ledger.ErrBudgetExceeded) {
				panic(fmt.Sprintf("denial bench: %v", err))
			}
		}
		r.Denied = time.Since(t0)
		l.Close()
	}

	return r
}
