package ledger

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowcheck/internal/fault"
)

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func mustOpen(t *testing.T, opts Options) *Ledger {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quiet()
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func chargeSettle(t *testing.T, l *Ledger, principal, program string, estimate, actual int64) {
	t.Helper()
	c, err := l.Charge(principal, program, estimate)
	if err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := l.Settle(c, actual); err != nil {
		t.Fatalf("Settle: %v", err)
	}
}

func TestChargeSettleAccounting(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 100})

	c, err := l.Charge("alice", "auth", 32)
	if err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 32 {
		t.Fatalf("cumulative while pending = %d, want 32 (the estimate)", got)
	}
	if err := l.Settle(c, 3); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 3 {
		t.Fatalf("cumulative after settle = %d, want 3 (the measured bits)", got)
	}
	// Settle is idempotent.
	if err := l.Settle(c, 3); err != nil {
		t.Fatalf("re-Settle: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 3 {
		t.Fatalf("cumulative after double settle = %d, want 3", got)
	}
	if rem, ok := l.Remaining("alice", "auth"); !ok || rem != 97 {
		t.Fatalf("Remaining = %d,%v, want 97,true", rem, ok)
	}
}

func TestBudgetDenialIsTyped(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 10})

	chargeSettle(t, l, "alice", "auth", 8, 8)
	_, err := l.Charge("alice", "auth", 8)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget charge: got %v, want ErrBudgetExceeded", err)
	}
	var ex *ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("no ExceededError detail in %v", err)
	}
	if ex.CumulativeBits != 8 || ex.EstimateBits != 8 || ex.BudgetBits != 10 {
		t.Fatalf("detail %+v, want cumulative=8 estimate=8 budget=10", ex)
	}
	// The estimate alone can exceed budget even at zero cumulative.
	if _, err := l.Charge("bob", "auth", 11); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oversized first charge: got %v, want ErrBudgetExceeded", err)
	}
	// A fitting charge still goes through.
	if _, err := l.Charge("alice", "auth", 2); err != nil {
		t.Fatalf("fitting charge denied: %v", err)
	}
	st := l.Stats()
	if st.Denied != 2 {
		t.Fatalf("Stats.Denied = %d, want 2", st.Denied)
	}
}

func TestPendingCountsTowardBudget(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 10})
	if _, err := l.Charge("alice", "auth", 8); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	// 8 pending + 8 estimated > 10: denied even though nothing settled yet.
	if _, err := l.Charge("alice", "auth", 8); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("concurrent charge: got %v, want ErrBudgetExceeded", err)
	}
}

func TestProgramBudgetOverride(t *testing.T) {
	l := mustOpen(t, Options{
		Dir:            t.TempDir(),
		BudgetBits:     100,
		ProgramBudgets: map[string]int64{"sshauth": 4},
	})
	if _, err := l.Charge("alice", "sshauth", 5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("per-program budget not enforced: %v", err)
	}
	if _, err := l.Charge("alice", "other", 5); err != nil {
		t.Fatalf("default budget should admit: %v", err)
	}
}

func TestUnlimitedBudgetNeverDenies(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()}) // BudgetBits 0 = unlimited
	for i := 0; i < 10; i++ {
		chargeSettle(t, l, "alice", "auth", 1<<40, 1<<40)
	}
	if rem, ok := l.Remaining("alice", "auth"); ok {
		t.Fatalf("unlimited pair reported remaining %d", rem)
	}
	if got := l.Cumulative("alice", "auth"); got != 10<<40 {
		t.Fatalf("cumulative = %d, want %d", got, int64(10)<<40)
	}
}

func TestWindowDecayResetsSettled(t *testing.T) {
	now := time.Unix(1000, 0)
	l := mustOpen(t, Options{
		Dir:        t.TempDir(),
		BudgetBits: 10,
		Window:     time.Minute,
		Now:        func() time.Time { return now },
	})
	chargeSettle(t, l, "alice", "auth", 8, 8)
	if _, err := l.Charge("alice", "auth", 8); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("within window: got %v, want denial", err)
	}
	now = now.Add(2 * time.Minute)
	c, err := l.Charge("alice", "auth", 8)
	if err != nil {
		t.Fatalf("after window elapsed, charge denied: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 8 {
		t.Fatalf("cumulative after reset = %d, want 8 (just the new pending)", got)
	}
	l.Settle(c, 2)
	if got := l.Cumulative("alice", "auth"); got != 2 {
		t.Fatalf("cumulative = %d, want 2", got)
	}
}

func TestWindowResetSurvivesPending(t *testing.T) {
	now := time.Unix(1000, 0)
	l := mustOpen(t, Options{
		Dir:    t.TempDir(),
		Window: time.Minute,
		Now:    func() time.Time { return now },
	})
	inflight, err := l.Charge("alice", "auth", 8)
	if err != nil {
		t.Fatal(err)
	}
	chargeSettle(t, l, "alice", "auth", 4, 4)
	now = now.Add(2 * time.Minute)
	// The reset fires on this charge; the in-flight 8 must survive it.
	c2, err := l.Charge("alice", "auth", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Cumulative("alice", "auth"); got != 10 {
		t.Fatalf("cumulative after reset = %d, want 10 (8 in-flight + 2 new pending)", got)
	}
	l.Settle(inflight, 1)
	l.Settle(c2, 1)
	if got := l.Cumulative("alice", "auth"); got != 2 {
		t.Fatalf("cumulative = %d, want 2", got)
	}
}

func TestManualReset(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 10})
	chargeSettle(t, l, "alice", "auth", 10, 10)
	if _, err := l.Charge("alice", "auth", 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want denial before reset, got %v", err)
	}
	if err := l.Reset("alice", "auth"); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := l.Charge("alice", "auth", 1); err != nil {
		t.Fatalf("charge after reset denied: %v", err)
	}
}

func TestFailClosedDeniesOnWriteError(t *testing.T) {
	plan := fault.NewIOPlan().FailWrite(1) // fail the second append
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 100, Faults: plan})

	if _, err := l.Charge("alice", "auth", 8); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	_, err := l.Charge("alice", "auth", 8)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("charge with failing WAL: got %v, want ErrUnavailable", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("unavailable must not look like a budget denial")
	}
	var ue *UnavailableError
	if !errors.As(err, &ue) || !errors.Is(ue.Cause, fault.ErrInjectedIO) {
		t.Fatalf("detail %+v", err)
	}
	// The denied charge did not count in memory.
	if got := l.Cumulative("alice", "auth"); got != 8 {
		t.Fatalf("cumulative = %d, want 8 (only the first charge)", got)
	}
	// The ledger recovers on the next healthy append.
	if _, err := l.Charge("alice", "auth", 8); err != nil {
		t.Fatalf("post-fault charge: %v", err)
	}
	st := l.Stats()
	if st.AppendErrors != 1 {
		t.Fatalf("AppendErrors = %d, want 1", st.AppendErrors)
	}
}

func TestFailClosedDeniesOnSyncError(t *testing.T) {
	plan := fault.NewIOPlan().FailSync(0)
	l := mustOpen(t, Options{Dir: t.TempDir(), Faults: plan})
	_, err := l.Charge("alice", "auth", 8)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("charge with failing fsync: got %v, want ErrUnavailable", err)
	}
	if st := l.Stats(); st.SyncErrors != 1 {
		t.Fatalf("SyncErrors = %d, want 1", st.SyncErrors)
	}
}

func TestFailOpenAdmitsThroughFaults(t *testing.T) {
	plan := fault.NewIOPlan().FailWrite(0).FailSync(1)
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 100, FailOpen: true, Faults: plan})

	c, err := l.Charge("alice", "auth", 8) // write fails, fail-open admits
	if err != nil {
		t.Fatalf("fail-open charge: %v", err)
	}
	if err := l.Settle(c, 3); err != nil { // sync 1 fails, fail-open shrugs
		t.Fatalf("fail-open settle: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 3 {
		t.Fatalf("cumulative = %d, want 3 — in-memory accounting must continue", got)
	}
	st := l.Stats()
	if st.LostWrites == 0 {
		t.Fatal("fail-open losses must be counted")
	}
}

func TestSettleErrorKeepsChargePending(t *testing.T) {
	plan := fault.NewIOPlan().FailWrite(1)
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 100, Faults: plan})
	c, err := l.Charge("alice", "auth", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Settle(c, 2); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("settle with failing WAL: got %v, want ErrUnavailable", err)
	}
	// The charge stays pending at its estimate — exactly what a replay
	// would reconstruct.
	if got := l.Cumulative("alice", "auth"); got != 8 {
		t.Fatalf("cumulative = %d, want 8 (estimate still pending)", got)
	}
	// A retried settle on a healthy WAL completes it.
	if err := l.Settle(c, 2); err != nil {
		t.Fatalf("retried settle: %v", err)
	}
	if got := l.Cumulative("alice", "auth"); got != 2 {
		t.Fatalf("cumulative = %d, want 2", got)
	}
}

func TestVolatileLedgerWorksWithoutDir(t *testing.T) {
	l := mustOpen(t, Options{BudgetBits: 10})
	chargeSettle(t, l, "alice", "auth", 8, 8)
	if _, err := l.Charge("alice", "auth", 8); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("volatile ledger must still enforce: %v", err)
	}
	st := l.Stats()
	if st.Durable {
		t.Fatal("volatile ledger claims durability")
	}
	if st.Appends != 0 {
		t.Fatalf("volatile ledger counted %d appends", st.Appends)
	}
}

func TestStatsEntriesAndNearThreshold(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 10})
	chargeSettle(t, l, "alice", "auth", 9, 9) // 90% of budget
	chargeSettle(t, l, "bob", "auth", 2, 2)

	st := l.Stats()
	if len(st.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(st.Entries))
	}
	if st.Entries[0].Principal != "alice" || st.Entries[1].Principal != "bob" {
		t.Fatalf("entries not sorted: %+v", st.Entries)
	}
	a := st.Entries[0]
	if !a.NearThreshold || a.RemainingBits != 1 || a.MeanBitsPerQuery != 9 {
		t.Fatalf("alice entry %+v", a)
	}
	if st.Entries[1].NearThreshold {
		t.Fatalf("bob at 20%% flagged near-threshold")
	}
	if len(st.NearThreshold) != 1 || st.NearThreshold[0] != "alice/auth" {
		t.Fatalf("NearThreshold = %v", st.NearThreshold)
	}
}

func TestSnapshotCompactionShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SnapshotEvery: 8})
	for i := 0; i < 20; i++ {
		chargeSettle(t, l, "alice", "auth", 8, 1)
	}
	st := l.Stats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot taken despite SnapshotEvery=8 and 40 appends")
	}
	fi, err := os.Stat(filepath.Join(dir, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// 40 appends at ~40 bytes each would be ~1600 bytes un-compacted; after
	// compaction only the records since the last snapshot remain.
	if fi.Size() > 800 {
		t.Fatalf("WAL is %d bytes after compaction", fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "ledger.snap")); err != nil {
		t.Fatalf("no snapshot file: %v", err)
	}
	// And the compacted state reopens to the same totals.
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir})
	if got := l2.Cumulative("alice", "auth"); got != 20 {
		t.Fatalf("reopened cumulative = %d, want 20", got)
	}
}

func TestClosedLedgerRejects(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	c, _ := l.Charge("alice", "auth", 1)
	l.Close()
	if _, err := l.Charge("alice", "auth", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("charge after close: %v", err)
	}
	if err := l.Settle(c, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("settle after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncEveryPolicies(t *testing.T) {
	t.Run("never", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), SyncEvery: -1})
		chargeSettle(t, l, "a", "p", 1, 1)
		if st := l.Stats(); st.Syncs != 0 {
			t.Fatalf("SyncEvery=-1 synced %d times", st.Syncs)
		}
	})
	t.Run("batched", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), SyncEvery: 4})
		for i := 0; i < 4; i++ { // 8 appends = 2 sync batches
			chargeSettle(t, l, "a", "p", 1, 1)
		}
		if st := l.Stats(); st.Syncs != 2 {
			t.Fatalf("SyncEvery=4 over 8 appends synced %d times, want 2", st.Syncs)
		}
	})
	t.Run("every", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir()})
		chargeSettle(t, l, "a", "p", 1, 1)
		if st := l.Stats(); st.Syncs != 2 {
			t.Fatalf("default sync policy over 2 appends synced %d times, want 2", st.Syncs)
		}
	})
}

func TestNegativeValuesClampToZero(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), BudgetBits: 10})
	c, err := l.Charge("alice", "auth", -5)
	if err != nil {
		t.Fatal(err)
	}
	if c.EstimateBits != 0 {
		t.Fatalf("negative estimate charged as %d", c.EstimateBits)
	}
	if err := l.Settle(c, -3); err != nil {
		t.Fatal(err)
	}
	if got := l.Cumulative("alice", "auth"); got != 0 {
		t.Fatalf("cumulative = %d, want 0", got)
	}
}
