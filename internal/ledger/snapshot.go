package ledger

// snapshot.go is recovery and compaction. A snapshot is one framed record
// (same CRC framing as the WAL) holding the last LSN it covers plus the
// full entry table as JSON, written atomically (tmp + fsync + rename).
// Compaction writes a snapshot and truncates the WAL; a crash anywhere in
// that sequence is safe because replay skips WAL records at or below the
// snapshot's LSN. Recovery loads the snapshot, replays the WAL tail, and
// truncates a torn or corrupt tail at the last whole record — loudly,
// with counters, never silently.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// snapEntry is one (principal, program) pair in the snapshot.
type snapEntry struct {
	Principal     string           `json:"principal"`
	Program       string           `json:"program"`
	Settled       int64            `json:"settled_bits"`
	Queries       int64            `json:"queries"`
	Denied        int64            `json:"denied"`
	LastBits      int64            `json:"last_bits"`
	WindowStartNS int64            `json:"window_start_ns"`
	Pending       map[uint64]int64 `json:"pending,omitempty"` // charge LSN -> estimate
}

type snapFile struct {
	LastLSN uint64      `json:"last_lsn"`
	Entries []snapEntry `json:"entries"`
}

// recover loads the snapshot and replays the WAL into l.mu. Called from
// Open before the WAL is opened for appending; no locking needed.
func (l *Ledger) recover() error {
	os.Remove(l.snapPath() + ".tmp") // a compaction that died mid-write

	snapLSN, err := l.loadSnapshot()
	if err != nil {
		if !l.opts.FailOpen {
			return &UnavailableError{Op: "open", Cause: err}
		}
		// Fail open: recover from the WAL alone. Everything the snapshot
		// covered that the WAL no longer holds is lost — say so.
		l.log.Error("ledger: snapshot unreadable; recovering from WAL only (fail-open) — "+
			"compacted history is lost and cumulative bits may under-count", "err", err)
		snapLSN = 0
	}
	if l.mu.nextLSN <= snapLSN {
		l.mu.nextLSN = snapLSN + 1
	}
	return l.replayWAL(snapLSN)
}

// loadSnapshot reads ledger.snap into l.mu and returns the LSN it covers
// (0 when there is no snapshot).
func (l *Ledger) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(l.snapPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("reading snapshot: %w", err)
	}
	payload, consumed, ok := readFrame(data)
	if !ok || consumed != len(data) || len(payload) < 9 || payload[0] != recSnapshot {
		return 0, fmt.Errorf("snapshot %s is corrupt (%d bytes)", l.snapPath(), len(data))
	}
	lastLSN := binary.LittleEndian.Uint64(payload[1:9])
	var sf snapFile
	if err := json.Unmarshal(payload[9:], &sf); err != nil {
		return 0, fmt.Errorf("snapshot %s: %w", l.snapPath(), err)
	}
	if sf.LastLSN != lastLSN {
		return 0, fmt.Errorf("snapshot %s: LSN header %d != body %d", l.snapPath(), lastLSN, sf.LastLSN)
	}
	for _, se := range sf.Entries {
		k := pairKey{se.Principal, se.Program}
		e := &entry{
			settled:     se.Settled,
			pending:     map[uint64]int64{},
			queries:     se.Queries,
			denied:      se.Denied,
			lastBits:    se.LastBits,
			windowStart: time.Unix(0, se.WindowStartNS),
		}
		for lsn, est := range se.Pending {
			e.pending[lsn] = est
			e.pendingBits += est
			l.mu.pending[lsn] = k
		}
		l.mu.entries[k] = e
	}
	return lastLSN, nil
}

// replayWAL applies every valid WAL record with lsn > snapLSN, truncating
// the file at the first torn or corrupt frame. The fault plan's scripted
// tail corruption is applied to the file first, so the injected damage
// goes through exactly the code path real damage would.
func (l *Ledger) replayWAL(snapLSN uint64) error {
	path := l.walPath()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		if !l.opts.FailOpen {
			return &UnavailableError{Op: "open", Cause: err}
		}
		l.log.Error("ledger: WAL unreadable; recovering from snapshot only (fail-open)", "err", err)
		return nil
	}
	if n := l.opts.Faults.TailCorruption(); n > 0 && len(data) > 0 {
		if n > len(data) {
			n = len(data)
		}
		for i := len(data) - n; i < len(data); i++ {
			data[i] ^= 0xFF
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return &UnavailableError{Op: "open", Cause: err}
		}
		l.log.Warn("ledger: injected tail corruption", "bytes", n)
	}

	off := 0
	for off < len(data) {
		payload, consumed, ok := readFrame(data[off:])
		if !ok {
			break
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// CRC-valid but undecodable: version skew or in-frame damage.
			// Framing downstream can't be trusted either; stop here.
			l.log.Warn("ledger: undecodable WAL record; truncating", "offset", off, "err", derr)
			break
		}
		off += consumed
		if rec.lsn <= snapLSN {
			continue // already folded into the snapshot
		}
		l.applyRecord(rec)
		l.mu.stats.replayedRecords++
		if rec.lsn >= l.mu.nextLSN {
			l.mu.nextLSN = rec.lsn + 1
		}
	}
	if off < len(data) {
		dropped := len(data) - off
		if err := os.Truncate(path, int64(off)); err != nil {
			if !l.opts.FailOpen {
				return &UnavailableError{Op: "open", Cause: err}
			}
			l.log.Error("ledger: could not truncate corrupt WAL tail (fail-open)", "err", err)
		}
		l.mu.stats.truncations++
		l.mu.stats.truncatedBytes += int64(dropped)
		l.log.Warn("ledger: truncated torn/corrupt WAL tail",
			"valid_bytes", off, "dropped_bytes", dropped)
	}
	return nil
}

// applyRecord folds one replayed record into the in-memory state.
func (l *Ledger) applyRecord(rec walRecord) {
	switch rec.typ {
	case recCharge:
		k := pairKey{rec.principal, rec.program}
		e := l.entryLocked(k)
		e.pending[rec.lsn] = rec.estimate
		e.pendingBits += rec.estimate
		l.mu.pending[rec.lsn] = k
	case recSettle:
		if k, ok := l.mu.pending[rec.chargeLSN]; ok {
			if e := l.mu.entries[k]; e != nil {
				if est, ok := e.pending[rec.chargeLSN]; ok {
					delete(e.pending, rec.chargeLSN)
					delete(l.mu.pending, rec.chargeLSN)
					e.pendingBits -= est
					e.settled += rec.actual
					e.queries++
					e.lastBits = rec.actual
				}
			}
		}
	case recReset:
		k := pairKey{rec.principal, rec.program}
		e := l.entryLocked(k)
		e.settled = 0
		e.windowStart = time.Unix(0, rec.windowStartNS)
	}
}

// settleRecovered pessimistically settles every charge that was in flight
// when the previous process died: the run may have completed and released
// its output just before the crash, so each is settled at its full
// estimate — charged, never dropped. The settle records are appended so a
// second crash replays the same state; an append failure here only means
// the next replay re-derives the identical pessimistic answer.
func (l *Ledger) settleRecovered() {
	if len(l.mu.pending) == 0 {
		return
	}
	for lsn, k := range l.mu.pending {
		e := l.mu.entries[k]
		if e == nil {
			delete(l.mu.pending, lsn)
			continue
		}
		est := e.pending[lsn]
		settleLSN := l.mu.nextLSN
		if err := l.appendLocked(encodeSettle(settleLSN, lsn, est)); err != nil {
			l.log.Warn("ledger: recovered charge not durably settled; replay will re-derive it",
				"charge_lsn", lsn, "estimate_bits", est, "err", err)
		} else {
			l.mu.nextLSN = settleLSN + 1
		}
		delete(e.pending, lsn)
		delete(l.mu.pending, lsn)
		e.pendingBits -= est
		e.settled += est // pessimistic: the whole estimate, not a measured bound
		l.mu.stats.recoveredPending++
		l.log.Warn("ledger: recovered in-flight charge at full estimate",
			"principal", k.principal, "program", k.program, "bits", est)
	}
	l.maybeCompactLocked()
}

// snapshotLocked compacts: write the full state as a snapshot (atomic via
// tmp + fsync + rename), then truncate the WAL. Crash-ordering argument
// in the file comment.
func (l *Ledger) snapshotLocked() error {
	sf := snapFile{LastLSN: l.mu.nextLSN - 1}
	for k, e := range l.mu.entries {
		se := snapEntry{
			Principal:     k.principal,
			Program:       k.program,
			Settled:       e.settled,
			Queries:       e.queries,
			Denied:        e.denied,
			LastBits:      e.lastBits,
			WindowStartNS: e.windowStart.UnixNano(),
		}
		if len(e.pending) > 0 {
			se.Pending = make(map[uint64]int64, len(e.pending))
			for lsn, est := range e.pending {
				se.Pending[lsn] = est
			}
		}
		sf.Entries = append(sf.Entries, se)
	}
	body, err := json.Marshal(sf)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	payload.WriteByte(recSnapshot)
	var lsnb [8]byte
	binary.LittleEndian.PutUint64(lsnb[:], sf.LastLSN)
	payload.Write(lsnb[:])
	payload.Write(body)

	tmp := l.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame(payload.Bytes())); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.snapPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	// Snapshot is durable and covers every appended record; the WAL can go.
	if err := l.mu.wal.Truncate(0); err != nil {
		// Old records stay; replay will skip them by LSN. Harmless but big.
		l.log.Warn("ledger: WAL truncate after snapshot failed; replay will skip by LSN", "err", err)
	}
	l.mu.appends = 0
	l.mu.syncDebt = 0
	l.mu.snapshots++
	return nil
}
