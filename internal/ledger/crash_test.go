package ledger

// crash_test.go is the in-process half of the crash-kill soak: a "crash"
// abandons the ledger without Close (the file descriptor leaks until the
// test exits, exactly as a SIGKILL would leave it) and reopens the same
// directory. The invariants, from the charge-before-run protocol:
//
//   - every settled charge is recovered bit-for-bit;
//   - every in-flight charge is recovered pessimistically at its full
//     estimate — charged, never dropped;
//   - a budget exhausted before the crash is still exhausted after.
//
// The process-level version (kill -9 against flowserved, then restart and
// assert the same invariants over HTTP) lives in CI's service-smoke job.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flowcheck/internal/fault"
)

// abandon opens a ledger that the caller will NOT close, simulating a
// process that dies with the WAL file open.
func abandon(t *testing.T, opts Options) *Ledger {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quiet()
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestCrashRecoversSettledBitForBit(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, BudgetBits: 1000})
	chargeSettle(t, l, "alice", "auth", 32, 3)
	chargeSettle(t, l, "alice", "auth", 32, 5)
	chargeSettle(t, l, "bob", "guess", 16, 2)
	// No Close: crash.

	l2 := mustOpen(t, Options{Dir: dir, BudgetBits: 1000})
	if got := l2.Cumulative("alice", "auth"); got != 8 {
		t.Fatalf("alice/auth recovered %d bits, want 8", got)
	}
	if got := l2.Cumulative("bob", "guess"); got != 2 {
		t.Fatalf("bob/guess recovered %d bits, want 2", got)
	}
	st := l2.Stats()
	if st.RecoveredPending != 0 {
		t.Fatalf("RecoveredPending = %d, want 0 (everything settled)", st.RecoveredPending)
	}
	if st.ReplayedRecords != 6 {
		t.Fatalf("ReplayedRecords = %d, want 6 (3 charges + 3 settles)", st.ReplayedRecords)
	}
}

func TestCrashRecoversInFlightPessimistically(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, BudgetBits: 1000})
	chargeSettle(t, l, "alice", "auth", 32, 3)
	if _, err := l.Charge("alice", "auth", 32); err != nil { // in flight at crash
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir, BudgetBits: 1000})
	// 3 settled + 32 recovered at the full estimate, not dropped, not 3+measured.
	if got := l2.Cumulative("alice", "auth"); got != 35 {
		t.Fatalf("recovered %d bits, want 35 (3 settled + 32 pessimistic)", got)
	}
	st := l2.Stats()
	if st.RecoveredPending != 1 {
		t.Fatalf("RecoveredPending = %d, want 1", st.RecoveredPending)
	}
	// The pessimistic settle was made durable: a second crash right now
	// replays to the identical state.
	l3 := mustOpen(t, Options{Dir: dir, BudgetBits: 1000})
	if got := l3.Cumulative("alice", "auth"); got != 35 {
		t.Fatalf("second recovery %d bits, want 35", got)
	}
	if st := l3.Stats(); st.RecoveredPending != 0 {
		t.Fatalf("second recovery RecoveredPending = %d, want 0", st.RecoveredPending)
	}
}

func TestBudgetExhaustionSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, BudgetBits: 10})
	chargeSettle(t, l, "alice", "auth", 10, 10)
	if _, err := l.Charge("alice", "auth", 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("pre-crash: %v, want ErrBudgetExceeded", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, BudgetBits: 10})
	if _, err := l2.Charge("alice", "auth", 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("post-crash: %v, want ErrBudgetExceeded — exhaustion must survive restart", err)
	}
}

func TestTornTailIsTruncatedNotSkipped(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir})
	chargeSettle(t, l, "alice", "auth", 32, 3)
	c, err := l.Charge("alice", "auth", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Settle(c, 4); err != nil {
		t.Fatal(err)
	}

	// Corrupt the final record (the settle) as a torn write would.
	plan := fault.NewIOPlan().CorruptTail(5)
	l2 := mustOpen(t, Options{Dir: dir, Faults: plan})
	st := l2.Stats()
	if st.Truncations != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("truncations=%d bytes=%d, want a counted truncation", st.Truncations, st.TruncatedBytes)
	}
	// The torn settle is gone; its charge is recovered pessimistically:
	// 3 settled + 16 at estimate.
	if got := l2.Cumulative("alice", "auth"); got != 19 {
		t.Fatalf("recovered %d bits, want 19 (3 settled + 16 pessimistic)", got)
	}
	if st.RecoveredPending != 1 {
		t.Fatalf("RecoveredPending = %d, want 1", st.RecoveredPending)
	}

	// The file was physically truncated: a third open replays cleanly.
	l3 := mustOpen(t, Options{Dir: dir})
	if st := l3.Stats(); st.Truncations != 0 {
		t.Fatalf("third open still truncating (%d)", st.Truncations)
	}
	if got := l3.Cumulative("alice", "auth"); got != 19 {
		t.Fatalf("third open %d bits, want 19", got)
	}
}

func TestWholeWALCorruptRecoversEmpty(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, SnapshotEvery: -1})
	chargeSettle(t, l, "alice", "auth", 8, 8)

	fi, err := os.Stat(filepath.Join(dir, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewIOPlan().CorruptTail(int(fi.Size()))
	l2 := mustOpen(t, Options{Dir: dir, Faults: plan})
	st := l2.Stats()
	if st.Truncations != 1 || st.TruncatedBytes != fi.Size() {
		t.Fatalf("truncations=%d bytes=%d, want whole file (%d bytes) dropped and counted",
			st.Truncations, st.TruncatedBytes, fi.Size())
	}
	if got := l2.Cumulative("alice", "auth"); got != 0 {
		t.Fatalf("recovered %d bits from an all-corrupt WAL", got)
	}
}

func TestCorruptSnapshotFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, SnapshotEvery: 2})
	for i := 0; i < 3; i++ {
		chargeSettle(t, l, "alice", "auth", 8, 1)
	}
	snap := filepath.Join(dir, "ledger.snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot to corrupt: %v", err)
	}
	data, _ := os.ReadFile(snap)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := Open(Options{Dir: dir, Logger: quiet()})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("fail-closed open over corrupt snapshot: %v, want ErrUnavailable", err)
	}

	// Fail-open boots anyway, from the WAL tail alone.
	l2 := mustOpen(t, Options{Dir: dir, FailOpen: true})
	if !l2.Stats().FailOpen {
		t.Fatal("stats should report fail-open")
	}
}

func TestReplayIsIdempotentAcrossCompactionCrash(t *testing.T) {
	// A crash between "snapshot renamed" and "WAL truncated" leaves both
	// files covering the same records; LSN skipping must not double-apply.
	dir := t.TempDir()
	l := abandon(t, Options{Dir: dir, SnapshotEvery: -1})
	for i := 0; i < 5; i++ {
		chargeSettle(t, l, "alice", "auth", 8, 2)
	}
	// Force a snapshot, then undo the WAL truncation by rewriting the
	// pre-snapshot WAL bytes — the exact on-disk state of that crash.
	walPath := filepath.Join(dir, "ledger.wal")
	pre, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, pre, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	if got := l2.Cumulative("alice", "auth"); got != 10 {
		t.Fatalf("recovered %d bits, want 10 — WAL records ≤ snapshot LSN must be skipped", got)
	}
}

// TestCrashSoak is the in-process crash-kill soak: seeded random
// workloads, abandoned at a random point, recovered, and checked against
// a shadow model — settled entries bit-for-bit, in-flight entries at
// their full estimates.
func TestCrashSoak(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			l := abandon(t, Options{Dir: dir, SnapshotEvery: 1 + rng.Intn(16), SyncEvery: 1})

			type pk struct{ principal, program string }
			principals := []string{"alice", "bob", "carol"}
			programs := []string{"auth", "guess"}
			settled := map[pk]int64{}    // shadow: settled bits
			pendings := map[pk][]int64{} // shadow: in-flight estimates
			open := []*Charge{}

			ops := 30 + rng.Intn(70)
			for i := 0; i < ops; i++ {
				if len(open) > 0 && rng.Intn(2) == 0 {
					j := rng.Intn(len(open))
					c := open[j]
					open = append(open[:j], open[j+1:]...)
					actual := rng.Int63n(c.EstimateBits + 1)
					if err := l.Settle(c, actual); err != nil {
						t.Fatalf("op %d settle: %v", i, err)
					}
					k := pk{c.Principal, c.Program}
					settled[k] += actual
					p := pendings[k]
					for n, est := range p {
						if est == c.EstimateBits {
							pendings[k] = append(p[:n], p[n+1:]...)
							break
						}
					}
				} else {
					k := pk{principals[rng.Intn(len(principals))], programs[rng.Intn(len(programs))]}
					est := 1 + rng.Int63n(64)
					c, err := l.Charge(k.principal, k.program, est)
					if err != nil {
						t.Fatalf("op %d charge: %v", i, err)
					}
					open = append(open, c)
					pendings[k] = append(pendings[k], est)
				}
			}
			// Crash (abandon) and recover.
			l2 := mustOpen(t, Options{Dir: dir})
			for _, principal := range principals {
				for _, program := range programs {
					k := pk{principal, program}
					want := settled[k]
					for _, est := range pendings[k] {
						want += est // pessimistic: full estimate, never dropped
					}
					if got := l2.Cumulative(principal, program); got != want {
						t.Errorf("%s/%s: recovered %d bits, want %d (settled %d + pending %v)",
							principal, program, got, want, settled[k], pendings[k])
					}
				}
			}
			if st := l2.Stats(); st.RecoveredPending != int64(len(open)) {
				t.Errorf("RecoveredPending = %d, want %d", st.RecoveredPending, len(open))
			}
		})
	}
}

// TestFaultSoak drives seeded random workloads through seeded random I/O
// fault plans in fail-closed mode and checks the one inviolable
// invariant: recovery never under-counts. (It can over-count: a record
// can reach the disk and then its fsync can "fail".)
func TestFaultSoak(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			plan := fault.RandomIO(int64(seed)*7919, 200)
			l := abandon(t, Options{Dir: dir, SnapshotEvery: 1 + rng.Intn(16), Faults: plan})

			type pk struct{ principal, program string }
			floor := map[pk]int64{} // settled bits that MUST survive
			var open []*Charge
			for i := 0; i < 60; i++ {
				if len(open) > 0 && rng.Intn(2) == 0 {
					c := open[len(open)-1]
					open = open[:len(open)-1]
					actual := rng.Int63n(c.EstimateBits + 1)
					err := l.Settle(c, actual)
					k := pk{c.Principal, c.Program}
					if err == nil {
						floor[k] += actual
					} else if !errors.Is(err, ErrUnavailable) {
						t.Fatalf("settle: %v", err)
					} else {
						// The settle append failed, but it may have reached
						// the disk before a failing fsync. Recovery sees
						// either the settle (actual) or the still-pending
						// charge (estimate ≥ actual); the guaranteed minimum
						// is the measured bits.
						floor[k] += actual
					}
				} else {
					c, err := l.Charge("p", "auth", 1+rng.Int63n(32))
					if err == nil {
						open = append(open, c)
					} else if !errors.Is(err, ErrUnavailable) {
						t.Fatalf("charge: %v", err)
					}
				}
			}
			for _, c := range open {
				floor[pk{c.Principal, c.Program}] += c.EstimateBits
			}

			// Crash; recover with a fresh (fault-free) plan. The injected
			// tail corruption, if the seed scheduled one, was already
			// consumed as write/sync failures happen on the first plan —
			// replay here sees whatever really hit the "disk".
			l2 := mustOpen(t, Options{Dir: dir})
			for k, want := range floor {
				if got := l2.Cumulative(k.principal, k.program); got < want {
					t.Errorf("%s/%s: recovered %d bits < floor %d — recovery under-counted",
						k.principal, k.program, got, want)
				}
			}
		})
	}
}
